(* Unit and property tests for the metrics library. *)

let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_ns () =
  check_str "ns" "500ns" (Metrics.Units.ns 500.0);
  check_str "us" "12.3us" (Metrics.Units.ns 12_340.0);
  check_str "ms" "1.50ms" (Metrics.Units.ns 1_500_000.0);
  check_str "s" "2.50s" (Metrics.Units.ns 2.5e9);
  check_str "sub-ns" "0.50ns" (Metrics.Units.ns 0.5)

let test_units_bytes () =
  check_str "b" "512B" (Metrics.Units.bytes 512);
  check_str "kib" "1.50KiB" (Metrics.Units.bytes 1536);
  check_str "mib" "4.00MiB" (Metrics.Units.bytes (4 * 1024 * 1024));
  check_str "gib" "2.00GiB" (Metrics.Units.bytes (2 * 1024 * 1024 * 1024))

let test_units_count () =
  check_str "plain" "42" (Metrics.Units.count 42.0);
  check_str "k" "12.0k" (Metrics.Units.count 12_000.0);
  check_str "m" "3.50M" (Metrics.Units.count 3_500_000.0)

let test_units_misc () =
  check_str "ratio" "3.42x" (Metrics.Units.ratio 3.42);
  check_str "percent" "37.5%" (Metrics.Units.percent 0.375);
  check_str "cycles" "1.50Mcyc" (Metrics.Units.cycles 1.5e6)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_singleton () =
  let s = Metrics.Stats.of_array [| 5.0 |] in
  check_int "count" 1 s.count;
  check_float "mean" 5.0 s.mean;
  check_float "sd" 0.0 s.stddev;
  check_float "p50" 5.0 s.p50;
  check_float "min" 5.0 s.min;
  check_float "max" 5.0 s.max

let test_stats_known () =
  let s = Metrics.Stats.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 s.mean;
  check_float "sd" (sqrt (32.0 /. 7.0)) s.stddev;
  check_float "min" 2.0 s.min;
  check_float "max" 9.0 s.max;
  check_float "total" 40.0 s.total

let test_stats_percentile () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Metrics.Stats.percentile sorted 0.0);
  check_float "p100" 5.0 (Metrics.Stats.percentile sorted 100.0);
  check_float "p50" 3.0 (Metrics.Stats.percentile sorted 50.0);
  check_float "p25" 2.0 (Metrics.Stats.percentile sorted 25.0);
  (* interpolation between ranks *)
  check_float "p10" 1.4 (Metrics.Stats.percentile sorted 10.0)

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.of_array: empty array")
    (fun () -> ignore (Metrics.Stats.of_array [||]))

let test_stats_order_invariance () =
  let a = [| 3.0; 1.0; 2.0 |] and b = [| 1.0; 2.0; 3.0 |] in
  let sa = Metrics.Stats.of_array a and sb = Metrics.Stats.of_array b in
  check_float "mean" sb.mean sa.mean;
  check_float "p50" sb.p50 sa.p50;
  (* input arrays are untouched *)
  check_float "a0" 3.0 a.(0)

let prop_stats_bounds =
  QCheck.Test.make ~count:200 ~name:"stats: min <= p50 <= max, mean in range"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun l ->
      let s = Metrics.Stats.of_list l in
      s.min <= s.p50 && s.p50 <= s.max && s.min <= s.mean && s.mean <= s.max)

let prop_stats_shift =
  QCheck.Test.make ~count:200 ~name:"stats: mean shifts, stddev invariant"
    QCheck.(pair (list_of_size Gen.(2 -- 30) (float_bound_inclusive 100.0))
              (float_bound_inclusive 50.0))
    (fun (l, c) ->
      let a = Array.of_list l in
      let b = Array.map (fun x -> x +. c) a in
      let sa = Metrics.Stats.of_array a and sb = Metrics.Stats.of_array b in
      Float.abs (sb.mean -. sa.mean -. c) < 1e-6
      && Float.abs (sb.stddev -. sa.stddev) < 1e-6)

let test_stats_singleton_percentiles () =
  (* n = 1: every percentile is the sample itself, by interpolation on a
     single rank. *)
  let s = Metrics.Stats.of_array [| 42.0 |] in
  check_float "p50" 42.0 s.p50;
  check_float "p90" 42.0 s.p90;
  check_float "p99" 42.0 s.p99;
  check_float "total" 42.0 s.total

let test_stats_all_equal () =
  let s = Metrics.Stats.of_array [| 7.0; 7.0; 7.0; 7.0 |] in
  check_float "sd" 0.0 s.stddev;
  check_float "cv" 0.0 (Metrics.Stats.coefficient_of_variation s);
  check_float "p99" 7.0 s.p99

let test_stats_cv_zero_mean () =
  (* mean exactly 0: CV is 0/0 — documented as nan. *)
  let s = Metrics.Stats.of_array [| -1.0; 1.0 |] in
  check_float "mean" 0.0 s.mean;
  Alcotest.(check bool)
    "cv nan" true
    (Float.is_nan (Metrics.Stats.coefficient_of_variation s))

let test_stats_json () =
  let s = Metrics.Stats.of_array [| 1.0; 2.0; 3.0 |] in
  let j = Metrics.Stats.to_json s in
  let get k = Option.bind (Metrics.Json.member k j) Metrics.Json.to_num in
  check_float "count" 3.0 (Option.get (get "count"));
  check_float "mean" 2.0 (Option.get (get "mean"));
  check_float "total" 6.0 (Option.get (get "total"))

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let j =
    Metrics.Json.obj
      [
        ("s", Metrics.Json.str "a \"quoted\"\n\ttab");
        ("i", Metrics.Json.int (-42));
        ("f", Metrics.Json.num 1.5);
        ("b", Metrics.Json.bool true);
        ("n", Metrics.Json.Null);
        ( "a",
          Metrics.Json.arr
            [ Metrics.Json.int 1; Metrics.Json.str "x"; Metrics.Json.Null ] );
      ]
  in
  (match Metrics.Json.of_string (Metrics.Json.to_string j) with
  | Error e -> Alcotest.fail ("compact reparse: " ^ e)
  | Ok j' -> Alcotest.(check bool) "compact" true (j = j'));
  match Metrics.Json.of_string (Metrics.Json.to_string ~indent:2 j) with
  | Error e -> Alcotest.fail ("indented reparse: " ^ e)
  | Ok j' -> Alcotest.(check bool) "indented" true (j = j')

let test_json_non_finite () =
  (* NaN and infinities have no JSON encoding; they serialise as null so
     the output always parses. *)
  check_str "nan" "null" (Metrics.Json.to_string (Metrics.Json.num Float.nan));
  check_str "inf" "null"
    (Metrics.Json.to_string (Metrics.Json.num Float.infinity))

let test_json_parse_errors () =
  let bad s =
    match Metrics.Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "tru";
  bad "1 2"

let test_json_accessors () =
  match Metrics.Json.of_string {|{"a": [1, 2.5], "s": "hi", "t": true}|} with
  | Error e -> Alcotest.fail e
  | Ok j ->
    check_int "int" 1
      (Option.get
         (Metrics.Json.to_int
            (List.hd
               (Option.get
                  (Option.bind (Metrics.Json.member "a" j)
                     Metrics.Json.to_list)))));
    check_str "str" "hi"
      (Option.get (Option.bind (Metrics.Json.member "s" j) Metrics.Json.to_str));
    Alcotest.(check bool)
      "bool" true
      (Option.get
         (Option.bind (Metrics.Json.member "t" j) Metrics.Json.to_bool));
    Alcotest.(check bool) "missing" true (Metrics.Json.member "zz" j = None)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_hist_basic () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.add h 1.0;
  Metrics.Histogram.add h 3.0;
  Metrics.Histogram.add h 1000.0;
  check_int "count" 3 (Metrics.Histogram.count h);
  check_int "clamped" 0 (Metrics.Histogram.clamped h);
  check_int "bucket of 1" 0 (Metrics.Histogram.bucket_of h 1.0);
  check_int "bucket of 3" 1 (Metrics.Histogram.bucket_of h 3.0);
  check_int "bucket of 1000" 9 (Metrics.Histogram.bucket_of h 1000.0)

let test_hist_bounds () =
  let h = Metrics.Histogram.create ~base:10.0 ~buckets:4 () in
  let lo, hi = Metrics.Histogram.bucket_bounds h 0 in
  check_float "lo0" 10.0 lo;
  check_float "hi0" 20.0 hi;
  let lo, hi = Metrics.Histogram.bucket_bounds h 3 in
  check_float "lo3" 80.0 lo;
  check_float "hi3" 160.0 hi

let test_hist_clamp () =
  let h = Metrics.Histogram.create ~base:10.0 ~buckets:2 () in
  Metrics.Histogram.add h 1.0;
  (* below base *)
  Metrics.Histogram.add h 1e9;
  (* beyond top *)
  check_int "count" 2 (Metrics.Histogram.count h);
  check_int "clamped" 2 (Metrics.Histogram.clamped h);
  let c = Metrics.Histogram.counts h in
  check_int "low bucket" 1 c.(0);
  check_int "high bucket" 1 c.(1)

let test_hist_merge () =
  let a = Metrics.Histogram.create ~buckets:8 () in
  let b = Metrics.Histogram.create ~buckets:8 () in
  Metrics.Histogram.add a 2.0;
  Metrics.Histogram.add b 2.0;
  Metrics.Histogram.add b 64.0;
  let m = Metrics.Histogram.merge a b in
  check_int "count" 3 (Metrics.Histogram.count m);
  let c = Metrics.Histogram.counts m in
  check_int "bucket1" 2 c.(1);
  check_int "bucket6" 1 c.(6)

let test_hist_merge_mismatch () =
  let a = Metrics.Histogram.create ~buckets:8 () in
  let b = Metrics.Histogram.create ~buckets:4 () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Histogram.merge: geometry mismatch") (fun () ->
      ignore (Metrics.Histogram.merge a b))

(* merge's algebra is what E14 leans on when it folds per-point
   histograms gathered from different domains: the result must not
   depend on fold order, and an empty histogram must be a unit. *)
let hist_of l =
  let h = Metrics.Histogram.create ~buckets:16 () in
  List.iter (fun v -> Metrics.Histogram.add h (Float.abs v)) l;
  h

let hist_state h =
  ( Metrics.Histogram.counts h,
    Metrics.Histogram.count h,
    Metrics.Histogram.clamped h )

let samples_gen = QCheck.(list_of_size Gen.(0 -- 50) (float_bound_inclusive 1e6))

let prop_hist_merge_commutes =
  QCheck.Test.make ~count:100 ~name:"histogram: merge commutes"
    QCheck.(pair samples_gen samples_gen)
    (fun (la, lb) ->
      let a = hist_of la and b = hist_of lb in
      hist_state (Metrics.Histogram.merge a b)
      = hist_state (Metrics.Histogram.merge b a))

let prop_hist_merge_assoc =
  QCheck.Test.make ~count:100 ~name:"histogram: merge associates"
    QCheck.(triple samples_gen samples_gen samples_gen)
    (fun (la, lb, lc) ->
      let a = hist_of la and b = hist_of lb and c = hist_of lc in
      hist_state
        (Metrics.Histogram.merge (Metrics.Histogram.merge a b) c)
      = hist_state
          (Metrics.Histogram.merge a (Metrics.Histogram.merge b c)))

let prop_hist_merge_unit_pure =
  QCheck.Test.make ~count:100
    ~name:"histogram: empty is a merge unit and merge is pure" samples_gen
    (fun l ->
      let a = hist_of l in
      let before = hist_state a in
      let empty = Metrics.Histogram.create ~buckets:16 () in
      let merged = hist_state (Metrics.Histogram.merge a empty) in
      (* neither operand is mutated, and merging the unit changes nothing *)
      merged = before
      && hist_state a = before
      && Metrics.Histogram.count empty = 0)

let test_hist_negative () =
  let h = Metrics.Histogram.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Histogram.add: negative sample") (fun () ->
      Metrics.Histogram.add h (-1.0))

let prop_hist_quantile_monotone =
  QCheck.Test.make ~count:100 ~name:"histogram: quantile is monotone in q"
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1e6))
    (fun l ->
      let h = Metrics.Histogram.create () in
      List.iter (fun v -> Metrics.Histogram.add h (Float.abs v)) l;
      let q1 = Metrics.Histogram.quantile h 0.25 in
      let q2 = Metrics.Histogram.quantile h 0.5 in
      let q3 = Metrics.Histogram.quantile h 0.99 in
      q1 <= q2 && q2 <= q3)

let prop_hist_count =
  QCheck.Test.make ~count:100 ~name:"histogram: counts sum to total"
    QCheck.(list_of_size Gen.(0 -- 100) (float_bound_inclusive 1e9))
    (fun l ->
      let h = Metrics.Histogram.create () in
      List.iter (fun v -> Metrics.Histogram.add h (Float.abs v)) l;
      Array.fold_left ( + ) 0 (Metrics.Histogram.counts h)
      = Metrics.Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Metrics.Table.create ~align:[ Metrics.Table.Left ] [ "api"; "ns" ] in
  Metrics.Table.add_row t [ "fork"; "120" ];
  Metrics.Table.add_row t [ "spawn"; "80" ];
  let s = Metrics.Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "header has api" true
      (String.length header >= 3 && String.sub header 0 3 = "api");
    Alcotest.(check bool) "rule is dashes" true
      (String.for_all (fun c -> c = '-') rule && String.length rule > 0)
  | _ -> Alcotest.fail "too few lines");
  check_int "rows" 2 (Metrics.Table.row_count t)

let test_table_arity () =
  let t = Metrics.Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Metrics.Table.add_row t [ "only-one" ])

let test_table_empty_header () =
  Alcotest.check_raises "no headers" (Invalid_argument "Table.create: no headers")
    (fun () -> ignore (Metrics.Table.create []))

let test_table_markdown () =
  let t = Metrics.Table.create ~align:[ Metrics.Table.Left; Metrics.Table.Right ]
      [ "k"; "v" ] in
  Metrics.Table.add_row t [ "x"; "1" ];
  let s = Metrics.Table.render_markdown t in
  Alcotest.(check bool) "starts with pipe" true (s.[0] = '|');
  Alcotest.(check bool) "has align row" true
    (String.split_on_char '\n' s |> fun l -> List.length l >= 3)

let test_table_alignment () =
  let t =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left; Metrics.Table.Right; Metrics.Table.Center ]
      [ "lll"; "rrr"; "ccc" ]
  in
  Metrics.Table.add_row t [ "a"; "b"; "c" ];
  let s = Metrics.Table.render t in
  let row = List.nth (String.split_on_char '\n' s) 2 in
  (* left col: 'a' at col 0; right col: 'b' at end of its field *)
  Alcotest.(check char) "left" 'a' row.[0];
  Alcotest.(check char) "right" 'b' row.[7]

(* ------------------------------------------------------------------ *)
(* Series *)

let fig () =
  Metrics.Series.figure ~title:"t" ~xlabel:"x" ~ylabel:"y"
    [ { Metrics.Series.label = "a"; points = [ (1.0, 10.0); (2.0, 20.0) ] };
      { Metrics.Series.label = "b"; points = [ (1.0, 5.0) ] } ]

let test_series_table () =
  let s = Metrics.Series.render_table (fig ()) in
  Alcotest.(check bool) "mentions title" true
    (String.length s > 0 && String.sub s 0 1 = "t");
  (* missing point renders as "-" *)
  Alcotest.(check bool) "dash for missing" true
    (String.split_on_char '\n' s
    |> List.exists (fun line ->
           String.length line > 0
           && String.ends_with ~suffix:"-" (String.trim line)))

let test_series_chart () =
  let s = Metrics.Series.render_chart ~width:20 ~height:6 (fig ()) in
  Alcotest.(check bool) "has legend" true
    (String.split_on_char '\n' s
    |> List.exists (String.starts_with ~prefix:"legend:"))

let test_series_chart_empty () =
  let f =
    Metrics.Series.figure ~xlog:true ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [ { Metrics.Series.label = "a"; points = [ (-1.0, 1.0) ] } ]
  in
  check_str "no data" "(no data)\n" (Metrics.Series.render_chart f)

let test_hist_render () =
  let h = Metrics.Histogram.create ~base:100.0 ~buckets:16 () in
  Metrics.Histogram.add_many h [| 150.0; 150.0; 600.0; 5000.0 |];
  let s = Metrics.Histogram.render h in
  (* one line per non-empty bucket, each with a bar *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "three buckets" 3 (List.length lines);
  Alcotest.(check bool) "bars present" true
    (List.for_all (fun l -> String.contains l '#') lines)

let test_hist_render_empty () =
  check_str "empty" "(empty histogram)\n"
    (Metrics.Histogram.render (Metrics.Histogram.create ()))

let test_hist_json_roundtrip () =
  let h = Metrics.Histogram.create ~base:10.0 ~buckets:12 () in
  Metrics.Histogram.add_many h [| 1.0; 15.0; 15.0; 700.0; 1e9 |];
  match Metrics.Histogram.of_json (Metrics.Histogram.to_json h) with
  | Error e -> Alcotest.fail ("roundtrip: " ^ e)
  | Ok h' ->
    check_int "count" (Metrics.Histogram.count h) (Metrics.Histogram.count h');
    check_int "clamped" (Metrics.Histogram.clamped h)
      (Metrics.Histogram.clamped h');
    Alcotest.(check (array int))
      "counts" (Metrics.Histogram.counts h)
      (Metrics.Histogram.counts h');
    check_float "p50" (Metrics.Histogram.quantile h 0.5)
      (Metrics.Histogram.quantile h' 0.5)

let test_hist_json_reparse () =
  (* through the printer and parser, not just the value round-trip *)
  let h = Metrics.Histogram.create ~base:1.0 ~buckets:8 () in
  Metrics.Histogram.add_many h [| 1.0; 2.0; 3.0 |];
  let s = Metrics.Json.to_string ~indent:2 (Metrics.Histogram.to_json h) in
  match Metrics.Json.of_string s with
  | Error e -> Alcotest.fail ("parse: " ^ e)
  | Ok j -> (
    match Metrics.Histogram.of_json j with
    | Error e -> Alcotest.fail ("of_json: " ^ e)
    | Ok h' -> check_int "count" 3 (Metrics.Histogram.count h'))

let test_hist_json_invalid () =
  let reject name j =
    match Metrics.Histogram.of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ ": accepted invalid histogram json")
  in
  reject "not an object" (Metrics.Json.str "x");
  (* total inconsistent with the bucket counts *)
  let h = Metrics.Histogram.create ~base:1.0 ~buckets:4 () in
  Metrics.Histogram.add h 1.0;
  (match Metrics.Histogram.to_json h with
  | Metrics.Json.Obj fields ->
    reject "bad total"
      (Metrics.Json.Obj
         (List.map
            (fun (k, v) ->
              if k = "total" then (k, Metrics.Json.int 99) else (k, v))
            fields))
  | _ -> Alcotest.fail "to_json not an object")

let test_series_single_point () =
  let f =
    Metrics.Series.figure ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [ { Metrics.Series.label = "a"; points = [ (5.0, 5.0) ] } ]
  in
  (* degenerate ranges must not divide by zero *)
  Alcotest.(check bool) "renders" true
    (String.length (Metrics.Series.render_chart ~width:10 ~height:4 f) > 0)

let test_table_csv () =
  let t = Metrics.Table.create [ "name"; "value" ] in
  Metrics.Table.add_row t [ "plain"; "1" ];
  Metrics.Table.add_separator t;
  Metrics.Table.add_row t [ "with,comma"; "quo\"te" ];
  check_str "csv" "name,value\nplain,1\n\"with,comma\",\"quo\"\"te\"\n"
    (Metrics.Table.render_csv t)

let test_series_csv () =
  let s = Metrics.Series.render_csv (fig ()) in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check_str "header" "x,a,b" (List.hd lines);
  check_str "row with gap" "2,20," (List.nth lines 2)

let test_series_log_axes () =
  let f =
    Metrics.Series.figure ~xlog:true ~ylog:true ~title:"t" ~xlabel:"x"
      ~ylabel:"y"
      [ { Metrics.Series.label = "a";
          points = [ (1.0, 1.0); (10.0, 100.0); (100.0, 10000.0) ] } ]
  in
  let s = Metrics.Series.render_chart ~width:30 ~height:8 f in
  Alcotest.(check bool) "renders" true (String.length s > 50)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* Window: sliding-window statistics (caller-supplied clock) *)

let test_window_basics () =
  let w = Metrics.Window.create ~width:10.0 ~slots:10 () in
  check_int "empty" 0 (Metrics.Window.observations w ~now:0.0);
  Metrics.Window.add w ~now:1.0 2.0;
  Metrics.Window.add w ~now:2.5 4.0;
  check_int "obs" 2 (Metrics.Window.observations w ~now:3.0);
  check_float "sum" 6.0 (Metrics.Window.sum w ~now:3.0);
  Alcotest.(check (option (float 1e-9)))
    "mean" (Some 3.0) (Metrics.Window.mean w ~now:3.0);
  Alcotest.(check (option (float 1e-9)))
    "min" (Some 2.0) (Metrics.Window.minimum w ~now:3.0);
  Alcotest.(check (option (float 1e-9)))
    "max" (Some 4.0) (Metrics.Window.maximum w ~now:3.0);
  check_float "rate = obs/width" 0.2 (Metrics.Window.rate w ~now:3.0)

let test_window_expiry () =
  (* width 10, 10 slots: a sample at t=1 is live through t in [1, 11)
     and expired from t=11 on (slot-granular expiry) *)
  let w = Metrics.Window.create ~width:10.0 ~slots:10 () in
  Metrics.Window.add w ~now:1.0 5.0;
  check_int "live just before expiry" 1
    (Metrics.Window.observations w ~now:10.9);
  check_int "expired" 0 (Metrics.Window.observations w ~now:11.0);
  (* the ring reuses the slot for the new epoch without resurrecting
     the stale data *)
  Metrics.Window.add w ~now:21.0 7.0;
  check_int "only the new sample" 1 (Metrics.Window.observations w ~now:21.0);
  Alcotest.(check (option (float 1e-9)))
    "new min" (Some 7.0)
    (Metrics.Window.minimum w ~now:21.0)

let test_window_quantile () =
  let w = Metrics.Window.create ~width:60.0 () in
  check_bool "empty quantile" true (Metrics.Window.quantile w ~now:0.0 0.5 = None);
  for i = 1 to 100 do
    Metrics.Window.add w ~now:1.0 (float_of_int i)
  done;
  match
    ( Metrics.Window.quantile w ~now:1.0 0.5,
      Metrics.Window.quantile w ~now:1.0 0.95 )
  with
  | Some p50, Some p95 ->
    check_bool "p50 <= p95" true (p50 <= p95);
    check_bool "p50 sane" true (p50 > 0.0)
  | _ -> Alcotest.fail "quantiles missing"

let test_window_invalid () =
  Alcotest.check_raises "width" (Invalid_argument "Window.create: width <= 0")
    (fun () -> ignore (Metrics.Window.create ~width:0.0 ()));
  Alcotest.check_raises "slots" (Invalid_argument "Window.create: slots < 2")
    (fun () -> ignore (Metrics.Window.create ~width:1.0 ~slots:1 ()));
  let w = Metrics.Window.create ~width:1.0 () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Window.add: negative time") (fun () ->
      Metrics.Window.add w ~now:(-1.0) 0.0);
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Window.add: negative sample") (fun () ->
      Metrics.Window.add w ~now:0.0 (-1.0))

let test_window_json () =
  let w = Metrics.Window.create ~width:10.0 () in
  Metrics.Window.add w ~now:1.0 3.0;
  let j = Metrics.Window.to_json w ~now:1.0 in
  Alcotest.(check (option int))
    "observations" (Some 1)
    (Option.bind (Metrics.Json.member "observations" j) Metrics.Json.to_int);
  Alcotest.(check (option (float 1e-9)))
    "rate" (Some 0.1)
    (Option.bind (Metrics.Json.member "rate" j) Metrics.Json.to_num)

let () =
  Alcotest.run "metrics"
    [
      ( "units",
        [
          Alcotest.test_case "ns" `Quick test_units_ns;
          Alcotest.test_case "bytes" `Quick test_units_bytes;
          Alcotest.test_case "count" `Quick test_units_count;
          Alcotest.test_case "misc" `Quick test_units_misc;
        ] );
      ( "stats",
        [
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "order invariance" `Quick test_stats_order_invariance;
          Alcotest.test_case "singleton percentiles" `Quick
            test_stats_singleton_percentiles;
          Alcotest.test_case "all equal" `Quick test_stats_all_equal;
          Alcotest.test_case "cv of zero mean" `Quick test_stats_cv_zero_mean;
          Alcotest.test_case "json" `Quick test_stats_json;
        ] );
      qsuite "stats-props" [ prop_stats_bounds; prop_stats_shift ];
      ( "histogram",
        [
          Alcotest.test_case "basic buckets" `Quick test_hist_basic;
          Alcotest.test_case "bucket bounds" `Quick test_hist_bounds;
          Alcotest.test_case "clamping" `Quick test_hist_clamp;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "merge mismatch" `Quick test_hist_merge_mismatch;
          Alcotest.test_case "negative rejected" `Quick test_hist_negative;
          Alcotest.test_case "render" `Quick test_hist_render;
          Alcotest.test_case "render empty" `Quick test_hist_render_empty;
          Alcotest.test_case "json roundtrip" `Quick test_hist_json_roundtrip;
          Alcotest.test_case "json reparse" `Quick test_hist_json_reparse;
          Alcotest.test_case "json invalid" `Quick test_hist_json_invalid;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      qsuite "histogram-props"
        [
          prop_hist_quantile_monotone;
          prop_hist_count;
          prop_hist_merge_commutes;
          prop_hist_merge_assoc;
          prop_hist_merge_unit_pure;
        ];
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "empty header" `Quick test_table_empty_header;
          Alcotest.test_case "markdown" `Quick test_table_markdown;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
        ] );
      ( "window",
        [
          Alcotest.test_case "basics" `Quick test_window_basics;
          Alcotest.test_case "expiry" `Quick test_window_expiry;
          Alcotest.test_case "quantile" `Quick test_window_quantile;
          Alcotest.test_case "invalid args" `Quick test_window_invalid;
          Alcotest.test_case "json" `Quick test_window_json;
        ] );
      ( "series",
        [
          Alcotest.test_case "table" `Quick test_series_table;
          Alcotest.test_case "chart" `Quick test_series_chart;
          Alcotest.test_case "chart empty" `Quick test_series_chart_empty;
          Alcotest.test_case "single point" `Quick test_series_single_point;
          Alcotest.test_case "csv" `Quick test_series_csv;
          Alcotest.test_case "log axes" `Quick test_series_log_axes;
        ] );
    ]
