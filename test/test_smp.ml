(* Tests for the SMP kernel: per-CPU scheduling, tracked TLB shootdown
   IPIs driven by per-address-space CPU masks, per-CPU kstat counters,
   CPU trace lanes, and the record-and-replay guarantee that [par_jobs]
   never changes a simulated number. *)

module Api = Ksim.Api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let prog ?text_kib ?data_kib name body =
  Ksim.Program.make ?text_kib ?data_kib ~name (fun ~argv () -> body argv)

let smp_config ?(cpus = 4) ?(par_jobs = 1) ?(trace = false) () =
  {
    Ksim.Kernel.default_config with
    Ksim.Kernel.smp = true;
    cpus;
    par_jobs;
    aslr = false;
    commit_policy = Vmem.Frame.Overcommit;
    trace_capacity = (if trace then Some 8192 else None);
  }

let boot ?(config = smp_config ()) ?(programs = []) body =
  let init = prog "/sbin/init" body in
  match Ksim.Kernel.boot ~config ~programs:(init :: programs) "/sbin/init" with
  | Error _ -> Alcotest.fail "boot failed"
  | Ok (t, outcome) -> (t, outcome)

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "expected Ok"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let ipis t = (Ksim.Kstat.global (Ksim.Kernel.kstat t)).Ksim.Kstat.ipis_sent

(* ------------------------------------------------------------------ *)
(* Directed: shootdown IPI counts follow the CPU mask exactly *)

(* A single-threaded process only ever runs on its home CPU, so its
   space's mask is a singleton and a fork interrupts nobody. *)
let test_fork_cold_mask_no_ipi () =
  let t, outcome =
    boot (fun _ ->
        let old_brk = ok (Api.sbrk 65536) in
        ignore (ok (Api.touch ~addr:old_brk ~len:65536));
        let child = ok (Api.fork ~child:(fun () -> ())) in
        ignore (ok (Api.wait_for child)))
  in
  check_bool "all exited" true (outcome = Ksim.Kernel.All_exited);
  check_int "no remote CPU cached the space: 0 IPIs" 0 (ipis t)

(* Three sibling threads warm CPUs 1..3 (round-robin placement); the
   fork's full-AS shootdown must then interrupt exactly those three. *)
let test_fork_warm_mask_ipis () =
  let t, outcome =
    boot (fun _ ->
        for _ = 1 to 3 do
          ignore
            (ok
               (Api.thread_create (fun () ->
                    for _ = 1 to 3 do
                      Api.yield ()
                    done)))
        done;
        (* let every sibling run at least one slice *)
        for _ = 1 to 5 do
          Api.yield ()
        done;
        let child = ok (Api.fork ~child:(fun () -> ())) in
        ignore (ok (Api.wait_for child)))
  in
  check_bool "all exited" true (outcome = Ksim.Kernel.All_exited);
  check_int "3 warm remote CPUs: 3 IPIs" 3 (ipis t);
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  check_int "received = sent" 3 g.Ksim.Kstat.ipis_received;
  match Ksim.Kstat.smp (Ksim.Kernel.kstat t) with
  | None -> Alcotest.fail "smp kstat dimension missing"
  | Some s ->
    check_int "all sent from cpu 0" 3 s.Ksim.Kstat.sent.(0);
    check_int "cpu 1 interrupted once" 1 s.Ksim.Kstat.received.(1);
    check_int "cpu 2 interrupted once" 1 s.Ksim.Kstat.received.(2);
    check_int "cpu 3 interrupted once" 1 s.Ksim.Kstat.received.(3);
    check_int "fanout histogram: one 3-CPU shootdown" 1
      (match Hashtbl.find_opt s.Ksim.Kstat.fanout 3 with
      | Some r -> !r
      | None -> 0)

(* A COW break invalidates one page: the IPI bill is the number of
   remote CPUs caching the space at break time. The fork collapses the
   parent's mask to its own CPU; two spinner threads then warm CPUs 2
   and 3 again, so the write must IPI exactly those two. *)
let test_cow_break_ipis_warm_cpus () =
  let t = Ksim.Kernel.create ~config:(smp_config ()) () in
  let ipis_now () =
    (Ksim.Kstat.global (Ksim.Kernel.kstat t)).Ksim.Kstat.ipis_sent
  in
  let before_write = ref (-1) and after_write = ref (-1) in
  let body _ =
    let addr = ok (Api.sbrk 8192) in
    ignore (ok (Api.touch ~addr ~len:8192));
    let child =
      ok
        (Api.fork
           ~child:(fun () ->
             for _ = 1 to 1000 do
               Api.yield ()
             done))
    in
    (* the fork shot the parent's mask down to {0}; warm two remote
       CPUs again (the child occupies cpu 1 in its own space) *)
    for _ = 1 to 2 do
      ignore
        (ok
           (Api.thread_create (fun () ->
                for _ = 1 to 3 do
                  Api.yield ()
                done)))
    done;
    for _ = 1 to 5 do
      Api.yield ()
    done;
    before_write := ipis_now ();
    ignore (ok (Api.mem_write ~addr "x"));
    after_write := ipis_now ();
    ok (Api.kill child Ksim.Usignal.SIGKILL);
    ignore (ok (Api.wait_for child))
  in
  Ksim.Kernel.register t (prog "/sbin/init" body);
  (match Ksim.Kernel.spawn_init t "/sbin/init" with
  | Error _ -> Alcotest.fail "spawn_init failed"
  | Ok _ -> ());
  let outcome = Ksim.Kernel.run t in
  check_bool "all exited" true (outcome = Ksim.Kernel.All_exited);
  check_int "COW break IPIs exactly the 2 warm remotes" 2
    (!after_write - !before_write);
  check_int "one COW break" 1
    (Ksim.Kstat.global (Ksim.Kernel.kstat t)).Ksim.Kstat.cow_breaks

(* Work stealing: a short-lived thread leaves CPU 1 idle while CPU 0's
   queue holds two runnable threads — CPU 1 must steal one. *)
let test_work_stealing () =
  let config = smp_config ~cpus:2 () in
  let t, outcome =
    boot ~config (fun _ ->
        (* round-robin: odd creations land on cpu 1 and die at once,
           even ones pile up behind main on cpu 0 — once cpu 1 drains,
           cpu 0 still holds 3 runnables and cpu 1 must steal (a queue
           is only stolen from while it has >= 2 entries after the
           owner's own pop) *)
        for i = 1 to 4 do
          ignore
            (ok
               (Api.thread_create (fun () ->
                    if i mod 2 = 0 then
                      for _ = 1 to 5 do
                        Api.yield ()
                      done)))
        done;
        for _ = 1 to 8 do
          Api.yield ()
        done)
  in
  check_bool "all exited" true (outcome = Ksim.Kernel.All_exited);
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  check_bool "steals happened" true (g.Ksim.Kstat.cpu_steals > 0);
  check_int "every steal is a migration" g.Ksim.Kstat.cpu_steals
    g.Ksim.Kstat.cpu_migrations

(* ------------------------------------------------------------------ *)
(* Trace: per-CPU lanes *)

let test_trace_cpu_lanes () =
  let config = smp_config ~cpus:4 ~trace:true () in
  let t, _ =
    boot ~config (fun _ ->
        ignore
          (ok
             (Api.thread_create (fun () ->
                  Api.yield ();
                  Api.yield ())));
        Api.yield ();
        Api.yield ())
  in
  let tr = Option.get (Ksim.Kernel.trace t) in
  let evs = Ksim.Trace.events tr in
  check_bool "events carry their cpu" true
    (List.for_all (fun e -> e.Ksim.Trace.cpu <> None) evs);
  check_bool "more than one cpu appears" true
    (List.length
       (List.sort_uniq compare (List.map (fun e -> e.Ksim.Trace.cpu) evs))
    > 1);
  let chrome = Metrics.Json.to_string (Ksim.Trace.to_chrome ~lanes:`Cpu tr) in
  check_bool "cpu lane names present" true
    (contains chrome "cpu 0" && contains chrome "cpu 1");
  let pid_chrome = Metrics.Json.to_string (Ksim.Trace.to_chrome tr) in
  check_bool "pid lanes still the default" true (contains pid_chrome "pid 1")

(* ------------------------------------------------------------------ *)
(* Equivalence: cpus=1 vs cpus=4 on scheduling-robust programs *)

(* Program shape whose per-process behaviour cannot depend on the
   schedule: every process maps and touches only regions it created
   itself, synchronises only via waitpid, and writes one console char. *)
type node = { tag : char; pages : int; kids : node list }

let rec gen_node depth rng =
  let pages = 1 + Prng.Splitmix.int rng ~bound:6 in
  let width = if depth = 0 then 0 else Prng.Splitmix.int rng ~bound:3 in
  let kids = List.init width (fun _ -> gen_node (depth - 1) rng) in
  {
    tag = Char.chr (Char.code 'a' + Prng.Splitmix.int rng ~bound:26);
    pages;
    kids;
  }

let rec run_node node () =
  let len = node.pages * 4096 in
  let addr = ok (Api.mmap ~len ~perm:Vmem.Perm.rw) in
  ignore (ok (Api.touch ~addr ~len));
  Api.print (String.make 1 node.tag);
  let pids =
    List.map (fun kid -> ok (Api.fork ~child:(run_node kid))) node.kids
  in
  List.iter (fun pid -> ignore (ok (Api.wait_for pid))) pids;
  ignore (ok (Api.munmap ~addr ~len))

let fingerprint t =
  let sorted_console s =
    let cs = List.sort compare (List.init (String.length s) (String.get s)) in
    String.init (List.length cs) (List.nth cs)
  in
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  let statuses =
    List.sort compare
      (List.filter_map
         (fun p ->
           Option.map
             (fun st -> (p.Ksim.Proc.pid, st))
             (Ksim.Kernel.status_of t p.Ksim.Proc.pid))
         (Ksim.Kernel.procs t))
  in
  ( sorted_console (Ksim.Kernel.console t),
    statuses,
    ( g.Ksim.Kstat.syscalls,
      g.Ksim.Kstat.forks,
      g.Ksim.Kstat.faults,
      g.Ksim.Kstat.frames_zeroed,
      g.Ksim.Kstat.cow_breaks ) )

let prop_cpus_1_vs_4 =
  QCheck.Test.make ~count:25
    ~name:"smp: robust programs agree between cpus=1 and cpus=4"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.Splitmix.create ~seed in
      let tree = { tag = 'r'; pages = 2; kids = [ gen_node 2 rng ] } in
      let run cpus =
        let t, outcome =
          boot ~config:(smp_config ~cpus ()) (fun _ -> run_node tree ())
        in
        if outcome <> Ksim.Kernel.All_exited then
          QCheck.Test.fail_report "did not run to completion";
        fingerprint t
      in
      run 1 = run 4)

(* ------------------------------------------------------------------ *)
(* Determinism: par_jobs must never change any simulated number *)

let deep_fingerprint t =
  let blame_rows =
    List.map
      (fun (e : Vmem.Blame.event) ->
        ( e.Vmem.Blame.id,
          e.Vmem.Blame.style,
          e.Vmem.Blame.parent,
          e.Vmem.Blame.child,
          e.Vmem.Blame.failed,
          Vmem.Blame.sync_cycles e,
          Vmem.Blame.deferred_cycles e ))
      (Vmem.Blame.events (Ksim.Kernel.blame t))
  in
  ( Ksim.Kernel.console t,
    List.map
      (fun p -> (p.Ksim.Proc.pid, Ksim.Kernel.status_of t p.Ksim.Proc.pid))
      (Ksim.Kernel.procs t),
    Vmem.Cost.total (Ksim.Kernel.cost t),
    Vmem.Cost.by_category_counts (Ksim.Kernel.cost t),
    Ksim.Kstat.snapshot (Ksim.Kstat.global (Ksim.Kernel.kstat t)),
    blame_rows )

(* Disjoint-family workers (each spawned fresh, so distinct COW
   families) forking and touching in the same scheduling rounds: this
   is the shape that drives the parallel fork/touch cores. *)
let par_workload ~workers ~pages =
  let worker =
    prog "/worker" (fun _ ->
        let len = pages * 4096 in
        let addr = ok (Api.mmap ~len ~perm:Vmem.Perm.rw) in
        ignore (ok (Api.touch ~addr ~len));
        let child =
          ok (Api.fork ~child:(fun () -> ignore (ok (Api.touch ~addr ~len))))
        in
        (* break a page the child shares: deferred-blame COW charge *)
        ignore (ok (Api.mem_write ~addr "w"));
        ignore (ok (Api.wait_for child)))
  in
  let init _ =
    let pids = List.init workers (fun _ -> ok (Api.spawn "/worker")) in
    List.iter (fun pid -> ignore (ok (Api.wait_for pid))) pids
  in
  (init, [ worker ])

let run_par ~par_jobs ~workers ~pages =
  let init, programs = par_workload ~workers ~pages in
  let t, outcome =
    boot ~config:(smp_config ~cpus:4 ~par_jobs ()) ~programs init
  in
  check_bool "all exited" true (outcome = Ksim.Kernel.All_exited);
  deep_fingerprint t

let test_par_jobs_bit_identical () =
  let a = run_par ~par_jobs:1 ~workers:6 ~pages:24 in
  let b = run_par ~par_jobs:4 ~workers:6 ~pages:24 in
  check_bool "par_jobs=4 == par_jobs=1 (costs, kstat, blame, console)" true
    (a = b)

let prop_par_jobs_deterministic =
  QCheck.Test.make ~count:10 ~name:"smp: par_jobs=3 bit-identical to par_jobs=1"
    QCheck.(pair (int_range 2 6) (int_range 1 24))
    (fun (workers, pages) ->
      run_par ~par_jobs:1 ~workers ~pages = run_par ~par_jobs:3 ~workers ~pages)

(* cpus=1 SMP kernels keep the blame invariant: attributed cycles never
   exceed the cost meter (the exact partition property is test_vmem's;
   here we just check the SMP plumbing feeds the same ledger). *)
let test_smp1_blame_partition () =
  let t, _ =
    boot ~config:(smp_config ~cpus:1 ()) (fun _ ->
        let addr = ok (Api.sbrk 16384) in
        ignore (ok (Api.touch ~addr ~len:16384));
        let c = ok (Api.fork ~child:(fun () -> ())) in
        ignore (ok (Api.wait_for c)))
  in
  let cost_total = Vmem.Cost.total (Ksim.Kernel.cost t) in
  let blame_total =
    List.fold_left
      (fun acc e ->
        acc +. Vmem.Blame.sync_cycles e +. Vmem.Blame.deferred_cycles e)
      0.0
      (Vmem.Blame.events (Ksim.Kernel.blame t))
  in
  check_bool "blame <= cost and both positive" true
    (blame_total > 0.0 && blame_total <= cost_total)

let () =
  Alcotest.run "smp"
    [
      ( "ipis",
        [
          Alcotest.test_case "cold mask, no IPIs" `Quick
            test_fork_cold_mask_no_ipi;
          Alcotest.test_case "warm mask, k IPIs" `Quick
            test_fork_warm_mask_ipis;
          Alcotest.test_case "cow break bills warm CPUs" `Quick
            test_cow_break_ipis_warm_cpus;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "work stealing" `Quick test_work_stealing;
          Alcotest.test_case "blame on smp1" `Quick test_smp1_blame_partition;
        ] );
      ("trace", [ Alcotest.test_case "cpu lanes" `Quick test_trace_cpu_lanes ]);
      ( "determinism",
        [
          Alcotest.test_case "par_jobs bit-identical" `Quick
            test_par_jobs_bit_identical;
          QCheck_alcotest.to_alcotest prop_cpus_1_vs_4;
          QCheck_alcotest.to_alcotest prop_par_jobs_deterministic;
        ] );
    ]
