(* Tests for the corpus scanner, generator and survey, plus the prng and
   workload helpers they depend on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let scan_count src api = Forklore.Scanner.count (Forklore.Scanner.scan_string src) api

(* ------------------------------------------------------------------ *)
(* Scanner *)

let test_scanner_counts_calls () =
  let src = "int main() { pid_t p = fork(); fork (); return p; }" in
  check_int "two forks" 2 (scan_count src Forklore.Api.Fork)

let test_scanner_ignores_comments () =
  let src = "// fork()\n/* fork() vfork() */\nint x = 1;\n" in
  check_int "line comment" 0 (scan_count src Forklore.Api.Fork);
  check_int "block comment" 0 (scan_count src Forklore.Api.Vfork)

let test_scanner_ignores_strings () =
  let src = {|printf("fork() failed"); char c = '('; system("ls");|} in
  check_int "string literal" 0 (scan_count src Forklore.Api.Fork);
  (* the system() call is real; its argument string is not *)
  check_int "system call" 1 (scan_count src Forklore.Api.System)

let test_scanner_escaped_quotes () =
  let src = {|puts("say \"fork()\" aloud"); fork();|} in
  check_int "one real call" 1 (scan_count src Forklore.Api.Fork)

let test_scanner_identifier_boundaries () =
  let src = "my_fork_helper(); forkful(); refork(); xfork(); fork_();" in
  check_int "no lookalikes" 0 (scan_count src Forklore.Api.Fork)

let test_scanner_no_paren_no_call () =
  let src = "int fork; fork = 3; sizeof fork;" in
  check_int "bare identifier" 0 (scan_count src Forklore.Api.Fork)

let test_scanner_exec_family () =
  let src = "execve(a,b,c); execvp(a,b); execl(a,b); posix_spawnp(&p,a,0,0,b,c);" in
  check_int "exec family" 3 (scan_count src Forklore.Api.Exec);
  check_int "spawnp" 1 (scan_count src Forklore.Api.Posix_spawn)

let test_scanner_lines () =
  let r = Forklore.Scanner.scan_string "a\nb\nc" in
  check_int "lines" 3 r.Forklore.Scanner.lines

(* regression: an identifier and its '(' separated by a newline or a
   comment is still one call site (the old byte scanner missed these) *)
let test_scanner_call_across_newline () =
  check_int "newline between name and paren" 1
    (scan_count "pid_t p = fork\n();" Forklore.Api.Fork);
  check_int "block comment between" 1
    (scan_count "fork /* why not */ ();" Forklore.Api.Fork);
  check_int "line comment between" 1
    (scan_count "fork // see man 2 fork\n();" Forklore.Api.Fork)

let test_scanner_char_literals () =
  check_int "escaped quote in char literal" 1
    (scan_count {|char c = '\''; fork();|} Forklore.Api.Fork);
  check_int "double quote in char literal" 1
    (scan_count {|char q = '"'; fork();|} Forklore.Api.Fork)

let test_scanner_unterminated_block_comment () =
  let src = "fork(); /* vfork(" in
  check_int "call before comment" 1 (scan_count src Forklore.Api.Fork);
  check_int "swallowed by open comment" 0 (scan_count src Forklore.Api.Vfork)

let test_scanner_comment_markers_in_strings () =
  let src = {|s = "// not a comment"; fork(); t = "/*"; vfork();|} in
  check_int "after //-in-string" 1 (scan_count src Forklore.Api.Fork);
  check_int "after /*-in-string" 1 (scan_count src Forklore.Api.Vfork)

let test_scanner_call_positions () =
  let r = Forklore.Scanner.scan_string "fork();\n  vfork();" in
  Alcotest.(check (list (triple string int int)))
    "file:line:col spans"
    [ ("fork", 1, 1); ("vfork", 2, 3) ]
    (List.map
       (fun c ->
         Forklore.Scanner.(c.id, c.line, c.col))
       r.Forklore.Scanner.calls)

(* regression: identifiers in declarator position are declarations, not
   calls — a local prototype must not inflate the survey *)
let test_scanner_declarator_position () =
  check_int "prototype is not a call" 0
    (scan_count "pid_t fork(void);" Forklore.Api.Fork);
  check_int "extern prototype" 0
    (scan_count "extern pid_t vfork(void);" Forklore.Api.Vfork);
  check_int "pointer declarator" 0
    (scan_count "int *system(const char *cmd);" Forklore.Api.System);
  (* and the real call right after the prototype still counts *)
  check_int "prototype then call" 1
    (scan_count "pid_t fork(void);\nint main(void) { return fork(); }"
       Forklore.Api.Fork)

(* ------------------------------------------------------------------ *)
(* Lexer: continuation splices, directives, #if 0 regions *)

let test_lexer_backslash_newline_splice () =
  (* a splice inside an identifier glues the halves back together *)
  check_int "spliced identifier is one call" 1
    (scan_count "fo\\\nrk();" Forklore.Api.Fork);
  check_int "splice between name and paren" 1
    (scan_count "fork\\\n();" Forklore.Api.Fork);
  (* splices do not hide a call on a continued line *)
  check_int "call on continued line" 1
    (scan_count "int x = 1 + \\\n fork();" Forklore.Api.Fork)

let test_lexer_directives_emit_nothing () =
  check_int "define body not scanned" 0
    (scan_count "#define SPAWN fork()\n" Forklore.Api.Fork);
  check_int "continued define not scanned" 0
    (scan_count "#define SPAWN \\\n  fork()\nint x;\n" Forklore.Api.Fork);
  check_int "include not scanned" 0
    (scan_count "#include <fork(h)>\n" Forklore.Api.Fork);
  (* code after the directive is still live *)
  check_int "code after define" 1
    (scan_count "#define N 4\nint main(void) { return fork(); }"
       Forklore.Api.Fork)

let test_lexer_if0_skipped () =
  check_int "#if 0 region dead" 0
    (scan_count "#if 0\nfork();\n#endif\n" Forklore.Api.Fork);
  check_int "code after #endif live" 1
    (scan_count "#if 0\nfork();\n#endif\nfork();\n" Forklore.Api.Fork);
  (* nested conditionals inside the dead region stay dead *)
  check_int "nested #if inside #if 0" 0
    (scan_count "#if 0\n#ifdef X\nfork();\n#endif\nfork();\n#endif\n"
       Forklore.Api.Fork);
  (* #if 1 and other conditionals keep their bodies *)
  check_int "#if 1 live" 1
    (scan_count "#if 1\nfork();\n#endif\n" Forklore.Api.Fork);
  check_int "#ifdef live" 1
    (scan_count "#ifdef HAVE_FORK\nfork();\n#endif\n" Forklore.Api.Fork)

let test_lexer_positions_after_splice () =
  (* positions keep pointing at the physical source line *)
  let r = Forklore.Scanner.scan_string "int x = \\\n1;\nfork();" in
  Alcotest.(check (list (triple string int int)))
    "post-splice spans"
    [ ("fork", 3, 1) ]
    (List.map
       (fun c -> Forklore.Scanner.(c.id, c.line, c.col))
       r.Forklore.Scanner.calls)

let prop_scanner_matches_truth =
  QCheck.Test.make ~count:30 ~name:"scanner: exact on generated corpus"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let pkgs = Forklore.Corpus.generate ~packages:20 ~seed () in
      match Forklore.Survey.validate pkgs with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Corpus + survey *)

let test_corpus_deterministic () =
  let a = Forklore.Corpus.generate ~packages:10 ~seed:1 () in
  let b = Forklore.Corpus.generate ~packages:10 ~seed:1 () in
  check_bool "same seed same corpus" true
    (List.for_all2
       (fun x y -> x.Forklore.Corpus.source = y.Forklore.Corpus.source)
       a b);
  let c = Forklore.Corpus.generate ~packages:10 ~seed:2 () in
  check_bool "different seed differs" true
    (List.exists2
       (fun x y -> x.Forklore.Corpus.source <> y.Forklore.Corpus.source)
       a c)

let test_survey_shape () =
  (* the generated mix must reproduce the paper's qualitative claim:
     fork-family dominates, posix_spawn is rare *)
  let pkgs = Forklore.Corpus.generate ~packages:400 ~seed:7 () in
  let rows = Forklore.Survey.of_packages pkgs in
  let share api =
    (List.find (fun r -> r.Forklore.Survey.api = api) rows)
      .Forklore.Survey.package_share
  in
  check_bool "fork common" true (share Forklore.Api.Fork > 0.25);
  check_bool "spawn rare" true (share Forklore.Api.Posix_spawn < 0.10);
  check_bool "fork >> spawn" true
    (share Forklore.Api.Fork > 4.0 *. share Forklore.Api.Posix_spawn)

let test_survey_validate_detects_tamper () =
  let pkgs = Forklore.Corpus.generate ~packages:5 ~seed:11 () in
  check_bool "honest corpus validates" true
    (Result.is_ok (Forklore.Survey.validate pkgs));
  let tampered =
    match pkgs with
    | p :: rest ->
      {
        p with
        Forklore.Corpus.truth =
          (Forklore.Api.Fork, Forklore.Corpus.truth_count p Forklore.Api.Fork + 1)
          :: List.remove_assoc Forklore.Api.Fork p.Forklore.Corpus.truth;
      }
      :: rest
    | [] -> Alcotest.fail "empty corpus"
  in
  check_bool "tampered truth is rejected" true
    (Result.is_error (Forklore.Survey.validate tampered))

let test_walk_reports_missing_root () =
  let bogus = "/no/such/forkroad-dir" in
  let files, skipped = Forklore.Scanner.walk_files bogus in
  check_int "no files" 0 (List.length files);
  check_bool "missing root is reported, not dropped" true
    (List.mem_assoc bogus skipped);
  let report = Forklore.Scanner.scan_directory bogus in
  check_int "nothing scanned" 0 report.Forklore.Scanner.files_scanned;
  check_bool "skip surfaces in dir report" true
    (List.mem_assoc bogus report.Forklore.Scanner.skipped)

let test_scan_directory () =
  let dir = Filename.temp_file "forkroad" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sub = Filename.concat dir "sub" in
  Unix.mkdir sub 0o755;
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  write (Filename.concat dir "a.c") "int main(){return fork();}";
  write (Filename.concat sub "b.c") "void f(){system(\"x\"); fork();}";
  write (Filename.concat dir "notes.txt") "fork() fork() fork()";
  let report = Forklore.Scanner.scan_directory dir in
  check_int "two C files" 2 report.Forklore.Scanner.files_scanned;
  check_int "forks" 2
    (List.assoc Forklore.Api.Fork report.Forklore.Scanner.total);
  check_int "system" 1
    (List.assoc Forklore.Api.System report.Forklore.Scanner.total);
  (* per-file view agrees with the aggregate *)
  let per_file = Forklore.Scanner.scan_directory_files dir in
  check_int "two entries" 2 (List.length per_file);
  check_int "hit ranking works" 3
    (List.fold_left (fun acc (_, r) -> acc + Forklore.Scanner.total_hits r) 0 per_file);
  (* cleanup *)
  Sys.remove (Filename.concat dir "a.c");
  Sys.remove (Filename.concat sub "b.c");
  Sys.remove (Filename.concat dir "notes.txt");
  Unix.rmdir sub;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.Splitmix.create ~seed:9 in
  let b = Prng.Splitmix.create ~seed:9 in
  check_bool "same stream" true
    (List.init 20 (fun _ -> Prng.Splitmix.next a)
    = List.init 20 (fun _ -> Prng.Splitmix.next b))

let prop_prng_int_bound =
  QCheck.Test.make ~count:200 ~name:"prng: int stays in bound"
    QCheck.(pair small_int (1 -- 1000))
    (fun (seed, bound) ->
      let rng = Prng.Splitmix.create ~seed in
      let v = Prng.Splitmix.int rng ~bound in
      v >= 0 && v < bound)

let prop_prng_float_unit =
  QCheck.Test.make ~count:200 ~name:"prng: float in [0,1)"
    QCheck.small_int
    (fun seed ->
      let rng = Prng.Splitmix.create ~seed in
      let f = Prng.Splitmix.float rng in
      f >= 0.0 && f < 1.0)

let test_prng_split_independent () =
  let a = Prng.Splitmix.create ~seed:5 in
  let b = Prng.Splitmix.split a in
  check_bool "split differs from parent stream" true
    (Prng.Splitmix.next a <> Prng.Splitmix.next b)

let test_prng_shuffle_permutes () =
  let rng = Prng.Splitmix.create ~seed:3 in
  let a = Array.init 50 (fun i -> i) in
  Prng.Splitmix.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_sweep_geometric () =
  Alcotest.(check (list int))
    "powers" [ 2; 8; 32 ]
    (Workload.Sweep.geometric ~base:2 ~factor:4 ~count:3);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Sweep.geometric: bad parameters") (fun () ->
      ignore (Workload.Sweep.geometric ~base:1 ~factor:1 ~count:3))

let test_sweep_units () =
  check_int "pages per MiB" 256 (Workload.Sweep.pages_of_mib 1);
  check_int "bytes" (1 lsl 20) (Workload.Sweep.bytes_of_mib 1)

let test_footprint () =
  let f = Workload.Footprint.allocate ~mib:1 in
  check_int "mib" 1 (Workload.Footprint.mib f);
  check_bool "touched" true (Workload.Footprint.checksum f > 0);
  Workload.Footprint.touch_again f;
  Workload.Footprint.release f;
  let empty = Workload.Footprint.allocate ~mib:0 in
  check_int "empty checksum" 0 (Workload.Footprint.checksum empty)

let test_timer_sample () =
  let samples = Workload.Timer.sample ~warmup:1 ~n:5 (fun () -> ignore (Sys.opaque_identity (1 + 1))) in
  check_int "n samples" 5 (Array.length samples);
  check_bool "non-negative" true (Array.for_all (fun t -> t >= 0.0) samples)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let tc n f = Alcotest.test_case n `Quick f

let () =
  Alcotest.run "forklore"
    [
      ( "scanner",
        [
          tc "counts calls" test_scanner_counts_calls;
          tc "ignores comments" test_scanner_ignores_comments;
          tc "ignores strings" test_scanner_ignores_strings;
          tc "escaped quotes" test_scanner_escaped_quotes;
          tc "identifier boundaries" test_scanner_identifier_boundaries;
          tc "no paren no call" test_scanner_no_paren_no_call;
          tc "exec family" test_scanner_exec_family;
          tc "line count" test_scanner_lines;
          tc "call across newline/comment" test_scanner_call_across_newline;
          tc "char literals" test_scanner_char_literals;
          tc "unterminated block comment" test_scanner_unterminated_block_comment;
          tc "comment markers in strings" test_scanner_comment_markers_in_strings;
          tc "call positions" test_scanner_call_positions;
          tc "declarator position" test_scanner_declarator_position;
          tc "scan directory" test_scan_directory;
          tc "missing root reported" test_walk_reports_missing_root;
        ] );
      ( "lexer",
        [
          tc "backslash-newline splice" test_lexer_backslash_newline_splice;
          tc "directives emit nothing" test_lexer_directives_emit_nothing;
          tc "#if 0 skipped" test_lexer_if0_skipped;
          tc "positions after splice" test_lexer_positions_after_splice;
        ] );
      qsuite "scanner-props" [ prop_scanner_matches_truth ];
      ( "corpus",
        [
          tc "deterministic" test_corpus_deterministic;
          tc "survey shape" test_survey_shape;
          tc "validate rejects tampered truth" test_survey_validate_detects_tamper;
        ] );
      ( "prng",
        [
          tc "deterministic" test_prng_deterministic;
          tc "split" test_prng_split_independent;
          tc "shuffle" test_prng_shuffle_permutes;
        ] );
      qsuite "prng-props" [ prop_prng_int_bound; prop_prng_float_unit ];
      ( "workload",
        [
          tc "geometric sweep" test_sweep_geometric;
          tc "units" test_sweep_units;
          tc "footprint" test_footprint;
          tc "timer" test_timer_sample;
        ] );
    ]
