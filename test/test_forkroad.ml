(* Tests for the forkroad core library: drivers, procbuilder, and every
   experiment in quick mode (both smoke and shape assertions). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "expected Ok"

(* ------------------------------------------------------------------ *)
(* Strategy *)

let test_strategy_names () =
  List.iter
    (fun s ->
      match Forkroad.Strategy.of_name (Forkroad.Strategy.name s) with
      | Some s' -> check_bool "roundtrip" true (s = s')
      | None -> Alcotest.fail "name roundtrip")
    Forkroad.Strategy.all;
  check_bool "builder not real" false
    (Forkroad.Strategy.supported_real Forkroad.Strategy.Builder);
  check_bool "fork_exec real" true
    (Forkroad.Strategy.supported_real Forkroad.Strategy.Fork_exec)

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_render () =
  let t = Metrics.Table.create [ "a"; "b" ] in
  Metrics.Table.add_row t [ "1"; "2" ];
  let r =
    Forkroad.Report.make ~id:"X1" ~title:"demo"
      [
        Forkroad.Report.Table { caption = "cap"; table = t };
        Forkroad.Report.Note "a note";
      ]
  in
  let s = Forkroad.Report.render r in
  check_bool "has id" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "[X1] demo"));
  check_bool "has caption" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "cap"));
  check_bool "has note" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "note: a note"))

(* ------------------------------------------------------------------ *)
(* Sim driver *)

let creation_ns strategy heap_mib =
  (Forkroad.Sim_driver.creation_cost ~strategy ~heap_mib ()).Forkroad.Sim_driver.ns

let test_sim_fork_scales () =
  let small = creation_ns Forkroad.Strategy.Fork_exec 0 in
  let big = creation_ns Forkroad.Strategy.Fork_exec 256 in
  check_bool "fork+exec grows" true (big > small *. 3.0)

let test_sim_spawn_flat () =
  let small = creation_ns Forkroad.Strategy.Posix_spawn 0 in
  let big = creation_ns Forkroad.Strategy.Posix_spawn 256 in
  check_bool "spawn flat" true (big < small *. 1.2 && big > small *. 0.8)

let test_sim_vfork_flat_and_cheap () =
  let vfork_small = creation_ns Forkroad.Strategy.Vfork_exec 0 in
  let vfork = creation_ns Forkroad.Strategy.Vfork_exec 256 in
  let fork = creation_ns Forkroad.Strategy.Fork_exec 256 in
  check_bool "vfork cheaper than fork at 256MiB" true (vfork < fork /. 2.0);
  check_bool "vfork flat in parent size" true
    (vfork < vfork_small *. 1.2 && vfork > vfork_small *. 0.8)

let test_sim_crossover () =
  (* the paper's headline: beyond small footprints fork+exec loses to
     spawn, and the gap widens *)
  let fork_0 = creation_ns Forkroad.Strategy.Fork_exec 0 in
  let spawn_0 = creation_ns Forkroad.Strategy.Posix_spawn 0 in
  let fork_256 = creation_ns Forkroad.Strategy.Fork_exec 256 in
  let spawn_256 = creation_ns Forkroad.Strategy.Posix_spawn 256 in
  check_bool "similar when empty" true (fork_0 < spawn_0 *. 1.5);
  check_bool "fork loses big" true (fork_256 > spawn_256 *. 2.0)

let test_sim_deterministic () =
  let a = creation_ns Forkroad.Strategy.Fork_exec 16 in
  let b = creation_ns Forkroad.Strategy.Fork_exec 16 in
  Alcotest.(check (float 0.0)) "bit-for-bit" a b

let test_sim_vma_sensitivity () =
  let few =
    (Forkroad.Sim_driver.creation_cost ~vmas:1
       ~strategy:Forkroad.Strategy.Fork_only ~heap_mib:64 ())
      .Forkroad.Sim_driver.ns
  in
  let many =
    (Forkroad.Sim_driver.creation_cost ~vmas:1024
       ~strategy:Forkroad.Strategy.Fork_only ~heap_mib:64 ())
      .Forkroad.Sim_driver.ns
  in
  check_bool "more VMAs cost more" true (many > few)

(* ------------------------------------------------------------------ *)
(* Real driver (cheap smoke: empty footprint, few samples) *)

let test_real_driver_all_supported () =
  List.iter
    (fun s ->
      if Forkroad.Strategy.supported_real s then begin
        let st = Forkroad.Real_driver.creation_stats ~strategy:s ~samples:3 in
        check_int "samples" 3 st.Metrics.Stats.count;
        check_bool "positive latency" true (st.Metrics.Stats.min > 0.0)
      end)
    Forkroad.Strategy.all

let test_real_driver_rejects_sim_only () =
  match Forkroad.Real_driver.creation_once Forkroad.Strategy.Builder with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected failure"

(* ------------------------------------------------------------------ *)
(* Procbuilder *)

let boot_with body extra_programs =
  let init = Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () -> body ()) in
  let true_prog =
    Ksim.Program.make ~name:"/bin/true" (fun ~argv:_ () -> Ksim.Api.exit 0)
  in
  match
    Ksim.Kernel.boot ~programs:(init :: true_prog :: extra_programs) "/sbin/init"
  with
  | Error _ -> Alcotest.fail "boot failed"
  | Ok (t, outcome) -> (t, outcome)

let test_procbuilder_minimal () =
  let t, outcome =
    boot_with
      (fun () ->
        let pid = ok (Forkroad.Procbuilder.spawn_minimal "/bin/echo-done") in
        ignore (ok (Ksim.Api.wait_for pid)))
      [
        Ksim.Program.make ~name:"/bin/echo-done" (fun ~argv:_ () ->
            Ksim.Api.print "built!";
            Ksim.Api.exit 0);
      ]
  in
  check_bool "completed" true (outcome = Ksim.Kernel.All_exited);
  check_str "child ran with stdio" "built!" (Ksim.Kernel.console t)

let test_procbuilder_premapped_memory () =
  (* parent maps memory in the embryo and writes initial data; the child
     reads it back at the address passed through argv *)
  let reader =
    Ksim.Program.make ~name:"/bin/reader" (fun ~argv () ->
        let addr = int_of_string (List.hd argv) in
        let s = ok (Ksim.Api.mem_read ~addr ~len:5) in
        Ksim.Api.print s;
        Ksim.Api.exit 0)
  in
  let t, outcome =
    boot_with
      (fun () ->
        let b = ok (Forkroad.Procbuilder.create ()) in
        let addr =
          ok (Forkroad.Procbuilder.map b ~len:Vmem.Addr.page_size ~perm:Vmem.Perm.rw)
        in
        ok (Forkroad.Procbuilder.write b ~addr "hello");
        ok (Forkroad.Procbuilder.copy_stdio b);
        ok (Forkroad.Procbuilder.start b ~argv:[ string_of_int addr ] "/bin/reader");
        ignore (ok (Ksim.Api.wait_for (Forkroad.Procbuilder.pid b))))
      [ reader ]
  in
  check_bool "completed" true (outcome = Ksim.Kernel.All_exited);
  check_str "child saw pre-written memory" "hello" (Ksim.Kernel.console t)

let test_procbuilder_started_child_rejected () =
  let _, outcome =
    boot_with
      (fun () ->
        let b = ok (Forkroad.Procbuilder.create ()) in
        ok (Forkroad.Procbuilder.copy_stdio b);
        ok (Forkroad.Procbuilder.start b "/bin/true");
        (* the embryo has hatched: further builder ops must fail *)
        (match Forkroad.Procbuilder.map b ~len:4096 ~perm:Vmem.Perm.rw with
        | Error Ksim.Errno.EINVAL -> Ksim.Api.print "einval"
        | Error _ | Ok _ -> Ksim.Api.print "unexpected");
        ignore (ok (Ksim.Api.wait_for (Forkroad.Procbuilder.pid b))))
      []
  in
  check_bool "completed" true (outcome = Ksim.Kernel.All_exited)

let test_procbuilder_foreign_child_rejected () =
  let _, outcome =
    boot_with
      (fun () ->
        (* a pid that is not our embryo child *)
        match Ksim.Api.pb_map ~pid:4242 ~len:4096 ~perm:Vmem.Perm.rw with
        | Error Ksim.Errno.ESRCH -> ()
        | Error _ | Ok _ -> Alcotest.fail "expected ESRCH")
      []
  in
  check_bool "completed" true (outcome = Ksim.Kernel.All_exited)

(* ------------------------------------------------------------------ *)
(* Experiments, quick mode *)

let find_exp id =
  match Forkroad.Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "experiment %s missing" id

let run_exp id = (find_exp id).Forkroad.Report.run ~quick:true

(* whitespace-insensitive line match: runs of blanks collapse to one
   space before the substring test, so table padding doesn't matter *)
let squeeze s =
  let buf = Buffer.create (String.length s) in
  let last_blank = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' then begin
        if not !last_blank then Buffer.add_char buf ' ';
        last_blank := true
      end
      else begin
        Buffer.add_char buf c;
        last_blank := false
      end)
    (String.trim s);
  Buffer.contents buf

let contains_line report needle =
  String.split_on_char '\n' (Forkroad.Report.render report)
  |> List.exists (fun l ->
         let l = squeeze l in
         let rec scan i =
           i + String.length needle <= String.length l
           && (String.sub l i (String.length needle) = needle || scan (i + 1))
         in
         scan 0)

let test_registry_complete () =
  Alcotest.(check (list string))
    "ids in paper order"
    [ "T1"; "F1"; "F1-SIM"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9";
      "E10"; "E11"; "E12"; "E13"; "E14"; "E16"; "E17"; "E18" ]
    Forkroad.Registry.ids;
  check_bool "case-insensitive find" true
    (Option.is_some (Forkroad.Registry.find "f1-sim"))

let test_exp_fig1_sim () =
  let r = run_exp "F1-SIM" in
  check_bool "has fork series" true (contains_line r "fork+exec");
  check_bool "has spawn series" true (contains_line r "posix_spawn")

(* Acceptance: the per-point cost breakdown that BENCH_fig1_sim.json
   carries (the "points" data block of the F1-SIM report) must sum to
   within 1% of each point's headline simulated cost. *)
let test_fig1_sim_breakdown_sums () =
  let r = run_exp "F1-SIM" in
  let j = Forkroad.Report.to_json r in
  let open Metrics.Json in
  let blocks =
    Option.get (Option.bind (member "blocks" j) to_list)
  in
  let points =
    match
      List.find_opt
        (fun b ->
          Option.bind (member "kind" b) to_str = Some "data"
          && Option.bind (member "name" b) to_str = Some "points")
        blocks
    with
    | None -> Alcotest.fail "F1-SIM report has no points data block"
    | Some b -> Option.get (Option.bind (member "data" b) to_list)
  in
  check_bool "points non-empty" true (points <> []);
  List.iter
    (fun p ->
      let num k = Option.get (Option.bind (member k p) to_num) in
      let cycles = num "cycles" in
      let group_sum =
        match member "groups" p with
        | Some (Obj gs) ->
          List.fold_left
            (fun acc (_, v) -> acc +. Option.get (to_num v)) 0.0 gs
        | _ -> Alcotest.fail "point has no groups object"
      in
      check_bool
        (Printf.sprintf "groups sum within 1%% (%s @ %d MiB)"
           (Option.get (Option.bind (member "strategy" p) to_str))
           (Option.get (Option.bind (member "mib" p) to_int)))
        true
        (Float.abs (group_sum -. cycles) <= 0.01 *. cycles);
      (* and the headline ns is just the cycle total through the clock
         model, so the breakdown explains the latency too *)
      check_bool "ns consistent" true
        (Float.abs (Vmem.Cost.cycles_to_ns cycles -. num "ns")
        <= 0.01 *. num "ns"))
    points

let test_sim_driver_groups_partition () =
  let m =
    Forkroad.Sim_driver.creation_cost ~strategy:Forkroad.Strategy.Fork_exec
      ~heap_mib:16 ()
  in
  let sum l = List.fold_left (fun a (_, c) -> a +. c) 0.0 l in
  Alcotest.(check (float 1e-6))
    "groups sum to headline" m.Forkroad.Sim_driver.cycles
    (sum m.Forkroad.Sim_driver.groups);
  Alcotest.(check (float 1e-6))
    "breakdown sums to headline" m.Forkroad.Sim_driver.cycles
    (sum m.Forkroad.Sim_driver.breakdown);
  (* differential counters isolate the creation itself *)
  check_bool "one fork" true
    (List.assoc_opt "forks" m.Forkroad.Sim_driver.counters = Some 1);
  check_bool "ptes copied" true
    (match List.assoc_opt "ptes-copied" m.Forkroad.Sim_driver.counters with
    | Some n -> n > 0
    | None -> false)

let test_stat_driver () =
  check_bool "unknown scenario" true (Forkroad.Stat_driver.run "nope" = None);
  List.iter
    (fun (key, _) ->
      match Forkroad.Stat_driver.run key with
      | None -> Alcotest.failf "scenario %s missing" key
      | Some { Forkroad.Stat_driver.report; trace; _ } ->
        check_bool
          (key ^ " renders")
          true
          (String.length (Forkroad.Report.render report) > 200);
        check_bool (key ^ " traced") true (Ksim.Trace.events trace <> []))
    Forkroad.Stat_driver.scenarios

let test_exp_minproc () =
  let r = run_exp "T1" in
  check_bool "all strategies present" true
    (List.for_all
       (fun s -> contains_line r (Forkroad.Strategy.name s))
       Forkroad.Strategy.all)

let test_exp_cowtax () =
  let r = run_exp "E2" in
  check_bool "cow series" true (contains_line r "forked child (COW breaks)")

let test_exp_threads () =
  let r = run_exp "E3" in
  check_bool "fork series" true (contains_line r "fork child");
  check_bool "spawn series" true (contains_line r "posix_spawn child")

let test_exp_threads_deadlocks_happen () =
  (* at 8 threads, some of 40 random schedules must deadlock, and spawn
     never does *)
  let fork_rate =
    Forkroad.Exp_threads.deadlock_rate ~threads:8 ~use_spawn:false ~trials:40 ()
  in
  let spawn_rate =
    Forkroad.Exp_threads.deadlock_rate ~threads:8 ~use_spawn:true ~trials:40 ()
  in
  check_bool "fork deadlocks sometimes" true (fork_rate > 0.0);
  Alcotest.(check (float 0.0)) "spawn never deadlocks" 0.0 spawn_rate

let test_par_deterministic () =
  (* The domain-parallel harness must not perturb a single simulated
     number: E3's seed sweep — one kernel boot per seed, fanned out over
     a Par pool — yields the same rate at any worker count, and Par.map
     itself preserves input order. *)
  let sequential =
    Forkroad.Exp_threads.deadlock_rate ~jobs:1 ~threads:8 ~use_spawn:false
      ~trials:40 ()
  in
  let parallel =
    Forkroad.Exp_threads.deadlock_rate ~jobs:4 ~threads:8 ~use_spawn:false
      ~trials:40 ()
  in
  Alcotest.(check (float 0.0)) "jobs=1 vs jobs=4" sequential parallel;
  let squares = Workload.Par.map ~jobs:4 (fun x -> x * x) (List.init 100 Fun.id) in
  check_bool "Par.map keeps input order" true
    (squares = List.init 100 (fun x -> x * x));
  check_bool "Par.map on empty list" true (Workload.Par.map ~jobs:4 Fun.id [] = []);
  (match Workload.Par.map ~jobs:4 (fun x -> if x = 3 then failwith "boom" else x) [ 1; 2; 3 ] with
  | exception Failure msg -> Alcotest.(check string) "exception propagates" "boom" msg
  | _ -> Alcotest.fail "expected Par.map to re-raise the worker's exception")

let test_exp_stdio () =
  let r = run_exp "E4" in
  (* with 4096 buffered bytes, fork duplicates all of them, spawn none *)
  check_bool "fork duplicates" true (contains_line r "4096 4096 0")

let test_exp_aslr () =
  let r = run_exp "E5" in
  (* fork: one distinct layout, zero entropy *)
  check_bool "fork: 1 layout" true (contains_line r "fork 50 1 0.00")

let test_exp_overcommit () =
  let r = run_exp "E6" in
  check_bool "30% forks under strict" true (contains_line r "30.0% ok ok");
  check_bool "60% fails strict, ok overcommit" true
    (contains_line r "60.0% ENOMEM ok")

let test_exp_survey () =
  let r = run_exp "E7" in
  check_bool "fork row" true (contains_line r "fork");
  check_bool "spawn row" true (contains_line r "posix_spawn")

let test_exp_vma () =
  let r = run_exp "E8" in
  check_bool "renders" true (contains_line r "VMAs")

let test_exp_tlb () =
  let r = run_exp "E9" in
  check_bool "three strategies" true
    (contains_line r "fork-only" && contains_line r "fork-eager"
    && contains_line r "posix_spawn")

let test_exp_builder () =
  let r = run_exp "E10" in
  check_bool "builder row" true (contains_line r "procbuilder")

let test_exp_snapshot () =
  let r = run_exp "E11" in
  check_bool "cow row" true (contains_line r "fork (COW)");
  check_bool "eager row" true (contains_line r "fork (eager)")

let test_exp_thp () =
  let r = run_exp "E12" in
  check_bool "both series" true
    (contains_line r "4 KiB pages" && contains_line r "2 MiB pages (THP)");
  (* THP must flatten the 256MiB point dramatically *)
  let plain = Forkroad.Exp_thp.creation_ns ~heap_mib:256 () in
  let thp =
    Forkroad.Exp_thp.creation_ns ~params:Forkroad.Exp_thp.thp_params
      ~heap_mib:256 ()
  in
  check_bool "THP flattens fork cost" true (thp < plain /. 2.0)

let test_exp_pressure () =
  let r = run_exp "E13" in
  (* the pressure curve's headline: fork dies first, the others survive *)
  check_bool "fork gives up with ENOMEM" true (contains_line r "ENOMEM");
  check_bool "vfork row" true (contains_line r "vfork");
  check_bool "retry absorbs the injected fault" true
    (contains_line r "builder + retry")

let test_snapshot_tradeoff () =
  (* COW: small pause, real re-dirty tax; eager: huge pause, ~free re-dirty *)
  let pause s =
    (Forkroad.Sim_driver.creation_cost ~strategy:s ~heap_mib:64 ())
      .Forkroad.Sim_driver.ns
  in
  let cow_pause = pause Forkroad.Strategy.Fork_only in
  let eager_pause = pause Forkroad.Strategy.Fork_eager in
  check_bool "eager pause dwarfs COW pause" true (eager_pause > cow_pause *. 10.0);
  let cow_tax = Forkroad.Exp_snapshot.redirty_cost ~eager:false ~heap_mib:64 in
  let eager_tax = Forkroad.Exp_snapshot.redirty_cost ~eager:true ~heap_mib:64 in
  check_bool "COW defers a real tax" true (cow_tax > eager_tax *. 10.0)

let tc n f = Alcotest.test_case n `Quick f
let slow n f = Alcotest.test_case n `Slow f

let () =
  Alcotest.run "forkroad"
    [
      ("strategy", [ tc "names" test_strategy_names ]);
      ("report", [ tc "render" test_report_render ]);
      ( "sim-driver",
        [
          tc "fork scales" test_sim_fork_scales;
          tc "spawn flat" test_sim_spawn_flat;
          tc "vfork cheap" test_sim_vfork_flat_and_cheap;
          tc "crossover" test_sim_crossover;
          tc "deterministic" test_sim_deterministic;
          tc "vma sensitivity" test_sim_vma_sensitivity;
        ] );
      ( "real-driver",
        [
          tc "all supported strategies" test_real_driver_all_supported;
          tc "rejects sim-only" test_real_driver_rejects_sim_only;
        ] );
      ( "procbuilder",
        [
          tc "minimal" test_procbuilder_minimal;
          tc "premapped memory" test_procbuilder_premapped_memory;
          tc "started child rejected" test_procbuilder_started_child_rejected;
          tc "foreign child rejected" test_procbuilder_foreign_child_rejected;
        ] );
      ( "experiments",
        [
          tc "registry" test_registry_complete;
          slow "F1-SIM" test_exp_fig1_sim;
          slow "F1-SIM breakdown sums" test_fig1_sim_breakdown_sums;
          slow "sim groups partition" test_sim_driver_groups_partition;
          slow "stat driver" test_stat_driver;
          slow "T1" test_exp_minproc;
          slow "E2" test_exp_cowtax;
          slow "E3" test_exp_threads;
          slow "E3 deadlocks happen" test_exp_threads_deadlocks_happen;
          slow "Par determinism" test_par_deterministic;
          slow "E4" test_exp_stdio;
          slow "E5" test_exp_aslr;
          slow "E6" test_exp_overcommit;
          slow "E7" test_exp_survey;
          slow "E8" test_exp_vma;
          slow "E9" test_exp_tlb;
          slow "E10" test_exp_builder;
          slow "E11" test_exp_snapshot;
          slow "E11 tradeoff" test_snapshot_tradeoff;
          slow "E12" test_exp_thp;
          slow "E13" test_exp_pressure;
        ] );
    ]
