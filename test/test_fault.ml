(* Fault-injection invariant checker, run under a fixed seed by the
   @fault-smoke alias (part of `dune runtest`).

   Three layers:
   - unit tests on Ksim.Fault itself (validation, Nth/random triggers,
     determinism of a schedule's injection points);
   - errno hygiene: exhaustive to_string/of_string round-trip, and every
     errno a traced syscall actually replies with is in that syscall's
     documented set (Sysreq.errnos_of_name);
   - the rollback invariants: a failed fork (strict commit or injected
     mid-copy) leaves frame counters, commit charges and the pid table
     exactly as they were; a failed builder start can be retried on the
     same embryo; and a QCheck sweep of random programs x random fault
     schedules never leaks a frame or a commit charge, and never lies
     about an injected errno. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let errno = Alcotest.testable Ksim.Errno.pp Ksim.Errno.equal

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "expected Ok, got %s" (Ksim.Errno.to_string e)

let expect_errno e = function
  | Error got -> Alcotest.check errno "errno" e got
  | Ok _ -> Alcotest.fail "expected Error"

let page = Vmem.Addr.page_size

let prog name body = Ksim.Program.make ~name (fun ~argv () -> body argv)
let true_prog = prog "/bin/true" (fun _ -> Ksim.Api.exit 0)

(* Boot a kernel whose init body can see the machine itself (to read
   fault occurrence counters and frame/kstat state mid-run). *)
let boot_with ~config body =
  let tref = ref None in
  let init = prog "/sbin/init" (fun _ -> body (Option.get !tref)) in
  let t = Ksim.Kernel.create ~config () in
  Ksim.Kernel.register_all t [ init; true_prog ];
  tref := Some t;
  (match Ksim.Kernel.spawn_init t "/sbin/init" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "spawn_init failed: %s" (Ksim.Errno.to_string e));
  let outcome = Ksim.Kernel.run t in
  (t, outcome)

let all_exited = function
  | Ksim.Kernel.All_exited -> ()
  | o -> Alcotest.failf "expected all-exited, got %a" Ksim.Kernel.pp_outcome o

(* A schedule that can never fire: used by probe runs that only want to
   read the occurrence counters a real schedule would index into. *)
let sentinel = { Ksim.Fault.seed = 0; triggers = [ Ksim.Fault.Frame_alloc_nth 1_000_000 ] }

let fi t = Option.get (Ksim.Kernel.fault t)

(* ------------------------------------------------------------------ *)
(* Fault unit tests *)

let test_validate () =
  let valid triggers =
    Result.is_ok (Ksim.Fault.validate { Ksim.Fault.seed = 1; triggers })
  in
  check_bool "empty ok" true (valid []);
  check_bool "nth ok" true (valid [ Ksim.Fault.Frame_alloc_nth 1 ]);
  check_bool "nth 0 rejected" false (valid [ Ksim.Fault.Commit_nth 0 ]);
  check_bool "p > 1 rejected" false (valid [ Ksim.Fault.Frame_alloc_random 1.5 ]);
  check_bool "negative p rejected" false (valid [ Ksim.Fault.Commit_random (-0.1) ]);
  check_bool "injectable errno ok" true
    (valid
       [ Ksim.Fault.Syscall_nth { kind = "fork"; nth = 1; errno = Ksim.Errno.EAGAIN } ]);
  check_bool "EPERM not injectable" false
    (valid
       [ Ksim.Fault.Syscall_nth { kind = "fork"; nth = 1; errno = Ksim.Errno.EPERM } ]);
  check_bool "create raises on bad spec" true
    (try
       ignore
         (Ksim.Fault.create
            { Ksim.Fault.seed = 0; triggers = [ Ksim.Fault.Frame_alloc_nth 0 ] });
       false
     with Invalid_argument _ -> true)

let test_nth_triggers () =
  let f =
    Ksim.Fault.create
      {
        Ksim.Fault.seed = 0;
        triggers =
          [
            Ksim.Fault.Frame_alloc_nth 3;
            Ksim.Fault.Syscall_nth
              { kind = "fork"; nth = 2; errno = Ksim.Errno.EINTR };
          ];
      }
  in
  let denies = List.init 5 (fun _ -> Ksim.Fault.on_frame_alloc f) in
  Alcotest.(check (list bool))
    "only the 3rd alloc denied"
    [ false; false; true; false; false ]
    denies;
  check_int "alloc seen" 5 (Ksim.Fault.seen f Ksim.Fault.Frame_alloc);
  check_int "alloc injected" 1 (Ksim.Fault.injected f Ksim.Fault.Frame_alloc);
  (* per-kind counting: an mmap dispatch does not advance fork's nth *)
  check_bool "mmap not hit" true (Ksim.Fault.on_syscall f ~kind:"mmap" = None);
  check_bool "1st fork not hit" true (Ksim.Fault.on_syscall f ~kind:"fork" = None);
  (match Ksim.Fault.on_syscall f ~kind:"fork" with
  | Some e -> Alcotest.check errno "2nd fork gets EINTR" Ksim.Errno.EINTR e
  | None -> Alcotest.fail "2nd fork should be injected");
  check_int "total" 2 (Ksim.Fault.total_injected f)

(* Same spec, same call sequence: identical injection decisions. *)
let test_determinism () =
  let spec =
    {
      Ksim.Fault.seed = 123;
      triggers =
        [
          Ksim.Fault.Frame_alloc_random 0.3;
          Ksim.Fault.Commit_random 0.2;
          Ksim.Fault.Syscall_random
            { kind = None; p = 0.25; errno = Ksim.Errno.EAGAIN };
        ];
    }
  in
  let run () =
    let f = Ksim.Fault.create spec in
    List.init 300 (fun i ->
        match i mod 3 with
        | 0 -> string_of_bool (Ksim.Fault.on_frame_alloc f)
        | 1 -> string_of_bool (Ksim.Fault.on_commit f)
        | _ -> (
          match Ksim.Fault.on_syscall f ~kind:"mmap" with
          | None -> "-"
          | Some e -> Ksim.Errno.to_string e))
  in
  Alcotest.(check (list string)) "identical decisions" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Errno hygiene *)

let test_errno_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.(check (option errno))
        (Ksim.Errno.to_string e) (Some e)
        (Ksim.Errno.of_string (Ksim.Errno.to_string e)))
    Ksim.Errno.all;
  let names = List.map Ksim.Errno.to_string Ksim.Errno.all in
  check_int "names distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  check_bool "unknown is None" true (Ksim.Errno.of_string "ENOSUCH" = None)

let test_errno_domains () =
  (* every fallible syscall documents a domain, and the domain always
     includes the injectable transients *)
  List.iter
    (fun name ->
      match Ksim.Sysreq.errnos_of_name name with
      | None -> Alcotest.failf "%s has no errno domain" name
      | Some dom ->
        List.iter
          (fun e ->
            check_bool
              (Printf.sprintf "%s domain has %s" name (Ksim.Errno.to_string e))
              true (List.mem e dom))
          Ksim.Fault.injectable)
    [
      "fork"; "vfork"; "posix_spawn"; "execve"; "waitpid"; "open"; "close";
      "read"; "write"; "mmap"; "munmap"; "kill"; "pipe"; "dup"; "dup2";
      "pb_create"; "pb_start"; "template_freeze"; "template_spawn";
      "template_discard";
    ];
  (* infallible syscalls have none *)
  check_bool "getpid has no domain" true (Ksim.Sysreq.errnos_of_name "getpid" = None);
  check_bool "unknown has no domain" true (Ksim.Sysreq.errnos_of_name "nosuch" = None)

(* Drive a handful of real failure paths and check every errno the
   kernel actually replied with against the documented set. *)
let test_traced_errnos_in_domain () =
  let config =
    { Ksim.Kernel.default_config with Ksim.Kernel.trace_capacity = Some 4096 }
  in
  let t, outcome =
    boot_with ~config (fun _ ->
        expect_errno Ksim.Errno.ENOENT
          (Ksim.Api.openf ~flags:Ksim.Types.o_rdonly "/missing");
        expect_errno Ksim.Errno.EBADF (Ksim.Api.close 99);
        expect_errno Ksim.Errno.ECHILD (Ksim.Api.wait_for 999);
        expect_errno Ksim.Errno.ESRCH (Ksim.Api.kill 999 Ksim.Usignal.SIGTERM);
        expect_errno Ksim.Errno.ENOENT (Ksim.Api.spawn "/missing");
        expect_errno Ksim.Errno.EBADF (Ksim.Api.dup 99);
        (match Ksim.Api.read 99 1 with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "read of bad fd succeeded"))
  in
  all_exited outcome;
  let tr = Option.get (Ksim.Kernel.trace t) in
  let errors =
    List.filter_map
      (fun (e : Ksim.Trace.event) ->
        match (e.Ksim.Trace.phase, e.Ksim.Trace.outcome) with
        | Ksim.Trace.End, Some (Ksim.Trace.Err err) -> Some (e.Ksim.Trace.what, err)
        | _ -> None)
      (Ksim.Trace.events tr)
  in
  check_bool "saw failures" true (List.length errors >= 6);
  List.iter
    (fun (what, err) ->
      match Ksim.Sysreq.errnos_of_name what with
      | None -> Alcotest.failf "%s replied an errno but has no domain" what
      | Some dom ->
        check_bool
          (Printf.sprintf "%s may reply %s" what (Ksim.Errno.to_string err))
          true (List.mem err dom))
    errors

(* ------------------------------------------------------------------ *)
(* Rollback invariants *)

let frame_counter_keys =
  [ "frames-copied"; "frames-zeroed"; "pt-pages-copied"; "ptes-copied" ]

let frame_counters t =
  List.filter
    (fun (k, _) -> List.mem k frame_counter_keys)
    (Ksim.Kstat.snapshot (Ksim.Kstat.global (Ksim.Kernel.kstat t)))

let pid_table t =
  List.sort compare (List.map (fun p -> p.Ksim.Proc.pid) (Ksim.Kernel.procs t))

type machine_snap = {
  used : int;
  committed : int;
  counters : (string * int) list;
  pids : int list;
}

let snap t =
  {
    used = Vmem.Frame.used (Ksim.Kernel.frames t);
    committed = Vmem.Frame.committed (Ksim.Kernel.frames t);
    counters = frame_counters t;
    pids = pid_table t;
  }

let check_snap_eq msg a b =
  check_int (msg ^ ": frames used") a.used b.used;
  check_int (msg ^ ": commit charge") a.committed b.committed;
  Alcotest.(check (list (pair string int)))
    (msg ^ ": frame counters") a.counters b.counters;
  Alcotest.(check (list int)) (msg ^ ": pid table") a.pids b.pids

(* The ISSUE 4 regression: a fork refused by strict commit accounting
   must leave the machine exactly as it found it. *)
let test_failed_fork_strict_commit () =
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.phys_pages = 2048;
      commit_policy = Vmem.Frame.Strict;
      aslr = false;
    }
  in
  let t, outcome =
    boot_with ~config (fun t ->
        let len = 1200 * page in
        let addr = ok (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len));
        let before = snap t in
        expect_errno Ksim.Errno.ENOMEM
          (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0));
        check_snap_eq "failed fork" before (snap t);
        (* the parent is untouched and still fully usable *)
        ignore (ok (Ksim.Api.touch ~addr ~len)))
  in
  all_exited outcome;
  check_int "no frame leak" 0 (Vmem.Frame.used (Ksim.Kernel.frames t));
  check_int "no commit leak" 0 (Vmem.Frame.committed (Ksim.Kernel.frames t))

(* An eager fork killed mid frame-copy by an injected allocation failure
   must undo the partial child: probe run finds the allocation count at
   the fork call, the real run fails allocation 10 of the copy. The copy
   counters legitimately move (work was done, then undone), so the
   equality check covers frames, commit charge and the pid table. *)
let test_injected_fork_eager_rollback () =
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.phys_pages = 65_536;
      aslr = false;
    }
  in
  let body ~handle t =
    let len = 64 * page in
    let addr = ok (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw) in
    ignore (ok (Ksim.Api.touch ~addr ~len));
    let allocs_before = Ksim.Fault.seen (fi t) Ksim.Fault.Frame_alloc in
    let before = snap t in
    let r = Ksim.Api.fork_eager ~child:(fun () -> Ksim.Api.exit 0) in
    handle t ~allocs_before ~before r
  in
  (* probe: where does the eager fork start allocating? *)
  let at_fork = ref 0 in
  let config_probe = { config with Ksim.Kernel.fault = Some sentinel } in
  let _, outcome =
    boot_with ~config:config_probe
      (body ~handle:(fun _ ~allocs_before ~before:_ r ->
           at_fork := allocs_before;
           match r with
           | Ok pid -> ignore (ok (Ksim.Api.wait_for pid))
           | Error e -> Alcotest.failf "probe fork failed: %s" (Ksim.Errno.to_string e)))
  in
  all_exited outcome;
  (* real run: deny the 10th allocation of the copy *)
  let fault =
    {
      Ksim.Fault.seed = 0;
      triggers = [ Ksim.Fault.Frame_alloc_nth (!at_fork + 10) ];
    }
  in
  let config = { config with Ksim.Kernel.fault = Some fault } in
  let t, outcome =
    boot_with ~config
      (body ~handle:(fun t ~allocs_before:_ ~before r ->
           (match r with
           | Ok _ -> Alcotest.fail "eager fork should have been denied"
           | Error e -> Alcotest.check errno "injected errno" Ksim.Errno.ENOMEM e);
           let after = snap t in
           check_int "frames restored" before.used after.used;
           check_int "commit restored" before.committed after.committed;
           Alcotest.(check (list int)) "pid table restored" before.pids after.pids;
           (* rollback left the machine usable: the same fork now succeeds *)
           let pid = ok (Ksim.Api.fork_eager ~child:(fun () -> Ksim.Api.exit 0)) in
           ignore (ok (Ksim.Api.wait_for pid))))
  in
  all_exited outcome;
  check_int "one injection" 1 (Ksim.Fault.injected (fi t) Ksim.Fault.Frame_alloc);
  check_int "kstat saw it" 1
    (List.assoc "inj-frame-allocs"
       (Ksim.Kstat.snapshot (Ksim.Kstat.global (Ksim.Kernel.kstat t))));
  check_int "no frame leak" 0 (Vmem.Frame.used (Ksim.Kernel.frames t));
  check_int "no commit leak" 0 (Vmem.Frame.committed (Ksim.Kernel.frames t))

(* A pb_start killed mid image-load must unmap the partial image: the
   same embryo can then be started again (the pre-fix failure mode was
   EINVAL from the overlap with the leaked half-image). *)
let test_pb_start_retry_after_injected_failure () =
  let config =
    { Ksim.Kernel.default_config with Ksim.Kernel.aslr = false }
  in
  (* probe: allocation count at the moment start is called *)
  let at_start = ref 0 in
  let config_probe = { config with Ksim.Kernel.fault = Some sentinel } in
  let _, outcome =
    boot_with ~config:config_probe (fun t ->
        let b = ok (Forkroad.Procbuilder.create ()) in
        ok (Forkroad.Procbuilder.copy_stdio b);
        at_start := Ksim.Fault.seen (fi t) Ksim.Fault.Frame_alloc;
        ok (Forkroad.Procbuilder.start b "/bin/true");
        ignore (ok (Ksim.Api.wait_for (Forkroad.Procbuilder.pid b))))
  in
  all_exited outcome;
  let fault =
    {
      Ksim.Fault.seed = 0;
      triggers = [ Ksim.Fault.Frame_alloc_nth (!at_start + 1) ];
    }
  in
  let config = { config with Ksim.Kernel.fault = Some fault } in
  let t, outcome =
    boot_with ~config (fun _ ->
        let b = ok (Forkroad.Procbuilder.create ()) in
        ok (Forkroad.Procbuilder.copy_stdio b);
        expect_errno Ksim.Errno.ENOMEM (Forkroad.Procbuilder.start b "/bin/true");
        (* retry on the same embryo: rollback must have unmapped the
           partial image, so this is not an overlap error *)
        ok (Forkroad.Procbuilder.start b "/bin/true");
        ignore (ok (Ksim.Api.wait_for (Forkroad.Procbuilder.pid b))))
  in
  all_exited outcome;
  check_int "one injection" 1 (Ksim.Fault.injected (fi t) Ksim.Fault.Frame_alloc);
  check_int "no frame leak" 0 (Vmem.Frame.used (Ksim.Kernel.frames t));
  check_int "no commit leak" 0 (Vmem.Frame.committed (Ksim.Kernel.frames t))

(* A first touch denied at the pager fetch must roll back cleanly: the
   pages resolved before the denial keep their frames (touch is
   restartable, like the hardware fault it models), the denied page
   allocates nothing and stays lazy, the commit charge (paid at map
   time, not fault time) never moves, the pid table is intact, and
   retrying the same touch finishes the job. *)
let test_injected_pager_fetch_rollback () =
  (* init's image under Program.make defaults: 64 KiB text + 16 KiB
     data, both mapped lazily when demand paging is on *)
  let text_pages = 16 and data_pages = 4 in
  let data_base = Ksim.Kernel.image_base + (text_pages * page) in
  let fault =
    { Ksim.Fault.seed = 0; triggers = [ Ksim.Fault.Pager_fetch_nth 3 ] }
  in
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.aslr = false;
      demand_paging = true;
      fault = Some fault;
    }
  in
  let t, outcome =
    boot_with ~config (fun t ->
        let me = Option.get (Ksim.Kernel.find_proc t (Ksim.Api.getpid ())) in
        let lazies () = Vmem.Addr_space.lazy_pages me.Ksim.Proc.aspace in
        check_int "whole image mapped lazily" (text_pages + data_pages)
          (lazies ());
        let before = snap t in
        expect_errno Ksim.Errno.ENOMEM
          (Ksim.Api.touch ~addr:data_base ~len:(data_pages * page));
        let after = snap t in
        check_int "only the 2 pages resolved before the denial hold frames"
          (before.used + 2) after.used;
        check_int "denied page still lazy, no half-state"
          (text_pages + data_pages - 2)
          (lazies ());
        check_int "commit charge unmoved" before.committed after.committed;
        Alcotest.(check (list int)) "pid table intact" before.pids after.pids;
        (* the denial was transient: the same touch now completes *)
        ignore (ok (Ksim.Api.touch ~addr:data_base ~len:(data_pages * page)));
        check_int "data segment fully resident" text_pages (lazies ());
        check_int "all data frames arrived" (before.used + data_pages)
          (Vmem.Frame.used (Ksim.Kernel.frames t)))
  in
  all_exited outcome;
  check_int "one injection" 1 (Ksim.Fault.injected (fi t) Ksim.Fault.Pager_fetch);
  check_int "kstat saw it" 1
    (List.assoc "inj-pager-fetches"
       (Ksim.Kstat.snapshot (Ksim.Kstat.global (Ksim.Kernel.kstat t))));
  check_int "no frame leak" 0 (Vmem.Frame.used (Ksim.Kernel.frames t));
  check_int "no commit leak" 0 (Vmem.Frame.committed (Ksim.Kernel.frames t))

(* An injected syscall-level failure never runs the handler: a denied
   fork creates no child and a retrying spawn absorbs the transient. *)
let test_injected_syscall_and_retry () =
  let fault =
    {
      Ksim.Fault.seed = 11;
      triggers =
        [
          Ksim.Fault.Syscall_nth
            { kind = "fork"; nth = 1; errno = Ksim.Errno.EAGAIN };
          Ksim.Fault.Syscall_nth
            { kind = "pb_create"; nth = 1; errno = Ksim.Errno.EAGAIN };
        ];
    }
  in
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.aslr = false;
      fault = Some fault;
    }
  in
  let t, outcome =
    boot_with ~config (fun t ->
        let before = pid_table t in
        expect_errno Ksim.Errno.EAGAIN
          (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0));
        Alcotest.(check (list int)) "no child registered" before (pid_table t);
        (* second fork passes (the schedule only kills the first) *)
        let pid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
        ignore (ok (Ksim.Api.wait_for pid));
        (* the retry policy rides out the injected pb_create failure *)
        let pid = ok (Forkroad.Procbuilder.spawn_retrying "/bin/true") in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_int "two injections" 2 (Ksim.Fault.injected (fi t) Ksim.Fault.Syscall);
  check_int "kstat agrees" 2
    (List.assoc "inj-syscalls"
       (Ksim.Kstat.snapshot (Ksim.Kstat.global (Ksim.Kernel.kstat t))))

(* An injected transient on a zygote spawn is transactional by
   construction (dispatch denies the syscall before the handler runs):
   the template's counters never move and the next spawn succeeds. *)
let test_injected_template_spawn () =
  let fault =
    {
      Ksim.Fault.seed = 0;
      triggers =
        [
          Ksim.Fault.Syscall_nth
            { kind = "template_spawn"; nth = 1; errno = Ksim.Errno.EAGAIN };
        ];
    }
  in
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.aslr = false;
      fault = Some fault;
    }
  in
  let t, outcome =
    boot_with ~config (fun t ->
        let addr = ok (Ksim.Api.mmap ~len:(8 * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(8 * page)));
        let before = snap t in
        let tpl = ok (Ksim.Api.freeze ()) in
        let template = Option.get (Ksim.Kernel.find_template t tpl) in
        expect_errno Ksim.Errno.EAGAIN
          (Ksim.Api.spawn_from_template tpl ~child:(fun () -> Ksim.Api.exit 0));
        check_int "spawns unmoved" 0 template.Ksim.Template.spawns;
        check_int "deps unmoved" 1 template.Ksim.Template.live_deps;
        Alcotest.(check (list int)) "pid table unmoved" before.pids (pid_table t);
        let pid =
          ok (Ksim.Api.spawn_from_template tpl ~child:(fun () -> Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        check_int "second spawn counted" 1 template.Ksim.Template.spawns)
  in
  all_exited outcome;
  check_int "one injection" 1 (Ksim.Fault.injected (fi t) Ksim.Fault.Syscall);
  (* only the template's pinned pages survive *)
  let tpl_pages =
    List.fold_left
      (fun acc tpl -> acc + tpl.Ksim.Template.resident)
      0 (Ksim.Kernel.templates t)
  in
  check_int "used = pinned template pages" tpl_pages
    (Vmem.Frame.used (Ksim.Kernel.frames t));
  check_int "no commit leak" 0 (Vmem.Frame.committed (Ksim.Kernel.frames t))

(* Retry policy unit behaviour: attempts are bounded, delays grow
   geometrically under the cap, and the give-up error is the last real
   one. *)
let test_retry_policy () =
  let p =
    {
      Spawnlib.Retry.max_attempts = 4;
      initial_delay = 1.0;
      backoff = 2.0;
      max_delay = 3.0;
    }
  in
  Alcotest.(check (list (float 1e-9)))
    "delays capped" [ 1.0; 2.0; 3.0 ] (Spawnlib.Retry.delays p);
  let calls = ref 0 and slept = ref [] in
  let r =
    Spawnlib.Retry.with_policy p
      ~sleep:(fun d -> slept := d :: !slept)
      ~should_retry:(fun _ -> true)
      (fun ~attempt ->
        incr calls;
        check_int "attempt number" !calls attempt;
        Error Ksim.Errno.EAGAIN)
  in
  expect_errno Ksim.Errno.EAGAIN r;
  check_int "bounded attempts" 4 !calls;
  Alcotest.(check (list (float 1e-9)))
    "slept the schedule" [ 1.0; 2.0; 3.0 ] (List.rev !slept);
  (* non-transient errors give up immediately *)
  calls := 0;
  let r =
    Spawnlib.Retry.with_policy p
      ~sleep:(fun _ -> ())
      ~should_retry:(fun e -> e <> Ksim.Errno.ENOENT)
      (fun ~attempt:_ ->
        incr calls;
        Error Ksim.Errno.ENOENT)
  in
  expect_errno Ksim.Errno.ENOENT r;
  check_int "no retry on permanent error" 1 !calls;
  (* success stops the loop *)
  calls := 0;
  let r =
    Spawnlib.Retry.with_policy p
      ~sleep:(fun _ -> ())
      ~should_retry:(fun _ -> true)
      (fun ~attempt -> if attempt < 3 then Error Ksim.Errno.EAGAIN else Ok attempt)
  in
  check_int "succeeds on 3rd try" 3 (ok r)

(* Retry edge cases: a zero-attempt policy is rejected before any work,
   a backoff schedule that lands exactly on the cap stays there without
   overshoot, and the builder's retry backoff burns simulated slices,
   not wall-clock seconds. *)
let test_retry_zero_attempts () =
  let bad =
    {
      Spawnlib.Retry.max_attempts = 0;
      initial_delay = 1.0;
      backoff = 2.0;
      max_delay = 4.0;
    }
  in
  Alcotest.check_raises "delays" (Invalid_argument "Retry: max_attempts < 1")
    (fun () -> ignore (Spawnlib.Retry.delays bad));
  let calls = ref 0 in
  Alcotest.check_raises "with_policy"
    (Invalid_argument "Retry: max_attempts < 1") (fun () ->
      ignore
        (Spawnlib.Retry.with_policy bad
           ~sleep:(fun _ -> ())
           ~should_retry:(fun _ -> true)
           (fun ~attempt:_ ->
             incr calls;
             (Error Ksim.Errno.EAGAIN : (unit, _) result))));
  check_int "function never ran" 0 !calls

let test_retry_backoff_cap_exact () =
  (* 1, 2, 4 = cap hit exactly on the 3rd delay; later delays hold at
     the cap rather than oscillating or overshooting *)
  let p =
    {
      Spawnlib.Retry.max_attempts = 6;
      initial_delay = 1.0;
      backoff = 2.0;
      max_delay = 4.0;
    }
  in
  Alcotest.(check (list (float 1e-9)))
    "cap reached exactly, then held"
    [ 1.0; 2.0; 4.0; 4.0; 4.0 ]
    (Spawnlib.Retry.delays p);
  let slept = ref [] in
  let r =
    Spawnlib.Retry.with_policy p
      ~sleep:(fun d -> slept := d :: !slept)
      ~should_retry:(fun _ -> true)
      (fun ~attempt:_ -> Error Ksim.Errno.EAGAIN)
  in
  expect_errno Ksim.Errno.EAGAIN r;
  Alcotest.(check (list (float 1e-9)))
    "with_policy sleeps exactly delays p" (Spawnlib.Retry.delays p)
    (List.rev !slept)

let test_builder_retry_sim_time () =
  (* three injected transient failures force the full backoff schedule;
     with wall-clock sleeps this test would take >= 3 real seconds *)
  let fault =
    {
      Ksim.Fault.seed = 11;
      triggers =
        [
          Ksim.Fault.Syscall_nth
            { kind = "pb_create"; nth = 1; errno = Ksim.Errno.EAGAIN };
          Ksim.Fault.Syscall_nth
            { kind = "pb_create"; nth = 2; errno = Ksim.Errno.EAGAIN };
          Ksim.Fault.Syscall_nth
            { kind = "pb_create"; nth = 3; errno = Ksim.Errno.EAGAIN };
        ];
    }
  in
  let config = { Ksim.Kernel.default_config with Ksim.Kernel.fault = Some fault } in
  let policy =
    {
      Spawnlib.Retry.max_attempts = 4;
      initial_delay = 1.0;
      backoff = 1.0;
      max_delay = 1.0;
    }
  in
  let wall0 = Unix.gettimeofday () in
  let t, outcome =
    boot_with ~config (fun t ->
        let before = Ksim.Kernel.clock t in
        let pid = ok (Forkroad.Procbuilder.spawn_retrying ~policy "/bin/true") in
        ignore (ok (Ksim.Api.wait_for pid));
        check_bool "backoff advanced the simulated clock" true
          (Ksim.Kernel.clock t > before))
  in
  all_exited outcome;
  check_int "all three faults fired" 3
    (Ksim.Fault.injected (fi t) Ksim.Fault.Syscall);
  check_bool "no wall-clock sleeping" true (Unix.gettimeofday () -. wall0 < 1.0)

(* ------------------------------------------------------------------ *)
(* QCheck: random programs x random fault schedules *)

type fop =
  | F_mmap_touch of int
  | F_warm_image
  | F_fork
  | F_fork_eager
  | F_vfork
  | F_spawn
  | F_builder
  | F_builder_retry
  | F_brk
  | F_yield
  | F_freeze
  | F_tpl_spawn of int
  | F_tpl_discard of int

let run_fop op =
  match op with
  | F_mmap_touch pages -> (
    match Ksim.Api.mmap ~len:(pages * page) ~perm:Vmem.Perm.rw with
    | Ok addr -> ignore (Ksim.Api.touch ~addr ~len:(pages * page))
    | Error _ -> ())
  | F_warm_image ->
    (* resolve the caller's own image pages (data by write-touch, text
       by reading) — under demand paging these are lazy PTEs, so this is
       the op that actually drives the Pager_fetch triggers; under eager
       paging it is a cheap no-op on already-present pages *)
    ignore (Ksim.Api.touch ~addr:(Ksim.Kernel.image_base + (64 * 1024)) ~len:(16 * 1024));
    ignore (Ksim.Api.mem_read ~addr:Ksim.Kernel.image_base ~len:(64 * 1024))
  | F_fork -> (
    match Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0) with
    | Ok _ | Error _ -> ())
  | F_fork_eager -> (
    match Ksim.Api.fork_eager ~child:(fun () -> Ksim.Api.exit 0) with
    | Ok _ | Error _ -> ())
  | F_vfork -> (
    match Ksim.Api.vfork ~child:(fun () -> Ksim.Api.exit 0) with
    | Ok _ | Error _ -> ())
  | F_spawn -> ( match Ksim.Api.spawn "/bin/true" with Ok _ | Error _ -> ())
  | F_builder -> (
    match Forkroad.Procbuilder.spawn_minimal "/bin/true" with Ok _ | Error _ -> ())
  | F_builder_retry -> (
    match Forkroad.Procbuilder.spawn_retrying "/bin/true" with Ok _ | Error _ -> ())
  | F_brk -> ( match Ksim.Api.sbrk page with Ok _ | Error _ -> ())
  | F_yield -> Ksim.Api.yield ()
  | F_freeze -> ( match Ksim.Api.freeze () with Ok _ | Error _ -> ())
  | F_tpl_spawn id -> (
    match Ksim.Api.spawn_from_template id ~child:(fun () -> Ksim.Api.exit 0) with
    | Ok _ | Error _ -> ())
  | F_tpl_discard id -> (
    match Ksim.Api.template_discard id with Ok _ | Error _ -> ())

let gen_fop =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun n -> F_mmap_touch (1 + n)) (QCheck.Gen.int_bound 7);
      QCheck.Gen.return F_warm_image;
      QCheck.Gen.return F_fork;
      QCheck.Gen.return F_fork_eager;
      QCheck.Gen.return F_vfork;
      QCheck.Gen.return F_spawn;
      QCheck.Gen.return F_builder;
      QCheck.Gen.return F_builder_retry;
      QCheck.Gen.return F_brk;
      QCheck.Gen.return F_yield;
      QCheck.Gen.return F_freeze;
      QCheck.Gen.map (fun n -> F_tpl_spawn (1 + n)) (QCheck.Gen.int_bound 2);
      QCheck.Gen.map (fun n -> F_tpl_discard (1 + n)) (QCheck.Gen.int_bound 2);
    ]

let gen_errno = QCheck.Gen.oneofl Ksim.Fault.injectable

let gen_trigger =
  let open QCheck.Gen in
  oneof
    [
      map (fun n -> Ksim.Fault.Frame_alloc_nth (1 + n)) (int_bound 400);
      map (fun n -> Ksim.Fault.Commit_nth (1 + n)) (int_bound 40);
      map2
        (fun n e -> Ksim.Fault.Syscall_nth { kind = "fork"; nth = 1 + n; errno = e })
        (int_bound 3) gen_errno;
      map2
        (fun n e ->
          Ksim.Fault.Syscall_nth { kind = "template_spawn"; nth = 1 + n; errno = e })
        (int_bound 2) gen_errno;
      map
        (fun p -> Ksim.Fault.Frame_alloc_random (0.02 *. float_of_int p))
        (int_bound 5);
      map
        (fun p -> Ksim.Fault.Commit_random (0.02 *. float_of_int p))
        (int_bound 5);
      map2
        (fun p e ->
          Ksim.Fault.Syscall_random
            { kind = None; p = 0.01 *. float_of_int p; errno = e })
        (int_bound 5) gen_errno;
      map (fun n -> Ksim.Fault.Pager_fetch_nth (1 + n)) (int_bound 40);
      map
        (fun p -> Ksim.Fault.Pager_fetch_random (0.02 *. float_of_int p))
        (int_bound 5);
    ]

let gen_case =
  QCheck.Gen.quad (QCheck.Gen.int_bound 10_000)
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4) gen_trigger)
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 15) gen_fop)
    (QCheck.Gen.pair QCheck.Gen.bool (QCheck.Gen.int_bound 3))

let show_trigger = function
  | Ksim.Fault.Frame_alloc_nth n -> Printf.sprintf "alloc#%d" n
  | Ksim.Fault.Commit_nth n -> Printf.sprintf "commit#%d" n
  | Ksim.Fault.Syscall_nth { kind; nth; errno } ->
    Printf.sprintf "%s#%d=%s" kind nth (Ksim.Errno.to_string errno)
  | Ksim.Fault.Frame_alloc_random p -> Printf.sprintf "alloc~%.2f" p
  | Ksim.Fault.Commit_random p -> Printf.sprintf "commit~%.2f" p
  | Ksim.Fault.Syscall_random { kind; p; errno } ->
    Printf.sprintf "%s~%.2f=%s"
      (Option.value ~default:"*" kind)
      p (Ksim.Errno.to_string errno)
  | Ksim.Fault.Pager_fetch_nth n -> Printf.sprintf "pager#%d" n
  | Ksim.Fault.Pager_fetch_random p -> Printf.sprintf "pager~%.2f" p

let show_fop = function
  | F_mmap_touch n -> Printf.sprintf "mmap%d" n
  | F_warm_image -> "warm_image"
  | F_fork -> "fork"
  | F_fork_eager -> "fork_eager"
  | F_vfork -> "vfork"
  | F_spawn -> "spawn"
  | F_builder -> "builder"
  | F_builder_retry -> "builder_retry"
  | F_brk -> "brk"
  | F_yield -> "yield"
  | F_freeze -> "freeze"
  | F_tpl_spawn id -> Printf.sprintf "tpl_spawn%d" id
  | F_tpl_discard id -> Printf.sprintf "tpl_discard%d" id

let show_case (seed, triggers, ops, (demand, readahead)) =
  Printf.sprintf "seed=%d faults=[%s] ops=[%s] demand=%b ra=%d" seed
    (String.concat "; " (List.map show_trigger triggers))
    (String.concat "; " (List.map show_fop ops))
    demand readahead

(* The tentpole invariant: under ANY fault schedule, when everything has
   exited no frame and no commit charge is leaked, and every span the
   kernel stamped as injected carries exactly the injected errno. *)
let prop_fault_schedules =
  QCheck.Test.make ~count:120
    ~name:"fault schedules: no leaks, honest errnos"
    (QCheck.make ~print:show_case gen_case)
    (fun (seed, triggers, ops, (demand, readahead)) ->
      let spec = { Ksim.Fault.seed; triggers } in
      let config =
        {
          Ksim.Kernel.default_config with
          Ksim.Kernel.phys_pages = 4096;
          commit_policy = Vmem.Frame.Strict;
          aslr = false;
          trace_capacity = Some 8192;
          fault = Some spec;
          demand_paging = demand;
          pager_readahead = readahead;
        }
      in
      let init =
        Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () ->
            List.iter run_fop ops;
            ignore (Ksim.Api.wait_all ()))
      in
      match Ksim.Kernel.boot ~config ~programs:[ init; true_prog ] "/sbin/init" with
      | Error Ksim.Errno.ENOMEM ->
        (* the schedule can legitimately kill the boot-time image load *)
        true
      | Error _ -> false
      | Ok (t, outcome) ->
        let honest =
          List.for_all
            (fun (e : Ksim.Trace.event) ->
              match Ksim.Trace.arg e "injected" with
              | None -> true
              | Some label -> (
                match e.Ksim.Trace.outcome with
                | Some (Ksim.Trace.Err err) -> Ksim.Errno.to_string err = label
                | Some Ksim.Trace.Ok_result | None -> false))
            (Ksim.Trace.events (Option.get (Ksim.Kernel.trace t)))
        in
        honest
        &&
        (match outcome with
        | Ksim.Kernel.All_exited ->
          (* the only frames allowed to survive are the pinned pages of
             still-registered templates; commit charges all return *)
          let tpl_pages =
            List.fold_left
              (fun acc tpl -> acc + tpl.Ksim.Template.resident)
              0 (Ksim.Kernel.templates t)
          in
          Vmem.Frame.used (Ksim.Kernel.frames t) = tpl_pages
          && Vmem.Frame.pinned (Ksim.Kernel.frames t) = tpl_pages
          && Vmem.Frame.committed (Ksim.Kernel.frames t) = 0
        | Ksim.Kernel.Stalled _ | Ksim.Kernel.Tick_limit ->
          (* injected failures may leave a program blocked; the property
             is that the kernel survives, checked by getting here *)
          true))

let tc n f = Alcotest.test_case n `Quick f

(* Fixed seed: the @fault-smoke alias must be deterministic. *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 42 |]) t

let () =
  Alcotest.run "fault"
    [
      ( "fault-unit",
        [
          tc "validate" test_validate;
          tc "nth triggers" test_nth_triggers;
          tc "determinism" test_determinism;
        ] );
      ( "errno",
        [
          tc "round-trip" test_errno_roundtrip;
          tc "domains" test_errno_domains;
          tc "traced errnos in domain" test_traced_errnos_in_domain;
        ] );
      ( "rollback",
        [
          tc "failed fork, strict commit" test_failed_fork_strict_commit;
          tc "injected eager-fork rollback" test_injected_fork_eager_rollback;
          tc "pb_start retry after injection" test_pb_start_retry_after_injected_failure;
          tc "injected pager fetch, first-touch rollback"
            test_injected_pager_fetch_rollback;
          tc "injected syscall + retry" test_injected_syscall_and_retry;
          tc "injected zygote spawn" test_injected_template_spawn;
          tc "retry policy" test_retry_policy;
          tc "retry zero attempts" test_retry_zero_attempts;
          tc "retry backoff cap exact" test_retry_backoff_cap_exact;
          tc "builder retry in sim time" test_builder_retry_sim_time;
        ] );
      ("schedules", [ qtest prop_fault_schedules ]);
    ]
