(* CFG builder and dataflow on adversarial control-flow shapes: goto
   crossing the child branch, switch(fork()) fallthrough, forks in
   loops, nested forks — plus a QCheck property that every call site a
   function contains is either reachable from entry or reported by
   dead_sites, never silently lost. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse_one src =
  match Forklore.Cparse.parse (Forklore.Lexer.tokenize src) with
  | [ f ] -> f
  | fs -> Alcotest.failf "expected 1 function, parsed %d" (List.length fs)

let build src = Forklore.Cfg.build (parse_one src)

let rules_of src =
  List.sort_uniq String.compare
    (List.map
       (fun d -> d.Forklore.Diagnostic.rule)
       (Forklore.Rules.check_string ~file:"t.c" src))

(* reachable call-site names, via the reachable-node mask *)
let live_site_names (cfg : Forklore.Cfg.t) =
  let reach = Forklore.Cfg.reachable cfg in
  Array.to_list cfg.Forklore.Cfg.nodes
  |> List.mapi (fun i (n : Forklore.Cfg.node) -> (i, n))
  |> List.concat_map (fun (i, (n : Forklore.Cfg.node)) ->
         if reach.(i) then
           List.map
             (fun (s : Forklore.Cfg.site) -> s.s_call.Forklore.Cparse.c_name)
             n.Forklore.Cfg.n_sites
         else [])
  |> List.sort_uniq String.compare

let dead_site_names cfg =
  List.map
    (fun (s : Forklore.Cfg.site) -> s.s_call.Forklore.Cparse.c_name)
    (Forklore.Cfg.dead_sites cfg)
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* goto out of the child branch *)

let goto_out_src =
  "int spawn(void) {\n\
  \  pid_t pid = fork();\n\
  \  if (pid == 0) {\n\
  \    goto out;\n\
  \  }\n\
  \  waitpid(pid, 0, 0);\n\
  out:\n\
  \  return 0;\n\
   }\n"

let test_goto_out_of_child () =
  let cfg = build goto_out_src in
  (* the goto edge keeps the label's code reachable... *)
  check_bool "return reachable" true
    (Array.exists Fun.id (Forklore.Cfg.reachable cfg));
  check_int "nothing dead" 0 (List.length (Forklore.Cfg.dead_sites cfg));
  (* ...and the child role rides it to the function's return *)
  let rules = rules_of goto_out_src in
  check_bool "child-path-return via goto" true
    (List.mem "child-path-return" rules);
  check_bool "fork-no-exec" true (List.mem "fork-no-exec" rules)

(* goto into the child branch: label inside the guarded region *)

let goto_in_src =
  "int spawn(void) {\n\
  \  pid_t pid = fork();\n\
  \  if (pid == 0) {\n\
  again:\n\
  \    execl(\"/bin/sh\", \"sh\", (char *)0);\n\
  \    goto again;\n\
  \  }\n\
  \  waitpid(pid, 0, 0);\n\
  \  return 0;\n\
   }\n"

let test_goto_into_child () =
  let cfg = build goto_in_src in
  check_int "nothing dead" 0 (List.length (Forklore.Cfg.dead_sites cfg));
  let rules = rules_of goto_in_src in
  (* the retry loop back into the child branch must not confuse the
     escape analysis: the child execs, so no fork-no-exec and no
     child-path-return *)
  check_bool "no fork-no-exec" true (not (List.mem "fork-no-exec" rules));
  check_bool "no child-path-return" true
    (not (List.mem "child-path-return" rules))

(* switch(fork()) with case-0 fallthrough into the parent arm *)

let switch_fallthrough_src =
  "int run(void) {\n\
  \  switch (fork()) {\n\
  \  case 0:\n\
  \    prepare();\n\
  \  default:\n\
  \    waitpid(-1, 0, 0);\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let test_switch_fallthrough () =
  let cfg = build switch_fallthrough_src in
  (match cfg.Forklore.Cfg.nodes.(0).Forklore.Cfg.n_term with
  | Forklore.Cfg.T_switch { sw_arms; _ } ->
    check_int "two arms" 2 (List.length sw_arms);
    check_bool "has case 0" true
      (List.exists
         (fun (a, _) -> a = Forklore.Cfg.A_case (Some 0))
         sw_arms);
    check_bool "has default" true
      (List.exists (fun (a, _) -> a = Forklore.Cfg.A_default) sw_arms)
  | _ -> Alcotest.fail "expected switch terminator at entry");
  let rules = rules_of switch_fallthrough_src in
  (* case 0 falls through into the parent's waitpid and on to return:
     the child leaks out of the switch *)
  check_bool "child-path-return through fallthrough" true
    (List.mem "child-path-return" rules);
  check_bool "fork-no-exec" true (List.mem "fork-no-exec" rules)

let switch_clean_src =
  "int run(void) {\n\
  \  switch (fork()) {\n\
  \  case 0:\n\
  \    execl(\"/bin/true\", \"true\", (char *)0);\n\
  \    _exit(127);\n\
  \  case -1:\n\
  \    return -1;\n\
  \  default:\n\
  \    waitpid(-1, 0, 0);\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let test_switch_clean () =
  Alcotest.(check (list string))
    "well-formed switch(fork()) lints clean" [] (rules_of switch_clean_src)

(* fork in a loop: the back edge must reach a fixpoint and the re-fork
   must replace, not accumulate, the per-site fact *)

let fork_in_loop_src =
  "int herd(int n) {\n\
  \  for (int i = 0; i < n; i++) {\n\
  \    pid_t pid = fork();\n\
  \    if (pid == 0) {\n\
  \      execl(\"/bin/work\", \"work\", (char *)0);\n\
  \      _exit(127);\n\
  \    }\n\
  \  }\n\
  \  while (wait(0) > 0) { }\n\
  \  return 0;\n\
   }\n"

let test_fork_in_loop () =
  let cfg = build fork_in_loop_src in
  let res = Forklore.Dataflow.analyze cfg in
  (* the only statically-dead site is the belt-and-suspenders _exit
     after the noreturn execl; the loop itself stays live *)
  Alcotest.(check (list string))
    "only the post-exec _exit is dead" [ "_exit" ]
    (List.map
       (fun (s : Forklore.Cfg.site) -> s.s_call.Forklore.Cparse.c_name)
       res.Forklore.Dataflow.res_dead);
  Alcotest.(check (list string))
    "fork+exec in a loop lints clean" [] (rules_of fork_in_loop_src)

(* nested forks: grandchild double-fork daemonisation *)

let nested_forks_src =
  "int daemonize(void) {\n\
  \  pid_t outer = fork();\n\
  \  if (outer == 0) {\n\
  \    pid_t inner = fork();\n\
  \    if (inner == 0) {\n\
  \      execl(\"/usr/sbin/daemon\", \"daemon\", (char *)0);\n\
  \      _exit(127);\n\
  \    }\n\
  \    _exit(0);\n\
  \  }\n\
  \  waitpid(outer, 0, 0);\n\
  \  return 0;\n\
   }\n"

let test_nested_forks () =
  let cfg = build nested_forks_src in
  check_int "two fork sites" 2
    (Array.to_list cfg.Forklore.Cfg.sites
    |> List.filter (fun (s : Forklore.Cfg.site) ->
           s.s_call.Forklore.Cparse.c_name = "fork")
    |> List.length);
  Alcotest.(check (list string))
    "double-fork daemonisation lints clean" [] (rules_of nested_forks_src)

(* code after exec is dead, and its call sites are reported, not lost *)

let dead_code_src =
  "int run(void) {\n\
  \  execl(\"/bin/true\", \"true\", (char *)0);\n\
  \  cleanup();\n\
  \  return 0;\n\
   }\n"

let test_dead_after_exec () =
  let cfg = build dead_code_src in
  check_bool "execl live" true (List.mem "execl" (live_site_names cfg));
  Alcotest.(check (list string))
    "cleanup dead" [ "cleanup" ] (dead_site_names cfg)

(* goto to a label that does not exist: downstream code is dead, not
   misattributed *)

let test_goto_unknown_label () =
  let cfg =
    build
      "int run(void) {\n  goto nowhere;\n  after();\n  return 0;\n}\n"
  in
  Alcotest.(check (list string)) "after() dead" [ "after" ]
    (dead_site_names cfg)

(* ------------------------------------------------------------------ *)
(* guard decoding, straight from the documented table *)

let decode toks_src =
  let toks = Forklore.Lexer.tokenize toks_src in
  Forklore.Cfg.decode_guard ~fork_sites:[] toks

let test_guard_decoding () =
  let open Forklore.Cfg in
  (match decode "pid == 0" with
  | Some { g_subject = Sub_var "pid"; g_rel = Req0; g_true_only = false } -> ()
  | _ -> Alcotest.fail "pid == 0");
  (match decode "0 == pid" with
  | Some { g_rel = Req0; _ } -> ()
  | _ -> Alcotest.fail "0 == pid (subject normalised left)");
  (match decode "pid > -1" with
  | Some { g_rel = Rge0; _ } -> ()
  | _ -> Alcotest.fail "pid > -1 decodes as >= 0");
  (match decode "!pid" with
  | Some { g_rel = Req0; _ } -> ()
  | _ -> Alcotest.fail "!pid");
  (match decode "pid" with
  | Some { g_rel = Rne0; _ } -> ()
  | _ -> Alcotest.fail "truthiness");
  (match decode "pid == 0 && ready" with
  | Some { g_rel = Req0; g_true_only = true; _ } -> ()
  | _ -> Alcotest.fail "conjunct is true-only");
  (match decode "pid == 0 || ready" with
  | None -> ()
  | Some _ -> Alcotest.fail "disjunction decodes no guard");
  check_bool "negate involution" true
    (List.for_all
       (fun r -> negate_rel (negate_rel r) = r)
       [ Req0; Rne0; Rgt0; Rlt0; Rge0; Rle0; Req_m1; Rne_m1 ])

(* ------------------------------------------------------------------ *)
(* QCheck: no call site is silently lost *)

(* A small grammar of statement shapes, nested to a bounded depth.
   Includes the adversarial ingredients: noreturn calls mid-block,
   goto (sometimes to a missing label), switch on fork, loops. *)
let gen_func =
  let open QCheck.Gen in
  let atom =
    oneofl
      [
        "work();";
        "pid = fork();";
        "execl(\"/bin/true\", \"true\", (char *)0);";
        "_exit(1);";
        "goto l1;";
        "goto missing;";
        "l1: touch();";
        "return 0;";
        "break;";
        "continue;";
      ]
  in
  let rec stmt depth =
    if depth = 0 then atom
    else
      frequency
        [
          (4, atom);
          ( 1,
            map2
              (fun c body -> Printf.sprintf "if (%s) { %s }" c body)
              (oneofl [ "pid == 0"; "pid > 0"; "pid < 0"; "flag" ])
              (stmt (depth - 1)) );
          ( 1,
            map
              (fun body -> Printf.sprintf "while (flag) { %s }" body)
              (stmt (depth - 1)) );
          ( 1,
            map
              (fun body ->
                Printf.sprintf
                  "switch (fork()) { case 0: %s default: wait(0); }" body)
              (stmt (depth - 1)) );
        ]
  in
  let+ stmts = list_size (int_range 1 8) (stmt 2) in
  Printf.sprintf "int f(void) {\n  int pid = 0; int flag = 1;\n  %s\n}\n"
    (String.concat "\n  " stmts)

let count_calls_in_func f =
  List.length (Forklore.Cparse.calls_of_func f)

let prop_sites_reachable_or_dead =
  QCheck.Test.make ~count:200 ~name:"every call site reachable or dead"
    (QCheck.make gen_func ~print:(fun s -> s))
    (fun src ->
      match Forklore.Cparse.parse (Forklore.Lexer.tokenize src) with
      | [] -> QCheck.Test.fail_report "function did not parse"
      | f :: _ ->
        let cfg = Forklore.Cfg.build f in
        let reach = Forklore.Cfg.reachable cfg in
        let live = ref 0 in
        Array.iteri
          (fun i (n : Forklore.Cfg.node) ->
            if reach.(i) then
              live := !live + List.length n.Forklore.Cfg.n_sites)
          cfg.Forklore.Cfg.nodes;
        let dead = List.length (Forklore.Cfg.dead_sites cfg) in
        let total = Array.length cfg.Forklore.Cfg.sites in
        (* partition: every site the parser saw is exactly one of
           live or dead, and the CFG kept them all *)
        if total <> count_calls_in_func f then
          QCheck.Test.fail_reportf "CFG lost sites: %d of %d" total
            (count_calls_in_func f)
        else if !live + dead <> total then
          QCheck.Test.fail_reportf "live %d + dead %d <> total %d" !live dead
            total
        else true)

(* and the analysis must terminate and not raise on any generated shape *)
let prop_analysis_total =
  QCheck.Test.make ~count:200 ~name:"dataflow total on generated functions"
    (QCheck.make gen_func ~print:(fun s -> s))
    (fun src ->
      let results =
        Forklore.Dataflow.analyze_tokens (Forklore.Lexer.tokenize src)
      in
      ignore (Forklore.Rules.check_string ~file:"gen.c" src);
      results <> [])

let tc n f = Alcotest.test_case n `Quick f

let () =
  Alcotest.run "cfg"
    [
      ( "adversarial",
        [
          tc "goto out of child branch" test_goto_out_of_child;
          tc "goto into child branch" test_goto_into_child;
          tc "switch fallthrough" test_switch_fallthrough;
          tc "switch clean" test_switch_clean;
          tc "fork in loop" test_fork_in_loop;
          tc "nested forks" test_nested_forks;
          tc "dead after exec" test_dead_after_exec;
          tc "goto unknown label" test_goto_unknown_label;
        ] );
      ("guards", [ tc "decoding table" test_guard_decoding ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_sites_reachable_or_dead;
          QCheck_alcotest.to_alcotest prop_analysis_total;
        ] );
    ]
