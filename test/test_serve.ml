(* Edge-case tests for the ksim socket/poll syscall family and a
   determinism property for the E17 serving experiment: the simulated
   side of the report must be bit-identical whatever --jobs is. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let errno = Alcotest.testable Ksim.Errno.pp Ksim.Errno.equal

let ok what = function
  | Ok v -> v
  | Error e ->
    Alcotest.failf "%s: unexpected %s" what (Ksim.Errno.to_string e)

let boot body =
  let init = Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () -> body ()) in
  match Ksim.Kernel.boot ~programs:[ init ] "/sbin/init" with
  | Error _ -> Alcotest.fail "boot failed"
  | Ok (t, _outcome) -> t

(* ------------------------------------------------------------------ *)
(* poll on broken pipes *)

(* Read side: once the last writer is gone and the buffer is drained,
   poll must report POLLHUP (and POLLIN, since a read would not block —
   it returns "" immediately). *)
let test_poll_hup_on_read_side () =
  let hup = ref false and pin = ref false in
  ignore
    (boot (fun () ->
         let r, w = ok "pipe" (Ksim.Api.pipe ()) in
         ignore (ok "close w" (Ksim.Api.close w));
         match ok "poll" (Ksim.Api.poll [ Ksim.Types.pollin r ]) with
         | [ ev ] ->
           hup := ev.Ksim.Types.pr_hup;
           pin := ev.Ksim.Types.pr_in
         | evs -> Alcotest.failf "poll returned %d events" (List.length evs)));
  check_bool "pr_hup" true !hup;
  check_bool "pr_in" true !pin

(* Write side: no reader left means writes would raise SIGPIPE, and
   poll must say so with POLLERR even though only POLLOUT was asked
   for — and must not claim the fd is writable. *)
let test_poll_err_on_write_side () =
  let err = ref false and pout = ref true in
  ignore
    (boot (fun () ->
         let r, w = ok "pipe" (Ksim.Api.pipe ()) in
         ignore (ok "close r" (Ksim.Api.close r));
         match ok "poll" (Ksim.Api.poll [ Ksim.Types.pollout w ]) with
         | [ ev ] ->
           err := ev.Ksim.Types.pr_err;
           pout := ev.Ksim.Types.pr_out
         | evs -> Alcotest.failf "poll returned %d events" (List.length evs)));
  check_bool "pr_err" true !err;
  check_bool "pr_out" false !pout

(* timeout:0 is a pure probe: nothing ready must come back Ok [] on the
   same tick, never block. *)
let test_poll_timeout_zero_probe () =
  let n_ready = ref (-1) in
  ignore
    (boot (fun () ->
         let r, _w = ok "pipe" (Ksim.Api.pipe ()) in
         let evs =
           ok "poll" (Ksim.Api.poll ~timeout:0 [ Ksim.Types.pollin r ])
         in
         n_ready := List.length evs));
  check_int "no events" 0 !n_ready

(* A positive timeout with no ready fd expires and returns Ok []. *)
let test_poll_timeout_expires () =
  let n_ready = ref (-1) in
  ignore
    (boot (fun () ->
         let r, _w = ok "pipe" (Ksim.Api.pipe ()) in
         let evs =
           ok "poll" (Ksim.Api.poll ~timeout:3 [ Ksim.Types.pollin r ])
         in
         n_ready := List.length evs));
  check_int "no events" 0 !n_ready

(* ------------------------------------------------------------------ *)
(* accept-queue overflow *)

(* A backlog-1 listener with no accepting thread takes exactly one
   handshake; the next connect must be refused (never queued, never
   blocked) and the refusal must show up in kstat. *)
let test_accept_queue_overflow () =
  let second = ref (Ok ()) in
  let t =
    boot (fun () ->
        let lfd = ok "socket" (Ksim.Api.socket ()) in
        ok "bind" (Ksim.Api.bind lfd ~port:80);
        ok "listen" (Ksim.Api.listen lfd ~backlog:1);
        let c1 = ok "socket" (Ksim.Api.socket ()) in
        ok "connect 1" (Ksim.Api.connect c1 ~port:80);
        let c2 = ok "socket" (Ksim.Api.socket ()) in
        second := Ksim.Api.connect c2 ~port:80)
  in
  (match !second with
  | Error e -> Alcotest.check errno "overflow" Ksim.Errno.ECONNREFUSED e
  | Ok () -> Alcotest.fail "second connect should be refused");
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  check_int "sock_refused" 1 g.Ksim.Kstat.sock_refused;
  check_int "accept_queue_peak" 1 g.Ksim.Kstat.accept_queue_peak

(* Connecting to a port nobody listens on is refused outright. *)
let test_connect_no_listener () =
  let res = ref (Ok ()) in
  ignore
    (boot (fun () ->
         let c = ok "socket" (Ksim.Api.socket ()) in
         res := Ksim.Api.connect c ~port:4242));
  match !res with
  | Error e -> Alcotest.check errno "refused" Ksim.Errno.ECONNREFUSED e
  | Ok () -> Alcotest.fail "connect should be refused"

(* ------------------------------------------------------------------ *)
(* accept/connect round-trip across fork *)

let test_accept_roundtrip () =
  let got = ref "" in
  ignore
    (boot (fun () ->
         let lfd = ok "socket" (Ksim.Api.socket ()) in
         ok "bind" (Ksim.Api.bind lfd ~port:80);
         ok "listen" (Ksim.Api.listen lfd ~backlog:4);
         ignore
           (ok "fork"
              (Ksim.Api.fork ~child:(fun () ->
                   let conn = ok "accept" (Ksim.Api.accept lfd) in
                   let req = ok "read" (Ksim.Api.read conn 16) in
                   ok "reply" (Ksim.Api.write_all conn ("re:" ^ req));
                   ignore (Ksim.Api.close conn);
                   Ksim.Api.exit 0)));
         let c = ok "socket" (Ksim.Api.socket ()) in
         ok "connect" (Ksim.Api.connect c ~port:80);
         ok "send" (Ksim.Api.write_all c "ping");
         ignore (ok "poll" (Ksim.Api.poll [ Ksim.Types.pollin c ]));
         got := ok "recv" (Ksim.Api.read c 16);
         ignore (Ksim.Api.close c);
         ignore (Ksim.Api.wait_all ())));
  Alcotest.(check string) "reply" "re:ping" !got

(* ------------------------------------------------------------------ *)
(* E17 determinism across --jobs *)

(* The whole simulated half of E17 must not depend on how many worker
   domains Workload.Par spreads the points over. Polymorphic equality
   on Exp_serve.point covers every field the report serialises
   (latency arrays, kstat counters, per-worker service counts). *)
let prop_e17_jobs_invariant =
  QCheck.Test.make ~count:4 ~name:"E17 points: jobs=1 and jobs=4 agree"
    QCheck.(pair (pair small_nat bool) (int_range 1 3))
    (fun ((seed, bursty), workers) ->
      let load =
        {
          Forkroad.Exp_serve.load_name = "qc";
          lam = 1.5;
          rounds = 5;
          gap = 4;
          bursty;
          seed = 1 + seed;
        }
      in
      let specs =
        [
          {
            Forkroad.Exp_serve.ps_model = Forkroad.Exp_serve.Dispatch;
            ps_workers = workers;
            ps_load = load;
            ps_crash = false;
          };
          {
            Forkroad.Exp_serve.ps_model = Forkroad.Exp_serve.Reuseport;
            ps_workers = workers;
            ps_load = load;
            ps_crash = false;
          };
          {
            Forkroad.Exp_serve.ps_model = Forkroad.Exp_serve.Inetd;
            ps_workers = 0;
            ps_load = load;
            ps_crash = false;
          };
        ]
      in
      let run jobs =
        Workload.Par.map ~jobs Forkroad.Exp_serve.run_point specs
      in
      run 1 = run 4)

(* The seeded crash schedule is part of the deterministic contract:
   same spec, same worker death, at any jobs. *)
let test_crash_point_deterministic () =
  let spec =
    {
      Forkroad.Exp_serve.ps_model = Forkroad.Exp_serve.Reuseport;
      ps_workers = 2;
      ps_load =
        {
          Forkroad.Exp_serve.load_name = "crash";
          lam = 2.0;
          rounds = 8;
          gap = 4;
          bursty = false;
          seed = 7;
        };
      ps_crash = true;
    }
  in
  let a = Workload.Par.map ~jobs:1 Forkroad.Exp_serve.run_point [ spec ] in
  let b = Workload.Par.map ~jobs:4 Forkroad.Exp_serve.run_point [ spec ] in
  check_bool "identical" true (a = b);
  match a with
  | [ p ] ->
    check_int "one worker crashed" 1 p.Forkroad.Exp_serve.crashed;
    check_bool "still serves" true
      (p.Forkroad.Exp_serve.completed > 0)
  | _ -> Alcotest.fail "expected one point"

(* ------------------------------------------------------------------ *)

let tc = Alcotest.test_case
let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "serve"
    [
      ( "poll",
        [
          tc "hup on read side" `Quick test_poll_hup_on_read_side;
          tc "err on write side" `Quick test_poll_err_on_write_side;
          tc "timeout=0 probe" `Quick test_poll_timeout_zero_probe;
          tc "timeout expires" `Quick test_poll_timeout_expires;
        ] );
      ( "socket",
        [
          tc "accept-queue overflow" `Quick test_accept_queue_overflow;
          tc "no listener" `Quick test_connect_no_listener;
          tc "accept round-trip" `Quick test_accept_roundtrip;
        ] );
      ( "e17",
        [
          qc prop_e17_jobs_invariant;
          tc "crash point deterministic" `Quick
            test_crash_point_deterministic;
        ] );
    ]
