(* Unit and integration tests for the ksim kernel simulator. The
   integration tests boot a kernel with small OCaml-closure programs and
   assert on console output, exit statuses and scheduler outcomes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "expected Ok"

let errno = Alcotest.testable Ksim.Errno.pp Ksim.Errno.equal

let expect_errno e = function
  | Error got -> Alcotest.check errno "errno" e got
  | Ok _ -> Alcotest.fail "expected Error"

(* ------------------------------------------------------------------ *)
(* Usignal *)

let test_signal_numbers () =
  check_int "SIGKILL" 9 (Ksim.Usignal.number Ksim.Usignal.SIGKILL);
  Alcotest.(check (option (testable Ksim.Usignal.pp Ksim.Usignal.equal)))
    "roundtrip" (Some Ksim.Usignal.SIGTERM) (Ksim.Usignal.of_number 15);
  check_bool "kill uncatchable" false (Ksim.Usignal.catchable Ksim.Usignal.SIGKILL);
  check_bool "term catchable" true (Ksim.Usignal.catchable Ksim.Usignal.SIGTERM)

let test_signal_set () =
  let open Ksim.Usignal in
  let s = Set.of_list [ SIGINT; SIGTERM ] in
  check_bool "mem" true (Set.mem SIGINT s);
  check_bool "not mem" false (Set.mem SIGHUP s);
  let s2 = Set.remove SIGINT s in
  check_bool "removed" false (Set.mem SIGINT s2);
  check_bool "still there" true (Set.mem SIGTERM s2);
  check_bool "full has no SIGKILL" false (Set.mem SIGKILL Set.full)

let prop_sigset_algebra =
  let gen_sig = QCheck.oneofl Ksim.Usignal.all in
  QCheck.Test.make ~count:200 ~name:"sigset: union/inter/diff are setwise"
    QCheck.(pair (list gen_sig) (list gen_sig))
    (fun (a, b) ->
      let open Ksim.Usignal in
      let sa = Set.of_list a and sb = Set.of_list b in
      List.for_all
        (fun s ->
          Set.mem s (Set.union sa sb) = (Set.mem s sa || Set.mem s sb)
          && Set.mem s (Set.inter sa sb) = (Set.mem s sa && Set.mem s sb)
          && Set.mem s (Set.diff sa sb) = (Set.mem s sa && not (Set.mem s sb)))
        all)

(* ------------------------------------------------------------------ *)
(* Pipe *)

let test_pipe_rw () =
  let p = Ksim.Pipe.create ~capacity:8 () in
  Ksim.Pipe.add_reader p;
  Ksim.Pipe.add_writer p;
  check_int "write partial" 8 (Ksim.Pipe.write p "0123456789");
  check_int "space" 0 (Ksim.Pipe.space p);
  check_str "read" "0123" (Ksim.Pipe.read p 4);
  check_int "space back" 4 (Ksim.Pipe.space p);
  check_str "rest" "4567" (Ksim.Pipe.read p 100);
  check_bool "not eof (writer alive)" false (Ksim.Pipe.eof p);
  Ksim.Pipe.drop_writer p;
  check_bool "eof" true (Ksim.Pipe.eof p);
  Ksim.Pipe.drop_reader p;
  check_bool "broken" true (Ksim.Pipe.broken p)

let test_pipe_compaction () =
  let p = Ksim.Pipe.create ~capacity:65536 () in
  Ksim.Pipe.add_writer p;
  (* push/pull enough that an uncompacted buffer would keep growing *)
  for _ = 1 to 100 do
    ignore (Ksim.Pipe.write p (String.make 8192 'x'));
    ignore (Ksim.Pipe.read p 8192)
  done;
  check_int "drained" 0 (Ksim.Pipe.available p)

(* ------------------------------------------------------------------ *)
(* Vfs *)

let test_vfs_normalize () =
  Alcotest.(check (list string))
    "abs" [ "a"; "b" ]
    (Ksim.Vfs.normalize ~cwd:"/" "/a//b/");
  Alcotest.(check (list string))
    "rel" [ "tmp"; "x" ]
    (Ksim.Vfs.normalize ~cwd:"/tmp" "x");
  Alcotest.(check (list string))
    "dotdot" [ "b" ]
    (Ksim.Vfs.normalize ~cwd:"/" "/a/../b/.");
  Alcotest.(check (list string))
    "dotdot past root" []
    (Ksim.Vfs.normalize ~cwd:"/" "../../..")

let test_vfs_files () =
  let fs = Ksim.Vfs.create () in
  check_bool "no file yet" false (Ksim.Vfs.file_exists fs ~cwd:"/" "/tmp/a");
  let r = ok (Ksim.Vfs.create_file fs ~cwd:"/" "/tmp/a" ~trunc:false) in
  check_int "written" 5 (Ksim.Vfs.Reg.write r ~off:0 "hello");
  check_str "read back" "hello" (ok (Ksim.Vfs.read_file fs ~cwd:"/" "/tmp/a"));
  (* sparse write past EOF reads back zeroes in the gap *)
  ignore (Ksim.Vfs.Reg.write r ~off:8 "x");
  check_str "sparse" "hello\000\000\000x" (ok (Ksim.Vfs.read_file fs ~cwd:"/tmp" "a"));
  expect_errno Ksim.Errno.ENOENT (Ksim.Vfs.read_file fs ~cwd:"/" "/tmp/missing");
  expect_errno Ksim.Errno.EISDIR (Ksim.Vfs.read_file fs ~cwd:"/" "/tmp")

let test_vfs_mkdir () =
  let fs = Ksim.Vfs.create () in
  ok (Ksim.Vfs.mkdir fs ~cwd:"/" "/tmp/sub");
  ignore (ok (Ksim.Vfs.create_file fs ~cwd:"/tmp/sub" "f" ~trunc:false));
  check_bool "nested file" true (Ksim.Vfs.file_exists fs ~cwd:"/" "/tmp/sub/f");
  expect_errno Ksim.Errno.EEXIST (Ksim.Vfs.mkdir fs ~cwd:"/" "/tmp/sub");
  expect_errno Ksim.Errno.ENOENT (Ksim.Vfs.mkdir fs ~cwd:"/" "/nope/sub")

(* ------------------------------------------------------------------ *)
(* Fd_table and Ofd *)

let make_reg () =
  let fs = Ksim.Vfs.create () in
  ok (Ksim.Vfs.create_file fs ~cwd:"/" "/tmp/f" ~trunc:false)

let test_fdt_basic () =
  let t = Ksim.Fd_table.create ~max_fds:8 () in
  let r = make_reg () in
  let ofd = Ksim.Ofd.make (Ksim.Ofd.Reg_file r) ~flags:Ksim.Types.o_rdwr in
  let fd = ok (Ksim.Fd_table.alloc t ~cloexec:false ofd) in
  check_int "lowest" 0 fd;
  let fd2 = ok (Ksim.Fd_table.dup t fd) in
  check_int "dup next" 1 fd2;
  check_int "refs" 2 (Ksim.Ofd.refs ofd);
  (* dup shares the offset: write via one, offset moves for both *)
  (match Ksim.Ofd.write ofd "abc" with
  | Ksim.Ofd.Wrote 3 -> ()
  | _ -> Alcotest.fail "write");
  check_int "shared offset" 3 (Ksim.Ofd.offset (ok (Ksim.Fd_table.get t fd2)));
  ok (Ksim.Fd_table.close t fd);
  check_int "refs after close" 1 (Ksim.Ofd.refs ofd);
  expect_errno Ksim.Errno.EBADF (Ksim.Fd_table.get t fd)

let test_fdt_dup2_cloexec () =
  let t = Ksim.Fd_table.create ~max_fds:8 () in
  let r = make_reg () in
  let ofd = Ksim.Ofd.make (Ksim.Ofd.Reg_file r) ~flags:Ksim.Types.o_rdwr in
  let fd = ok (Ksim.Fd_table.alloc t ~cloexec:true ofd) in
  check_bool "cloexec set" true (ok (Ksim.Fd_table.cloexec t fd));
  let dst = ok (Ksim.Fd_table.dup2 t ~src:fd ~dst:5) in
  check_int "dst" 5 dst;
  check_bool "dup2 clears cloexec" false (ok (Ksim.Fd_table.cloexec t 5));
  Ksim.Fd_table.close_cloexec t;
  expect_errno Ksim.Errno.EBADF (Ksim.Fd_table.get t fd);
  (* the dup2'd copy survives exec *)
  ignore (ok (Ksim.Fd_table.get t 5));
  check_int "count" 1 (Ksim.Fd_table.count t)

let test_fdt_clone_shares () =
  let t = Ksim.Fd_table.create ~max_fds:8 () in
  let r = make_reg () in
  let ofd = Ksim.Ofd.make (Ksim.Ofd.Reg_file r) ~flags:Ksim.Types.o_rdwr in
  ignore (ok (Ksim.Fd_table.alloc t ~cloexec:true ofd));
  let c = Ksim.Fd_table.clone t in
  check_int "refs" 2 (Ksim.Ofd.refs ofd);
  check_bool "cloexec copied" true (ok (Ksim.Fd_table.cloexec c 0));
  (* offset shared across the clone, as across fork *)
  (match Ksim.Ofd.write (ok (Ksim.Fd_table.get c 0)) "xy" with
  | Ksim.Ofd.Wrote 2 -> ()
  | _ -> Alcotest.fail "write");
  check_int "offset via parent" 2 (Ksim.Ofd.offset (ok (Ksim.Fd_table.get t 0)))

(* ------------------------------------------------------------------ *)
(* Sync *)

let test_sync_clone () =
  let tbl = Ksim.Sync.create_table () in
  let m = Ksim.Sync.create tbl in
  m.Ksim.Sync.state <- Ksim.Sync.Locked_by 42;
  let c = Ksim.Sync.clone_table tbl in
  (match Ksim.Sync.find c m.Ksim.Sync.id with
  | Some cm ->
    check_bool "state copied" true (cm.Ksim.Sync.state = Ksim.Sync.Locked_by 42);
    (* distinct records *)
    cm.Ksim.Sync.state <- Ksim.Sync.Unlocked;
    check_bool "original untouched" true
      (m.Ksim.Sync.state = Ksim.Sync.Locked_by 42)
  | None -> Alcotest.fail "clone lost mutex");
  Alcotest.(check (list pass))
    "orphan detection" [ () ]
    (List.map ignore
       (Ksim.Sync.held_by_missing_thread tbl ~live_tids:[ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_ring () =
  let tr = Ksim.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Ksim.Trace.record tr ~tick:i ~pid:1 ~tid:1 (Printf.sprintf "ev%d" i)
  done;
  check_int "total" 6 (Ksim.Trace.total tr);
  let evs = Ksim.Trace.events tr in
  check_int "kept" 4 (List.length evs);
  check_str "oldest kept" "ev3" (List.hd evs).Ksim.Trace.what;
  check_int "find" 1 (List.length (Ksim.Trace.find tr ~pattern:"ev5"))

(* ------------------------------------------------------------------ *)
(* Kernel integration helpers *)

let prog ?text_kib ?data_kib name body =
  Ksim.Program.make ?text_kib ?data_kib ~name (fun ~argv () -> body argv)

let boot ?config ?(programs = []) body =
  let init = prog "/sbin/init" body in
  match Ksim.Kernel.boot ?config ~programs:(init :: programs) "/sbin/init" with
  | Error _ -> Alcotest.fail "boot failed"
  | Ok (t, outcome) -> (t, outcome)

let all_exited = function
  | Ksim.Kernel.All_exited -> ()
  | o -> Alcotest.failf "expected all-exited, got %a" Ksim.Kernel.pp_outcome o

let page = Vmem.Addr.page_size

(* ------------------------------------------------------------------ *)
(* Kernel basics *)

let test_hello () =
  let t, outcome =
    boot (fun _argv ->
        Ksim.Api.print "hello, kernel\n";
        Ksim.Api.exit 0)
  in
  all_exited outcome;
  check_str "console" "hello, kernel\n" (Ksim.Kernel.console t);
  (match Ksim.Kernel.status_of t 1 with
  | Some (Ksim.Types.Exited 0) -> ()
  | _ -> Alcotest.fail "init status")

let test_natural_return_is_exit0 () =
  let t, outcome = boot (fun _ -> ()) in
  all_exited outcome;
  match Ksim.Kernel.status_of t 1 with
  | Some (Ksim.Types.Exited 0) -> ()
  | _ -> Alcotest.fail "status"

let test_exit_code () =
  let t, outcome =
    boot (fun _ ->
        let pid =
          ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 7))
        in
        match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Exited 7 -> Ksim.Api.print "ok"
        | _ -> Ksim.Api.print "bad")
  in
  all_exited outcome;
  check_str "console" "ok" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* fork semantics *)

let test_fork_memory_cow () =
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:page ~perm:Vmem.Perm.rw) in
        ok (Ksim.Api.mem_write ~addr "P");
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (* child sees parent's data, then writes privately *)
                 let inherited = ok (Ksim.Api.mem_read ~addr ~len:1) in
                 Ksim.Api.print ("child-sees:" ^ inherited ^ ";");
                 ok (Ksim.Api.mem_write ~addr "C");
                 Ksim.Api.print
                   ("child-now:" ^ ok (Ksim.Api.mem_read ~addr ~len:1) ^ ";");
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        Ksim.Api.print ("parent:" ^ ok (Ksim.Api.mem_read ~addr ~len:1)))
  in
  all_exited outcome;
  check_str "console" "child-sees:P;child-now:C;parent:P" (Ksim.Kernel.console t)

let test_fork_pending_signals_cleared () =
  let t, outcome =
    boot (fun _ ->
        ignore
          (ok
             (Ksim.Api.sigaction Ksim.Usignal.SIGUSR1
                (Ksim.Usignal.Handler "h")));
        (* block, then self-signal so it sits pending *)
        ignore
          (Ksim.Api.sigprocmask Ksim.Types.Block
             (Ksim.Usignal.Set.of_list [ Ksim.Usignal.SIGUSR1 ]));
        ok (Ksim.Api.kill (Ksim.Api.getpid ()) Ksim.Usignal.SIGUSR1);
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (* child: unblocking must deliver nothing (pending set
                    was cleared by fork) *)
                 ignore
                   (Ksim.Api.sigprocmask Ksim.Types.Unblock
                      (Ksim.Usignal.Set.of_list [ Ksim.Usignal.SIGUSR1 ]));
                 Ksim.Api.print
                   (Printf.sprintf "child-handled:%d;"
                      (Ksim.Api.handled_signals "h"));
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        (* parent: unblock delivers the pending signal *)
        ignore
          (Ksim.Api.sigprocmask Ksim.Types.Unblock
             (Ksim.Usignal.Set.of_list [ Ksim.Usignal.SIGUSR1 ]));
        Ksim.Api.print
          (Printf.sprintf "parent-handled:%d" (Ksim.Api.handled_signals "h")))
  in
  all_exited outcome;
  check_str "console" "child-handled:0;parent-handled:1" (Ksim.Kernel.console t)

let test_fork_only_calling_thread () =
  (* the second thread does not exist in the child: its ticker stops *)
  let t, outcome =
    boot (fun _ ->
        ignore
          (ok
             (Ksim.Api.thread_create (fun () ->
                  for _ = 1 to 3 do
                    Ksim.Api.print "T";
                    Ksim.Api.yield ()
                  done)));
        Ksim.Api.yield ();
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 Ksim.Api.print "C";
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        Ksim.Api.print "P")
  in
  all_exited outcome;
  (* exactly three T's: the ticker ran only in the parent *)
  let ts =
    String.fold_left
      (fun n c -> if c = 'T' then n + 1 else n)
      0 (Ksim.Kernel.console t)
  in
  check_int "ticker only in parent" 3 ts;
  all_exited outcome

let test_fork_commit_limit () =
  let config =
    { Ksim.Kernel.default_config with
      Ksim.Kernel.phys_pages = 2048;
      commit_policy = Vmem.Frame.Strict;
      aslr = false }
  in
  let t, outcome =
    boot ~config (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(1200 * page) ~perm:Vmem.Perm.rw) in
        ignore addr;
        match Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0) with
        | Error Ksim.Errno.ENOMEM -> Ksim.Api.print "fork-enomem"
        | Error _ -> Ksim.Api.print "fork-other-error"
        | Ok pid ->
          ignore (ok (Ksim.Api.wait_for pid));
          Ksim.Api.print "fork-ok")
  in
  all_exited outcome;
  check_str "strict commit rejects big fork" "fork-enomem" (Ksim.Kernel.console t);
  (* same workload under overcommit succeeds *)
  let config = { config with Ksim.Kernel.commit_policy = Vmem.Frame.Overcommit } in
  let t, outcome =
    boot ~config (fun _ ->
        ignore (ok (Ksim.Api.mmap ~len:(1200 * page) ~perm:Vmem.Perm.rw));
        match Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0) with
        | Ok pid ->
          ignore (ok (Ksim.Api.wait_for pid));
          Ksim.Api.print "fork-ok"
        | Error _ -> Ksim.Api.print "fork-failed")
  in
  all_exited outcome;
  check_str "overcommit admits it" "fork-ok" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* exec and spawn *)

let echo_prog =
  prog "/bin/echo" (fun argv ->
      Ksim.Api.print (String.concat " " argv);
      Ksim.Api.exit 0)

let true_prog = prog "/bin/true" (fun _ -> Ksim.Api.exit 0)

let test_exec_replaces_image () =
  let t, outcome =
    boot ~programs:[ echo_prog ] (fun _ ->
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (match Ksim.Api.exec ~argv:[ "hi"; "there" ] "/bin/echo" with
                 | Ok () -> ()
                 | Error _ -> Ksim.Api.print "exec-failed");
                 Ksim.Api.exit 127))
        in
        match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Exited 0 -> Ksim.Api.print ";exit0"
        | st -> Ksim.Api.print (Format.asprintf ";%a" Ksim.Types.pp_status st))
  in
  all_exited outcome;
  check_str "console" "hi there;exit0" (Ksim.Kernel.console t)

let test_exec_enoent_late_error () =
  (* the fork+exec pattern discovers a missing binary only in the child,
     after the fork — the error-reporting wart the paper contrasts with
     spawn *)
  let t, outcome =
    boot (fun _ ->
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 match Ksim.Api.exec "/bin/missing" with
                 | Error Ksim.Errno.ENOENT -> Ksim.Api.exit 127
                 | Error _ | Ok () -> Ksim.Api.exit 1))
        in
        match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Exited 127 -> Ksim.Api.print "late-error-127"
        | _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "late-error-127" (Ksim.Kernel.console t)

let test_spawn_enoent_sync_error () =
  let t, outcome =
    boot (fun _ ->
        match Ksim.Api.spawn "/bin/missing" with
        | Error Ksim.Errno.ENOENT -> Ksim.Api.print "spawn-enoent"
        | Error _ | Ok _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "spawn reports ENOENT synchronously" "spawn-enoent"
    (Ksim.Kernel.console t)

let test_spawn_runs_program () =
  let t, outcome =
    boot ~programs:[ echo_prog ] (fun _ ->
        let pid = ok (Ksim.Api.spawn ~argv:[ "spawned" ] "/bin/echo") in
        ignore (ok (Ksim.Api.wait_for pid));
        Ksim.Api.print ";done")
  in
  all_exited outcome;
  check_str "console" "spawned;done" (Ksim.Kernel.console t)

let test_spawn_file_actions_redirect () =
  let writer =
    prog "/bin/writer" (fun _ ->
        Ksim.Api.print "to-stdout";
        Ksim.Api.exit 0)
  in
  let t, outcome =
    boot ~programs:[ writer ] (fun _ ->
        let pid =
          ok
            (Ksim.Api.spawn
               ~file_actions:
                 [ Ksim.Types.Fa_open
                     { fd = 1; path = "/tmp/out"; flags = Ksim.Types.o_wronly } ]
               "/bin/writer")
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "redirected" "to-stdout"
    (ok (Ksim.Vfs.read_file (Ksim.Kernel.vfs t) ~cwd:"/" "/tmp/out"));
  check_str "console empty" "" (Ksim.Kernel.console t)

let test_spawn_dup2_same_fd_clears_cloexec () =
  (* POSIX: a spawn dup2 file action with src = dst clears FD_CLOEXEC,
     so "pass this fd through as-is" works without a spare slot *)
  let checker =
    prog "/bin/checker2" (fun argv ->
        let fd = int_of_string (List.hd argv) in
        (match Ksim.Api.write fd "alive" with
        | Ok _ -> ()
        | Error _ -> Ksim.Api.print "fd-missing");
        Ksim.Api.exit 0)
  in
  let t, outcome =
    boot ~programs:[ checker ] (fun _ ->
        let fd =
          ok
            (Ksim.Api.openf
               ~flags:(Ksim.Types.with_cloexec Ksim.Types.o_wronly)
               "/tmp/passed")
        in
        let pid =
          ok
            (Ksim.Api.spawn
               ~file_actions:[ Ksim.Types.Fa_dup2 (fd, fd) ]
               ~argv:[ string_of_int fd ] "/bin/checker2")
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "no complaint" "" (Ksim.Kernel.console t);
  check_str "child wrote through the fd" "alive"
    (ok (Ksim.Vfs.read_file (Ksim.Kernel.vfs t) ~cwd:"/" "/tmp/passed"))

let test_cloexec_across_exec () =
  let checker =
    prog "/bin/checker" (fun argv ->
        let fd = int_of_string (List.hd argv) in
        (match Ksim.Api.write fd "x" with
        | Error Ksim.Errno.EBADF -> Ksim.Api.print "closed;"
        | Error _ | Ok _ -> Ksim.Api.print "open;");
        Ksim.Api.exit 0)
  in
  let t, outcome =
    boot ~programs:[ checker ] (fun _ ->
        let fd =
          ok
            (Ksim.Api.openf
               ~flags:(Ksim.Types.with_cloexec Ksim.Types.o_wronly)
               "/tmp/secret")
        in
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (match
                    Ksim.Api.exec ~argv:[ string_of_int fd ] "/bin/checker"
                  with
                 | Ok () | Error _ -> ());
                 Ksim.Api.exit 1))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "cloexec fd closed by exec" "closed;" (Ksim.Kernel.console t)

let test_exec_resets_handlers () =
  let reporter =
    prog "/bin/reporter" (fun _ ->
        (* after exec, a previously-caught signal must be back at Default *)
        (match Ksim.Api.sigaction Ksim.Usignal.SIGUSR1 Ksim.Usignal.Default with
        | Ok Ksim.Usignal.Default -> Ksim.Api.print "default"
        | Ok _ -> Ksim.Api.print "not-reset"
        | Error _ -> Ksim.Api.print "error");
        Ksim.Api.exit 0)
  in
  let t, outcome =
    boot ~programs:[ reporter ] (fun _ ->
        ignore
          (ok (Ksim.Api.sigaction Ksim.Usignal.SIGUSR1 (Ksim.Usignal.Handler "h")));
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (match Ksim.Api.exec "/bin/reporter" with Ok () | Error _ -> ());
                 Ksim.Api.exit 1))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "handler reset" "default" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* vfork *)

let test_vfork_shares_memory () =
  let t, outcome =
    boot ~programs:[ true_prog ] (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:page ~perm:Vmem.Perm.rw) in
        ok (Ksim.Api.mem_write ~addr "1");
        let pid =
          ok
            (Ksim.Api.vfork ~child:(fun () ->
                 (* writes land in the parent's address space *)
                 ok (Ksim.Api.mem_write ~addr "2");
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        Ksim.Api.print ("parent-sees:" ^ ok (Ksim.Api.mem_read ~addr ~len:1)))
  in
  all_exited outcome;
  check_str "vfork child scribbled on parent" "parent-sees:2"
    (Ksim.Kernel.console t)

let test_vfork_blocks_parent () =
  let t, outcome =
    boot ~programs:[ echo_prog ] (fun _ ->
        let pid =
          ok
            (Ksim.Api.vfork ~child:(fun () ->
                 Ksim.Api.print "child-first;";
                 (match Ksim.Api.exec ~argv:[ "execed;" ] "/bin/echo" with
                 | Ok () | Error _ -> ());
                 Ksim.Api.exit 1))
        in
        Ksim.Api.print "parent-after-exec;";
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  (* the parent resumed only after the child exec'd; the exec'd child
     then runs concurrently with the parent *)
  let console = Ksim.Kernel.console t in
  check_bool "child ran before parent resumed" true
    (String.length console >= 12 && String.sub console 0 12 = "child-first;")

(* ------------------------------------------------------------------ *)
(* pipes, SIGPIPE, pipelines *)

let test_pipe_parent_child () =
  let t, outcome =
    boot (fun _ ->
        let rfd, wfd = ok (Ksim.Api.pipe ()) in
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ok (Ksim.Api.close wfd);
                 let data = ok (Ksim.Api.read_all rfd) in
                 Ksim.Api.print ("got:" ^ data);
                 Ksim.Api.exit 0))
        in
        ok (Ksim.Api.close rfd);
        ok (Ksim.Api.write_all wfd "ping");
        ok (Ksim.Api.close wfd);
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "console" "got:ping" (Ksim.Kernel.console t)

let test_pipe_blocking_big_transfer () =
  (* producer writes more than pipe capacity; consumer drains: write-side
     blocking must engage and resolve *)
  let n = 200_000 in
  let t, outcome =
    boot (fun _ ->
        let rfd, wfd = ok (Ksim.Api.pipe ()) in
        let producer =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ok (Ksim.Api.close rfd);
                 ok (Ksim.Api.write_all wfd (String.make n 'z'));
                 Ksim.Api.exit 0))
        in
        let consumer =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ok (Ksim.Api.close wfd);
                 let data = ok (Ksim.Api.read_all rfd) in
                 Ksim.Api.print (string_of_int (String.length data));
                 Ksim.Api.exit 0))
        in
        ok (Ksim.Api.close rfd);
        ok (Ksim.Api.close wfd);
        ignore (ok (Ksim.Api.wait_for producer));
        ignore (ok (Ksim.Api.wait_for consumer)))
  in
  all_exited outcome;
  check_str "all bytes crossed" (string_of_int n) (Ksim.Kernel.console t)

let test_sigpipe_kills_writer () =
  let t, outcome =
    boot (fun _ ->
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 let rfd, wfd = ok (Ksim.Api.pipe ()) in
                 ok (Ksim.Api.close rfd);
                 ignore (Ksim.Api.write wfd "doomed");
                 (* unreachable: SIGPIPE terminates us *)
                 Ksim.Api.exit 0))
        in
        match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Killed Ksim.Usignal.SIGPIPE -> Ksim.Api.print "sigpipe"
        | st -> Ksim.Api.print (Format.asprintf "%a" Ksim.Types.pp_status st))
  in
  all_exited outcome;
  check_str "console" "sigpipe" (Ksim.Kernel.console t)

let test_sigpipe_ignored_gives_epipe () =
  let t, outcome =
    boot (fun _ ->
        ignore
          (ok (Ksim.Api.sigaction Ksim.Usignal.SIGPIPE Ksim.Usignal.Ignored));
        let rfd, wfd = ok (Ksim.Api.pipe ()) in
        ok (Ksim.Api.close rfd);
        match Ksim.Api.write wfd "doomed" with
        | Error Ksim.Errno.EPIPE -> Ksim.Api.print "epipe"
        | Error _ | Ok _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "epipe" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* wait semantics *)

let test_waitpid_echild () =
  let t, outcome =
    boot (fun _ ->
        match Ksim.Api.waitpid Ksim.Types.Any_child with
        | Error Ksim.Errno.ECHILD -> Ksim.Api.print "echild"
        | Error _ | Ok _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "echild" (Ksim.Kernel.console t)

let test_wait_all () =
  let t, outcome =
    boot (fun _ ->
        for i = 1 to 3 do
          ignore (ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit i)))
        done;
        let reaped = Ksim.Api.wait_all () in
        let codes =
          List.map
            (function _, Ksim.Types.Exited c -> c | _, Ksim.Types.Killed _ -> -1)
            reaped
          |> List.sort compare
        in
        Ksim.Api.print
          (String.concat "," (List.map string_of_int codes)))
  in
  all_exited outcome;
  check_str "console" "1,2,3" (Ksim.Kernel.console t)

let test_orphan_reparented () =
  (* a grandchild orphaned by its parent's exit is reparented to init *)
  let t, outcome =
    boot (fun _ ->
        let mid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore
                   (ok
                      (Ksim.Api.fork ~child:(fun () ->
                           Ksim.Api.yield ();
                           Ksim.Api.yield ();
                           Ksim.Api.exit 5)));
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for mid));
        (* the grandchild is now init's child *)
        match Ksim.Api.waitpid Ksim.Types.Any_child with
        | Ok (_, Ksim.Types.Exited 5) -> Ksim.Api.print "adopted"
        | _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "adopted" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* signals *)

let test_kill_default_terminates () =
  let t, outcome =
    boot (fun _ ->
        let rfd, _wfd = ok (Ksim.Api.pipe ()) in
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (Ksim.Api.read rfd 1);
                 Ksim.Api.exit 0))
        in
        Ksim.Api.yield ();
        ok (Ksim.Api.kill pid Ksim.Usignal.SIGTERM);
        match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Killed Ksim.Usignal.SIGTERM -> Ksim.Api.print "terminated"
        | st -> Ksim.Api.print (Format.asprintf "%a" Ksim.Types.pp_status st))
  in
  all_exited outcome;
  check_str "console" "terminated" (Ksim.Kernel.console t)

let test_handler_counts () =
  let t, outcome =
    boot (fun _ ->
        ignore
          (ok (Ksim.Api.sigaction Ksim.Usignal.SIGUSR2 (Ksim.Usignal.Handler "u2")));
        let me = Ksim.Api.getpid () in
        ok (Ksim.Api.kill me Ksim.Usignal.SIGUSR2);
        ok (Ksim.Api.kill me Ksim.Usignal.SIGUSR2);
        Ksim.Api.print (string_of_int (Ksim.Api.handled_signals "u2")))
  in
  all_exited outcome;
  check_str "console" "2" (Ksim.Kernel.console t)

let test_sigkill_uncatchable () =
  let t, outcome =
    boot (fun _ ->
        match Ksim.Api.sigaction Ksim.Usignal.SIGKILL Ksim.Usignal.Ignored with
        | Error Ksim.Errno.EINVAL -> Ksim.Api.print "einval"
        | Error _ | Ok _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "einval" (Ksim.Kernel.console t)

let test_alarm_fires_in_blocked_read () =
  let t, outcome =
    boot (fun _ ->
        let rfd, _wfd = ok (Ksim.Api.pipe ()) in
        ignore (Ksim.Api.alarm 5);
        ignore (Ksim.Api.read rfd 1);
        (* unreachable: SIGALRM default-terminates *)
        Ksim.Api.print "survived")
  in
  all_exited outcome;
  check_str "no survival print" "" (Ksim.Kernel.console t);
  match Ksim.Kernel.status_of t 1 with
  | Some (Ksim.Types.Killed Ksim.Usignal.SIGALRM) -> ()
  | _ -> Alcotest.fail "expected SIGALRM death"

let test_alarm_not_inherited () =
  let t, outcome =
    boot (fun _ ->
        ignore (Ksim.Api.alarm 1000);
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 Ksim.Api.print
                   (string_of_int (Ksim.Api.alarm 0) (* remaining: 0 *));
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        ignore (Ksim.Api.alarm 0))
  in
  all_exited outcome;
  check_str "child has no alarm" "0" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* cwd *)

let test_chdir_inherited () =
  let t, outcome =
    boot (fun _ ->
        ok (Ksim.Api.chdir "/tmp");
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 Ksim.Api.print (Ksim.Api.getcwd () ^ ";");
                 (* relative path resolves against the inherited cwd *)
                 (match
                    Ksim.Api.openf ~flags:Ksim.Types.o_wronly "here.txt"
                  with
                 | Ok fd -> ignore (Ksim.Api.write fd "x") |> fun () ->
                   ignore (Ksim.Api.close fd)
                 | Error _ -> Ksim.Api.print "open-failed");
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "child cwd" "/tmp;" (Ksim.Kernel.console t);
  check_bool "file in /tmp" true
    (Ksim.Vfs.file_exists (Ksim.Kernel.vfs t) ~cwd:"/" "/tmp/here.txt")

let test_chdir_errors () =
  let t, outcome =
    boot (fun _ ->
        (match Ksim.Api.chdir "/nope" with
        | Error Ksim.Errno.ENOENT -> Ksim.Api.print "enoent;"
        | Error _ | Ok () -> Ksim.Api.print "bad;");
        ignore (ok (Ksim.Api.openf ~flags:Ksim.Types.o_wronly "/tmp/f"));
        match Ksim.Api.chdir "/tmp/f" with
        | Error Ksim.Errno.ENOTDIR -> Ksim.Api.print "enotdir"
        | Error _ | Ok () -> Ksim.Api.print "bad")
  in
  all_exited outcome;
  check_str "console" "enoent;enotdir" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* more edge semantics *)

let test_vfork_child_exit_without_exec () =
  (* the parent's address space must survive the borrow *)
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:page ~perm:Vmem.Perm.rw) in
        ok (Ksim.Api.mem_write ~addr "A");
        let pid = ok (Ksim.Api.vfork ~child:(fun () -> Ksim.Api.exit 9)) in
        (match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Exited 9 -> ()
        | _ -> Ksim.Api.print "bad-status;");
        Ksim.Api.print (ok (Ksim.Api.mem_read ~addr ~len:1)))
  in
  all_exited outcome;
  check_str "memory intact" "A" (Ksim.Kernel.console t)

let test_exec_from_secondary_thread () =
  (* exec from a non-main thread destroys the siblings, including main *)
  let t, outcome =
    boot ~programs:[ echo_prog ] (fun _ ->
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore
                   (ok
                      (Ksim.Api.thread_create (fun () ->
                           match Ksim.Api.exec ~argv:[ "from-thread" ] "/bin/echo" with
                           | Ok () | Error _ -> ())));
                 (* main thread of the child: spin politely; exec should
                    annihilate us *)
                 for _ = 1 to 50 do Ksim.Api.yield () done;
                 Ksim.Api.print "main-survived!"))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "only the exec'd image ran" "from-thread" (Ksim.Kernel.console t)

let test_spawn_attr_reset_signals () =
  let reporter =
    prog "/bin/disposition-reporter" (fun _ ->
        match Ksim.Api.sigaction Ksim.Usignal.SIGUSR1 Ksim.Usignal.Default with
        | Ok Ksim.Usignal.Default -> Ksim.Api.exit 0
        | Ok Ksim.Usignal.Ignored -> Ksim.Api.exit 1
        | Ok (Ksim.Usignal.Handler _) -> Ksim.Api.exit 2
        | Error _ -> Ksim.Api.exit 3)
  in
  let t, outcome =
    boot ~programs:[ reporter ] (fun _ ->
        ignore (ok (Ksim.Api.sigaction Ksim.Usignal.SIGUSR1 Ksim.Usignal.Ignored));
        (* default spawn: Ignored inherits (exec semantics) *)
        let p1 = ok (Ksim.Api.spawn "/bin/disposition-reporter") in
        (match ok (Ksim.Api.wait_for p1) with
        | Ksim.Types.Exited 1 -> Ksim.Api.print "inherited;"
        | st -> Ksim.Api.print (Format.asprintf "%a;" Ksim.Types.pp_status st));
        (* reset_signals wipes it back to Default *)
        let p2 =
          ok
            (Ksim.Api.spawn
               ~attr:{ Ksim.Types.default_attr with Ksim.Types.reset_signals = true }
               "/bin/disposition-reporter")
        in
        match ok (Ksim.Api.wait_for p2) with
        | Ksim.Types.Exited 0 -> Ksim.Api.print "reset"
        | st -> Ksim.Api.print (Format.asprintf "%a" Ksim.Types.pp_status st))
  in
  all_exited outcome;
  check_str "console" "inherited;reset" (Ksim.Kernel.console t)

let test_spawn_attr_mask () =
  let checker =
    prog "/bin/mask-checker" (fun _ ->
        let mask = Ksim.Api.sigprocmask Ksim.Types.Block Ksim.Usignal.Set.empty in
        if Ksim.Usignal.Set.mem Ksim.Usignal.SIGUSR2 mask then Ksim.Api.exit 0
        else Ksim.Api.exit 1)
  in
  let t, outcome =
    boot ~programs:[ checker ] (fun _ ->
        let attr =
          { Ksim.Types.default_attr with
            Ksim.Types.mask =
              Some (Ksim.Usignal.Set.of_list [ Ksim.Usignal.SIGUSR2 ]) }
        in
        let pid = ok (Ksim.Api.spawn ~attr "/bin/mask-checker") in
        match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Exited 0 -> Ksim.Api.print "masked"
        | st -> Ksim.Api.print (Format.asprintf "%a" Ksim.Types.pp_status st))
  in
  all_exited outcome;
  check_str "console" "masked" (Ksim.Kernel.console t)

let test_fd_errors () =
  let t, outcome =
    boot (fun _ ->
        (match Ksim.Api.dup 99 with
        | Error Ksim.Errno.EBADF -> Ksim.Api.print "dup-ebadf;"
        | Error _ | Ok _ -> Ksim.Api.print "bad;");
        (match Ksim.Api.kill 4242 Ksim.Usignal.SIGTERM with
        | Error Ksim.Errno.ESRCH -> Ksim.Api.print "kill-esrch;"
        | Error _ | Ok () -> Ksim.Api.print "bad;");
        let fd = ok (Ksim.Api.openf ~flags:Ksim.Types.o_wronly "/tmp/wo") in
        match Ksim.Api.read fd 1 with
        | Error Ksim.Errno.EBADF -> Ksim.Api.print "read-wo-ebadf"
        | Error _ | Ok _ -> Ksim.Api.print "bad")
  in
  all_exited outcome;
  check_str "console" "dup-ebadf;kill-esrch;read-wo-ebadf" (Ksim.Kernel.console t)

let test_alarm_remaining () =
  let t, outcome =
    boot (fun _ ->
        ignore (Ksim.Api.alarm 1000);
        Ksim.Api.yield ();
        let remaining = Ksim.Api.alarm 0 in
        Ksim.Api.print
          (if remaining > 0 && remaining <= 1000 then "ok" else "bad"))
  in
  all_exited outcome;
  check_str "console" "ok" (Ksim.Kernel.console t)

let test_mutex_trylock () =
  let t, outcome =
    boot (fun _ ->
        let m = Ksim.Api.mutex_create () in
        ok (Ksim.Api.mutex_lock m);
        ignore
          (ok
             (Ksim.Api.thread_create (fun () ->
                  match Ksim.Api.mutex_trylock m with
                  | Error Ksim.Errno.EAGAIN -> Ksim.Api.print "eagain"
                  | Error _ | Ok () -> Ksim.Api.print "bad")));
        Ksim.Api.yield ();
        ok (Ksim.Api.mutex_unlock m))
  in
  all_exited outcome;
  check_str "console" "eagain" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* threads + mutexes: the fork deadlock *)

let test_mutex_threads () =
  let t, outcome =
    boot (fun _ ->
        let m = Ksim.Api.mutex_create () in
        ok (Ksim.Api.mutex_lock m);
        ignore
          (ok
             (Ksim.Api.thread_create (fun () ->
                  (* blocks until main unlocks *)
                  ok (Ksim.Api.mutex_lock m);
                  Ksim.Api.print "thread-got-lock;";
                  ok (Ksim.Api.mutex_unlock m))));
        Ksim.Api.yield ();
        Ksim.Api.print "main-unlocking;";
        ok (Ksim.Api.mutex_unlock m);
        Ksim.Api.yield ();
        Ksim.Api.yield ())
  in
  all_exited outcome;
  check_str "ordering" "main-unlocking;thread-got-lock;" (Ksim.Kernel.console t)

let test_mutex_relock_edeadlk () =
  let t, outcome =
    boot (fun _ ->
        let m = Ksim.Api.mutex_create () in
        ok (Ksim.Api.mutex_lock m);
        match Ksim.Api.mutex_lock m with
        | Error Ksim.Errno.EDEADLK -> Ksim.Api.print "edeadlk"
        | Error _ | Ok () -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "edeadlk" (Ksim.Kernel.console t)

let test_fork_mutex_deadlock () =
  (* the paper's thread-safety argument, end to end: another thread holds
     a lock at fork time; the child's first lock attempt hangs forever *)
  let _, outcome =
    boot (fun _ ->
        let m = Ksim.Api.mutex_create () in
        let rfd, _wfd = ok (Ksim.Api.pipe ()) in
        ignore
          (ok
             (Ksim.Api.thread_create (fun () ->
                  ok (Ksim.Api.mutex_lock m);
                  (* hold the lock and block forever, like a thread mid
                     malloc on another CPU *)
                  ignore (Ksim.Api.read rfd 1))));
        Ksim.Api.yield ();
        (* the helper thread now holds m *)
        ignore
          (ok
             (Ksim.Api.fork ~child:(fun () ->
                  (* inherited mutex memory says "locked by tid N", but
                     tid N does not exist here: deadlock *)
                  ok (Ksim.Api.mutex_lock m);
                  Ksim.Api.exit 0)));
        Ksim.Api.exit 0)
  in
  match outcome with
  | Ksim.Kernel.Stalled stalls ->
    check_bool "stalled on the inherited mutex" true
      (List.exists
         (fun s ->
           String.length s.Ksim.Kernel.why >= 10
           && String.sub s.Ksim.Kernel.why 0 10 = "mutex_lock")
         stalls)
  | o -> Alcotest.failf "expected stall, got %a" Ksim.Kernel.pp_outcome o

(* ------------------------------------------------------------------ *)
(* pthread_atfork *)

let test_atfork_ordering () =
  let t, outcome =
    boot (fun _ ->
        Ksim.Api.atfork
          ~prepare:(fun () -> Ksim.Api.print "prepA;")
          ~in_parent:(fun () -> Ksim.Api.print "parA;")
          ~in_child:(fun () -> Ksim.Api.print "childA;")
          ();
        Ksim.Api.atfork
          ~prepare:(fun () -> Ksim.Api.print "prepB;")
          ~in_parent:(fun () -> Ksim.Api.print "parB;")
          ~in_child:(fun () -> Ksim.Api.print "childB;")
          ();
        let pid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  (* prepare LIFO before everything; then the parent's FIFO and the
     child's FIFO sequences interleave (two processes run concurrently),
     so assert each process's subsequence rather than a global order *)
  let console = Ksim.Kernel.console t in
  let events = String.split_on_char ';' console in
  let subsequence needle =
    let rec go needle events =
      match (needle, events) with
      | [], _ -> true
      | _, [] -> false
      | n :: ns, e :: es -> if n = e then go ns es else go needle es
    in
    go needle events
  in
  check_bool "prepare is LIFO and first" true
    (String.length console >= 12 && String.sub console 0 12 = "prepB;prepA;");
  check_bool "parent handlers FIFO" true (subsequence [ "parA"; "parB" ]);
  check_bool "child handlers FIFO" true (subsequence [ "childA"; "childB" ])

let test_atfork_fixes_simple_deadlock () =
  (* same scenario as the fork-deadlock test, but with the textbook
     atfork mitigation: serialize fork against the lock *)
  let t, outcome =
    boot (fun _ ->
        let m = Ksim.Api.mutex_create () in
        Ksim.Api.atfork
          ~prepare:(fun () -> ok (Ksim.Api.mutex_lock m))
          ~in_parent:(fun () -> ok (Ksim.Api.mutex_unlock m))
            (* the child cannot unlock a lock owned by the parent's tid;
               like glibc's handlers it re-initializes instead *)
          ~in_child:(fun () -> ok (Ksim.Api.mutex_reinit m))
          ();
        ignore
          (ok
             (Ksim.Api.thread_create (fun () ->
                  for _ = 1 to 3 do
                    ok (Ksim.Api.mutex_lock m);
                    Ksim.Api.yield ();
                    ok (Ksim.Api.mutex_unlock m);
                    Ksim.Api.yield ()
                  done)));
        Ksim.Api.yield ();
        (* the worker may hold m right now; prepare waits for it *)
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ok (Ksim.Api.mutex_lock m);
                 ok (Ksim.Api.mutex_unlock m);
                 Ksim.Api.print "child-locked-fine;";
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "no deadlock" "child-locked-fine;" (Ksim.Kernel.console t)

let test_atfork_cure_blocks_fork_itself () =
  (* the paper's counterpoint: if any thread holds the lock indefinitely,
     the atfork prepare handler just moves the hang into fork() *)
  let _, outcome =
    boot (fun _ ->
        let m = Ksim.Api.mutex_create () in
        let r, _w = ok (Ksim.Api.pipe ()) in
        Ksim.Api.atfork ~prepare:(fun () -> ok (Ksim.Api.mutex_lock m)) ();
        ignore
          (ok
             (Ksim.Api.thread_create (fun () ->
                  ok (Ksim.Api.mutex_lock m);
                  ignore (Ksim.Api.read r 1))));
        Ksim.Api.yield ();
        ignore (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0));
        Ksim.Api.exit 0)
  in
  match outcome with
  | Ksim.Kernel.Stalled stalls ->
    check_bool "the parent hangs in prepare" true
      (List.exists
         (fun s ->
           String.length s.Ksim.Kernel.why >= 10
           && String.sub s.Ksim.Kernel.why 0 10 = "mutex_lock")
         stalls)
  | o -> Alcotest.failf "expected stall, got %a" Ksim.Kernel.pp_outcome o

let test_atfork_cleared_by_exec () =
  let forker =
    prog "/bin/forker" (fun _ ->
        (* handlers registered pre-exec must be gone here *)
        let pid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
        ignore (ok (Ksim.Api.wait_for pid));
        Ksim.Api.exit 0)
  in
  let t, outcome =
    boot ~programs:[ forker ] (fun _ ->
        Ksim.Api.atfork ~prepare:(fun () -> Ksim.Api.print "LEAKED;") ();
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (match Ksim.Api.exec "/bin/forker" with Ok () | Error _ -> ());
                 Ksim.Api.exit 1))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  (* the outer fork legitimately ran the handler once; the exec'd image's
     fork must not *)
  check_str "one prepare only" "LEAKED;" (Ksim.Kernel.console t)

let test_atfork_inherited_by_fork_child () =
  let t, outcome =
    boot (fun _ ->
        Ksim.Api.atfork ~prepare:(fun () -> Ksim.Api.print "P;") ();
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (* grandchild creation must run the inherited handler *)
                 let gpid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
                 ignore (ok (Ksim.Api.wait_for gpid));
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_str "ran in parent and in child" "P;P;" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* file locks *)

let test_file_lock_not_inherited () =
  let t, outcome =
    boot (fun _ ->
        let fd = ok (Ksim.Api.openf ~flags:Ksim.Types.o_wronly "/tmp/lockf") in
        ok (Ksim.Api.try_lock fd);
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 (* same fd (inherited), but the LOCK is per-process *)
                 match Ksim.Api.try_lock fd with
                 | Error Ksim.Errno.EAGAIN -> Ksim.Api.exit 42
                 | Error _ | Ok () -> Ksim.Api.exit 1))
        in
        (match ok (Ksim.Api.wait_for pid) with
        | Ksim.Types.Exited 42 -> Ksim.Api.print "lock-not-inherited;"
        | _ -> Ksim.Api.print "unexpected;");
        (* lock released when the owner exits: re-lock from a new child *)
        ok (Ksim.Api.unlock fd);
        let pid2 =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 match Ksim.Api.try_lock fd with
                 | Ok () -> Ksim.Api.exit 0
                 | Error _ -> Ksim.Api.exit 1))
        in
        match ok (Ksim.Api.wait_for pid2) with
        | Ksim.Types.Exited 0 -> Ksim.Api.print "relockable"
        | _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "lock-not-inherited;relockable" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* stdio double flush (E4 mechanism) *)

let test_stdio_double_flush_fork () =
  let t, outcome =
    boot (fun _ ->
        let f = ok (Ksim.Stdio.fopen 1) in
        ok (Ksim.Stdio.puts f "once!");
        (* unflushed bytes sit in (simulated) user memory; fork copies them *)
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ok (Ksim.Stdio.flush f);
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid));
        ok (Ksim.Stdio.flush f))
  in
  all_exited outcome;
  check_str "duplicated output" "once!once!" (Ksim.Kernel.console t)

let test_stdio_no_duplication_with_spawn () =
  let t, outcome =
    boot ~programs:[ true_prog ] (fun _ ->
        let f = ok (Ksim.Stdio.fopen 1) in
        ok (Ksim.Stdio.puts f "once!");
        let pid = ok (Ksim.Api.spawn "/bin/true") in
        ignore (ok (Ksim.Api.wait_for pid));
        ok (Ksim.Stdio.flush f))
  in
  all_exited outcome;
  check_str "single output" "once!" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* memory syscalls *)

let test_brk_and_heap () =
  let t, outcome =
    boot (fun _ ->
        let old = ok (Ksim.Api.sbrk (4 * page)) in
        ok (Ksim.Api.mem_write ~addr:old "heap");
        Ksim.Api.print (ok (Ksim.Api.mem_read ~addr:old ~len:4)))
  in
  all_exited outcome;
  check_str "console" "heap" (Ksim.Kernel.console t)

let test_touch_counts_pages () =
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(10 * page) ~perm:Vmem.Perm.rw) in
        Ksim.Api.print
          (string_of_int (ok (Ksim.Api.touch ~addr ~len:(10 * page)))))
  in
  all_exited outcome;
  check_str "console" "10" (Ksim.Kernel.console t)

let test_stack_guard_page () =
  (* with ASLR off the layout is fixed: the guard page sits directly
     below the 1 MiB stack under 0x7FFF_F000_0000 *)
  let config = { Ksim.Kernel.default_config with Ksim.Kernel.aslr = false } in
  let t, outcome =
    boot ~config (fun _ ->
        let stack_base = 0x7FFF_F000_0000 - (1 lsl 20) in
        (* the stack itself is writable... *)
        (match Ksim.Api.mem_write ~addr:stack_base "x" with
        | Ok () -> Ksim.Api.print "stack-ok;"
        | Error _ -> Ksim.Api.print "stack-broken;");
        (* ...the page below it faults *)
        match Ksim.Api.mem_write ~addr:(stack_base - 1) "x" with
        | Error Ksim.Errno.EACCES -> Ksim.Api.print "guard-faults"
        | Error e -> Ksim.Api.print (Ksim.Errno.to_string e)
        | Ok () -> Ksim.Api.print "guard-writable!")
  in
  all_exited outcome;
  check_str "console" "stack-ok;guard-faults" (Ksim.Kernel.console t)

let test_segfault_efault () =
  let t, outcome =
    boot (fun _ ->
        match Ksim.Api.mem_read ~addr:0xdead000 ~len:1 with
        | Error Ksim.Errno.EFAULT -> Ksim.Api.print "efault"
        | Error _ | Ok _ -> Ksim.Api.print "unexpected")
  in
  all_exited outcome;
  check_str "console" "efault" (Ksim.Kernel.console t)

(* ------------------------------------------------------------------ *)
(* ASLR: layout inheritance (E5 mechanism) *)

let mmap_report_prog =
  prog "/bin/mmap-report" (fun _ ->
      let addr = ok (Ksim.Api.mmap ~len:page ~perm:Vmem.Perm.rw) in
      Ksim.Api.print (Printf.sprintf "%x;" addr);
      Ksim.Api.exit 0)

let split_console t =
  String.split_on_char ';' (Ksim.Kernel.console t)
  |> List.filter (fun s -> s <> "")

let test_aslr_spawn_randomizes () =
  let t, outcome =
    boot ~programs:[ mmap_report_prog ] (fun _ ->
        for _ = 1 to 2 do
          let pid = ok (Ksim.Api.spawn "/bin/mmap-report") in
          ignore (ok (Ksim.Api.wait_for pid))
        done)
  in
  all_exited outcome;
  match split_console t with
  | [ a; b ] -> check_bool "spawned layouts differ" true (a <> b)
  | l -> Alcotest.failf "expected 2 reports, got %d" (List.length l)

let test_fork_inherits_layout () =
  let t, outcome =
    boot (fun _ ->
        (* both children map their next page at the same inherited spot *)
        for _ = 1 to 2 do
          let pid =
            ok
              (Ksim.Api.fork ~child:(fun () ->
                   let addr = ok (Ksim.Api.mmap ~len:page ~perm:Vmem.Perm.rw) in
                   Ksim.Api.print (Printf.sprintf "%x;" addr);
                   Ksim.Api.exit 0))
          in
          ignore (ok (Ksim.Api.wait_for pid))
        done)
  in
  all_exited outcome;
  match split_console t with
  | [ a; b ] -> check_str "forked layouts identical" a b
  | l -> Alcotest.failf "expected 2 reports, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* scheduler *)

let test_deterministic_replay () =
  let run () =
    let t, outcome =
      boot (fun _ ->
          for i = 1 to 3 do
            ignore
              (ok
                 (Ksim.Api.fork ~child:(fun () ->
                      Ksim.Api.print (Printf.sprintf "c%d;" i);
                      Ksim.Api.exit 0)))
          done;
          ignore (Ksim.Api.wait_all ()))
    in
    all_exited outcome;
    Ksim.Kernel.console t
  in
  check_str "same seed, same run" (run ()) (run ())

let test_random_sched_completes () =
  let config =
    { Ksim.Kernel.default_config with Ksim.Kernel.sched = `Random; seed = 7 }
  in
  let t, outcome =
    boot ~config (fun _ ->
        for i = 1 to 3 do
          ignore
            (ok
               (Ksim.Api.fork ~child:(fun () ->
                    Ksim.Api.print (Printf.sprintf "c%d;" i);
                    Ksim.Api.exit 0)))
        done;
        ignore (Ksim.Api.wait_all ()))
  in
  all_exited outcome;
  check_int "all children ran" 3 (List.length (split_console t))

let test_tick_limit () =
  let init = prog "/sbin/init" (fun _ -> while true do Ksim.Api.yield () done) in
  let t = Ksim.Kernel.create () in
  Ksim.Kernel.register t init;
  ignore (ok (Ksim.Kernel.spawn_init t "/sbin/init"));
  match Ksim.Kernel.run ~max_ticks:500 t with
  | Ksim.Kernel.Tick_limit -> ()
  | o -> Alcotest.failf "expected tick limit, got %a" Ksim.Kernel.pp_outcome o

let test_trace_records_syscalls () =
  let config =
    { Ksim.Kernel.default_config with Ksim.Kernel.trace_capacity = Some 128 }
  in
  let t, outcome =
    boot ~config (fun _ ->
        let pid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 3)) in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  match Ksim.Kernel.trace t with
  | None -> Alcotest.fail "trace missing"
  | Some tr ->
    check_bool "fork traced" true (Ksim.Trace.find tr ~pattern:"fork" <> []);
    check_bool "waitpid traced" true (Ksim.Trace.find tr ~pattern:"waitpid" <> [])

(* After overflow the ring must hold exactly the last [capacity] events,
   oldest first, with consecutive sequence numbers. *)
let test_trace_wraparound () =
  let capacity = 8 and total = 20 in
  let tr = Ksim.Trace.create ~capacity () in
  for i = 0 to total - 1 do
    Ksim.Trace.record tr ~tick:i ~pid:1 ~tid:1 (Printf.sprintf "ev%d" i)
  done;
  check_int "total" total (Ksim.Trace.total tr);
  let evs = Ksim.Trace.events tr in
  check_int "kept" capacity (List.length evs);
  List.iteri
    (fun i (e : Ksim.Trace.event) ->
      let expected = total - capacity + i in
      check_int (Printf.sprintf "seq %d" i) expected e.Ksim.Trace.seq;
      check_str
        (Printf.sprintf "what %d" i)
        (Printf.sprintf "ev%d" expected)
        e.Ksim.Trace.what)
    evs

let traced_config =
  { Ksim.Kernel.default_config with Ksim.Kernel.trace_capacity = Some 4096 }

let events_of t =
  match Ksim.Kernel.trace t with
  | None -> Alcotest.fail "trace missing"
  | Some tr -> Ksim.Trace.events tr

let test_trace_spans () =
  let t, outcome =
    boot ~config:traced_config (fun _ ->
        let pid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 3)) in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  let evs = events_of t in
  let of_phase ph what =
    List.filter
      (fun (e : Ksim.Trace.event) ->
        e.Ksim.Trace.phase = ph && e.Ksim.Trace.what = what)
      evs
  in
  let fork_b = of_phase Ksim.Trace.Begin "fork" in
  let fork_e = of_phase Ksim.Trace.End "fork" in
  check_int "one fork begin" 1 (List.length fork_b);
  check_int "one fork end" 1 (List.length fork_e);
  let b = List.hd fork_b and e = List.hd fork_e in
  check_bool "end after begin" true (e.Ksim.Trace.seq > b.Ksim.Trace.seq);
  check_bool "fork ok" true (e.Ksim.Trace.outcome = Some Ksim.Trace.Ok_result);
  check_bool "span positive" true (e.Ksim.Trace.span_ns > 0.0);
  check_bool "time advances" true (e.Ksim.Trace.ts_ns >= b.Ksim.Trace.ts_ns);
  (* args are repeated on the End event so name-based filters see them *)
  check_bool "end keeps args" true
    (Ksim.Trace.arg e "threads" = Ksim.Trace.arg b "threads");
  (* a blocking syscall still gets its End on completion *)
  let wait_e = of_phase Ksim.Trace.End "waitpid" in
  check_int "one waitpid end" 1 (List.length wait_e);
  check_bool "waitpid ok" true
    ((List.hd wait_e).Ksim.Trace.outcome = Some Ksim.Trace.Ok_result)

let test_trace_span_errno () =
  let t, outcome =
    boot ~config:traced_config (fun _ ->
        (match Ksim.Api.exec "/bin/does-not-exist" with
        | Ok () -> Alcotest.fail "exec of missing program succeeded"
        | Error e -> check_bool "enoent" true (e = Ksim.Errno.ENOENT));
        Ksim.Api.exit 0)
  in
  all_exited outcome;
  let failed_exec =
    List.filter
      (fun (e : Ksim.Trace.event) ->
        e.Ksim.Trace.phase = Ksim.Trace.End
        && e.Ksim.Trace.what = "execve"
        && e.Ksim.Trace.outcome = Some (Ksim.Trace.Err Ksim.Errno.ENOENT))
      (events_of t)
  in
  check_int "failed exec span" 1 (List.length failed_exec)

let test_trace_exporters () =
  let t, outcome =
    boot ~config:traced_config (fun _ ->
        let pid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  let tr = Option.get (Ksim.Kernel.trace t) in
  (* JSONL: every line is a standalone JSON object *)
  let lines =
    String.split_on_char '\n' (Ksim.Trace.to_jsonl tr)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per event" (List.length (Ksim.Trace.events tr))
    (List.length lines);
  List.iter
    (fun l ->
      match Metrics.Json.of_string l with
      | Error e -> Alcotest.fail ("jsonl line: " ^ e)
      | Ok j -> check_bool "has name" true (Metrics.Json.member "what" j <> None))
    lines;
  (* Chrome: a traceEvents array whose phases are B/E/i, plus the "M"
     metadata events that label pid/tid lanes for the viewer *)
  match Metrics.Json.of_string (Metrics.Json.to_string (Ksim.Trace.to_chrome tr)) with
  | Error e -> Alcotest.fail ("chrome parse: " ^ e)
  | Ok doc -> (
    match
      Option.bind (Metrics.Json.member "traceEvents" doc) Metrics.Json.to_list
    with
    | None | Some [] -> Alcotest.fail "no traceEvents"
    | Some evs ->
      List.iter
        (fun ev ->
          match
            Option.bind (Metrics.Json.member "ph" ev) Metrics.Json.to_str
          with
          | Some ("B" | "E" | "i" | "M") -> ()
          | other ->
            Alcotest.failf "bad phase %s"
              (Option.value ~default:"<none>" other))
        evs;
      check_bool "has lane metadata" true
        (List.exists
           (fun ev ->
             Option.bind (Metrics.Json.member "ph" ev) Metrics.Json.to_str
             = Some "M")
           evs))

(* ------------------------------------------------------------------ *)
(* Kstat counters *)

let counter cs k =
  Option.value ~default:0 (List.assoc_opt k (Ksim.Kstat.snapshot cs))

let test_kstat_counters () =
  let pages = 16 in
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(pages * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  check_int "forks" 1 (counter g "forks");
  (* the child re-touches every inherited page: one COW break each *)
  check_int "cow breaks" pages (counter g "cow-breaks");
  check_bool "faults counted" true (counter g "faults" >= pages);
  check_bool "ptes copied" true (counter g "ptes-copied" >= pages);
  check_bool "cycles attributed" true (Ksim.Kstat.cycles g > 0.0);
  check_bool "fork kind" true
    (List.assoc_opt "fork" (Ksim.Kstat.kinds g) = Some 1);
  (* snapshot totals match the per-kind sum *)
  check_int "syscalls = sum of kinds"
    (List.fold_left (fun a (_, n) -> a + n) 0 (Ksim.Kstat.kinds g))
    (counter g "syscalls")

let test_kstat_per_pid () =
  let pages = 8 in
  let child_pid = ref (-1) in
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(pages * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
                 Ksim.Api.exit 0))
        in
        child_pid := pid;
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  let ks = Ksim.Kernel.kstat t in
  match Ksim.Kstat.pid_counters ks !child_pid with
  | None -> Alcotest.fail "no counters for child pid"
  | Some child ->
    (* the COW breaks happened while the child was running *)
    check_int "child cow breaks" pages (counter child "cow-breaks");
    let parent = Option.get (Ksim.Kstat.pid_counters ks 1) in
    check_int "parent cow breaks" 0 (counter parent "cow-breaks");
    check_bool "parent zero-fills" true (counter parent "frames-zeroed" >= pages)

let test_kstat_stdio_double_flush () =
  let buffered = 512 in
  let run use_spawn =
    let t, outcome =
      boot ~programs:[ true_prog ] (fun _ ->
          let f = ok (Ksim.Stdio.fopen ~bufsize:4096 1) in
          ok (Ksim.Stdio.puts f (String.make buffered 'x'));
          let pid =
            if use_spawn then ok (Ksim.Api.spawn "/bin/true")
            else
              ok
                (Ksim.Api.fork ~child:(fun () ->
                     ok (Ksim.Stdio.flush f);
                     Ksim.Api.exit 0))
          in
          ignore (ok (Ksim.Api.wait_for pid));
          ok (Ksim.Stdio.flush f))
    in
    all_exited outcome;
    Ksim.Kstat.global (Ksim.Kernel.kstat t)
  in
  let forked = run false in
  check_int "fork double-flushes the buffer" buffered
    (counter forked "stdio-double-flushed-bytes");
  check_bool "flushed bytes counted" true
    (counter forked "stdio-flushed-bytes" >= 2 * buffered);
  let spawned = run true in
  check_int "spawn does not" 0 (counter spawned "stdio-double-flushed-bytes")

(* ------------------------------------------------------------------ *)
(* fork cost scales in-sim; spawn cost does not (F1-SIM mechanism) *)

let creation_cycles ~use_spawn ~heap_pages =
  let t, outcome =
    boot ~programs:[ true_prog ]
      ~config:
        { Ksim.Kernel.default_config with
          Ksim.Kernel.phys_pages = 1 lsl 20;
          commit_policy = Vmem.Frame.Overcommit }
      (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(heap_pages * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(heap_pages * page)))
        ;
        let pid =
          if use_spawn then ok (Ksim.Api.spawn "/bin/true")
          else
            ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  ignore outcome;
  Vmem.Cost.get (Ksim.Kernel.cost t) "fork:pte"

let test_fork_cost_scales_spawn_does_not () =
  let fork_small = creation_cycles ~use_spawn:false ~heap_pages:64 in
  let fork_big = creation_cycles ~use_spawn:false ~heap_pages:8192 in
  let spawn_small = creation_cycles ~use_spawn:true ~heap_pages:64 in
  let spawn_big = creation_cycles ~use_spawn:true ~heap_pages:8192 in
  check_bool "fork PTE work grows" true (fork_big > fork_small *. 10.0);
  check_bool "spawn does no PTE copying" true
    (spawn_small = 0.0 && spawn_big = 0.0)

(* ------------------------------------------------------------------ *)
(* zygote templates *)

let test_zygote_lifecycle () =
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(8 * page) ~perm:Vmem.Perm.rw) in
        ok (Ksim.Api.mem_write ~addr "Z");
        ignore (ok (Ksim.Api.touch ~addr ~len:(8 * page)));
        let tpl = ok (Ksim.Api.freeze ()) in
        (* the source still maps the pinned pages: discard refuses *)
        expect_errno Ksim.Errno.EBUSY (Ksim.Api.template_discard tpl);
        let spawn_reader tag =
          ok
            (Ksim.Api.spawn_from_template tpl ~child:(fun () ->
                 Ksim.Api.print
                   (tag ^ "-sees:" ^ ok (Ksim.Api.mem_read ~addr ~len:1) ^ ";");
                 ok (Ksim.Api.mem_write ~addr "C");
                 Ksim.Api.print
                   (tag ^ "-now:" ^ ok (Ksim.Api.mem_read ~addr ~len:1) ^ ";");
                 Ksim.Api.exit 0))
        in
        let a = spawn_reader "a" in
        ignore (ok (Ksim.Api.wait_for a));
        (* the first child's private write never reaches the template:
           a second child still reads the frozen byte *)
        let b = spawn_reader "b" in
        ignore (ok (Ksim.Api.wait_for b));
        Ksim.Api.print ("source:" ^ ok (Ksim.Api.mem_read ~addr ~len:1)))
  in
  all_exited outcome;
  check_str "console" "a-sees:Z;a-now:C;b-sees:Z;b-now:C;source:Z"
    (Ksim.Kernel.console t);
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  check_int "one freeze" 1 (counter g "tpl-freezes");
  check_int "two zygote spawns" 2 (counter g "tpl-spawns");
  check_bool "pages shared without per-page work" true
    (counter g "tpl-pages-shared" >= 16);
  match Ksim.Kernel.templates t with
  | [ tpl ] ->
    check_int "spawn count" 2 tpl.Ksim.Template.spawns;
    check_int "no live deps after exit" 0 tpl.Ksim.Template.live_deps;
    (* everything except the pinned template pages was returned *)
    check_int "used = template resident" tpl.Ksim.Template.resident
      (Vmem.Frame.used (Ksim.Kernel.frames t));
    check_int "pinned = resident" tpl.Ksim.Template.resident
      (Vmem.Frame.pinned (Ksim.Kernel.frames t));
    check_int "no commit leak" 0 (Vmem.Frame.committed (Ksim.Kernel.frames t))
  | l -> Alcotest.failf "expected one template, got %d" (List.length l)

(* Freeze a warmed (spawned, hence sole-owner) worker from its parent,
   spawn from the template while it lives, and discard once every
   dependent — source, then zygote child — is gone. *)
let test_zygote_discard_lifecycle () =
  let warm =
    prog "/warm" (fun argv ->
        match argv with
        | [ ready_w; release_r ] ->
          let addr = ok (Ksim.Api.mmap ~len:(4 * page) ~perm:Vmem.Perm.rw) in
          ignore (ok (Ksim.Api.touch ~addr ~len:(4 * page)));
          ok (Ksim.Api.write_all (int_of_string ready_w) "R");
          ignore (ok (Ksim.Api.read (int_of_string release_r) 1));
          Ksim.Api.exit 0
        | _ -> Ksim.Api.exit 1)
  in
  let tref = ref None in
  let init =
    prog "/sbin/init" (fun _ ->
        let t = Option.get !tref in
        let frames = Ksim.Kernel.frames t in
        let ready_r, ready_w = ok (Ksim.Api.pipe ()) in
        let release_r, release_w = ok (Ksim.Api.pipe ()) in
        let gate_r, gate_w = ok (Ksim.Api.pipe ()) in
        let worker =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 match
                   Ksim.Api.exec
                     ~argv:
                       [ string_of_int ready_w; string_of_int release_r ]
                     "/warm"
                 with
                 | Ok () | Error _ -> Ksim.Api.exit 127))
        in
        ignore (ok (Ksim.Api.read ready_r 1));
        (* post-exec the worker owns a fresh image: freezable *)
        let tpl = ok (Ksim.Api.freeze ~pid:worker ()) in
        check_bool "pages pinned" true (Vmem.Frame.pinned frames > 0);
        let child =
          ok
            (Ksim.Api.spawn_from_template tpl ~child:(fun () ->
                 ignore (Ksim.Api.read gate_r 1);
                 Ksim.Api.exit 0))
        in
        (* source and zygote child both alive *)
        expect_errno Ksim.Errno.EBUSY (Ksim.Api.template_discard tpl);
        ok (Ksim.Api.write_all release_w "G");
        ignore (ok (Ksim.Api.wait_for worker));
        (* source gone, child still maps template pages *)
        expect_errno Ksim.Errno.EBUSY (Ksim.Api.template_discard tpl);
        ok (Ksim.Api.write_all gate_w "G");
        ignore (ok (Ksim.Api.wait_for child));
        ok (Ksim.Api.template_discard tpl);
        check_int "unpinned on discard" 0 (Vmem.Frame.pinned frames);
        (* the id is dead now *)
        expect_errno Ksim.Errno.EINVAL
          (Ksim.Api.spawn_from_template tpl ~child:(fun () -> Ksim.Api.exit 0));
        expect_errno Ksim.Errno.EINVAL (Ksim.Api.template_discard tpl))
  in
  let t = Ksim.Kernel.create () in
  Ksim.Kernel.register_all t [ init; warm ];
  tref := Some t;
  (match Ksim.Kernel.spawn_init t "/sbin/init" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "spawn_init failed: %s" (Ksim.Errno.to_string e));
  let outcome = Ksim.Kernel.run t in
  all_exited outcome;
  check_int "templates all gone" 0 (List.length (Ksim.Kernel.templates t));
  check_int "no frame leak" 0 (Vmem.Frame.used (Ksim.Kernel.frames t));
  check_int "no commit leak" 0 (Vmem.Frame.committed (Ksim.Kernel.frames t))

let test_zygote_errors () =
  let t, outcome =
    boot (fun _ ->
        expect_errno Ksim.Errno.ESRCH (Ksim.Api.freeze ~pid:999 ());
        (* only a child of the caller may be frozen by pid *)
        expect_errno Ksim.Errno.EPERM (Ksim.Api.freeze ~pid:(Ksim.Api.getpid ()) ());
        expect_errno Ksim.Errno.EINVAL
          (Ksim.Api.spawn_from_template 42 ~child:(fun () -> Ksim.Api.exit 0));
        expect_errno Ksim.Errno.EINVAL (Ksim.Api.template_discard 42);
        (* a fork child still COW-shares its image with us: pinning its
           frames would steal pages the parent counts on *)
        let rfd, wfd = ok (Ksim.Api.pipe ()) in
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (Ksim.Api.read rfd 1);
                 Ksim.Api.exit 0))
        in
        expect_errno Ksim.Errno.EBUSY (Ksim.Api.freeze ~pid ());
        ok (Ksim.Api.write_all wfd "x");
        ignore (ok (Ksim.Api.wait_for pid));
        (* a vfork child borrows its parent's address space: not its to
           seal *)
        let pid =
          ok
            (Ksim.Api.vfork ~child:(fun () ->
                 expect_errno Ksim.Errno.EINVAL (Ksim.Api.freeze ());
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  check_int "nothing pinned" 0 (Vmem.Frame.pinned (Ksim.Kernel.frames t));
  check_int "no templates" 0 (List.length (Ksim.Kernel.templates t))

(* A zygote spawn refused by strict commit accounting is transactional:
   template counters, frames, commit charges and the pid table are all
   exactly as before. *)
let test_zygote_failed_spawn_rolls_back () =
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.phys_pages = 2048;
      commit_policy = Vmem.Frame.Strict;
      aslr = false;
    }
  in
  let tref = ref None in
  let init =
    prog "/sbin/init" (fun _ ->
        let t = Option.get !tref in
        let frames = Ksim.Kernel.frames t in
        let addr = ok (Ksim.Api.mmap ~len:(1200 * page) ~perm:Vmem.Perm.rw) in
        ok (Ksim.Api.mem_write ~addr "Z");
        ignore (ok (Ksim.Api.touch ~addr ~len:(1200 * page)));
        let tpl = ok (Ksim.Api.freeze ()) in
        let template = Option.get (Ksim.Kernel.find_template t tpl) in
        let used = Vmem.Frame.used frames
        and committed = Vmem.Frame.committed frames
        and pids = List.length (Ksim.Kernel.procs t) in
        expect_errno Ksim.Errno.ENOMEM
          (Ksim.Api.spawn_from_template tpl ~child:(fun () -> Ksim.Api.exit 0));
        check_int "spawns unmoved" 0 template.Ksim.Template.spawns;
        check_int "deps unmoved" 1 template.Ksim.Template.live_deps;
        check_int "used unmoved" used (Vmem.Frame.used frames);
        check_int "commit unmoved" committed (Vmem.Frame.committed frames);
        check_int "no pid created" pids (List.length (Ksim.Kernel.procs t));
        (* releasing the source's copy frees its commit but not the
           pinned template pages: the same spawn now fits, and the
           child still reads the frozen image *)
        ok (Ksim.Api.munmap ~addr ~len:(1200 * page));
        let pid =
          ok
            (Ksim.Api.spawn_from_template tpl ~child:(fun () ->
                 Ksim.Api.print
                   ("sees:" ^ ok (Ksim.Api.mem_read ~addr ~len:1));
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  let t = Ksim.Kernel.create ~config () in
  Ksim.Kernel.register t init;
  tref := Some t;
  (match Ksim.Kernel.spawn_init t "/sbin/init" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "spawn_init failed: %s" (Ksim.Errno.to_string e));
  let outcome = Ksim.Kernel.run t in
  all_exited outcome;
  check_str "frozen image survived the source unmap" "sees:Z"
    (Ksim.Kernel.console t)

(* The flat-latency mechanism: the page-table work of a zygote spawn is
   a constant number of shared subtrees, not a function of footprint. *)
let zygote_subtree_cycles ~heap_pages =
  let t, outcome =
    boot
      ~config:
        {
          Ksim.Kernel.default_config with
          Ksim.Kernel.phys_pages = 1 lsl 20;
          commit_policy = Vmem.Frame.Overcommit;
        }
      (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(heap_pages * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(heap_pages * page)));
        let tpl = ok (Ksim.Api.freeze ()) in
        let pid =
          ok (Ksim.Api.spawn_from_template tpl ~child:(fun () -> Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  all_exited outcome;
  Vmem.Cost.get (Ksim.Kernel.cost t) "zygote:subtree"

let test_zygote_cost_flat () =
  let small = zygote_subtree_cycles ~heap_pages:64 in
  let big = zygote_subtree_cycles ~heap_pages:8192 in
  check_bool "charged something" true (small > 0.0);
  check_bool "zygote page-table work independent of footprint" true
    (big <= small *. 1.5)

(* ------------------------------------------------------------------ *)
(* robustness: random programs never crash the kernel, and when
   everything exits, every frame and commit charge is returned *)

type rand_op =
  | Op_mmap_touch of int
  | Op_fork_child
  | Op_spawn_true
  | Op_pipe_roundtrip
  | Op_file_write
  | Op_signal_self
  | Op_brk_grow
  | Op_yield

let gen_op =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun n -> Op_mmap_touch (1 + n)) (QCheck.Gen.int_bound 3);
      QCheck.Gen.return Op_fork_child;
      QCheck.Gen.return Op_spawn_true;
      QCheck.Gen.return Op_pipe_roundtrip;
      QCheck.Gen.return Op_file_write;
      QCheck.Gen.return Op_signal_self;
      QCheck.Gen.return Op_brk_grow;
      QCheck.Gen.return Op_yield;
    ]

let run_op op =
  match op with
  | Op_mmap_touch pages -> (
    match Ksim.Api.mmap ~len:(pages * page) ~perm:Vmem.Perm.rw with
    | Ok addr -> ignore (Ksim.Api.touch ~addr ~len:(pages * page))
    | Error _ -> ())
  | Op_fork_child -> (
    match
      Ksim.Api.fork ~child:(fun () ->
          (match Ksim.Api.mmap ~len:page ~perm:Vmem.Perm.rw with
          | Ok addr -> ignore (Ksim.Api.touch ~addr ~len:page)
          | Error _ -> ());
          Ksim.Api.exit 0)
    with
    | Ok _ | Error _ -> ())
  | Op_spawn_true -> ( match Ksim.Api.spawn "/bin/true" with Ok _ | Error _ -> ())
  | Op_pipe_roundtrip -> (
    match Ksim.Api.pipe () with
    | Error _ -> ()
    | Ok (r, w) ->
      (match Ksim.Api.write w "ping" with Ok _ | Error _ -> ());
      (match Ksim.Api.read r 4 with Ok _ | Error _ -> ());
      (match Ksim.Api.close r with Ok () | Error _ -> ());
      (match Ksim.Api.close w with Ok () | Error _ -> ()))
  | Op_file_write -> (
    match Ksim.Api.openf ~flags:Ksim.Types.o_wronly "/tmp/fuzz" with
    | Error _ -> ()
    | Ok fd ->
      (match Ksim.Api.write fd "data" with Ok _ | Error _ -> ());
      (match Ksim.Api.close fd with Ok () | Error _ -> ()))
  | Op_signal_self ->
    ignore (Ksim.Api.sigaction Ksim.Usignal.SIGUSR1 Ksim.Usignal.Ignored);
    (match Ksim.Api.kill (Ksim.Api.getpid ()) Ksim.Usignal.SIGUSR1 with
    | Ok () | Error _ -> ())
  | Op_brk_grow -> ( match Ksim.Api.sbrk page with Ok _ | Error _ -> ())
  | Op_yield -> Ksim.Api.yield ()

let prop_random_programs =
  QCheck.Test.make ~count:100 ~name:"kernel: random programs run clean"
    (QCheck.make QCheck.Gen.(list_size (0 -- 25) gen_op))
    (fun ops ->
      let init =
        prog "/sbin/init" (fun _ ->
            List.iter run_op ops;
            ignore (Ksim.Api.wait_all ()))
      in
      let true_prog = prog "/bin/true" (fun _ -> Ksim.Api.exit 0) in
      match Ksim.Kernel.boot ~programs:[ init; true_prog ] "/sbin/init" with
      | Error _ -> false
      | Ok (t, outcome) -> (
        match outcome with
        | Ksim.Kernel.All_exited ->
          Vmem.Frame.used (Ksim.Kernel.frames t) = 0
          && Vmem.Frame.committed (Ksim.Kernel.frames t) = 0
        | Ksim.Kernel.Stalled _ | Ksim.Kernel.Tick_limit ->
          (* a random program may legitimately block itself; the property
             is only that the kernel never throws *)
          true))

(* ------------------------------------------------------------------ *)
(* blame ledger: cost attribution back to creation events *)

(* Partition property: every cycle the cost meter records lands in
   exactly one blame bucket (some event's sync, some event's deferred,
   or unattributed), so the ledger's grand totals equal the meter's
   per-category totals — exactly, since all cost parameters are
   integer-valued floats and integer float sums are order-independent. *)
let prop_blame_partition =
  QCheck.Test.make ~count:60 ~name:"blame: buckets partition the cost meter"
    (QCheck.make QCheck.Gen.(list_size (0 -- 20) gen_op))
    (fun ops ->
      let init =
        prog "/sbin/init" (fun _ ->
            List.iter run_op ops;
            ignore (Ksim.Api.wait_all ()))
      in
      let true_prog = prog "/bin/true" (fun _ -> Ksim.Api.exit 0) in
      match Ksim.Kernel.boot ~programs:[ init; true_prog ] "/sbin/init" with
      | Error _ -> false
      | Ok (t, _) ->
        let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
        Vmem.Blame.totals (Ksim.Kernel.blame t)
        = by_name (Vmem.Cost.by_category_counts (Ksim.Kernel.cost t)))

(* Deferred charges go to the event that created the sharing being
   broken — the most recent one. Two sequential forks: the parent's
   post-wait writes break the sharing left by the second fork. *)
let test_blame_deferred_to_latest_fork () =
  let pages = 4 in
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(pages * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
        let f1 = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
        ignore (ok (Ksim.Api.wait_for f1));
        let f2 = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
        ignore (ok (Ksim.Api.wait_for f2));
        ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
        Ksim.Api.exit 0)
  in
  all_exited outcome;
  let blame = Ksim.Kernel.blame t in
  match Vmem.Blame.events blame with
  | [ e1; e2 ] ->
    check_str "both forks" "fork/fork"
      (e1.Vmem.Blame.style ^ "/" ^ e2.Vmem.Blame.style);
    check_bool "sync cost on both" true
      (Vmem.Blame.sync_cycles e1 > 0.0 && Vmem.Blame.sync_cycles e2 > 0.0);
    (* both children exited untouched: the only COW activity is the
       parent's, and it breaks the sharing of the *second* fork *)
    check_int "first fork: no deferred reuse" 0
      (Vmem.Blame.deferred_count e1 "fault:cow-reuse");
    check_int "second fork: all reuse breaks" pages
      (Vmem.Blame.deferred_count e2 "fault:cow-reuse");
    check_bool "second fork deferred cycles > 0" true
      (Vmem.Blame.deferred_cycles e2 > 0.0)
  | evs -> Alcotest.failf "expected 2 blame events, got %d" (List.length evs)

(* A child writing to inherited pages is charged back to the fork that
   created the sharing, as real frame copies this time (both sides
   live). *)
let test_blame_child_cow_copies () =
  let pages = 3 in
  let t, outcome =
    boot (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(pages * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
        let f =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (ok (Ksim.Api.touch ~addr ~len:(pages * page)));
                 Ksim.Api.exit 0))
        in
        ignore (ok (Ksim.Api.wait_for f));
        Ksim.Api.exit 0)
  in
  all_exited outcome;
  match Vmem.Blame.events (Ksim.Kernel.blame t) with
  | [ e ] ->
    check_int "copies charged to the fork" pages
      (Vmem.Blame.deferred_count e "fault:cow-copy")
  | evs -> Alcotest.failf "expected 1 blame event, got %d" (List.length evs)

(* Spawn creates no COW sharing: its event carries sync cost only, and
   later writes by either side stay out of the deferred buckets. *)
let test_blame_spawn_has_no_deferred () =
  let t, outcome =
    boot
      ~programs:[ prog "/bin/true" (fun _ -> Ksim.Api.exit 0) ]
      (fun _ ->
        let addr = ok (Ksim.Api.mmap ~len:(2 * page) ~perm:Vmem.Perm.rw) in
        ignore (ok (Ksim.Api.touch ~addr ~len:(2 * page)));
        let p = ok (Ksim.Api.spawn "/bin/true") in
        ignore (ok (Ksim.Api.wait_for p));
        ignore (ok (Ksim.Api.touch ~addr ~len:(2 * page)));
        Ksim.Api.exit 0)
  in
  all_exited outcome;
  match Vmem.Blame.events (Ksim.Kernel.blame t) with
  | [ e ] ->
    check_str "spawn style" "spawn" e.Vmem.Blame.style;
    check_bool "sync cost" true (Vmem.Blame.sync_cycles e > 0.0);
    Alcotest.(check (float 0.0))
      "no deferred" 0.0
      (Vmem.Blame.deferred_cycles e)
  | evs -> Alcotest.failf "expected 1 blame event, got %d" (List.length evs)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let tc n f = Alcotest.test_case n `Quick f

let () =
  Alcotest.run "ksim"
    [
      ( "usignal",
        [ tc "numbers" test_signal_numbers; tc "sets" test_signal_set ] );
      qsuite "usignal-props" [ prop_sigset_algebra ];
      ("pipe", [ tc "rw" test_pipe_rw; tc "compaction" test_pipe_compaction ]);
      ( "vfs",
        [
          tc "normalize" test_vfs_normalize;
          tc "files" test_vfs_files;
          tc "mkdir" test_vfs_mkdir;
        ] );
      ( "fd-table",
        [
          tc "basic" test_fdt_basic;
          tc "dup2/cloexec" test_fdt_dup2_cloexec;
          tc "clone shares" test_fdt_clone_shares;
        ] );
      ("sync", [ tc "clone copies state" test_sync_clone ]);
      ( "trace",
        [
          tc "ring" test_trace_ring;
          tc "wraparound" test_trace_wraparound;
          tc "spans" test_trace_spans;
          tc "span errno" test_trace_span_errno;
          tc "exporters" test_trace_exporters;
        ] );
      ( "kstat",
        [
          tc "counters" test_kstat_counters;
          tc "per-pid" test_kstat_per_pid;
          tc "stdio double flush" test_kstat_stdio_double_flush;
        ] );
      ( "kernel-basics",
        [
          tc "hello" test_hello;
          tc "natural return" test_natural_return_is_exit0;
          tc "exit code" test_exit_code;
        ] );
      ( "fork",
        [
          tc "cow memory" test_fork_memory_cow;
          tc "pending signals cleared" test_fork_pending_signals_cleared;
          tc "only calling thread" test_fork_only_calling_thread;
          tc "commit limit" test_fork_commit_limit;
        ] );
      ( "exec-spawn",
        [
          tc "exec replaces image" test_exec_replaces_image;
          tc "exec ENOENT is late" test_exec_enoent_late_error;
          tc "spawn ENOENT is sync" test_spawn_enoent_sync_error;
          tc "spawn runs" test_spawn_runs_program;
          tc "spawn file actions" test_spawn_file_actions_redirect;
          tc "spawn dup2 same fd" test_spawn_dup2_same_fd_clears_cloexec;
          tc "cloexec across exec" test_cloexec_across_exec;
          tc "exec resets handlers" test_exec_resets_handlers;
        ] );
      ( "vfork",
        [
          tc "shares memory" test_vfork_shares_memory;
          tc "blocks parent" test_vfork_blocks_parent;
        ] );
      ( "pipes",
        [
          tc "parent-child" test_pipe_parent_child;
          tc "blocking transfer" test_pipe_blocking_big_transfer;
          tc "sigpipe kills" test_sigpipe_kills_writer;
          tc "epipe when ignored" test_sigpipe_ignored_gives_epipe;
        ] );
      ( "wait",
        [
          tc "echild" test_waitpid_echild;
          tc "wait all" test_wait_all;
          tc "orphan reparented" test_orphan_reparented;
        ] );
      ( "signals",
        [
          tc "kill terminates" test_kill_default_terminates;
          tc "handler counts" test_handler_counts;
          tc "sigkill uncatchable" test_sigkill_uncatchable;
          tc "alarm in blocked read" test_alarm_fires_in_blocked_read;
          tc "alarm not inherited" test_alarm_not_inherited;
        ] );
      ( "cwd",
        [
          tc "chdir inherited" test_chdir_inherited;
          tc "chdir errors" test_chdir_errors;
        ] );
      ( "edge-semantics",
        [
          tc "vfork exit without exec" test_vfork_child_exit_without_exec;
          tc "exec from secondary thread" test_exec_from_secondary_thread;
          tc "spawn attr reset signals" test_spawn_attr_reset_signals;
          tc "spawn attr mask" test_spawn_attr_mask;
          tc "fd errors" test_fd_errors;
          tc "alarm remaining" test_alarm_remaining;
          tc "mutex trylock" test_mutex_trylock;
        ] );
      ( "mutex",
        [
          tc "threads" test_mutex_threads;
          tc "relock EDEADLK" test_mutex_relock_edeadlk;
          tc "fork deadlock" test_fork_mutex_deadlock;
        ] );
      ( "atfork",
        [
          tc "ordering" test_atfork_ordering;
          tc "fixes simple deadlock" test_atfork_fixes_simple_deadlock;
          tc "cure blocks fork itself" test_atfork_cure_blocks_fork_itself;
          tc "cleared by exec" test_atfork_cleared_by_exec;
          tc "inherited by fork child" test_atfork_inherited_by_fork_child;
        ] );
      ("locks", [ tc "not inherited by fork" test_file_lock_not_inherited ]);
      ( "stdio",
        [
          tc "fork duplicates buffer" test_stdio_double_flush_fork;
          tc "spawn does not" test_stdio_no_duplication_with_spawn;
        ] );
      ( "memory",
        [
          tc "brk/heap" test_brk_and_heap;
          tc "touch" test_touch_counts_pages;
          tc "stack guard page" test_stack_guard_page;
          tc "efault" test_segfault_efault;
        ] );
      ( "aslr",
        [
          tc "spawn randomizes" test_aslr_spawn_randomizes;
          tc "fork inherits" test_fork_inherits_layout;
        ] );
      ( "scheduler",
        [
          tc "deterministic replay" test_deterministic_replay;
          tc "random completes" test_random_sched_completes;
          tc "tick limit" test_tick_limit;
          tc "trace" test_trace_records_syscalls;
        ] );
      ( "creation-cost",
        [ tc "fork scales, spawn flat" test_fork_cost_scales_spawn_does_not ] );
      ( "zygote",
        [
          tc "lifecycle" test_zygote_lifecycle;
          tc "discard lifecycle" test_zygote_discard_lifecycle;
          tc "errors" test_zygote_errors;
          tc "failed spawn rolls back" test_zygote_failed_spawn_rolls_back;
          tc "cost flat" test_zygote_cost_flat;
        ] );
      ( "blame",
        [
          tc "deferred to latest fork" test_blame_deferred_to_latest_fork;
          tc "child COW copies" test_blame_child_cow_copies;
          tc "spawn has no deferred" test_blame_spawn_has_no_deferred;
        ] );
      qsuite "robustness" [ prop_random_programs ];
      qsuite "blame-props" [ prop_blame_partition ];
    ]
