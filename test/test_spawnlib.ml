(* Tests for the real-OS spawn library. These exercise actual fork/exec/
   posix_spawn/vfork against /bin/sh, /bin/true and friends. *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Spawnlib.Spawn.error_message e)

let status = Alcotest.testable Spawnlib.Process.pp_status Spawnlib.Process.status_equal

(* ------------------------------------------------------------------ *)
(* Env *)

let test_env_basic () =
  let e = Spawnlib.Env.of_list [ ("B", "2"); ("A", "1") ] in
  Alcotest.(check (option string)) "get" (Some "1") (Spawnlib.Env.get e "A");
  Alcotest.(check (option string)) "missing" None (Spawnlib.Env.get e "Z");
  let e = Spawnlib.Env.set e "C" "3" in
  check_int "cardinal" 3 (Spawnlib.Env.cardinal e);
  Alcotest.(check (array string))
    "sorted array" [| "A=1"; "B=2"; "C=3" |] (Spawnlib.Env.to_array e);
  let e = Spawnlib.Env.unset e "B" in
  check_int "after unset" 2 (Spawnlib.Env.cardinal e)

let test_env_merge () =
  let base = Spawnlib.Env.of_list [ ("A", "1"); ("B", "2") ] in
  let over = Spawnlib.Env.of_list [ ("B", "9"); ("C", "3") ] in
  let m = Spawnlib.Env.merge base over in
  Alcotest.(check (option string)) "override wins" (Some "9") (Spawnlib.Env.get m "B");
  Alcotest.(check (option string)) "base kept" (Some "1") (Spawnlib.Env.get m "A");
  check_int "union size" 3 (Spawnlib.Env.cardinal m)

let test_env_current () =
  check_bool "PATH present" true
    (Option.is_some (Spawnlib.Env.get (Spawnlib.Env.current ()) "PATH"))

(* ------------------------------------------------------------------ *)
(* Spawn (portable engine) *)

let test_run_true_false () =
  Alcotest.check status "true" (Spawnlib.Process.Exited 0)
    (ok (Spawnlib.Spawn.run ~prog:"/bin/true" ~argv:[ "true" ] ()));
  Alcotest.check status "false" (Spawnlib.Process.Exited 1)
    (ok (Spawnlib.Spawn.run ~prog:"/bin/false" ~argv:[ "false" ] ()))

let test_spawn_enoent_is_synchronous () =
  match Spawnlib.Spawn.spawn ~prog:"/bin/definitely-missing" ~argv:[ "x" ] () with
  | Error (Spawnlib.Spawn.Exec_failed Unix.ENOENT) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Spawnlib.Spawn.error_message e)
  | Ok _ -> Alcotest.fail "expected ENOENT"

let test_spawn_eacces () =
  (* a directory is not executable *)
  match Spawnlib.Spawn.spawn ~prog:"/tmp" ~argv:[ "x" ] () with
  | Error (Spawnlib.Spawn.Exec_failed (Unix.EACCES | Unix.EISDIR)) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Spawnlib.Spawn.error_message e)
  | Ok _ -> Alcotest.fail "expected exec failure"

let test_capture_echo () =
  let out, st =
    ok (Spawnlib.Spawn.capture ~prog:"/bin/echo" ~argv:[ "echo"; "hi" ] ())
  in
  Alcotest.check status "status" (Spawnlib.Process.Exited 0) st;
  check_str "output" "hi\n" out

let test_shell_capture_env () =
  let attr =
    { Spawnlib.Spawn.default_attr with
      Spawnlib.Spawn.env =
        Some
          (Spawnlib.Env.to_array
             (Spawnlib.Env.set (Spawnlib.Env.current ()) "FORKROAD_X" "42")) }
  in
  let out, _ =
    ok
      (Spawnlib.Spawn.capture ~attr ~prog:"/bin/sh"
         ~argv:[ "sh"; "-c"; "echo $FORKROAD_X" ] ())
  in
  check_str "env reached child" "42\n" out

let test_attr_cwd () =
  let attr = { Spawnlib.Spawn.default_attr with Spawnlib.Spawn.cwd = Some "/tmp" } in
  let out, _ =
    ok (Spawnlib.Spawn.capture ~attr ~prog:"/bin/sh" ~argv:[ "sh"; "-c"; "pwd" ] ())
  in
  check_str "cwd" "/tmp\n" out

let test_file_action_redirect () =
  let path = Filename.temp_file "forkroad" ".out" in
  let st =
    ok
      (Spawnlib.Spawn.run
         ~actions:[ Spawnlib.File_action.stdout_to_file path ]
         ~prog:"/bin/echo" ~argv:[ "echo"; "redirected" ] ())
  in
  Alcotest.check status "status" (Spawnlib.Process.Exited 0) st;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  check_str "file content" "redirected" line

let test_file_action_stdin () =
  let path = Filename.temp_file "forkroad" ".in" in
  let oc = open_out path in
  output_string oc "from-file";
  close_out oc;
  let out, _ =
    ok
      (Spawnlib.Spawn.capture
         ~actions:[ Spawnlib.File_action.stdin_from_file path ]
         ~prog:"/bin/cat" ~argv:[ "cat" ] ())
  in
  Sys.remove path;
  check_str "stdin redirected" "from-file" out

let test_shell () =
  Alcotest.check status "exit 3" (Spawnlib.Process.Exited 3)
    (ok (Spawnlib.Spawn.shell "exit 3"));
  let out, _ = ok (Spawnlib.Spawn.shell_capture "echo a b") in
  check_str "shell capture" "a b\n" out

let test_no_zombie_on_exec_failure () =
  (* exec failures reap the child internally: a following waitpid(-1)
     finds no children *)
  (match Spawnlib.Spawn.spawn ~prog:"/bin/missing" ~argv:[ "x" ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure");
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.fail "unexpected live child"
  | _, _ -> Alcotest.fail "unexpected zombie"

(* ------------------------------------------------------------------ *)
(* Process handles *)

let test_process_poll () =
  let p = ok (Spawnlib.Spawn.spawn ~prog:"/bin/sleep" ~argv:[ "sleep"; "0.05" ] ()) in
  (* poll until it finishes; bounded busy loop *)
  let rec wait_poll n =
    if n = 0 then Alcotest.fail "never finished"
    else
      match Spawnlib.Process.poll p with
      | Some st -> st
      | None ->
        ignore (Unix.select [] [] [] 0.01);
        wait_poll (n - 1)
  in
  Alcotest.check status "exited" (Spawnlib.Process.Exited 0) (wait_poll 500)

let test_process_kill () =
  let p = ok (Spawnlib.Spawn.spawn ~prog:"/bin/sleep" ~argv:[ "sleep"; "10" ] ()) in
  Spawnlib.Process.kill p Sys.sigterm;
  match Spawnlib.Process.wait p with
  | Spawnlib.Process.Signaled s -> check_int "sigterm" Sys.sigterm s
  | st -> Alcotest.failf "unexpected %a" Spawnlib.Process.pp_status st

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let test_pipeline_capture () =
  let out, statuses =
    ok
      (Spawnlib.Pipeline.run_capture
         [
           Spawnlib.Pipeline.cmd "/bin/echo" [ "pipe-data" ];
           Spawnlib.Pipeline.cmd "/bin/cat" [];
           Spawnlib.Pipeline.cmd "/bin/cat" [];
         ])
  in
  check_str "through two cats" "pipe-data\n" out;
  check_int "three stages" 3 (List.length statuses);
  List.iter
    (fun st -> Alcotest.check status "stage ok" (Spawnlib.Process.Exited 0) st)
    statuses

let test_pipeline_single () =
  let out, _ =
    ok (Spawnlib.Pipeline.run_capture [ Spawnlib.Pipeline.cmd "/bin/echo" [ "solo" ] ])
  in
  check_str "single stage" "solo\n" out

let test_pipeline_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Pipeline.run: empty pipeline")
    (fun () -> ignore (Spawnlib.Pipeline.run []))

let test_pipeline_failing_stage_status () =
  (* a failing middle stage must surface in ITS status slot while the
     others complete *)
  let out, statuses =
    ok
      (Spawnlib.Pipeline.run_capture
         [
           Spawnlib.Pipeline.cmd "/bin/echo" [ "data" ];
           Spawnlib.Pipeline.cmd "/bin/false" [];
           Spawnlib.Pipeline.cmd "/bin/cat" [];
         ])
  in
  check_str "false swallows the data" "" out;
  (match statuses with
  | [ s1; s2; s3 ] ->
    (* echo races /bin/false's exit: it may finish cleanly or die of
       SIGPIPE writing into the closed pipe -- both are correct *)
    (match s1 with
    | Spawnlib.Process.Exited 0 -> ()
    | Spawnlib.Process.Signaled s when s = Sys.sigpipe -> ()
    | st -> Alcotest.failf "stage1: %a" Spawnlib.Process.pp_status st);
    Alcotest.check status "stage2 failed" (Spawnlib.Process.Exited 1) s2;
    Alcotest.check status "stage3" (Spawnlib.Process.Exited 0) s3
  | _ -> Alcotest.fail "wrong arity")

let test_new_session_attr () =
  (* a setsid child reports itself as its own session leader *)
  let attr = { Spawnlib.Spawn.default_attr with Spawnlib.Spawn.new_session = true } in
  let out, st =
    ok
      (Spawnlib.Spawn.capture ~attr ~prog:"/bin/sh"
         ~argv:[ "sh"; "-c"; "ps -o sid= -p $$ 2>/dev/null || echo skip" ] ())
  in
  match String.trim out with
  | "skip" -> () (* no ps in this container: accept *)
  | sid ->
    Alcotest.check status "exited" (Spawnlib.Process.Exited 0) st;
    check_bool "session id is a pid" true (int_of_string_opt sid <> None)

(* ------------------------------------------------------------------ *)
(* Native backends *)

let test_native_posix_spawn () =
  match Spawnlib.Native.posix_spawn ~prog:"/bin/true" ~argv:[ "true" ] () with
  | Ok pid -> check_int "exit" 0 (Spawnlib.Native.wait_exit pid)
  | Error e -> Alcotest.failf "posix_spawn: %s" (Spawnlib.Native.errno_message e)

let test_native_posix_spawn_enoent () =
  match Spawnlib.Native.posix_spawn ~prog:"/bin/missing" ~argv:[ "x" ] () with
  | Error 2 (* ENOENT *) -> ()
  | Error e -> Alcotest.failf "wrong errno %d" e
  | Ok pid ->
    (* glibc may report exec failure via exit 127 depending on version *)
    check_int "exit 127" 127 (Spawnlib.Native.wait_exit pid)

let test_native_vfork_exec () =
  match Spawnlib.Native.vfork_exec ~prog:"/bin/true" ~argv:[ "true" ] () with
  | Ok pid -> check_int "exit" 0 (Spawnlib.Native.wait_exit pid)
  | Error e -> Alcotest.failf "vfork: %s" (Spawnlib.Native.errno_message e)

let test_native_vfork_exec_failure_is_127 () =
  match Spawnlib.Native.vfork_exec ~prog:"/bin/missing" ~argv:[ "x" ] () with
  | Ok pid -> check_int "degraded error" 127 (Spawnlib.Native.wait_exit pid)
  | Error e -> Alcotest.failf "vfork: %s" (Spawnlib.Native.errno_message e)

let test_native_fork_exec () =
  match Spawnlib.Native.fork_exec ~prog:"/bin/true" ~argv:[ "true" ] () with
  | Ok pid -> check_int "exit" 0 (Spawnlib.Native.wait_exit pid)
  | Error e -> Alcotest.failf "fork_exec: %s" (Spawnlib.Native.errno_message e)

let test_native_fork_exit () =
  match Spawnlib.Native.fork_exit () with
  | Ok pid -> check_int "exit" 0 (Spawnlib.Native.wait_exit pid)
  | Error e -> Alcotest.failf "fork_exit: %s" (Spawnlib.Native.errno_message e)

let test_native_env () =
  match
    Spawnlib.Native.posix_spawn ~prog:"/bin/sh"
      ~argv:[ "sh"; "-c"; "test \"$NATIVE_X\" = yes" ]
      ~env:[ "NATIVE_X=yes" ] ()
  with
  | Ok pid -> check_int "env seen" 0 (Spawnlib.Native.wait_exit pid)
  | Error e -> Alcotest.failf "posix_spawn: %s" (Spawnlib.Native.errno_message e)

(* ------------------------------------------------------------------ *)
(* Pool (prefork workers) *)

let pool_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "pool error: %s" (Spawnlib.Pool.error_message e)

(* /bin/cat makes a perfect echo worker: one line in, same line out,
   exits 0 on stdin EOF *)
let cat_pool ?warmup size =
  pool_ok
    (Spawnlib.Pool.create ?warmup ~size ~prog:"/bin/cat" ~argv:[ "cat" ] ())

let test_pool_echo () =
  let p = cat_pool 3 in
  check_int "size" 3 (Spawnlib.Pool.size p);
  let pids = Spawnlib.Pool.pids p in
  check_int "three pids" 3 (List.length (List.sort_uniq compare pids));
  for i = 1 to 7 do
    check_str "echo" (Printf.sprintf "req-%d" i)
      (pool_ok (Spawnlib.Pool.submit p (Printf.sprintf "req-%d" i)))
  done;
  let st = Spawnlib.Pool.stats p in
  check_int "served" 7 st.Spawnlib.Pool.served;
  check_int "spawned" 3 st.Spawnlib.Pool.spawned;
  check_int "no respawns" 0 st.Spawnlib.Pool.respawns;
  List.iter
    (fun s -> Alcotest.check status "worker exit" (Spawnlib.Process.Exited 0) s)
    (Spawnlib.Pool.shutdown p);
  check_int "shutdown idempotent" 0 (List.length (Spawnlib.Pool.shutdown p));
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Spawnlib.Pool.submit p "x"))

let test_pool_warmup () =
  let warmed = ref 0 in
  let warmup ~send ~recv =
    send "warm-ping";
    check_str "warmup round-trip" "warm-ping" (recv ());
    incr warmed
  in
  let p = cat_pool ~warmup 2 in
  check_int "every worker warmed" 2 !warmed;
  check_str "still serves" "after-warmup"
    (pool_ok (Spawnlib.Pool.submit p "after-warmup"));
  ignore (Spawnlib.Pool.shutdown p)

let test_pool_crash_respawn () =
  let p = cat_pool 2 in
  let victim = List.hd (Spawnlib.Pool.pids p) in
  Unix.kill victim Sys.sigkill;
  (* let the kernel tear the victim down so the write sees EPIPE *)
  Unix.sleepf 0.05;
  (* next submit hits slot 0 (round-robin from the start), detects the
     death, respawns and still answers *)
  check_str "served through respawn" "survive"
    (pool_ok (Spawnlib.Pool.submit p "survive"));
  let st = Spawnlib.Pool.stats p in
  check_int "one respawn" 1 st.Spawnlib.Pool.respawns;
  check_int "three spawns total" 3 st.Spawnlib.Pool.spawned;
  check_bool "victim replaced" false
    (List.mem victim (Spawnlib.Pool.pids p));
  (* replacement is a full citizen afterwards *)
  check_str "slot healthy" "again" (pool_ok (Spawnlib.Pool.submit p "again"));
  check_str "other slot fine" "peer" (pool_ok (Spawnlib.Pool.submit p "peer"));
  (* slot stats survive the respawn: the slot is the serving unit *)
  (match Spawnlib.Pool.worker_stats p with
  | [ s0; s1 ] ->
    check_int "slot 0 crash recorded" 1 s0.Spawnlib.Pool.slot_crashes;
    check_int "slot 0 kept serving" 2 s0.Spawnlib.Pool.slot_served;
    check_int "slot 1 untouched" 0 s1.Spawnlib.Pool.slot_crashes
  | ws -> Alcotest.failf "expected 2 slot stats, got %d" (List.length ws));
  List.iter
    (fun s -> Alcotest.check status "clean exit" (Spawnlib.Process.Exited 0) s)
    (Spawnlib.Pool.shutdown p)

let test_pool_worker_stats () =
  let p = cat_pool 2 in
  check_int "depth idle" 0 (Spawnlib.Pool.depth p);
  for i = 1 to 4 do
    ignore (pool_ok (Spawnlib.Pool.submit p (string_of_int i)))
  done;
  let now = Unix.gettimeofday () in
  (match Spawnlib.Pool.worker_stats p with
  | [ s0; s1 ] ->
    check_int "slot ids" 0 s0.Spawnlib.Pool.slot;
    check_int "slot ids" 1 s1.Spawnlib.Pool.slot;
    (* 4 submissions round-robin over 2 slots: 2 each *)
    List.iter
      (fun s ->
        check_int "served per slot" 2 s.Spawnlib.Pool.slot_served;
        check_int "no crashes" 0 s.Spawnlib.Pool.slot_crashes;
        check_int "latency samples" 2
          (Metrics.Window.observations s.Spawnlib.Pool.latency ~now);
        check_bool "latency p50 exists" true
          (Metrics.Window.quantile s.Spawnlib.Pool.latency ~now 0.5 <> None))
      [ s0; s1 ]
  | ws -> Alcotest.failf "expected 2 slot stats, got %d" (List.length ws));
  (* synchronous submits: exactly one request in flight at a time *)
  check_int "max depth" 1 (Spawnlib.Pool.max_depth p);
  check_int "depth idle again" 0 (Spawnlib.Pool.depth p);
  ignore (Spawnlib.Pool.shutdown p)

let test_pool_bad_size () =
  Alcotest.check_raises "size 0" (Invalid_argument "Pool.create: size < 1")
    (fun () ->
      ignore (Spawnlib.Pool.create ~size:0 ~prog:"/bin/cat" ~argv:[ "cat" ] ()))

let test_pool_spawn_failure_cleans_up () =
  (match Spawnlib.Pool.create ~size:2 ~prog:"/bin/missing" ~argv:[ "x" ] () with
  | Error (Spawnlib.Pool.Spawn_error (Spawnlib.Spawn.Exec_failed Unix.ENOENT))
    ->
    ()
  | Error e -> Alcotest.failf "wrong error: %s" (Spawnlib.Pool.error_message e)
  | Ok _ -> Alcotest.fail "expected ENOENT");
  (* no stray children survive a failed create *)
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.fail "unexpected live child"
  | _, _ -> Alcotest.fail "unexpected zombie"

let test_pool_warmup_crash_no_leak () =
  (* worker exits before answering the warmup ping: create must reap it
     and report Warmup_failed, not leak the child or let the warmup
     exception escape *)
  (match
     Spawnlib.Pool.create ~size:2 ~prog:"/bin/true" ~argv:[ "true" ]
       ~warmup:(fun ~send ~recv ->
         send "ping";
         ignore (recv ()))
       ()
   with
  | Error (Spawnlib.Pool.Warmup_failed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Spawnlib.Pool.error_message e)
  | Ok _ -> Alcotest.fail "expected Warmup_failed");
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.fail "unexpected live child"
  | _, _ -> Alcotest.fail "unexpected zombie"

let test_pool_shutdown_big_reply () =
  (* on stdin EOF the worker floods ~200 KiB into its reply pipe before
     exiting: shutdown must drain the pipe before waiting, or the worker
     blocks on the full pipe and the wait deadlocks *)
  let p =
    pool_ok
      (Spawnlib.Pool.create ~size:2 ~prog:"/bin/sh"
         ~argv:[ "sh"; "-c"; "cat; yes | head -n 100000" ]
         ())
  in
  check_str "echoes first" "hello" (pool_ok (Spawnlib.Pool.submit p "hello"));
  List.iter
    (fun s ->
      Alcotest.check status "drained exit" (Spawnlib.Process.Exited 0) s)
    (Spawnlib.Pool.shutdown p)

let test_pool_failed_latency () =
  (* workers exit immediately: the submit fails through the respawn
     retry, and both the failure count and its latency sample land in
     the slot stats (dropping them understated p99 exactly when workers
     were dying) *)
  let p =
    pool_ok
      (Spawnlib.Pool.create ~size:1 ~prog:"/bin/true" ~argv:[ "true" ] ())
  in
  (match Spawnlib.Pool.submit p "ping" with
  | Error Spawnlib.Pool.Worker_lost -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Spawnlib.Pool.error_message e)
  | Ok r -> Alcotest.failf "unexpected reply %S" r);
  let now = Unix.gettimeofday () in
  (match Spawnlib.Pool.worker_stats p with
  | [ s ] ->
    check_int "failure recorded" 1 s.Spawnlib.Pool.slot_failed;
    check_int "no serves" 0 s.Spawnlib.Pool.slot_served;
    check_bool "failure latency sampled" true
      (Metrics.Window.observations s.Spawnlib.Pool.latency ~now >= 1)
  | ws -> Alcotest.failf "expected 1 slot stats, got %d" (List.length ws));
  ignore (Spawnlib.Pool.shutdown p)

let test_pool_load_concurrent_kill () =
  (* the select-loop driver: hundreds of requests in flight at once,
     one worker SIGKILLed mid-run; every request still gets a reply *)
  let p = cat_pool 4 in
  let r =
    Spawnlib.Pool.Load.run ~concurrency:220 ~kill_after:50 ~requests:300
      ~request:(Printf.sprintf "req-%d")
      p
  in
  check_int "all requests answered" 300 r.Spawnlib.Pool.Load.completed;
  check_int "no abandoned requests" 0 r.Spawnlib.Pool.Load.errors;
  check_bool ">=200 in flight" true
    (r.Spawnlib.Pool.Load.max_outstanding >= 200);
  check_bool "killed worker replaced" true
    (r.Spawnlib.Pool.Load.respawns >= 1);
  check_bool "killed worker's requests re-sent" true
    (r.Spawnlib.Pool.Load.retried >= 1);
  check_int "one latency per reply" 300
    (Array.length r.Spawnlib.Pool.Load.latencies);
  (* the pool serves normally after the storm *)
  check_str "alive after load" "still-up"
    (pool_ok (Spawnlib.Pool.submit p "still-up"));
  ignore (Spawnlib.Pool.shutdown p)

let tc n f = Alcotest.test_case n `Quick f

let () =
  Alcotest.run "spawnlib"
    [
      ( "env",
        [
          tc "basic" test_env_basic;
          tc "merge" test_env_merge;
          tc "current" test_env_current;
        ] );
      ( "spawn",
        [
          tc "true/false" test_run_true_false;
          tc "enoent synchronous" test_spawn_enoent_is_synchronous;
          tc "eacces" test_spawn_eacces;
          tc "capture" test_capture_echo;
          tc "env via attr" test_shell_capture_env;
          tc "cwd via attr" test_attr_cwd;
          tc "redirect stdout" test_file_action_redirect;
          tc "redirect stdin" test_file_action_stdin;
          tc "shell" test_shell;
          tc "no zombies" test_no_zombie_on_exec_failure;
        ] );
      ( "process",
        [ tc "poll" test_process_poll; tc "kill" test_process_kill ] );
      ( "pipeline",
        [
          tc "capture" test_pipeline_capture;
          tc "single" test_pipeline_single;
          tc "empty rejected" test_pipeline_empty_rejected;
          tc "failing stage status" test_pipeline_failing_stage_status;
        ] );
      ("attrs", [ tc "new session" test_new_session_attr ]);
      ( "pool",
        [
          tc "echo round-robin" test_pool_echo;
          tc "warmup hook" test_pool_warmup;
          tc "crash respawn" test_pool_crash_respawn;
          tc "worker stats" test_pool_worker_stats;
          tc "bad size" test_pool_bad_size;
          tc "create failure cleanup" test_pool_spawn_failure_cleans_up;
          tc "warmup crash no leak" test_pool_warmup_crash_no_leak;
          tc "shutdown big reply" test_pool_shutdown_big_reply;
          tc "failed submit latency" test_pool_failed_latency;
          tc "concurrent load + kill" test_pool_load_concurrent_kill;
        ] );
      ( "native",
        [
          tc "posix_spawn" test_native_posix_spawn;
          tc "posix_spawn enoent" test_native_posix_spawn_enoent;
          tc "vfork" test_native_vfork_exec;
          tc "vfork degraded error" test_native_vfork_exec_failure_is_127;
          tc "fork_exec" test_native_fork_exec;
          tc "fork_exit" test_native_fork_exit;
          tc "env" test_native_env;
        ] );
    ]
