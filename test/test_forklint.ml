(* forklint tests: the static rule engine against the hazard-labelled
   corpus, JSON round-tripping, and the dynamic (ksim trace) checker —
   including cross-validation that both layers report the same rule ids
   on matching fixtures. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let finding_triple d =
  (d.Forklore.Diagnostic.rule, d.Forklore.Diagnostic.line, d.Forklore.Diagnostic.col)

let pp_triples ts =
  String.concat "; "
    (List.map (fun (r, l, c) -> Printf.sprintf "(%s,%d,%d)" r l c) ts)

let rule_ids ds =
  List.sort_uniq String.compare
    (List.map (fun d -> d.Forklore.Diagnostic.rule) ds)

(* ------------------------------------------------------------------ *)
(* Static checker vs. labelled hazard corpus *)

let test_hazard_corpus_ground_truth () =
  List.iter
    (fun h ->
      let got =
        List.map finding_triple
          (Forklore.Rules.check_string ~file:h.Forklore.Corpus.hz_name
             h.Forklore.Corpus.hz_source)
      in
      if got <> h.Forklore.Corpus.hz_expected then
        Alcotest.failf "%s: expected [%s] got [%s]" h.Forklore.Corpus.hz_name
          (pp_triples h.Forklore.Corpus.hz_expected)
          (pp_triples got))
    Forklore.Corpus.hazards

let test_threaded_fixture_detail () =
  (* the acceptance fixture: >= 3 distinct rules with exact spans *)
  let h = List.hd Forklore.Corpus.hazards in
  let ds =
    Forklore.Rules.check_string ~file:h.Forklore.Corpus.hz_name
      h.Forklore.Corpus.hz_source
  in
  check_bool "at least 3 distinct rules" true (List.length (rule_ids ds) >= 3);
  check_bool "has an Error finding" true
    (List.exists Forklore.Diagnostic.is_error ds);
  let threaded =
    List.find
      (fun d -> d.Forklore.Diagnostic.rule = "fork-in-threads")
      ds
  in
  check_bool "error severity" true
    (threaded.Forklore.Diagnostic.severity = Forklore.Diagnostic.Error);
  check_bool "cites the paper" true
    (threaded.Forklore.Diagnostic.citation <> "");
  check_bool "hints at spawn" true
    (let hint = threaded.Forklore.Diagnostic.hint in
     let needle = "spawn" in
     let n = String.length hint and m = String.length needle in
     let rec go i = i + m <= n && (String.sub hint i m = needle || go (i + 1)) in
     go 0)

let test_rule_registry () =
  check_int "eight rules" 8 (List.length Forklore.Rules.all);
  check_bool "find known" true (Forklore.Rules.find "vfork-misuse" <> None);
  check_bool "find new v2 rules" true
    (Forklore.Rules.find "lock-across-fork" <> None
    && Forklore.Rules.find "child-path-return" <> None);
  check_bool "find unknown" true (Forklore.Rules.find "no-such-rule" = None);
  (* ids are unique *)
  let ids = List.map (fun r -> r.Forklore.Rules.id) Forklore.Rules.all in
  check_int "unique ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  (* the frozen v1 baseline: six rules, every id also a v2 id, and
     identical metadata so precision comparisons are like-for-like *)
  check_int "six v1 rules" 6 (List.length Forklore.Rules.v1);
  List.iter
    (fun (r1 : Forklore.Rules.t) ->
      match Forklore.Rules.find r1.Forklore.Rules.id with
      | None -> Alcotest.failf "v1 rule %s missing from v2" r1.Forklore.Rules.id
      | Some r2 ->
        check_bool "same severity" true
          (r1.Forklore.Rules.severity = r2.Forklore.Rules.severity);
        check_bool "same citation" true
          (r1.Forklore.Rules.citation = r2.Forklore.Rules.citation))
    Forklore.Rules.v1

let test_v1_baseline () =
  (* hz_v1 records what the token rules report; the precision table in
     E7 is only meaningful if that baseline stays frozen *)
  List.iter
    (fun h ->
      let got =
        List.map finding_triple
          (Forklore.Rules.check_string ~rules:Forklore.Rules.v1
             ~file:h.Forklore.Corpus.hz_name h.Forklore.Corpus.hz_source)
      in
      if got <> h.Forklore.Corpus.hz_v1 then
        Alcotest.failf "%s: v1 expected [%s] got [%s]" h.Forklore.Corpus.hz_name
          (pp_triples h.Forklore.Corpus.hz_v1)
          (pp_triples got))
    Forklore.Corpus.hazards

let test_path_sensitivity_wins () =
  (* the acceptance fixtures: hazard-shaped code on non-child paths must
     lint clean under v2 while v1 false-positives on every one *)
  List.iter
    (fun name ->
      let h =
        List.find
          (fun h -> h.Forklore.Corpus.hz_name = name)
          Forklore.Corpus.hazards
      in
      let v2 =
        Forklore.Rules.check_string ~file:name h.Forklore.Corpus.hz_source
      in
      let v1 =
        Forklore.Rules.check_string ~rules:Forklore.Rules.v1 ~file:name
          h.Forklore.Corpus.hz_source
      in
      check_int (name ^ " clean under v2") 0 (List.length v2);
      check_bool (name ^ " flagged by v1") true (v1 <> []))
    [ "parent_path_work.c"; "helper_flush.c"; "cross_function.c" ]

let test_rule_subset () =
  let h = List.hd Forklore.Corpus.hazards in
  let only_threads =
    match Forklore.Rules.find "fork-in-threads" with
    | Some r -> [ r ]
    | None -> Alcotest.fail "missing rule"
  in
  let ds =
    Forklore.Rules.check_string ~rules:only_threads
      ~file:h.Forklore.Corpus.hz_name h.Forklore.Corpus.hz_source
  in
  Alcotest.(check (list string)) "only the requested rule"
    [ "fork-in-threads" ] (rule_ids ds)

(* ------------------------------------------------------------------ *)
(* JSON round-trip *)

let all_hazard_diags () =
  List.concat_map
    (fun h ->
      Forklore.Rules.check_string ~file:h.Forklore.Corpus.hz_name
        h.Forklore.Corpus.hz_source)
    Forklore.Corpus.hazards

let test_json_roundtrip () =
  let ds = List.sort Forklore.Diagnostic.compare (all_hazard_diags ()) in
  check_bool "have findings" true (ds <> []);
  let json = Forklore.Diagnostic.report_to_json ds in
  match Forklore.Diagnostic.report_of_json json with
  | Error msg -> Alcotest.failf "parse back failed: %s" msg
  | Ok parsed ->
    check_int "same count" (List.length ds) (List.length parsed);
    List.iter2
      (fun a b ->
        check_bool "finding round-trips" true (Forklore.Diagnostic.equal a b))
      ds parsed

let test_json_escaping () =
  let d =
    {
      Forklore.Diagnostic.rule = "r";
      severity = Forklore.Diagnostic.Info;
      file = "we\"ird\\path\n.c";
      line = 1;
      col = 2;
      message = "tab\there";
      citation = "\194\1672";
      hint = "h";
    }
  in
  match Forklore.Diagnostic.report_of_json (Forklore.Diagnostic.report_to_json [ d ]) with
  | Ok [ d' ] -> check_bool "escaped fields survive" true (Forklore.Diagnostic.equal d d')
  | Ok _ -> Alcotest.fail "wrong count"
  | Error msg -> Alcotest.failf "parse back failed: %s" msg

(* ------------------------------------------------------------------ *)
(* SARIF export *)

let jget path jv =
  let step acc key =
    match acc with
    | None -> None
    | Some v -> (
      match int_of_string_opt key with
      | Some i -> (
        match Metrics.Json.to_list v with
        | Some items when i < List.length items -> Some (List.nth items i)
        | _ -> None)
      | None -> Metrics.Json.member key v)
  in
  List.fold_left step (Some jv) (String.split_on_char '.' path)

let test_sarif_shape () =
  let ds = List.sort Forklore.Diagnostic.compare (all_hazard_diags ()) in
  check_bool "have findings" true (ds <> []);
  let sarif = Forklore.Sarif.report ds in
  match Metrics.Json.of_string sarif with
  | Error msg -> Alcotest.failf "SARIF is not valid JSON: %s" msg
  | Ok jv ->
    let str path =
      match Option.bind (jget path jv) Metrics.Json.to_str with
      | Some s -> s
      | None -> Alcotest.failf "missing string at %s" path
    in
    check_bool "2.1.0 schema uri" true
      (str "$schema" = Forklore.Sarif.schema_uri);
    Alcotest.(check string) "version" "2.1.0" (str "version");
    Alcotest.(check string) "driver name" "forklint"
      (str "runs.0.tool.driver.name");
    let rules =
      match Option.bind (jget "runs.0.tool.driver.rules" jv) Metrics.Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "missing rules array"
    in
    check_int "rule table is the registry" (List.length Forklore.Rules.all)
      (List.length rules);
    let results =
      match Option.bind (jget "runs.0.results" jv) Metrics.Json.to_list with
      | Some l -> l
      | None -> Alcotest.fail "missing results array"
    in
    check_int "one result per finding" (List.length ds) (List.length results);
    List.iter2
      (fun (d : Forklore.Diagnostic.t) r ->
        let rstr path =
          match Option.bind (jget path r) Metrics.Json.to_str with
          | Some s -> s
          | None -> Alcotest.failf "result missing %s" path
        in
        let rint path =
          match Option.bind (jget path r) Metrics.Json.to_int with
          | Some i -> i
          | None -> Alcotest.failf "result missing %s" path
        in
        Alcotest.(check string) "ruleId" d.rule (rstr "ruleId");
        Alcotest.(check string) "level"
          (Forklore.Sarif.level_of_severity d.severity)
          (rstr "level");
        Alcotest.(check string) "uri" d.file
          (rstr "locations.0.physicalLocation.artifactLocation.uri");
        check_int "startLine" d.line
          (rint "locations.0.physicalLocation.region.startLine");
        check_int "startColumn" d.col
          (rint "locations.0.physicalLocation.region.startColumn");
        (* ruleIndex points back at the right rule-table entry *)
        let idx = rint "ruleIndex" in
        (match Option.bind (jget (Printf.sprintf "runs.0.tool.driver.rules.%d.id" idx) jv) Metrics.Json.to_str with
        | Some id -> Alcotest.(check string) "ruleIndex resolves" d.rule id
        | None -> Alcotest.fail "ruleIndex out of range");
        (* the fix hint rides in the message and the properties bag *)
        check_bool "hint in properties" true
          (rstr "properties.hint" = d.hint))
      ds results

let test_sarif_level_mapping () =
  Alcotest.(check string) "error" "error"
    (Forklore.Sarif.level_of_severity Forklore.Diagnostic.Error);
  Alcotest.(check string) "warning" "warning"
    (Forklore.Sarif.level_of_severity Forklore.Diagnostic.Warn);
  Alcotest.(check string) "note" "note"
    (Forklore.Sarif.level_of_severity Forklore.Diagnostic.Info)

let test_sarif_empty_report () =
  match Metrics.Json.of_string (Forklore.Sarif.report []) with
  | Error msg -> Alcotest.failf "empty SARIF invalid: %s" msg
  | Ok jv ->
    (match Option.bind (jget "runs.0.results" jv) Metrics.Json.to_list with
    | Some [] -> ()
    | Some _ -> Alcotest.fail "expected empty results"
    | None -> Alcotest.fail "missing results array")

let test_json_rejects_garbage () =
  check_bool "not json" true
    (Result.is_error (Forklore.Diagnostic.report_of_json "nonsense"));
  check_bool "no findings field" true
    (Result.is_error (Forklore.Diagnostic.report_of_json "{\"a\": 1}"));
  check_bool "ill-typed finding" true
    (Result.is_error
       (Forklore.Diagnostic.report_of_json "{\"findings\": [{\"rule\": 3}]}"))

(* ------------------------------------------------------------------ *)
(* Dynamic checker: ksim trace replay *)

let prog name main = Ksim.Program.make ~name (fun ~argv:_ () -> main ())
let true_prog = prog "/bin/true" (fun () -> ())

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "expected Ok"

let run_traced ?(programs = []) main =
  let config =
    { Ksim.Kernel.default_config with Ksim.Kernel.trace_capacity = Some 1024 }
  in
  let t = Ksim.Kernel.create ~config () in
  Ksim.Kernel.register_all t (prog "/sbin/init" main :: programs);
  (match Ksim.Kernel.spawn_init t "/sbin/init" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "spawn_init failed");
  (match Ksim.Kernel.run t with
  | Ksim.Kernel.All_exited -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Ksim.Kernel.pp_outcome o);
  match Ksim.Kernel.trace t with
  | Some tr -> tr
  | None -> Alcotest.fail "trace missing"

let static_rules_of_fixture name =
  let h =
    List.find (fun h -> h.Forklore.Corpus.hz_name = name) Forklore.Corpus.hazards
  in
  rule_ids
    (Forklore.Rules.check_string ~file:h.Forklore.Corpus.hz_name
       h.Forklore.Corpus.hz_source)

let test_dynamic_threaded_fork () =
  let tr =
    run_traced (fun () ->
        (* the worker must still be live when the fork happens, so it
           spins until the process exits out from under it *)
        let rec spin () =
          Ksim.Api.yield ();
          spin ()
        in
        ignore (ok (Ksim.Api.thread_create spin));
        let pid = ok (Ksim.Api.fork ~child:(fun () -> ())) in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  let dynamic = rule_ids (Ksim.Lint.check tr) in
  Alcotest.(check (list string))
    "threaded fork without exec, observed at runtime"
    [ "fork-in-threads"; "fork-no-exec" ]
    dynamic;
  (* cross-validation: the static twin fixture reports the same rules *)
  let static = static_rules_of_fixture "threaded_noexec.c" in
  check_bool "static layer agrees on every dynamic rule" true
    (List.for_all (fun r -> List.mem r static) dynamic)

let test_dynamic_vfork_misuse () =
  let tr =
    run_traced ~programs:[ true_prog ] (fun () ->
        let pid =
          ok
            (Ksim.Api.vfork ~child:(fun () ->
                 ignore (Ksim.Api.write 1 "oops");
                 ignore (Ksim.Api.exec "/bin/true")))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  let dynamic = rule_ids (Ksim.Lint.check tr) in
  Alcotest.(check (list string)) "vfork child wrote before exec"
    [ "vfork-misuse" ] dynamic;
  Alcotest.(check (list string))
    "same rule as the static vfork fixture" dynamic
    (static_rules_of_fixture "vfork_bad.c")

let test_dynamic_fd_leak () =
  let tr =
    run_traced ~programs:[ true_prog ] (fun () ->
        ignore (ok (Ksim.Api.openf ~flags:Ksim.Types.o_wronly "/tmp/leak"));
        ignore (Ksim.Api.exec "/bin/true"))
  in
  let dynamic = rule_ids (Ksim.Lint.check tr) in
  Alcotest.(check (list string)) "exec with a non-cloexec fd"
    [ "fd-no-cloexec" ] dynamic;
  Alcotest.(check (list string))
    "same rule as the static cloexec fixture" dynamic
    (static_rules_of_fixture "cloexec_leak.c")

let test_dynamic_cloexec_is_clean () =
  let tr =
    run_traced ~programs:[ true_prog ] (fun () ->
        ignore
          (ok
             (Ksim.Api.openf
                ~flags:(Ksim.Types.with_cloexec Ksim.Types.o_wronly)
                "/tmp/notleaked"));
        ignore (Ksim.Api.exec "/bin/true"))
  in
  Alcotest.(check (list string)) "cloexec fd does not leak" []
    (rule_ids (Ksim.Lint.check tr))

let test_dynamic_unsafe_child_work () =
  let tr =
    run_traced ~programs:[ true_prog ] (fun () ->
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (Ksim.Api.sbrk 4096);
                 ignore (Ksim.Api.exec "/bin/true")))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  Alcotest.(check (list string)) "heap growth in the fork->exec window"
    [ "unsafe-child-work" ]
    (rule_ids (Ksim.Lint.check tr))

let test_dynamic_lock_across_fork () =
  let tr =
    run_traced ~programs:[ true_prog ] (fun () ->
        let mu = Ksim.Api.mutex_create () in
        ignore (ok (Ksim.Api.mutex_lock mu));
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (Ksim.Api.exec "/bin/true")))
        in
        ignore (ok (Ksim.Api.mutex_unlock mu));
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  let dynamic = rule_ids (Ksim.Lint.check tr) in
  check_bool "lock held at fork observed" true
    (List.mem "lock-across-fork" dynamic);
  (* cross-validation: the static twin fixture reports the same rule *)
  Alcotest.(check (list string))
    "same rule as the static lock fixture" [ "lock-across-fork" ]
    (static_rules_of_fixture "lock_across_fork.c")

let test_dynamic_unlocked_fork_is_clean () =
  let tr =
    run_traced ~programs:[ true_prog ] (fun () ->
        let mu = Ksim.Api.mutex_create () in
        ignore (ok (Ksim.Api.mutex_lock mu));
        ignore (ok (Ksim.Api.mutex_unlock mu));
        let pid =
          ok
            (Ksim.Api.fork ~child:(fun () ->
                 ignore (Ksim.Api.exec "/bin/true")))
        in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  check_bool "unlock before fork is clean" true
    (not (List.mem "lock-across-fork" (rule_ids (Ksim.Lint.check tr))))

let test_dynamic_spawn_is_clean () =
  let tr =
    run_traced ~programs:[ true_prog ] (fun () ->
        let pid = ok (Ksim.Api.spawn "/bin/true") in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  Alcotest.(check (list string)) "spawn triggers no fork hazards" []
    (rule_ids (Ksim.Lint.check tr))

let test_trace_args_present () =
  let tr =
    run_traced (fun () ->
        let pid = ok (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)) in
        ignore (ok (Ksim.Api.wait_for pid)))
  in
  let forks =
    List.filter (fun e -> e.Ksim.Trace.what = "fork") (Ksim.Trace.events tr)
  in
  check_bool "fork event present" true (forks <> []);
  List.iter
    (fun e ->
      match Ksim.Trace.int_arg e "threads" with
      | Some n -> check_int "single-threaded fork" 1 n
      | None -> Alcotest.fail "fork event lost its threads arg")
    forks;
  let children = Ksim.Trace.find tr ~pattern:"fork_child" in
  check_bool "fork_child recorded" true (children <> []);
  check_bool "child pid attached" true
    (List.for_all
       (fun e -> Ksim.Trace.int_arg e "child" <> None)
       children)

let tc n f = Alcotest.test_case n `Quick f

let () =
  Alcotest.run "forklint"
    [
      ( "static",
        [
          tc "hazard corpus ground truth" test_hazard_corpus_ground_truth;
          tc "threaded fixture detail" test_threaded_fixture_detail;
          tc "rule registry" test_rule_registry;
          tc "v1 baseline frozen" test_v1_baseline;
          tc "path sensitivity wins" test_path_sensitivity_wins;
          tc "rule subset" test_rule_subset;
        ] );
      ( "json",
        [
          tc "round-trip" test_json_roundtrip;
          tc "escaping" test_json_escaping;
          tc "rejects garbage" test_json_rejects_garbage;
        ] );
      ( "sarif",
        [
          tc "2.1.0 shape" test_sarif_shape;
          tc "level mapping" test_sarif_level_mapping;
          tc "empty report" test_sarif_empty_report;
        ] );
      ( "dynamic",
        [
          tc "threaded fork" test_dynamic_threaded_fork;
          tc "vfork misuse" test_dynamic_vfork_misuse;
          tc "fd leak at exec" test_dynamic_fd_leak;
          tc "cloexec clean" test_dynamic_cloexec_is_clean;
          tc "unsafe child work" test_dynamic_unsafe_child_work;
          tc "lock across fork" test_dynamic_lock_across_fork;
          tc "unlocked fork clean" test_dynamic_unlocked_fork_is_clean;
          tc "spawn clean" test_dynamic_spawn_is_clean;
          tc "trace args" test_trace_args_present;
        ] );
    ]
