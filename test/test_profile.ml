(* Tests for the profile library (span trees, folded flamegraphs,
   critical path, blame report) and the perf-regression gate. The
   folded/critical-path goldens pin exact output for a deterministic
   stat scenario: any drift in a simulated number or in export
   formatting shows up as a string diff. *)

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let stat key =
  match Forkroad.Stat_driver.run key with
  | Some r -> r
  | None -> Alcotest.failf "unknown stat scenario %s" key

(* ------------------------------------------------------------------ *)
(* Span tree *)

let test_span_tree_structure () =
  let { Forkroad.Stat_driver.machine; _ } = stat "cowtax" in
  let tree = Profile.Span_tree.build machine in
  check_int "one root" 1 (List.length tree.Profile.Span_tree.roots);
  let root = List.hd tree.Profile.Span_tree.roots in
  check_int "root is init" 1 root.Profile.Span_tree.pid;
  check_str "root style" "root" root.Profile.Span_tree.style;
  (match root.Profile.Span_tree.children with
  | [ child ] ->
    check_int "child pid" 2 child.Profile.Span_tree.pid;
    check_str "child style" "fork" child.Profile.Span_tree.style;
    check_bool "creation span measured" true
      (child.Profile.Span_tree.creation_span_ns > 0.0);
    check_bool "child cycles attributed" true
      (child.Profile.Span_tree.cycles > 0.0)
  | cs -> Alcotest.failf "expected 1 child, got %d" (List.length cs));
  (* per-pid attribution is bounded by the machine total; the gap is
     kernel-side work charged outside any process context (image
     prefaulting at boot, process teardown) *)
  let sum =
    List.fold_left
      (fun a n -> a +. n.Profile.Span_tree.cycles)
      0.0 tree.Profile.Span_tree.nodes
  in
  check_bool "per-pid sum bounded by machine total" true
    (sum > 0.0 && sum <= tree.Profile.Span_tree.total_cycles)

(* An orphaned grandchild outlives everyone: the critical path must
   descend through the intermediate fork even though that process is
   long gone by the end of the run. Nobody waits — a waiting ancestor's
   own last event would bound end-to-end time and the path would
   (correctly) stop at the root. *)
let test_critical_path_descends () =
  let config =
    {
      (Forkroad.Sim_driver.config_for ~heap_mib:1) with
      Ksim.Kernel.trace_capacity = Some 4096;
    }
  in
  let machine, _ =
    Forkroad.Sim_driver.boot_scenario ~config (fun () ->
        (match
           Ksim.Api.fork ~child:(fun () ->
               (match
                  Ksim.Api.fork ~child:(fun () ->
                      for _ = 1 to 8 do
                        Ksim.Api.yield ()
                      done;
                      Ksim.Api.exit 0)
                with
               | Ok _ | Error _ -> ());
               (* exit without waiting: the grandchild is orphaned *)
               Ksim.Api.exit 0)
         with
        | Ok _ | Error _ -> ());
        Ksim.Api.exit 0)
  in
  let tree = Profile.Span_tree.build machine in
  let hops = Profile.Critical_path.compute tree in
  check_int "three hops" 3 (List.length hops);
  check_str "hop styles" "root/fork/fork"
    (String.concat "/"
       (List.map (fun h -> h.Profile.Critical_path.style) hops));
  let last = List.nth hops 2 in
  check_int "ends at grandchild" 3 last.Profile.Critical_path.pid;
  check_bool "render mentions hops" true
    (contains (Profile.Critical_path.render tree) "critical path: 3 hop(s)")

(* ------------------------------------------------------------------ *)
(* Golden exports: fig1-sim (fork+exec) and cowtax (fork + child COW) *)

let fig1_folded_golden =
  "root:1;pt-copy 140280\n\
   root:1;fault 14336000\n\
   root:1;tlb 12800\n\
   root:1;other 50160\n\
   root:1;fork:2;exec 909000\n\
   root:1;fork:2;other 63000\n"

let cowtax_folded_golden =
  "root:1;pt-copy 140280\n\
   root:1;fault 14336000\n\
   root:1;tlb 12800\n\
   root:1;other 50160\n\
   root:1;fork:2;fault 5120000\n\
   root:1;fork:2;frame-copy 3276800\n\
   root:1;fork:2;tlb 409600\n\
   root:1;fork:2;other 41500\n"

(* The demand scenario's lazy spawns: almost no exec-side cost in the
   children; each child's column is dominated by the pager group, and
   grows with the share of the image it touches. *)
let demand_folded_golden =
  "root:1;exec 3600000\n\
   root:1;other 133440\n\
   root:1;spawn:2;fault 20000\n\
   root:1;spawn:2;pager 196800\n\
   root:1;spawn:2;other 21500\n\
   root:1;spawn:3;fault 37500\n\
   root:1;spawn:3;pager 369000\n\
   root:1;spawn:3;other 21500\n\
   root:1;spawn:4;fault 55000\n\
   root:1;spawn:4;pager 541200\n\
   root:1;spawn:4;other 21500\n\
   root:1;spawn:5;fault 72500\n\
   root:1;spawn:5;pager 701400\n\
   root:1;spawn:5;other 41500\n"

let test_folded_golden () =
  let folded key =
    let { Forkroad.Stat_driver.machine; _ } = stat key in
    Profile.Folded.render (Profile.Span_tree.build machine)
  in
  check_str "fig1-sim folded" fig1_folded_golden (folded "fig1-sim");
  check_str "cowtax folded" cowtax_folded_golden (folded "cowtax");
  check_str "demand folded" demand_folded_golden (folded "demand")

let test_critical_path_golden () =
  let { Forkroad.Stat_driver.machine; _ } = stat "fig1-sim" in
  let tree = Profile.Span_tree.build machine in
  check_str "fig1-sim critical path"
    "critical path: 1 hop(s), ends at 5.48ms\n\
     pid  style  created  creation span  last event    cycles\n\
     --------------------------------------------------------\n\
     1    root    0.00ns         0.00ns      5.48ms  14.5Mcyc\n"
    (Profile.Critical_path.render tree)

let test_demand_critical_path_golden () =
  let { Forkroad.Stat_driver.machine; _ } = stat "demand" in
  let tree = Profile.Span_tree.build machine in
  check_str "demand critical path"
    "critical path: 1 hop(s), ends at 2.25ms\n\
     pid  style  created  creation span  last event    cycles\n\
     --------------------------------------------------------\n\
     1    root    0.00ns         0.00ns      2.25ms  3.73Mcyc\n"
    (Profile.Critical_path.render tree)

(* ------------------------------------------------------------------ *)
(* Blame report *)

let test_blame_report_table () =
  let { Forkroad.Stat_driver.machine; _ } = stat "cowtax" in
  let blame = Ksim.Kernel.blame machine in
  let rendered = Metrics.Table.render (Profile.Blame_report.table blame) in
  check_bool "has fork row" true (contains rendered "fork");
  (* json shape: events array + unattributed bucket *)
  let j = Profile.Blame_report.to_json blame in
  check_bool "events non-empty" true
    (match
       Option.bind (Metrics.Json.member "events" j) Metrics.Json.to_list
     with
    | Some (_ :: _) -> true
    | _ -> false);
  check_bool "unattributed present" true
    (Metrics.Json.member "unattributed" j <> None)

(* ------------------------------------------------------------------ *)
(* Chrome trace export: real pid/tid lanes need metadata events *)

let test_chrome_metadata () =
  let { Forkroad.Stat_driver.trace; _ } = stat "fig1-sim" in
  let j = Ksim.Trace.to_chrome trace in
  let events =
    match
      Option.bind (Metrics.Json.member "traceEvents" j) Metrics.Json.to_list
    with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents"
  in
  let meta name =
    List.filter_map
      (fun e ->
        if
          Option.bind (Metrics.Json.member "ph" e) Metrics.Json.to_str
            = Some "M"
          && Option.bind (Metrics.Json.member "name" e) Metrics.Json.to_str
             = Some name
        then
          Option.bind (Metrics.Json.member "args" e) (Metrics.Json.member "name")
          |> Fun.flip Option.bind Metrics.Json.to_str
        else None)
      events
  in
  let process_names = meta "process_name" in
  check_int "one lane per pid" 2 (List.length process_names);
  check_bool "init lane labelled" true (List.mem "pid 1" process_names);
  check_bool "child lane carries style" true
    (List.mem "pid 2 (fork)" process_names);
  check_bool "thread lanes labelled" true (meta "thread_name" <> [])

(* ------------------------------------------------------------------ *)
(* Regression gate *)

module J = Metrics.Json

let bench ?(wall = 10.0) ?(blocks = []) () =
  J.obj
    [
      ("exp", J.str "E2");
      ("slug", J.str "cowtax");
      ("title", J.str "t");
      ("kind", J.str "sim");
      ("claim", J.str "c");
      ( "params",
        J.obj
          [
            ("quick", J.bool true);
            ("jobs", J.int 1);
            ("harness_wall_ms", J.num wall);
          ] );
      ("report", J.obj [ ("id", J.str "E2"); ("blocks", J.arr blocks) ]);
    ]

let figure_block y =
  J.obj
    [
      ("kind", J.str "figure");
      ( "figure",
        J.obj
          [
            ("title", J.str "f");
            ( "series",
              J.arr
                [
                  J.obj
                    [
                      ("label", J.str "s");
                      ("points", J.arr [ J.arr [ J.num 1.0; J.num y ] ]);
                    ];
                ] );
          ] );
    ]

let table_block rows =
  J.obj
    [
      ("kind", J.str "table");
      ("caption", J.str "t");
      ( "table",
        J.obj
          [
            ("headers", J.arr [ J.str "a"; J.str "b" ]);
            ( "rows",
              J.arr (List.map (fun (a, b) -> J.arr [ J.str a; J.str b ]) rows)
            );
          ] );
    ]

let data_block fields = J.obj [ ("kind", J.str "data"); ("name", J.str "d"); ("data", J.obj fields) ]

let compare b c =
  Forkroad.Regress.compare_reports ~file:"BENCH_test.json" ~baseline:b
    ~current:c ()

let test_regress_identical () =
  let doc =
    bench ~blocks:[ figure_block 5.0; table_block [ ("1", "2") ] ] ()
  in
  check_int "no findings" 0 (List.length (compare doc doc))

let test_regress_sim_number () =
  let b = bench ~blocks:[ figure_block 5.0 ] () in
  let c = bench ~blocks:[ figure_block 5.0000001 ] () in
  match compare b c with
  | [ f ] ->
    check_str "path"
      "report.blocks[0].figure.series[0].points[0][1]"
      f.Forkroad.Regress.path
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

let test_regress_wall_tolerance () =
  let b = bench ~wall:100.0 () in
  (* +400ms: inside the 500ms slack *)
  check_int "slack absorbs noise" 0
    (List.length (compare b (bench ~wall:480.0 ())));
  (* massive slowdown: beyond both factor and slack *)
  check_int "slowdown flagged" 1
    (List.length (compare b (bench ~wall:5000.0 ())));
  (* speedups never fail the gate *)
  check_int "speedup fine" 0 (List.length (compare b (bench ~wall:1.0 ())))

let test_regress_table_cells_free () =
  let b = bench ~blocks:[ table_block [ ("10", "20") ] ] () in
  let c = bench ~blocks:[ table_block [ ("11", "99") ] ] () in
  check_int "cells may drift (real-OS numbers)" 0 (List.length (compare b c));
  let c2 = bench ~blocks:[ table_block [ ("10", "20"); ("x", "y") ] ] () in
  check_int "row count is structure" 1 (List.length (compare b c2))

let test_regress_data_block () =
  let b = bench ~blocks:[ data_block [ ("count", J.int 4) ] ] () in
  let c = bench ~blocks:[ data_block [ ("count", J.int 5) ] ] () in
  check_int "data numbers exact" 1 (List.length (compare b c));
  (* wall-like keys inside data blocks are tolerant *)
  let bw = bench ~blocks:[ data_block [ ("setup_wall_ms", J.num 10.0) ] ] () in
  let cw = bench ~blocks:[ data_block [ ("setup_wall_ms", J.num 200.0) ] ] () in
  check_int "wall-like keys tolerant" 0 (List.length (compare bw cw));
  (* NaN serialises to null: flagged, never silently equal *)
  let cn = bench ~blocks:[ data_block [ ("count", J.Null) ] ] () in
  check_int "null-for-number flagged" 1 (List.length (compare b cn))

let test_regress_quick_mismatch () =
  let b = bench () in
  let c =
    match bench () with
    | J.Obj fields ->
      J.Obj
        (List.map
           (function
             | "params", J.Obj ps ->
               ( "params",
                 J.Obj
                   (List.map
                      (function
                        | "quick", _ -> ("quick", J.bool false)
                        | kv -> kv)
                      ps) )
             | kv -> kv)
           fields)
    | _ -> assert false
  in
  check_int "quick mode must match" 1 (List.length (compare b c))

let test_regress_dirs () =
  let tmp =
    Filename.temp_file "regress" "" |> fun f ->
    Sys.remove f;
    f
  in
  let base = tmp ^ ".base" and cur = tmp ^ ".cur" in
  Sys.mkdir base 0o755;
  Sys.mkdir cur 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rm d =
        Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
        Sys.rmdir d
      in
      rm base;
      rm cur)
    (fun () ->
      let write dir name j =
        let oc = open_out (Filename.concat dir name) in
        output_string oc (J.to_string j);
        close_out oc
      in
      let doc = bench ~blocks:[ figure_block 5.0 ] () in
      write base "BENCH_cowtax.json" doc;
      write cur "BENCH_cowtax.json" doc;
      check_int "clean dirs" 0
        (List.length
           (Forkroad.Regress.compare_dirs ~baseline:base ~current:cur ()));
      (* a baseline report with no current counterpart is a regression *)
      write base "BENCH_gone.json" doc;
      match Forkroad.Regress.compare_dirs ~baseline:base ~current:cur () with
      | [ f ] ->
        check_str "missing file" "BENCH_gone.json" f.Forkroad.Regress.file
      | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs))

let () =
  Alcotest.run "profile"
    [
      ( "span-tree",
        [
          Alcotest.test_case "structure" `Quick test_span_tree_structure;
          Alcotest.test_case "critical path descends" `Quick
            test_critical_path_descends;
        ] );
      ( "exports",
        [
          Alcotest.test_case "folded golden" `Quick test_folded_golden;
          Alcotest.test_case "critical-path golden" `Quick
            test_critical_path_golden;
          Alcotest.test_case "demand critical-path golden" `Quick
            test_demand_critical_path_golden;
          Alcotest.test_case "blame report" `Quick test_blame_report_table;
          Alcotest.test_case "chrome metadata" `Quick test_chrome_metadata;
        ] );
      ( "regress",
        [
          Alcotest.test_case "identical" `Quick test_regress_identical;
          Alcotest.test_case "sim number" `Quick test_regress_sim_number;
          Alcotest.test_case "wall tolerance" `Quick test_regress_wall_tolerance;
          Alcotest.test_case "table cells free" `Quick
            test_regress_table_cells_free;
          Alcotest.test_case "data block" `Quick test_regress_data_block;
          Alcotest.test_case "quick mismatch" `Quick test_regress_quick_mismatch;
          Alcotest.test_case "dirs" `Quick test_regress_dirs;
        ] );
    ]
