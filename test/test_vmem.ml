(* Unit, integration and property tests for the vmem substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "expected Ok"

(* ------------------------------------------------------------------ *)
(* Addr *)

let test_addr_alignment () =
  check_bool "aligned 0" true (Vmem.Addr.is_page_aligned 0);
  check_bool "aligned 4096" true (Vmem.Addr.is_page_aligned 4096);
  check_bool "unaligned" false (Vmem.Addr.is_page_aligned 4097);
  check_int "down" 4096 (Vmem.Addr.align_down 8191);
  check_int "up" 8192 (Vmem.Addr.align_up 4097);
  check_int "up exact" 4096 (Vmem.Addr.align_up 4096)

let test_addr_pages () =
  check_int "page number" 2 (Vmem.Addr.page_number 8192);
  check_int "offset" 123 (Vmem.Addr.page_offset (8192 + 123));
  check_int "addr of page" 8192 (Vmem.Addr.addr_of_page 2);
  check_int "spanning 0" 0 (Vmem.Addr.pages_spanning 0 0);
  check_int "spanning 1" 1 (Vmem.Addr.pages_spanning 0 1);
  check_int "spanning exact" 1 (Vmem.Addr.pages_spanning 0 4096);
  check_int "spanning straddle" 2 (Vmem.Addr.pages_spanning 4095 2)

let test_addr_table_index () =
  let vpn = (3 lsl 27) lor (5 lsl 18) lor (7 lsl 9) lor 11 in
  check_int "l3" 3 (Vmem.Addr.table_index ~level:3 vpn);
  check_int "l2" 5 (Vmem.Addr.table_index ~level:2 vpn);
  check_int "l1" 7 (Vmem.Addr.table_index ~level:1 vpn);
  check_int "l0" 11 (Vmem.Addr.table_index ~level:0 vpn)

let prop_addr_align =
  QCheck.Test.make ~count:500 ~name:"addr: align_down/up bracket the address"
    QCheck.(int_bound (Vmem.Addr.max_va - Vmem.Addr.page_size))
    (fun a ->
      let d = Vmem.Addr.align_down a and u = Vmem.Addr.align_up a in
      d <= a && a <= u && u - d <= Vmem.Addr.page_size
      && Vmem.Addr.is_page_aligned d && Vmem.Addr.is_page_aligned u)

let prop_addr_index_recompose =
  QCheck.Test.make ~count:500 ~name:"addr: table indices recompose the vpn"
    QCheck.(int_bound ((Vmem.Addr.max_va lsr 12) - 1))
    (fun vpn ->
      let i l = Vmem.Addr.table_index ~level:l vpn in
      (i 3 lsl 27) lor (i 2 lsl 18) lor (i 1 lsl 9) lor i 0 = vpn)

(* ------------------------------------------------------------------ *)
(* Perm *)

let test_perm_allows () =
  check_bool "rw allows r" true (Vmem.Perm.allows Vmem.Perm.rw Vmem.Perm.r);
  check_bool "r allows rw" false (Vmem.Perm.allows Vmem.Perm.r Vmem.Perm.rw);
  check_bool "anything allows none" true
    (Vmem.Perm.allows Vmem.Perm.none Vmem.Perm.none);
  check_bool "rwx allows rx" true (Vmem.Perm.allows Vmem.Perm.rwx Vmem.Perm.rx)

let test_perm_ops () =
  check_bool "union" true
    (Vmem.Perm.equal Vmem.Perm.rwx
       (Vmem.Perm.union Vmem.Perm.rw Vmem.Perm.rx));
  check_bool "inter" true
    (Vmem.Perm.equal Vmem.Perm.r (Vmem.Perm.inter Vmem.Perm.rw Vmem.Perm.rx));
  check_str "to_string" "rw-" (Vmem.Perm.to_string Vmem.Perm.rw);
  check_str "none" "---" (Vmem.Perm.to_string Vmem.Perm.none)

(* ------------------------------------------------------------------ *)
(* Frame *)

let test_frame_alloc_free () =
  let fr = Vmem.Frame.create ~frames:4 () in
  let a = ok (Vmem.Frame.alloc fr) in
  let b = ok (Vmem.Frame.alloc fr) in
  check_bool "distinct" true (a <> b);
  check_int "used" 2 (Vmem.Frame.used fr);
  check_int "free" 2 (Vmem.Frame.free fr);
  check_bool "freed" true (Vmem.Frame.decref fr a);
  check_int "used after" 1 (Vmem.Frame.used fr);
  (* freed frame is reused *)
  let c = ok (Vmem.Frame.alloc fr) in
  check_int "reuse" a c

let test_frame_refcount () =
  let fr = Vmem.Frame.create ~frames:4 () in
  let f = ok (Vmem.Frame.alloc fr) in
  check_int "rc1" 1 (Vmem.Frame.refcount fr f);
  Vmem.Frame.incref fr f;
  check_int "rc2" 2 (Vmem.Frame.refcount fr f);
  check_bool "not freed" false (Vmem.Frame.decref fr f);
  check_bool "freed" true (Vmem.Frame.decref fr f);
  check_int "rc0" 0 (Vmem.Frame.refcount fr f)

let test_frame_oom () =
  let fr = Vmem.Frame.create ~frames:2 () in
  ignore (ok (Vmem.Frame.alloc fr));
  ignore (ok (Vmem.Frame.alloc fr));
  (match Vmem.Frame.alloc fr with
  | Error `Out_of_memory -> ()
  | Ok _ -> Alcotest.fail "expected OOM")

let test_frame_unallocated_ops () =
  let fr = Vmem.Frame.create ~frames:2 () in
  Alcotest.check_raises "incref" (Invalid_argument "Frame.incref: unallocated frame")
    (fun () -> Vmem.Frame.incref fr 0)

let test_frame_commit () =
  let fr = Vmem.Frame.create ~frames:10 () in
  ok (Vmem.Frame.commit fr 8);
  check_int "committed" 8 (Vmem.Frame.committed fr);
  (match Vmem.Frame.commit fr 3 with
  | Error `Commit_limit -> ()
  | Ok () -> Alcotest.fail "expected commit failure");
  Vmem.Frame.uncommit fr 4;
  ok (Vmem.Frame.commit fr 3);
  check_int "committed after" 7 (Vmem.Frame.committed fr)

let test_frame_overcommit () =
  let fr = Vmem.Frame.create ~policy:Vmem.Frame.Overcommit ~frames:10 () in
  ok (Vmem.Frame.commit fr 1000);
  check_int "committed" 1000 (Vmem.Frame.committed fr)

let test_frame_data () =
  let fr = Vmem.Frame.create ~frames:4 () in
  let f = ok (Vmem.Frame.alloc fr) in
  check_int "zero before write" 0 (Vmem.Frame.read_byte fr f ~off:100);
  Vmem.Frame.write_byte fr f ~off:100 42;
  check_int "read back" 42 (Vmem.Frame.read_byte fr f ~off:100);
  Vmem.Frame.blit_string fr f ~off:0 "hi";
  check_str "string" "hi" (Vmem.Frame.read_string fr f ~off:0 ~len:2);
  let g = ok (Vmem.Frame.alloc fr) in
  Vmem.Frame.copy_contents fr ~src:f ~dst:g;
  check_int "copied" 42 (Vmem.Frame.read_byte fr g ~off:100)

let test_frame_free_discards_data () =
  let fr = Vmem.Frame.create ~frames:1 () in
  let f = ok (Vmem.Frame.alloc fr) in
  Vmem.Frame.write_byte fr f ~off:0 7;
  ignore (Vmem.Frame.decref fr f);
  let f' = ok (Vmem.Frame.alloc fr) in
  check_int "same slot" f f';
  check_int "zeroed" 0 (Vmem.Frame.read_byte fr f' ~off:0)

let test_frame_pin () =
  let fr = Vmem.Frame.create ~frames:8 () in
  let f = ok (Vmem.Frame.alloc fr) in
  check_bool "not pinned" false (Vmem.Frame.is_pinned fr f);
  Vmem.Frame.pin fr f;
  check_bool "pinned" true (Vmem.Frame.is_pinned fr f);
  check_int "pinned count" 1 (Vmem.Frame.pinned fr);
  check_int "refcount saturates" max_int (Vmem.Frame.refcount fr f);
  (* refcounting is a no-op on a pinned frame: it can never be freed *)
  Vmem.Frame.incref fr f;
  check_bool "decref no-op" false (Vmem.Frame.decref fr f);
  check_bool "still pinned" true (Vmem.Frame.is_pinned fr f);
  check_int "still used" 1 (Vmem.Frame.used fr);
  (* pin is idempotent *)
  Vmem.Frame.pin fr f;
  check_int "still one pinned" 1 (Vmem.Frame.pinned fr);
  (* unpin restores a plain sole-owner reference *)
  Vmem.Frame.unpin fr f;
  check_int "rc back to 1" 1 (Vmem.Frame.refcount fr f);
  check_int "none pinned" 0 (Vmem.Frame.pinned fr);
  check_bool "freed" true (Vmem.Frame.decref fr f);
  check_int "all returned" 0 (Vmem.Frame.used fr)

let test_frame_pin_spilled () =
  (* pinning a frame whose count lives in the spill table drops the
     spill entry; unpin yields rc 1, not the old spilled count *)
  let fr = Vmem.Frame.create ~frames:4 () in
  let f = ok (Vmem.Frame.alloc fr) in
  for _ = 1 to 300 do
    Vmem.Frame.incref fr f
  done;
  check_int "spilled rc" 301 (Vmem.Frame.refcount fr f);
  Vmem.Frame.pin fr f;
  check_int "saturated" max_int (Vmem.Frame.refcount fr f);
  Vmem.Frame.unpin fr f;
  check_int "unpin forgets spilled count" 1 (Vmem.Frame.refcount fr f);
  check_bool "freed" true (Vmem.Frame.decref fr f)

let test_frame_pin_many () =
  let fr = Vmem.Frame.create ~frames:8 () in
  let fs = Array.init 4 (fun _ -> ok (Vmem.Frame.alloc fr)) in
  Vmem.Frame.pin_many fr fs 3;
  check_int "three pinned" 3 (Vmem.Frame.pinned fr);
  check_bool "fourth untouched" false (Vmem.Frame.is_pinned fr fs.(3));
  Alcotest.check_raises "unpin unpinned"
    (Invalid_argument "Frame.unpin: frame not pinned") (fun () ->
      Vmem.Frame.unpin fr fs.(3))

(* ------------------------------------------------------------------ *)
(* Pte *)

let test_pte_roundtrip () =
  let pte = Vmem.Pte.make ~frame:1234 ~perm:Vmem.Perm.rw ~cow:true () in
  check_bool "present" true (Vmem.Pte.present pte);
  check_int "frame" 1234 (Vmem.Pte.frame pte);
  check_bool "perm" true (Vmem.Perm.equal Vmem.Perm.rw (Vmem.Pte.perm pte));
  check_bool "cow" true (Vmem.Pte.cow pte);
  check_bool "not dirty" false (Vmem.Pte.dirty pte);
  let pte = Vmem.Pte.mark_dirty (Vmem.Pte.mark_accessed pte) in
  check_bool "dirty" true (Vmem.Pte.dirty pte);
  check_bool "accessed" true (Vmem.Pte.accessed pte)

let test_pte_updates () =
  let pte = Vmem.Pte.make ~frame:5 ~perm:Vmem.Perm.rw () in
  let pte' = Vmem.Pte.with_perm pte Vmem.Perm.r in
  check_bool "downgraded" true
    (Vmem.Perm.equal Vmem.Perm.r (Vmem.Pte.perm pte'));
  check_int "frame preserved" 5 (Vmem.Pte.frame pte');
  let pte'' = Vmem.Pte.with_frame pte' 9 in
  check_int "frame swapped" 9 (Vmem.Pte.frame pte'');
  check_bool "perm preserved" true
    (Vmem.Perm.equal Vmem.Perm.r (Vmem.Pte.perm pte''))

let prop_pte_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pte: make/accessors roundtrip"
    QCheck.(triple (int_bound 1_000_000) bool (pair bool bool))
    (fun (frame, cow, (w, x)) ->
      let perm = { Vmem.Perm.read = true; write = w; exec = x } in
      let pte = Vmem.Pte.make ~frame ~perm ~cow () in
      Vmem.Pte.frame pte = frame
      && Vmem.Perm.equal (Vmem.Pte.perm pte) perm
      && Vmem.Pte.cow pte = cow)

(* ------------------------------------------------------------------ *)
(* Page_table *)

let test_pt_map_lookup () =
  let pt = Vmem.Page_table.create () in
  let pte = Vmem.Pte.make ~frame:7 ~perm:Vmem.Perm.rw () in
  Vmem.Page_table.map pt ~vpn:42 pte;
  check_bool "found" true (Vmem.Page_table.lookup pt ~vpn:42 = pte);
  check_bool "absent" false
    (Vmem.Pte.present (Vmem.Page_table.lookup pt ~vpn:43));
  check_int "present" 1 (Vmem.Page_table.present_count pt)

let test_pt_unmap () =
  let pt = Vmem.Page_table.create () in
  Vmem.Page_table.map pt ~vpn:1 (Vmem.Pte.make ~frame:1 ~perm:Vmem.Perm.r ());
  let old = Vmem.Page_table.unmap pt ~vpn:1 in
  check_bool "returned" true (Vmem.Pte.present old);
  check_int "empty" 0 (Vmem.Page_table.present_count pt);
  check_bool "double unmap absent" false
    (Vmem.Pte.present (Vmem.Page_table.unmap pt ~vpn:1))

let test_pt_node_growth () =
  let pt = Vmem.Page_table.create () in
  check_int "root only" 1 (Vmem.Page_table.node_count pt);
  Vmem.Page_table.map pt ~vpn:0 (Vmem.Pte.make ~frame:0 ~perm:Vmem.Perm.r ());
  (* root + 2 inner + 1 leaf *)
  check_int "one path" 4 (Vmem.Page_table.node_count pt);
  (* same leaf: no growth *)
  Vmem.Page_table.map pt ~vpn:1 (Vmem.Pte.make ~frame:1 ~perm:Vmem.Perm.r ());
  check_int "same leaf" 4 (Vmem.Page_table.node_count pt);
  (* far page: fresh path below root *)
  Vmem.Page_table.map pt ~vpn:(1 lsl 27)
    (Vmem.Pte.make ~frame:2 ~perm:Vmem.Perm.r ());
  check_int "new subtree" 7 (Vmem.Page_table.node_count pt)

let test_pt_fold_order () =
  let pt = Vmem.Page_table.create () in
  let vpns = [ 999; 3; 512; 100_000 ] in
  List.iter
    (fun v ->
      Vmem.Page_table.map pt ~vpn:v (Vmem.Pte.make ~frame:v ~perm:Vmem.Perm.r ()))
    vpns;
  let seen =
    Vmem.Page_table.fold_present pt ~init:[] ~f:(fun acc ~vpn pte ->
        check_int "frame matches vpn" vpn (Vmem.Pte.frame pte);
        vpn :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 3; 512; 999; 100_000 ] (List.rev seen)

let test_pt_update () =
  let pt = Vmem.Page_table.create () in
  check_bool "absent" false (Vmem.Page_table.update pt ~vpn:5 Vmem.Pte.mark_dirty);
  Vmem.Page_table.map pt ~vpn:5 (Vmem.Pte.make ~frame:5 ~perm:Vmem.Perm.rw ());
  check_bool "updated" true (Vmem.Page_table.update pt ~vpn:5 Vmem.Pte.mark_dirty);
  check_bool "dirty" true (Vmem.Pte.dirty (Vmem.Page_table.lookup pt ~vpn:5))

let test_pt_clone_cow () =
  let fr = Vmem.Frame.create ~frames:16 () in
  let cost = Vmem.Cost.create () in
  let pt = Vmem.Page_table.create () in
  let fa = ok (Vmem.Frame.alloc fr) in
  let fb = ok (Vmem.Frame.alloc fr) in
  Vmem.Page_table.map pt ~vpn:1 (Vmem.Pte.make ~frame:fa ~perm:Vmem.Perm.rw ());
  Vmem.Page_table.map pt ~vpn:2 (Vmem.Pte.make ~frame:fb ~perm:Vmem.Perm.r ());
  let child = Vmem.Page_table.clone_cow pt ~frames:fr ~cost in
  check_int "present copied" 2 (Vmem.Page_table.present_count child);
  check_int "refcount a" 2 (Vmem.Frame.refcount fr fa);
  check_int "refcount b" 2 (Vmem.Frame.refcount fr fb);
  (* writable page downgraded in both *)
  let p1 = Vmem.Page_table.lookup pt ~vpn:1 in
  let c1 = Vmem.Page_table.lookup child ~vpn:1 in
  check_bool "parent cow" true (Vmem.Pte.cow p1);
  check_bool "child cow" true (Vmem.Pte.cow c1);
  check_bool "parent read-only" false (Vmem.Pte.perm p1).Vmem.Perm.write;
  (* read-only page untouched *)
  check_bool "ro not cow" false (Vmem.Pte.cow (Vmem.Page_table.lookup pt ~vpn:2));
  check_bool "charged" true (Vmem.Cost.total cost > 0.0)

let test_pt_clear () =
  let fr = Vmem.Frame.create ~frames:16 () in
  let pt = Vmem.Page_table.create () in
  for i = 0 to 4 do
    let f = ok (Vmem.Frame.alloc fr) in
    Vmem.Page_table.map pt ~vpn:i (Vmem.Pte.make ~frame:f ~perm:Vmem.Perm.rw ())
  done;
  check_int "dropped" 5 (Vmem.Page_table.clear pt ~frames:fr);
  check_int "all freed" 0 (Vmem.Frame.used fr);
  check_int "empty" 0 (Vmem.Page_table.present_count pt)

let prop_pt_map_unmap =
  QCheck.Test.make ~count:100 ~name:"page table: present_count tracks ops"
    QCheck.(list (int_bound 100_000))
    (fun vpns ->
      let pt = Vmem.Page_table.create () in
      let module IS = Set.Make (Int) in
      let live =
        List.fold_left
          (fun live vpn ->
            Vmem.Page_table.map pt ~vpn
              (Vmem.Pte.make ~frame:vpn ~perm:Vmem.Perm.r ());
            IS.add vpn live)
          IS.empty vpns
      in
      Vmem.Page_table.present_count pt = IS.cardinal live
      && IS.for_all
           (fun vpn -> Vmem.Pte.frame (Vmem.Page_table.lookup pt ~vpn) = vpn)
           live)

(* ------------------------------------------------------------------ *)
(* Region_map *)

let test_rm_add_overlap () =
  let m = ok (Vmem.Region_map.add ~start:100 ~stop:200 "a" Vmem.Region_map.empty) in
  (match Vmem.Region_map.add ~start:150 ~stop:160 "b" m with
  | Error `Overlap -> ()
  | Ok _ -> Alcotest.fail "expected overlap");
  (match Vmem.Region_map.add ~start:50 ~stop:101 "b" m with
  | Error `Overlap -> ()
  | Ok _ -> Alcotest.fail "expected overlap (left straddle)");
  let m = ok (Vmem.Region_map.add ~start:200 ~stop:300 "b" m) in
  check_int "two regions" 2 (Vmem.Region_map.cardinal m)

let test_rm_find () =
  let m = ok (Vmem.Region_map.add ~start:100 ~stop:200 "a" Vmem.Region_map.empty) in
  (match Vmem.Region_map.find_containing 150 m with
  | Some (100, 200, "a") -> ()
  | _ -> Alcotest.fail "find 150");
  check_bool "199 in" true (Vmem.Region_map.mem 199 m);
  check_bool "200 out (exclusive)" false (Vmem.Region_map.mem 200 m);
  check_bool "99 out" false (Vmem.Region_map.mem 99 m)

let no_crop ~old_start:_ ~start:_ ~stop:_ v = v

let test_rm_carve_middle () =
  let m = ok (Vmem.Region_map.add ~start:0 ~stop:100 "a" Vmem.Region_map.empty) in
  let m, removed = Vmem.Region_map.carve ~start:40 ~stop:60 ~crop:no_crop m in
  Alcotest.(check (list (triple int int string)))
    "removed middle" [ (40, 60, "a") ] removed;
  Alcotest.(check (list (triple int int string)))
    "kept sides" [ (0, 40, "a"); (60, 100, "a") ]
    (Vmem.Region_map.to_list m)

let test_rm_carve_span () =
  let m = ok (Vmem.Region_map.add ~start:0 ~stop:10 "a" Vmem.Region_map.empty) in
  let m = ok (Vmem.Region_map.add ~start:20 ~stop:30 "b" m) in
  let m, removed = Vmem.Region_map.carve ~start:5 ~stop:25 ~crop:no_crop m in
  Alcotest.(check (list (triple int int string)))
    "removed" [ (5, 10, "a"); (20, 25, "b") ] removed;
  Alcotest.(check (list (triple int int string)))
    "kept" [ (0, 5, "a"); (25, 30, "b") ]
    (Vmem.Region_map.to_list m)

let test_rm_carve_crop_callback () =
  (* payload records its offset from the original start, like a file VMA *)
  let m = ok (Vmem.Region_map.add ~start:100 ~stop:200 0 Vmem.Region_map.empty) in
  let crop ~old_start ~start ~stop:_ off = off + (start - old_start) in
  let m, removed = Vmem.Region_map.carve ~start:150 ~stop:160 ~crop m in
  Alcotest.(check (list (triple int int int))) "mid offset" [ (150, 160, 50) ] removed;
  (match Vmem.Region_map.to_list m with
  | [ (100, 150, 0); (160, 200, 60) ] -> ()
  | _ -> Alcotest.fail "kept fragments wrong")

let test_rm_find_gap () =
  let m = ok (Vmem.Region_map.add ~start:100 ~stop:200 "a" Vmem.Region_map.empty) in
  let m = ok (Vmem.Region_map.add ~start:250 ~stop:300 "b" m) in
  Alcotest.(check (option int)) "before" (Some 0)
    (Vmem.Region_map.find_gap ~min:0 ~max:1000 ~len:50 m);
  Alcotest.(check (option int)) "between" (Some 200)
    (Vmem.Region_map.find_gap ~min:150 ~max:1000 ~len:50 m);
  Alcotest.(check (option int)) "after" (Some 300)
    (Vmem.Region_map.find_gap ~min:150 ~max:1000 ~len:80 m);
  Alcotest.(check (option int)) "fits exactly before" (Some 0)
    (Vmem.Region_map.find_gap ~min:0 ~max:320 ~len:100 m);
  Alcotest.(check (option int)) "too big" None
    (Vmem.Region_map.find_gap ~min:0 ~max:320 ~len:150 m)

let prop_rm_invariant =
  (* apply random add/carve ops; intervals must stay disjoint and sorted *)
  let op =
    QCheck.Gen.(
      oneof
        [
          map2 (fun s l -> `Add (s * 10, l)) (int_bound 100) (1 -- 5);
          map2 (fun s l -> `Carve (s * 10, l)) (int_bound 100) (1 -- 5);
        ])
  in
  QCheck.Test.make ~count:200 ~name:"region map: disjoint sorted invariant"
    (QCheck.make QCheck.Gen.(list_size (1 -- 40) op))
    (fun ops ->
      let m =
        List.fold_left
          (fun m op ->
            match op with
            | `Add (s, l) -> (
              match Vmem.Region_map.add ~start:s ~stop:(s + (l * 10)) () m with
              | Ok m -> m
              | Error `Overlap -> m)
            | `Carve (s, l) ->
              fst (Vmem.Region_map.carve ~start:s ~stop:(s + (l * 10)) ~crop:no_crop m))
          Vmem.Region_map.empty ops
      in
      let l = Vmem.Region_map.to_list m in
      let rec disjoint = function
        | (_, e1, ()) :: ((s2, _, ()) :: _ as rest) -> e1 <= s2 && disjoint rest
        | [ _ ] | [] -> true
      in
      disjoint l
      && Vmem.Region_map.total_length m
         = List.fold_left (fun acc (s, e, ()) -> acc + e - s) 0 l)

(* ------------------------------------------------------------------ *)
(* Tlb *)

let test_tlb_accounting () =
  let cost = Vmem.Cost.create () in
  let tlb = Vmem.Tlb.create ~cpus:4 cost in
  Vmem.Tlb.flush_local tlb;
  Vmem.Tlb.shootdown tlb;
  Vmem.Tlb.invalidate_page tlb;
  let s = Vmem.Tlb.stats tlb in
  check_int "flushes" 2 s.Vmem.Tlb.local_flushes;
  (* shootdown counts its own local flush *)
  check_int "shootdowns" 1 s.Vmem.Tlb.shootdowns;
  check_int "invl" 1 s.Vmem.Tlb.invalidations;
  let p = Vmem.Cost.params cost in
  Alcotest.(check (float 0.01))
    "shootdown cycles"
    (p.Vmem.Cost.tlb_shootdown *. 3.0)
    (Vmem.Cost.get cost "tlb:shootdown")

(* ------------------------------------------------------------------ *)
(* Addr_space *)

let make_as ?(frames = 4096) ?policy () =
  let fr = Vmem.Frame.create ?policy ~frames () in
  let cost = Vmem.Cost.create () in
  let tlb = Vmem.Tlb.create cost in
  (fr, Vmem.Addr_space.create ~frames:fr ~cost ~tlb ())

let page = Vmem.Addr.page_size

let test_as_mmap_gap () =
  let _, a = make_as () in
  let x = ok (Vmem.Addr_space.mmap ~len:(2 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  check_int "at base" (Vmem.Addr_space.mmap_base a) x;
  let y = ok (Vmem.Addr_space.mmap ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  check_int "next gap" (x + (2 * page)) y;
  check_int "vmas" 2 (Vmem.Addr_space.vma_count a)

let test_as_mmap_hint () =
  let _, a = make_as () in
  let hint = 0x1000_0000 in
  let x = ok (Vmem.Addr_space.mmap ~addr:hint ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  check_int "placed at hint" hint x;
  (match Vmem.Addr_space.mmap ~addr:hint ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a with
  | Error `Overlap -> ()
  | _ -> Alcotest.fail "expected overlap");
  match Vmem.Addr_space.mmap ~addr:(hint + 1) ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a with
  | Error `Invalid -> ()
  | _ -> Alcotest.fail "expected invalid (unaligned)"

let test_as_demand_zero () =
  let fr, a = make_as () in
  let x = ok (Vmem.Addr_space.mmap ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  check_int "nothing resident" 0 (Vmem.Addr_space.resident_pages a);
  check_int "reads zero" 0 (ok (Vmem.Addr_space.read_byte a x));
  check_int "one page resident" 1 (Vmem.Addr_space.resident_pages a);
  ok (Vmem.Addr_space.write_byte a (x + 5) 99);
  check_int "reads back" 99 (ok (Vmem.Addr_space.read_byte a (x + 5)));
  check_int "still one page" 1 (Vmem.Addr_space.resident_pages a);
  check_int "one frame used" 1 (Vmem.Frame.used fr)

let test_as_segfault_and_perms () =
  let _, a = make_as () in
  (match Vmem.Addr_space.read_byte a 0x500 with
  | Error `Segfault -> ()
  | _ -> Alcotest.fail "expected segfault");
  let x = ok (Vmem.Addr_space.mmap ~len:page ~perm:Vmem.Perm.r ~kind:Vmem.Vma.Anon a) in
  (match Vmem.Addr_space.write_byte a x 1 with
  | Error `Perm_denied -> ()
  | _ -> Alcotest.fail "expected perm denied");
  check_int "read ok" 0 (ok (Vmem.Addr_space.read_byte a x))

let test_as_munmap_partial () =
  let fr, a = make_as () in
  let x = ok (Vmem.Addr_space.mmap ~len:(4 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  check_int "touched" 4 (ok (Vmem.Addr_space.touch_range a ~addr:x ~len:(4 * page)));
  check_int "committed" 4 (Vmem.Addr_space.committed_pages a);
  ok (Vmem.Addr_space.munmap a ~addr:(x + page) ~len:page);
  check_int "resident drops" 3 (Vmem.Addr_space.resident_pages a);
  check_int "commit drops" 3 (Vmem.Addr_space.committed_pages a);
  check_int "split vmas" 2 (Vmem.Addr_space.vma_count a);
  check_int "frames freed" 3 (Vmem.Frame.used fr);
  (* hole faults *)
  match Vmem.Addr_space.read_byte a (x + page) with
  | Error `Segfault -> ()
  | _ -> Alcotest.fail "expected segfault in hole"

let test_as_munmap_hole_ok () =
  let _, a = make_as () in
  (* munmap over nothing is fine, POSIX-style *)
  ok (Vmem.Addr_space.munmap a ~addr:0x4000_0000 ~len:(16 * page))

let test_as_protect () =
  let _, a = make_as () in
  let x = ok (Vmem.Addr_space.mmap ~len:(2 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  ok (Vmem.Addr_space.write_byte a x 1);
  ok (Vmem.Addr_space.protect a ~addr:x ~len:page ~perm:Vmem.Perm.r);
  (match Vmem.Addr_space.write_byte a x 2 with
  | Error `Perm_denied -> ()
  | _ -> Alcotest.fail "write after mprotect");
  (* second page unaffected *)
  ok (Vmem.Addr_space.write_byte a (x + page) 3);
  (* protect over a hole fails *)
  match Vmem.Addr_space.protect a ~addr:0x5000_0000 ~len:page ~perm:Vmem.Perm.r with
  | Error `No_region -> ()
  | _ -> Alcotest.fail "expected no region"

let test_as_protect_restore () =
  let _, a = make_as () in
  let x = ok (Vmem.Addr_space.mmap ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  ok (Vmem.Addr_space.write_byte a x 7);
  ok (Vmem.Addr_space.protect a ~addr:x ~len:page ~perm:Vmem.Perm.r);
  ok (Vmem.Addr_space.protect a ~addr:x ~len:page ~perm:Vmem.Perm.rw);
  ok (Vmem.Addr_space.write_byte a x 8);
  check_int "value" 8 (ok (Vmem.Addr_space.read_byte a x))

let test_as_brk () =
  let _, a = make_as () in
  let base = 0x2000_0000 in
  Vmem.Addr_space.set_heap_base a base;
  check_int "initial brk" base (Vmem.Addr_space.brk a);
  ok (Vmem.Addr_space.set_brk a (base + (4 * page)));
  check_int "grown" (base + (4 * page)) (Vmem.Addr_space.brk a);
  ok (Vmem.Addr_space.write_byte a (base + (2 * page)) 9);
  ok (Vmem.Addr_space.set_brk a (base + page));
  check_int "shrunk" (base + page) (Vmem.Addr_space.brk a);
  (match Vmem.Addr_space.read_byte a (base + (2 * page)) with
  | Error `Segfault -> ()
  | _ -> Alcotest.fail "freed heap page still mapped");
  match Vmem.Addr_space.set_brk a (base - page) with
  | Error `Invalid -> ()
  | _ -> Alcotest.fail "brk below base"

let fork_pair () =
  let fr, a = make_as () in
  let x = ok (Vmem.Addr_space.mmap ~len:(2 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  ok (Vmem.Addr_space.write_byte a x 11);
  let child = ok (Vmem.Addr_space.clone_cow a) in
  (fr, a, child, x)

let test_as_cow_semantics () =
  let fr, parent, child, x = fork_pair () in
  (* child sees parent's data *)
  check_int "inherited" 11 (ok (Vmem.Addr_space.read_byte child x));
  (* same frame, refcount 2 *)
  check_int "one frame" 1 (Vmem.Frame.used fr);
  (* child write breaks COW *)
  ok (Vmem.Addr_space.write_byte child x 22);
  check_int "child sees own" 22 (ok (Vmem.Addr_space.read_byte child x));
  check_int "parent unchanged" 11 (ok (Vmem.Addr_space.read_byte parent x));
  check_int "two frames now" 2 (Vmem.Frame.used fr);
  (* parent write: sole owner fast path, no new frame *)
  ok (Vmem.Addr_space.write_byte parent x 33);
  check_int "still two frames" 2 (Vmem.Frame.used fr);
  check_int "parent value" 33 (ok (Vmem.Addr_space.read_byte parent x))

let test_as_cow_layout_inherited () =
  let _, parent, child, _ = fork_pair () in
  check_int "mmap_base inherited" (Vmem.Addr_space.mmap_base parent)
    (Vmem.Addr_space.mmap_base child);
  check_int "same vma count" (Vmem.Addr_space.vma_count parent)
    (Vmem.Addr_space.vma_count child)

let test_as_fork_cost_scales () =
  let fr = Vmem.Frame.create ~frames:(1 lsl 20) () in
  let cost = Vmem.Cost.create () in
  let tlb = Vmem.Tlb.create cost in
  let fork_cycles npages =
    let a = Vmem.Addr_space.create ~frames:fr ~cost ~tlb () in
    let x = ok (Vmem.Addr_space.mmap ~len:(npages * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
    ignore (ok (Vmem.Addr_space.touch_range a ~addr:x ~len:(npages * page)));
    let child, cycles = Vmem.Cost.delta cost (fun () -> ok (Vmem.Addr_space.clone_cow a)) in
    Vmem.Addr_space.destroy child;
    Vmem.Addr_space.destroy a;
    cycles
  in
  let small = fork_cycles 16 in
  let big = fork_cycles 16384 in
  check_bool "fork cost grows with resident set" true (big > small *. 10.0)

let test_as_destroy_releases () =
  let fr, parent, child, x = fork_pair () in
  ok (Vmem.Addr_space.write_byte child x 1);
  Vmem.Addr_space.destroy child;
  check_int "child frames gone" 1 (Vmem.Frame.used fr);
  check_int "parent still reads" 11 (ok (Vmem.Addr_space.read_byte parent x));
  Vmem.Addr_space.destroy parent;
  check_int "all freed" 0 (Vmem.Frame.used fr);
  check_int "commit zero" 0 (Vmem.Frame.committed fr);
  Vmem.Addr_space.destroy parent (* idempotent *)

let test_as_seal_clone () =
  let fr, a = make_as () in
  let x =
    ok (Vmem.Addr_space.mmap ~len:(2 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a)
  in
  ok (Vmem.Addr_space.write_byte a x 11);
  check_bool "sole owner before seal" true (Vmem.Addr_space.sole_owner a);
  let tpl = Vmem.Addr_space.seal a in
  check_int "resident frame pinned" 1 (Vmem.Frame.pinned fr);
  (* the template now holds every frame: the source is no longer the
     sole owner (so it cannot be sealed twice) *)
  check_bool "not sole owner after seal" false (Vmem.Addr_space.sole_owner a);
  (* the sealed image is immutable: a source write COWs away from it *)
  ok (Vmem.Addr_space.write_byte a x 22);
  check_int "source copied away" 2 (Vmem.Frame.used fr);
  let child, subtrees = ok (Vmem.Addr_space.clone_from_sealed tpl ~commit_pages:1) in
  check_bool "shares at least one subtree" true (subtrees >= 1);
  check_int "child sees the frozen byte" 11 (ok (Vmem.Addr_space.read_byte child x));
  ok (Vmem.Addr_space.write_byte child x 33);
  check_int "child copied, template intact" 3 (Vmem.Frame.used fr);
  check_int "template byte unchanged" 22 (ok (Vmem.Addr_space.read_byte a x));
  Vmem.Addr_space.destroy child;
  Vmem.Addr_space.destroy a;
  check_int "only the pinned page left" 1 (Vmem.Frame.used fr);
  Vmem.Addr_space.destroy_sealed tpl;
  check_int "unpinned and freed" 0 (Vmem.Frame.used fr);
  check_int "no pins left" 0 (Vmem.Frame.pinned fr);
  check_int "no commit leak" 0 (Vmem.Frame.committed fr)

let test_as_seal_clone_commit_limit () =
  let fr, a = make_as ~frames:8 () in
  let x = ok (Vmem.Addr_space.mmap ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  ok (Vmem.Addr_space.write_byte a x 5);
  let tpl = Vmem.Addr_space.seal a in
  let used = Vmem.Frame.used fr and committed = Vmem.Frame.committed fr in
  (* the commit charge is the only fallible step of a zygote clone: a
     refusal leaves the template and the frame pool untouched *)
  (match Vmem.Addr_space.clone_from_sealed tpl ~commit_pages:100 with
  | Error `Commit_limit -> ()
  | Ok _ -> Alcotest.fail "expected commit refusal");
  check_int "used unmoved" used (Vmem.Frame.used fr);
  check_int "commit unmoved" committed (Vmem.Frame.committed fr);
  check_int "still pinned" 1 (Vmem.Frame.pinned fr);
  (* and the template is still cloneable *)
  let child, _ = ok (Vmem.Addr_space.clone_from_sealed tpl ~commit_pages:1) in
  check_int "clone reads frozen byte" 5 (ok (Vmem.Addr_space.read_byte child x));
  Vmem.Addr_space.destroy child;
  Vmem.Addr_space.destroy a;
  Vmem.Addr_space.destroy_sealed tpl;
  check_int "all freed" 0 (Vmem.Frame.used fr);
  check_int "commit zero" 0 (Vmem.Frame.committed fr)

let test_as_fork_commit_limit () =
  (* strict accounting: a parent using >half of memory cannot fork *)
  let fr, a = make_as ~frames:100 () in
  let x = ok (Vmem.Addr_space.mmap ~len:(60 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  ignore x;
  (match Vmem.Addr_space.clone_cow a with
  | Error `Commit_limit -> ()
  | Error `Out_of_memory -> Alcotest.fail "unexpected OOM"
  | Ok _ -> Alcotest.fail "fork should exceed commit");
  (* overcommit policy lets it through *)
  Vmem.Frame.set_policy fr Vmem.Frame.Overcommit;
  let child = ok (Vmem.Addr_space.clone_cow a) in
  Vmem.Addr_space.destroy child

let test_as_clone_eager () =
  let fr, a = make_as () in
  let x = ok (Vmem.Addr_space.mmap ~len:(2 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  ok (Vmem.Addr_space.write_byte a x 5);
  let child = ok (Vmem.Addr_space.clone_eager a) in
  (* frames copied immediately: 2 used (1 parent + 1 child) *)
  check_int "frames doubled" 2 (Vmem.Frame.used fr);
  check_int "child copy" 5 (ok (Vmem.Addr_space.read_byte child x));
  (* no COW: parent write doesn't affect child and allocates nothing *)
  ok (Vmem.Addr_space.write_byte a x 6);
  check_int "still 2 frames" 2 (Vmem.Frame.used fr);
  check_int "child isolated" 5 (ok (Vmem.Addr_space.read_byte child x))

let test_as_shared_mapping_fork () =
  let _, a = make_as () in
  let x =
    ok (Vmem.Addr_space.mmap ~shared:true ~len:page ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a)
  in
  ok (Vmem.Addr_space.write_byte a x 1);
  let child = ok (Vmem.Addr_space.clone_cow a) in
  (* shared mapping: child writes are visible to the parent *)
  ok (Vmem.Addr_space.write_byte child x 77);
  check_int "parent sees shared write" 77 (ok (Vmem.Addr_space.read_byte a x))

let test_as_map_image_page () =
  let _, a = make_as () in
  ok
    (Vmem.Addr_space.map_image_page a ~addr:0x40_0000 ~perm:Vmem.Perm.rx
       ~data:"\x7fELF" ~kind:(Vmem.Vma.Text { path = "/bin/x" }) ());
  check_int "populated" 1 (Vmem.Addr_space.resident_pages a);
  check_int "byte 1" 0x45 (ok (Vmem.Addr_space.read_byte a 0x40_0001))

let test_as_oom_fault () =
  let _, a = make_as ~frames:2 ~policy:Vmem.Frame.Overcommit () in
  let x = ok (Vmem.Addr_space.mmap ~len:(8 * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a) in
  ok (Vmem.Addr_space.touch a x);
  ok (Vmem.Addr_space.touch a (x + page));
  match Vmem.Addr_space.touch a (x + (2 * page)) with
  | Error `Out_of_memory -> ()
  | _ -> Alcotest.fail "expected OOM"

let prop_as_fork_refcounts =
  QCheck.Test.make ~count:50
    ~name:"addr space: destroy everything frees every frame"
    QCheck.(pair (1 -- 8) (list_of_size Gen.(0 -- 20) (int_bound 7)))
    (fun (npages, writes) ->
      let fr = Vmem.Frame.create ~frames:1024 () in
      let cost = Vmem.Cost.create () in
      let tlb = Vmem.Tlb.create cost in
      let a = Vmem.Addr_space.create ~frames:fr ~cost ~tlb () in
      let x =
        match Vmem.Addr_space.mmap ~len:(npages * page) ~perm:Vmem.Perm.rw ~kind:Vmem.Vma.Anon a with
        | Ok x -> x
        | Error _ -> QCheck.assume_fail ()
      in
      List.iter
        (fun p ->
          if p < npages then
            match Vmem.Addr_space.write_byte a (x + (p * page)) 1 with
            | Ok () | Error _ -> ())
        writes;
      let child =
        match Vmem.Addr_space.clone_cow a with
        | Ok c -> c
        | Error _ -> QCheck.assume_fail ()
      in
      List.iter
        (fun p ->
          if p < npages then
            match Vmem.Addr_space.write_byte child (x + (p * page)) 2 with
            | Ok () | Error _ -> ())
        writes;
      Vmem.Addr_space.destroy child;
      Vmem.Addr_space.destroy a;
      Vmem.Frame.used fr = 0 && Vmem.Frame.committed fr = 0)

(* ------------------------------------------------------------------ *)
(* COW model check: a family of forked address spaces must behave like
   independent byte maps, no matter how writes and forks interleave *)

type world_op =
  | W_write of int * int * int  (* space index, page*16+off within 8 pages, byte *)
  | W_fork of int
  | W_destroy of int

let gen_world_op =
  QCheck.Gen.(
    frequency
      [
        (6, map3 (fun s loc v -> W_write (s, loc, v)) (int_bound 7) (int_bound 127) (int_bound 255));
        (2, map (fun s -> W_fork s) (int_bound 7));
        (1, map (fun s -> W_destroy s) (int_bound 7));
      ])

let prop_cow_model =
  QCheck.Test.make ~count:60 ~name:"addr space: fork family matches byte-map model"
    (QCheck.make QCheck.Gen.(list_size (0 -- 40) gen_world_op))
    (fun ops ->
      let base = 0x1000_0000 in
      let npages = 8 in
      let fr = Vmem.Frame.create ~policy:Vmem.Frame.Overcommit ~frames:4096 () in
      let cost = Vmem.Cost.create () in
      let tlb = Vmem.Tlb.create cost in
      let root = Vmem.Addr_space.create ~frames:fr ~cost ~tlb () in
      (match
         Vmem.Addr_space.mmap ~addr:base ~len:(npages * page) ~perm:Vmem.Perm.rw
           ~kind:Vmem.Vma.Anon root
       with
      | Ok _ -> ()
      | Error _ -> QCheck.assume_fail ());
      (* each live space paired with its reference byte map *)
      let live = ref [ (root, Hashtbl.create 64) ] in
      let addr_of loc = base + ((loc / 16) * page) + (loc mod 16) in
      let pick i = List.nth !live (i mod List.length !live) in
      let agree () =
        List.for_all
          (fun (aspace, model) ->
            Hashtbl.fold
              (fun addr expected acc ->
                acc
                &&
                match Vmem.Addr_space.read_byte aspace addr with
                | Ok got -> got = expected
                | Error _ -> false)
              model true)
          !live
      in
      let ok_steps =
        List.for_all
          (fun op ->
            match op with
            | W_write (s, loc, v) -> (
              let aspace, model = pick s in
              let addr = addr_of loc in
              match Vmem.Addr_space.write_byte aspace addr v with
              | Ok () ->
                Hashtbl.replace model addr v;
                true
              | Error _ -> false)
            | W_fork s -> (
              let aspace, model = pick s in
              match Vmem.Addr_space.clone_cow aspace with
              | Ok child ->
                live := !live @ [ (child, Hashtbl.copy model) ];
                true
              | Error _ -> false)
            | W_destroy s ->
              if List.length !live > 1 then begin
                let victim, _ = pick s in
                Vmem.Addr_space.destroy victim;
                live := List.filter (fun (a, _) -> a != victim) !live;
                true
              end
              else true)
          ops
      in
      let consistent = ok_steps && agree () in
      List.iter (fun (a, _) -> Vmem.Addr_space.destroy a) !live;
      consistent && Vmem.Frame.used fr = 0 && Vmem.Frame.committed fr = 0)

(* ------------------------------------------------------------------ *)
(* Batched-vs-reference oracle: the O(range) fast paths (leaf batch ops,
   lazily shared page-table subtrees on fork) must be indistinguishable
   from the per-page reference walks ([~batched:false]) — identical op
   results, PTE contents, cost breakdown with event counts, and frame
   accounting — under arbitrary interleavings of map / touch / mprotect
   / clone / unmap, including OOM and commit-limit failures. *)

type oracle_op =
  | O_mmap of int * int * int * bool  (* page offset, pages, perm, shared *)
  | O_map_lazy of int * int * int  (* page offset, pages, perm *)
  | O_touch of int * int
  | O_protect of int * int * int
  | O_munmap of int * int
  | O_clone

let gen_oracle_scenario =
  QCheck.Gen.(
    let arena = 96 in
    let op =
      frequency
        [
          ( 4,
            map3
              (fun off len (p, sh) -> O_mmap (off, len, p, sh))
              (int_bound (arena - 1)) (1 -- 16)
              (pair (int_bound 2) bool) );
          ( 3,
            map3
              (fun off len p -> O_map_lazy (off, len, p))
              (int_bound (arena - 1)) (1 -- 16) (int_bound 2) );
          (6, map2 (fun off len -> O_touch (off, len)) (int_bound (arena - 1)) (1 -- 24));
          ( 3,
            map3
              (fun off len p -> O_protect (off, len, p))
              (int_bound (arena - 1)) (1 -- 16) (int_bound 2) );
          (2, map2 (fun off len -> O_munmap (off, len)) (int_bound (arena - 1)) (1 -- 24));
          (2, return O_clone);
        ]
    in
    pair (triple (list_size (1 -- 45) op) bool bool) (int_bound 3))

let prop_batched_oracle =
  let perm_of = [| Vmem.Perm.r; Vmem.Perm.rw; Vmem.Perm.rwx |] in
  let show_fault = function
    | `Segfault -> "segv"
    | `Perm_denied -> "perm"
    | `Out_of_memory -> "oom"
  in
  QCheck.Test.make ~count:200
    ~name:"addr space: batched paths match the per-page oracle"
    (QCheck.make gen_oracle_scenario)
    (fun ((ops, small_phys, overcommit), readahead) ->
      let make batched =
        let fr =
          Vmem.Frame.create
            ~policy:(if overcommit then Vmem.Frame.Overcommit else Vmem.Frame.Strict)
            ~frames:(if small_phys then 48 else 4096)
            ()
        in
        let cost = Vmem.Cost.create () in
        let tlb = Vmem.Tlb.create cost in
        let a = Vmem.Addr_space.create ~batched ~frames:fr ~cost ~tlb () in
        (* a minimal pager so lazy maps and first-touch major faults run
           in both spaces: fetch costs are integer-valued so batching
           cannot round differently *)
        Vmem.Addr_space.set_pager a
          (Some
             {
               Vmem.Addr_space.fetch =
                 (fun cost ~cookie:_ ~frame:_ ->
                   Vmem.Cost.charge cost "pager:fetch-zero" 100.0);
               fetch_backing =
                 (fun cost ~src ~dst ->
                   Vmem.Cost.charge cost "pager:fetch-template" 60.0;
                   Vmem.Frame.copy_contents fr ~src ~dst);
               deny = (fun () -> false);
               readahead;
             });
        (fr, cost, a, ref None)
      in
      let fast = make true in
      let slow = make false in
      let ptes a =
        Vmem.Addr_space.fold_resident a ~init:[] ~f:(fun acc ~vpn ~pte ->
            (vpn, pte) :: acc)
      in
      let lazies a =
        Vmem.Addr_space.fold_lazy a ~init:[] ~f:(fun acc ~vpn ~pte ->
            (vpn, pte) :: acc)
      in
      let state (fr, cost, a, child) =
        ( Vmem.Cost.total cost,
          List.sort compare (Vmem.Cost.by_category_counts cost),
          (Vmem.Frame.used fr, Vmem.Frame.committed fr),
          ( Vmem.Addr_space.resident_pages a,
            Vmem.Addr_space.pt_nodes a,
            Vmem.Addr_space.vma_count a,
            Vmem.Addr_space.lazy_pages a ),
          (ptes a, lazies a),
          Option.map (fun c -> (ptes c, lazies c)) !child )
      in
      let apply (fr, _, a, child) op =
        let base = Vmem.Addr_space.mmap_base a in
        ignore fr;
        match op with
        | O_mmap (off, len, p, shared) -> (
          match
            Vmem.Addr_space.mmap ~addr:(base + (off * page)) ~shared
              ~len:(len * page) ~perm:perm_of.(p) ~kind:Vmem.Vma.Anon a
          with
          | Ok x -> Printf.sprintf "mmap:%x" x
          | Error `No_space -> "mmap:nospace"
          | Error `Overlap -> "mmap:overlap"
          | Error `Commit_limit -> "mmap:commit"
          | Error `Invalid -> "mmap:invalid")
        | O_map_lazy (off, len, p) -> (
          match
            Vmem.Addr_space.map_lazy ~addr:(base + (off * page))
              ~len:(len * page) ~perm:perm_of.(p) ~kind:Vmem.Vma.Anon
              ~cookie0:0 ~stride:0 a
          with
          | Ok x -> Printf.sprintf "lazy:%x" x
          | Error `No_space -> "lazy:nospace"
          | Error `Overlap -> "lazy:overlap"
          | Error `Commit_limit -> "lazy:commit"
          | Error `Invalid -> "lazy:invalid")
        | O_touch (off, len) -> (
          match
            Vmem.Addr_space.touch_range a ~addr:(base + (off * page))
              ~len:(len * page)
          with
          | Ok n -> Printf.sprintf "touch:%d" n
          | Error e -> "touch:" ^ show_fault e)
        | O_protect (off, len, p) -> (
          match
            Vmem.Addr_space.protect a ~addr:(base + (off * page))
              ~len:(len * page) ~perm:perm_of.(p)
          with
          | Ok () -> "protect:ok"
          | Error `Invalid -> "protect:invalid"
          | Error `No_region -> "protect:noregion")
        | O_munmap (off, len) -> (
          match
            Vmem.Addr_space.munmap a ~addr:(base + (off * page))
              ~len:(len * page)
          with
          | Ok () -> "munmap:ok"
          | Error `Invalid -> "munmap:invalid")
        | O_clone -> (
          (match !child with
          | Some c ->
            Vmem.Addr_space.destroy c;
            child := None
          | None -> ());
          match Vmem.Addr_space.clone_cow a with
          | Ok c ->
            child := Some c;
            "clone:ok"
          | Error `Commit_limit -> "clone:commit"
          | Error `Out_of_memory -> "clone:oom")
      in
      List.iteri
        (fun i op ->
          let rf = apply fast op in
          let rs = apply slow op in
          if rf <> rs then
            Alcotest.failf "op %d: result mismatch (batched %s, oracle %s)" i
              rf rs;
          if state fast <> state slow then
            Alcotest.failf "op %d (%s): state diverged" i rf)
        ops;
      let finish (fr, _, a, child) =
        (match !child with Some c -> Vmem.Addr_space.destroy c | None -> ());
        Vmem.Addr_space.destroy a;
        (Vmem.Frame.used fr, Vmem.Frame.committed fr)
      in
      let uf = finish fast and us = finish slow in
      uf = us && uf = (0, 0))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let tc n f = Alcotest.test_case n `Quick f

let () =
  Alcotest.run "vmem"
    [
      ( "addr",
        [
          tc "alignment" test_addr_alignment;
          tc "pages" test_addr_pages;
          tc "table index" test_addr_table_index;
        ] );
      qsuite "addr-props" [ prop_addr_align; prop_addr_index_recompose ];
      ("perm", [ tc "allows" test_perm_allows; tc "ops" test_perm_ops ]);
      ( "frame",
        [
          tc "alloc/free" test_frame_alloc_free;
          tc "refcount" test_frame_refcount;
          tc "oom" test_frame_oom;
          tc "unallocated" test_frame_unallocated_ops;
          tc "commit strict" test_frame_commit;
          tc "overcommit" test_frame_overcommit;
          tc "data" test_frame_data;
          tc "free discards data" test_frame_free_discards_data;
          tc "pin" test_frame_pin;
          tc "pin spilled" test_frame_pin_spilled;
          tc "pin many" test_frame_pin_many;
        ] );
      ( "pte",
        [ tc "roundtrip" test_pte_roundtrip; tc "updates" test_pte_updates ] );
      qsuite "pte-props" [ prop_pte_roundtrip ];
      ( "page-table",
        [
          tc "map/lookup" test_pt_map_lookup;
          tc "unmap" test_pt_unmap;
          tc "node growth" test_pt_node_growth;
          tc "fold order" test_pt_fold_order;
          tc "update" test_pt_update;
          tc "clone cow" test_pt_clone_cow;
          tc "clear" test_pt_clear;
        ] );
      qsuite "page-table-props" [ prop_pt_map_unmap ];
      ( "region-map",
        [
          tc "add/overlap" test_rm_add_overlap;
          tc "find" test_rm_find;
          tc "carve middle" test_rm_carve_middle;
          tc "carve span" test_rm_carve_span;
          tc "carve crop callback" test_rm_carve_crop_callback;
          tc "find gap" test_rm_find_gap;
        ] );
      qsuite "region-map-props" [ prop_rm_invariant ];
      ("tlb", [ tc "accounting" test_tlb_accounting ]);
      ( "addr-space",
        [
          tc "mmap gap" test_as_mmap_gap;
          tc "mmap hint" test_as_mmap_hint;
          tc "demand zero" test_as_demand_zero;
          tc "segfault/perms" test_as_segfault_and_perms;
          tc "munmap partial" test_as_munmap_partial;
          tc "munmap hole" test_as_munmap_hole_ok;
          tc "protect" test_as_protect;
          tc "protect restore" test_as_protect_restore;
          tc "brk" test_as_brk;
          tc "cow semantics" test_as_cow_semantics;
          tc "cow layout inherited" test_as_cow_layout_inherited;
          tc "fork cost scales" test_as_fork_cost_scales;
          tc "destroy releases" test_as_destroy_releases;
          tc "seal/clone" test_as_seal_clone;
          tc "seal commit limit" test_as_seal_clone_commit_limit;
          tc "fork commit limit" test_as_fork_commit_limit;
          tc "clone eager" test_as_clone_eager;
          tc "shared mapping fork" test_as_shared_mapping_fork;
          tc "map image page" test_as_map_image_page;
          tc "oom fault" test_as_oom_fault;
        ] );
      qsuite "addr-space-props"
        [ prop_as_fork_refcounts; prop_cow_model; prop_batched_oracle ];
    ]
