(* Benchmark harness: regenerates every table and figure of the
   evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
   paper-vs-measured).

     dune exec bench/main.exe                 -- everything, full depth
     dune exec bench/main.exe -- --quick      -- everything, reduced depth
     dune exec bench/main.exe -- f1 e3        -- selected experiments
     dune exec bench/main.exe -- micro        -- bechamel micro-benches only
     dune exec bench/main.exe -- --smoke      -- sim experiments, tiny
                                                 parameters, validate the
                                                 emitted BENCH_*.json

   Every experiment run also writes BENCH_<slug>.json — the full report
   (series points, per-point cost breakdowns, counters) plus run
   parameters — so successive runs accumulate a machine-readable perf
   trajectory. The bechamel section measures real minimal-process
   creation with OLS regression (complementing T1's sample statistics);
   the experiment reports then follow in paper order. *)

open Bechamel
open Toolkit

let bechamel_creation_tests () =
  let strategies =
    List.filter Forkroad.Strategy.supported_real Forkroad.Strategy.all
  in
  let test_of s =
    Test.make
      ~name:(Forkroad.Strategy.name s)
      (Staged.stage (fun () -> Forkroad.Real_driver.creation_once s))
  in
  Test.make_grouped ~name:"creation" (List.map test_of strategies)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (bechamel_creation_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Metrics.Table.create ~align:[ Metrics.Table.Left ]
      [ "benchmark"; "ns/run (OLS)"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Metrics.Units.ns e
        | Some [] | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := (name, [ name; estimate; r2 ]) :: !rows)
    results;
  List.iter
    (fun (_, row) -> Metrics.Table.add_row table row)
    (List.sort compare !rows);
  print_endline "========================================================================";
  print_endline "[MICRO] bechamel: minimal-process creation, real OS (OLS ns/run)";
  print_endline "========================================================================";
  print_string (Metrics.Table.render table);
  print_newline ()

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let bench_json ~quick ~wall_ms exp report =
  Metrics.Json.obj
    [
      ("exp", Metrics.Json.str exp.Forkroad.Report.exp_id);
      ("slug", Metrics.Json.str (Forkroad.Registry.slug exp));
      ("title", Metrics.Json.str exp.Forkroad.Report.exp_title);
      ( "kind",
        Metrics.Json.str
          (Forkroad.Report.kind_string exp.Forkroad.Report.exp_kind) );
      ("claim", Metrics.Json.str exp.Forkroad.Report.paper_claim);
      ( "params",
        Metrics.Json.obj
          [
            ("quick", Metrics.Json.bool quick);
            ("jobs", Metrics.Json.int (Workload.Par.jobs ()));
            ("harness_wall_ms", Metrics.Json.num wall_ms);
          ] );
      ("report", Forkroad.Report.to_json report);
    ]

(* Where BENCH_*.json land; --outdir redirects (e.g. into a scratch dir
   for a regress comparison, or bench/baselines/* when refreshing). *)
let outdir = ref "."

let bench_file exp =
  Filename.concat !outdir ("BENCH_" ^ Forkroad.Registry.slug exp ^ ".json")

let run_experiment ?(print = true) ~quick exp =
  let t0 = Unix.gettimeofday () in
  let report = exp.Forkroad.Report.run ~quick in
  let dt = Unix.gettimeofday () -. t0 in
  if print then begin
    print_string (Forkroad.Report.render report);
    Printf.printf "paper claim: %s\n" exp.Forkroad.Report.paper_claim;
    Printf.printf "(generated in %.1fs)\n\n" dt
  end;
  write_file (bench_file exp)
    (Metrics.Json.to_string ~indent:2
       (bench_json ~quick ~wall_ms:(dt *. 1000.) exp report)
    ^ "\n")

(* A BENCH_*.json is useful to downstream tooling only if it parses and
   actually carries data: at least one figure with a non-empty series, a
   table with rows, or a data block. The harness instrumentation must
   also be sane — harness_wall_ms present, numeric (NaN serialises to
   null) and non-negative — and reports expected to carry a blame
   ledger (cowtax) must actually have a populated one. *)
let validate_bench_file path =
  let read () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Metrics.Json.of_string (read ()) with
  | Error e -> Error (Printf.sprintf "%s: parse error: %s" path e)
  | Ok j -> (
    let open Metrics.Json in
    let wall_ok =
      match Option.bind (member "params" j) (member "harness_wall_ms") with
      | None -> Error (path ^ ": params.harness_wall_ms missing")
      | Some v -> (
        match to_num v with
        | None ->
          Error (path ^ ": params.harness_wall_ms not a number (NaN?)")
        | Some ms when Float.is_nan ms || ms < 0.0 ->
          Error
            (Printf.sprintf "%s: params.harness_wall_ms invalid: %g" path ms)
        | Some _ -> Ok ())
    in
    let blame_ok blocks =
      match Option.bind (member "slug" j) to_str with
      | Some "cowtax" ->
        let populated b =
          Option.bind (member "kind" b) to_str = Some "data"
          && Option.bind (member "name" b) to_str = Some "blame"
          && (match
                Option.bind (member "data" b) (member "events")
                |> Fun.flip Option.bind to_list
              with
             | Some (_ :: _) -> true
             | _ -> false)
          && Option.bind (member "data" b) (member "unattributed") <> None
        in
        if List.exists populated blocks then Ok ()
        else Error (path ^ ": cowtax lacks a populated blame data block")
      | _ -> Ok ()
    in
    match Option.bind (member "report" j) (member "blocks")
          |> Fun.flip Option.bind to_list
    with
    | None | Some [] -> Error (path ^ ": no report blocks")
    | Some _ when wall_ok <> Ok () -> wall_ok
    | Some blocks when blame_ok blocks <> Ok () -> blame_ok blocks
    | Some blocks ->
      let non_empty b =
        match Option.bind (member "kind" b) to_str with
        | Some "figure" -> (
          match
            Option.bind (member "figure" b) (member "series")
            |> Fun.flip Option.bind to_list
          with
          | Some (_ :: _ as series) ->
            List.for_all
              (fun s ->
                match
                  Option.bind (member "points" s) to_list
                with
                | Some (_ :: _) -> true
                | _ -> false)
              series
          | _ -> false)
        | Some "table" -> (
          match
            Option.bind (member "table" b) (member "rows")
            |> Fun.flip Option.bind to_list
          with
          | Some (_ :: _) -> true
          | _ -> false)
        | Some "data" -> member "data" b <> None
        | _ -> false
      in
      if List.exists non_empty blocks then Ok ()
      else Error (path ^ ": no non-empty figure/table/data block"))

let run_smoke () =
  let sims =
    List.filter
      (fun e -> e.Forkroad.Report.exp_kind = Forkroad.Report.Sim)
      Forkroad.Registry.all
  in
  let failures = ref 0 in
  List.iter
    (fun exp ->
      let t0 = Unix.gettimeofday () in
      run_experiment ~print:false ~quick:true exp;
      let dt = Unix.gettimeofday () -. t0 in
      let file = bench_file exp in
      match validate_bench_file file with
      | Ok () ->
        Printf.printf "smoke %-7s ok    %s (%.1fs)\n%!"
          exp.Forkroad.Report.exp_id file dt
      | Error msg ->
        incr failures;
        Printf.printf "smoke %-7s FAIL  %s\n%!" exp.Forkroad.Report.exp_id msg)
    sims;
  if !failures > 0 then begin
    Printf.eprintf "bench smoke: %d experiment(s) failed validation\n"
      !failures;
    exit 1
  end;
  Printf.printf "bench smoke: %d sim experiments ok\n" (List.length sims)

(* Perf smoke: a quick F1-SIM must finish inside a generous budget and
   its BENCH json must carry the harness_wall_ms instrumentation. Guards
   the O(range) fast paths (and the wall-clock plumbing itself) against
   silent regression to per-page behaviour, where even the quick sweep
   blows the budget. *)
let perf_budget_ms = 60_000.0

let run_perf_smoke () =
  let exp =
    List.find
      (fun e -> e.Forkroad.Report.exp_id = "F1-SIM")
      Forkroad.Registry.all
  in
  run_experiment ~print:false ~quick:true exp;
  let file = bench_file exp in
  let ic = open_in_bin file in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fail msg =
    Printf.eprintf "perf smoke: %s\n" msg;
    exit 1
  in
  match Metrics.Json.of_string contents with
  | Error e -> fail (Printf.sprintf "%s: parse error: %s" file e)
  | Ok j -> (
    let open Metrics.Json in
    match
      Option.bind (member "params" j) (member "harness_wall_ms")
      |> Fun.flip Option.bind to_num
    with
    | None -> fail (file ^ ": params.harness_wall_ms missing")
    | Some ms when ms > perf_budget_ms ->
      fail
        (Printf.sprintf "quick F1-SIM took %.0f ms (budget %.0f ms)" ms
           perf_budget_ms)
    | Some ms ->
      Printf.printf "perf smoke: quick F1-SIM in %.0f ms (budget %.0f ms)\n"
        ms perf_budget_ms)

(* Fault smoke: quick E13 (pressure curves + injected-fault retry demo)
   must run green and emit a valid BENCH_pressure.json. The @fault-smoke
   alias pairs this with test/test_fault.exe's invariant checker. *)
let run_fault_smoke () =
  let exp =
    List.find (fun e -> e.Forkroad.Report.exp_id = "E13") Forkroad.Registry.all
  in
  let t0 = Unix.gettimeofday () in
  run_experiment ~print:false ~quick:true exp;
  let file = bench_file exp in
  match validate_bench_file file with
  | Ok () ->
    Printf.printf "fault smoke: quick E13 ok, %s valid (%.1fs)\n" file
      (Unix.gettimeofday () -. t0)
  | Error msg ->
    Printf.eprintf "fault smoke: %s\n" msg;
    exit 1

(* bench regress --baseline DIR [--current DIR] [--report FILE]
                 [--wall-factor F] [--wall-slack-ms MS]

   Diff the current directory's BENCH_*.json against a committed
   baseline (see Forkroad.Regress for the per-block rules) and exit
   nonzero on any regression — the CI perf gate. *)
let run_regress args =
  let baseline = ref None
  and current = ref "."
  and report = ref None
  and tol = ref Forkroad.Regress.default_tolerance in
  let usage () =
    Printf.eprintf
      "usage: bench regress --baseline DIR [--current DIR] [--report FILE]\n\
      \       [--wall-factor F] [--wall-slack-ms MS]\n";
    exit 2
  in
  let float_arg name v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 -> f
    | Some _ | None ->
      Printf.eprintf "bench regress: %s wants a non-negative number, got %S\n"
        name v;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      baseline := Some v;
      parse rest
    | "--current" :: v :: rest ->
      current := v;
      parse rest
    | "--report" :: v :: rest ->
      report := Some v;
      parse rest
    | "--wall-factor" :: v :: rest ->
      tol := { !tol with Forkroad.Regress.wall_factor = float_arg "--wall-factor" v };
      parse rest
    | "--wall-slack-ms" :: v :: rest ->
      tol :=
        { !tol with Forkroad.Regress.wall_slack_ms = float_arg "--wall-slack-ms" v };
      parse rest
    | _ -> usage ()
  in
  parse args;
  match !baseline with
  | None -> usage ()
  | Some baseline ->
    let findings =
      Forkroad.Regress.compare_dirs ~tol:!tol ~baseline ~current:!current ()
    in
    (match !report with
    | None -> ()
    | Some path ->
      write_file path
        (Metrics.Json.to_string ~indent:2
           (Forkroad.Regress.report_to_json findings)
        ^ "\n");
      Printf.eprintf "wrote %s\n%!" path);
    (match findings with
    | [] ->
      Printf.printf "bench regress: no regressions vs %s\n" baseline;
      exit 0
    | fs ->
      List.iter
        (fun f ->
          Printf.printf "REGRESSION %s\n" (Forkroad.Regress.finding_to_string f))
        fs;
      Printf.eprintf "bench regress: %d finding(s) vs %s\n" (List.length fs)
        baseline;
      exit 1)

let () =
  (* The sim sweeps allocate page-table leaves by the tens of millions;
     the default 256 KiB minor heap spends a large fraction of the run
     promoting them. A 32 MiB minor heap is measurably faster and only
     affects the harness, never a simulated number. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let args = List.tl (Array.to_list Sys.argv) in
  (* `bench regress` is a pure JSON diff; it never runs an experiment
     and always exits from run_regress. *)
  (match args with "regress" :: rest -> run_regress rest | _ -> ());
  (* --jobs N (or --jobs=N) overrides FORKROAD_JOBS for this run *)
  let set_jobs s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Workload.Par.set_jobs n
    | Some _ | None ->
      Printf.eprintf "bench: --jobs wants a non-negative integer, got %S\n" s;
      exit 2
  in
  let set_outdir d =
    if not (Sys.file_exists d && Sys.is_directory d) then begin
      Printf.eprintf "bench: --outdir %S is not a directory\n" d;
      exit 2
    end;
    outdir := d
  in
  let args =
    let rec strip acc = function
      | [] -> List.rev acc
      | [ "--jobs" ] ->
        Printf.eprintf "bench: --jobs wants a value\n";
        exit 2
      | "--jobs" :: v :: rest ->
        set_jobs v;
        strip acc rest
      | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        set_jobs (String.sub a 7 (String.length a - 7));
        strip acc rest
      | [ "--outdir" ] ->
        Printf.eprintf "bench: --outdir wants a value\n";
        exit 2
      | "--outdir" :: v :: rest ->
        set_outdir v;
        strip acc rest
      | a :: rest when String.length a > 9 && String.sub a 0 9 = "--outdir=" ->
        set_outdir (String.sub a 9 (String.length a - 9));
        strip acc rest
      | a :: rest -> strip (a :: acc) rest
    in
    strip [] args
  in
  let quick = List.exists (fun a -> a = "--quick" || a = "-q") args in
  let smoke = List.exists (fun a -> a = "--smoke") args in
  let perf_smoke = List.exists (fun a -> a = "--perf-smoke") args in
  let fault_smoke = List.exists (fun a -> a = "--fault-smoke") args in
  let selectors =
    List.filter
      (fun a ->
        a <> "--quick" && a <> "-q" && a <> "--" && a <> "--smoke"
        && a <> "--perf-smoke" && a <> "--fault-smoke")
      args
    |> List.map String.lowercase_ascii
  in
  let micro_only = selectors = [ "micro" ] in
  let want id =
    selectors = []
    || List.mem (String.lowercase_ascii id) selectors
  in
  if smoke then run_smoke ()
  else if perf_smoke then run_perf_smoke ()
  else if fault_smoke then run_fault_smoke ()
  else if micro_only then run_bechamel ()
  else begin
    if selectors = [] then run_bechamel ();
    List.iter
      (fun exp ->
        if want exp.Forkroad.Report.exp_id then run_experiment ~quick exp)
      Forkroad.Registry.all;
    (match
       List.filter
         (fun s ->
           s <> "micro"
           && not
                (List.exists
                   (fun e ->
                     String.lowercase_ascii e.Forkroad.Report.exp_id = s)
                   Forkroad.Registry.all))
         selectors
     with
    | [] -> ()
    | unknown ->
      Printf.eprintf "unknown experiment(s): %s\nknown: %s\n"
        (String.concat ", " unknown)
        (String.concat ", " Forkroad.Registry.ids);
      exit 2)
  end
