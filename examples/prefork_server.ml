(* prefork_server: the classic prefork worker pool -- one of the few
   fork idioms the paper concedes is legitimate -- running on the ksim
   simulator.

     dune exec examples/prefork_server.exe

   A master opens a request pipe and a response pipe and starts N
   workers that all read from the shared request pipe, so the kernel
   load-balances them naturally. Messages are fixed-size (8 bytes) so
   concurrent reads are atomic, as real prefork accept/read loops rely
   on. The pool is built twice:

   - with fork: workers inherit every master fd implicitly, and must
     carefully close the ones they should not hold (the leaked-write-end
     bug this avoids is exactly the composition hazard the paper
     describes);
   - with posix_spawn: the two fds each worker needs are wired
     explicitly with file actions, everything else is close-on-exec, and
     there is nothing to forget.

   The same idiom then runs on the real OS through Spawnlib.Pool, which
   packages the whole pattern -- explicit fd wiring, warm-up, round-robin
   dispatch, crash-respawn under a retry policy -- behind submit/shutdown,
   so applications stop hand-rolling the pipe plumbing above. *)

let workers = 3
let requests = 12
let msg_len = 8

let ok = function
  | Ok v -> v
  | Error e -> failwith ("prefork_server: " ^ Ksim.Errno.to_string e)

let pad s =
  if String.length s > msg_len then String.sub s 0 msg_len
  else s ^ String.make (msg_len - String.length s) '.'

let quit_msg = pad "quit"

(* Fixed-size messages make concurrent reads atomic: writers emit whole
   multiples of [msg_len], so a read of [msg_len] never splits a
   message. *)
let read_msg fd =
  let rec go acc =
    let need = msg_len - String.length acc in
    if need = 0 then Some acc
    else
      match ok (Ksim.Api.read fd need) with
      | "" -> if acc = "" then None else Some (pad acc)
      | chunk -> go (acc ^ chunk)
  in
  go ""

let process payload = String.uppercase_ascii payload

let worker_loop ~id ~req_r ~resp_w () =
  let rec serve served =
    match read_msg req_r with
    | None -> finish served
    | Some msg when msg = quit_msg -> finish served
    | Some payload ->
      ok (Ksim.Api.write_all resp_w (pad (Printf.sprintf "w%d:%s" id (process (String.sub payload 0 3)))));
      serve (served + 1)
  and finish served =
    ok (Ksim.Api.write_all resp_w (pad (Printf.sprintf "w%d=%d" id served)));
    Ksim.Api.exit 0
  in
  serve 0

(* The worker as a standalone program for the spawn-based pool: fd 3 is
   the request pipe, fd 4 the response pipe (wired by file actions). *)
let worker_prog =
  Ksim.Program.make ~name:"/bin/pool-worker" (fun ~argv () ->
      let id = match argv with s :: _ -> int_of_string s | [] -> 0 in
      worker_loop ~id ~req_r:3 ~resp_w:4 ())

let drive ~label ~make_worker () =
  Ksim.Api.print
    (Printf.sprintf "--- %s pool: %d workers, %d requests ---\n" label workers
       requests);
  let req_r, req_w = ok (Ksim.Api.pipe ()) in
  let resp_r, resp_w = ok (Ksim.Api.pipe ()) in
  let pids = List.init workers (fun i -> make_worker ~id:i ~req_r ~req_w ~resp_r ~resp_w) in
  (* the master keeps only its own ends *)
  ok (Ksim.Api.close req_r);
  ok (Ksim.Api.close resp_w);
  for i = 1 to requests do
    ok (Ksim.Api.write_all req_w (pad (Printf.sprintf "r%02d" i)))
  done;
  for _ = 1 to workers do
    ok (Ksim.Api.write_all req_w quit_msg)
  done;
  ok (Ksim.Api.close req_w);
  let rec collect answers tallies =
    match read_msg resp_r with
    | None -> (answers, List.rev tallies)
    | Some msg ->
      if String.contains msg '=' then collect answers (msg :: tallies)
      else collect (answers + 1) tallies
  in
  let answers, tallies = collect 0 [] in
  List.iter (fun pid -> ignore (ok (Ksim.Api.wait_for pid))) pids;
  ok (Ksim.Api.close resp_r);
  Ksim.Api.print (Printf.sprintf "answers received: %d\n" answers);
  List.iter (fun t -> Ksim.Api.print ("  load " ^ String.trim t ^ "\n")) tallies

let master () =
  (* 1: fork-based pool; each worker must drop the fds it should not
     hold, or the pipes never reach EOF *)
  drive ~label:"fork"
    ~make_worker:(fun ~id ~req_r ~req_w ~resp_r ~resp_w ->
      ok
        (Ksim.Api.fork ~child:(fun () ->
             ok (Ksim.Api.close req_w);
             ok (Ksim.Api.close resp_r);
             worker_loop ~id ~req_r ~resp_w ())))
    ();
  (* 2: spawn-based pool; the master marks its pipe fds close-on-exec so
     workers receive exactly the two descriptors wired by file actions *)
  drive ~label:"posix_spawn"
    ~make_worker:(fun ~id ~req_r ~req_w ~resp_r ~resp_w ->
      List.iter (fun fd -> ok (Ksim.Api.set_cloexec fd true))
        [ req_r; req_w; resp_r; resp_w ];
      ok
        (Ksim.Api.spawn
           ~file_actions:
             [ Ksim.Types.Fa_dup2 (req_r, 3); Ksim.Types.Fa_dup2 (resp_w, 4) ]
           ~argv:[ string_of_int id ] "/bin/pool-worker"))
    ();
  Ksim.Api.print "done.\n"

(* 3: the real OS, via Spawnlib.Pool. Workers are shell loops (read and
   echo are unbuffered builtins, so one request line yields one reply
   line); the library owns the fd wiring, the warm-up exchange, and
   crash-respawn -- demonstrated by killing a worker mid-run. *)
let real_pool () =
  Printf.printf "--- Spawnlib.Pool (real OS): %d workers, %d requests ---\n"
    workers requests;
  let pool_ok = function
    | Ok v -> v
    | Error e -> failwith ("prefork_server: " ^ Spawnlib.Pool.error_message e)
  in
  let pool =
    pool_ok
      (Spawnlib.Pool.create
         ~warmup:(fun ~send ~recv ->
           send "warmup";
           ignore (recv ()))
         ~size:workers ~prog:"/bin/sh"
         ~argv:
           [ "sh"; "-c"; "while read line; do echo \"worker-$$: $line\"; done" ]
         ())
  in
  for i = 1 to requests do
    Printf.printf "  %s\n" (pool_ok (Spawnlib.Pool.submit pool (Printf.sprintf "r%02d" i)))
  done;
  (* crash one worker; the pool reaps, respawns and still answers *)
  Unix.kill (List.hd (Spawnlib.Pool.pids pool)) Sys.sigkill;
  Unix.sleepf 0.05;
  for i = 1 to workers do
    Printf.printf "  %s\n"
      (pool_ok (Spawnlib.Pool.submit pool (Printf.sprintf "post-crash-%d" i)))
  done;
  let st = Spawnlib.Pool.stats pool in
  Printf.printf "served=%d spawned=%d respawns=%d\n" st.Spawnlib.Pool.served
    st.Spawnlib.Pool.spawned st.Spawnlib.Pool.respawns;
  ignore (Spawnlib.Pool.shutdown pool);
  print_endline "done."

let () =
  let init = Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () -> master ()) in
  (match Ksim.Kernel.boot ~programs:[ init; worker_prog ] "/sbin/init" with
  | Error e -> prerr_endline ("boot failed: " ^ Ksim.Errno.to_string e)
  | Ok (t, outcome) ->
    print_string (Ksim.Kernel.console t);
    Format.printf "simulation outcome: %a@." Ksim.Kernel.pp_outcome outcome);
  real_pool ()
