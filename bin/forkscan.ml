(* forkscan — survey and lint process-creation in real C trees.

     forkscan [scan] path/to/source [more/paths...]   count call sites
     forkscan lint path/to/source [--format=json]     fork-hazard lint

   The scan subcommand counts creation-API call sites with the same
   scanner the E7 survey uses; lint runs the forklint rule registry
   (see DESIGN.md "forklint rules") and exits 1 on any Error finding,
   2 when an explicitly given path cannot be read. *)

open Cmdliner

let paths_arg =
  let doc = "Files or directories to scan (.c/.h/.cc/.cpp/.hh)." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)

(* ------------------------------------------------------------------ *)
(* Shared: skipped-file reporting *)

let report_skipped skipped =
  List.iter
    (fun (path, msg) -> Printf.eprintf "forkscan: skipped %s: %s\n" path msg)
    skipped

(* A skip of one of the paths the user named (as opposed to a file met
   during the walk) is a hard error. *)
let explicit_failure paths skipped =
  List.exists (fun p -> List.mem_assoc p skipped) paths

(* ------------------------------------------------------------------ *)
(* scan *)

let top_arg =
  let doc = "Also list the $(docv) files with the most creation-API call sites." in
  Arg.(value & opt int 0 & info [ "top" ] ~docv:"N" ~doc)

let print_top n paths =
  if n > 0 then begin
    let per_file = List.concat_map Forklore.Scanner.scan_directory_files paths in
    let ranked =
      List.filter (fun (_, r) -> Forklore.Scanner.total_hits r > 0) per_file
      |> List.sort (fun (_, a) (_, b) ->
             compare (Forklore.Scanner.total_hits b) (Forklore.Scanner.total_hits a))
    in
    let table =
      Metrics.Table.create ~align:[ Metrics.Table.Left ] [ "file"; "call sites" ]
    in
    List.iteri
      (fun i (path, r) ->
        if i < n then
          Metrics.Table.add_row table
            [ path; string_of_int (Forklore.Scanner.total_hits r) ])
      ranked;
    Printf.printf "\ntop files:\n%s" (Metrics.Table.render table)
  end

let scan top paths =
  let table =
    Metrics.Table.create ~align:[ Metrics.Table.Left ] [ "API"; "call sites" ]
  in
  let totals = Hashtbl.create 8 in
  let files = ref 0 and lines = ref 0 in
  let skipped = ref [] in
  List.iter
    (fun path ->
      let report = Forklore.Scanner.scan_directory path in
      files := !files + report.Forklore.Scanner.files_scanned;
      lines := !lines + report.Forklore.Scanner.total_lines;
      skipped := !skipped @ report.Forklore.Scanner.skipped;
      List.iter
        (fun (api, n) ->
          Hashtbl.replace totals api
            (n + Option.value ~default:0 (Hashtbl.find_opt totals api)))
        report.Forklore.Scanner.total)
    paths;
  List.iter
    (fun api ->
      Metrics.Table.add_row table
        [
          Forklore.Api.name api;
          string_of_int (Option.value ~default:0 (Hashtbl.find_opt totals api));
        ])
    Forklore.Api.all;
  Printf.printf "scanned %d files, %s lines\n%s" !files
    (Metrics.Units.count (float_of_int !lines))
    (Metrics.Table.render table);
  print_top top paths;
  report_skipped !skipped;
  if explicit_failure paths !skipped then 2 else 0

(* ------------------------------------------------------------------ *)
(* lint *)

let format_arg =
  let doc =
    "Output format: $(b,text), $(b,json) (forklint's own report shape) or \
     $(b,sarif) (SARIF 2.1.0, for CI code-scanning upload)."
  in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let rules_arg =
  let doc =
    "Comma-separated rule ids to run (default: every registered rule)."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let c_extensions = [ ".c"; ".h"; ".cc"; ".cpp"; ".hh" ]

(* every lintable file under [path], plus read failures *)
let collect_files path =
  let files = ref [] and skipped = ref [] in
  let want p =
    List.exists (fun ext -> Filename.check_suffix p ext) c_extensions
  in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error msg -> skipped := (dir, msg) :: !skipped
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let p = Filename.concat dir entry in
          if Sys.is_directory p then walk p else if want p then files := p :: !files)
        entries
  in
  (match Sys.is_directory path with
  | true -> walk path
  | false -> files := path :: !files
  | exception Sys_error msg -> skipped := (path, msg) :: !skipped);
  (List.rev !files, List.rev !skipped)

let resolve_rules = function
  | None -> Ok Forklore.Rules.all
  | Some spec ->
    let ids = String.split_on_char ',' spec |> List.map String.trim in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | id :: rest -> (
        match Forklore.Rules.find id with
        | Some r -> go (r :: acc) rest
        | None -> Error id)
    in
    go [] ids

let lint format rules_spec paths =
  match resolve_rules rules_spec with
  | Error id ->
    Printf.eprintf "forkscan lint: unknown rule %s (known: %s)\n" id
      (String.concat ", " (List.map (fun r -> r.Forklore.Rules.id) Forklore.Rules.all));
    2
  | Ok rules ->
    let skipped = ref [] in
    let findings = ref [] in
    List.iter
      (fun path ->
        let files, skips = collect_files path in
        skipped := !skipped @ skips;
        List.iter
          (fun file ->
            match Forklore.Rules.check_file ~rules file with
            | Ok ds -> findings := !findings @ ds
            | Error msg -> skipped := !skipped @ [ (file, msg) ])
          files)
      paths;
    let findings = List.sort Forklore.Diagnostic.compare !findings in
    (match format with
    | `Json -> print_string (Forklore.Diagnostic.report_to_json findings)
    | `Sarif -> print_string (Forklore.Sarif.report ~rules findings)
    | `Text ->
      List.iter
        (fun d -> Format.printf "%a@." Forklore.Diagnostic.pp d)
        findings;
      Format.printf "%d error(s), %d warning(s), %d info(s)@."
        (Forklore.Diagnostic.count Forklore.Diagnostic.Error findings)
        (Forklore.Diagnostic.count Forklore.Diagnostic.Warn findings)
        (Forklore.Diagnostic.count Forklore.Diagnostic.Info findings));
    report_skipped !skipped;
    if explicit_failure paths !skipped then 2
    else if List.exists Forklore.Diagnostic.is_error findings then 1
    else 0

(* ------------------------------------------------------------------ *)

let scan_term = Term.(const scan $ top_arg $ paths_arg)

let scan_cmd =
  let doc = "count process-creation call sites in C source" in
  Cmd.v (Cmd.info "scan" ~doc) scan_term

let lint_cmd =
  let doc = "lint C source for the paper's fork hazards" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the forklint rule registry over every C file reachable from \
         PATH. Each finding carries a $(b,file:line:col) span, the paper \
         section the rule operationalises and a fix hint naming the \
         spawn-based alternative.";
      `P
        "Exit status: 0 clean (or warnings only), 1 on any Error-severity \
         finding, 2 when a named path cannot be read or a rule id is \
         unknown.";
    ]
  in
  Cmd.v (Cmd.info "lint" ~doc ~man) Term.(const lint $ format_arg $ rules_arg $ paths_arg)

let () =
  let doc = "survey and lint process-creation in C source" in
  let info = Cmd.info "forkscan" ~version:"1.1.0" ~doc in
  exit (Cmd.eval' (Cmd.group ~default:scan_term info [ scan_cmd; lint_cmd ]))
