(* forkbench — run the forkroad experiments from the command line.

     forkbench list
     forkbench run F1-SIM E3 --quick
     forkbench run fig1-sim --json out.json
     forkbench all
     forkbench stat fig1-sim --trace trace.json *)

open Cmdliner

let quick_flag =
  Arg.(value & flag & info [ "quick"; "q" ] ~doc:"Reduced sample counts/sweeps.")

let format_arg =
  let formats = [ ("text", `Text); ("csv", `Csv) ] in
  Arg.(
    value
    & opt (enum formats) `Text
    & info [ "format"; "f" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) (tables + ASCII charts) or $(b,csv) \
              (machine-readable, for plotting).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write the report(s) as JSON (every block, including the \
           machine-readable data blocks) to $(docv).")

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let experiment_json exp report =
  Metrics.Json.obj
    [
      ("exp", Metrics.Json.str exp.Forkroad.Report.exp_id);
      ("slug", Metrics.Json.str (Forkroad.Registry.slug exp));
      ( "kind",
        Metrics.Json.str
          (Forkroad.Report.kind_string exp.Forkroad.Report.exp_kind) );
      ("claim", Metrics.Json.str exp.Forkroad.Report.paper_claim);
      ("report", Forkroad.Report.to_json report);
    ]

let run_experiments ~quick ~format ~json exps =
  let reports =
    List.map
      (fun exp ->
        let report = exp.Forkroad.Report.run ~quick in
        (match format with
        | `Csv -> print_string (Forkroad.Report.render_csv report)
        | `Text ->
          print_string (Forkroad.Report.render report);
          Printf.printf "paper claim: %s\n\n" exp.Forkroad.Report.paper_claim);
        experiment_json exp report)
      exps
  in
  match json with
  | None -> ()
  | Some path ->
    write_file path
      (Metrics.Json.to_string ~indent:2 (Metrics.Json.arr reports) ^ "\n");
    Printf.eprintf "wrote %s\n%!" path

let list_cmd =
  let doc = "List experiments (id, title, paper claim)." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-7s %s\n        claim: %s\n" e.Forkroad.Report.exp_id
          e.Forkroad.Report.exp_title e.Forkroad.Report.paper_claim)
      Forkroad.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let ids_arg =
  let doc = "Experiment ids (see $(b,forkbench list))." in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)

let run_cmd =
  let doc = "Run selected experiments." in
  let run quick format json ids =
    let missing, found =
      List.partition_map
        (fun id ->
          match Forkroad.Registry.find id with
          | Some e -> Right e
          | None -> Left id)
        ids
    in
    match missing with
    | [] ->
      run_experiments ~quick ~format ~json found;
      `Ok ()
    | _ ->
      `Error
        ( false,
          Printf.sprintf "unknown experiment(s): %s (known: %s)"
            (String.concat ", " missing)
            (String.concat ", " Forkroad.Registry.ids) )
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret (const run $ quick_flag $ format_arg $ json_arg $ ids_arg))

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run quick format json =
    run_experiments ~quick ~format ~json Forkroad.Registry.all
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const run $ quick_flag $ format_arg $ json_arg)

let stat_cmd =
  let doc =
    "Run a canned simulator scenario and print where the cycles went: \
     per-subsystem and per-category cost breakdowns, kernel counters \
     (kstat) and a syscall-latency histogram."
  in
  let scenario_arg =
    let keys = String.concat ", " (List.map fst Forkroad.Stat_driver.scenarios) in
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:(Printf.sprintf "Scenario to profile (one of: %s)." keys))
  in
  let cpus_arg =
    Arg.(
      value & opt int 1
      & info [ "cpus" ] ~docv:"N"
          ~doc:
            "Simulated CPU count. With $(docv) > 1 the scenario boots the \
             SMP kernel and the report adds a per-CPU counter table and the \
             shootdown-fanout histogram.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the run's span trace in Chrome trace_event format to \
             $(docv) (load in Perfetto or about://tracing).")
  in
  let lanes_arg =
    Arg.(
      value
      & opt (enum [ ("pid", `Pid); ("cpu", `Cpu) ]) `Pid
      & info [ "lanes" ] ~docv:"LANES"
          ~doc:
            "Row grouping for the $(b,--trace) export: $(b,pid) (one lane \
             per process, the default) or $(b,cpu) (one lane per simulated \
             CPU — shows placement, steals and migrations).")
  in
  let jsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Write the run's span trace as JSON-lines to $(docv).")
  in
  let flame_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Write a folded-stack flamegraph (process tree $(i,x) subsystem \
             groups; feed to flamegraph.pl or speedscope) to $(docv), or \
             stdout when $(docv) is $(b,-).")
  in
  let critical_path_flag =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "Also print the critical-path report: the chain of processes \
             bounding end-to-end simulated time.")
  in
  let run scenario cpus json trace lanes jsonl flame critical_path =
    match scenario with
    | None ->
      Printf.printf "available scenarios:\n";
      List.iter
        (fun (k, d) -> Printf.printf "  %-10s %s\n" k d)
        Forkroad.Stat_driver.scenarios;
      `Ok ()
    | Some key -> (
      match Forkroad.Stat_driver.run ~cpus key with
      | None ->
        `Error
          ( false,
            Printf.sprintf "unknown scenario %S (known: %s)" key
              (String.concat ", "
                 (List.map fst Forkroad.Stat_driver.scenarios)) )
      | Some { Forkroad.Stat_driver.report; trace = tr; machine } ->
        print_string (Forkroad.Report.render report);
        let tree = lazy (Profile.Span_tree.build machine) in
        if critical_path then
          print_string (Profile.Critical_path.render (Lazy.force tree) ^ "\n");
        (match flame with
        | None -> ()
        | Some "-" -> print_string (Profile.Folded.render (Lazy.force tree))
        | Some path ->
          write_file path (Profile.Folded.render (Lazy.force tree));
          Printf.eprintf "wrote %s\n%!" path);
        (match json with
        | None -> ()
        | Some path ->
          write_file path
            (Metrics.Json.to_string ~indent:2 (Forkroad.Report.to_json report)
            ^ "\n");
          Printf.eprintf "wrote %s\n%!" path);
        (match trace with
        | None -> ()
        | Some path ->
          write_file path
            (Metrics.Json.to_string (Ksim.Trace.to_chrome ~lanes tr) ^ "\n");
          Printf.eprintf "wrote %s\n%!" path);
        (match jsonl with
        | None -> ()
        | Some path ->
          write_file path (Ksim.Trace.to_jsonl tr);
          Printf.eprintf "wrote %s\n%!" path);
        `Ok ())
  in
  Cmd.v (Cmd.info "stat" ~doc)
    Term.(
      ret
        (const run $ scenario_arg $ cpus_arg $ json_arg $ trace_arg
       $ lanes_arg $ jsonl_arg $ flame_arg $ critical_path_flag))

let () =
  let doc = "reproduce the evaluation of 'A fork() in the road' (HotOS'19)" in
  let info = Cmd.info "forkbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; stat_cmd ]))
