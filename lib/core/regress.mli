(** Perf-regression gate: diff freshly produced [BENCH_*.json] reports
    against a committed baseline directory.

    The comparison knows which numbers are {e simulated} (deterministic,
    must be bit-identical) and which are {e measured} (wall-clock on the
    host, compared with a noise-aware, slowdown-only tolerance):

    - top-level identity ([exp], [slug], [title], [kind], [claim]) and
      [params.quick] must match exactly; [params.jobs] is ignored;
    - [Figure] blocks: series labels, point counts and every x/y value
      must be exactly equal — figures carry simulator output only;
    - [Data] blocks: deep-exact, except fields named [harness_wall_ms]
      or ending in [wall_ms], which get the wall tolerance;
    - [Table] blocks: structure only (caption, headers, row count) —
      table cells may hold real-OS measurements;
    - [Note] blocks: caption-only prose, skipped entirely;
    - a baseline file with no counterpart in the current directory is a
      regression (an experiment silently vanished).

    Wall tolerance is slowdown-only: current [c] vs baseline [b] fails
    iff [c > max (b *. wall_factor) (b +. wall_slack_ms)].  Speedups
    never fail the gate. *)

type tolerance = {
  wall_factor : float;  (** allowed multiplicative slowdown (default 3.0) *)
  wall_slack_ms : float;
      (** absolute slack for tiny baselines, in the unit of the compared
          field — milliseconds everywhere today (default 500.0) *)
}

val default_tolerance : tolerance

type finding = {
  file : string;  (** report file name, e.g. ["BENCH_cowtax.json"] *)
  path : string;  (** JSON path of the offending value *)
  message : string;
}

val finding_to_string : finding -> string

val compare_reports :
  ?tol:tolerance ->
  file:string ->
  baseline:Metrics.Json.t ->
  current:Metrics.Json.t ->
  unit ->
  finding list
(** Pure comparison of two parsed reports; order of findings follows
    document order of the baseline. *)

val compare_dirs :
  ?tol:tolerance -> baseline:string -> current:string -> unit -> finding list
(** Compare every [BENCH_*.json] in [baseline] against the same file
    name in [current].  Unreadable or unparsable files yield findings
    rather than exceptions. *)

val report_to_json : finding list -> Metrics.Json.t
(** [{"regressions": N, "findings": [{"file","path","message"}...]}] *)
