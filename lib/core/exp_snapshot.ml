(* E11 (ablation) — the snapshot idiom: fork's one killer feature is a
   cheap point-in-time copy (Redis BGSAVE). What does it actually cost?

   Two components, per parent size and copy mechanism:
   - the creation pause (parent blocked inside fork);
   - the deferred COW tax the parent pays re-dirtying its pages while
     the snapshot child is still alive. *)

let ok_or_die = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_snapshot: " ^ Ksim.Errno.to_string e)

(* Parent's cost of re-writing its whole footprint while a snapshot
   child holds the shared pages. *)
let redirty_cost ~eager ~heap_mib =
  let total = Workload.Sweep.bytes_of_mib heap_mib in
  let config = Sim_driver.config_for ~heap_mib in
  let scenario ~redirty () =
    let addr = ok_or_die (Ksim.Api.mmap ~len:total ~perm:Vmem.Perm.rw) in
    ignore (ok_or_die (Ksim.Api.touch ~addr ~len:total));
    let r, w = ok_or_die (Ksim.Api.pipe ()) in
    let fork = if eager then Ksim.Api.fork_eager else Ksim.Api.fork in
    let pid =
      ok_or_die
        (fork ~child:(fun () ->
             (* the snapshot child holds the pages until released *)
             ignore (Ksim.Api.read r 1);
             Ksim.Api.exit 0))
    in
    if redirty then ignore (ok_or_die (Ksim.Api.touch ~addr ~len:total));
    ignore (ok_or_die (Ksim.Api.write w "x"));
    ignore (ok_or_die (Ksim.Api.wait_for pid))
  in
  let with_dirty = Sim_driver.run_scenario ~config (scenario ~redirty:true) in
  let base = Sim_driver.run_scenario ~config (scenario ~redirty:false) in
  Vmem.Cost.cycles_to_ns (with_dirty.Sim_driver.cycles -. base.Sim_driver.cycles)

let run ~quick =
  let sizes = if quick then [ 16; 64 ] else [ 16; 64; 256 ] in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Right; Metrics.Table.Left ]
      [ "MiB"; "mechanism"; "creation pause"; "re-dirty during snapshot" ]
  in
  List.iter
    (fun mib ->
      List.iter
        (fun (label, strategy, eager) ->
          let pause =
            (Sim_driver.creation_cost ~strategy ~heap_mib:mib ()).Sim_driver.ns
          in
          let redirty = redirty_cost ~eager ~heap_mib:mib in
          Metrics.Table.add_row table
            [
              string_of_int mib;
              label;
              Metrics.Units.ns pause;
              Metrics.Units.ns redirty;
            ])
        [
          ("fork (COW)", Strategy.Fork_only, false);
          ("fork (eager)", Strategy.Fork_eager, true);
        ])
    sizes;
  Report.make ~id:"E11" ~title:"ablation: the snapshot idiom's real price"
    [
      Report.Table
        { caption = "parent-side costs of a point-in-time snapshot"; table };
      Report.Note
        "COW keeps the pause small but defers a copy per page the parent \
         re-dirties while the snapshot lives (write fault + page copy + \
         invlpg each); eager copying moves the entire cost into the pause. \
         This is the one workload where fork's semantics genuinely earn \
         their keep -- the paper's position is that it deserves a \
         dedicated snapshot API rather than fork. See \
         examples/snapshot_server.exe for the consistency property \
         itself.";
    ]

let experiment =
  {
    Report.exp_id = "E11";
    exp_title = "ablation: the snapshot idiom's real price";
    paper_claim =
      "COW snapshots are fork's remaining legitimate use; the cost \
       structure (small pause, deferred per-page tax) argues for a \
       dedicated API, not for keeping fork";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
