type measurement = {
  cycles : float;
  ns : float;
  breakdown : (string * float) list;
  groups : (string * float) list;
  counters : (string * int) list;
  console : string;
  outcome : Ksim.Kernel.outcome;
  tlb : Vmem.Tlb.stats;
}

(* Subsystem grouping now lives in Profile.Subsys (the profiler needs
   it per-pid, not just per-sweep-point); these aliases keep the public
   Sim_driver API unchanged. *)
let group_order = Profile.Subsys.group_order
let groups_of_breakdown = Profile.Subsys.groups_of_breakdown

let true_prog =
  Ksim.Program.make ~name:"/bin/true" (fun ~argv:_ () -> Ksim.Api.exit 0)

(* Like {!run_scenario} but hands back the booted machine, for callers
   that harvest state the measurement record doesn't carry (trace spans,
   fault-injection counts, per-pid kstat). *)
let boot_scenario ?config ?(programs = []) body =
  let init = Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () -> body ()) in
  match
    Ksim.Kernel.boot ?config ~programs:(init :: true_prog :: programs)
      "/sbin/init"
  with
  | Error e ->
    invalid_arg ("Sim_driver.run_scenario: boot failed: " ^ Ksim.Errno.to_string e)
  | Ok (t, outcome) -> (t, outcome)

let run_scenario ?config ?programs body =
  let t, outcome = boot_scenario ?config ?programs body in
  let cost = Ksim.Kernel.cost t in
  let cycles = Vmem.Cost.total cost in
  let breakdown = Vmem.Cost.by_category cost in
  {
    cycles;
    ns = Vmem.Cost.cycles_to_ns cycles;
    breakdown;
    groups = groups_of_breakdown breakdown;
    counters = Ksim.Kstat.snapshot (Ksim.Kstat.global (Ksim.Kernel.kstat t));
    console = Ksim.Kernel.console t;
    outcome;
    tlb = Vmem.Tlb.stats (Ksim.Kernel.tlb t);
  }

let config_for ~heap_mib =
  {
    Ksim.Kernel.default_config with
    Ksim.Kernel.phys_pages =
      (2 * Workload.Sweep.pages_of_mib (max 1 heap_mib)) + 65536;
    commit_policy = Vmem.Frame.Overcommit;
    aslr = false;
  }

let with_footprint ~heap_mib ~vmas () =
  if heap_mib > 0 then begin
    let total = Workload.Sweep.bytes_of_mib heap_mib in
    let per_vma = Vmem.Addr.align_up (total / vmas) in
    for _ = 1 to vmas do
      match Ksim.Api.mmap ~len:per_vma ~perm:Vmem.Perm.rw with
      | Error e ->
        invalid_arg ("Sim_driver.with_footprint: mmap: " ^ Ksim.Errno.to_string e)
      | Ok addr -> (
        match Ksim.Api.touch ~addr ~len:per_vma with
        | Ok _ -> ()
        | Error e ->
          invalid_arg
            ("Sim_driver.with_footprint: touch: " ^ Ksim.Errno.to_string e))
    done
  end

let ok_or_die what = function
  | Ok v -> v
  | Error e -> invalid_arg ("Sim_driver: " ^ what ^ ": " ^ Ksim.Errno.to_string e)

let create_and_wait strategy =
  let wait pid = ignore (ok_or_die "wait" (Ksim.Api.wait_for pid)) in
  match (strategy : Strategy.t) with
  | Strategy.Fork_exec ->
    let pid =
      ok_or_die "fork"
        (Ksim.Api.fork ~child:(fun () ->
             (match Ksim.Api.exec "/bin/true" with Ok () | Error _ -> ());
             Ksim.Api.exit 127))
    in
    wait pid
  | Strategy.Fork_only ->
    wait (ok_or_die "fork" (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)))
  | Strategy.Fork_eager ->
    wait
      (ok_or_die "fork_eager"
         (Ksim.Api.fork_eager ~child:(fun () -> Ksim.Api.exit 0)))
  | Strategy.Vfork_exec ->
    let pid =
      ok_or_die "vfork"
        (Ksim.Api.vfork ~child:(fun () ->
             (match Ksim.Api.exec "/bin/true" with Ok () | Error _ -> ());
             Ksim.Api.exit 127))
    in
    wait pid
  | Strategy.Posix_spawn ->
    wait (ok_or_die "spawn" (Ksim.Api.spawn "/bin/true"))
  | Strategy.Builder ->
    wait (ok_or_die "builder" (Procbuilder.spawn_minimal "/bin/true"))

(* The no-creation base run depends only on (heap_mib, vmas), not on the
   strategy, and boots are deterministic (ASLR off, fixed scheduler
   seed), so each domain computes it once per footprint and reuses the
   measurement across strategies — same numbers, a third fewer boots. *)
let base_cache :
    (int * int, measurement) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let creation_cost ?(vmas = 1) ~strategy ~heap_mib () =
  let config = config_for ~heap_mib in
  let scenario ~create () =
    with_footprint ~heap_mib ~vmas ();
    if create then create_and_wait strategy
  in
  let with_op = run_scenario ~config (scenario ~create:true) in
  let base =
    let tbl = Domain.DLS.get base_cache in
    match Hashtbl.find_opt tbl (heap_mib, vmas) with
    | Some m -> m
    | None ->
      let m = run_scenario ~config (scenario ~create:false) in
      Hashtbl.add tbl (heap_mib, vmas) m;
      m
  in
  let cycles = with_op.cycles -. base.cycles in
  (* ASLR is off and the runs are deterministic, so the base run's
     charges are a subset of the with-op run's: dropping only exact-zero
     deltas keeps sum(breakdown) = sum(groups) = headline cycles. *)
  let breakdown =
    List.filter_map
      (fun (cat, c) ->
        let base_c =
          Option.value ~default:0.0 (List.assoc_opt cat base.breakdown)
        in
        let d = c -. base_c in
        if d > 0.0 then Some (cat, d) else None)
      with_op.breakdown
  in
  {
    with_op with
    cycles;
    ns = Vmem.Cost.cycles_to_ns cycles;
    breakdown;
    groups = groups_of_breakdown breakdown;
    counters =
      List.filter_map
        (fun (k, n) ->
          let base_n =
            Option.value ~default:0 (List.assoc_opt k base.counters)
          in
          let d = n - base_n in
          if d <> 0 then Some (k, d) else None)
        with_op.counters;
  }
