(* E13 — process creation under memory pressure: as the parent's
   footprint eats the machine, which creation APIs keep working, and
   what do their latency tails look like? Under strict commit accounting
   fork must re-commit the parent's entire footprint for the child, so
   it is the first API to go unusable (the paper's E6 knot, here as a
   pressure curve); vfork borrows the parent's space and spawn commits
   only the fresh image, so both survive long after fork has died.

   A second table exercises the fault-injection + retry half of the
   machinery: an injected transient EAGAIN kills a bare spawn but is
   absorbed by the bounded-backoff retry policy, because ksim's
   error paths roll back and report errnos synchronously. *)

let phys_pages = 65_536 (* 256 MiB machine *)
let page = Vmem.Addr.page_size

type api = Fork | Vfork | Spawn

let api_name = function Fork -> "fork" | Vfork -> "vfork" | Spawn -> "spawn"

(* The trace span name each API's creation syscall ends with. *)
let span_name = function
  | Fork -> "fork"
  | Vfork -> "vfork"
  | Spawn -> "posix_spawn"

let create_once = function
  | Fork -> Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)
  | Vfork -> Ksim.Api.vfork ~child:(fun () -> Ksim.Api.exit 0)
  | Spawn -> Ksim.Api.spawn "/bin/true"

let config =
  {
    Ksim.Kernel.default_config with
    Ksim.Kernel.phys_pages;
    commit_policy = Vmem.Frame.Strict;
    aslr = false;
    trace_capacity = Some 16_384;
  }

let ok_or_die what = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_pressure: " ^ what ^ ": " ^ Ksim.Errno.to_string e)

(* One boot per (footprint fraction, api): the parent maps and touches
   [fraction] of physical memory, then attempts [attempts] creations.
   Every attempt's latency and errno land in the trace; failures leave
   the parent intact (that is the rollback invariant), so attempt i+1
   measures the same machine state as attempt i. *)
let pressure_point ~attempts ~fraction api =
  let t, _outcome =
    Sim_driver.boot_scenario ~config (fun () ->
        let len = page * int_of_float (fraction *. float_of_int phys_pages) in
        if len > 0 then begin
          let addr = ok_or_die "mmap" (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw) in
          ignore (ok_or_die "touch" (Ksim.Api.touch ~addr ~len))
        end;
        for _ = 1 to attempts do
          match create_once api with
          | Ok pid -> ignore (ok_or_die "wait" (Ksim.Api.wait_for pid))
          | Error _ -> ()
        done)
  in
  let tr = Option.get (Ksim.Kernel.trace t) in
  let ends =
    List.filter
      (fun (e : Ksim.Trace.event) ->
        e.Ksim.Trace.phase = Ksim.Trace.End
        && e.Ksim.Trace.what = span_name api
        && e.Ksim.Trace.pid = 1)
      (Ksim.Trace.events tr)
  in
  let ok_ns =
    List.filter_map
      (fun (e : Ksim.Trace.event) ->
        match e.Ksim.Trace.outcome with
        | Some Ksim.Trace.Ok_result -> Some e.Ksim.Trace.span_ns
        | Some (Ksim.Trace.Err _) | None -> None)
      ends
  in
  let first_errno =
    List.find_map
      (fun (e : Ksim.Trace.event) ->
        match e.Ksim.Trace.outcome with
        | Some (Ksim.Trace.Err errno) -> Some errno
        | Some Ksim.Trace.Ok_result | None -> None)
      ends
  in
  (List.length ok_ns, ok_ns, first_errno)

(* The retry demonstration: the schedule fails the first pb_create, so a
   bare builder spawn dies with EAGAIN while the retrying one backs off
   (in simulated time) and succeeds on the second attempt. *)
let retry_demo ~retry =
  let fault =
    {
      Ksim.Fault.seed = 7;
      triggers =
        [
          Ksim.Fault.Syscall_nth
            { kind = "pb_create"; nth = 1; errno = Ksim.Errno.EAGAIN };
        ];
    }
  in
  let config = { config with Ksim.Kernel.fault = Some fault } in
  let result = ref (Error Ksim.Errno.EINVAL) in
  let t, _ =
    Sim_driver.boot_scenario ~config (fun () ->
        let r =
          if retry then Procbuilder.spawn_retrying "/bin/true"
          else Procbuilder.spawn_minimal "/bin/true"
        in
        result := r;
        match r with
        | Ok pid -> ignore (Ksim.Api.wait_for pid)
        | Error _ -> ())
  in
  let injected =
    match Ksim.Kernel.fault t with
    | Some fi -> Ksim.Fault.total_injected fi
    | None -> 0
  in
  (!result, injected)

let run ~quick =
  let fractions =
    if quick then [ 0.30; 0.60 ]
    else [ 0.0; 0.30; 0.45; 0.55; 0.70; 0.90 ]
  in
  let attempts = if quick then 8 else 32 in
  let table =
    Metrics.Table.create
      [ "footprint"; "api"; "success"; "p50"; "p99"; "give-up errno" ]
  in
  let points =
    Workload.Par.map
      (fun (fraction, api) ->
        let ok, ok_ns, errno = pressure_point ~attempts ~fraction api in
        (fraction, api, ok, ok_ns, errno))
      (List.concat_map
         (fun f -> List.map (fun api -> (f, api)) [ Fork; Vfork; Spawn ])
         fractions)
  in
  List.iter
    (fun (fraction, api, ok, ok_ns, errno) ->
      let stats =
        if ok_ns = [] then None else Some (Metrics.Stats.of_list ok_ns)
      in
      let pct p =
        match stats with None -> "-" | Some s -> Metrics.Units.ns (p s)
      in
      Metrics.Table.add_row table
        [
          Metrics.Units.percent fraction;
          api_name api;
          Printf.sprintf "%d/%d" ok attempts;
          pct (fun s -> s.Metrics.Stats.p50);
          pct (fun s -> s.Metrics.Stats.p99);
          (match errno with
          | Some e -> Ksim.Errno.to_string e
          | None -> "-");
        ])
    points;
  let retry_table =
    Metrics.Table.create [ "caller"; "result"; "injected faults" ]
  in
  List.iter
    (fun retry ->
      let result, injected = retry_demo ~retry in
      Metrics.Table.add_row retry_table
        [
          (if retry then "builder + retry (backoff in sim time)"
           else "builder, no retry");
          (match result with
          | Ok pid -> Printf.sprintf "ok (pid %d)" pid
          | Error e -> Ksim.Errno.to_string e);
          string_of_int injected;
        ])
    [ false; true ];
  let data =
    Metrics.Json.arr
      (List.map
         (fun (fraction, api, ok, ok_ns, _) ->
           Metrics.Json.obj
             ([
                ("fraction", Metrics.Json.num fraction);
                ("api", Metrics.Json.str (api_name api));
                ("ok", Metrics.Json.int ok);
                ("attempts", Metrics.Json.int attempts);
              ]
             @
             if ok_ns = [] then []
             else
               [ ("latency", Metrics.Stats.to_json (Metrics.Stats.of_list ok_ns)) ]))
         points)
  in
  Report.make ~id:"E13" ~title:"process creation under memory pressure"
    [
      Report.Table
        {
          caption =
            Printf.sprintf
              "256 MiB machine, strict commit; parent touches the given \
               footprint then attempts %d creations (children exit \
               immediately; vfork latency includes the parent's blocked \
               time)"
              attempts;
          table;
        };
      Report.Table
        {
          caption =
            "injected transient EAGAIN on the first pb_create (seed 7): \
             rollback keeps the machine clean, synchronous errnos make the \
             retry safe";
          table = retry_table;
        };
      Report.Note
        "fork is the first API the pressure kills: strict accounting must \
         reserve the parent's whole footprint again, so fork returns ENOMEM \
         once the parent passes half of memory, while vfork (borrowed \
         address space) and spawn (fresh image only) keep succeeding at \
         unchanged latency. The failure is also the cheapest syscall on the \
         table -- refusing at commit time costs almost nothing, which is \
         exactly why callers that never check fork's return value end up \
         relying on overcommit instead (E6).";
      Report.Data { name = "pressure-points"; json = data };
    ]

let experiment =
  {
    Report.exp_id = "E13";
    exp_title = "process creation under memory pressure";
    paper_claim =
      "under strict commit accounting fork stops working once the parent's \
       footprint passes half of memory, long before vfork or spawn feel any \
       pressure; spawn-style creation reports the failure synchronously, so \
       bounded retry policies are actually writable";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
