(* E17 — prefork serving under load. Three ways to turn one listening
   socket into a server: a master that accepts and dispatches to prefork
   workers over pipes, per-worker accept on a shared listener (the
   SO_REUSEPORT idiom), and fork-per-request (inetd style). An open-loop
   Poisson or bursty load generator runs as its own process; the kernel
   trace gives per-request latency, kstat gives accept-queue depth and
   per-worker dispatch imbalance, and a seeded fault schedule kills a
   worker mid-run to show how each topology degrades.

   The real-OS side drives a Spawnlib.Pool through a select loop
   (Pool.Load) with hundreds of requests in flight — including a run
   that SIGKILLs a worker mid-load — against serial fork+exec per
   request. *)

let ok_or_die what = function
  | Ok v -> v
  | Error e ->
    invalid_arg ("Exp_serve: " ^ what ^ ": " ^ Ksim.Errno.to_string e)

let port = 80
let backlog = 8
let heap_mib = 16

(* Server-side work: each request write-touches an 8-page window of a
   buffer the master mapped before forking, cycling through 16 windows.
   Prefork workers break the window's COW once and then write in place;
   a fork-per-request child re-pays the COW break on every connection —
   the paper's amortisation argument, visible in the latency. *)
let page = 4096
let win_pages = 8
let n_windows = 16

let setup_work () =
  let len = page * win_pages * n_windows in
  let addr = ok_or_die "mmap" (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw) in
  ignore (ok_or_die "touch" (Ksim.Api.touch ~addr ~len));
  addr

let do_work addr i =
  let off = i mod n_windows * win_pages * page in
  ignore (Ksim.Api.touch ~addr:(addr + off) ~len:(win_pages * page))

type model = Dispatch | Reuseport | Inetd

let model_name = function
  | Dispatch -> "dispatch"
  | Reuseport -> "per-worker accept"
  | Inetd -> "fork-per-request"

type load = {
  load_name : string;
  lam : float;  (** mean arrivals per round *)
  rounds : int;
  gap : int;  (** simulated ticks between rounds *)
  bursty : bool;  (** 4x lambda every 4th round, silence between *)
  seed : int;
}

(* Arrivals are drawn before boot (Knuth's method over splitmix), so the
   offered schedule is a pure function of the seed and every model sees
   the identical load. *)
let schedule_of load =
  let rng = Prng.Splitmix.create ~seed:load.seed in
  let poisson lam =
    let l = exp (-.lam) in
    let rec go k p =
      let p = p *. Prng.Splitmix.float rng in
      if p > l then go (k + 1) p else k
    in
    go 0 1.0
  in
  let a =
    Array.init load.rounds (fun i ->
        if load.bursty then
          if (i + 1) mod 4 = 0 then poisson (4.0 *. load.lam) else 0
        else poisson load.lam)
  in
  if Array.for_all (( = ) 0) a then a.(0) <- 1;
  a

(* Simulated processes share the harness heap, so plain refs written by
   clients and workers are readable by the master (and by the harness
   after the run) without any in-sim IPC. *)
type shared = {
  completed : int ref;  (** client requests answered *)
  refused : int ref;  (** client connects refused (ECONNREFUSED) *)
  served : int array;  (** per worker slot; cell 0 for fork-per-request *)
  crashed : int ref;  (** workers lost to the fault schedule *)
}

(* ------------------------------------------------------------------ *)
(* Load generator: one forked process; each arrival is a client thread
   doing connect / request / reply / close. *)

let client sh () =
  match Ksim.Api.socket () with
  | Error _ -> incr sh.refused
  | Ok fd ->
    (match Ksim.Api.connect fd ~port with
    | Error _ -> incr sh.refused
    | Ok () ->
      (match Ksim.Api.write_all fd "R" with Ok () | Error _ -> ());
      (match Ksim.Api.read fd 64 with Ok _ | Error _ -> ());
      incr sh.completed);
    ignore (Ksim.Api.close fd)

let loadgen ~schedule ~gap ~total sh () =
  Array.iter
    (fun k ->
      for _ = 1 to k do
        ignore (ok_or_die "client" (Ksim.Api.thread_create (client sh)))
      done;
      ignore (Ksim.Api.poll ~timeout:(max 1 gap) []))
    schedule;
  (* a process dies with its main thread; outlive the client threads *)
  while !(sh.completed) + !(sh.refused) < total do
    ignore (Ksim.Api.poll ~timeout:1 [])
  done

let listener () =
  let fd = ok_or_die "socket" (Ksim.Api.socket ()) in
  ok_or_die "bind" (Ksim.Api.bind fd ~port);
  ok_or_die "listen" (Ksim.Api.listen fd ~backlog);
  fd

(* The load generator is forked right after the listener exists and
   before any worker pipes, so it holds no references that would keep a
   pipe's write side open (EOF is the workers' shutdown signal). *)
let fork_loadgen ~schedule ~gap ~total sh lg_pid =
  lg_pid :=
    ok_or_die "fork loadgen"
      (Ksim.Api.fork ~child:(loadgen ~schedule ~gap ~total sh))

let drain ~gap ~total sh =
  while !(sh.completed) + !(sh.refused) < total do
    ignore (Ksim.Api.poll ~timeout:(max 1 gap) [])
  done

(* ------------------------------------------------------------------ *)
(* Model 1: per-worker accept on the shared listener (SO_REUSEPORT
   idiom). Whichever parked worker the kernel wakes first wins the
   connection — the dispatch-imbalance axis. *)

let rec reuseport_worker lfd addr sh i =
  match Ksim.Api.accept lfd with
  | Error _ ->
    (* the fault schedule's injected EINTR lands here: worker dies *)
    incr sh.crashed;
    Ksim.Api.exit 17
  | Ok conn -> (
    match Ksim.Api.read conn 16 with
    | Ok "Q" | Ok "" | Error _ ->
      ignore (Ksim.Api.close conn);
      Ksim.Api.exit 0
    | Ok _ ->
      do_work addr sh.served.(i);
      sh.served.(i) <- sh.served.(i) + 1;
      ignore (Ksim.Api.write_all conn "k");
      ignore (Ksim.Api.close conn);
      reuseport_worker lfd addr sh i)

let reuseport_body ~workers ~schedule ~gap ~total sh lg_pid () =
  let addr = setup_work () in
  let lfd = listener () in
  fork_loadgen ~schedule ~gap ~total sh lg_pid;
  for i = 0 to workers - 1 do
    ignore
      (ok_or_die "fork worker"
         (Ksim.Api.fork ~child:(fun () -> reuseport_worker lfd addr sh i)))
  done;
  drain ~gap ~total sh;
  (* every worker's fd table holds a reference to the shared listener,
     so the master cannot close it shut; retire each live worker with a
     QUIT connection instead (a crashed worker's QUIT just lingers on
     the queue until the listener is released) *)
  for _ = 1 to workers - !(sh.crashed) do
    match Ksim.Api.socket () with
    | Error _ -> ()
    | Ok fd ->
      (match Ksim.Api.connect fd ~port with
      | Ok () -> (
        match Ksim.Api.write_all fd "Q" with Ok () | Error _ -> ())
      | Error _ -> ());
      ignore (Ksim.Api.close fd)
  done;
  ignore (Ksim.Api.wait_all ());
  ignore (Ksim.Api.close lfd)

(* ------------------------------------------------------------------ *)
(* Model 2: accept-and-dispatch. The master owns the listener and every
   connection; workers see only their request pipe (one "R" byte per
   job) and reply pipe. Round-robin dispatch, so imbalance ~1. *)

let dispatch_worker ~req_r ~rep_w addr sh i =
  let rec loop () =
    match Ksim.Api.read req_r 64 with
    | Ok "" | Error _ -> Ksim.Api.exit 0
    | Ok s ->
      String.iter
        (fun _ ->
          do_work addr sh.served.(i);
          sh.served.(i) <- sh.served.(i) + 1;
          ignore (Ksim.Api.write_all rep_w "k"))
        s;
      loop ()
  in
  loop ()

let dispatch_body ~workers ~schedule ~gap ~total sh lg_pid () =
  let addr = setup_work () in
  let lfd = listener () in
  fork_loadgen ~schedule ~gap ~total sh lg_pid;
  let req = Array.init workers (fun _ -> ok_or_die "pipe" (Ksim.Api.pipe ())) in
  let rep = Array.init workers (fun _ -> ok_or_die "pipe" (Ksim.Api.pipe ())) in
  for i = 0 to workers - 1 do
    ignore
      (ok_or_die "fork worker"
         (Ksim.Api.fork ~child:(fun () ->
              (* keep only this worker's request read end and reply
                 write end: a stray write-end reference in a sibling
                 would defeat the EOF shutdown *)
              ignore (Ksim.Api.close lfd);
              Array.iteri
                (fun j (r, w) ->
                  ignore (Ksim.Api.close w);
                  if j <> i then ignore (Ksim.Api.close r))
                req;
              Array.iteri
                (fun j (r, w) ->
                  ignore (Ksim.Api.close r);
                  if j <> i then ignore (Ksim.Api.close w))
                rep;
              dispatch_worker ~req_r:(fst req.(i)) ~rep_w:(snd rep.(i)) addr
                sh i)))
  done;
  Array.iter (fun (r, _) -> ignore (Ksim.Api.close r)) req;
  Array.iter (fun (_, w) -> ignore (Ksim.Api.close w)) rep;
  (* master event loop: listener + conns awaiting a request + worker
     reply pipes, all through one poll *)
  let pending = ref [] in
  let fifo = Array.init workers (fun _ -> Queue.create ()) in
  let rr = ref 0 in
  let inflight () =
    List.length !pending
    + Array.fold_left (fun a q -> a + Queue.length q) 0 fifo
  in
  while
    not (!(sh.completed) + !(sh.refused) >= total && inflight () = 0)
  do
    let interests =
      Ksim.Types.pollin lfd
      :: (List.map Ksim.Types.pollin !pending
         @ Array.to_list (Array.map (fun (r, _) -> Ksim.Types.pollin r) rep))
    in
    match Ksim.Api.poll ~timeout:(max 1 gap) interests with
    | Error _ | Ok [] -> ()
    | Ok revents ->
      List.iter
        (fun (rv : Ksim.Types.poll_revent) ->
          let fd = rv.Ksim.Types.pr_fd in
          if fd = lfd then (
            if rv.Ksim.Types.pr_in then
              (* level-triggered: drain the whole accept queue, not one
                 connection per wakeup, or bursts overflow the backlog *)
              let rec drain_accepts () =
                match Ksim.Api.accept lfd with
                | Error _ -> ()
                | Ok conn -> (
                  pending := !pending @ [ conn ];
                  match
                    Ksim.Api.poll ~timeout:0 [ Ksim.Types.pollin lfd ]
                  with
                  | Ok (_ :: _) -> drain_accepts ()
                  | Ok [] | Error _ -> ())
              in
              drain_accepts ())
          else if List.mem fd !pending then (
            if rv.Ksim.Types.pr_in || rv.Ksim.Types.pr_hup then (
              pending := List.filter (fun c -> c <> fd) !pending;
              match Ksim.Api.read fd 16 with
              | Ok s when s <> "" ->
                let i = !rr in
                rr := (!rr + 1) mod workers;
                ignore (Ksim.Api.write_all (snd req.(i)) "R");
                Queue.add fd fifo.(i)
              | Ok _ | Error _ -> ignore (Ksim.Api.close fd)))
          else
            Array.iteri
              (fun i (r, _) ->
                if fd = r && rv.Ksim.Types.pr_in then
                  match Ksim.Api.read r 64 with
                  | Ok s ->
                    (* one byte per finished job, FIFO per worker *)
                    String.iter
                      (fun _ ->
                        match Queue.take_opt fifo.(i) with
                        | Some conn ->
                          ignore (Ksim.Api.write_all conn "k");
                          ignore (Ksim.Api.close conn)
                        | None -> ())
                      s
                  | Error _ -> ())
              rep)
        revents
  done;
  Array.iter (fun (_, w) -> ignore (Ksim.Api.close w)) req;
  ignore (Ksim.Api.wait_all ());
  Array.iter (fun (r, _) -> ignore (Ksim.Api.close r)) rep;
  ignore (Ksim.Api.close lfd)

(* ------------------------------------------------------------------ *)
(* Model 3: fork-per-request (inetd). The master accepts and forks a
   fresh handler per connection; every handler re-pays the COW break on
   the work window its prefork cousins amortise. *)

let inetd_body ~schedule ~gap ~total sh lg_pid () =
  let addr = setup_work () in
  let lfd = listener () in
  fork_loadgen ~schedule ~gap ~total sh lg_pid;
  let handled = ref 0 in
  while !(sh.completed) + !(sh.refused) < total do
    match Ksim.Api.poll ~timeout:(max 1 gap) [ Ksim.Types.pollin lfd ] with
    | Error _ | Ok [] -> ()
    | Ok _ ->
      let rec drain_accepts () =
        match Ksim.Api.accept lfd with
        | Error _ -> ()
        | Ok conn -> (
          let i = !handled in
          incr handled;
          ignore
            (ok_or_die "fork handler"
               (Ksim.Api.fork ~child:(fun () ->
                    (match Ksim.Api.read conn 16 with Ok _ | Error _ -> ());
                    do_work addr i;
                    sh.served.(0) <- sh.served.(0) + 1;
                    ignore (Ksim.Api.write_all conn "k");
                    ignore (Ksim.Api.close conn);
                    Ksim.Api.exit 0)));
          ignore (Ksim.Api.close conn);
          match Ksim.Api.poll ~timeout:0 [ Ksim.Types.pollin lfd ] with
          | Ok (_ :: _) -> drain_accepts ()
          | Ok [] | Error _ -> ())
      in
      drain_accepts ()
  done;
  ignore (Ksim.Api.wait_all ());
  ignore (Ksim.Api.close lfd)

(* ------------------------------------------------------------------ *)
(* Sweep points and harvesting *)

type pointspec = {
  ps_model : model;
  ps_workers : int;  (** 0 for fork-per-request *)
  ps_load : load;
  ps_crash : bool;  (** inject EINTR into a mid-run accept *)
}

type point = {
  spec : pointspec;
  total : int;
  completed : int;
  refused : int;
  crashed : int;
  served : int array;
  lats : float array;  (** per-request simulated ns, sorted *)
  makespan_ns : float;
  queue_peak : int;
  poll_wakeups : int;
}

(* Per-request latency from the load generator's trace: each client
   thread is sequential, so its connect Begin pairs with its close End.
   Refused connects are discarded (the connect End carries the Err). *)
let harvest_lats tr ~lg_pid =
  let open Ksim.Trace in
  let tbl = Hashtbl.create 64 in
  let lats = ref [] in
  let t_min = ref infinity and t_max = ref neg_infinity in
  List.iter
    (fun e ->
      if e.pid = lg_pid then
        match (e.what, e.phase) with
        | "connect", Begin ->
          if e.ts_ns < !t_min then t_min := e.ts_ns;
          Hashtbl.replace tbl e.tid (e.ts_ns, false)
        | "connect", End -> (
          match Hashtbl.find_opt tbl e.tid with
          | Some (t0, _) ->
            if e.outcome = Some Ok_result then
              Hashtbl.replace tbl e.tid (t0, true)
            else Hashtbl.remove tbl e.tid
          | None -> ())
        | "close", End -> (
          if e.ts_ns > !t_max then t_max := e.ts_ns;
          match Hashtbl.find_opt tbl e.tid with
          | Some (t0, true) ->
            lats := (e.ts_ns -. t0) :: !lats;
            Hashtbl.remove tbl e.tid
          | Some (_, false) -> Hashtbl.remove tbl e.tid
          | None -> ())
        | _ -> ())
    (events tr);
  let a = Array.of_list !lats in
  Array.sort compare a;
  (a, if !t_max > !t_min then !t_max -. !t_min else 0.0)

let run_point ps =
  let schedule = schedule_of ps.ps_load in
  let total = Array.fold_left ( + ) 0 schedule in
  let gap = ps.ps_load.gap in
  let sh =
    {
      completed = ref 0;
      refused = ref 0;
      served = Array.make (max 1 ps.ps_workers) 0;
      crashed = ref 0;
    }
  in
  let lg_pid = ref (-1) in
  let body =
    match ps.ps_model with
    | Dispatch ->
      dispatch_body ~workers:ps.ps_workers ~schedule ~gap ~total sh lg_pid
    | Reuseport ->
      reuseport_body ~workers:ps.ps_workers ~schedule ~gap ~total sh lg_pid
    | Inetd -> inetd_body ~schedule ~gap ~total sh lg_pid
  in
  let config =
    {
      (Sim_driver.config_for ~heap_mib) with
      Ksim.Kernel.trace_capacity = Some 131_072;
      fault =
        (if ps.ps_crash then
           Some
             {
               Ksim.Fault.seed = 17;
               triggers =
                 [
                   Ksim.Fault.Syscall_nth
                     {
                       kind = "accept";
                       nth = max 3 (total / 3);
                       errno = Ksim.Errno.EINTR;
                     };
                 ];
             }
         else None);
    }
  in
  let t, _ = Sim_driver.boot_scenario ~config body in
  let tr = Option.get (Ksim.Kernel.trace t) in
  let lats, makespan_ns = harvest_lats tr ~lg_pid:!lg_pid in
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  {
    spec = ps;
    total;
    completed = !(sh.completed);
    refused = !(sh.refused);
    crashed = !(sh.crashed);
    served = sh.served;
    lats;
    makespan_ns;
    queue_peak = g.Ksim.Kstat.accept_queue_peak;
    poll_wakeups = g.Ksim.Kstat.poll_wakeups;
  }

let points ~quick =
  let mk load_name bursty seed ~lam ~rounds =
    { load_name; lam; rounds; gap = 4; bursty; seed }
  in
  let loads =
    if quick then
      [
        mk "poisson" false 101 ~lam:2.0 ~rounds:12;
        mk "bursty" true 202 ~lam:2.0 ~rounds:12;
      ]
    else
      [
        mk "poisson" false 101 ~lam:4.0 ~rounds:40;
        mk "bursty" true 202 ~lam:4.0 ~rounds:40;
      ]
  in
  let worker_counts = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let base =
    List.concat_map
      (fun load ->
        List.concat_map
          (fun w ->
            [
              {
                ps_model = Dispatch;
                ps_workers = w;
                ps_load = load;
                ps_crash = false;
              };
              {
                ps_model = Reuseport;
                ps_workers = w;
                ps_load = load;
                ps_crash = false;
              };
            ])
          worker_counts
        @ [
            {
              ps_model = Inetd;
              ps_workers = 0;
              ps_load = load;
              ps_crash = false;
            };
          ])
      loads
  in
  let crash_w = List.fold_left max 0 worker_counts in
  base
  @ [
      {
        ps_model = Reuseport;
        ps_workers = crash_w;
        ps_load = List.hd loads;
        ps_crash = true;
      };
    ]

(* max/mean of per-worker served counts; 1.0 is a perfectly even pool *)
let imbalance p =
  match p.spec.ps_model with
  | Inetd -> None
  | Dispatch | Reuseport ->
    let sum = Array.fold_left ( + ) 0 p.served in
    if sum = 0 then None
    else
      Some
        (float_of_int (Array.fold_left max 0 p.served * Array.length p.served)
        /. float_of_int sum)

let pct p q =
  if Array.length p.lats = 0 then None
  else Some (Metrics.Stats.percentile p.lats q)

let rps p =
  if p.makespan_ns <= 0.0 then 0.0
  else float_of_int p.completed /. p.makespan_ns *. 1e9

(* ------------------------------------------------------------------ *)
(* Real-OS side: a prefork Spawnlib.Pool under a concurrent select-loop
   load (Pool.Load), with and without killing a worker mid-run, against
   serial fork+exec per request. *)

let real_rows ~quick =
  let requests = if quick then 300 else 2000 in
  let concurrency = if quick then 220 else 240 in
  let fmt_ns v = Metrics.Units.ns v in
  let load_row name ?kill_after () =
    match Spawnlib.Pool.create ~size:4 ~prog:"/bin/cat" ~argv:[ "cat" ] () with
    | Error e ->
      invalid_arg ("Exp_serve real: pool: " ^ Spawnlib.Pool.error_message e)
    | Ok pool ->
      Fun.protect
        ~finally:(fun () -> ignore (Spawnlib.Pool.shutdown pool))
        (fun () ->
          let r =
            Spawnlib.Pool.Load.run ~concurrency ?kill_after ~requests
              ~request:(fun i -> Printf.sprintf "req-%d" i)
              pool
          in
          let lat = r.Spawnlib.Pool.Load.latencies in
          let p q =
            if Array.length lat = 0 then "-"
            else fmt_ns (1e9 *. Metrics.Stats.percentile lat q)
          in
          [
            name;
            string_of_int r.Spawnlib.Pool.Load.completed;
            string_of_int r.Spawnlib.Pool.Load.errors;
            string_of_int r.Spawnlib.Pool.Load.max_outstanding;
            p 50.0;
            p 99.0;
            p 99.9;
            (let w = r.Spawnlib.Pool.Load.wall_s in
             if w <= 0.0 then "-"
             else
               Printf.sprintf "%.0f"
                 (float_of_int r.Spawnlib.Pool.Load.completed /. w));
          ])
  in
  let forkexec_row () =
    let n = if quick then 30 else 100 in
    let samples =
      Workload.Timer.sample ~warmup:2 ~n (fun () ->
          match
            Spawnlib.Native.fork_exec ~prog:"/bin/true" ~argv:[ "true" ] ()
          with
          | Ok pid -> ignore (Spawnlib.Native.wait_exit pid)
          | Error e ->
            invalid_arg
              ("Exp_serve real: fork_exec: " ^ Spawnlib.Native.errno_message e))
    in
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let s = Metrics.Stats.of_array samples in
    [
      Printf.sprintf "fork+exec per request (serial, %d requests)" n;
      string_of_int n;
      "0";
      "1";
      fmt_ns s.Metrics.Stats.p50;
      fmt_ns s.Metrics.Stats.p99;
      fmt_ns (Metrics.Stats.percentile sorted 99.9);
      Printf.sprintf "%.0f" (1e9 /. s.Metrics.Stats.mean);
    ]
  in
  [
    load_row
      (Printf.sprintf "prefork pool, %d workers, %d in flight" 4 concurrency)
      ();
    load_row
      (Printf.sprintf
         "prefork pool, worker killed at %d replies" (requests / 4))
      ~kill_after:(requests / 4) ();
    forkexec_row ();
  ]

(* ------------------------------------------------------------------ *)

let run ~quick =
  let pts = Workload.Par.map run_point (points ~quick) in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left; Metrics.Table.Left; Metrics.Table.Left ]
      [
        "model";
        "workers";
        "load";
        "offered";
        "served";
        "refused";
        "p50";
        "p99";
        "p99.9";
        "req/s (sim)";
        "accept-q peak";
        "imbalance";
      ]
  in
  List.iter
    (fun p ->
      let s q = match pct p q with None -> "-" | Some v -> Metrics.Units.ns v in
      Metrics.Table.add_row table
        [
          (model_name p.spec.ps_model
          ^ if p.spec.ps_crash then " +crash" else "");
          (if p.spec.ps_workers = 0 then "-"
           else string_of_int p.spec.ps_workers);
          p.spec.ps_load.load_name;
          string_of_int p.total;
          string_of_int p.completed;
          string_of_int p.refused;
          s 50.0;
          s 99.0;
          s 99.9;
          Printf.sprintf "%.0f" (rps p);
          string_of_int p.queue_peak;
          (match imbalance p with
          | None -> "-"
          | Some v -> Printf.sprintf "%.2f" v);
        ])
    pts;
  let data =
    Metrics.Json.obj
      [
        ( "points",
          Metrics.Json.arr
            (List.map
               (fun p ->
                 Metrics.Json.obj
                   ([
                      ("model", Metrics.Json.str (model_name p.spec.ps_model));
                      ("workers", Metrics.Json.int p.spec.ps_workers);
                      ("load", Metrics.Json.str p.spec.ps_load.load_name);
                      ("crash", Metrics.Json.bool p.spec.ps_crash);
                      ("offered", Metrics.Json.int p.total);
                      ("completed", Metrics.Json.int p.completed);
                      ("refused", Metrics.Json.int p.refused);
                      ("crashed_workers", Metrics.Json.int p.crashed);
                      ( "served_per_worker",
                        Metrics.Json.arr
                          (Array.to_list
                             (Array.map Metrics.Json.int p.served)) );
                      ("makespan_ns", Metrics.Json.num p.makespan_ns);
                      ("req_per_sec", Metrics.Json.num (rps p));
                      ("accept_queue_peak", Metrics.Json.int p.queue_peak);
                      ("poll_wakeups", Metrics.Json.int p.poll_wakeups);
                    ]
                   @ (match imbalance p with
                     | None -> []
                     | Some v -> [ ("imbalance", Metrics.Json.num v) ])
                   @
                   if Array.length p.lats = 0 then []
                   else
                     [
                       ( "latency",
                         Metrics.Stats.to_json
                           (Metrics.Stats.of_array p.lats) );
                       ( "p999_ns",
                         Metrics.Json.num
                           (Metrics.Stats.percentile p.lats 99.9) );
                     ]))
               pts) );
      ]
  in
  let real_block =
    match real_rows ~quick with
    | rows ->
      let t =
        Metrics.Table.create ~align:[ Metrics.Table.Left ]
          [
            "real-OS tactic";
            "completed";
            "errors";
            "max in flight";
            "p50";
            "p99";
            "p99.9";
            "req/s";
          ]
      in
      List.iter (Metrics.Table.add_row t) rows;
      Report.Table
        {
          caption =
            Printf.sprintf
              "real OS, %d concurrent requests through a 4-worker \
               Spawnlib.Pool select loop vs serial fork+exec"
              (if quick then 300 else 2000);
          table = t;
        }
    | exception e ->
      Report.Note
        ("real-side serving skipped in this environment: "
       ^ Printexc.to_string e)
  in
  Report.make ~id:"E17" ~title:"serving under load: prefork vs fork-per-request"
    [
      Report.Table
        {
          caption =
            "simulated, open-loop arrivals (one kernel boot per cell); \
             latency is connect-to-close from the load generator's trace, \
             imbalance is max/mean of per-worker served counts";
          table;
        };
      real_block;
      Report.Note
        "fork-per-request re-pays the fork plus the work window's COW \
         breaks on every connection, so its tail latency and throughput \
         trail both prefork topologies. Per-worker accept keeps the \
         master out of the data path but dispatches by wake-up order, so \
         its imbalance drifts from 1.0 under bursts, while the \
         dispatching master stays near 1.0 at the price of touching \
         every byte. The +crash row is the fault schedule killing one \
         worker mid-run: the remaining workers absorb its share and the \
         offered load still drains. The real-OS table shows the same \
         prefork pool sustaining hundreds of in-flight requests through \
         a select loop, surviving a SIGKILLed worker mid-run.";
      Report.Data { name = "serve-points"; json = data };
    ]

let experiment =
  {
    Report.exp_id = "E17";
    exp_title = "serving under load: prefork vs fork-per-request";
    paper_claim =
      "servers fork because it is there, not because it is fast: a \
       prefork worker pool amortises process creation across requests, \
       while fork-per-request pays address-space duplication and COW \
       faults on every connection and collapses under load; per-worker \
       accept trades the dispatch master for wake-order imbalance";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
