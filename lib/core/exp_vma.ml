(* E8 (ablation) — fork cost vs address-space fragmentation: the same
   total footprint split across more VMAs. *)

let heap_mib = 256

let run ~quick =
  let counts = if quick then [ 1; 64; 1024 ] else Workload.Sweep.vma_counts in
  let point strategy vmas =
    (Sim_driver.creation_cost ~vmas ~strategy ~heap_mib ()).Sim_driver.ns
  in
  let series strategy =
    {
      Metrics.Series.label = Strategy.name strategy;
      points =
        Workload.Par.map (fun v -> (float_of_int v, point strategy v)) counts;
    }
  in
  let fig =
    Metrics.Series.figure ~xlog:true ~ylog:true
      ~title:
        (Printf.sprintf
           "E8: creation cost (model ns) vs VMA count (fixed %d MiB parent)"
           heap_mib)
      ~xlabel:"VMAs" ~ylabel:"ns"
      [ series Strategy.Fork_only; series Strategy.Posix_spawn ]
  in
  Report.make ~id:"E8" ~title:"ablation: fork cost vs VMA count"
    [
      Report.Figure fig;
      Report.Note
        "fork must clone every VMA record in addition to the page tables, \
         so fragmented address spaces (many small mappings) pay extra per \
         fork; spawn is indifferent to the parent's mapping structure.";
    ]

let experiment =
  {
    Report.exp_id = "E8";
    exp_title = "ablation: fork cost vs VMA count";
    paper_claim =
      "fork's cost depends on address-space structure, not just size -- \
       one more way the parent's state leaks into creation latency";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
