(* T1 runs first: its real-OS samples measure the harness process itself,
   so it must precede the gigabyte footprints of F1 (allocator residue
   would otherwise inflate the "minimal process" numbers). *)
let all =
  [
    Exp_minproc.experiment;
    Exp_fig1.experiment;
    Exp_fig1_sim.experiment;
    Exp_cowtax.experiment;
    Exp_threads.experiment;
    Exp_stdio.experiment;
    Exp_aslr.experiment;
    Exp_overcommit.experiment;
    Exp_survey.experiment;
    Exp_vma.experiment;
    Exp_tlb.experiment;
    Exp_builder.experiment;
    Exp_snapshot.experiment;
    Exp_thp.experiment;
    Exp_pressure.experiment;
    Exp_churn.experiment;
    Exp_smp.experiment;
    Exp_serve.experiment;
    Exp_demand.experiment;
  ]

let ids = List.map (fun e -> e.Report.exp_id) all

(* Filename-friendly names, matching the exp_*.ml module of each
   experiment — BENCH_<slug>.json is the bench harness's output name. *)
let slug e =
  match e.Report.exp_id with
  | "T1" -> "minproc"
  | "F1" -> "fig1"
  | "F1-SIM" -> "fig1_sim"
  | "E2" -> "cowtax"
  | "E3" -> "threads"
  | "E4" -> "stdio"
  | "E5" -> "aslr"
  | "E6" -> "overcommit"
  | "E7" -> "survey"
  | "E8" -> "vma"
  | "E9" -> "tlb"
  | "E10" -> "builder"
  | "E11" -> "snapshot"
  | "E12" -> "thp"
  | "E13" -> "pressure"
  | "E14" -> "churn"
  | "E16" -> "smp"
  | "E17" -> "serve"
  | "E18" -> "demand"
  | id ->
    String.map
      (fun c -> if c = '-' then '_' else Char.lowercase_ascii c)
      id

let find id =
  let canon s =
    String.map
      (fun c -> if c = '-' then '_' else Char.lowercase_ascii c)
      s
  in
  List.find_opt
    (fun e -> canon e.Report.exp_id = canon id || slug e = canon id)
    all
