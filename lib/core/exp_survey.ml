(* E7 — usage survey: process-creation call sites across a corpus, plus
   the forklint v1-vs-v2 precision comparison on the labelled hazard
   fixtures. *)

let corpus_seed = 2019
let corpus_size = 500

(* Measure one rule set against a fixture's hand-labelled ground truth
   ([hz_expected]): (reported, false positives, false negatives). *)
let score truth reported =
  let fp = List.filter (fun f -> not (List.mem f truth)) reported in
  let fn = List.filter (fun t -> not (List.mem t reported)) truth in
  (List.length reported, List.length fp, List.length fn)

let lint_precision () =
  let triples ds =
    List.map
      (fun (d : Forklore.Diagnostic.t) -> (d.rule, d.line, d.col))
      ds
  in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "fixture"; "truth"; "v1 rep"; "v1 FP"; "v1 FN"; "v2 rep"; "v2 FP"; "v2 FN" ]
  in
  let tot = Array.make 7 0 in
  List.iter
    (fun (h : Forklore.Corpus.hazard) ->
      let truth = h.hz_expected in
      let v1 =
        triples
          (Forklore.Rules.check_string ~rules:Forklore.Rules.v1
             ~file:h.hz_name h.hz_source)
      in
      let v2 =
        triples (Forklore.Rules.check_string ~file:h.hz_name h.hz_source)
      in
      let r1, fp1, fn1 = score truth v1 in
      let r2, fp2, fn2 = score truth v2 in
      List.iteri
        (fun i v -> tot.(i) <- tot.(i) + v)
        [ List.length truth; r1; fp1; fn1; r2; fp2; fn2 ];
      Metrics.Table.add_row table
        ([ h.hz_name; string_of_int (List.length truth) ]
        @ List.map string_of_int [ r1; fp1; fn1; r2; fp2; fn2 ]))
    Forklore.Corpus.hazards;
  Metrics.Table.add_row table
    ("total" :: List.map string_of_int (Array.to_list tot));
  let precision ~reported ~fp =
    if reported = 0 then 1.0
    else float_of_int (reported - fp) /. float_of_int reported
  in
  let recall ~truth ~fn =
    if truth = 0 then 1.0 else float_of_int (truth - fn) /. float_of_int truth
  in
  let data =
    Metrics.Json.obj
      [
        ("fixtures", Metrics.Json.int (List.length Forklore.Corpus.hazards));
        ("truth_findings", Metrics.Json.int tot.(0));
        ( "v1",
          Metrics.Json.obj
            [
              ("reported", Metrics.Json.int tot.(1));
              ("false_positives", Metrics.Json.int tot.(2));
              ("false_negatives", Metrics.Json.int tot.(3));
              ( "precision",
                Metrics.Json.num (precision ~reported:tot.(1) ~fp:tot.(2)) );
              ("recall", Metrics.Json.num (recall ~truth:tot.(0) ~fn:tot.(3)));
            ] );
        ( "v2",
          Metrics.Json.obj
            [
              ("reported", Metrics.Json.int tot.(4));
              ("false_positives", Metrics.Json.int tot.(5));
              ("false_negatives", Metrics.Json.int tot.(6));
              ( "precision",
                Metrics.Json.num (precision ~reported:tot.(4) ~fp:tot.(5)) );
              ("recall", Metrics.Json.num (recall ~truth:tot.(0) ~fn:tot.(6)));
            ] );
      ]
  in
  (table, data)

let run ~quick =
  let packages = if quick then 100 else corpus_size in
  let pkgs = Forklore.Corpus.generate ~packages ~seed:corpus_seed () in
  (match Forklore.Survey.validate pkgs with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Exp_survey: scanner mismatch: " ^ msg));
  let rows = Forklore.Survey.of_packages pkgs in
  let precision_table, precision_data = lint_precision () in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "API"; "packages using"; "share"; "call sites" ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [
          Forklore.Api.name r.Forklore.Survey.api;
          string_of_int r.Forklore.Survey.packages_using;
          Metrics.Units.percent r.Forklore.Survey.package_share;
          string_of_int r.Forklore.Survey.call_sites;
        ])
    rows;
  Report.make ~id:"E7" ~title:"creation-API usage survey"
    [
      Report.Table
        {
          caption =
            Printf.sprintf
              "synthetic %d-package corpus (seed %d), scanner validated \
               against embedded ground truth"
              packages corpus_seed;
          table;
        };
      Report.Note
        "the corpus mix encodes the paper's observation: fork-family idioms \
         (fork, system, popen) dominate Unix code while posix_spawn \
         adoption is rare. Run `forkscan <dir>` to apply the same scanner \
         to any real C tree.";
      Report.Table
        {
          caption =
            "forklint precision: frozen v1 token rules vs v2 path-sensitive \
             dataflow on the labelled hazard fixtures (rep = reported \
             findings, FP/FN vs hand-labelled ground truth)";
          table = precision_table;
        };
      Report.Data { name = "lint-precision"; json = precision_data };
      Report.Note
        "every v1 false positive is a hazard pattern the token window \
         cannot scope: work on the pid>0 parent branch \
         (parent_path_work), stdio flushed through a helper before the \
         fork (helper_flush), and a printf in a different function \
         (cross_function). v2 resolves fork() return-value branches into \
         child/parent/error regions on a per-function CFG, so those \
         fixtures lint clean while the lock-across-fork and \
         child-path-return hazards — invisible to v1 — are caught. Run \
         `forkscan lint --format=sarif <dir>` for the CI-consumable \
         report.";
    ]

let experiment =
  {
    Report.exp_id = "E7";
    exp_title = "creation-API usage survey";
    paper_claim =
      "fork remains the overwhelmingly dominant creation API in Unix \
       code; spawn-style APIs are rarely used";
    exp_kind = Report.Static;
    run = (fun ~quick -> run ~quick);
  }
