type result = {
  report : Report.t;
  trace : Ksim.Trace.t;
  machine : Ksim.Kernel.t;
}

let heap_mib = 16

let ok_or_die what = function
  | Ok v -> v
  | Error e ->
    invalid_arg ("Stat_driver: " ^ what ^ ": " ^ Ksim.Errno.to_string e)

let true_prog =
  Ksim.Program.make ~name:"/bin/true" (fun ~argv:_ () -> Ksim.Api.exit 0)

let wait pid = ignore (ok_or_die "wait" (Ksim.Api.wait_for pid))

let fig1_body () =
  Sim_driver.with_footprint ~heap_mib ~vmas:1 ();
  wait
    (ok_or_die "fork"
       (Ksim.Api.fork ~child:(fun () ->
            (match Ksim.Api.exec "/bin/true" with Ok () | Error _ -> ());
            Ksim.Api.exit 127)))

let cowtax_body () =
  let total = Workload.Sweep.bytes_of_mib heap_mib in
  let addr = ok_or_die "mmap" (Ksim.Api.mmap ~len:total ~perm:Vmem.Perm.rw) in
  ignore (ok_or_die "touch" (Ksim.Api.touch ~addr ~len:total));
  wait
    (ok_or_die "fork"
       (Ksim.Api.fork ~child:(fun () ->
            ignore (Ksim.Api.touch ~addr ~len:(total / 2));
            Ksim.Api.exit 0)))

let tlb_body () =
  Sim_driver.with_footprint ~heap_mib ~vmas:4 ();
  wait
    (ok_or_die "fork" (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)))

let stdio_body () =
  let f = ok_or_die "fopen" (Ksim.Stdio.fopen ~bufsize:4096 1) in
  ok_or_die "puts" (Ksim.Stdio.puts f (String.make 1024 'x'));
  let pid =
    ok_or_die "fork"
      (Ksim.Api.fork ~child:(fun () ->
           ok_or_die "flush" (Ksim.Stdio.flush f);
           Ksim.Api.exit 0))
  in
  wait pid;
  ok_or_die "flush" (Ksim.Stdio.flush f)

(* Fork-heavy SMP scenario: spinner threads hold the other CPUs so
   every fork's shootdown has remote TLBs to interrupt (run it with
   --cpus N; on one CPU it degenerates to plain fork churn). *)
let smp_body () =
  Sim_driver.with_footprint ~heap_mib ~vmas:4 ();
  let stop = ref false in
  for _ = 2 to 4 do
    ignore
      (ok_or_die "spinner"
         (Ksim.Api.thread_create (fun () ->
              while not !stop do
                Ksim.Api.yield ()
              done)))
  done;
  for _ = 1 to 2 do
    Ksim.Api.yield ()
  done;
  for _ = 1 to 4 do
    wait
      (ok_or_die "fork" (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0)))
  done;
  stop := true

(* Prefork serving scenario: two workers accept on a shared listener,
   the main thread plays eight clients (polling each connection before
   reading), then retires the workers with QUIT connections. Exercises
   the whole socket/poll syscall family in one kstat report. *)
let serve_body () =
  let port = 80 in
  let lfd = ok_or_die "socket" (Ksim.Api.socket ()) in
  ok_or_die "bind" (Ksim.Api.bind lfd ~port);
  ok_or_die "listen" (Ksim.Api.listen lfd ~backlog:4);
  let rec worker () =
    match Ksim.Api.accept lfd with
    | Error _ -> Ksim.Api.exit 1
    | Ok conn -> (
      match Ksim.Api.read conn 16 with
      | Ok "Q" | Ok "" | Error _ ->
        ignore (Ksim.Api.close conn);
        Ksim.Api.exit 0
      | Ok _ ->
        ignore (Ksim.Api.write_all conn "k");
        ignore (Ksim.Api.close conn);
        worker ())
  in
  for _ = 1 to 2 do
    ignore (ok_or_die "fork" (Ksim.Api.fork ~child:worker))
  done;
  let request payload =
    let fd = ok_or_die "socket" (Ksim.Api.socket ()) in
    (match Ksim.Api.connect fd ~port with
    | Error _ -> ()
    | Ok () ->
      ignore (Ksim.Api.write_all fd payload);
      if payload <> "Q" then begin
        ignore (Ksim.Api.poll [ Ksim.Types.pollin fd ]);
        ignore (Ksim.Api.read fd 16)
      end);
    ignore (Ksim.Api.close fd)
  in
  for _ = 1 to 8 do
    request "R"
  done;
  for _ = 1 to 2 do
    request "Q"
  done;
  ignore (Ksim.Api.wait_all ());
  ignore (ok_or_die "close" (Ksim.Api.close lfd))

(* Demand-paging scenario: the machine boots with a pager installed
   (readahead 8), so every exec maps its image lazily. Four spawns of a
   1 MiB-data worker; child i write-touches i/4 of the data segment,
   taking major faults the pager serves. The report's per-pid fault
   table shows the major/minor split per child. *)
let demand_data_len = 1024 * 1024

let demand_worker =
  Ksim.Program.make ~name:"/lazy-worker" ~data_kib:(demand_data_len / 1024)
    (fun ~argv () ->
      (match argv with
      | [ len ] ->
        let len = int_of_string len in
        if len > 0 then
          ignore
            (ok_or_die "worker touch"
               (Ksim.Api.touch
                  ~addr:(Ksim.Kernel.image_base + (64 * 1024))
                  ~len))
      | _ -> ());
      Ksim.Api.exit 0)

let demand_body () =
  for i = 1 to 4 do
    let len = i * demand_data_len / 4 in
    wait
      (ok_or_die "spawn"
         (Ksim.Api.spawn ~argv:[ string_of_int len ] "/lazy-worker"))
  done

let scenarios =
  [
    ("fig1-sim", "fork+exec /bin/true from a 16 MiB parent");
    ("cowtax", "fork, then the child write-touches half the parent's heap");
    ("tlb", "fork-only from a 16 MiB parent spread over 4 VMAs");
    ("stdio", "fork with 1 KiB of unflushed stdio, both sides flush");
    ("smp", "fork churn with spinner threads holding the other CPUs");
    ("serve", "two prefork workers accept 8 polled client requests");
    ("demand", "4 lazy spawns of a 1 MiB image, children touch 25-100%");
  ]

let body_of = function
  | "fig1-sim" -> Some fig1_body
  | "cowtax" -> Some cowtax_body
  | "tlb" -> Some tlb_body
  | "stdio" -> Some stdio_body
  | "smp" -> Some smp_body
  | "serve" -> Some serve_body
  | "demand" -> Some demand_body
  | _ -> None

let pct part total = if total > 0.0 then 100.0 *. part /. total else 0.0

let category_table cost =
  let total = Vmem.Cost.total cost in
  let t =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "category"; "cycles"; "events"; "%" ]
  in
  List.iter
    (fun (cat, (cycles, events)) ->
      Metrics.Table.add_row t
        [
          cat;
          Metrics.Units.cycles cycles;
          string_of_int events;
          Printf.sprintf "%5.1f" (pct cycles total);
        ])
    (Vmem.Cost.by_category_counts cost);
  t

let groups_table cost =
  let total = Vmem.Cost.total cost in
  let t =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "subsystem"; "cycles"; "%" ]
  in
  List.iter
    (fun (g, cycles) ->
      Metrics.Table.add_row t
        [
          g;
          Metrics.Units.cycles cycles;
          Printf.sprintf "%5.1f" (pct cycles total);
        ])
    (Sim_driver.groups_of_breakdown (Vmem.Cost.by_category cost));
  t

let counters_table counters =
  let t =
    Metrics.Table.create ~align:[ Metrics.Table.Left ] [ "counter"; "count" ]
  in
  List.iter
    (fun (k, n) ->
      if n <> 0 then Metrics.Table.add_row t [ k; string_of_int n ])
    (Ksim.Kstat.snapshot counters);
  t

let kinds_table counters =
  let t =
    Metrics.Table.create ~align:[ Metrics.Table.Left ] [ "syscall"; "calls" ]
  in
  List.iter
    (fun (k, n) -> Metrics.Table.add_row t [ k; string_of_int n ])
    (Ksim.Kstat.kinds counters);
  t

(* Per-CPU counter breakdown, present only when the boot was SMP. *)
let smp_table (s : Ksim.Kstat.smp) =
  let t =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "cpu"; "ipis sent"; "ipis received"; "steals"; "migrations" ]
  in
  for cpu = 0 to s.Ksim.Kstat.smp_cpus - 1 do
    Metrics.Table.add_row t
      [
        string_of_int cpu;
        string_of_int s.Ksim.Kstat.sent.(cpu);
        string_of_int s.Ksim.Kstat.received.(cpu);
        string_of_int s.Ksim.Kstat.steals.(cpu);
        string_of_int s.Ksim.Kstat.migrations.(cpu);
      ]
  done;
  t

(* Major/minor fault breakdown by pid — only rendered when a pager
   actually served faults, so eager scenarios keep their report shape. *)
let faults_table kstat =
  let t =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [
        "pid"; "major faults"; "minor faults"; "pages fetched";
        "readahead hits";
      ]
  in
  let row label (c : Ksim.Kstat.counters) =
    Metrics.Table.add_row t
      [
        label;
        string_of_int c.Ksim.Kstat.major_faults;
        string_of_int c.Ksim.Kstat.minor_faults;
        string_of_int c.Ksim.Kstat.pages_fetched;
        string_of_int c.Ksim.Kstat.readahead_hits;
      ]
  in
  List.iter
    (fun pid ->
      match Ksim.Kstat.pid_counters kstat pid with
      | Some c
        when c.Ksim.Kstat.major_faults + c.Ksim.Kstat.minor_faults > 0 ->
        row (string_of_int pid) c
      | Some _ | None -> ())
    (Ksim.Kstat.pids kstat);
  row "total" (Ksim.Kstat.global kstat);
  t

let fanout_note (s : Ksim.Kstat.smp) =
  let rows =
    Hashtbl.fold (fun k n acc -> (k, !n) :: acc) s.Ksim.Kstat.fanout []
    |> List.sort compare
  in
  if rows = [] then "shootdown fanout: no full-AS shootdowns reached a remote TLB"
  else
    "shootdown fanout (remote CPUs interrupted per full-AS shootdown): "
    ^ String.concat ", "
        (List.map (fun (k, n) -> Printf.sprintf "%d CPUs x%d" k n) rows)

(* One sample per completed syscall span, in simulated nanoseconds. *)
let latency_histogram trace =
  let h = Metrics.Histogram.create ~base:1.0 ~buckets:48 () in
  List.iter
    (fun (e : Ksim.Trace.event) ->
      if e.phase = Ksim.Trace.End then Metrics.Histogram.add h e.span_ns)
    (Ksim.Trace.events trace);
  h

let run ?(cpus = 1) key =
  match body_of key with
  | None -> None
  | Some body ->
    let base = Sim_driver.config_for ~heap_mib in
    (* cpus = 1 keeps the legacy machine untouched, including its
       [config_for] cpu count (the broadcast-TLB cost formula reads it) *)
    let demand = key = "demand" in
    let config =
      {
        base with
        Ksim.Kernel.trace_capacity = Some 65536;
        smp = cpus > 1;
        cpus = (if cpus > 1 then cpus else base.Ksim.Kernel.cpus);
        demand_paging = demand;
        pager_readahead = (if demand then 8 else 0);
      }
    in
    let init =
      Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () -> body ())
    in
    let programs =
      [ init; true_prog ] @ if demand then [ demand_worker ] else []
    in
    (match Ksim.Kernel.boot ~config ~programs "/sbin/init" with
    | Error e ->
      invalid_arg ("Stat_driver.run: boot failed: " ^ Ksim.Errno.to_string e)
    | Ok (t, outcome) ->
      let cost = Ksim.Kernel.cost t in
      let counters = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
      let trace =
        match Ksim.Kernel.trace t with
        | Some tr -> tr
        | None -> Ksim.Trace.create ()
      in
      let total = Vmem.Cost.total cost in
      let headline =
        Printf.sprintf "whole-run cost: %s cycles = %s; outcome: %s"
          (Metrics.Units.cycles total)
          (Metrics.Units.ns (Vmem.Cost.cycles_to_ns total))
          (Format.asprintf "%a" Ksim.Kernel.pp_outcome outcome)
      in
      let hist = latency_histogram trace in
      let fault_blocks =
        if (Ksim.Kstat.global (Ksim.Kernel.kstat t)).Ksim.Kstat.major_faults = 0
        then []
        else
          [
            Report.Table
              {
                caption = "page faults by pid (major = pager-served)";
                table = faults_table (Ksim.Kernel.kstat t);
              };
          ]
      in
      let smp_blocks =
        match Ksim.Kstat.smp (Ksim.Kernel.kstat t) with
        | None -> []
        | Some s ->
          [
            Report.Table
              {
                caption = "per-CPU counters (smp)";
                table = smp_table s;
              };
            Report.Note (fanout_note s);
          ]
      in
      let report =
        Report.make ~id:("STAT:" ^ key)
          ~title:
            (Printf.sprintf "kstat report: %s"
               (Option.value ~default:key (List.assoc_opt key scenarios)))
          ([
            Report.Note headline;
            Report.Table
              { caption = "cycles by subsystem"; table = groups_table cost };
            Report.Table
              {
                caption = "cycles by cost category";
                table = category_table cost;
              };
            Report.Table
              {
                caption = "kernel counters (kstat, non-zero)";
                table = counters_table counters;
              };
            Report.Table
              { caption = "syscalls by kind"; table = kinds_table counters };
          ]
          @ fault_blocks @ smp_blocks
          @ [
            Report.Note
              (Printf.sprintf
                 "syscall latency (simulated ns, %d completed spans):\n%s"
                 (Metrics.Histogram.count hist)
                 (Metrics.Histogram.render hist));
            Report.Table
              {
                caption = "cost attribution by creation event (blame)";
                table = Profile.Blame_report.table (Ksim.Kernel.blame t);
              };
            Report.Data
              {
                name = "kstat";
                json = Ksim.Kstat.to_json counters;
              };
            Report.Data
              {
                name = "blame";
                json = Profile.Blame_report.to_json (Ksim.Kernel.blame t);
              };
          ])
      in
      Some { report; trace; machine = t })
