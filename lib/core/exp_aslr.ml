(* E5 — fork defeats ASLR: every forked child inherits the parent's
   address-space layout, while every exec'd/spawned child gets a fresh
   randomized one. *)

let ok_or_die = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_aslr: " ^ Ksim.Errno.to_string e)

let report_prog =
  Ksim.Program.make ~name:"/bin/layout-report" (fun ~argv:_ () ->
      let addr = ok_or_die (Ksim.Api.mmap ~len:Vmem.Addr.page_size ~perm:Vmem.Perm.rw) in
      Ksim.Api.print (Printf.sprintf "%x;" addr);
      Ksim.Api.exit 0)

(* Observed mmap placements across [n] children; ASLR stays ON. *)
let layouts ~use_spawn ~n =
  let config = { Ksim.Kernel.default_config with Ksim.Kernel.aslr = true } in
  let body () =
    for _ = 1 to n do
      let pid =
        if use_spawn then ok_or_die (Ksim.Api.spawn "/bin/layout-report")
        else
          ok_or_die
            (Ksim.Api.fork ~child:(fun () ->
                 let addr =
                   ok_or_die
                     (Ksim.Api.mmap ~len:Vmem.Addr.page_size ~perm:Vmem.Perm.rw)
                 in
                 Ksim.Api.print (Printf.sprintf "%x;" addr);
                 Ksim.Api.exit 0))
      in
      ignore (ok_or_die (Ksim.Api.wait_for pid))
    done
  in
  let m = Sim_driver.run_scenario ~config ~programs:[ report_prog ] body in
  String.split_on_char ';' m.Sim_driver.console
  |> List.filter (fun s -> s <> "")

let shannon_bits layouts =
  let total = float_of_int (List.length layouts) in
  let freq = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace freq l (1 + Option.value ~default:0 (Hashtbl.find_opt freq l)))
    layouts;
  Hashtbl.fold
    (fun _ count acc ->
      let p = float_of_int count /. total in
      acc -. (p *. Float.log2 p))
    freq 0.0

let distinct layouts = List.length (List.sort_uniq compare layouts)

let run ~quick =
  let n = if quick then 50 else 200 in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "child creation"; "children"; "distinct layouts"; "entropy (bits)" ]
  in
  let add label use_spawn =
    let ls = layouts ~use_spawn ~n in
    Metrics.Table.add_row table
      [
        label;
        string_of_int (List.length ls);
        string_of_int (distinct ls);
        Printf.sprintf "%.2f" (shannon_bits ls);
      ]
  in
  add "fork" false;
  add "posix_spawn" true;
  Report.make ~id:"E5" ~title:"fork defeats address-space randomization"
    [
      Report.Table { caption = "mmap placement across children (ASLR on)"; table };
      Report.Note
        "forked children observe exactly the parent's layout (one distinct \
         placement, zero bits of entropy), so one leaked pointer \
         de-randomizes every fork-descendant; spawn re-randomizes each \
         child at image load.";
    ]

let experiment =
  {
    Report.exp_id = "E5";
    exp_title = "fork defeats address-space randomization";
    paper_claim =
      "fork children share the parent's layout, voiding ASLR across \
       workers; exec/spawn re-randomizes";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
