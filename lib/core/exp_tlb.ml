(* E9 (ablation) — where the cycles go: COW fork vs eager-copy fork vs
   spawn, with the TLB work fork's write-protection forces made
   explicit. *)

let heap_mib = 64

let run ~quick =
  ignore quick;
  let strategies =
    [ Strategy.Fork_only; Strategy.Fork_eager; Strategy.Posix_spawn ]
  in
  let measurements =
    Workload.Par.map
      (fun s -> (s, Sim_driver.creation_cost ~strategy:s ~heap_mib ()))
      strategies
  in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "strategy"; "total"; "pt copy"; "page copy"; "tlb"; "exec load" ]
  in
  let group m g =
    Option.value ~default:0.0 (List.assoc_opt g m.Sim_driver.groups)
  in
  let counter m k =
    Option.value ~default:0 (List.assoc_opt k m.Sim_driver.counters)
  in
  List.iter
    (fun (s, m) ->
      Metrics.Table.add_row table
        [
          Strategy.name s;
          Metrics.Units.cycles m.Sim_driver.cycles;
          Metrics.Units.cycles (group m "pt-copy");
          Metrics.Units.cycles (group m "frame-copy");
          Metrics.Units.cycles (group m "tlb");
          Metrics.Units.cycles (group m "exec");
        ])
    measurements;
  let counters_table =
    let t =
      Metrics.Table.create
        ~align:[ Metrics.Table.Left ]
        [
          "strategy"; "ptes copied"; "frames copied"; "tlb flushes";
          "shootdown IPIs";
        ]
    in
    List.iter
      (fun (s, m) ->
        Metrics.Table.add_row t
          [
            Strategy.name s;
            string_of_int (counter m "ptes-copied");
            string_of_int (counter m "frames-copied");
            string_of_int (counter m "tlb-flushes");
            string_of_int (counter m "tlb-shootdowns");
          ])
      measurements;
    t
  in
  let data =
    Metrics.Json.arr
      (List.map
         (fun (s, m) ->
           Metrics.Json.obj
             [
               ("strategy", Metrics.Json.str (Strategy.name s));
               ("cycles", Metrics.Json.num m.Sim_driver.cycles);
               ( "groups",
                 Metrics.Json.obj
                   (List.map
                      (fun (g, c) -> (g, Metrics.Json.num c))
                      m.Sim_driver.groups) );
               ( "counters",
                 Metrics.Json.obj
                   (List.map
                      (fun (k, n) -> (k, Metrics.Json.int n))
                      m.Sim_driver.counters) );
             ])
         measurements)
  in
  Report.make ~id:"E9" ~title:"ablation: COW vs eager copy vs spawn"
    [
      Report.Table
        {
          caption =
            Printf.sprintf "cycle breakdown creating a child of a %d MiB parent"
              heap_mib;
          table;
        };
      Report.Table
        { caption = "kernel counters (kstat) per creation"; table = counters_table };
      Report.Data { name = "strategies"; json = data };
      Report.Note
        "COW trades the eager page copy for page-table work plus a \
         mandatory TLB shootdown of the parent (every writable PTE is \
         downgraded); eager copy avoids later faults but pays the full \
         memory copy up front; spawn pays neither -- only the constant \
         image load.";
    ]

let experiment =
  {
    Report.exp_id = "E9";
    exp_title = "ablation: COW vs eager copy vs spawn";
    paper_claim =
      "supporting fork efficiently is what drags COW machinery and TLB \
       shootdowns into the kernel's memory subsystem";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
