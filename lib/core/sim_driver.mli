(** Deterministic measurements on the ksim simulator.

    Costs are isolated differentially: a scenario is run twice from
    identical initial state — once with and once without the operation
    under test — and the cycle-meter difference is the operation's cost.
    Runs are bit-for-bit deterministic, so one pair of runs per data
    point suffices (no sampling noise). *)

type measurement = {
  cycles : float;
  ns : float;  (** cycles through {!Vmem.Cost.cycles_to_ns} *)
  breakdown : (string * float) list;
  groups : (string * float) list;
      (** [breakdown] folded into subsystems (["pt-copy"], ["fault"],
          ["frame-copy"], ["tlb"], ["exec"], ["other"]); the groups
          partition the categories, so they sum to [cycles] exactly *)
  counters : (string * int) list;
      (** {!Ksim.Kstat} counter activity (snapshot names); differential
          measurements report per-operation deltas, zeros dropped *)
  console : string;
  outcome : Ksim.Kernel.outcome;
  tlb : Vmem.Tlb.stats;
}

val group_order : string list
(** The subsystem group names in display order. *)

val groups_of_breakdown : (string * float) list -> (string * float) list
(** Fold any category breakdown into the subsystem groups above. *)

val run_scenario :
  ?config:Ksim.Kernel.config ->
  ?programs:Ksim.Program.t list ->
  (unit -> unit) ->
  measurement
(** Boot a kernel whose init runs the body (with [/bin/true] always
    registered), run to quiescence, and report whole-run totals. *)

val boot_scenario :
  ?config:Ksim.Kernel.config ->
  ?programs:Ksim.Program.t list ->
  (unit -> unit) ->
  Ksim.Kernel.t * Ksim.Kernel.outcome
(** {!run_scenario} without the summarising: hands back the quiesced
    machine for callers that harvest state the measurement record
    doesn't carry — trace spans (E13's latency percentiles),
    fault-injection counts, per-pid counters. *)

val config_for : heap_mib:int -> Ksim.Kernel.config
(** Overcommit, ASLR off (differential runs need identical prefixes),
    physical memory sized to hold the footprint twice over. *)

val with_footprint : heap_mib:int -> vmas:int -> (unit -> unit)
(** A program fragment that maps the footprint across [vmas] regions and
    write-touches every page. Runs inside a simulated program. *)

val creation_cost :
  ?vmas:int -> strategy:Strategy.t -> heap_mib:int -> unit -> measurement
(** Differential cost of one create+wait of [/bin/true] (or an
    immediately-exiting child for [Fork_only]/[Fork_eager]) from a parent
    with the given touched footprint. *)
