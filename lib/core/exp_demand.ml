(* E18 — demand paging: lazy creation, first-touch warm-up, and the
   overcommit reckoning. Eager creation pays for the child's memory up
   front — fork walks the parent's page tables, spawn loads the whole
   exec image — so cold-start latency grows with the footprint. A
   demand-paged kernel installs lazy mappings in O(segments) and pulls
   pages through a user-mode pager on first touch, making cold start
   flat across a 256x image range; the bill moves to the warm-up phase,
   proportional to the pages actually touched. The same deferral shows
   up in commit accounting: the [Demand] policy admits workloads Strict
   refuses, paying for it with OOM kills when first touches outrun
   physical memory. *)

let ok_or_die what = function
  | Ok v -> v
  | Error e ->
    invalid_arg ("Exp_demand: " ^ what ^ ": " ^ Ksim.Errno.to_string e)

type style = Eager_fork | Eager_spawn | Lazy_exec | Lazy_zygote

let styles = [ Eager_fork; Eager_spawn; Lazy_exec; Lazy_zygote ]

let style_name = function
  | Eager_fork -> "eager-fork"
  | Eager_spawn -> "eager-spawn"
  | Lazy_exec -> "lazy-exec"
  | Lazy_zygote -> "lazy-zygote"

let demand_of = function
  | Eager_fork | Eager_spawn -> false
  | Lazy_exec | Lazy_zygote -> true

(* The trace span each style's creation syscall ends with. *)
let span_of = function
  | Eager_fork -> "fork"
  | Eager_spawn | Lazy_exec -> "posix_spawn"
  | Lazy_zygote -> "template_spawn"

let mib = 1024 * 1024
let page = Vmem.Addr.page_size

(* The workload image for the spawn styles: a small text segment plus a
   data segment holding the whole footprint (think a large linked-in
   model). The worker touches the first [argv] bytes of its data — under
   eager exec those pages were loaded at map time; under demand paging
   each first touch is an image-backed major fault. *)
let worker_text_kib = 64
let worker_data_base = Ksim.Kernel.image_base + (worker_text_kib * 1024)

let worker_prog ~footprint_mib =
  Ksim.Program.make ~name:"/worker" ~text_kib:worker_text_kib
    ~data_kib:(footprint_mib * 1024) (fun ~argv () ->
      (match argv with
      | [ len ] ->
        let len = int_of_string len in
        if len > 0 then
          ignore
            (ok_or_die "worker touch"
               (Ksim.Api.touch ~addr:worker_data_base ~len))
      | _ -> ());
      Ksim.Api.exit 0)

(* init's own image geometry (Program.make defaults), needed to warm it
   before a freeze under demand paging. *)
let init_text_len = 64 * 1024
let init_data_base = Ksim.Kernel.image_base + init_text_len
let init_data_len = 16 * 1024

let config ~demand ~readahead ~footprint_mib =
  {
    (Sim_driver.config_for ~heap_mib:footprint_mib) with
    Ksim.Kernel.trace_capacity = Some 16_384;
    demand_paging = demand;
    pager_readahead = readahead;
  }

(* Map the footprint as one anonymous region and write-touch all of it —
   the warm master the fork and zygote styles inherit from. *)
let map_and_touch ~footprint_mib =
  let len = footprint_mib * mib in
  let addr = ok_or_die "mmap" (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw) in
  ignore (ok_or_die "master touch" (Ksim.Api.touch ~addr ~len));
  addr

(* Resolve init's own lazy image pages (data by write-touch, text by
   reading) so its space can be sealed: freeze refuses sources with
   unresolved pager-backed pages. *)
let warm_own_image () =
  ignore
    (ok_or_die "warm data"
       (Ksim.Api.touch ~addr:init_data_base ~len:init_data_len));
  ignore
    (ok_or_die "warm text"
       (Ksim.Api.mem_read ~addr:Ksim.Kernel.image_base ~len:init_text_len))

let body ~style ~footprint_mib ~touch_len ~n () =
  let child_touch addr () =
    if touch_len > 0 then
      ignore (ok_or_die "child touch" (Ksim.Api.touch ~addr ~len:touch_len));
    Ksim.Api.exit 0
  in
  match style with
  | Eager_spawn | Lazy_exec ->
    for _ = 1 to n do
      let pid =
        ok_or_die "spawn"
          (Ksim.Api.spawn "/worker" ~argv:[ string_of_int touch_len ])
      in
      ignore (ok_or_die "wait" (Ksim.Api.wait_for pid))
    done
  | Eager_fork ->
    let addr = map_and_touch ~footprint_mib in
    for _ = 1 to n do
      let pid = ok_or_die "fork" (Ksim.Api.fork ~child:(child_touch addr)) in
      ignore (ok_or_die "wait" (Ksim.Api.wait_for pid))
    done
  | Lazy_zygote ->
    let addr = map_and_touch ~footprint_mib in
    warm_own_image ();
    let tpl = ok_or_die "freeze" (Ksim.Api.freeze ()) in
    for _ = 1 to n do
      let pid =
        ok_or_die "spawn_from_template"
          (Ksim.Api.spawn_from_template tpl ~child:(child_touch addr))
      in
      ignore (ok_or_die "wait" (Ksim.Api.wait_for pid))
    done

type point = {
  style : style;
  fmib : int;
  frac : float;  (** fraction of the footprint the child touches *)
  create_ns : Metrics.Stats.t;  (** creation-syscall span latencies *)
  warm_ns : Metrics.Stats.t;
      (** creation + touch span per child: time to first N touches *)
  majors : int;
  minors : int;
  fetched : int;
  ra_hits : int;
  oom_kills : int;
}

let harvest t ~style ~fmib ~frac ~touched =
  let tr = Option.get (Ksim.Kernel.trace t) in
  let spans what ~of_children =
    List.filter_map
      (fun (e : Ksim.Trace.event) ->
        if
          e.Ksim.Trace.phase = Ksim.Trace.End
          && e.Ksim.Trace.what = what
          && (if of_children then e.Ksim.Trace.pid <> 1
              else e.Ksim.Trace.pid = 1)
          && e.Ksim.Trace.outcome = Some Ksim.Trace.Ok_result
        then Some e.Ksim.Trace.span_ns
        else None)
      (Ksim.Trace.events tr)
  in
  let create = spans (span_of style) ~of_children:false in
  let touch = if touched then spans "touch" ~of_children:true else [] in
  let warm =
    if List.length touch = List.length create then
      List.map2 ( +. ) create touch
    else create
  in
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  {
    style;
    fmib;
    frac;
    create_ns = Metrics.Stats.of_list create;
    warm_ns = Metrics.Stats.of_list warm;
    majors = g.Ksim.Kstat.major_faults;
    minors = g.Ksim.Kstat.minor_faults;
    fetched = g.Ksim.Kstat.pages_fetched;
    ra_hits = g.Ksim.Kstat.readahead_hits;
    oom_kills = g.Ksim.Kstat.oom_kills;
  }

let run_point ~n ~readahead ~footprint_mib ~frac style =
  let total_pages = footprint_mib * mib / page in
  let touch_pages =
    if frac <= 0.0 then 0
    else max 1 (int_of_float (frac *. float_of_int total_pages))
  in
  let touch_len = touch_pages * page in
  let config = config ~demand:(demand_of style) ~readahead ~footprint_mib in
  let t, _ =
    Sim_driver.boot_scenario ~config
      ~programs:[ worker_prog ~footprint_mib ]
      (body ~style ~footprint_mib ~touch_len ~n)
  in
  harvest t ~style ~fmib:footprint_mib ~frac ~touched:(touch_pages > 0)

(* ------------------------------------------------------------------ *)
(* Overcommit-policy sweep: E13-style pressure, k workers each
   reserving more than their share and touching part of it. Strict
   refuses admission up front; Overcommit admits everyone and lets the
   unlucky toucher crash with ENOMEM; Demand admits everyone and
   resolves the pressure by OOM-killing victims. Workers encode their
   fate in the exit status; init tallies them onto the console. *)

let pressure_phys_mib = 256
let pressure_workers = 6

let pressure_body ~map_len ~touch_len () =
  (* the scheduler runs a thread until it blocks, so the workers yield
     between chunks: reservations and touched pages accumulate across
     all of them concurrently — the E13-style pressure profile *)
  let worker () =
    match Ksim.Api.mmap ~len:map_len ~perm:Vmem.Perm.rw with
    | Error _ -> Ksim.Api.exit 2 (* admission refused *)
    | Ok addr ->
      Ksim.Api.yield ();
      let chunk = max page (touch_len / 8) in
      let rec go off =
        if off >= touch_len then Ksim.Api.exit 0
        else
          match
            Ksim.Api.touch ~addr:(addr + off)
              ~len:(min chunk (touch_len - off))
          with
          | Ok _ ->
            Ksim.Api.yield ();
            go (off + chunk)
          | Error _ -> Ksim.Api.exit 3 (* ENOMEM at first touch *)
      in
      go 0
  in
  let pids =
    List.init pressure_workers (fun _ ->
        ok_or_die "pressure fork" (Ksim.Api.fork ~child:worker))
  in
  let ok = ref 0 and refused = ref 0 and faulted = ref 0 and killed = ref 0 in
  List.iter
    (fun pid ->
      match ok_or_die "pressure wait" (Ksim.Api.wait_for pid) with
      | Ksim.Types.Exited 0 -> incr ok
      | Ksim.Types.Exited 2 -> incr refused
      | Ksim.Types.Exited 3 -> incr faulted
      | Ksim.Types.Exited _ -> ()
      | Ksim.Types.Killed _ -> incr killed)
    pids;
  Ksim.Api.print
    (Printf.sprintf "completed=%d refused=%d faulted=%d killed=%d\n" !ok
       !refused !faulted !killed)

let pressure_point policy =
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.phys_pages = pressure_phys_mib * mib / page;
      commit_policy = policy;
      aslr = false;
      demand_paging = (policy = Vmem.Frame.Demand);
    }
  in
  (* each worker reserves ~40% of physical memory but touches only
     5/8 of it: strict admission can back at most two of the six
     reservations, yet the actual footprints (6 x 25%) only modestly
     exceed the machine — the regime where Demand's late reckoning
     beats Strict's early refusal *)
  let map_len = pressure_phys_mib * mib * 2 / 5 in
  let touch_len = map_len * 5 / 8 in
  let t, _ =
    Sim_driver.boot_scenario ~config (pressure_body ~map_len ~touch_len)
  in
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  (Ksim.Kernel.console t, g.Ksim.Kstat.oom_kills)

let policy_name = function
  | Vmem.Frame.Strict -> "strict"
  | Vmem.Frame.Overcommit -> "overcommit"
  | Vmem.Frame.Demand -> "demand"

(* ------------------------------------------------------------------ *)

let pct f = Printf.sprintf "%.0f%%" (100.0 *. f)

let run ~quick =
  let footprints = if quick then [ 16; 256 ] else [ 16; 64; 256; 1024; 4096 ] in
  let fracs = if quick then [ 0.01; 1.0 ] else [ 0.01; 0.1; 0.5; 1.0 ] in
  let n = if quick then 4 else 8 in
  let warm_frac = List.fold_left max 0.0 fracs in
  let points =
    Workload.Par.map
      (fun (fmib, style, frac) ->
        run_point ~n ~readahead:0 ~footprint_mib:fmib ~frac style)
      (List.concat_map
         (fun fmib ->
           List.concat_map
             (fun style -> List.map (fun frac -> (fmib, style, frac)) fracs)
             styles)
         footprints)
  in
  let find ~fmib ~style ~frac =
    List.find
      (fun p -> p.fmib = fmib && p.style = style && p.frac = frac)
      points
  in
  (* cold start: creation-syscall p50 across image sizes *)
  let cold_table =
    Metrics.Table.create ([ "footprint" ] @ List.map style_name styles)
  in
  List.iter
    (fun fmib ->
      Metrics.Table.add_row cold_table
        (Printf.sprintf "%d MiB" fmib
        :: List.map
             (fun s ->
               let p = find ~fmib ~style:s ~frac:warm_frac in
               Metrics.Units.ns p.create_ns.Metrics.Stats.p50)
             styles))
    footprints;
  (* warm-up: creation + first-N-touches at the largest footprint *)
  let big = List.fold_left max 0 footprints in
  let warm_table =
    Metrics.Table.create
      [ "touched"; "api"; "cold p50"; "warm p50"; "major"; "minor" ]
  in
  List.iter
    (fun frac ->
      List.iter
        (fun style ->
          let p = find ~fmib:big ~style ~frac in
          Metrics.Table.add_row warm_table
            [
              pct frac;
              style_name style;
              Metrics.Units.ns p.create_ns.Metrics.Stats.p50;
              Metrics.Units.ns p.warm_ns.Metrics.Stats.p50;
              string_of_int p.majors;
              string_of_int p.minors;
            ])
        styles)
    fracs;
  let warmup_fig =
    Metrics.Series.figure ~xlog:true ~ylog:true
      ~title:
        (Printf.sprintf "time to first touches, %d MiB footprint" big)
      ~xlabel:"fraction touched" ~ylabel:"create+touch p50 (sim ns)"
      (List.map
         (fun style ->
           {
             Metrics.Series.label = style_name style;
             points =
               List.map
                 (fun frac ->
                   let p = find ~fmib:big ~style ~frac in
                   (frac, p.warm_ns.Metrics.Stats.p50))
                 fracs;
           })
         styles)
  in
  (* readahead: same lazy-exec warm-up, batched pager pulls *)
  let ra_mib = min (List.fold_left max 0 footprints) 256 in
  let readaheads = [ 0; 8; 64 ] in
  let ra_points =
    Workload.Par.map
      (fun ra ->
        ( ra,
          run_point ~n ~readahead:ra ~footprint_mib:ra_mib ~frac:1.0 Lazy_exec
        ))
      readaheads
  in
  let ra_table =
    Metrics.Table.create
      [
        "readahead"; "warm p50"; "pager requests"; "pages fetched";
        "readahead hits";
      ]
  in
  List.iter
    (fun (ra, p) ->
      Metrics.Table.add_row ra_table
        [
          string_of_int ra;
          Metrics.Units.ns p.warm_ns.Metrics.Stats.p50;
          string_of_int p.majors;
          string_of_int p.fetched;
          string_of_int p.ra_hits;
        ])
    ra_points;
  (* overcommit policies under pressure *)
  let policies = [ Vmem.Frame.Strict; Vmem.Frame.Overcommit; Vmem.Frame.Demand ] in
  let pressure = List.map (fun p -> (p, pressure_point p)) policies in
  let pressure_table =
    Metrics.Table.create [ "policy"; "worker fates"; "oom kills" ]
  in
  List.iter
    (fun (policy, (console, kills)) ->
      Metrics.Table.add_row pressure_table
        [ policy_name policy; String.trim console; string_of_int kills ])
    pressure;
  let data =
    Metrics.Json.obj
      [
        ( "points",
          Metrics.Json.arr
            (List.map
               (fun p ->
                 Metrics.Json.obj
                   [
                     ("mib", Metrics.Json.int p.fmib);
                     ("api", Metrics.Json.str (style_name p.style));
                     ("frac", Metrics.Json.num p.frac);
                     ("create", Metrics.Stats.to_json p.create_ns);
                     ("warm", Metrics.Stats.to_json p.warm_ns);
                     ("major_faults", Metrics.Json.int p.majors);
                     ("minor_faults", Metrics.Json.int p.minors);
                     ("pages_fetched", Metrics.Json.int p.fetched);
                     ("readahead_hits", Metrics.Json.int p.ra_hits);
                   ])
               points) );
        ( "readahead",
          Metrics.Json.arr
            (List.map
               (fun (ra, p) ->
                 Metrics.Json.obj
                   [
                     ("readahead", Metrics.Json.int ra);
                     ("warm", Metrics.Stats.to_json p.warm_ns);
                     ("pager_requests", Metrics.Json.int p.majors);
                     ("pages_fetched", Metrics.Json.int p.fetched);
                     ("readahead_hits", Metrics.Json.int p.ra_hits);
                   ])
               ra_points) );
        ( "pressure",
          Metrics.Json.arr
            (List.map
               (fun (policy, (console, kills)) ->
                 Metrics.Json.obj
                   [
                     ("policy", Metrics.Json.str (policy_name policy));
                     ("fates", Metrics.Json.str (String.trim console));
                     ("oom_kills", Metrics.Json.int kills);
                   ])
               pressure) );
      ]
  in
  Report.make ~id:"E18" ~title:"demand paging: lazy creation and warm-up"
    [
      Report.Table
        {
          caption =
            Printf.sprintf
              "cold start: creation-syscall p50 over %d creations (child \
               touches %s of the footprint afterwards)"
              n (pct warm_frac);
          table = cold_table;
        };
      Report.Table
        {
          caption =
            Printf.sprintf
              "warm-up at %d MiB: creation + touching the given fraction"
              big;
          table = warm_table;
        };
      Report.Figure warmup_fig;
      Report.Table
        {
          caption =
            Printf.sprintf
              "pager readahead (lazy-exec, %d MiB, 100%% touched): batching \
               amortises the per-fault pager request"
              ra_mib;
          table = ra_table;
        };
      Report.Table
        {
          caption =
            Printf.sprintf
              "commit policies under pressure: %d workers on a %d MiB \
               machine, each reserving 40%% of it and touching 25%%"
              pressure_workers pressure_phys_mib;
          table = pressure_table;
        };
      Report.Note
        "eager creation pays the footprint up front: fork's cold start grows \
         with the parent's page tables and eager spawn's with the exec \
         image, while lazy exec and the lazy zygote stay flat across a 256x \
         range -- the cost moves to warm-up, where each first touch is a \
         major fault through the user-mode pager, proportional to the pages \
         actually used. Readahead trades per-fault pager requests for \
         speculative pulls. The same deferral governs admission: Strict \
         refuses reservations that cannot be backed, Overcommit admits them \
         and lets a toucher crash, Demand admits them and reconciles at \
         first touch by OOM-killing the largest resident process -- late, \
         targeted failure instead of early, spurious refusal.";
      Report.Data { name = "demand-points"; json = data };
    ]

let experiment =
  {
    Report.exp_id = "E18";
    exp_title = "demand paging: lazy creation and warm-up";
    paper_claim =
      "demand paging decouples creation latency from footprint: lazy \
       exec/zygote cold start is constant where fork and eager spawn grow \
       linearly, at the price of first-touch major faults during warm-up \
       and an overcommit policy that must reconcile memory at touch time";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
