(* E16 — smp: TLB-shootdown scaling with core count. The paper's
   multicore complaint about fork is architectural: COW means every
   fork write-protects the parent's address space, and on a real SMP
   machine that protection change must be pushed to every core whose
   TLB may cache a stale mapping — an IPI storm whose size grows with
   the core count. posix_spawn and zygote templates never transmute a
   live address space, so they send none.

   The SMP kernel models this precisely: per-address-space CPU masks
   track which simulated CPUs cached a mapping, and a shootdown IPIs
   exactly those remote CPUs. Here a fork-heavy master keeps n-1
   spinner threads hot on the other CPUs (a thread-pooled server, the
   shape the paper warns about) and creates children in a loop; the
   creation latency and total IPI count are swept over 1..64 CPUs for
   each creation API.

   The sweep also exercises the harness-level parallelism stack: sweep
   points fan out over Workload.Par.map domains, and a separate
   demonstration runs one 8-CPU workload with par_jobs 1 vs 4 to show
   domain-parallel syscall execution changes wall time only — every
   simulated number is bit-identical. *)

type style = Fork | Vfork | Spawn | Zygote

let styles = [ Fork; Vfork; Spawn; Zygote ]

let style_name = function
  | Fork -> "fork"
  | Vfork -> "vfork"
  | Spawn -> "posix_spawn"
  | Zygote -> "zygote"

(* The trace span each style's creation syscall ends with. *)
let span_name = function
  | Fork -> "fork"
  | Vfork -> "vfork"
  | Spawn -> "posix_spawn"
  | Zygote -> "template_spawn"

let ok_or_die what = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_smp: " ^ what ^ ": " ^ Ksim.Errno.to_string e)

let config ~heap_mib ~cpus ~par_jobs =
  {
    (Sim_driver.config_for ~heap_mib) with
    Ksim.Kernel.smp = true;
    cpus;
    par_jobs;
    trace_capacity = Some 65_536;
  }

(* One boot per (cpus, style): warm the footprint (freeze it for the
   zygote), park a spinner thread on every other CPU so the master's
   address space stays cached machine-wide — the worst case the paper
   describes — then run [iters] create+wait cycles. *)
let point_body ~heap_mib ~cpus ~iters style () =
  Sim_driver.with_footprint ~heap_mib ~vmas:8 ();
  let tpl =
    match style with
    | Zygote -> Some (ok_or_die "freeze" (Ksim.Api.freeze ()))
    | Fork | Vfork | Spawn -> None
  in
  let stop = ref false in
  for _ = 2 to cpus do
    ignore
      (ok_or_die "spinner"
         (Ksim.Api.thread_create (fun () ->
              while not !stop do
                Ksim.Api.yield ()
              done)))
  done;
  (* give every spinner a slice so all CPUs are warm before creating *)
  for _ = 1 to 2 do
    Ksim.Api.yield ()
  done;
  for _ = 1 to iters do
    let pid =
      match (style, tpl) with
      | Zygote, Some id ->
        ok_or_die "spawn_from_template"
          (Ksim.Api.spawn_from_template id ~child:(fun () -> Ksim.Api.exit 0))
      | Zygote, None -> assert false
      | Fork, _ ->
        ok_or_die "fork" (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0))
      | Vfork, _ ->
        ok_or_die "vfork" (Ksim.Api.vfork ~child:(fun () -> Ksim.Api.exit 0))
      | Spawn, _ -> ok_or_die "spawn" (Ksim.Api.spawn "/bin/true")
    in
    ignore (ok_or_die "wait" (Ksim.Api.wait_for pid))
  done;
  stop := true

type point = {
  cpus : int;
  style : style;
  iters : int;
  ok_ns : float list;  (** per-creation span latencies, simulated ns *)
  ipis : int;  (** total shootdown IPIs sent over the whole run *)
  steals : int;
}

let smp_point ~heap_mib ~iters (cpus, style) =
  let config = config ~heap_mib ~cpus ~par_jobs:1 in
  let t, outcome =
    Sim_driver.boot_scenario ~config (point_body ~heap_mib ~cpus ~iters style)
  in
  (match outcome with
  | Ksim.Kernel.All_exited -> ()
  | _ -> invalid_arg "Exp_smp: sweep point did not run to completion");
  let tr = Option.get (Ksim.Kernel.trace t) in
  let ok_ns =
    List.filter_map
      (fun (e : Ksim.Trace.event) ->
        if
          e.Ksim.Trace.phase = Ksim.Trace.End
          && e.Ksim.Trace.what = span_name style
          && e.Ksim.Trace.pid = 1
          && e.Ksim.Trace.outcome = Some Ksim.Trace.Ok_result
        then Some e.Ksim.Trace.span_ns
        else None)
      (Ksim.Trace.events tr)
  in
  let g = Ksim.Kstat.global (Ksim.Kernel.kstat t) in
  {
    cpus;
    style;
    iters;
    ok_ns;
    ipis = g.Ksim.Kstat.ipis_sent;
    steals = g.Ksim.Kstat.cpu_steals;
  }

(* ------------------------------------------------------------------ *)
(* Domain-parallel execution demo: same workload, par_jobs 1 vs 4.
   Eight freshly-spawned workers (disjoint COW families) touch and fork
   on eight simulated CPUs, so each scheduling round offers the kernel
   a batch of independent syscall cores to fan out over OCaml domains.
   The simulated totals must be bit-identical; only wall time moves. *)

let demo_worker =
  Ksim.Program.make ~name:"/worker" (fun ~argv:_ () ->
      let len = 32 * 1024 * 1024 in
      let addr = ok_or_die "mmap" (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw) in
      let chunk = len / 8 in
      for i = 0 to 7 do
        ignore
          (ok_or_die "touch"
             (Ksim.Api.touch ~addr:(addr + (i * chunk)) ~len:chunk))
      done;
      Ksim.Api.exit 0)

let demo_run ~par_jobs =
  let config = config ~heap_mib:128 ~cpus:8 ~par_jobs in
  let t0 = Unix.gettimeofday () in
  let t, outcome =
    Sim_driver.boot_scenario ~config ~programs:[ demo_worker ] (fun () ->
        let pids =
          List.init 8 (fun _ -> ok_or_die "spawn" (Ksim.Api.spawn "/worker"))
        in
        List.iter
          (fun pid -> ignore (ok_or_die "wait" (Ksim.Api.wait_for pid)))
          pids)
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (match outcome with
  | Ksim.Kernel.All_exited -> ()
  | _ -> invalid_arg "Exp_smp: par demo did not run to completion");
  (Vmem.Cost.total (Ksim.Kernel.cost t), wall_ms)

(* ------------------------------------------------------------------ *)

let run ~quick =
  let cpu_list = if quick then [ 1; 2; 4; 8 ] else [ 1; 2; 4; 8; 16; 32; 48; 64 ] in
  let iters = if quick then 3 else 6 in
  let heap_mib = if quick then 8 else 64 in
  let grid =
    List.concat_map (fun c -> List.map (fun s -> (c, s)) styles) cpu_list
  in
  let t0 = Unix.gettimeofday () in
  let points = Workload.Par.map (smp_point ~heap_mib ~iters) grid in
  let sweep_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let table =
    Metrics.Table.create
      [ "cpus"; "api"; "create p50"; "create p99"; "shootdown IPIs" ]
  in
  List.iter
    (fun p ->
      let stats =
        if p.ok_ns = [] then None else Some (Metrics.Stats.of_list p.ok_ns)
      in
      let pct f =
        match stats with None -> "-" | Some s -> Metrics.Units.ns (f s)
      in
      Metrics.Table.add_row table
        [
          string_of_int p.cpus;
          style_name p.style;
          pct (fun s -> s.Metrics.Stats.p50);
          pct (fun s -> s.Metrics.Stats.p99);
          string_of_int p.ipis;
        ])
    points;
  let cycles_j1, wall_j1 = demo_run ~par_jobs:1 in
  let cycles_j4, wall_j4 = demo_run ~par_jobs:4 in
  let data =
    Metrics.Json.obj
      [
        ( "sweep",
          Metrics.Json.arr
            (List.map
               (fun p ->
                 Metrics.Json.obj
                   ([
                      ("cpus", Metrics.Json.int p.cpus);
                      ("api", Metrics.Json.str (style_name p.style));
                      ("iters", Metrics.Json.int p.iters);
                      ("ipis_sent", Metrics.Json.int p.ipis);
                      ("steals", Metrics.Json.int p.steals);
                    ]
                   @
                   if p.ok_ns = [] then []
                   else
                     [
                       ( "latency",
                         Metrics.Stats.to_json (Metrics.Stats.of_list p.ok_ns)
                       );
                     ]))
               points) );
        ("sweep_wall_ms", Metrics.Json.num sweep_wall_ms);
        ( "par_demo",
          Metrics.Json.obj
            [
              ("cycles_jobs1", Metrics.Json.num cycles_j1);
              ("cycles_jobs4", Metrics.Json.num cycles_j4);
              ("identical", Metrics.Json.bool (cycles_j1 = cycles_j4));
              ("jobs1_wall_ms", Metrics.Json.num wall_j1);
              ("jobs4_wall_ms", Metrics.Json.num wall_j4);
            ] );
      ]
  in
  Report.make ~id:"E16" ~title:"smp: TLB shootdown scaling with core count"
    [
      Report.Table
        {
          caption =
            Printf.sprintf
              "simulated SMP, %d MiB master footprint, %d create+wait cycles \
               per cell; n-1 spinner threads keep every other CPU's TLB warm"
              heap_mib iters;
          table;
        };
      Report.Note
        "fork's latency and IPI bill grow with the core count: every fork \
         write-protects the master's address space, and the shootdown must \
         interrupt each CPU that cached a mapping — with a thread per core, \
         that is all of them (each fork sends exactly cpus-1 IPIs here). \
         vfork borrows the address space without transmuting it, posix_spawn \
         builds a fresh image, and a zygote template pays its one shootdown \
         at freeze time — all three stay flat from 1 to 64 CPUs with zero \
         per-creation IPIs. The par_demo block runs one 8-CPU workload with \
         par_jobs 1 vs 4: simulated cycle totals are bit-identical (the \
         kernel records each parallel core's charges and replays them in CPU \
         order) — only wall time may change, and only on a multi-core host \
         (on a single-core machine domain fan-out can only add overhead).";
      Report.Data { name = "smp-scaling"; json = data };
    ]

let experiment =
  {
    Report.exp_id = "E16";
    exp_title = "smp: TLB shootdown scaling with core count";
    paper_claim =
      "fork gets more expensive as machines grow: COW write-protection \
       requires TLB shootdown IPIs to every core caching the parent's \
       address space, a per-creation cost that scales with the core count; \
       spawn-style creation and zygote templates send none";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
