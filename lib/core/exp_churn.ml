(* E14 — churn: sustained creations+exits per second as the master's
   footprint grows. fork pays for the parent's page tables on every
   child, fork-eager additionally copies every frame, posix_spawn pays
   for a fresh exec image — all per creation. A zygote template pays the
   footprint cost once at freeze time; each spawn then clones O(shared
   page-table subtrees), so its latency is flat from 16 MiB to 4 GiB and
   its churn throughput does not decay with the master's size.

   The real-OS side shows the same shape with the tools an application
   actually has: creating a process per request (fork+exec or
   posix_spawn) versus dispatching to a prefork Spawnlib.Pool — the
   warm-worker idiom Android's zygote institutionalises. *)

type style = Fork | Fork_eager | Spawn | Zygote

let styles = [ Fork; Fork_eager; Spawn; Zygote ]

let style_name = function
  | Fork -> "fork"
  | Fork_eager -> "fork-eager"
  | Spawn -> "posix_spawn"
  | Zygote -> "zygote"

(* The trace span each style's creation syscall ends with. *)
let span_name = function
  | Fork -> "fork"
  | Fork_eager -> "fork_eager"
  | Spawn -> "posix_spawn"
  | Zygote -> "template_spawn"

let ok_or_die what = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_churn: " ^ what ^ ": " ^ Ksim.Errno.to_string e)

let vmas = 8

let config ~heap_mib =
  {
    (Sim_driver.config_for ~heap_mib) with
    Ksim.Kernel.trace_capacity = Some 16_384;
  }

(* One boot per (footprint, style): warm the footprint (and freeze it,
   for the zygote), then run [n] create+wait cycles — or none, for the
   differential base run. The base includes the freeze, so the
   difference is purely the churn: creations, exits, waits. *)
let churn_body ~heap_mib ~n style ~churn () =
  Sim_driver.with_footprint ~heap_mib ~vmas ();
  let tpl =
    match style with
    | Zygote -> Some (ok_or_die "freeze" (Ksim.Api.freeze ()))
    | Fork | Fork_eager | Spawn -> None
  in
  if churn then
    for _ = 1 to n do
      let pid =
        match (style, tpl) with
        | Zygote, Some id ->
          ok_or_die "spawn_from_template"
            (Ksim.Api.spawn_from_template id ~child:(fun () -> Ksim.Api.exit 0))
        | Zygote, None -> assert false
        | Fork, _ ->
          ok_or_die "fork" (Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0))
        | Fork_eager, _ ->
          ok_or_die "fork_eager"
            (Ksim.Api.fork_eager ~child:(fun () -> Ksim.Api.exit 0))
        | Spawn, _ -> ok_or_die "spawn" (Ksim.Api.spawn "/bin/true")
      in
      ignore (ok_or_die "wait" (Ksim.Api.wait_for pid))
    done

(* Per-creation latencies come from the trace of the churn run; the
   sustained rate comes from the simulated-time difference between the
   churn run and an identical run that never churns. *)
type point = {
  mib : int;
  style : style;
  n : int;
  ok_ns : float list;  (** per-creation span latencies, simulated ns *)
  total_ns : float;  (** differential simulated time of the whole churn *)
  hist : Metrics.Histogram.t;
}

let hist_of ns_list =
  let h = Metrics.Histogram.create ~base:1.0 ~buckets:64 () in
  List.iter (Metrics.Histogram.add h) ns_list;
  h

let churn_point ~n ~heap_mib style =
  let config = config ~heap_mib in
  let boot ~churn =
    Sim_driver.boot_scenario ~config (churn_body ~heap_mib ~n style ~churn)
  in
  let t_churn, _ = boot ~churn:true in
  let t_base, _ = boot ~churn:false in
  let cycles =
    Vmem.Cost.total (Ksim.Kernel.cost t_churn)
    -. Vmem.Cost.total (Ksim.Kernel.cost t_base)
  in
  let tr = Option.get (Ksim.Kernel.trace t_churn) in
  let ok_ns =
    List.filter_map
      (fun (e : Ksim.Trace.event) ->
        if
          e.Ksim.Trace.phase = Ksim.Trace.End
          && e.Ksim.Trace.what = span_name style
          && e.Ksim.Trace.pid = 1
          && e.Ksim.Trace.outcome = Some Ksim.Trace.Ok_result
        then Some e.Ksim.Trace.span_ns
        else None)
      (Ksim.Trace.events tr)
  in
  {
    mib = heap_mib;
    style;
    n;
    ok_ns;
    total_ns = Vmem.Cost.cycles_to_ns cycles;
    hist = hist_of ok_ns;
  }

let ops_per_sec p =
  if p.total_ns <= 0.0 then 0.0 else float_of_int p.n /. p.total_ns *. 1e9

(* ------------------------------------------------------------------ *)
(* Real-OS side: per-request creation vs prefork pool dispatch. *)

let real_rows ~quick =
  let n = if quick then 10 else 100 in
  let row name samples =
    let stats = Metrics.Stats.of_list (Array.to_list samples) in
    [
      name;
      Metrics.Units.ns stats.Metrics.Stats.p50;
      Metrics.Units.ns stats.Metrics.Stats.p99;
      Printf.sprintf "%.0f" (1e9 /. stats.Metrics.Stats.mean);
    ]
  in
  let per_request how create =
    row how
      (Workload.Timer.sample ~warmup:2 ~n (fun () ->
           match create () with
           | Ok pid -> ignore (Spawnlib.Native.wait_exit pid)
           | Error e ->
             invalid_arg
               ("Exp_churn real: " ^ how ^ ": "
              ^ Spawnlib.Native.errno_message e)))
  in
  let pool_row () =
    match
      Spawnlib.Pool.create ~size:4 ~prog:"/bin/cat" ~argv:[ "cat" ] ()
    with
    | Error e -> invalid_arg ("Exp_churn real: pool: " ^ Spawnlib.Pool.error_message e)
    | Ok pool ->
      Fun.protect
        ~finally:(fun () -> ignore (Spawnlib.Pool.shutdown pool))
        (fun () ->
          row "prefork pool dispatch (Spawnlib.Pool, 4 workers)"
            (Workload.Timer.sample ~warmup:2 ~n (fun () ->
                 match Spawnlib.Pool.submit pool "ping" with
                 | Ok _ -> ()
                 | Error e ->
                   invalid_arg
                     ("Exp_churn real: submit: "
                    ^ Spawnlib.Pool.error_message e))))
  in
  [
    per_request "fork+exec per request" (fun () ->
        Spawnlib.Native.fork_exec ~prog:"/bin/true" ~argv:[ "true" ] ());
    per_request "posix_spawn per request" (fun () ->
        Spawnlib.Native.posix_spawn ~prog:"/bin/true" ~argv:[ "true" ] ());
    pool_row ();
  ]

(* ------------------------------------------------------------------ *)

let run ~quick =
  let footprints = if quick then [ 16; 1024 ] else [ 16; 64; 256; 1024; 4096 ] in
  let n = if quick then 4 else 12 in
  let points =
    Workload.Par.map
      (fun (mib, style) -> churn_point ~n ~heap_mib:mib style)
      (List.concat_map
         (fun mib -> List.map (fun s -> (mib, s)) styles)
         footprints)
  in
  let table =
    Metrics.Table.create
      [ "footprint"; "api"; "create p50"; "create p99"; "creations+exits/s" ]
  in
  List.iter
    (fun p ->
      let stats =
        if p.ok_ns = [] then None else Some (Metrics.Stats.of_list p.ok_ns)
      in
      let pct f =
        match stats with None -> "-" | Some s -> Metrics.Units.ns (f s)
      in
      Metrics.Table.add_row table
        [
          Printf.sprintf "%d MiB" p.mib;
          style_name p.style;
          pct (fun s -> s.Metrics.Stats.p50);
          pct (fun s -> s.Metrics.Stats.p99);
          Printf.sprintf "%.0f" (ops_per_sec p);
        ])
    points;
  (* Whole-sweep latency distribution per style: the per-point histograms
     merge associatively and commutatively (test_metrics checks this), so
     the aggregation is independent of Par.map's domain fan-out. *)
  let merged_hist style =
    List.filter (fun p -> p.style = style) points
    |> List.map (fun p -> p.hist)
    |> function
    | [] -> None
    | h :: rest -> Some (List.fold_left Metrics.Histogram.merge h rest)
  in
  let data =
    Metrics.Json.obj
      [
        ( "points",
          Metrics.Json.arr
            (List.map
               (fun p ->
                 Metrics.Json.obj
                   ([
                      ("mib", Metrics.Json.int p.mib);
                      ("api", Metrics.Json.str (style_name p.style));
                      ("n", Metrics.Json.int p.n);
                      ("total_ns", Metrics.Json.num p.total_ns);
                      ("ops_per_sec", Metrics.Json.num (ops_per_sec p));
                    ]
                   @
                   if p.ok_ns = [] then []
                   else
                     [
                       ( "latency",
                         Metrics.Stats.to_json (Metrics.Stats.of_list p.ok_ns)
                       );
                     ]))
               points) );
        ( "latency_hist",
          Metrics.Json.obj
            (List.filter_map
               (fun s ->
                 Option.map
                   (fun h -> (style_name s, Metrics.Histogram.to_json h))
                   (merged_hist s))
               styles) );
      ]
  in
  let real_block =
    match real_rows ~quick with
    | rows ->
      let t =
        Metrics.Table.create
          [ "real-OS tactic"; "p50"; "p99"; "requests/s" ]
      in
      List.iter (Metrics.Table.add_row t) rows;
      Report.Table
        {
          caption =
            Printf.sprintf
              "real OS, %d requests per tactic: creating a process per \
               request vs dispatching to warm prefork workers"
              (if quick then 10 else 100);
          table = t;
        }
    | exception e ->
      Report.Note
        ("real-side churn skipped in this environment: " ^ Printexc.to_string e)
  in
  Report.make ~id:"E14" ~title:"churn: warm creation via zygote templates"
    [
      Report.Table
        {
          caption =
            Printf.sprintf
              "simulated, overcommit, %d create+wait cycles per cell; rate \
               is the differential simulated time of the whole churn loop"
              n;
          table;
        };
      real_block;
      Report.Note
        "fork's per-creation cost is the parent's page tables, so its churn \
         rate decays as the master grows (fork-eager decays fastest: it \
         copies every frame); posix_spawn holds flat but re-pays the exec \
         image each time. The zygote pays the footprint once at freeze: \
         spawn_from_template clones O(shared page-table subtrees), so its \
         p50 is flat across a 256x footprint range and its throughput \
         dominates fork by orders of magnitude at gigabyte footprints. The \
         real-OS table is the same argument with portable tools: a \
         prefork pool amortises creation exactly like a zygote template.";
      Report.Data { name = "churn-points"; json = data };
    ]

let experiment =
  {
    Report.exp_id = "E14";
    exp_title = "churn: warm creation via zygote templates";
    paper_claim =
      "a template/zygote abstraction makes warm process creation \
       constant-time in the parent's footprint, where fork degrades \
       linearly (and worse) with the memory it must logically copy; \
       prefork worker pools are the portable real-OS equivalent";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
