(** Backend for [forkbench stat]: run a small canned scenario on a
    traced simulator instance and report where the cycles went — the
    per-category cost breakdown, the kernel's typed counters
    ({!Ksim.Kstat}) and a syscall-latency histogram built from the
    trace's span events. *)

type result = {
  report : Report.t;
  trace : Ksim.Trace.t;
      (** the run's full span trace, for [--trace] export
          ({!Ksim.Trace.to_chrome} / {!Ksim.Trace.to_jsonl}) *)
  machine : Ksim.Kernel.t;
      (** the halted machine, for profile exports that need more than
          the trace ({!Profile.Span_tree.build} reads per-pid kstat) *)
}

val scenarios : (string * string) list
(** [(key, description)] pairs of the available scenarios:
    ["fig1-sim"], ["cowtax"], ["tlb"], ["stdio"], ["smp"],
    ["serve"]. *)

val run : ?cpus:int -> string -> result option
(** Run the named scenario; [None] if the key is unknown. [cpus]
    (default 1) sizes the simulated machine: with [cpus > 1] the
    scenario boots the SMP kernel and the report gains a per-CPU
    counter table plus the shootdown-fanout histogram. Any scenario
    can run SMP; the ["smp"] scenario only produces interesting
    numbers there (its spinner threads need other CPUs to hold). *)
