(* Perf-regression gate. Simulated numbers in BENCH reports are
   deterministic, so the only honest comparison is bit-identity; the few
   wall-clock fields get a slowdown-only tolerance so a loaded CI runner
   doesn't flap the gate. See the .mli for the per-block rules. *)

module Json = Metrics.Json

type tolerance = { wall_factor : float; wall_slack_ms : float }

let default_tolerance = { wall_factor = 3.0; wall_slack_ms = 500.0 }

type finding = { file : string; path : string; message : string }

let finding_to_string f = Printf.sprintf "%s: %s: %s" f.file f.path f.message

(* Fields holding host wall-clock time, in ms. Everything else is
   simulator output (or a count) and must match exactly. *)
let wall_like key =
  key = "harness_wall_ms"
  ||
  let suf = "wall_ms" in
  let lk = String.length key and ls = String.length suf in
  lk >= ls && String.sub key (lk - ls) ls = suf

let num_string v =
  (* integral floats render without a fraction, like the report writer *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let compare_reports ?(tol = default_tolerance) ~file ~baseline ~current ()
    =
  let findings = ref [] in
  let add path fmt =
    Printf.ksprintf
      (fun message -> findings := { file; path; message } :: !findings)
      fmt
  in
  let mem k j = Json.member k j in
  let check_wall path b c =
    match (Json.to_num b, Json.to_num c) with
    | Some b, Some c ->
      if Float.is_nan c then add path "wall time is NaN"
      else
        let limit = Float.max (b *. tol.wall_factor) (b +. tol.wall_slack_ms) in
        if c > limit then
          add path "wall time regressed: %s -> %s (limit %s)" (num_string b)
            (num_string c) (num_string limit)
    | Some _, None -> add path "wall time missing or non-numeric"
    | None, _ -> () (* baseline had no number here; nothing to compare *)
  in
  (* Deep structural equality with exact numeric comparison; [wall_like]
     object fields divert to the tolerance rule. *)
  let rec deep path (b : Json.t) (c : Json.t) =
    match (b, c) with
    | (Int _ | Num _), (Int _ | Num _) -> (
      match (Json.to_num b, Json.to_num c) with
      | Some bv, Some cv ->
        if Float.is_nan cv then add path "value is NaN"
        else if bv <> cv then
          add path "value changed: %s -> %s" (num_string bv) (num_string cv)
      | _ -> add path "non-numeric number")
    | (Int _ | Num _), Null -> add path "numeric value became null (NaN?)"
    | Null, Null -> ()
    | Bool b', Bool c' ->
      if b' <> c' then add path "value changed: %b -> %b" b' c'
    | Str b', Str c' ->
      if b' <> c' then add path "value changed: %S -> %S" b' c'
    | Arr bs, Arr cs ->
      let nb = List.length bs and nc = List.length cs in
      if nb <> nc then add path "array length changed: %d -> %d" nb nc
      else
        List.iteri
          (fun i (b', c') -> deep (Printf.sprintf "%s[%d]" path i) b' c')
          (List.combine bs cs)
    | Obj bs, Obj cs ->
      List.iter
        (fun (k, bv) ->
          let p = path ^ "." ^ k in
          match List.assoc_opt k cs with
          | None -> add p "field missing"
          | Some cv -> if wall_like k then check_wall p bv cv else deep p bv cv)
        bs;
      List.iter
        (fun (k, _) ->
          if List.assoc_opt k bs = None then add (path ^ "." ^ k) "field added")
        cs
    | _ -> add path "JSON kind changed"
  in
  let check_str_field path b c =
    match (Json.to_str b, Json.to_str c) with
    | Some b', Some c' ->
      if b' <> c' then add path "changed: %S -> %S" b' c'
    | _ -> add path "expected strings"
  in
  (* identity *)
  List.iter
    (fun k ->
      match (mem k baseline, mem k current) with
      | Some b, Some c -> check_str_field k b c
      | None, _ -> () (* field absent from the baseline: not compared *)
      | Some _, None -> add k "field missing")
    [ "exp"; "slug"; "title"; "kind"; "claim" ];
  (* params: quick exact, jobs ignored, harness_wall_ms tolerant *)
  (match (mem "params" baseline, mem "params" current) with
  | Some bp, Some cp ->
    (match (mem "quick" bp, mem "quick" cp) with
    | Some bq, Some cq ->
      if bq <> cq then
        add "params.quick" "quick mode differs from baseline"
    | Some _, None -> add "params.quick" "field missing"
    | None, _ -> ());
    (match (mem "harness_wall_ms" bp, mem "harness_wall_ms" cp) with
    | Some bw, Some cw -> check_wall "params.harness_wall_ms" bw cw
    | Some _, None -> add "params.harness_wall_ms" "field missing"
    | None, _ -> ())
  | Some _, None -> add "params" "field missing"
  | None, _ -> ());
  (* blocks *)
  let blocks j =
    Option.bind (mem "report" j) (mem "blocks")
    |> Fun.flip Option.bind Json.to_list
  in
  (match (blocks baseline, blocks current) with
  | Some bs, Some cs ->
    let nb = List.length bs and nc = List.length cs in
    if nb <> nc then
      add "report.blocks" "block count changed: %d -> %d" nb nc
    else
      List.iteri
        (fun i (b, c) ->
          let path = Printf.sprintf "report.blocks[%d]" i in
          let kind j =
            Option.value ~default:"?" (Option.bind (mem "kind" j) Json.to_str)
          in
          let bk = kind b and ck = kind c in
          if bk <> ck then add path "block kind changed: %s -> %s" bk ck
          else
            match bk with
            | "note" -> ()
            | "figure" -> (
              match (mem "figure" b, mem "figure" c) with
              | Some bf, Some cf -> deep (path ^ ".figure") bf cf
              | _ -> add path "malformed figure block")
            | "data" -> (
              (match (mem "name" b, mem "name" c) with
              | Some bn, Some cn -> check_str_field (path ^ ".name") bn cn
              | _ -> add path "malformed data block");
              match (mem "data" b, mem "data" c) with
              | Some bd, Some cd -> deep (path ^ ".data") bd cd
              | _ -> add path "malformed data block")
            | "table" -> (
              (match (mem "caption" b, mem "caption" c) with
              | Some bc, Some cc ->
                check_str_field (path ^ ".caption") bc cc
              | _ -> add path "malformed table block");
              match (mem "table" b, mem "table" c) with
              | Some bt, Some ct ->
                (match (mem "headers" bt, mem "headers" ct) with
                | Some bh, Some ch -> deep (path ^ ".table.headers") bh ch
                | _ -> add path "table headers missing");
                (* cells hold real-OS measurements: compare shape only *)
                let rows j =
                  match Option.bind (mem "rows" j) Json.to_list with
                  | Some l -> List.length l
                  | None -> -1
                in
                let br = rows bt and cr = rows ct in
                if br <> cr then
                  add (path ^ ".table.rows") "row count changed: %d -> %d" br
                    cr
              | _ -> add path "malformed table block")
            | k -> add path "unknown block kind %S left uncompared" k)
        (List.combine bs cs)
  | Some _, None -> add "report.blocks" "blocks missing"
  | None, _ -> ());
  List.rev !findings

let read_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Json.of_string contents with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "parse error: %s" msg))

let compare_dirs ?(tol = default_tolerance) ~baseline ~current () =
  let is_bench f =
    String.length f > 11
    && String.sub f 0 6 = "BENCH_"
    && Filename.check_suffix f ".json"
  in
  let files =
    match Sys.readdir baseline with
    | exception Sys_error msg ->
      [ Error { file = baseline; path = "-"; message = msg } ]
    | entries ->
      Array.to_list entries |> List.filter is_bench |> List.sort compare
      |> List.map (fun f -> Ok f)
  in
  List.concat_map
    (function
      | Error f -> [ f ]
      | Ok file -> (
        match read_json (Filename.concat baseline file) with
        | Error msg -> [ { file; path = "-"; message = "baseline " ^ msg } ]
        | Ok b -> (
          let cur_path = Filename.concat current file in
          if not (Sys.file_exists cur_path) then
            [ { file; path = "-"; message = "missing from current run" } ]
          else
            match read_json cur_path with
            | Error msg -> [ { file; path = "-"; message = msg } ]
            | Ok c -> compare_reports ~tol ~file ~baseline:b ~current:c ())))
    files

let report_to_json findings =
  let open Json in
  obj
    [
      ("regressions", int (List.length findings));
      ( "findings",
        arr
          (List.map
             (fun f ->
               obj
                 [
                   ("file", str f.file);
                   ("path", str f.path);
                   ("message", str f.message);
                 ])
             findings) );
    ]
