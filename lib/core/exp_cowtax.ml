(* E2 — the COW tax: what a forked child pays after creation when it
   writes to inherited pages, versus a spawned child writing the same
   number of fresh pages. *)

let heap_mib = 64
let page = Vmem.Addr.page_size

(* A spawned worker that maps and touches [argv.(0)] bytes. *)
let toucher_prog =
  Ksim.Program.make ~name:"/bin/toucher" (fun ~argv () ->
      (match argv with
      | bytes :: _ -> (
        match int_of_string_opt bytes with
        | Some len when len > 0 -> (
          match Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw with
          | Ok addr -> ignore (Ksim.Api.touch ~addr ~len)
          | Error _ -> ())
        | Some _ | None -> ())
      | [] -> ());
      Ksim.Api.exit 0)

let ok_or_die = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_cowtax: " ^ Ksim.Errno.to_string e)

(* Differential cost of the child's post-creation writes. [fraction] of
   the parent's footprint is written by the child. *)
let child_write_cost ~use_spawn ~fraction =
  let total = Workload.Sweep.bytes_of_mib heap_mib in
  let write_bytes =
    Vmem.Addr.align_up (int_of_float (float_of_int total *. fraction))
  in
  let config = Sim_driver.config_for ~heap_mib in
  let scenario ~writes () =
    let addr = ok_or_die (Ksim.Api.mmap ~len:total ~perm:Vmem.Perm.rw) in
    ignore (ok_or_die (Ksim.Api.touch ~addr ~len:total));
    let pid =
      if use_spawn then
        ok_or_die
          (Ksim.Api.spawn
             ~argv:[ string_of_int (if writes then write_bytes else 0) ]
             "/bin/toucher")
      else
        ok_or_die
          (Ksim.Api.fork ~child:(fun () ->
               if writes && write_bytes > 0 then
                 ignore (ok_or_die (Ksim.Api.touch ~addr ~len:write_bytes));
               Ksim.Api.exit 0))
    in
    ignore (ok_or_die (Ksim.Api.wait_for pid))
  in
  let with_writes =
    Sim_driver.run_scenario ~config ~programs:[ toucher_prog ]
      (scenario ~writes:true)
  in
  let base =
    Sim_driver.run_scenario ~config ~programs:[ toucher_prog ]
      (scenario ~writes:false)
  in
  let counter_delta k =
    let get (m : Sim_driver.measurement) =
      Option.value ~default:0 (List.assoc_opt k m.Sim_driver.counters)
    in
    get with_writes - get base
  in
  ( Vmem.Cost.cycles_to_ns (with_writes.Sim_driver.cycles -. base.Sim_driver.cycles),
    write_bytes / page,
    counter_delta "cow-breaks",
    counter_delta "frames-zeroed" )

(* One representative run of the fork side at [fraction], harvested for
   the blame ledger: shows the fork event charged both its sync cost
   (page-table copy) and the deferred COW breaks the child takes later. *)
let blame_of_fraction fraction =
  let total = Workload.Sweep.bytes_of_mib heap_mib in
  let write_bytes =
    Vmem.Addr.align_up (int_of_float (float_of_int total *. fraction))
  in
  let config = Sim_driver.config_for ~heap_mib in
  let machine, _ =
    Sim_driver.boot_scenario ~config ~programs:[ toucher_prog ] (fun () ->
        let addr = ok_or_die (Ksim.Api.mmap ~len:total ~perm:Vmem.Perm.rw) in
        ignore (ok_or_die (Ksim.Api.touch ~addr ~len:total));
        let pid =
          ok_or_die
            (Ksim.Api.fork ~child:(fun () ->
                 if write_bytes > 0 then
                   ignore (ok_or_die (Ksim.Api.touch ~addr ~len:write_bytes));
                 Ksim.Api.exit 0))
        in
        ignore (ok_or_die (Ksim.Api.wait_for pid)))
  in
  Ksim.Kernel.blame machine

let run ~quick =
  let fractions =
    if quick then [ 0.0; 0.5; 1.0 ] else [ 0.0; 0.1; 0.25; 0.5; 1.0 ]
  in
  let measure use_spawn =
    Workload.Par.map
      (fun f -> (f, child_write_cost ~use_spawn ~fraction:f))
      fractions
  in
  let fork_points = measure false in
  let spawn_points = measure true in
  let series label points =
    {
      Metrics.Series.label;
      points =
        List.map (fun (f, (ns, _, _, _)) -> (f *. 100.0, ns)) points;
    }
  in
  let fork_series = series "forked child (COW breaks)" fork_points in
  let spawn_series = series "spawned child (zero-fill)" spawn_points in
  let fig =
    Metrics.Series.figure
      ~title:
        (Printf.sprintf
           "E2: child write cost (model ns) vs %% of parent's %d MiB written"
           heap_mib)
      ~xlabel:"% written" ~ylabel:"ns" [ fork_series; spawn_series ]
  in
  let counters_table =
    let t =
      Metrics.Table.create
        [
          "% written"; "pages written"; "COW breaks (fork)";
          "zero-fills (spawn)";
        ]
    in
    List.iter2
      (fun (f, (_, pages, cow, _)) (_, (_, _, _, zeroed)) ->
        Metrics.Table.add_row t
          [
            Printf.sprintf "%g" (f *. 100.0);
            string_of_int pages;
            string_of_int cow;
            string_of_int zeroed;
          ])
      fork_points spawn_points;
    t
  in
  let data =
    Metrics.Json.arr
      (List.map2
         (fun (f, (fork_ns, pages, cow, _)) (_, (spawn_ns, _, _, zeroed)) ->
           Metrics.Json.obj
             [
               ("fraction", Metrics.Json.num f);
               ("pages_written", Metrics.Json.int pages);
               ("fork_ns", Metrics.Json.num fork_ns);
               ("spawn_ns", Metrics.Json.num spawn_ns);
               ("cow_breaks", Metrics.Json.int cow);
               ("frames_zeroed", Metrics.Json.int zeroed);
             ])
         fork_points spawn_points)
  in
  let blame = blame_of_fraction (List.fold_left Float.max 0.0 fractions) in
  Report.make ~id:"E2" ~title:"COW tax after fork"
    [
      Report.Figure fig;
      Report.Table
        {
          caption = "kernel counters (kstat): one COW break per page written";
          table = counters_table;
        };
      Report.Data { name = "points"; json = data };
      Report.Table
        {
          caption =
            "blame ledger (100% written): deferred COW cost charged back \
             to the fork";
          table = Profile.Blame_report.table blame;
        };
      Report.Data { name = "blame"; json = Profile.Blame_report.to_json blame };
      Report.Note
        "every write to an inherited page costs the forked child a fault \
         plus a full page copy plus a TLB invalidation, on top of the \
         fork-time page-table copy; the spawned child pays only demand \
         zero-fill for fresh pages.";
    ]

let experiment =
  {
    Report.exp_id = "E2";
    exp_title = "COW tax after fork";
    paper_claim =
      "COW makes fork look cheap at the call but defers real copying to \
       page faults taken by whichever process writes first";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
