(* E6 — fork forces the overcommit choice: under strict commit
   accounting a big parent cannot fork at all (even though COW would copy
   almost nothing); admitting the fork requires overcommitting memory.
   The policy knob is three-way: [Strict] refuses at fork, [Overcommit]
   admits and lets a later toucher crash, [Demand] admits and reconciles
   at first touch with the OOM killer (E18 measures that reckoning). At
   the admission point probed here, [Demand] behaves exactly like
   [Overcommit] — the difference is *who fails later*, not who forks. *)

let phys_pages = 262_144 (* 1 GiB machine *)

let ok_or_die = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_overcommit: " ^ Ksim.Errno.to_string e)

let policies = [ Vmem.Frame.Strict; Vmem.Frame.Overcommit; Vmem.Frame.Demand ]

let policy_name = function
  | Vmem.Frame.Strict -> "strict"
  | Vmem.Frame.Overcommit -> "overcommit"
  | Vmem.Frame.Demand -> "demand"

(* Does a parent using [fraction] of physical memory manage to fork? *)
let try_fork ~policy ~fraction =
  let config =
    {
      Ksim.Kernel.default_config with
      Ksim.Kernel.phys_pages;
      commit_policy = policy;
      aslr = false;
    }
  in
  let forked = ref false in
  let init =
    Ksim.Program.make ~name:"/sbin/init" (fun ~argv:_ () ->
        let len =
          Vmem.Addr.page_size
          * int_of_float (fraction *. float_of_int phys_pages)
        in
        ignore (ok_or_die (Ksim.Api.mmap ~len ~perm:Vmem.Perm.rw));
        match Ksim.Api.fork ~child:(fun () -> Ksim.Api.exit 0) with
        | Ok pid ->
          forked := true;
          ignore (ok_or_die (Ksim.Api.wait_for pid))
        | Error _ -> ())
  in
  let t = Ksim.Kernel.create ~config () in
  Ksim.Kernel.register t init;
  ignore (ok_or_die (Ksim.Kernel.spawn_init t "/sbin/init"));
  ignore (Ksim.Kernel.run t);
  !forked

let run ~quick =
  let fractions = if quick then [ 0.3; 0.6 ] else [ 0.1; 0.3; 0.45; 0.6; 0.9 ] in
  let table =
    Metrics.Table.create
      ([ "parent footprint" ]
      @ List.map (fun p -> "fork (" ^ policy_name p ^ ")") policies)
  in
  let rows =
    Workload.Par.map
      (fun f -> (f, List.map (fun p -> (p, try_fork ~policy:p ~fraction:f)) policies))
      fractions
  in
  List.iter
    (fun (f, by_policy) ->
      let show ok = if ok then "ok" else "ENOMEM" in
      Metrics.Table.add_row table
        (Metrics.Units.percent f
        :: List.map (fun (_, ok) -> show ok) by_policy))
    rows;
  let data =
    Metrics.Json.obj
      [
        ( "points",
          Metrics.Json.arr
            (List.concat_map
               (fun (f, by_policy) ->
                 List.map
                   (fun (p, ok) ->
                     Metrics.Json.obj
                       [
                         ("fraction", Metrics.Json.num f);
                         ("policy", Metrics.Json.str (policy_name p));
                         ("forked", Metrics.Json.bool ok);
                       ])
                   by_policy)
               rows) );
      ]
  in
  Report.make ~id:"E6" ~title:"fork forces memory overcommit"
    [
      Report.Table
        { caption = "1 GiB machine; parent mmaps the given share and forks";
          table };
      Report.Note
        "strict accounting must reserve the parent's full commit again for \
         the child, so fork fails once the parent passes half of memory; \
         the only way to keep fork working is to overcommit -- trading \
         deterministic failure at fork() for later OOM kills, exactly the \
         policy knot the paper pins on fork. The demand column admits \
         identically to overcommit: the policies differ only in how the \
         un-backable touch fails later (E18 measures that difference).";
      Report.Data { name = "overcommit-points"; json = data };
    ]

let experiment =
  {
    Report.exp_id = "E6";
    exp_title = "fork forces memory overcommit";
    paper_claim =
      "a process using more than half of memory cannot fork under strict \
       commit accounting; supporting fork pushes systems into overcommit";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
