(* E4 — fork doesn't compose with buffered I/O: unflushed user-space
   buffers are duplicated into the child and the output appears twice. *)

let ok_or_die = function
  | Ok v -> v
  | Error e -> invalid_arg ("Exp_stdio: " ^ Ksim.Errno.to_string e)

let duplicated_bytes ~buffered ~use_spawn =
  let body () =
    let f = ok_or_die (Ksim.Stdio.fopen ~bufsize:8192 1) in
    ok_or_die (Ksim.Stdio.puts f (String.make buffered 'b'));
    let pid =
      if use_spawn then ok_or_die (Ksim.Api.spawn "/bin/true")
      else
        ok_or_die
          (Ksim.Api.fork ~child:(fun () ->
               (* a child that exits "cleanly", flushing stdio like libc
                  exit() does *)
               ok_or_die (Ksim.Stdio.flush f);
               Ksim.Api.exit 0))
    in
    ignore (ok_or_die (Ksim.Api.wait_for pid));
    ok_or_die (Ksim.Stdio.flush f)
  in
  let m = Sim_driver.run_scenario body in
  let counted =
    Option.value ~default:0
      (List.assoc_opt "stdio-double-flushed-bytes" m.Sim_driver.counters)
  in
  (String.length m.Sim_driver.console - buffered, counted)

let run ~quick =
  let sizes = if quick then [ 0; 4096 ] else [ 0; 64; 1024; 4096 ] in
  let table =
    Metrics.Table.create
      [
        "buffered bytes"; "duplicated (fork)"; "duplicated (spawn)";
        "kstat double-flushed";
      ]
  in
  let points = ref [] in
  List.iter
    (fun buffered ->
      let fork_dup, fork_counted =
        duplicated_bytes ~buffered ~use_spawn:false
      in
      let spawn_dup, _ = duplicated_bytes ~buffered ~use_spawn:true in
      points :=
        Metrics.Json.obj
          [
            ("buffered", Metrics.Json.int buffered);
            ("fork_duplicated", Metrics.Json.int fork_dup);
            ("spawn_duplicated", Metrics.Json.int spawn_dup);
            ("kstat_double_flushed", Metrics.Json.int fork_counted);
          ]
        :: !points;
      Metrics.Table.add_row table
        [
          string_of_int buffered;
          string_of_int fork_dup;
          string_of_int spawn_dup;
          string_of_int fork_counted;
        ])
    sizes;
  Report.make ~id:"E4" ~title:"fork duplicates buffered I/O"
    [
      Report.Table
        { caption = "bytes appearing twice on the console"; table };
      Report.Data
        { name = "points"; json = Metrics.Json.arr (List.rev !points) };
      Report.Note
        "the stdio buffer lives in (simulated) user memory, so fork's COW \
         copy includes any unflushed bytes; when parent and child both \
         flush, output is emitted twice. A spawned child starts from a \
         fresh image and cannot replay the parent's buffer.";
    ]

let experiment =
  {
    Report.exp_id = "E4";
    exp_title = "fork duplicates buffered I/O";
    paper_claim =
      "fork doesn't compose with user-mode state such as stdio buffers: \
       unflushed output is emitted by both processes";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
