(* F1-SIM — the Figure-1 sweep on the simulator, deterministic and
   extended beyond this machine's RAM. *)

let strategies = [ Strategy.Fork_exec; Strategy.Vfork_exec; Strategy.Posix_spawn ]

let run ~quick =
  let sizes = if quick then [ 0; 16; 256 ] else Workload.Sweep.fig1_sim_mib in
  let rows =
    (* one work item per footprint: each boots its own kernels, so the
       sweep fans out across domains *)
    Workload.Par.map
      (fun mib ->
        ( mib,
          List.map
            (fun s -> (s, Sim_driver.creation_cost ~strategy:s ~heap_mib:mib ()))
            strategies ))
      sizes
  in
  (* transpose rows into one series per strategy in a single pass —
     [ms] is aligned with [strategies] by construction *)
  let all_series =
    let points_per_strategy =
      List.fold_right
        (fun (mib, ms) acc ->
          List.map2
            (fun (_, m) pts -> (float_of_int mib, m.Sim_driver.ns) :: pts)
            ms acc)
        rows
        (List.map (fun _ -> []) strategies)
    in
    List.map2
      (fun strategy points ->
        { Metrics.Series.label = Strategy.name strategy; points })
      strategies points_per_strategy
  in
  let fig =
    Metrics.Series.figure ~ylog:true
      ~title:
        "F1-SIM: create+exec cost (model ns) vs parent footprint (MiB) \
         [simulator]"
      ~xlabel:"MiB" ~ylabel:"ns" all_series
  in
  (* Machine-readable per-point cost breakdown: the subsystem groups
     partition every cycle charged, so for each point
     sum(groups) = cycles and cycles_to_ns(cycles) = ns. *)
  let point_json strategy mib (m : Sim_driver.measurement) =
    Metrics.Json.obj
      [
        ("strategy", Metrics.Json.str (Strategy.name strategy));
        ("mib", Metrics.Json.int mib);
        ("ns", Metrics.Json.num m.Sim_driver.ns);
        ("cycles", Metrics.Json.num m.Sim_driver.cycles);
        ( "groups",
          Metrics.Json.obj
            (List.map (fun (g, c) -> (g, Metrics.Json.num c)) m.Sim_driver.groups)
        );
        ( "counters",
          Metrics.Json.obj
            (List.map
               (fun (k, n) -> (k, Metrics.Json.int n))
               m.Sim_driver.counters) );
      ]
  in
  let points =
    Metrics.Json.arr
      (List.concat_map
         (fun (mib, ms) ->
           List.map (fun (s, m) -> point_json s mib m) ms)
         rows)
  in
  let breakdown_table =
    (* the pager column only exists when some point actually charged
       pager cycles (demand-paged machines); the eager sweep's table —
       and its BENCH baseline — keep the historical column set *)
    let cols =
      List.filter
        (fun g ->
          g <> "pager"
          || List.exists
               (fun (_, ms) ->
                 List.exists
                   (fun (_, (m : Sim_driver.measurement)) ->
                     List.mem_assoc g m.Sim_driver.groups)
                   ms)
               rows)
        Sim_driver.group_order
    in
    let table =
      Metrics.Table.create
        ~align:[ Metrics.Table.Left; Metrics.Table.Right ]
        ([ "strategy"; "MiB"; "ns" ] @ cols)
    in
    List.iter
      (fun (mib, ms) ->
        List.iter
          (fun (s, (m : Sim_driver.measurement)) ->
            Metrics.Table.add_row table
              ([
                 Strategy.name s;
                 string_of_int mib;
                 Metrics.Units.ns m.Sim_driver.ns;
               ]
              @ List.map
                  (fun g ->
                    let c =
                      Option.value ~default:0.0
                        (List.assoc_opt g m.Sim_driver.groups)
                    in
                    if c = 0.0 then "-" else Metrics.Units.cycles c)
                  cols))
          ms)
      rows;
    table
  in
  Report.make ~id:"F1-SIM"
    ~title:"Figure 1 (simulator): creation cost vs parent footprint"
    [
      Report.Figure fig;
      Report.Table
        {
          caption = "per-point cost breakdown (cycles by subsystem)";
          table = breakdown_table;
        };
      Report.Data { name = "points"; json = points };
      Report.Note
        "deterministic cycle model (Vmem.Cost), differential measurement; \
         the fork+exec series grows with the page-table copy while spawn \
         and vfork pay only the constant image-load cost. The subsystem \
         groups partition every charged cycle, so each point's groups sum \
         to its headline cost exactly.";
    ]

let experiment =
  {
    Report.exp_id = "F1-SIM";
    exp_title = "Figure 1 (simulator): creation cost vs parent footprint";
    paper_claim =
      "same shape as F1, extended to footprints beyond physical RAM: the \
       mechanism (page-table copy) is linear in the parent, spawn is \
       constant";
    exp_kind = Report.Sim;
    run = (fun ~quick -> run ~quick);
  }
