(* T1 — minimal-process creation cost per API, real and simulated. *)

let run ~quick =
  let samples = if quick then 5 else 30 in
  let table =
    Metrics.Table.create
      ~align:[ Metrics.Table.Left ]
      [ "strategy"; "real mean"; "real p50"; "sim"; "sim cycles" ]
  in
  List.iter
    (fun s ->
      let real_mean, real_p50 =
        if Strategy.supported_real s then begin
          let st = Real_driver.creation_stats ~strategy:s ~samples in
          (Metrics.Units.ns st.Metrics.Stats.mean, Metrics.Units.ns st.Metrics.Stats.p50)
        end
        else ("-", "-")
      in
      let sim = Sim_driver.creation_cost ~strategy:s ~heap_mib:0 () in
      Metrics.Table.add_row table
        [
          Strategy.name s;
          real_mean;
          real_p50;
          Metrics.Units.ns sim.Sim_driver.ns;
          Metrics.Units.cycles sim.Sim_driver.cycles;
        ])
    Strategy.all;
  Report.make ~id:"T1" ~title:"Minimal-process creation cost per API"
    [
      Report.Table { caption = "empty parent; child is /bin/true"; table };
      Report.Note
        "fork-only is cheapest for a tiny parent (nothing to copy); the \
         exec-bearing strategies are dominated by image-load cost; this is \
         the regime where fork still looks good -- F1 shows how quickly \
         that reverses as the parent grows.";
    ]

let experiment =
  {
    Report.exp_id = "T1";
    exp_title = "Minimal-process creation cost per API";
    paper_claim =
      "even for a minimal process, spawn-style creation is competitive; \
       fork's apparent cheapness exists only for tiny parents";
    exp_kind = Report.Real;
    run = (fun ~quick -> run ~quick);
  }
