(* F1 — the paper's Figure 1, on the real OS: process create+exec latency
   vs parent address-space size, for fork+exec / vfork+exec / posix_spawn. *)

let strategies = [ Strategy.Fork_exec; Strategy.Vfork_exec; Strategy.Posix_spawn ]

let run ~quick =
  let sizes = if quick then [ 0; 16; 64 ] else Workload.Sweep.fig1_mib in
  let samples = if quick then 5 else 20 in
  let rows =
    List.map
      (fun mib ->
        let footprint = Workload.Footprint.allocate ~mib in
        let stats =
          List.map
            (fun s -> (s, Real_driver.creation_stats ~strategy:s ~samples))
            strategies
        in
        (* keep the footprint observably live across the measurements *)
        ignore (Sys.opaque_identity (Workload.Footprint.checksum footprint));
        Workload.Footprint.release footprint;
        Gc.compact ();
        (mib, stats))
      sizes
  in
  let series_of strategy =
    {
      Metrics.Series.label = Strategy.name strategy;
      points =
        List.map
          (fun (mib, stats) ->
            (float_of_int mib, (List.assoc strategy stats).Metrics.Stats.p50))
          rows;
    }
  in
  let fig =
    Metrics.Series.figure ~ylog:true ~title:"F1: create+exec latency (p50, ns) vs parent footprint (MiB) [real OS]"
      ~xlabel:"MiB" ~ylabel:"ns" (List.map series_of strategies)
  in
  let detail = Metrics.Table.create
      ~align:[ Metrics.Table.Right; Metrics.Table.Left ]
      [ "MiB"; "strategy"; "mean"; "p50"; "p99" ] in
  List.iter
    (fun (mib, stats) ->
      List.iter
        (fun (s, st) ->
          Metrics.Table.add_row detail
            [
              string_of_int mib;
              Strategy.name s;
              Metrics.Units.ns st.Metrics.Stats.mean;
              Metrics.Units.ns st.Metrics.Stats.p50;
              Metrics.Units.ns st.Metrics.Stats.p99;
            ])
        stats)
    rows;
  Report.make ~id:"F1" ~title:"Figure 1 (real OS): creation latency vs parent footprint"
    [
      Report.Figure fig;
      Report.Table { caption = "per-point statistics"; table = detail };
      Report.Note
        (Printf.sprintf
           "%d samples/point after warmup; child is /bin/true; expected \
            shape: fork+exec grows with footprint, vfork+exec and \
            posix_spawn stay flat."
           samples);
    ]

let experiment =
  {
    Report.exp_id = "F1";
    exp_title = "Figure 1 (real OS): creation latency vs parent footprint";
    paper_claim =
      "fork+exec latency grows linearly with the parent's memory; \
       posix_spawn (and vfork) are constant, so spawn wins beyond trivial \
       footprints";
    exp_kind = Report.Real;
    run = (fun ~quick -> run ~quick);
  }
