let warned = ref false

let warn fmt =
  Printf.ksprintf
    (fun msg ->
      if not !warned then begin
        warned := true;
        prerr_endline ("forkroad: warning: " ^ msg)
      end)
    fmt

let override = ref None

let set_jobs n =
  if n < 0 then invalid_arg "Par.set_jobs: negative job count";
  override := Some n

let jobs () =
  let cores = Domain.recommended_domain_count () in
  match !override with
  | Some 0 -> 1 (* 0 = explicitly sequential, like the env var *)
  | Some n ->
    let cap = 4 * cores in
    if n > cap then begin
      warn "--jobs %d exceeds 4x cores; clamping to %d" n cap;
      cap
    end
    else n
  | None -> (
    match Sys.getenv_opt "FORKROAD_JOBS" with
  | Some s -> (
    let cap = 4 * cores in
    match int_of_string_opt (String.trim s) with
    | Some 0 -> 1 (* 0 = explicitly sequential *)
    | Some n when n < 0 ->
      warn "FORKROAD_JOBS=%s is negative; using %d (cores)" s cores;
      cores
    | Some n when n > cap ->
      warn "FORKROAD_JOBS=%s exceeds 4x cores; clamping to %d" s cap;
      cap
    | Some n -> n
    | None ->
      warn "FORKROAD_JOBS=%S is not an integer; using %d (cores)" s cores;
      cores)
    | None -> cores)

(* One shared worker budget for the whole process: the harness's outer
   sweep map and the SMP kernel's in-boot domain pool both draw their
   extra domains from here, so the two layers of parallelism cannot
   oversubscribe each other — at most [jobs () - 1] extra domains are
   ever live, whoever spawned them. *)
let live_extra = Atomic.make 0

let acquire_workers want =
  if want <= 0 then 0
  else begin
    let budget = jobs () - 1 in
    let rec go () =
      let cur = Atomic.get live_extra in
      let grant = min want (max 0 (budget - cur)) in
      if grant = 0 then 0
      else if Atomic.compare_and_set live_extra cur (cur + grant) then grant
      else go ()
    in
    go ()
  end

let release_workers n =
  if n < 0 then invalid_arg "Par.release_workers: negative count";
  if n > 0 then ignore (Atomic.fetch_and_add live_extra (-n))

let map ?jobs:requested f xs =
  let jobs = match requested with Some n -> n | None -> jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let grant = acquire_workers (min (jobs - 1) (n - 1)) in
    if grant = 0 then List.map f xs
    else
      Fun.protect
        ~finally:(fun () -> release_workers grant)
        (fun () ->
          let items = Array.of_list xs in
          let results = Array.make n None in
          let errors = Array.make n None in
          let next = Atomic.make 0 in
          let rec worker () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match f items.(i) with
              | r -> results.(i) <- Some r
              | exception e -> errors.(i) <- Some e);
              worker ()
            end
          in
          let spawned = List.init grant (fun _ -> Domain.spawn worker) in
          worker ();
          List.iter Domain.join spawned;
          (* deterministic error choice: the earliest-indexed failure wins *)
          Array.iter (function Some e -> raise e | None -> ()) errors;
          Array.to_list results
          |> List.map (function Some r -> r | None -> assert false))
  end

(* A persistent worker pool for callers that run many small batches
   (the SMP kernel runs one batch per scheduling round): domains are
   spawned once, parked on a condition variable between batches, and
   drawn from the shared budget above. *)
module Pool = struct
  type batch = {
    tasks : (unit -> unit) array;
    errors : exn option array;
    next : int Atomic.t;
    mutable completed : int;
  }

  type t = {
    lock : Mutex.t;
    cond : Condition.t;  (** workers: new generation or stop *)
    done_cond : Condition.t;  (** submitter: batch completed *)
    mutable batch : batch option;
    mutable generation : int;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
    mutable acquired : int;  (** budget slots held until shutdown *)
  }

  (* Claim-and-run until the batch is drained. Each waking worker
     captures its batch record, so a stale worker can never claim an
     index from a later batch's counter. *)
  let exec t b =
    let n = Array.length b.tasks in
    let rec claim () =
      let i = Atomic.fetch_and_add b.next 1 in
      if i < n then begin
        (match b.tasks.(i) () with
        | () -> ()
        | exception e -> b.errors.(i) <- Some e);
        Mutex.lock t.lock;
        b.completed <- b.completed + 1;
        if b.completed = n then Condition.broadcast t.done_cond;
        Mutex.unlock t.lock;
        claim ()
      end
    in
    claim ()

  let worker t =
    let rec loop gen =
      Mutex.lock t.lock;
      while (not t.stop) && t.generation = gen do
        Condition.wait t.cond t.lock
      done;
      let stop = t.stop and gen' = t.generation and b = t.batch in
      Mutex.unlock t.lock;
      if not stop then begin
        (match b with Some b -> exec t b | None -> ());
        loop gen'
      end
    in
    loop 0

  let create ~workers =
    let grant = acquire_workers workers in
    let t =
      {
        lock = Mutex.create ();
        cond = Condition.create ();
        done_cond = Condition.create ();
        batch = None;
        generation = 0;
        stop = false;
        domains = [];
        acquired = grant;
      }
    in
    t.domains <- List.init grant (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let size t = List.length t.domains

  let run t tasks =
    let n = Array.length tasks in
    if n > 0 then begin
      if t.stop then invalid_arg "Par.Pool.run: pool is shut down";
      let b =
        {
          tasks;
          errors = Array.make n None;
          next = Atomic.make 0;
          completed = 0;
        }
      in
      Mutex.lock t.lock;
      t.batch <- Some b;
      t.generation <- t.generation + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      (* the submitting domain works too *)
      exec t b;
      Mutex.lock t.lock;
      while b.completed < n do
        Condition.wait t.done_cond t.lock
      done;
      Mutex.unlock t.lock;
      (* deterministic error choice: the earliest-indexed failure wins *)
      Array.iter (function Some e -> raise e | None -> ()) b.errors
    end

  let shutdown t =
    if not t.stop then begin
      Mutex.lock t.lock;
      t.stop <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      List.iter Domain.join t.domains;
      t.domains <- [];
      release_workers t.acquired;
      t.acquired <- 0
    end
end
