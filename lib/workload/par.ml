let warned = ref false

let warn fmt =
  Printf.ksprintf
    (fun msg ->
      if not !warned then begin
        warned := true;
        prerr_endline ("forkroad: warning: " ^ msg)
      end)
    fmt

let override = ref None

let set_jobs n =
  if n < 0 then invalid_arg "Par.set_jobs: negative job count";
  override := Some n

let jobs () =
  let cores = Domain.recommended_domain_count () in
  match !override with
  | Some 0 -> 1 (* 0 = explicitly sequential, like the env var *)
  | Some n ->
    let cap = 4 * cores in
    if n > cap then begin
      warn "--jobs %d exceeds 4x cores; clamping to %d" n cap;
      cap
    end
    else n
  | None -> (
    match Sys.getenv_opt "FORKROAD_JOBS" with
  | Some s -> (
    let cap = 4 * cores in
    match int_of_string_opt (String.trim s) with
    | Some 0 -> 1 (* 0 = explicitly sequential *)
    | Some n when n < 0 ->
      warn "FORKROAD_JOBS=%s is negative; using %d (cores)" s cores;
      cores
    | Some n when n > cap ->
      warn "FORKROAD_JOBS=%s exceeds 4x cores; clamping to %d" s cap;
      cap
    | Some n -> n
    | None ->
      warn "FORKROAD_JOBS=%S is not an integer; using %d (cores)" s cores;
      cores)
    | None -> cores)

let map ?jobs:requested f xs =
  let jobs = match requested with Some n -> n | None -> jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f items.(i) with
        | r -> results.(i) <- Some r
        | exception e -> errors.(i) <- Some e);
        worker ()
      end
    in
    let spawned =
      List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (* deterministic error choice: the earliest-indexed failure wins *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  end
