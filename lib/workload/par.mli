(** Domain-parallel map for experiment harnesses.

    Sweep points in the simulated experiments are independent — each one
    boots its own [Ksim.Kernel], frame allocator and cost meter — so the
    harness can fan them out across domains. Determinism is preserved by
    construction: results come back in input order, and every simulated
    number is computed inside its own isolated kernel, so the output is
    identical whatever the worker count (there is a regression test for
    this). *)

val jobs : unit -> int
(** The worker count the pool uses by default: {!set_jobs}'s value when
    one has been set (the bench harness's [--jobs N] flag), otherwise
    the [FORKROAD_JOBS] environment variable: a positive integer is used
    as-is but clamped to 4x [Domain.recommended_domain_count ()] (more
    workers than that only adds contention), [0] explicitly selects
    sequential execution, and anything invalid (negative, non-numeric)
    falls back to the core count. Every non-identity interpretation is
    announced once on stderr so a typo'd value cannot silently change
    the worker count. *)

val set_jobs : int -> unit
(** Programmatic override taking precedence over [FORKROAD_JOBS]; the
    value is interpreted exactly like the environment variable ([0] =
    sequential, clamped to 4x cores).
    @raise Invalid_argument on a negative count. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element and returns the results in
    input order. With [jobs <= 1] (or at most one element) it is plain
    [List.map] in the calling domain — no domains are spawned. Otherwise
    up to [min (jobs - 1) (length xs - 1)] worker domains are drawn from
    the shared budget (see {!acquire_workers}) and the calling domain
    also works; elements are claimed from an atomic counter. If the
    budget is exhausted (e.g. inside a worker of an outer [map]) the
    call degrades to sequential — the results are identical either way.
    If any applications raise, the exception of the earliest-indexed
    failing element is re-raised after all domains have been joined.
    [jobs] defaults to {!jobs}[ ()]. *)

val acquire_workers : int -> int
(** [acquire_workers want] reserves up to [want] slots from the one
    process-wide extra-domain budget of [jobs () - 1] and returns how
    many were granted (possibly 0). Both {!map} and {!Pool.create} draw
    from this budget, so nested parallel layers (sweep harness outside,
    SMP kernel inside) cannot oversubscribe each other. Pair every
    grant with {!release_workers}. *)

val release_workers : int -> unit
(** Return slots obtained from {!acquire_workers}.
    @raise Invalid_argument on a negative count. *)

(** A persistent worker pool for many small batches (the SMP kernel runs
    one batch per scheduling round). Domains are spawned once at
    {!Pool.create} from the shared budget and parked between batches. *)
module Pool : sig
  type t

  val create : workers:int -> t
  (** Spawn up to [workers] pool domains — fewer (possibly none) when
      the shared budget is short. A zero-worker pool is legal: {!run}
      then executes every task in the submitting domain. *)

  val size : t -> int
  (** Worker domains actually spawned. *)

  val run : t -> (unit -> unit) array -> unit
  (** Run one batch to completion; the submitting domain participates.
      Tasks are claimed from an atomic counter, so the assignment of
      tasks to domains is nondeterministic — callers must make tasks
      order-independent. If tasks raise, the earliest-indexed exception
      is re-raised after the batch has fully drained.
      @raise Invalid_argument after {!shutdown}. *)

  val shutdown : t -> unit
  (** Join the pool domains and return their budget slots. Idempotent. *)
end
