(** Domain-parallel map for experiment harnesses.

    Sweep points in the simulated experiments are independent — each one
    boots its own [Ksim.Kernel], frame allocator and cost meter — so the
    harness can fan them out across domains. Determinism is preserved by
    construction: results come back in input order, and every simulated
    number is computed inside its own isolated kernel, so the output is
    identical whatever the worker count (there is a regression test for
    this). *)

val jobs : unit -> int
(** The worker count the pool uses by default: {!set_jobs}'s value when
    one has been set (the bench harness's [--jobs N] flag), otherwise
    the [FORKROAD_JOBS] environment variable: a positive integer is used
    as-is but clamped to 4x [Domain.recommended_domain_count ()] (more
    workers than that only adds contention), [0] explicitly selects
    sequential execution, and anything invalid (negative, non-numeric)
    falls back to the core count. Every non-identity interpretation is
    announced once on stderr so a typo'd value cannot silently change
    the worker count. *)

val set_jobs : int -> unit
(** Programmatic override taking precedence over [FORKROAD_JOBS]; the
    value is interpreted exactly like the environment variable ([0] =
    sequential, clamped to 4x cores).
    @raise Invalid_argument on a negative count. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element and returns the results in
    input order. With [jobs <= 1] (or at most one element) it is plain
    [List.map] in the calling domain — no domains are spawned. Otherwise
    [min (jobs - 1) (length xs - 1)] worker domains are spawned and the
    calling domain also works; elements are claimed from an atomic
    counter. If any applications raise, the exception of the
    earliest-indexed failing element is re-raised after all domains have
    been joined. [jobs] defaults to {!jobs}[ ()]. *)
