(** Immutable sets of simulated CPU ids (0..63), packed in an [Int64].

    Used for the per-address-space "which CPUs may cache a mapping of
    this address space" mask that drives targeted TLB-shootdown IPI
    accounting in the SMP kernel model. *)

type t

val max_cpus : int
(** 64 — the mask width and the SMP model's CPU-count ceiling. *)

val empty : t
val is_empty : t -> bool

val singleton : int -> t
(** Raises [Invalid_argument] outside 0..[max_cpus]-1 (as do all
    functions below taking a cpu id). *)

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the members of [a] not in [b]. *)

val equal : t -> t -> bool

val count : t -> int
(** Population count — the number of IPIs a targeted shootdown of this
    set costs. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds in ascending cpu order. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val pp : Format.formatter -> t -> unit
