(** Cost-attribution ledger for process-creation events.

    The paper's central complaint is that fork's cost is deferred and
    misattributed: the price of a fork is paid later — by other
    processes — as COW breaks and TLB invalidations. This ledger makes
    that a measured table. Each sharing-creating operation (fork,
    template freeze, zygote spawn, process-builder construction)
    allocates an {e event}; cycle charges observed while an attribution
    context is active land in that event's [Sync] bucket (paid during
    the creating syscall itself) or [Deferred] bucket (paid later, when
    a write breaks the sharing the event created). Charges observed
    with no context fall into the [unattributed] bucket, so the three
    partitions always sum to the {!Cost} meter's own per-category
    totals — exactly, because all cost parameters are integer-valued
    floats.

    The ledger is driven purely through the {!Cost} observer hook plus
    explicit contexts; it never charges the meter itself, so enabling
    it cannot perturb any simulated number. *)

type kind = Sync | Deferred

type event = private {
  id : int;
  style : string;  (** "fork", "vfork", "spawn", "freeze", "zygote", ... *)
  parent : int;  (** pid of the process that issued the creation *)
  mutable child : int option;  (** created pid, once known *)
  mutable failed : bool;
  mutable tag : string option;  (** e.g. ["tpl:3"] for template events *)
  sync : (string, entry) Hashtbl.t;
  deferred : (string, entry) Hashtbl.t;
}

and entry = { mutable cycles : float; mutable events : int }

type t

val create : unit -> t

val on_cost : t -> string -> n:int -> float -> unit
(** Observer body; the kernel chains it after [Kstat.on_cost] on the
    single {!Cost.set_observer} slot. *)

val new_event : t -> style:string -> parent:int -> int
(** Allocate a ledger event; returns its id. Event ids are their own
    namespace (not pids) so failed creations keep their ledger row. *)

val set_child : t -> int -> child:int -> unit
(** Record the created pid and index the event under it. Call only for
    events that created an actual process. *)

val set_tag : t -> int -> string -> unit
val mark_failed : t -> int -> unit

val event_of_child : t -> int -> int option
(** The event that created [pid], if any. *)

val with_context : t -> id:int -> kind -> (unit -> 'a) -> 'a
(** [with_context t ~id kind f] runs [f] with charges attributed to
    event [id]'s [kind] bucket; restores the previous context on exit
    (also on exception). Contexts nest by shadowing. *)

val context : t -> (int * kind) option
(** The currently active attribution context, if any. The SMP kernel's
    record-and-replay path snapshots this on a scratch ledger so each
    recorded charge can be replayed into the real ledger under the same
    attribution. *)

val find : t -> int -> event option

val events : t -> event list
(** All events, ascending id (creation order — deterministic). *)

val bucket_categories :
  (string, entry) Hashtbl.t -> (string * (float * int)) list
(** Per-category (cycles, events) of one bucket, sorted by descending
    cycles then category name. *)

val sync_cycles : event -> float
val deferred_cycles : event -> float

val deferred_count : event -> string -> int
(** Deferred event count for one category (e.g. ["fault:cow-copy"]). *)

val unattributed : t -> (string * (float * int)) list

val totals : t -> (string * (float * int)) list
(** Grand totals across every bucket, sorted by category name. Equals
    the {!Cost} meter's per-category (cycles, events) — the partition
    property the QCheck test asserts. *)

val to_json : t -> Metrics.Json.t
