type stats = {
  local_flushes : int;
  shootdowns : int;
  invalidations : int;
}

type ipi_hook = src:int -> dsts:Cpuset.t -> full:bool -> n:int -> unit

type t = {
  cost : Cost.t;
  ncpus : int;
  tracked : bool;
  mutable active : int;
  mutable ipi_hook : ipi_hook option;
}

let create ?(cpus = 4) ?(tracked = false) cost =
  if cpus < 1 then invalid_arg "Tlb.create: cpus < 1";
  if tracked && cpus > Cpuset.max_cpus then
    invalid_arg
      (Printf.sprintf "Tlb.create: tracked mode supports at most %d cpus"
         Cpuset.max_cpus);
  { cost; ncpus = cpus; tracked; active = 0; ipi_hook = None }

let cpus t = t.ncpus
let tracked t = t.tracked

let set_active t cpu =
  if cpu < 0 || cpu >= t.ncpus then invalid_arg "Tlb.set_active: cpu out of range";
  t.active <- cpu

let active_cpu t = t.active
let set_ipi_hook t hook = t.ipi_hook <- hook

let flush_local t =
  Cost.charge t.cost "tlb:flush" (Cost.params t.cost).Cost.tlb_flush

let shootdown t =
  let p = Cost.params t.cost in
  Cost.charge t.cost "tlb:flush" p.Cost.tlb_flush;
  Cost.charge t.cost "tlb:shootdown"
    (p.Cost.tlb_shootdown *. float_of_int (t.ncpus - 1))

let ipi t ~dsts ~full ~n =
  if not t.tracked then invalid_arg "Tlb.ipi: untracked Tlb";
  if n < 0 then invalid_arg "Tlb.ipi: negative count";
  let k = Cpuset.count (Cpuset.remove t.active dsts) in
  let events = n * k in
  if events > 0 then begin
    Cost.charge ~n:events t.cost "tlb:shootdown"
      ((Cost.params t.cost).Cost.tlb_shootdown *. float_of_int events);
    match t.ipi_hook with
    | None -> ()
    | Some hook ->
      hook ~src:t.active ~dsts:(Cpuset.remove t.active dsts) ~full ~n
  end

let invalidate_page t =
  Cost.charge t.cost "tlb:invlpg" (Cost.params t.cost).Cost.tlb_invlpg

let invalidate_pages t ~n =
  if n < 0 then invalid_arg "Tlb.invalidate_pages: negative count";
  if n > 0 then
    Cost.charge ~n t.cost "tlb:invlpg"
      ((Cost.params t.cost).Cost.tlb_invlpg *. float_of_int n)

let stats t =
  {
    local_flushes = Cost.count t.cost "tlb:flush";
    shootdowns = Cost.count t.cost "tlb:shootdown";
    invalidations = Cost.count t.cost "tlb:invlpg";
  }
