(** 4-level radix page table over packed {!Pte} entries.

    This is the data structure whose wholesale duplication makes fork's
    cost proportional to the parent's address-space size: {!clone_cow}
    walks and copies every table page containing a present entry, which
    is exactly what a COW fork must do, while a freshly spawned process
    starts from an empty table.

    The harness-side representation is decoupled from the modelled cost:
    table nodes are reference-counted, so {!clone_cow_shared} can charge
    the full modelled copy while actually sharing untouched subtrees
    between parent and child, privatising them only when written. Range
    operations ({!map_range}, {!unmap_range}, {!protect_range},
    {!fold_leaves}) locate each leaf once and then work on its packed
    PTE array directly, making hot paths O(leaves), not O(pages). *)

type t

val create : unit -> t

val map : t -> vpn:int -> Pte.t -> unit
(** Install (or replace) the entry for virtual page [vpn], allocating
    intermediate table nodes as needed.
    @raise Invalid_argument if [vpn] is out of range or the PTE is
    absent. *)

val unmap : t -> vpn:int -> Pte.t
(** Remove and return the entry ({!Pte.absent} if none was present).
    Lazy (demand-paged) entries are removed too and returned. *)

val lookup : t -> vpn:int -> Pte.t
(** {!Pte.absent} when unmapped. *)

val update : t -> vpn:int -> (Pte.t -> Pte.t) -> bool
(** Apply a function to a *present* entry in place; returns false (and
    does nothing) when the page is unmapped. The function must return a
    present entry. *)

val present_count : t -> int
(** Number of present leaf entries. *)

val lazy_count : t -> int
(** Number of lazy (mapped-but-unbacked, demand-paged) entries. *)

val node_count : t -> int
(** Number of table pages this table logically owns, root included.
    Subtrees shared with a clone count towards both tables (each was
    charged for its copy at fork time). *)

val fold_present : t -> init:'a -> f:('a -> vpn:int -> Pte.t -> 'a) -> 'a
(** Iterate all present entries in increasing vpn order. *)

val fold_lazy : t -> init:'a -> f:('a -> vpn:int -> Pte.t -> 'a) -> 'a
(** Iterate all lazy (demand-paged) entries in increasing vpn order. *)

val map_range : t -> vpn:int -> Pte.t array -> unit
(** Install [ptes.(i)] at [vpn + i] for every [i], locating each leaf
    once ([Array.blit] into fresh leaves). Equivalent to repeated
    {!map}. @raise Invalid_argument on out-of-range vpns or absent
    PTEs. *)

val map_lazy_range :
  t -> vpn:int -> n:int -> cookie0:int -> stride:int -> perm:Perm.t -> unit
(** Install [n] lazy (demand-paged) entries from [vpn], locating each
    leaf once: page [k] of the run carries cookie [cookie0 + k*stride]
    ([stride] 1 indexes consecutive image pages, 0 repeats a constant
    source cookie). No frame is allocated, no byte copied. The range
    must be wholly absent. @raise Invalid_argument on out-of-range
    vpns, negative cookie runs, or occupied slots. *)

val unmap_range : t -> vpn0:int -> vpn1:int -> f:(Pte.t -> unit) -> int
(** Remove every present entry in [[vpn0, vpn1]], calling [f] on each
    removed PTE in ascending vpn order; returns the number removed.
    Lazy entries in the range are dropped too (without calling [f] —
    there is no frame to release), but not counted in the result.
    Like {!unmap}, emptied leaf nodes stay allocated. *)

val protect_range : t -> vpn0:int -> vpn1:int -> f:(Pte.t -> Pte.t) -> int
(** Apply [f] to every present entry in [[vpn0, vpn1]] in place, in
    ascending vpn order; returns the number updated. [f] must return
    present entries. Equivalent to {!update} on every page of the
    range. *)

val fold_leaves :
  t ->
  vpn0:int ->
  vpn1:int ->
  init:'a ->
  missing:('a -> vpn:int -> span:int -> materialize:(unit -> int array) -> 'a) ->
  leaf:
    ('a ->
    base:int ->
    entries:int array ->
    lo:int ->
    hi:int ->
    writable:(unit -> int array) ->
    'a) ->
  'a
(** Leaf-granular cursor over the vpn range [[vpn0, vpn1]], ascending.
    For each leaf position, calls [leaf] when the leaf exists —
    [entries] is its packed PTE array, [lo..hi] the indices inside the
    range, [base] the vpn of [entries.(0)]; treat [entries] as read-only
    and call [writable ()] (which privatises the path) before mutating —
    or [missing] when it doesn't, where [materialize ()] creates the
    leaf (and any intermediate nodes) on demand. Callers that install or
    remove entries directly must report the net present-count change via
    {!note_mapped}. *)

val note_mapped : t -> int -> unit
(** Adjust the present-entry counter by [n] — for range fillers writing
    through {!fold_leaves}. *)

val note_lazy : t -> int -> unit
(** Adjust the lazy-entry counter by [n] — for batched fault paths that
    convert lazy entries to present through {!fold_leaves} (which must
    also {!note_mapped} the same count). *)

val clone_cow : t -> frames:Frame.t -> cost:Cost.t -> t
(** Duplicate the table for a forked child: every table node is copied
    (charged as [pt_node_copy]), every present entry visited (charged as
    [pte_copy]); writable entries are downgraded to read-only+COW in
    {b both} parent and child, and each referenced frame's refcount is
    incremented. Lazy entries are copied verbatim (also [pte_copy] — a
    PTE word the fork must copy, though no frame backs it): both sides
    keep the cookie and fault their page independently. The caller is
    responsible for the parent TLB flush this downgrade requires. This
    is the eager reference walk — the oracle the batched path is tested
    against. *)

val clone_cow_shared :
  t ->
  frames:Frame.t ->
  cost:Cost.t ->
  shared:(int * int * Perm.t) list ->
  t
(** Fork the table with lazy subtree sharing: charges exactly what
    {!clone_cow} would ([pt_node_copy] per node, [pte_copy] per present
    entry, each frame incref'd), but the child shares every node with
    the parent until one side writes. [shared] lists the vpn ranges
    [(lo, hi, perm)] of shared VMAs, ascending and disjoint: their pages
    are pinned at the region permission with COW clear (the
    {!clone_cow}-then-fixup result), all other writable pages are
    downgraded to read-only COW in both tables. *)

val seal_cow :
  t ->
  frames:Frame.t ->
  cost:Cost.t ->
  shared:(int * int * Perm.t) list ->
  t
(** Seal the table into a template image: the same transform pass (and
    the same [pt_node_copy]/[pte_copy] charges) as {!clone_cow_shared},
    but every resident frame is moved into the immortal refcount class
    ({!Frame.pin}) instead of gaining a reference. The returned table is
    the template's handle; [t] remains usable by the source process,
    whose later writes COW away from the pinned frames. The caller owes
    the source TLB flush the downgrade requires. *)

val clone_sealed : t -> cost:Cost.t -> t * int
(** Clone a sealed template table for a zygote child in O(top-level
    subtrees): the frames behind it are immortal and the PTEs are
    already in post-fork form, so the clone bumps the root and charges
    one [pt_node_copy] per occupied root slot — cost proportional to the
    root fan-out (category ["zygote:subtree"]), not the footprint.
    Returns the child table and the number of subtrees shared. *)

val clear : t -> frames:Frame.t -> int
(** Drop every present entry, decrementing frame refcounts; returns the
    number of entries dropped. Subtrees shared with a clone survive
    under the other table. Used by exec and process teardown. *)
