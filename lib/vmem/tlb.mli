(** TLB cost model.

    The simulator does not cache translations (correctness never depends
    on a TLB); this module only *accounts* for the flush and shootdown
    work that real kernels must perform — the costs fork's COW downgrade
    forces onto every CPU running the parent.

    Two accounting modes exist:

    - {b legacy} (default): {!shootdown} broadcasts to all [cpus - 1]
      remote CPUs unconditionally, as one charged event. This is the
      pre-SMP model and every historical BENCH number embeds it.
    - {b tracked}: the SMP kernel knows which CPUs actually cache a
      mapping (the per-address-space {!Cpuset} mask) and charges one
      ["tlb:shootdown"] event per IPI actually sent, via {!ipi}. *)

type t

type stats = {
  local_flushes : int;
  shootdowns : int;
      (** legacy: full-AS remote flushes (one event, all CPUs);
          tracked: individual IPIs sent *)
  invalidations : int;  (** single-page invalidations *)
}

type ipi_hook = src:int -> dsts:Cpuset.t -> full:bool -> n:int -> unit
(** Fired by {!ipi} after charging: [src] the sending CPU, [dsts] the
    remote CPUs interrupted (never containing [src]), [full] whether
    this is a full-AS flush (vs per-page invlpg), [n] the number of
    pages ([1] for full). *)

val create : ?cpus:int -> ?tracked:bool -> Cost.t -> t
(** [cpus] is how many CPUs may concurrently run threads of one address
    space; legacy shootdowns charge per remote CPU. Default 4, legacy
    mode.
    @raise Invalid_argument if [cpus < 1], or if [tracked] and [cpus]
    exceeds {!Cpuset.max_cpus}. *)

val cpus : t -> int
val tracked : t -> bool

val set_active : t -> int -> unit
(** Tracked mode: the scheduler notes which simulated CPU is currently
    executing, so {!ipi} knows the IPI source (and never charges the
    sender for interrupting itself).
    @raise Invalid_argument if out of range. *)

val active_cpu : t -> int

val set_ipi_hook : t -> ipi_hook option -> unit
(** Observer for per-CPU kstat accounting; see {!ipi_hook}. *)

val flush_local : t -> unit
(** Full flush on the current CPU (e.g. context switch to a new AS). *)

val shootdown : t -> unit
(** Legacy broadcast: flush an address space on every CPU — one local
    flush plus an IPI to each of the [cpus - 1] remote CPUs, charged as
    a single event. *)

val ipi : t -> dsts:Cpuset.t -> full:bool -> n:int -> unit
(** Tracked mode: send a shootdown IPI for [n] pages ([full] = whole
    address space) to every CPU in [dsts] except the active one.
    Charges [n * |dsts \ {active}|] ["tlb:shootdown"] events (so
    [Cost.count "tlb:shootdown"] is the total IPI count), then fires
    the hook. No-op when the effective destination set is empty.
    @raise Invalid_argument on an untracked [t] or [n < 0]. *)

val invalidate_page : t -> unit
(** Single-page invalidation on the current CPU (COW break). *)

val invalidate_pages : t -> n:int -> unit
(** [n] single-page invalidations charged at once — same cycles and
    event count as [n] {!invalidate_page} calls. No-op at [n = 0].
    @raise Invalid_argument if [n < 0]. *)

val stats : t -> stats
(** Derived from the event counts the shared {!Cost} meter recorded
    under the ["tlb:*"] categories, so [Cost.reset] also resets these. *)
