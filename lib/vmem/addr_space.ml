type fault_error = [ `Segfault | `Perm_denied | `Out_of_memory ]

(* A simulated user-mode pager: supplies the frame contents (and the
   modelled fetch cost) for pager-backed pages on their first touch.
   [fetch] resolves a lazy PTE's cookie; [fetch_backing] copies a page
   out of a template backing table; both take the cost meter as an
   argument because the SMP kernel swaps scratch meters in during its
   record-and-replay phase and the closures are built once per space.
   [deny] is the fault-injection hook, consulted once per pulled page
   (readahead included); [readahead] is how many immediately-following
   pager-backed pages one request also pulls in. *)
type pager = {
  fetch : Cost.t -> cookie:int -> frame:Frame.frame -> unit;
  fetch_backing : Cost.t -> src:Frame.frame -> dst:Frame.frame -> unit;
  deny : unit -> bool;
  readahead : int;
}

type t = {
  frames : Frame.t;
  mutable cost : Cost.t;
  mutable tlb : Tlb.t;
  mutable regions : Vma.t Region_map.t;
  mutable pt : Page_table.t;
  mmap_base : int;
  mutable heap : (int * int) option;  (** (base, brk) — brk grows upward *)
  mutable committed : int;  (** pages this AS has charged to Frame.commit *)
  mutable dead : bool;
  batched : bool;
      (** range-batched hot paths; [false] keeps the per-page reference
          walks as the oracle the batched paths are tested against *)
  mutable blame : Blame.t option;
  mutable blame_origin : int;
      (** id of the most recent {!Blame} sharing event this space took
          part in, or -1; COW breaks are deferred-charged to it *)
  family : int;
      (** clone lineage id: spaces whose frames may be COW-entangled
          (fork children, template children) share a family; the SMP
          kernel parallelises only across distinct families *)
  mutable cpumask : Cpuset.t;
      (** which simulated CPUs may cache translations of this space —
          maintained by the SMP scheduler; drives targeted shootdowns *)
  mutable pager : pager option;
  mutable backing : Page_table.t option;
      (** lazy-zygote backing: a sealed template table consulted on
          faults to wholly-absent pages — a hit is a template-backed
          first-touch major fault, a miss an ordinary demand-zero *)
  mutable backing_holes : (int * int) list;
      (** vpn ranges munmapped since the clone: the backing table is
          immutable (shared with the template), so holes are recorded
          here and faults inside them fall back to demand-zero *)
}

(* cost/tlb/blame are mutable only so the SMP kernel can swap scratch
   meters in for the record-and-replay parallel phase; outside that
   window they are fixed for the life of the space. *)
type meters = { m_cost : Cost.t; m_tlb : Tlb.t; m_blame : Blame.t option }

let meters t = { m_cost = t.cost; m_tlb = t.tlb; m_blame = t.blame }

let set_meters t { m_cost; m_tlb; m_blame } =
  t.cost <- m_cost;
  t.tlb <- m_tlb;
  t.blame <- m_blame

let default_mmap_base = 0x7000_0000_0000

let next_family = Atomic.make 0

let create ?(mmap_base = default_mmap_base) ?(batched = true) ?blame ~frames
    ~cost ~tlb () =
  if not (Addr.is_page_aligned mmap_base) || not (Addr.valid mmap_base) then
    invalid_arg "Addr_space.create: bad mmap_base";
  {
    frames;
    cost;
    tlb;
    regions = Region_map.empty;
    pt = Page_table.create ();
    mmap_base;
    heap = None;
    committed = 0;
    dead = false;
    batched;
    blame;
    blame_origin = -1;
    family = Atomic.fetch_and_add next_family 1;
    cpumask = Cpuset.empty;
    pager = None;
    backing = None;
    backing_holes = [];
  }

let set_pager t pg = t.pager <- pg
let pager_installed t = t.pager <> None
let has_backing t = t.backing <> None
let lazy_pages t = Page_table.lazy_count t.pt

(* Demand paging is live in this space: faults may need the pager. The
   default configuration (no pager, no lazy entries) keeps every fault
   path bit-identical to the eager simulator. *)
let pager_active t =
  t.pager <> None && (t.backing <> None || Page_table.lazy_count t.pt > 0)

let family t = t.family
let cpumask t = t.cpumask
let note_cpu t ~cpu = t.cpumask <- Cpuset.add cpu t.cpumask

let set_blame_origin t id = t.blame_origin <- id

let blame_origin t = if t.blame_origin >= 0 then Some t.blame_origin else None

(* Run [f] with charges deferred-attributed to this space's sharing
   origin: wraps only the COW-break paths, so a space that never forked
   (or a vmem used without a ledger) attributes nothing. *)
let deferred_blame t f =
  match t.blame with
  | Some b when t.blame_origin >= 0 ->
    Blame.with_context b ~id:t.blame_origin Blame.Deferred f
  | Some _ | None -> f ()

(* Full-address-space remote flush. Legacy Tlbs broadcast to every
   configured CPU; tracked Tlbs IPI only the CPUs that actually cache a
   mapping of this space (its cpumask, minus the sender), then collapse
   the mask to the sender alone — every remote CPU just dropped its
   cached translations. *)
let as_shootdown t =
  if Tlb.tracked t.tlb then begin
    Tlb.flush_local t.tlb;
    Tlb.ipi t.tlb ~dsts:t.cpumask ~full:true ~n:1;
    t.cpumask <- Cpuset.singleton (Tlb.active_cpu t.tlb)
  end
  else Tlb.shootdown t.tlb

(* Per-page invalidation. Tracked Tlbs additionally IPI each remote CPU
   in the mask once per page (the invlpg must reach every CPU that may
   cache the stale translation); the mask is *not* collapsed — other
   translations of this space stay cached remotely. *)
let invalidate t ~n =
  Tlb.invalidate_pages t.tlb ~n;
  if Tlb.tracked t.tlb && n > 0 then Tlb.ipi t.tlb ~dsts:t.cpumask ~full:false ~n

let invalidate_one t = invalidate t ~n:1

let frames t = t.frames
let cost t = t.cost
let mmap_base t = t.mmap_base
let alive t name = if t.dead then invalid_arg (name ^ ": destroyed address space")

let charge_commit t pages =
  match Frame.commit t.frames pages with
  | Ok () ->
    t.committed <- t.committed + pages;
    Ok ()
  | Error `Commit_limit -> Error `Commit_limit

let release_commit t pages =
  Frame.uncommit t.frames pages;
  t.committed <- max 0 (t.committed - pages)

let needs_commit vma = not vma.Vma.shared && vma.Vma.kind <> Vma.Guard

let mmap ?addr ?(shared = false) ~len ~perm ~kind t =
  alive t "Addr_space.mmap";
  if len <= 0 then Error `Invalid
  else begin
    let len = Addr.align_up len in
    let vma = Vma.make ~shared ~perm ~kind () in
    let place start =
      match Region_map.add ~start ~stop:(start + len) vma t.regions with
      | Error `Overlap -> Error `Overlap
      | Ok regions ->
        let pages = len / Addr.page_size in
        if needs_commit vma then begin
          match charge_commit t pages with
          | Error `Commit_limit -> Error `Commit_limit
          | Ok () ->
            t.regions <- regions;
            Ok start
        end
        else begin
          t.regions <- regions;
          Ok start
        end
    in
    match addr with
    | Some a ->
      if not (Addr.is_page_aligned a) || not (Addr.valid a) || a + len > Addr.max_va
      then Error `Invalid
      else place a
    | None -> (
      match
        Region_map.find_gap ~min:t.mmap_base ~max:Addr.max_va ~len t.regions
      with
      | None -> Error `No_space
      | Some a -> place a)
  end

(* Map a pager-backed (lazy) range: the VMA and commit admission of
   [mmap], then one [map_lazy_range] installing empty leaves — no frame
   allocated, no byte copied, cost O(ranges). Page [k] carries cookie
   [cookie0 + k*stride] for the pager to resolve at first touch. *)
let map_lazy ?addr ~len ~perm ~kind ~cookie0 ~stride t =
  alive t "Addr_space.map_lazy";
  if t.pager = None then invalid_arg "Addr_space.map_lazy: no pager installed";
  match mmap ?addr ~len ~perm ~kind t with
  | Error _ as e -> e
  | Ok start ->
    Page_table.map_lazy_range t.pt ~vpn:(Addr.page_number start)
      ~n:(Addr.align_up len / Addr.page_size)
      ~cookie0 ~stride ~perm;
    Ok start

(* Release the frames mapped under [start, stop) and return how many
   pages were resident. *)
let release_pages t ~start ~stop =
  let vpn0 = Addr.page_number start and vpn1 = Addr.page_number (stop - 1) in
  if t.batched then
    Page_table.unmap_range t.pt ~vpn0 ~vpn1 ~f:(fun pte ->
        ignore (Frame.decref t.frames (Pte.frame pte)))
  else begin
    let released = ref 0 in
    for vpn = vpn0 to vpn1 do
      let pte = Page_table.unmap t.pt ~vpn in
      if Pte.present pte then begin
        ignore (Frame.decref t.frames (Pte.frame pte));
        incr released
      end
    done;
    !released
  end

let munmap t ~addr ~len =
  alive t "Addr_space.munmap";
  if len <= 0 || not (Addr.is_page_aligned addr) || not (Addr.valid addr) then
    Error `Invalid
  else begin
    let stop = addr + Addr.align_up len in
    let regions, removed =
      Region_map.carve ~start:addr ~stop ~crop:Vma.crop t.regions
    in
    t.regions <- regions;
    List.iter
      (fun (s, e, vma) ->
        ignore (release_pages t ~start:s ~stop:e);
        if t.backing <> None then
          t.backing_holes <-
            (Addr.page_number s, Addr.page_number (e - 1)) :: t.backing_holes;
        if needs_commit vma then release_commit t ((e - s) / Addr.page_size))
      removed;
    if removed <> [] then as_shootdown t;
    Ok ()
  end

let protect t ~addr ~len ~perm =
  alive t "Addr_space.protect";
  if len <= 0 || not (Addr.is_page_aligned addr) || not (Addr.valid addr) then
    Error `Invalid
  else begin
    let stop = addr + Addr.align_up len in
    (* the range must be fully covered by existing VMAs *)
    let overlaps = Region_map.overlapping ~start:addr ~stop t.regions in
    let covered =
      let rec check pos = function
        | [] -> pos >= stop
        | (s, e, _) :: rest -> s <= pos && check (max pos e) rest
      in
      check addr overlaps
    in
    if not covered then Error `No_region
    else begin
      let regions, removed =
        Region_map.carve ~start:addr ~stop ~crop:Vma.crop t.regions
      in
      let regions =
        List.fold_left
          (fun regions (s, e, vma) ->
            match
              Region_map.add ~start:s ~stop:e { vma with Vma.perm } regions
            with
            | Ok r -> r
            | Error `Overlap -> assert false (* we just carved the range *))
          regions removed
      in
      t.regions <- regions;
      (* downgrade/upgrade PTEs; COW pages keep write off *)
      let vpn0 = Addr.page_number addr and vpn1 = Addr.page_number (stop - 1) in
      let repermit pte =
        let p =
          if Pte.cow pte then { perm with Perm.write = false } else perm
        in
        Pte.with_perm pte p
      in
      if t.batched then
        ignore (Page_table.protect_range t.pt ~vpn0 ~vpn1 ~f:repermit)
      else
        for vpn = vpn0 to vpn1 do
          ignore (Page_table.update t.pt ~vpn repermit)
        done;
      as_shootdown t;
      Ok ()
    end
  end

let set_heap_base t base =
  alive t "Addr_space.set_heap_base";
  if not (Addr.is_page_aligned base) || not (Addr.valid base) then
    invalid_arg "Addr_space.set_heap_base: bad base";
  match t.heap with
  | Some _ -> invalid_arg "Addr_space.set_heap_base: heap already set"
  | None -> t.heap <- Some (base, base)

(* Rollback hook for failed image loads: forget a heap base that was set
   while building an image that is now being torn back down. Only legal
   while the heap is still empty — a grown heap is real state. *)
let reset_heap_base t =
  alive t "Addr_space.reset_heap_base";
  match t.heap with
  | None -> ()
  | Some (base, brk) ->
    if brk <> base then invalid_arg "Addr_space.reset_heap_base: heap in use";
    t.heap <- None

let brk t =
  alive t "Addr_space.brk";
  match t.heap with
  | None -> invalid_arg "Addr_space.brk: no heap"
  | Some (_, b) -> b

let set_brk t new_brk =
  alive t "Addr_space.set_brk";
  match t.heap with
  | None -> Error `Invalid
  | Some (base, cur) ->
    if (not (Addr.is_page_aligned new_brk)) || new_brk < base then Error `Invalid
    else if new_brk = cur then Ok ()
    else if new_brk > cur then begin
      (* grow: extend (or create) the heap VMA *)
      let vma = Vma.make ~perm:Perm.rw ~kind:Vma.Heap () in
      let regions, _ =
        if cur > base then
          Region_map.carve ~start:base ~stop:cur ~crop:Vma.crop t.regions
        else (t.regions, [])
      in
      match Region_map.add ~start:base ~stop:new_brk vma regions with
      | Error `Overlap -> Error `Overlap
      | Ok regions -> (
        let pages = (new_brk - cur) / Addr.page_size in
        match charge_commit t pages with
        | Error `Commit_limit -> Error `Commit_limit
        | Ok () ->
          t.regions <- regions;
          t.heap <- Some (base, new_brk);
          Ok ())
    end
    else begin
      (* shrink: release the tail *)
      match munmap t ~addr:new_brk ~len:(cur - new_brk) with
      | Error `Invalid -> Error `Invalid
      | Ok () ->
        t.heap <- Some (base, new_brk);
        Ok ()
    end

let params t = Cost.params t.cost

let demand_fill t ~vpn ~perm =
  let p = params t in
  match Frame.alloc t.frames with
  | Error `Out_of_memory -> Error `Out_of_memory
  | Ok frame ->
    Cost.charge t.cost "fault:zero-fill" p.Cost.frame_zero;
    Page_table.map t.pt ~vpn (Pte.make ~frame ~perm ());
    Ok ()

let break_cow t ~vpn ~pte ~region_perm =
  let p = params t in
  let frame = Pte.frame pte in
  if Frame.refcount t.frames frame = 1 then begin
    (* last sharer: take the page back in place *)
    Cost.tally t.cost "fault:cow-reuse";
    ignore
      (Page_table.update t.pt ~vpn (fun pte ->
           Pte.with_cow (Pte.with_perm pte region_perm) false));
    invalidate_one t;
    Ok ()
  end
  else begin
    match Frame.alloc t.frames with
    | Error `Out_of_memory -> Error `Out_of_memory
    | Ok fresh ->
      Cost.charge t.cost "fault:cow-copy" p.Cost.frame_copy;
      Frame.copy_contents t.frames ~src:frame ~dst:fresh;
      ignore (Frame.decref t.frames frame);
      Page_table.map t.pt ~vpn (Pte.make ~frame:fresh ~perm:region_perm ());
      invalidate_one t;
      Ok ()
  end

(* Where the pager would source the (non-present) page at [vpn], if
   anywhere: a lazy PTE carries its fetch cookie; a wholly-absent page
   over the backing table (outside any munmap hole) is template-backed;
   anything else is ordinary demand-zero. *)
let pager_src t ~vpn ~pte =
  if Pte.lazy_ pte then Some (`Cookie (Pte.cookie pte))
  else
    match t.backing with
    | None -> None
    | Some bpt ->
      if List.exists (fun (lo, hi) -> vpn >= lo && vpn <= hi) t.backing_holes
      then None
      else
        let b = Page_table.lookup bpt ~vpn in
        if Pte.present b then Some (`Backing (Pte.frame b)) else None

(* Pull one page through the pager: allocate a frame, let the pager
   charge its fetch and fill the contents, install the entry present at
   the region permission. Failure (denied fetch or no frame) leaves the
   entry exactly as it was — a lazy PTE stays lazy, a backing hit stays
   absent — so a failed first touch rolls back cleanly. *)
let pager_fill t pg ~vpn ~perm ~src ~prefetched =
  if pg.deny () then Error `Out_of_memory
  else
    match Frame.alloc t.frames with
    | Error `Out_of_memory -> Error `Out_of_memory
    | Ok frame ->
      (match src with
      | `Cookie c -> pg.fetch t.cost ~cookie:c ~frame
      | `Backing src -> pg.fetch_backing t.cost ~src ~dst:frame);
      let pte = Pte.make ~frame ~perm () in
      Page_table.map t.pt ~vpn
        (if prefetched then Pte.mark_prefetched pte else pte);
      Ok ()

(* First-touch (major) fault on a pager-backed page: one pager request
   serves the faulting page plus up to [readahead] immediately-following
   pager-backed pages of the same VMA, installed with the prefetched
   mark (their later first access tallies a readahead hit). Readahead
   stops silently at the first non-pager-backed page, denied fetch or
   allocation failure — only the faulting page's failure surfaces.
   Charges carry the deferred-blame context: a zygote child's fetches
   bill the spawn event that made its pages lazy. *)
let pager_fault t pg ~region_perm ~region_stop ~vpn ~src =
  let p = params t in
  deferred_blame t (fun () ->
      Cost.charge t.cost "fault:base" p.Cost.fault_base;
      Cost.charge t.cost "pager:request" p.Cost.pager_request;
      match pager_fill t pg ~vpn ~perm:region_perm ~src ~prefetched:false with
      | Error _ as e -> e
      | Ok () ->
        let vpn_stop = min (Addr.page_number (region_stop - 1)) (vpn + pg.readahead) in
        (try
           for v = vpn + 1 to vpn_stop do
             let pte = Page_table.lookup t.pt ~vpn:v in
             if Pte.present pte then raise Exit;
             match pager_src t ~vpn:v ~pte with
             | None -> raise Exit
             | Some src -> (
               match
                 pager_fill t pg ~vpn:v ~perm:region_perm ~src ~prefetched:true
               with
               | Error `Out_of_memory -> raise Exit
               | Ok () -> ())
           done
         with Exit -> ());
        Ok ())

let fault t ~addr ~write =
  alive t "Addr_space.fault";
  let p = params t in
  if not (Addr.valid addr) then Error `Segfault
  else
    match Region_map.find_containing addr t.regions with
    | None -> Error `Segfault
    | Some (_, rstop, vma) ->
      let requested =
        if write then { Perm.none with Perm.write = true }
        else { Perm.none with Perm.read = true }
      in
      if not (Perm.allows vma.Vma.perm requested) then Error `Perm_denied
      else begin
        let vpn = Addr.page_number addr in
        let pte = Page_table.lookup t.pt ~vpn in
        if not (Pte.present pte) then begin
          match pager_src t ~vpn ~pte with
          | Some src -> (
            match t.pager with
            | None ->
              invalid_arg "Addr_space.fault: pager-backed page but no pager"
            | Some pg ->
              pager_fault t pg ~region_perm:vma.Vma.perm ~region_stop:rstop
                ~vpn ~src)
          | None ->
            Cost.charge t.cost "fault:base" p.Cost.fault_base;
            demand_fill t ~vpn ~perm:vma.Vma.perm
        end
        else if write && not (Pte.perm pte).Perm.write then begin
          if Pte.cow pte then
            (* the deferred half of a fork's bill: charge the break to
               the sharing event that created this COW mapping *)
            deferred_blame t (fun () ->
                Cost.charge t.cost "fault:base" p.Cost.fault_base;
                break_cow t ~vpn ~pte ~region_perm:vma.Vma.perm)
          else begin
            Cost.charge t.cost "fault:base" p.Cost.fault_base;
            (* stale protection (e.g. mprotect round-trip): refresh in place *)
            ignore
              (Page_table.update t.pt ~vpn (fun pte ->
                   Pte.with_perm pte vma.Vma.perm));
            invalidate_one t;
            Ok ()
          end
        end
        else begin
          if Pte.prefetched pte then
            (* first real access to a page readahead pulled in: the
               prefetch paid off — count the hit, clear the mark *)
            Cost.tally t.cost "pager:readahead-hit";
          ignore
            (Page_table.update t.pt ~vpn (fun pte ->
                 let pte = Pte.clear_prefetched (Pte.mark_accessed pte) in
                 if write then Pte.mark_dirty pte else pte));
          Ok ()
        end
      end

let touch t addr = fault t ~addr ~write:true

exception Fault_stop of fault_error

(* Batched write-fault of [vpn0, vpn1], all inside one VMA whose
   permission allows writes: the same per-page state transitions as
   [fault ~write:true], but each leaf is located once and the cost
   meter is charged once per category for the whole range (all cost
   parameters are integer-valued floats, so one charge of n*c equals n
   charges of c exactly, and event counts are summed either way). *)
let touch_covered_batched t ~rperm ~vpn0 ~vpn1 ~count =
  let p = params t in
  let n_base = ref 0 and n_zero = ref 0 and n_reuse = ref 0 in
  let n_copy = ref 0 and n_invlpg = ref 0 in
  (* COW-break work is tallied apart from ordinary fills so its charges
     can carry the deferred-blame context; splitting one charge of
     (a+b)*c into a*c and b*c is exact (integer-valued params), so the
     meter's totals and event counts are unchanged. *)
  let n_base_cow = ref 0 and n_invlpg_cow = ref 0 in
  let flush_charges () =
    if !n_base > 0 then
      Cost.charge ~n:!n_base t.cost "fault:base"
        (p.Cost.fault_base *. float_of_int !n_base);
    if !n_zero > 0 then
      Cost.charge ~n:!n_zero t.cost "fault:zero-fill"
        (p.Cost.frame_zero *. float_of_int !n_zero);
    invalidate t ~n:!n_invlpg;
    if !n_base_cow > 0 || !n_reuse > 0 || !n_copy > 0 || !n_invlpg_cow > 0
    then
      deferred_blame t (fun () ->
          if !n_base_cow > 0 then
            Cost.charge ~n:!n_base_cow t.cost "fault:base"
              (p.Cost.fault_base *. float_of_int !n_base_cow);
          if !n_reuse > 0 then
            Cost.charge ~n:!n_reuse t.cost "fault:cow-reuse" 0.0;
          if !n_copy > 0 then
            Cost.charge ~n:!n_copy t.cost "fault:cow-copy"
              (p.Cost.frame_copy *. float_of_int !n_copy);
          invalidate t ~n:!n_invlpg_cow)
  in
  let oom () =
    flush_charges ();
    raise (Fault_stop `Out_of_memory)
  in
  (* demand-fill a run of [n] absent pages starting at [entries.(i0)];
     the failing page of a short allocation still pays fault_base, like
     the per-page walk, and a wholly-failed run creates no leaf *)
  let fill ~n ~get_entries ~i0 =
    let frames = Frame.alloc_upto t.frames n in
    let m = Array.length frames in
    n_base := !n_base + m;
    n_zero := !n_zero + m;
    if m > 0 then begin
      let entries = get_entries () in
      Pte.blit_run ~frames ~n:m ~perm:rperm entries ~at:i0;
      Page_table.note_mapped t.pt m;
      count := !count + m
    end;
    if m < n then begin
      incr n_base;
      oom ()
    end
  in
  Page_table.fold_leaves t.pt ~vpn0 ~vpn1 ~init:()
    ~missing:(fun () ~vpn ~span ~materialize ->
      fill ~n:span ~get_entries:materialize
        ~i0:(vpn land (Addr.entries_per_table - 1)))
    ~leaf:(fun () ~base:_ ~entries:_ ~lo ~hi ~writable ->
      let entries = writable () in
      let i = ref lo in
      while !i <= hi do
        let pte = entries.(!i) in
        if not (Pte.present pte) then begin
          let j = ref (!i + 1) in
          while !j <= hi && not (Pte.present entries.(!j)) do
            incr j
          done;
          fill ~n:(!j - !i) ~get_entries:(fun () -> entries) ~i0:!i;
          i := !j
        end
        else begin
          (if (Pte.perm pte).Perm.write then
             (* plain write hit: reference bits only, no charge *)
             entries.(!i) <- Pte.mark_dirty (Pte.mark_accessed pte)
           else if Pte.cow pte then begin
             let frame = Pte.frame pte in
             incr n_base_cow;
             if Frame.refcount t.frames frame = 1 then begin
               (* last sharer: take the page back in place *)
               incr n_reuse;
               entries.(!i) <- Pte.with_cow (Pte.with_perm pte rperm) false;
               incr n_invlpg_cow
             end
             else begin
               match Frame.alloc t.frames with
               | Error `Out_of_memory -> oom ()
               | Ok fresh ->
                 incr n_copy;
                 Frame.copy_contents t.frames ~src:frame ~dst:fresh;
                 ignore (Frame.decref t.frames frame);
                 entries.(!i) <- Pte.make ~frame:fresh ~perm:rperm ();
                 incr n_invlpg_cow
             end
           end
           else begin
             (* stale protection: refresh in place *)
             incr n_base;
             entries.(!i) <- Pte.with_perm pte rperm;
             incr n_invlpg
           end);
          incr count;
          incr i
        end
      done);
  flush_charges ()

let touch_range_batched t ~addr ~len =
  let vpn1 = Addr.page_number (addr + len - 1) in
  let count = ref 0 in
  try
    let vpn = ref (Addr.page_number addr) in
    while !vpn <= vpn1 do
      let a = Addr.addr_of_page !vpn in
      if not (Addr.valid a) then raise (Fault_stop `Segfault);
      match Region_map.find_containing a t.regions with
      | None -> raise (Fault_stop `Segfault)
      | Some (_, e, vma) ->
        if not (Perm.allows vma.Vma.perm { Perm.none with Perm.write = true })
        then raise (Fault_stop `Perm_denied);
        let sub_end = min vpn1 (Addr.page_number (e - 1)) in
        touch_covered_batched t ~rperm:vma.Vma.perm ~vpn0:!vpn ~vpn1:sub_end
          ~count;
        vpn := sub_end + 1
    done;
    Ok !count
  with Fault_stop err -> Error err

let touch_range t ~addr ~len =
  if len <= 0 then Ok 0
  else if t.batched && not (pager_active t) then begin
    (* the per-page walk hits [fault]'s liveness check on page one.
       With demand paging live the per-page reference walk is used even
       in batched mode: readahead grouping makes the charge sequence
       state-dependent, and the per-page walk IS that sequence — the
       batched leaf pass would have to replay it page by page anyway
       (total charges and event counts are identical either way, since
       every cost parameter is an integer-valued float). *)
    alive t "Addr_space.fault";
    touch_range_batched t ~addr ~len
  end
  else begin
    let vpn0 = Addr.page_number addr in
    let vpn1 = Addr.page_number (addr + len - 1) in
    let rec go vpn n =
      if vpn > vpn1 then Ok n
      else
        match touch t (Addr.addr_of_page vpn) with
        | Ok () -> go (vpn + 1) (n + 1)
        | Error e -> Error e
    in
    go vpn0 0
  end

let write_byte t addr v =
  match fault t ~addr ~write:true with
  | Error e -> Error e
  | Ok () ->
    let pte = Page_table.lookup t.pt ~vpn:(Addr.page_number addr) in
    Frame.write_byte t.frames (Pte.frame pte) ~off:(Addr.page_offset addr) v;
    Ok ()

let read_byte t addr =
  match fault t ~addr ~write:false with
  | Error e -> Error e
  | Ok () ->
    let pte = Page_table.lookup t.pt ~vpn:(Addr.page_number addr) in
    Ok (Frame.read_byte t.frames (Pte.frame pte) ~off:(Addr.page_offset addr))

let map_image_page t ~addr ~perm ?data ~kind () =
  alive t "Addr_space.map_image_page";
  if not (Addr.is_page_aligned addr) then Error `Invalid
  else begin
    match mmap ~addr ~len:Addr.page_size ~perm ~kind t with
    | Error (`No_space | `Invalid) -> Error `Invalid
    | Error (`Overlap | `Commit_limit) as e -> e
    | Ok _ -> (
      match Frame.alloc t.frames with
      | Error `Out_of_memory -> Error `Out_of_memory
      | Ok frame ->
        Cost.charge t.cost "exec:load-page" (params t).Cost.exec_per_page;
        (match data with
        | Some s -> Frame.blit_string t.frames frame ~off:0 s
        | None -> ());
        Page_table.map t.pt ~vpn:(Addr.page_number addr)
          (Pte.make ~frame ~perm ());
        Ok ())
  end

let clone_common t ~pt ~committed_charge =
  {
    frames = t.frames;
    cost = t.cost;
    tlb = t.tlb;
    regions = t.regions;
    pt;
    mmap_base = t.mmap_base;
    heap = t.heap;
    committed = committed_charge;
    dead = false;
    batched = t.batched;
    blame = t.blame;
    (* the kernel stamps the clone's sharing origin explicitly after the
       creating syscall succeeds; until then nothing is attributed *)
    blame_origin = -1;
    (* COW entanglement with the source: same family *)
    family = t.family;
    (* no CPU caches the clone's translations until it is scheduled *)
    cpumask = Cpuset.empty;
    pager = t.pager;
    (* a forked lazy-zygote child keeps faulting against the template *)
    backing = t.backing;
    backing_holes = t.backing_holes;
  }

(* After a COW page-table copy, pages of *shared* VMAs must not be COW:
   both processes should keep writing the same frame. *)
let fixup_shared t child_pt =
  Region_map.iter
    (fun s e vma ->
      if vma.Vma.shared then begin
        let vpn0 = Addr.page_number s and vpn1 = Addr.page_number (e - 1) in
        for vpn = vpn0 to vpn1 do
          let restore pt =
            ignore
              (Page_table.update pt ~vpn (fun pte ->
                   if Pte.cow pte then
                     Pte.with_cow (Pte.with_perm pte vma.Vma.perm) false
                   else pte))
          in
          restore t.pt;
          restore child_pt
        done
      end)
    t.regions

(* Page ranges of shared VMAs, ascending and disjoint, with the region
   permission their PTEs must keep across a fork. *)
let shared_ranges t =
  List.filter_map
    (fun (s, e, vma) ->
      if vma.Vma.shared then
        Some (Addr.page_number s, Addr.page_number (e - 1), vma.Vma.perm)
      else None)
    (Region_map.to_list t.regions)

let clone_cow t =
  alive t "Addr_space.clone_cow";
  let p = params t in
  (* the child re-charges the parent's private commit: this is the
     accounting pressure that makes strict-commit systems reject big
     forks even though COW would copy almost nothing *)
  match Frame.commit t.frames t.committed with
  | Error `Commit_limit -> Error `Commit_limit
  | Ok () ->
    Cost.charge ~n:(Region_map.cardinal t.regions) t.cost "fork:vma"
      (p.Cost.vma_clone *. float_of_int (Region_map.cardinal t.regions));
    let child_pt =
      if t.batched then
        (* lazy subtree sharing; the shared-VMA fixup is fused into the
           clone's single leaf pass *)
        Page_table.clone_cow_shared t.pt ~frames:t.frames ~cost:t.cost
          ~shared:(shared_ranges t)
      else begin
        let pt = Page_table.clone_cow t.pt ~frames:t.frames ~cost:t.cost in
        fixup_shared t pt;
        pt
      end
    in
    as_shootdown t;
    Ok (clone_common t ~pt:child_pt ~committed_charge:t.committed)

let clone_eager t =
  alive t "Addr_space.clone_eager";
  let p = params t in
  match Frame.commit t.frames t.committed with
  | Error `Commit_limit -> Error `Commit_limit
  | Ok () ->
    Cost.charge ~n:(Region_map.cardinal t.regions) t.cost "fork:vma"
      (p.Cost.vma_clone *. float_of_int (Region_map.cardinal t.regions));
    let child_pt = Page_table.create () in
    let result =
      Page_table.fold_present t.pt ~init:(Ok ()) ~f:(fun acc ~vpn pte ->
          match acc with
          | Error _ as e -> e
          | Ok () -> (
            let vma =
              Region_map.find_containing (Addr.addr_of_page vpn) t.regions
            in
            let perm =
              match vma with
              | Some (_, _, v) -> v.Vma.perm
              | None -> Pte.perm pte
            in
            let shared =
              match vma with Some (_, _, v) -> v.Vma.shared | None -> false
            in
            if shared then begin
              Frame.incref t.frames (Pte.frame pte);
              Page_table.map child_pt ~vpn
                (Pte.make ~frame:(Pte.frame pte) ~perm ());
              Ok ()
            end
            else
              match Frame.alloc t.frames with
              | Error `Out_of_memory -> Error `Out_of_memory
              | Ok fresh ->
                Cost.charge t.cost "fork:eager-copy" p.Cost.frame_copy;
                Frame.copy_contents t.frames ~src:(Pte.frame pte) ~dst:fresh;
                Page_table.map child_pt ~vpn (Pte.make ~frame:fresh ~perm ());
                Ok ()))
    in
    (match result with
    | Error `Out_of_memory ->
      ignore (Page_table.clear child_pt ~frames:t.frames);
      Frame.uncommit t.frames t.committed;
      Error `Out_of_memory
    | Ok () -> Ok (clone_common t ~pt:child_pt ~committed_charge:t.committed))

(* Template (zygote) support.

   [seal] turns a warmed address space into an immutable template image:
   one fork-shaped pass (charged at exactly the fork categories — the
   freeze is an honest O(footprint) one-time cost) that downgrades
   writable pages to read-only COW and pins every resident frame
   immortal, so per-child spawns never touch those refcounts. The
   source keeps running; its later writes COW away from the pinned
   frames. The returned space is the template's handle: it carries the
   sealed table, the region map and heap marker children inherit, and a
   zero commit charge (each child re-charges its own commit; the
   template object owns frames, not commit). *)
let seal t =
  alive t "Addr_space.seal";
  if pager_active t then
    invalid_arg "Addr_space.seal: unresolved pager-backed pages";
  let p = params t in
  Cost.charge ~n:(Region_map.cardinal t.regions) t.cost "fork:vma"
    (p.Cost.vma_clone *. float_of_int (Region_map.cardinal t.regions));
  let tpl_pt =
    Page_table.seal_cow t.pt ~frames:t.frames ~cost:t.cost
      ~shared:(shared_ranges t)
  in
  as_shootdown t;
  clone_common t ~pt:tpl_pt ~committed_charge:0

(* Spawn a child space from a sealed template in O(shared subtrees).
   The commit charge is the only fallible step and runs first, so a
   failed spawn leaves the template (and the machine) untouched —
   the transactional invariant the fault-injection tests check. *)
let clone_from_sealed ?(lazy_ = false) tpl ~commit_pages =
  alive tpl "Addr_space.clone_from_sealed";
  if lazy_ && tpl.pager = None then
    invalid_arg "Addr_space.clone_from_sealed: lazy spawn but no pager";
  let p = params tpl in
  match Frame.commit tpl.frames commit_pages with
  | Error `Commit_limit -> Error `Commit_limit
  | Ok () ->
    Cost.charge ~n:(Region_map.cardinal tpl.regions) tpl.cost "fork:vma"
      (p.Cost.vma_clone *. float_of_int (Region_map.cardinal tpl.regions));
    if lazy_ then begin
      (* demand spawn: the child starts from an EMPTY table (one root
         node, charged as a single subtree) and records the sealed
         table as its fault-time backing — O(1) in the template's
         footprint; each page is fetched privately on first touch *)
      let child = clone_common tpl ~pt:(Page_table.create ()) ~committed_charge:commit_pages in
      Cost.charge tpl.cost "zygote:subtree" p.Cost.pt_node_copy;
      child.backing <- Some tpl.pt;
      child.backing_holes <- [];
      Ok (child, 0)
    end
    else begin
      let pt, subtrees = Page_table.clone_sealed tpl.pt ~cost:tpl.cost in
      Ok (clone_common tpl ~pt ~committed_charge:commit_pages, subtrees)
    end

(* True when every resident frame has refcount exactly 1 — no COW
   sharer, no template pin. Freezing demands this: a sole-owner source
   is the only holder of its frames, so pinning them transfers clean
   ownership to the template and discard can account for every page. *)
let sole_owner t =
  alive t "Addr_space.sole_owner";
  match
    Page_table.fold_present t.pt ~init:() ~f:(fun () ~vpn:_ pte ->
        if Frame.refcount t.frames (Pte.frame pte) <> 1 then raise Exit)
  with
  | () -> true
  | exception Exit -> false

(* Tear down a template handle: un-pin every resident frame back to a
   single counted reference, then drop the table, freeing them. Only
   legal once nothing alive depends on the template (the kernel's
   live-dependant count gates this with EBUSY). *)
let destroy_sealed t =
  if not t.dead then begin
    Cost.charge t.cost "proc:destroy" (params t).Cost.proc_destroy;
    Page_table.fold_present t.pt ~init:() ~f:(fun () ~vpn:_ pte ->
        Frame.unpin t.frames (Pte.frame pte));
    ignore (Page_table.clear t.pt ~frames:t.frames);
    Frame.uncommit t.frames t.committed;
    t.committed <- 0;
    t.regions <- Region_map.empty;
    t.heap <- None;
    t.dead <- true
  end

let destroy t =
  if not t.dead then begin
    Cost.charge t.cost "proc:destroy" (params t).Cost.proc_destroy;
    ignore (Page_table.clear t.pt ~frames:t.frames);
    Frame.uncommit t.frames t.committed;
    t.committed <- 0;
    t.regions <- Region_map.empty;
    t.heap <- None;
    t.dead <- true
  end

let fold_resident t ~init ~f =
  Page_table.fold_present t.pt ~init ~f:(fun acc ~vpn pte -> f acc ~vpn ~pte)

let fold_lazy t ~init ~f =
  Page_table.fold_lazy t.pt ~init ~f:(fun acc ~vpn pte -> f acc ~vpn ~pte)

let resident_pages t = Page_table.present_count t.pt
let committed_pages t = t.committed
let vma_count t = Region_map.cardinal t.regions
let regions t = Region_map.to_list t.regions
let pt_nodes t = Page_table.node_count t.pt

let pp_layout ppf t =
  Region_map.iter
    (fun s e vma ->
      Format.fprintf ppf "%a-%a %a@\n" Addr.pp s Addr.pp e Vma.pp vma)
    t.regions
