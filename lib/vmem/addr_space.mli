(** Simulated process address spaces: VMAs + page table + demand paging
    + copy-on-write.

    This module is where the paper's performance argument lives:
    {!clone_cow} (fork) walks the whole page table and its cost grows
    with the parent's resident set, while a spawned process starts from
    {!create} with an empty table at constant cost. All operations charge
    the shared {!Cost.t} meter. *)

type fault_error = [ `Segfault | `Perm_denied | `Out_of_memory ]

type t

val create :
  ?mmap_base:int ->
  ?batched:bool ->
  ?blame:Blame.t ->
  frames:Frame.t ->
  cost:Cost.t ->
  tlb:Tlb.t ->
  unit ->
  t
(** A fresh, empty address space. [mmap_base] is where unhinted mmaps are
    placed (the ASLR knob; default [0x7000_0000_0000]). [batched]
    (default true) selects the O(range) fast paths — leaf-level batch
    operations and lazily shared page-table subtrees on fork; [false]
    keeps the original per-page walks, which charge the identical
    modelled cost and serve as the test oracle for the batched paths.
    [blame] attaches a cost-attribution ledger: COW-break charges are
    then deferred-attributed to the space's current sharing origin (see
    {!set_blame_origin}). Clones inherit both.
    @raise Invalid_argument if [mmap_base] is not page-aligned or out of
    range. *)

val frames : t -> Frame.t
val cost : t -> Cost.t
val mmap_base : t -> int

val family : t -> int
(** Clone-lineage id: spaces whose frames may be COW-entangled (a forked
    child and its parent, children of one template) share a family. The
    SMP kernel runs syscalls concurrently only across distinct families,
    so refcount races between entangled spaces cannot arise. Fresh
    spaces from {!create} get a new family; clones inherit. *)

val cpumask : t -> Cpuset.t
(** Which simulated CPUs may currently cache translations of this space.
    Maintained by the SMP scheduler via {!note_cpu}; consulted by the
    tracked-shootdown paths so fork/munmap/mprotect IPI only the CPUs
    that actually hold stale entries. Empty until first scheduled. *)

val note_cpu : t -> cpu:int -> unit
(** The scheduler's half of the mask contract: called for the running
    CPU on every scheduling step of a thread of this space (not just on
    context switch — a full shootdown collapses the mask to the sender,
    and still-running remote CPUs must be re-observed immediately). *)

type meters = { m_cost : Cost.t; m_tlb : Tlb.t; m_blame : Blame.t option }
(** The accounting sinks an address space charges into. Mutable only to
    support the SMP kernel's record-and-replay parallel phase: each
    concurrent task swaps in a scratch meter set, records the charges it
    generates, and the kernel replays them into the real meters
    sequentially in CPU order — so parallel execution never changes any
    simulated number. *)

val meters : t -> meters
val set_meters : t -> meters -> unit

type pager = {
  fetch : Cost.t -> cookie:int -> frame:Frame.frame -> unit;
      (** resolve a lazy PTE: charge the fetch and fill [frame] from
          whatever source the cookie names (the cookie encoding is the
          installer's — typically [Ksim.Pager]'s — private convention) *)
  fetch_backing : Cost.t -> src:Frame.frame -> dst:Frame.frame -> unit;
      (** pull one template page for a lazy-zygote child: charge the
          fetch and copy [src] (a pinned template frame) into [dst] *)
  deny : unit -> bool;
      (** fault-injection hook, consulted once per pulled page
          (readahead included); [true] fails that fetch like OOM *)
  readahead : int;
      (** extra consecutive pager-backed pages pulled per request *)
}
(** A simulated user-mode pager (see the module comment of
    {!Ksim.Pager}). The cost meter is passed to each closure at call
    time because the SMP kernel swaps scratch meters in during its
    record-and-replay phase while the closures live as long as the
    space. *)

val set_pager : t -> pager option -> unit
(** Install (or remove) the pager consulted on first-touch faults of
    pager-backed pages. Must be installed before {!map_lazy} or a lazy
    {!clone_from_sealed}; with no pager and no lazy pages every fault
    path is bit-identical to the eager simulator. *)

val pager_installed : t -> bool

val pager_active : t -> bool
(** A pager is installed {e and} this space has pager-backed pages
    (lazy PTEs or a template backing table) — i.e. faults may reach the
    pager. The SMP kernel excludes such spaces' touches from its
    parallel phase. *)

val lazy_pages : t -> int
(** Number of lazy (mapped-but-unbacked) PTEs. *)

val has_backing : t -> bool
(** True for lazy-zygote children still backed by their template. *)

val set_blame_origin : t -> int -> unit
(** Stamp the {!Blame} event id that most recently made this space's
    pages COW-shared (fork stamps both sides; freeze stamps the source;
    a zygote spawn stamps the child). Later COW breaks in this space are
    deferred-charged to that event — "most recent sharing event wins",
    which is sound because every sharing operation re-downgrades all
    resident private pages. *)

val blame_origin : t -> int option

val mmap :
  ?addr:int ->
  ?shared:bool ->
  len:int ->
  perm:Perm.t ->
  kind:Vma.kind ->
  t ->
  (int, [> `No_space | `Overlap | `Commit_limit | `Invalid ]) result
(** Map [len] bytes (rounded up to pages). Without [addr] the lowest gap
    at or above [mmap_base] is used; with [addr] the exact (page-aligned)
    address is required. Private mappings charge commit. Returns the
    start address. Pages are demand-faulted, not populated. *)

val map_lazy :
  ?addr:int ->
  len:int ->
  perm:Perm.t ->
  kind:Vma.kind ->
  cookie0:int ->
  stride:int ->
  t ->
  (int, [> `No_space | `Overlap | `Commit_limit | `Invalid ]) result
(** Like {!mmap} (private mapping, commit charged as usual) but the
    pages are installed as {e lazy} PTEs — no frame allocated, no byte
    copied, O(ranges) — each carrying the pager cookie
    [cookie0 + k*stride] ([stride] 1 for consecutive image pages, 0 to
    repeat a constant cookie such as demand-zero). First touch is a
    major fault served by the installed pager.
    @raise Invalid_argument when no pager is installed. *)

val munmap : t -> addr:int -> len:int -> (unit, [> `Invalid ]) result
(** Unmap every whole page of [[addr, addr+len)]; mapped sub-ranges are
    released (frames decref'd, commit uncharged), holes are ignored, and
    straddling VMAs are split — POSIX semantics. Flushes remote TLBs. *)

val protect :
  t -> addr:int -> len:int -> perm:Perm.t -> (unit, [> `Invalid | `No_region ]) result
(** mprotect: change region and PTE permissions for a range that must be
    fully covered by existing VMAs. COW pages never regain write
    permission directly (the next write faults and copies). *)

val set_heap_base : t -> int -> unit
(** Install the heap start (done once by the program loader).
    @raise Invalid_argument if not page-aligned or already set. *)

val reset_heap_base : t -> unit
(** Rollback hook for failed image loads: forget the heap base again.
    No-op when none is set. @raise Invalid_argument if the heap has
    grown past its base (real state cannot be rolled back this way). *)

val brk : t -> int
(** Current program break; equals the heap base before any growth.
    @raise Invalid_argument if no heap base was set. *)

val set_brk : t -> int -> (unit, [> `Invalid | `Commit_limit | `Overlap ]) result
(** Grow or shrink the heap to end at the given (page-aligned) break. *)

val fault : t -> addr:int -> write:bool -> (unit, fault_error) result
(** Simulate a memory access: demand-zero fill, COW break, or failure.
    Charges fault costs. *)

val touch : t -> int -> (unit, fault_error) result
(** A write access to one address ([fault ~write:true]). *)

val touch_range : t -> addr:int -> len:int -> (int, fault_error) result
(** Write-touch every page of the range; returns the number of pages
    touched. Stops at the first fault error. *)

val read_byte : t -> int -> (int, fault_error) result
val write_byte : t -> int -> int -> (unit, fault_error) result

val map_image_page :
  t -> addr:int -> perm:Perm.t -> ?data:string -> kind:Vma.kind ->
  unit -> (unit, [> `Out_of_memory | `Commit_limit | `Overlap | `Invalid ]) result
(** Loader path: map one populated page at [addr] (creating a one-page
    VMA), optionally initialised with [data] (at most a page). *)

val clone_cow : t -> (t, [> `Commit_limit | `Out_of_memory ]) result
(** Fork the address space: share the VMA list, copy the page table with
    COW downgrades (charging per node and per PTE), re-charge the
    parent's commit, shoot down the parent's TLB. The child inherits
    [mmap_base] — the layout-inheritance property that weakens ASLR. *)

val clone_eager : t -> (t, [> `Commit_limit | `Out_of_memory ]) result
(** Eager copy (no COW): every resident page is copied immediately. The
    ablation baseline for E9. *)

val seal : t -> t
(** Freeze the address space into an immutable template image: one
    fork-shaped pass (charged at the fork categories — freezing is an
    honest O(footprint) one-time cost) downgrades writable pages to
    read-only COW, pins every resident frame into the immortal refcount
    class, and flushes the source TLB. The source space stays live (its
    later writes COW away from the pinned frames); the returned handle
    carries the sealed table, the inherited region map and heap marker,
    and a zero commit charge. *)

val clone_from_sealed :
  ?lazy_:bool -> t -> commit_pages:int -> (t * int, [> `Commit_limit ]) result
(** Spawn a child space from a sealed template in O(shared subtrees):
    charge [commit_pages] of commit (the only fallible step, performed
    first so failure leaves the template untouched), then share the
    sealed table by bumping its root — one ["zygote:subtree"] charge per
    occupied root slot, independent of footprint. Returns the child and
    the number of subtrees shared.

    With [~lazy_:true] (demand spawn) the child instead starts from an
    empty table (one ["zygote:subtree"] charge, subtree count 0) and
    records the sealed table as its fault-time {e backing}: each page
    is pulled privately by the pager on first touch, so spawn cost is
    independent even of the template's root fan-out and untouched pages
    are never instantiated. @raise Invalid_argument when [~lazy_:true]
    and no pager is installed. *)

val sole_owner : t -> bool
(** True when every resident frame has refcount exactly 1 — the freeze
    precondition: no COW sharer or template pin may already hold the
    frames this space is about to seal. *)

val destroy_sealed : t -> unit
(** Tear down a template handle: un-pin every resident frame and free
    it. Only legal once nothing alive depends on the template (the
    kernel gates this with EBUSY). Idempotent. *)

val destroy : t -> unit
(** Release every frame and commit charge. Idempotent; using a destroyed
    address space raises [Invalid_argument]. *)

val fold_resident :
  t -> init:'a -> f:('a -> vpn:int -> pte:Pte.t -> 'a) -> 'a
(** Ascending fold over the present PTEs — introspection for tests
    (the batched-vs-reference oracle compares exact table contents)
    and debugging. *)

val fold_lazy : t -> init:'a -> f:('a -> vpn:int -> pte:Pte.t -> 'a) -> 'a
(** Ascending fold over the lazy PTEs (same oracle role). *)

val resident_pages : t -> int
val committed_pages : t -> int
val vma_count : t -> int
val regions : t -> (int * int * Vma.t) list
val pt_nodes : t -> int

val pp_layout : Format.formatter -> t -> unit
(** /proc/pid/maps-style dump, for examples and debugging. *)
