(* A set of simulated CPU ids, 0..63, as an Int64 bitmask.

   OCaml's native [int] is 63-bit on 64-bit platforms, which is exactly
   one bit short of the 64-CPU ceiling the SMP model advertises, so the
   mask lives in an [Int64]. Values are immutable; the address-space CPU
   mask that uses this is a mutable field holding one. *)

type t = int64

let max_cpus = 64

let check cpu =
  if cpu < 0 || cpu >= max_cpus then
    invalid_arg (Printf.sprintf "Cpuset: cpu %d out of range 0..%d" cpu (max_cpus - 1))

let empty = 0L
let is_empty t = Int64.equal t 0L
let bit cpu = Int64.shift_left 1L cpu

let singleton cpu =
  check cpu;
  bit cpu

let add cpu t =
  check cpu;
  Int64.logor t (bit cpu)

let remove cpu t =
  check cpu;
  Int64.logand t (Int64.lognot (bit cpu))

let mem cpu t =
  check cpu;
  not (Int64.equal (Int64.logand t (bit cpu)) 0L)

let union = Int64.logor
let inter = Int64.logand
let diff a b = Int64.logand a (Int64.lognot b)
let equal = Int64.equal

let count t =
  (* popcount, 16 bits at a time: cheap and branch-free enough for a
     64-entry mask consulted on every shootdown. *)
  let rec go acc v =
    if Int64.equal v 0L then acc
    else go (acc + (Int64.to_int (Int64.logand v 1L))) (Int64.shift_right_logical v 1)
  in
  go 0 t

let fold f t init =
  let acc = ref init in
  for cpu = 0 to max_cpus - 1 do
    if not (Int64.equal (Int64.logand t (bit cpu)) 0L) then acc := f cpu !acc
  done;
  !acc

let iter f t = fold (fun cpu () -> f cpu) t ()
let to_list t = List.rev (fold (fun cpu acc -> cpu :: acc) t [])

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list t)))
