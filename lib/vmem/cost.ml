type params = {
  syscall_base : float;
  proc_create : float;
  proc_destroy : float;
  vma_clone : float;
  pt_node_copy : float;
  pte_copy : float;
  fault_base : float;
  frame_zero : float;
  frame_copy : float;
  tlb_flush : float;
  tlb_shootdown : float;
  tlb_invlpg : float;
  exec_base : float;
  exec_per_page : float;
  fd_clone : float;
  sched_switch : float;
  pager_request : float;
  pager_fetch_zero : float;
  pager_fetch_image : float;
  pager_fetch_template : float;
}

(* Order-of-magnitude constants for a ~3 GHz server; see the module
   interface for why only their relative magnitudes matter. *)
let default =
  {
    syscall_base = 1_500.0;
    proc_create = 30_000.0;
    proc_destroy = 20_000.0;
    vma_clone = 600.0;
    pt_node_copy = 1_200.0;
    pte_copy = 30.0;
    fault_base = 2_500.0;
    frame_zero = 1_000.0;
    frame_copy = 1_600.0;
    tlb_flush = 800.0;
    tlb_shootdown = 4_000.0;
    tlb_invlpg = 200.0;
    exec_base = 900_000.0;
    exec_per_page = 450.0;
    fd_clone = 120.0;
    sched_switch = 3_000.0;
    pager_request = 3_000.0;
    pager_fetch_zero = 1_000.0;
    pager_fetch_image = 2_400.0;
    pager_fetch_template = 1_600.0;
  }

let ghz = 3.0
let cycles_to_ns c = c /. ghz

type entry = { mutable cycles : float; mutable events : int }

type t = {
  params : params;
  mutable total : float;
  by_cat : (string, entry) Hashtbl.t;
  mutable observer : (string -> n:int -> float -> unit) option;
}

let create ?(params = default) () =
  { params; total = 0.0; by_cat = Hashtbl.create 16; observer = None }

let params t = t.params
let set_observer t obs = t.observer <- obs

let charge ?(n = 1) t category cycles =
  if cycles < 0.0 then invalid_arg "Cost.charge: negative charge";
  if n < 0 then invalid_arg "Cost.charge: negative event count";
  t.total <- t.total +. cycles;
  (match Hashtbl.find_opt t.by_cat category with
  | Some e ->
    e.cycles <- e.cycles +. cycles;
    e.events <- e.events + n
  | None -> Hashtbl.add t.by_cat category { cycles; events = n });
  match t.observer with None -> () | Some f -> f category ~n cycles

let tally t category = charge t category 0.0

let total t = t.total

let by_category t =
  Hashtbl.fold (fun k e acc -> (k, e.cycles) :: acc) t.by_cat []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let by_category_counts t =
  Hashtbl.fold (fun k e acc -> (k, (e.cycles, e.events)) :: acc) t.by_cat []
  |> List.sort (fun (_, (a, _)) (_, (b, _)) -> Float.compare b a)

let get t category =
  match Hashtbl.find_opt t.by_cat category with
  | Some e -> e.cycles
  | None -> 0.0

let count t category =
  match Hashtbl.find_opt t.by_cat category with
  | Some e -> e.events
  | None -> 0

let reset t =
  t.total <- 0.0;
  Hashtbl.reset t.by_cat

let delta t f =
  let before = t.total in
  let result = f () in
  (result, t.total -. before)

let pp_breakdown ppf t =
  Format.fprintf ppf "total %s@\n" (Metrics.Units.cycles t.total);
  List.iter
    (fun (cat, (c, n)) ->
      Format.fprintf ppf "  %-20s %10s  (%d events)@\n" cat
        (Metrics.Units.cycles c) n)
    (by_category_counts t)
