(* Nodes are reference-counted so {!clone_cow_shared} can hand the whole
   radix tree to a forked child without copying it: both tables point at
   the same nodes until one of them writes, at which point the writer
   privatises the path to the touched leaf (path copying). The modelled
   cost of the copy is still charged eagerly at clone time — sharing is
   a harness optimisation, never a semantic one. *)
type node =
  | Leaf of { mutable refs : int; entries : int array }  (** packed PTEs *)
  | Inner of { mutable refs : int; children : node option array }

type t = {
  mutable root : node;
  mutable present : int;
  mutable lazy_ : int;  (** mapped-but-unbacked (demand-paged) entries *)
  mutable nodes : int;
}

let new_leaf () =
  Leaf { refs = 1; entries = Array.make Addr.entries_per_table Pte.absent }

let new_inner () =
  Inner { refs = 1; children = Array.make Addr.entries_per_table None }

let create () = { root = new_inner (); present = 0; lazy_ = 0; nodes = 1 }

let check_vpn vpn =
  if vpn < 0 || vpn >= Addr.max_va lsr Addr.page_shift then
    invalid_arg "Page_table: vpn out of range"

let bump = function
  | Leaf l -> l.refs <- l.refs + 1
  | Inner i -> i.refs <- i.refs + 1

(* One more owner is about to write through [node]: give the caller a
   copy it owns exclusively (children keep their identity and gain a
   reference from the copy). Nodes already exclusively owned are
   returned as-is. *)
let privatize = function
  | Leaf l when l.refs > 1 ->
    l.refs <- l.refs - 1;
    Leaf { refs = 1; entries = Array.copy l.entries }
  | Inner i when i.refs > 1 ->
    i.refs <- i.refs - 1;
    let children = Array.copy i.children in
    Array.iter (function None -> () | Some c -> bump c) children;
    Inner { refs = 1; children }
  | n -> n

(* Read-only walk from the root (level = levels-1) down to the leaf. *)
let rec walk_ro node level vpn =
  match node with
  | Leaf l -> Some l.entries
  | Inner i -> (
    match i.children.(Addr.table_index ~level vpn) with
    | None -> None
    | Some child -> walk_ro child (level - 1) vpn)

(* Walk for writing: privatise every node on the path so mutating the
   returned leaf array cannot be observed through another table, and
   optionally create missing nodes ([t.nodes] counts this table's
   logical pages, so creation bumps it exactly like the eager walk). *)
let leaf_for_write t vpn ~create_missing =
  let root = privatize t.root in
  t.root <- root;
  let rec go node level =
    match node with
    | Leaf l -> Some l.entries
    | Inner i -> (
      let idx = Addr.table_index ~level vpn in
      match i.children.(idx) with
      | Some child ->
        let child' = privatize child in
        if child' != child then i.children.(idx) <- Some child';
        go child' (level - 1)
      | None ->
        if not create_missing then None
        else begin
          let child = if level = 1 then new_leaf () else new_inner () in
          i.children.(idx) <- Some child;
          t.nodes <- t.nodes + 1;
          go child (level - 1)
        end)
  in
  go root (Addr.levels - 1)

let map t ~vpn pte =
  check_vpn vpn;
  if not (Pte.present pte) then invalid_arg "Page_table.map: absent pte";
  match leaf_for_write t vpn ~create_missing:true with
  | None -> assert false
  | Some entries ->
    let idx = Addr.table_index ~level:0 vpn in
    let old = entries.(idx) in
    if not (Pte.present old) then t.present <- t.present + 1;
    if Pte.lazy_ old then t.lazy_ <- t.lazy_ - 1;
    entries.(idx) <- pte

let unmap t ~vpn =
  check_vpn vpn;
  match leaf_for_write t vpn ~create_missing:false with
  | None -> Pte.absent
  | Some entries ->
    let idx = Addr.table_index ~level:0 vpn in
    let old = entries.(idx) in
    if Pte.present old then begin
      entries.(idx) <- Pte.absent;
      t.present <- t.present - 1
    end
    else if Pte.lazy_ old then begin
      entries.(idx) <- Pte.absent;
      t.lazy_ <- t.lazy_ - 1
    end;
    old

let lookup t ~vpn =
  check_vpn vpn;
  match walk_ro t.root (Addr.levels - 1) vpn with
  | None -> Pte.absent
  | Some entries -> entries.(Addr.table_index ~level:0 vpn)

let update t ~vpn f =
  check_vpn vpn;
  match walk_ro t.root (Addr.levels - 1) vpn with
  | None -> false
  | Some entries ->
    let idx = Addr.table_index ~level:0 vpn in
    let old = entries.(idx) in
    if not (Pte.present old) then false
    else begin
      let updated = f old in
      if not (Pte.present updated) then
        invalid_arg "Page_table.update: function returned absent pte";
      if updated <> old then begin
        match leaf_for_write t vpn ~create_missing:false with
        | None -> assert false
        | Some entries -> entries.(idx) <- updated
      end;
      true
    end

let present_count t = t.present
let lazy_count t = t.lazy_
let node_count t = t.nodes
let note_mapped t n = t.present <- t.present + n
let note_lazy t n = t.lazy_ <- t.lazy_ + n

let fold_present t ~init ~f =
  (* vpn is reconstructed incrementally: at each level the child index
     contributes 9 more bits. *)
  let rec go node level vpn_prefix acc =
    match node with
    | Leaf l ->
      let acc = ref acc in
      for i = 0 to Addr.entries_per_table - 1 do
        if Pte.present l.entries.(i) then
          acc := f !acc ~vpn:((vpn_prefix lsl Addr.index_bits) lor i)
              l.entries.(i)
      done;
      !acc
    | Inner inner ->
      let acc = ref acc in
      for i = 0 to Addr.entries_per_table - 1 do
        match inner.children.(i) with
        | None -> ()
        | Some child ->
          acc :=
            go child (level - 1) ((vpn_prefix lsl Addr.index_bits) lor i) !acc
      done;
      !acc
  in
  go t.root (Addr.levels - 1) 0 init

let fold_lazy t ~init ~f =
  let rec go node level vpn_prefix acc =
    match node with
    | Leaf l ->
      let acc = ref acc in
      for i = 0 to Addr.entries_per_table - 1 do
        if Pte.lazy_ l.entries.(i) then
          acc := f !acc ~vpn:((vpn_prefix lsl Addr.index_bits) lor i)
              l.entries.(i)
      done;
      !acc
    | Inner inner ->
      let acc = ref acc in
      for i = 0 to Addr.entries_per_table - 1 do
        match inner.children.(i) with
        | None -> ()
        | Some child ->
          acc :=
            go child (level - 1) ((vpn_prefix lsl Addr.index_bits) lor i) !acc
      done;
      !acc
  in
  go t.root (Addr.levels - 1) 0 init

(* Leaf-granular cursor over [vpn0, vpn1]: one callback per leaf
   position, in ascending vpn order. O(leaves * levels), never
   O(pages). *)
let fold_leaves t ~vpn0 ~vpn1 ~init ~missing ~leaf =
  if vpn1 < vpn0 then init
  else begin
  check_vpn vpn0;
  check_vpn vpn1;
  let acc = ref init in
  let li = ref (vpn0 lsr Addr.index_bits) in
  let last = vpn1 lsr Addr.index_bits in
  while !li <= last do
    let base = !li lsl Addr.index_bits in
    let lo = if base < vpn0 then vpn0 - base else 0 in
    let hi =
      if base + Addr.entries_per_table - 1 > vpn1 then vpn1 - base
      else Addr.entries_per_table - 1
    in
    (match walk_ro t.root (Addr.levels - 1) base with
    | Some entries ->
      let writable () =
        match leaf_for_write t base ~create_missing:false with
        | Some e -> e
        | None -> assert false
      in
      acc := leaf !acc ~base ~entries ~lo ~hi ~writable
    | None ->
      let materialize () =
        match leaf_for_write t base ~create_missing:true with
        | Some e -> e
        | None -> assert false
      in
      acc := missing !acc ~vpn:(base + lo) ~span:(hi - lo + 1) ~materialize);
    incr li
  done;
  !acc
  end

let map_range t ~vpn ptes =
  let n = Array.length ptes in
  if n > 0 then begin
    check_vpn vpn;
    check_vpn (vpn + n - 1);
    Array.iter
      (fun pte ->
        if not (Pte.present pte) then
          invalid_arg "Page_table.map_range: absent pte")
      ptes;
    ignore
      (fold_leaves t ~vpn0:vpn ~vpn1:(vpn + n - 1) ~init:()
         ~missing:(fun () ~vpn:v ~span ~materialize ->
           let entries = materialize () in
           let i0 = v land (Addr.entries_per_table - 1) in
           Array.blit ptes (v - vpn) entries i0 span;
           t.present <- t.present + span)
         ~leaf:(fun () ~base ~entries:_ ~lo ~hi ~writable ->
           let entries = writable () in
           for i = lo to hi do
             let old = entries.(i) in
             if not (Pte.present old) then t.present <- t.present + 1;
             if Pte.lazy_ old then t.lazy_ <- t.lazy_ - 1;
             entries.(i) <- ptes.(base + i - vpn)
           done))
  end

(* Install a run of lazy (demand-paged) entries over an absent range,
   locating each leaf once: page k of the run carries cookie
   [cookie0 + k*stride] (stride 1 indexes consecutive image pages,
   stride 0 repeats a constant source cookie). No frame is allocated
   and no byte copied — this is the O(ranges) map the lazy exec/spawn
   paths buy. The range must be wholly absent (the loader maps into
   fresh VMAs). *)
let map_lazy_range t ~vpn ~n ~cookie0 ~stride ~perm =
  if n > 0 then begin
    check_vpn vpn;
    check_vpn (vpn + n - 1);
    if cookie0 < 0 || stride < 0 then
      invalid_arg "Page_table.map_lazy_range: bad cookie run";
    let install entries ~at ~from ~span =
      let cookies =
        Array.init span (fun k -> cookie0 + ((from + k) * stride))
      in
      Pte.lazy_blit_run ~cookies ~n:span ~perm entries ~at;
      t.lazy_ <- t.lazy_ + span
    in
    ignore
      (fold_leaves t ~vpn0:vpn ~vpn1:(vpn + n - 1) ~init:()
         ~missing:(fun () ~vpn:v ~span ~materialize ->
           install (materialize ())
             ~at:(v land (Addr.entries_per_table - 1))
             ~from:(v - vpn) ~span)
         ~leaf:(fun () ~base ~entries ~lo ~hi ~writable ->
           for i = lo to hi do
             if entries.(i) <> Pte.absent then
               invalid_arg "Page_table.map_lazy_range: occupied slot"
           done;
           install (writable ()) ~at:lo ~from:(base + lo - vpn)
             ~span:(hi - lo + 1)))
  end

let protect_range t ~vpn0 ~vpn1 ~f =
  if vpn1 < vpn0 then 0
  else
    fold_leaves t ~vpn0 ~vpn1 ~init:0
      ~missing:(fun acc ~vpn:_ ~span:_ ~materialize:_ -> acc)
      ~leaf:(fun acc ~base:_ ~entries ~lo ~hi ~writable ->
        let any = ref false in
        (try
           for i = lo to hi do
             if Pte.present entries.(i) then begin
               any := true;
               raise Exit
             end
           done
         with Exit -> ());
        if not !any then acc
        else begin
          let entries = writable () in
          let n = ref 0 in
          for i = lo to hi do
            let pte = entries.(i) in
            if Pte.present pte then begin
              let updated = f pte in
              if not (Pte.present updated) then
                invalid_arg "Page_table.protect_range: absent pte";
              entries.(i) <- updated;
              incr n
            end
          done;
          acc + !n
        end)

let unmap_range t ~vpn0 ~vpn1 ~f =
  if vpn1 < vpn0 then 0
  else
    fold_leaves t ~vpn0 ~vpn1 ~init:0
      ~missing:(fun acc ~vpn:_ ~span:_ ~materialize:_ -> acc)
      ~leaf:(fun acc ~base:_ ~entries ~lo ~hi ~writable ->
        let any = ref false in
        (try
           for i = lo to hi do
             if entries.(i) <> Pte.absent then begin
               any := true;
               raise Exit
             end
           done
         with Exit -> ());
        if not !any then acc
        else begin
          let entries = writable () in
          let n = ref 0 and dropped_lazy = ref 0 in
          for i = lo to hi do
            let pte = entries.(i) in
            if Pte.present pte then begin
              f pte;
              entries.(i) <- Pte.absent;
              incr n
            end
            else if Pte.lazy_ pte then begin
              (* unbacked entry: nothing to release, just forget it *)
              entries.(i) <- Pte.absent;
              incr dropped_lazy
            end
          done;
          t.present <- t.present - !n;
          t.lazy_ <- t.lazy_ - !dropped_lazy;
          acc + !n
        end)

let clone_cow t ~frames ~cost =
  let p = Cost.params cost in
  let nodes = ref 0 in
  let present = ref 0 in
  let lazies = ref 0 in
  let rec copy node =
    incr nodes;
    Cost.charge cost "fork:pt-node" p.Cost.pt_node_copy;
    match node with
    | Leaf l ->
      let dst = Array.make Addr.entries_per_table Pte.absent in
      for i = 0 to Addr.entries_per_table - 1 do
        let pte = l.entries.(i) in
        if Pte.present pte then begin
          Cost.charge cost "fork:pte" p.Cost.pte_copy;
          incr present;
          Frame.incref frames (Pte.frame pte);
          let shared =
            if (Pte.perm pte).Perm.write then
              (* downgrade to read-only COW in both tables *)
              Pte.with_cow
                (Pte.with_perm pte
                   { (Pte.perm pte) with Perm.write = false })
                true
            else pte
          in
          l.entries.(i) <- shared;
          dst.(i) <- shared
        end
        else if Pte.lazy_ pte then begin
          (* an unbacked entry is still a PTE word the fork copies; both
             sides keep the cookie and fault their page independently *)
          Cost.charge cost "fork:pte" p.Cost.pte_copy;
          incr lazies;
          dst.(i) <- pte
        end
      done;
      Leaf { refs = 1; entries = dst }
    | Inner inner ->
      let dst = Array.make Addr.entries_per_table None in
      for i = 0 to Addr.entries_per_table - 1 do
        match inner.children.(i) with
        | None -> ()
        | Some child -> dst.(i) <- Some (copy child)
      done;
      Inner { refs = 1; children = dst }
  in
  let root = copy t.root in
  { root; present = !present; lazy_ = !lazies; nodes = !nodes }

(* The fork transform a PTE undergoes during {!clone_cow} followed by
   the shared-VMA fixup the address space applies afterwards, fused:
   pages of shared VMAs end up at the region permission with COW clear,
   private writable pages are downgraded to read-only COW. *)
let fork_transform pte ~shared_perm =
  match shared_perm with
  | Some rperm ->
    if (Pte.perm pte).Perm.write || Pte.cow pte then
      Pte.with_cow (Pte.with_perm pte rperm) false
    else pte
  | None ->
    if (Pte.perm pte).Perm.write then
      Pte.with_cow
        (Pte.with_perm pte { (Pte.perm pte) with Perm.write = false })
        true
    else pte

let clone_cow_shared t ~frames ~cost ~shared =
  let p = Cost.params cost in
  (* Charge what the eager walk would have: one pt_node_copy per table
     page (empty ones included — the eager walk copies those too) and
     one pte_copy per present entry. All cost parameters are
     integer-valued, so n summed charges and one charge of n*c are the
     same float exactly. *)
  Cost.charge ~n:t.nodes cost "fork:pt-node"
    (p.Cost.pt_node_copy *. float_of_int t.nodes);
  let ptes = t.present + t.lazy_ in
  if ptes > 0 then
    Cost.charge ~n:ptes cost "fork:pte" (p.Cost.pte_copy *. float_of_int ptes);
  (* One ascending pass over the leaves: incref every present frame and
     apply the fork transform in place. A leaf still shared with an
     earlier clone holds only PTEs the transform maps to themselves
     (writable private pages were already downgraded by that clone, and
     shared-VMA pages already sit at their region permission), so the
     in-place write is invisible through the other table. *)
  let shared_tail = ref shared in
  let scratch = Array.make Addr.entries_per_table 0 in
  let transform_leaf entries base =
    (* drop shared ranges wholly below this leaf, then test whether any
       remaining one overlaps it *)
    let rec advance () =
      match !shared_tail with
      | (_, hi, _) :: rest when hi < base ->
        shared_tail := rest;
        advance ()
      | l -> l
    in
    let overlaps_leaf =
      match advance () with
      | (lo, _, _) :: _ -> lo <= base + Addr.entries_per_table - 1
      | [] -> false
    in
    if not overlaps_leaf then begin
      (* the common private-only leaf: one batch downgrade + incref *)
      let k =
        Pte.downgrade_run entries ~lo:0 ~hi:(Addr.entries_per_table - 1)
          ~dst:scratch
      in
      if k > 0 then Frame.incref_many frames scratch k
    end
    else
      for i = 0 to Addr.entries_per_table - 1 do
        let pte = entries.(i) in
        if Pte.present pte then begin
          let vpn = base lor i in
          let rec perm_for () =
            match !shared_tail with
            | (_, hi, _) :: rest when hi < vpn ->
              shared_tail := rest;
              perm_for ()
            | (lo, _, rperm) :: _ when lo <= vpn -> Some rperm
            | _ -> None
          in
          Frame.incref frames (Pte.frame pte);
          let updated = fork_transform pte ~shared_perm:(perm_for ()) in
          if updated <> pte then entries.(i) <- updated
        end
      done
  in
  let rec go node level vpn_prefix =
    match node with
    | Leaf l -> transform_leaf l.entries (vpn_prefix lsl Addr.index_bits)
    | Inner i ->
      for idx = 0 to Addr.entries_per_table - 1 do
        match i.children.(idx) with
        | None -> ()
        | Some child ->
          go child (level - 1) ((vpn_prefix lsl Addr.index_bits) lor idx)
      done
  in
  go t.root (Addr.levels - 1) 0;
  bump t.root;
  { root = t.root; present = t.present; lazy_ = t.lazy_; nodes = t.nodes }

(* Seal pass: identical shape (and identical cost charges) to
   {!clone_cow_shared}, but the frames move into the immortal refcount
   class instead of gaining a reference — a sealed template's pages are
   owned by the template object, not counted per-child. The returned
   table is the template's immutable handle; [t] stays usable by the
   source process, whose later writes COW away from the pinned frames. *)
let seal_cow t ~frames ~cost ~shared =
  let p = Cost.params cost in
  Cost.charge ~n:t.nodes cost "fork:pt-node"
    (p.Cost.pt_node_copy *. float_of_int t.nodes);
  let ptes = t.present + t.lazy_ in
  if ptes > 0 then
    Cost.charge ~n:ptes cost "fork:pte" (p.Cost.pte_copy *. float_of_int ptes);
  let shared_tail = ref shared in
  let scratch = Array.make Addr.entries_per_table 0 in
  let transform_leaf entries base =
    let rec advance () =
      match !shared_tail with
      | (_, hi, _) :: rest when hi < base ->
        shared_tail := rest;
        advance ()
      | l -> l
    in
    let overlaps_leaf =
      match advance () with
      | (lo, _, _) :: _ -> lo <= base + Addr.entries_per_table - 1
      | [] -> false
    in
    if not overlaps_leaf then begin
      let k =
        Pte.downgrade_run entries ~lo:0 ~hi:(Addr.entries_per_table - 1)
          ~dst:scratch
      in
      if k > 0 then Frame.pin_many frames scratch k
    end
    else
      for i = 0 to Addr.entries_per_table - 1 do
        let pte = entries.(i) in
        if Pte.present pte then begin
          let vpn = base lor i in
          let rec perm_for () =
            match !shared_tail with
            | (_, hi, _) :: rest when hi < vpn ->
              shared_tail := rest;
              perm_for ()
            | (lo, _, rperm) :: _ when lo <= vpn -> Some rperm
            | _ -> None
          in
          Frame.pin frames (Pte.frame pte);
          let updated = fork_transform pte ~shared_perm:(perm_for ()) in
          if updated <> pte then entries.(i) <- updated
        end
      done
  in
  let rec go node level vpn_prefix =
    match node with
    | Leaf l -> transform_leaf l.entries (vpn_prefix lsl Addr.index_bits)
    | Inner i ->
      for idx = 0 to Addr.entries_per_table - 1 do
        match i.children.(idx) with
        | None -> ()
        | Some child ->
          go child (level - 1) ((vpn_prefix lsl Addr.index_bits) lor idx)
      done
  in
  go t.root (Addr.levels - 1) 0;
  bump t.root;
  { root = t.root; present = t.present; lazy_ = t.lazy_; nodes = t.nodes }

(* Clone from a sealed table: every frame behind it is immortal and
   every PTE is already in post-fork form, so there is nothing to
   transform and no per-page refcount work — bump the root and charge
   one node copy per top-level subtree. This is the O(shared subtrees)
   spawn the zygote subsystem sells: cost is the root fan-out, not the
   footprint. *)
let clone_sealed t ~cost =
  let p = Cost.params cost in
  let subtrees =
    match t.root with
    | Leaf _ -> 1
    | Inner i ->
      Array.fold_left
        (fun n c -> match c with None -> n | Some _ -> n + 1)
        0 i.children
  in
  let n = max subtrees 1 in
  Cost.charge ~n cost "zygote:subtree" (p.Cost.pt_node_copy *. float_of_int n);
  bump t.root;
  ({ root = t.root; present = t.present; lazy_ = t.lazy_; nodes = t.nodes },
   subtrees)

let clear t ~frames =
  (* Same ascending decref order as a [fold_present] walk, but one
     gather + one [Frame.decref_many] per leaf instead of two
     cross-module calls per page. *)
  let scratch = Array.make Addr.entries_per_table 0 in
  let dropped = ref 0 in
  let rec drop = function
    | Leaf l ->
      let k =
        Pte.frames_of_run l.entries ~lo:0 ~hi:(Addr.entries_per_table - 1)
          ~dst:scratch
      in
      if k > 0 then begin
        Frame.decref_many frames scratch k;
        dropped := !dropped + k
      end
    | Inner i ->
      Array.iter (function None -> () | Some c -> drop c) i.children
  in
  drop t.root;
  let dropped = !dropped in
  (* Drop this table's reference on every exclusively-owned node; nodes
     still shared with a clone survive under the other table. *)
  let rec release = function
    | Leaf l -> l.refs <- l.refs - 1
    | Inner i ->
      i.refs <- i.refs - 1;
      if i.refs = 0 then
        Array.iter (function None -> () | Some c -> release c) i.children
  in
  release t.root;
  t.root <- new_inner ();
  t.present <- 0;
  t.lazy_ <- 0;
  t.nodes <- 1;
  dropped
