(** Physical frame allocator with reference counts and commit accounting.

    One {!t} models the physical memory of a simulated machine and is
    shared by every address space on it. Frames are reference-counted so
    copy-on-write sharing (fork) is explicit and checkable. Frame
    *contents* are materialised lazily: an allocated frame reads as
    zeroes until the first byte is written, so a multi-GiB address-space
    sweep costs O(#frames) small integers, not O(bytes).

    Commit accounting models the policy choice the paper ties to fork:
    under [Strict] accounting the sum of committed private pages may not
    exceed physical memory, so forking a large process fails even though
    COW would rarely copy the pages; [Overcommit] waives the check, which
    is exactly the Linux-style behaviour the paper blames fork for
    encouraging (and which surfaces later as OOM kills). [Demand] also
    waives the check — admission is identical to [Overcommit] — but is
    the kernel's signal that backing failures at first-touch faults
    should invoke the OOM-killer victim chooser rather than surface as
    ENOMEM to the toucher (see [Ksim.Kernel]). *)

type policy = Strict | Overcommit | Demand

type t

type frame = int
(** Frame number in [[0, total)]. *)

val create : ?policy:policy -> frames:int -> unit -> t
(** [create ~frames ()] models a machine with [frames] physical frames.
    Default policy is [Strict]. @raise Invalid_argument if [frames <= 0]. *)

val policy : t -> policy
val set_policy : t -> policy -> unit

val set_threadsafe : t -> bool -> unit
(** Serialise the shared allocator state (free stack, spill/data tables,
    commit pool) behind a mutex, for the SMP kernel's domain-parallel
    phase. Off by default; the sequential paths never pay for the lock.
    Per-frame refcount bytes of {e distinct} frames are already safe to
    update concurrently — the kernel's family discipline guarantees no
    two domains ever count the same frame. *)

val set_deny_alloc : t -> (unit -> bool) option -> unit
(** Install (or clear) a fault-injection hook consulted once per frame
    allocation, batched paths included; returning [true] fails that
    allocation with [`Out_of_memory]. Used by [Ksim.Fault]. *)

val set_deny_commit : t -> (unit -> bool) option -> unit
(** Like {!set_deny_alloc} for {!commit}: consulted once per call that
    charges a positive number of pages; [true] fails it with
    [`Commit_limit] regardless of policy. *)

val total : t -> int
val used : t -> int
val free : t -> int

val alloc : t -> (frame, [> `Out_of_memory ]) result
(** Allocate a zero-filled frame with refcount 1. *)

val alloc_upto : t -> int -> frame array
(** [alloc_upto t n] allocates up to [n] frames (each refcount 1) in
    exactly the order [n] successive {!alloc} calls would have produced
    — recycled frames newest-freed first, then fresh ones ascending.
    The result is shorter than [n] when memory runs out (possibly
    empty); no error is raised. *)

val incref : t -> frame -> unit
(** @raise Invalid_argument on an unallocated frame. *)

val decref : t -> frame -> bool
(** Drop one reference; returns [true] when this freed the frame (its
    contents are discarded). @raise Invalid_argument on an unallocated
    frame. *)

val incref_many : t -> frame array -> int -> unit
(** [incref_many t fs n] is {!incref} on [fs.(0..n-1)] in order, in one
    call (the fork pass increfs every resident frame).
    @raise Invalid_argument like {!incref}, or on a bad [n]. *)

val decref_many : t -> frame array -> int -> unit
(** [decref_many t fs n] is {!decref} on [fs.(0..n-1)] in order, in one
    call, discarding the per-frame results (teardown drops whole leaves
    at a time). @raise Invalid_argument like {!decref}, or on a bad
    [n]. *)

val refcount : t -> frame -> int
(** 0 for unallocated frames; [max_int] for pinned (immortal) frames. *)

val pin : t -> frame -> unit
(** Move the frame into the immortal refcount class: {!incref} and
    {!decref} become no-ops and {!refcount} reads as [max_int], so COW
    breaks always copy away from it and nothing can free it. Sealed
    templates pin their pages so zygote children never touch the
    per-frame counts. Idempotent. @raise Invalid_argument on an
    unallocated frame. *)

val pin_many : t -> frame array -> int -> unit
(** [pin_many t fs n] is {!pin} on [fs.(0..n-1)] (the seal pass pins
    every resident frame). @raise Invalid_argument like {!pin}, or on a
    bad [n]. *)

val unpin : t -> frame -> unit
(** Return a pinned frame to a normally-counted single reference
    (refcount 1) — the template-teardown path, after which a plain
    {!decref} frees it. @raise Invalid_argument if the frame is not
    pinned. *)

val is_pinned : t -> frame -> bool

val pinned : t -> int
(** Number of frames currently in the immortal class. *)

val commit : t -> int -> (unit, [> `Commit_limit ]) result
(** [commit t pages] charges [pages] of commit. Fails under [Strict]
    when the new total would exceed {!total}; always succeeds under
    [Overcommit]. *)

val uncommit : t -> int -> unit
(** Releases commit charge; clamps at zero rather than going negative. *)

val committed : t -> int

val write_byte : t -> frame -> off:int -> int -> unit
(** Materialises the frame contents on first write.
    @raise Invalid_argument on a bad frame, offset or byte value. *)

val read_byte : t -> frame -> off:int -> int
(** Reads 0 from never-written frames. *)

val blit_string : t -> frame -> off:int -> string -> unit
val read_string : t -> frame -> off:int -> len:int -> string

val copy_contents : t -> src:frame -> dst:frame -> unit
(** Copy page contents (used when breaking COW). Never-written sources
    leave [dst] untouched (both read as zeroes). *)
