type policy = Strict | Overcommit | Demand

type frame = int

(* Refcounts are byte-packed: values 0..253 live directly in [refcounts];
   the sentinel 255 means the true count (>= 254) is in [spill], and the
   sentinel 254 marks an {e immortal} frame — pinned by a sealed
   template, exempt from counting entirely. Sweeps allocate tens of
   millions of frames per boot, so the count store must be one byte per
   frame, not one word. *)
let spilled = 255
let immortal = 254

(* The free list is a LIFO stack, run-compressed: teardown frees frames
   in long ascending bursts, so the stack stores (lo, hi) runs where the
   pushes arrived as lo, lo+1, ..., hi. Popping a run yields hi, hi-1,
   ..., lo — exactly the reverse-push order a flat stack would give.
   Pushes that don't extend the top run just open a new one, so
   arbitrary free patterns degrade to one run per frame, never worse
   than the flat representation. *)
type t = {
  nframes : int;
  refcounts : Bytes.t;
  spill : (int, int) Hashtbl.t;  (** true refcounts >= 255 *)
  mutable next_fresh : int;  (** frames >= this have never been handed out *)
  mutable run_lo : int array;  (** free-stack run starts *)
  mutable run_hi : int array;  (** free-stack run ends (inclusive) *)
  mutable run_top : int;  (** number of live runs *)
  mutable used : int;
  mutable pinned : int;  (** frames in the immortal class *)
  mutable committed : int;
  mutable policy : policy;
  data : (int, Bytes.t) Hashtbl.t;  (** materialised contents *)
  mutable data_max : int;  (** no frame above this ever had contents *)
  mutable deny_alloc : (unit -> bool) option;
      (** fault-injection hook: consulted once per frame allocation;
          [true] makes the allocation fail with [`Out_of_memory] *)
  mutable deny_commit : (unit -> bool) option;
      (** fault-injection hook: consulted once per non-empty commit
          charge; [true] makes it fail with [`Commit_limit] *)
  lock : Mutex.t;
  mutable threadsafe : bool;
      (** serialise the shared allocator state (free stack, spill and
          data tables, commit pool) across OCaml domains; enabled by the
          SMP kernel only while its parallel phase is live, so the
          sequential paths never pay for the lock *)
}

let create ?(policy = Strict) ~frames () =
  if frames <= 0 then invalid_arg "Frame.create: frames <= 0";
  {
    nframes = frames;
    refcounts = Bytes.make frames '\000';
    spill = Hashtbl.create 16;
    next_fresh = 0;
    run_lo = [||];
    run_hi = [||];
    run_top = 0;
    used = 0;
    pinned = 0;
    committed = 0;
    policy;
    data = Hashtbl.create 64;
    data_max = -1;
    deny_alloc = None;
    deny_commit = None;
    lock = Mutex.create ();
    threadsafe = false;
  }

let set_threadsafe t b = t.threadsafe <- b
let[@inline] lock t = if t.threadsafe then Mutex.lock t.lock
let[@inline] unlock t = if t.threadsafe then Mutex.unlock t.lock

let set_deny_alloc t hook = t.deny_alloc <- hook
let set_deny_commit t hook = t.deny_commit <- hook

let denied hook = match hook with Some f -> f () | None -> false

let policy t = t.policy
let set_policy t p = t.policy <- p
let total t = t.nframes
let used t = t.used
let free t = t.nframes - t.used

let rc_get t f = Char.code (Bytes.unsafe_get t.refcounts f)
let rc_set t f v = Bytes.unsafe_set t.refcounts f (Char.unsafe_chr v)

let check_frame t f name =
  if f < 0 || f >= t.nframes || rc_get t f = 0 then
    invalid_arg (name ^ ": unallocated frame")

let push_free t f =
  if t.run_top > 0 && t.run_hi.(t.run_top - 1) + 1 = f then
    t.run_hi.(t.run_top - 1) <- f
  else begin
    if t.run_top = Array.length t.run_lo then begin
      let cap = max 256 (2 * Array.length t.run_lo) in
      let lo = Array.make cap 0 and hi = Array.make cap 0 in
      Array.blit t.run_lo 0 lo 0 t.run_top;
      Array.blit t.run_hi 0 hi 0 t.run_top;
      t.run_lo <- lo;
      t.run_hi <- hi
    end;
    t.run_lo.(t.run_top) <- f;
    t.run_hi.(t.run_top) <- f;
    t.run_top <- t.run_top + 1
  end

let alloc t =
  if denied t.deny_alloc then Error `Out_of_memory
  else begin
    lock t;
    let r =
      if t.run_top > 0 then begin
        let r = t.run_top - 1 in
        let f = t.run_hi.(r) in
        if f = t.run_lo.(r) then t.run_top <- r else t.run_hi.(r) <- f - 1;
        rc_set t f 1;
        t.used <- t.used + 1;
        Ok f
      end
      else if t.next_fresh >= t.nframes then Error `Out_of_memory
      else begin
        let f = t.next_fresh in
        t.next_fresh <- t.next_fresh + 1;
        rc_set t f 1;
        t.used <- t.used + 1;
        Ok f
      end
    in
    unlock t;
    r
  end

(* With a deny hook installed, the batched path must consult it once per
   frame — exactly like [n] successive allocs would — so "fail the Nth
   frame allocation" schedules bite identically whether the machine runs
   batched or per-page. *)
let alloc_upto_hooked t n =
  let out = Array.make (max n 1) 0 in
  let rec go k =
    if k >= n then k
    else
      match alloc t with
      | Ok f ->
        out.(k) <- f;
        go (k + 1)
      | Error `Out_of_memory -> k
  in
  let k = go 0 in
  if k = n then out else Array.sub out 0 k

let alloc_upto t n =
  if n < 0 then invalid_arg "Frame.alloc_upto: negative count";
  if t.deny_alloc <> None then alloc_upto_hooked t n
  else begin
  lock t;
  let out = Array.make n 0 in
  (* Only the shared free-list/counter manipulation needs the lock; the
     refcount initialisation loop below runs outside it. The popped
     frames are exclusively this caller's until it hands them out, so
     no other domain can touch their count bytes, and byte stores to
     distinct indices don't interfere. This keeps parallel SMP touch
     cores from serialising on O(pages) work under the mutex. *)
  let k = ref 0 in
  (* recycled frames first, newest-freed first — the exact order [n]
     successive allocs would produce *)
  while !k < n && t.run_top > 0 do
    let r = t.run_top - 1 in
    let lo = t.run_lo.(r) and hi = t.run_hi.(r) in
    let take = min (n - !k) (hi - lo + 1) in
    for i = 0 to take - 1 do
      out.(!k + i) <- hi - i
    done;
    if take = hi - lo + 1 then t.run_top <- r else t.run_hi.(r) <- hi - take;
    k := !k + take
  done;
  let fresh = min (n - !k) (t.nframes - t.next_fresh) in
  let fresh0 = t.next_fresh in
  t.next_fresh <- t.next_fresh + fresh;
  t.used <- t.used + !k + fresh;
  unlock t;
  for i = 0 to fresh - 1 do
    out.(!k + i) <- fresh0 + i
  done;
  k := !k + fresh;
  for i = 0 to !k - 1 do
    rc_set t out.(i) 1
  done;
  if !k = n then out else Array.sub out 0 !k
  end

let incref_spilling t f c =
  if c = immortal - 1 then begin
    rc_set t f spilled;
    Hashtbl.replace t.spill f (c + 1)
  end
  else Hashtbl.replace t.spill f (Hashtbl.find t.spill f + 1)

let incref t f =
  check_frame t f "Frame.incref";
  lock t;
  let c = rc_get t f in
  if c < immortal - 1 then rc_set t f (c + 1)
  else if c = immortal then ()
  else incref_spilling t f c;
  unlock t

let decref_spilled t f =
  let v = Hashtbl.find t.spill f - 1 in
  if v < immortal then begin
    Hashtbl.remove t.spill f;
    rc_set t f v
  end
  else Hashtbl.replace t.spill f v

let decref t f =
  check_frame t f "Frame.decref";
  lock t;
  let c = rc_get t f in
  let r =
    if c = spilled then begin
      decref_spilled t f;
      false
    end
    else if c = immortal then false
    else begin
      rc_set t f (c - 1);
      if c = 1 then begin
        if f <= t.data_max then Hashtbl.remove t.data f;
        push_free t f;
        t.used <- t.used - 1;
        true
      end
      else false
    end
  in
  unlock t;
  r

let incref_many t fs n =
  if n < 0 || n > Array.length fs then invalid_arg "Frame.incref_many";
  lock t;
  for i = 0 to n - 1 do
    let f = Array.unsafe_get fs i in
    if f < 0 || f >= t.nframes then check_frame t f "Frame.incref";
    let c = rc_get t f in
    if c = 0 then check_frame t f "Frame.incref"
    else if c < immortal - 1 then rc_set t f (c + 1)
    else if c = immortal then ()
    else incref_spilling t f c
  done;
  unlock t

let decref_many t fs n =
  if n < 0 || n > Array.length fs then invalid_arg "Frame.decref_many";
  lock t;
  for i = 0 to n - 1 do
    let f = Array.unsafe_get fs i in
    if f < 0 || f >= t.nframes then check_frame t f "Frame.decref";
    let c = rc_get t f in
    if c = 1 then begin
      rc_set t f 0;
      if f <= t.data_max then Hashtbl.remove t.data f;
      push_free t f;
      t.used <- t.used - 1
    end
    else if c = 0 then check_frame t f "Frame.decref"
    else if c = immortal then ()
    else if c < spilled then rc_set t f (c - 1)
    else decref_spilled t f
  done;
  unlock t

let refcount t f =
  if f < 0 || f >= t.nframes then 0
  else begin
    lock t;
    let r =
      match rc_get t f with
      | c when c = spilled -> Hashtbl.find t.spill f
      | c when c = immortal -> max_int
      | c -> c
    in
    unlock t;
    r
  end

(* The immortal class: a pinned frame belongs to a sealed template, so
   it opts out of reference counting — incref/decref become no-ops,
   {!refcount} reads as [max_int] (COW breaks always copy away from it,
   never reclaim it in place), and the frame cannot be freed until
   {!unpin} returns it to a normally-counted single reference. Pinning
   is what keeps zygote spawns O(shared subtrees): children never touch
   the per-frame counts of template pages. *)
let pin t f =
  check_frame t f "Frame.pin";
  let c = rc_get t f in
  if c <> immortal then begin
    if c = spilled then Hashtbl.remove t.spill f;
    rc_set t f immortal;
    t.pinned <- t.pinned + 1
  end

let pin_many t fs n =
  if n < 0 || n > Array.length fs then invalid_arg "Frame.pin_many";
  for i = 0 to n - 1 do
    pin t (Array.unsafe_get fs i)
  done

let unpin t f =
  check_frame t f "Frame.unpin";
  if rc_get t f <> immortal then invalid_arg "Frame.unpin: frame not pinned";
  rc_set t f 1;
  t.pinned <- t.pinned - 1

let is_pinned t f = f >= 0 && f < t.nframes && rc_get t f = immortal
let pinned t = t.pinned

let commit t pages =
  if pages < 0 then invalid_arg "Frame.commit: negative";
  if pages > 0 && denied t.deny_commit then Error `Commit_limit
  else begin
    lock t;
    let r =
      match t.policy with
      | Overcommit | Demand ->
        (* Demand admits like Overcommit at commit time; the reckoning
           moves to first-touch faults, where the kernel's OOM killer
           frees pressure instead of refusing admission. *)
        t.committed <- t.committed + pages;
        Ok ()
      | Strict ->
        if t.committed + pages > t.nframes then Error `Commit_limit
        else begin
          t.committed <- t.committed + pages;
          Ok ()
        end
    in
    unlock t;
    r
  end

let uncommit t pages =
  if pages < 0 then invalid_arg "Frame.uncommit: negative";
  lock t;
  t.committed <- max 0 (t.committed - pages);
  unlock t

let committed t = t.committed

let contents t f =
  match Hashtbl.find_opt t.data f with
  | Some b -> b
  | None ->
    let b = Bytes.make Addr.page_size '\000' in
    Hashtbl.add t.data f b;
    if f > t.data_max then t.data_max <- f;
    b

let write_byte t f ~off v =
  check_frame t f "Frame.write_byte";
  if off < 0 || off >= Addr.page_size then
    invalid_arg "Frame.write_byte: offset";
  if v < 0 || v > 255 then invalid_arg "Frame.write_byte: byte value";
  lock t;
  Bytes.set (contents t f) off (Char.chr v);
  unlock t

let read_byte t f ~off =
  check_frame t f "Frame.read_byte";
  if off < 0 || off >= Addr.page_size then invalid_arg "Frame.read_byte: offset";
  lock t;
  let r =
    match Hashtbl.find_opt t.data f with
    | None -> 0
    | Some b -> Char.code (Bytes.get b off)
  in
  unlock t;
  r

let blit_string t f ~off s =
  check_frame t f "Frame.blit_string";
  if off < 0 || off + String.length s > Addr.page_size then
    invalid_arg "Frame.blit_string: range";
  lock t;
  Bytes.blit_string s 0 (contents t f) off (String.length s);
  unlock t

let read_string t f ~off ~len =
  check_frame t f "Frame.read_string";
  if off < 0 || len < 0 || off + len > Addr.page_size then
    invalid_arg "Frame.read_string: range";
  lock t;
  let r =
    match Hashtbl.find_opt t.data f with
    | None -> String.make len '\000'
    | Some b -> Bytes.sub_string b off len
  in
  unlock t;
  r

let copy_contents t ~src ~dst =
  check_frame t src "Frame.copy_contents";
  check_frame t dst "Frame.copy_contents";
  lock t;
  (match Hashtbl.find_opt t.data src with
  | None -> ()
  | Some b ->
    Hashtbl.replace t.data dst (Bytes.copy b);
    if dst > t.data_max then t.data_max <- dst);
  unlock t
