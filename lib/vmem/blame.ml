(* Cost-attribution ledger: charges each COW break, frame copy and TLB
   shootdown back to the sharing-creation event (fork, freeze, zygote
   spawn, ...) that made the page shared in the first place. See
   DESIGN.md §14 for the attribution model. *)

type kind = Sync | Deferred

type entry = { mutable cycles : float; mutable events : int }

type bucket = (string, entry) Hashtbl.t

type event = {
  id : int;
  style : string;
  parent : int;
  mutable child : int option;
  mutable failed : bool;
  mutable tag : string option;
  sync : bucket;
  deferred : bucket;
}

type t = {
  events : (int, event) Hashtbl.t;
  by_child : (int, int) Hashtbl.t;
  mutable next_id : int;
  mutable context : (int * kind) option;
  unattributed : bucket;
}

let create () =
  {
    events = Hashtbl.create 16;
    by_child = Hashtbl.create 16;
    next_id = 1;
    context = None;
    unattributed = Hashtbl.create 16;
  }

let bucket_add (b : bucket) category ~n cycles =
  match Hashtbl.find_opt b category with
  | Some e ->
    e.cycles <- e.cycles +. cycles;
    e.events <- e.events + n
  | None -> Hashtbl.add b category { cycles; events = n }

(* Observer hook: the kernel chains this after Kstat.on_cost on the one
   Cost observer slot, so every charge lands in exactly one bucket —
   the partition property the QCheck test asserts is structural. *)
let on_cost t category ~n cycles =
  match t.context with
  | None -> bucket_add t.unattributed category ~n cycles
  | Some (id, which) -> (
    match Hashtbl.find_opt t.events id with
    | None -> bucket_add t.unattributed category ~n cycles
    | Some ev ->
      bucket_add
        (match which with Sync -> ev.sync | Deferred -> ev.deferred)
        category ~n cycles)

let new_event t ~style ~parent =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.events id
    {
      id;
      style;
      parent;
      child = None;
      failed = false;
      tag = None;
      sync = Hashtbl.create 8;
      deferred = Hashtbl.create 8;
    };
  id

let find t id = Hashtbl.find_opt t.events id

let set_child t id ~child =
  match find t id with
  | None -> ()
  | Some ev ->
    ev.child <- Some child;
    Hashtbl.replace t.by_child child id

let set_tag t id tag =
  match find t id with None -> () | Some ev -> ev.tag <- Some tag

let mark_failed t id =
  match find t id with None -> () | Some ev -> ev.failed <- true

let event_of_child t pid = Hashtbl.find_opt t.by_child pid

let context t = t.context

let with_context t ~id which f =
  let saved = t.context in
  t.context <- Some (id, which);
  Fun.protect ~finally:(fun () -> t.context <- saved) f

let events t =
  Hashtbl.fold (fun _ ev acc -> ev :: acc) t.events []
  |> List.sort (fun a b -> compare a.id b.id)

let bucket_categories (b : bucket) =
  Hashtbl.fold (fun k e acc -> (k, (e.cycles, e.events)) :: acc) b []
  |> List.sort (fun (ka, (ca, _)) (kb, (cb, _)) ->
         match Float.compare cb ca with 0 -> compare ka kb | c -> c)

let bucket_cycles (b : bucket) =
  Hashtbl.fold (fun _ e acc -> acc +. e.cycles) b 0.0

let sync_cycles ev = bucket_cycles ev.sync
let deferred_cycles ev = bucket_cycles ev.deferred

let deferred_count ev category =
  match Hashtbl.find_opt ev.deferred category with
  | Some e -> e.events
  | None -> 0

let unattributed t = bucket_categories t.unattributed

(* Per-category grand totals over every bucket (sync + deferred of every
   event, plus unattributed), sorted by category name: if blame sees
   every charge exactly once, this equals the Cost meter's own
   by-category tallies — integer-valued cost params make the float sums
   exact, so the comparison is [=], not approximate. *)
let totals t =
  let acc : bucket = Hashtbl.create 32 in
  let merge (b : bucket) =
    Hashtbl.iter (fun k (e : entry) -> bucket_add acc k ~n:e.events e.cycles) b
  in
  merge t.unattributed;
  Hashtbl.iter
    (fun _ ev ->
      merge ev.sync;
      merge ev.deferred)
    t.events;
  Hashtbl.fold (fun k e l -> (k, (e.cycles, e.events)) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let bucket_to_json (b : bucket) =
  let open Metrics.Json in
  obj
    [
      ("cycles", num (bucket_cycles b));
      ( "categories",
        obj
          (List.map
             (fun (k, (c, n)) ->
               (k, obj [ ("cycles", num c); ("events", int n) ]))
             (bucket_categories b)) );
    ]

let event_to_json ev =
  let open Metrics.Json in
  obj
    [
      ("id", int ev.id);
      ("style", str ev.style);
      ("parent", int ev.parent);
      ("child", match ev.child with Some c -> int c | None -> Null);
      ("failed", bool ev.failed);
      ("tag", match ev.tag with Some s -> str s | None -> Null);
      ("sync", bucket_to_json ev.sync);
      ("deferred", bucket_to_json ev.deferred);
    ]

let to_json t =
  let open Metrics.Json in
  obj
    [
      ("events", arr (List.map event_to_json (events t)));
      ("unattributed", bucket_to_json t.unattributed);
    ]
