(** Cycle-cost model for the simulated kernel.

    Every micro-operation the simulator performs (copying a page-table
    page, servicing a fault, flushing a TLB, ...) charges a configurable
    number of cycles to a {!t} meter, broken down by category. The
    default constants are order-of-magnitude figures for a ~3 GHz x86
    server and are calibrated against the real Figure-1 sweep in
    EXPERIMENTS.md; the *shape* of every simulated result (linear vs
    constant, crossover position) is insensitive to modest changes in
    them, which is the property the paper's argument rests on. *)

type params = {
  syscall_base : float;  (** kernel entry/exit + dispatch *)
  proc_create : float;  (** allocate and link a PCB *)
  proc_destroy : float;
  vma_clone : float;  (** duplicate one VMA record on fork *)
  pt_node_copy : float;  (** copy one page-table page (512 entries) *)
  pte_copy : float;  (** visit/copy one present PTE on fork *)
  fault_base : float;  (** page-fault entry + lookup *)
  frame_zero : float;  (** zero-fill a 4 KiB frame *)
  frame_copy : float;  (** copy a 4 KiB frame (COW break) *)
  tlb_flush : float;  (** local full flush *)
  tlb_shootdown : float;  (** IPI + remote flush, per remote CPU *)
  tlb_invlpg : float;  (** single-page invalidation *)
  exec_base : float;  (** image open + headers + loader setup *)
  exec_per_page : float;  (** map one text/data page (no I/O model) *)
  fd_clone : float;  (** duplicate one fd-table slot *)
  sched_switch : float;  (** context switch *)
  pager_request : float;
      (** dispatch one first-touch fault batch to the user-mode pager
          (upcall + reply; amortised over the batch by readahead) *)
  pager_fetch_zero : float;  (** pager supplies one demand-zero page *)
  pager_fetch_image : float;
      (** pager pulls one page from the executable image *)
  pager_fetch_template : float;
      (** pager copies one page from a sealed template *)
}

val default : params

val ghz : float
(** Clock used to convert simulated cycles to nanoseconds: 3.0. *)

val cycles_to_ns : float -> float

type t
(** A mutable meter: accumulated cycles and event counts, per category. *)

val create : ?params:params -> unit -> t
val params : t -> params

val charge : ?n:int -> t -> string -> float -> unit
(** [charge m category cycles] adds [cycles] (may be a multiple of a
    [params] field) under [category] and bumps the category's event
    count by [n] (default 1; pass the multiplicity when one call
    accounts for many identical operations, e.g. the PTEs copied by a
    fork). Negative charges or counts raise [Invalid_argument]. *)

val tally : t -> string -> unit
(** [tally m category] records an event that costs no cycles —
    equivalent to [charge ~n:1 m category 0.]. Used for counters such as
    in-place COW reuse where the interesting datum is the count. *)

val set_observer : t -> (string -> n:int -> float -> unit) option -> unit
(** [set_observer m (Some f)] arranges for [f category ~n cycles] to be
    called on every subsequent {!charge}/{!tally}, after the meter has
    been updated. The kernel uses this to feed its per-pid statistics;
    at most one observer is active at a time. [None] removes it. *)

val total : t -> float
val by_category : t -> (string * float) list
(** Sorted by descending cost. *)

val by_category_counts : t -> (string * (float * int)) list
(** Like {!by_category} but each category carries (cycles, events). *)

val get : t -> string -> float
(** Cycles charged under one category (0. if never charged). *)

val count : t -> string -> int
(** Events recorded under one category (0 if never charged). *)

val reset : t -> unit

val delta : t -> (unit -> 'a) -> 'a * float
(** [delta m f] runs [f] and returns its result together with the cycles
    charged to [m] during the call. *)

val pp_breakdown : Format.formatter -> t -> unit
