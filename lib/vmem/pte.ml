type t = int

let bit_present = 1
let bit_read = 2
let bit_write = 4
let bit_exec = 8
let bit_cow = 16
let bit_accessed = 32
let bit_dirty = 64
let bit_lazy = 128
let frame_shift = 8
let absent = 0
let present t = t land bit_present <> 0

let make ~frame ~perm ?(cow = false) () =
  if frame < 0 then invalid_arg "Pte.make: negative frame";
  (frame lsl frame_shift)
  lor bit_present
  lor (if perm.Perm.read then bit_read else 0)
  lor (if perm.Perm.write then bit_write else 0)
  lor (if perm.Perm.exec then bit_exec else 0)
  lor if cow then bit_cow else 0

let frame t = t lsr frame_shift

(* A lazy (not-present-until-touched) entry reuses the frame field as an
   opaque pager cookie. It never sets bit_present, so every present-gated
   walk (clear, refcount passes, the batch helpers below) skips it for
   free; only the fault path and the explicit range installers look at
   bit_lazy. *)
let make_lazy ~cookie ~perm () =
  if cookie < 0 then invalid_arg "Pte.make_lazy: negative cookie";
  (cookie lsl frame_shift)
  lor bit_lazy
  lor (if perm.Perm.read then bit_read else 0)
  lor (if perm.Perm.write then bit_write else 0)
  lor if perm.Perm.exec then bit_exec else 0

let lazy_ t = t land bit_lazy <> 0 && t land bit_present = 0
let cookie t = t lsr frame_shift

(* On a present entry, bit 7 marks "installed by readahead, not yet
   touched" — the first real access clears it and counts as a readahead
   hit instead of a fault. *)
let mark_prefetched t = t lor bit_lazy
let prefetched t = t land bit_lazy <> 0 && t land bit_present <> 0
let clear_prefetched t = t land lnot bit_lazy

let perm t =
  {
    Perm.read = t land bit_read <> 0;
    write = t land bit_write <> 0;
    exec = t land bit_exec <> 0;
  }

let cow t = t land bit_cow <> 0
let accessed t = t land bit_accessed <> 0
let dirty t = t land bit_dirty <> 0

let with_perm t p =
  let cleared = t land lnot (bit_read lor bit_write lor bit_exec) in
  cleared
  lor (if p.Perm.read then bit_read else 0)
  lor (if p.Perm.write then bit_write else 0)
  lor if p.Perm.exec then bit_exec else 0

let with_cow t c = if c then t lor bit_cow else t land lnot bit_cow

let with_frame t f =
  if f < 0 then invalid_arg "Pte.with_frame: negative frame";
  (f lsl frame_shift) lor (t land ((1 lsl frame_shift) - 1))

let mark_accessed t = t lor bit_accessed
let mark_dirty t = t lor bit_dirty

(* Batch helpers: the simulator's range paths process pages by the
   million, and without cross-module inlining a per-page [make] or
   [frame] call dominates the loop, so these keep the per-page work
   inside this module. *)

let blit_run ~frames ~n ~perm dst ~at =
  if n < 0 || n > Array.length frames || at < 0 || at + n > Array.length dst
  then invalid_arg "Pte.blit_run";
  if n > 0 then begin
    let template = make ~frame:0 ~perm () in
    for k = 0 to n - 1 do
      Array.unsafe_set dst (at + k)
        (template lor (Array.unsafe_get frames k lsl frame_shift))
    done
  end

let frames_of_run src ~lo ~hi ~dst =
  if lo < 0 || hi >= Array.length src || hi - lo >= Array.length dst then
    invalid_arg "Pte.frames_of_run";
  let k = ref 0 in
  for i = lo to hi do
    let pte = Array.unsafe_get src i in
    if pte land bit_present <> 0 then begin
      Array.unsafe_set dst !k (pte lsr frame_shift);
      incr k
    end
  done;
  !k

let downgrade_run src ~lo ~hi ~dst =
  if lo < 0 || hi >= Array.length src || hi - lo >= Array.length dst then
    invalid_arg "Pte.downgrade_run";
  let k = ref 0 in
  for i = lo to hi do
    let pte = Array.unsafe_get src i in
    if pte land bit_present <> 0 then begin
      Array.unsafe_set dst !k (pte lsr frame_shift);
      incr k;
      if pte land bit_write <> 0 then
        Array.unsafe_set src i ((pte land lnot bit_write) lor bit_cow)
    end
  done;
  !k

let lazy_blit_run ~cookies ~n ~perm dst ~at =
  if n < 0 || n > Array.length cookies || at < 0 || at + n > Array.length dst
  then invalid_arg "Pte.lazy_blit_run";
  if n > 0 then begin
    let template = make_lazy ~cookie:0 ~perm () in
    for k = 0 to n - 1 do
      Array.unsafe_set dst (at + k)
        (template lor (Array.unsafe_get cookies k lsl frame_shift))
    done
  end

let pp ppf t =
  if lazy_ t then
    Format.fprintf ppf "lazy cookie=%d %a" (cookie t) Perm.pp (perm t)
  else if not (present t) then Format.pp_print_string ppf "<absent>"
  else
    Format.fprintf ppf "frame=%d %a%s%s%s%s" (frame t) Perm.pp (perm t)
      (if cow t then " cow" else "")
      (if accessed t then " acc" else "")
      (if dirty t then " dirty" else "")
      (if prefetched t then " pref" else "")
