(** Packed page-table entries.

    A PTE is a single immutable [int]: bit 0 = present, bits 1-3 =
    read/write/exec, bit 4 = copy-on-write, bit 5 = accessed, bit 6 =
    dirty, bit 7 = lazy/prefetched (see below); the frame number
    occupies the bits above {!frame_shift}. Packing keeps a
    fully-mapped multi-GiB address space cheap (one int per page).

    Demand paging adds a third entry state besides absent and present:
    a {e lazy} entry ([bit 7] set, present clear) records permissions
    and a pager {e cookie} (in the frame field) for a page that has
    been mapped but never backed — the first touch is a major fault
    that asks the pager to supply the frame. Because lazy entries are
    not present, every present-gated walk (refcounts, {!clear},
    the batch helpers) skips them without change. On a {e present}
    entry, the same bit 7 means "installed by readahead": the first
    real access clears it and counts as a readahead hit. *)

type t = int

val absent : t
val present : t -> bool

val make : frame:Frame.frame -> perm:Perm.t -> ?cow:bool -> unit -> t
(** A fresh present entry; [cow] defaults to false.
    @raise Invalid_argument on a negative frame. *)

val make_lazy : cookie:int -> perm:Perm.t -> unit -> t
(** A not-present-until-touched entry carrying a pager [cookie]
    (an opaque non-negative int the pager interprets; this module
    only stores it). @raise Invalid_argument on a negative cookie. *)

val frame : t -> Frame.frame
val perm : t -> Perm.t
val cow : t -> bool
val accessed : t -> bool
val dirty : t -> bool

val lazy_ : t -> bool
(** True for lazy (mapped, unbacked) entries only — never for absent
    or present ones. *)

val cookie : t -> int
(** The pager cookie of a lazy entry (reads the frame field). *)

val prefetched : t -> bool
(** True for a present entry installed by pager readahead and not yet
    accessed. *)

val mark_prefetched : t -> t
val clear_prefetched : t -> t

val with_perm : t -> Perm.t -> t
val with_cow : t -> bool -> t
val with_frame : t -> Frame.frame -> t
val mark_accessed : t -> t
val mark_dirty : t -> t

val frame_shift : int

(** {1 Batch helpers}

    The range paths of the simulator process pages by the million;
    these keep the per-page bit work inside this module (one call per
    leaf instead of one cross-module call per page). Each is exactly
    equivalent to the corresponding per-page loop. *)

val blit_run : frames:int array -> n:int -> perm:Perm.t -> t array -> at:int -> unit
(** [blit_run ~frames ~n ~perm dst ~at] writes
    [make ~frame:frames.(k) ~perm ()] into [dst.(at + k)] for
    [k < n]. @raise Invalid_argument on out-of-bounds slices. *)

val frames_of_run : t array -> lo:int -> hi:int -> dst:int array -> int
(** Gather the frame numbers of the present entries of
    [src.(lo..hi)] into [dst] (from index 0); returns how many were
    present. [dst] must have room for [hi - lo + 1]. *)

val downgrade_run : t array -> lo:int -> hi:int -> dst:int array -> int
(** The fork pass over one leaf slice: gather present frame numbers
    into [dst] like {!frames_of_run} and additionally downgrade every
    present writable entry in place to read-only COW (the
    accessed/dirty bits survive). Returns the number of present
    entries. *)

val lazy_blit_run :
  cookies:int array -> n:int -> perm:Perm.t -> t array -> at:int -> unit
(** [lazy_blit_run ~cookies ~n ~perm dst ~at] writes
    [make_lazy ~cookie:cookies.(k) ~perm ()] into [dst.(at + k)] for
    [k < n]. @raise Invalid_argument on out-of-bounds slices. *)

val pp : Format.formatter -> t -> unit
