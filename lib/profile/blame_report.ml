(* Render the blame ledger as a report table: one row per creation
   event with its sync (paid-at-creation) and deferred (paid-later)
   bills, plus the deferred COW-break counts — the paper's "fork's tax
   is paid later, by someone else" as a measured table. *)

let child_string (ev : Vmem.Blame.event) =
  match (ev.Vmem.Blame.child, ev.Vmem.Blame.tag) with
  | Some c, _ -> string_of_int c
  | None, Some tag -> tag
  | None, None -> if ev.Vmem.Blame.failed then "failed" else "-"

let table blame =
  let t =
    Metrics.Table.create
      ~align:
        [
          Metrics.Table.Right;
          Metrics.Table.Left;
          Metrics.Table.Right;
          Metrics.Table.Left;
          Metrics.Table.Right;
          Metrics.Table.Right;
          Metrics.Table.Right;
          Metrics.Table.Right;
        ]
      [
        "event";
        "style";
        "parent";
        "child";
        "sync cycles";
        "deferred cycles";
        "cow breaks";
        "frames copied";
      ]
  in
  List.iter
    (fun (ev : Vmem.Blame.event) ->
      let copies = Vmem.Blame.deferred_count ev "fault:cow-copy" in
      let reuses = Vmem.Blame.deferred_count ev "fault:cow-reuse" in
      Metrics.Table.add_row t
        [
          string_of_int ev.Vmem.Blame.id;
          ev.Vmem.Blame.style;
          string_of_int ev.Vmem.Blame.parent;
          child_string ev;
          Metrics.Units.cycles (Vmem.Blame.sync_cycles ev);
          Metrics.Units.cycles (Vmem.Blame.deferred_cycles ev);
          string_of_int (copies + reuses);
          string_of_int copies;
        ])
    (Vmem.Blame.events blame);
  t

let to_json = Vmem.Blame.to_json
