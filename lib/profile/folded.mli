(** Folded-stack flamegraph export (flamegraph.pl / speedscope format).

    Each output line is [path;group count]: the semicolon-joined process
    ancestry (frames are [style:pid]), a subsystem-group leaf frame, and
    that pid's integral cycle spend in the group. Deterministic: nodes
    in ascending-pid DFS order, groups in {!Subsys.group_order}. *)

val render : Span_tree.t -> string
(** Empty groups are omitted; an idle tree renders to [""]. *)
