(* Subsystem grouping of the cost-meter categories. The groups
   partition every category, so their sum always equals the headline
   cycle count — the invariant both the bench report's breakdown and the
   flamegraph's leaf frames rely on. The category set is small and the
   function runs on every breakdown entry of every sweep point, so
   resolved names are memoized (per domain — the harness may fan sweep
   points out across domains). *)
let group_of_uncached cat =
  let has_prefix p =
    String.length cat >= String.length p
    && String.sub cat 0 (String.length p) = p
  in
  match cat with
  | "fork:pt-node" | "fork:pte" | "zygote:subtree" -> "pt-copy"
  | "fault:cow-copy" | "fork:eager-copy" -> "frame-copy"
  | _ ->
    if has_prefix "fault:" then "fault"
    else if has_prefix "pager:" then "pager"
    else if has_prefix "tlb:" then "tlb"
    else if has_prefix "exec:" then "exec"
    else "other"

let group_cache : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let group_of cat =
  let tbl = Domain.DLS.get group_cache in
  match Hashtbl.find_opt tbl cat with
  | Some g -> g
  | None ->
    let g = group_of_uncached cat in
    Hashtbl.add tbl cat g;
    g

let group_order =
  [ "pt-copy"; "fault"; "pager"; "frame-copy"; "tlb"; "exec"; "other" ]

let groups_of_breakdown breakdown =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (cat, c) ->
      let g = group_of cat in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl g) in
      Hashtbl.replace tbl g (prev +. c))
    breakdown;
  List.filter_map
    (fun g -> Option.map (fun c -> (g, c)) (Hashtbl.find_opt tbl g))
    group_order
