(** Critical-path report over a {!Span_tree}.

    The chain of processes from a root to the node whose last event
    bounds end-to-end simulated time, descending at each step into the
    subtree that finishes last (ties to the lowest pid, so the path is
    deterministic). Each hop carries the creation span that linked it to
    its parent — the serial chain an end-to-end speedup must shorten. *)

type hop = {
  pid : int;
  style : string;
  created_ns : float;
  creation_span_ns : float;
  last_ns : float;
  cycles : float;
}

val compute : Span_tree.t -> hop list
(** Root first; empty for an empty tree. *)

val render : Span_tree.t -> string
(** Human-readable table with a one-line summary header. *)

val to_json : Span_tree.t -> Metrics.Json.t
