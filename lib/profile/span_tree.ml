(* Causal span tree: process genealogy reconstructed from the trace's
   creation instants (D_child), annotated with each pid's kstat deltas.
   Everything here is read-only over the machine, so building a tree
   never perturbs a simulated number. *)

type node = {
  pid : int;
  style : string;
  parent : int option;
  created_ns : float;
  creation_span_ns : float;
  last_ns : float;
  cycles : float;
  cost : (string * (float * int)) list;
  groups : (string * float) list;
  counters : (string * int) list;
  mutable children : node list;
}

type t = { roots : node list; nodes : node list; total_cycles : float }

(* Trace names of the syscall whose End event closes a creation of the
   given style. The D_child instant is recorded inside the handler, so
   the matching End is the first one at or after it. For vfork the span
   includes the parent's block until the child execs or exits — that IS
   vfork's cost to the parent, so the attribution is the honest one. *)
let end_names_of_style = function
  | "fork" -> [ "fork"; "fork_eager" ]
  | "vfork" -> [ "vfork" ]
  | "spawn" -> [ "posix_spawn" ]
  | "zygote" -> [ "template_spawn" ]
  | "builder" -> [ "pb_create" ]
  | _ -> []

let build machine =
  let events =
    match Ksim.Kernel.trace machine with
    | Some tr -> Ksim.Trace.events tr
    | None -> []
  in
  (* genealogy: child pid -> (parent, style, creation timestamp) *)
  let genealogy = Hashtbl.create 16 in
  List.iter
    (fun (e : Ksim.Trace.event) ->
      match e.Ksim.Trace.detail with
      | Ksim.Trace.D_child { child; style } ->
        if not (Hashtbl.mem genealogy child) then
          Hashtbl.add genealogy child
            (e.Ksim.Trace.pid, style, e.Ksim.Trace.ts_ns)
      | _ -> ())
    events;
  let ends =
    List.filter
      (fun (e : Ksim.Trace.event) -> e.Ksim.Trace.phase = Ksim.Trace.End)
      events
  in
  let creation_span ~parent ~style ~created_ns =
    let names = end_names_of_style style in
    let matches (e : Ksim.Trace.event) =
      e.Ksim.Trace.pid = parent
      && List.mem e.Ksim.Trace.what names
      && e.Ksim.Trace.ts_ns >= created_ns
    in
    match List.find_opt matches ends with
    | Some e -> e.Ksim.Trace.span_ns
    | None -> 0.0
  in
  let last_ns = Hashtbl.create 16 in
  List.iter
    (fun (e : Ksim.Trace.event) ->
      let prev =
        Option.value ~default:0.0 (Hashtbl.find_opt last_ns e.Ksim.Trace.pid)
      in
      if e.Ksim.Trace.ts_ns > prev then
        Hashtbl.replace last_ns e.Ksim.Trace.pid e.Ksim.Trace.ts_ns)
    events;
  let kstat = Ksim.Kernel.kstat machine in
  let pids =
    let tbl = Hashtbl.create 32 in
    let note pid = Hashtbl.replace tbl pid () in
    List.iter note (Ksim.Kstat.pids kstat);
    Hashtbl.iter (fun pid _ -> note pid) genealogy;
    List.iter (fun (e : Ksim.Trace.event) -> note e.Ksim.Trace.pid) events;
    Hashtbl.fold (fun pid () acc -> pid :: acc) tbl [] |> List.sort compare
  in
  let node_of pid =
    let parent, style, created_ns, creation_span_ns =
      match Hashtbl.find_opt genealogy pid with
      | Some (parent, style, created_ns) ->
        ( Some parent,
          style,
          created_ns,
          creation_span ~parent ~style ~created_ns )
      | None -> (None, "root", 0.0, 0.0)
    in
    let cycles, cost, counters =
      match Ksim.Kstat.pid_counters kstat pid with
      | Some c ->
        ( Ksim.Kstat.cycles c,
          Ksim.Kstat.cost_categories c,
          Ksim.Kstat.snapshot c )
      | None -> (0.0, [], [])
    in
    {
      pid;
      style;
      parent;
      created_ns;
      creation_span_ns;
      last_ns = Option.value ~default:0.0 (Hashtbl.find_opt last_ns pid);
      cycles;
      cost;
      groups =
        Subsys.groups_of_breakdown
          (List.map (fun (cat, (cyc, _)) -> (cat, cyc)) cost);
      counters;
      children = [];
    }
  in
  let nodes = List.map node_of pids in
  let by_pid = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace by_pid n.pid n) nodes;
  List.iter
    (fun n ->
      match n.parent with
      | Some p -> (
        match Hashtbl.find_opt by_pid p with
        | Some pn -> pn.children <- pn.children @ [ n ]
        | None -> ())
      | None -> ())
    nodes;
  let roots =
    List.filter
      (fun n ->
        match n.parent with
        | None -> true
        | Some p -> not (Hashtbl.mem by_pid p))
      nodes
  in
  {
    roots;
    nodes;
    total_cycles = Vmem.Cost.total (Ksim.Kernel.cost machine);
  }

let find t pid = List.find_opt (fun n -> n.pid = pid) t.nodes
