(* Critical-path report: the creation chain that bounds end-to-end
   simulated time. Starting from the root whose subtree finishes last,
   descend at each node into the child whose subtree holds the latest
   event, until the node itself is what finishes last. The hops are the
   processes (and the creations between them) that an end-to-end
   speedup must shorten. *)

type hop = {
  pid : int;
  style : string;
  created_ns : float;
  creation_span_ns : float;
  last_ns : float;
  cycles : float;
}

let hop_of (n : Span_tree.node) =
  {
    pid = n.pid;
    style = n.style;
    created_ns = n.created_ns;
    creation_span_ns = n.creation_span_ns;
    last_ns = n.last_ns;
    cycles = n.cycles;
  }

let rec subtree_last (n : Span_tree.node) =
  List.fold_left
    (fun acc c -> Float.max acc (subtree_last c))
    n.last_ns n.children

let compute (t : Span_tree.t) =
  match t.roots with
  | [] -> []
  | roots ->
    (* ties break toward the lowest pid: children are in ascending-pid
       order and [>] keeps the first maximum, so the path is
       deterministic *)
    let best =
      List.fold_left
        (fun acc r ->
          match acc with
          | None -> Some r
          | Some b -> if subtree_last r > subtree_last b then Some r else acc)
        None roots
    in
    let rec walk (n : Span_tree.node) =
      let deeper =
        List.fold_left
          (fun acc (c : Span_tree.node) ->
            let m = subtree_last c in
            match acc with
            | Some (_, bm) when bm >= m -> acc
            | _ -> if m > n.last_ns then Some (c, m) else acc)
          None n.children
      in
      match deeper with
      | Some (c, _) -> hop_of n :: walk c
      | None -> [ hop_of n ]
    in
    (match best with None -> [] | Some r -> walk r)

let render (t : Span_tree.t) =
  let hops = compute t in
  let table =
    Metrics.Table.create
      ~align:
        [
          Metrics.Table.Left;
          Metrics.Table.Left;
          Metrics.Table.Right;
          Metrics.Table.Right;
          Metrics.Table.Right;
          Metrics.Table.Right;
        ]
      [ "pid"; "style"; "created"; "creation span"; "last event"; "cycles" ]
  in
  List.iter
    (fun h ->
      Metrics.Table.add_row table
        [
          string_of_int h.pid;
          h.style;
          Metrics.Units.ns h.created_ns;
          Metrics.Units.ns h.creation_span_ns;
          Metrics.Units.ns h.last_ns;
          Metrics.Units.cycles h.cycles;
        ])
    hops;
  let end_ns =
    match List.rev hops with [] -> 0.0 | last :: _ -> last.last_ns
  in
  Printf.sprintf "critical path: %d hop(s), ends at %s\n%s"
    (List.length hops)
    (Metrics.Units.ns end_ns)
    (Metrics.Table.render table)

let to_json (t : Span_tree.t) =
  let open Metrics.Json in
  arr
    (List.map
       (fun h ->
         obj
           [
             ("pid", int h.pid);
             ("style", str h.style);
             ("created_ns", num h.created_ns);
             ("creation_span_ns", num h.creation_span_ns);
             ("last_ns", num h.last_ns);
             ("cycles", num h.cycles);
           ])
       (compute t))
