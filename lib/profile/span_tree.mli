(** Causal span tree: process genealogy + per-process cost attribution.

    Rebuilds the fork/vfork/spawn/zygote/builder genealogy from the
    machine's trace ([D_child] creation instants), and annotates each
    node with that pid's {!Ksim.Kstat} counters, per-category cycle
    spend and subsystem-group totals. The tree is the common input of
    the folded-stack flamegraph ({!Folded}) and the critical-path
    report ({!Critical_path}). *)

type node = {
  pid : int;
  style : string;
      (** creation style ("fork", "vfork", "spawn", "zygote",
          "builder"), or "root" for processes with no recorded creator *)
  parent : int option;
  created_ns : float;  (** simulated timestamp of the creation instant *)
  creation_span_ns : float;
      (** span of the creating syscall (for vfork this includes the
          parent's block until exec/exit — vfork's real cost to the
          parent); 0 when unknown *)
  last_ns : float;  (** timestamp of this pid's last trace event *)
  cycles : float;  (** simulated cycles attributed to this pid *)
  cost : (string * (float * int)) list;
      (** per-category (cycles, events), descending cycles *)
  groups : (string * float) list;  (** per-subsystem-group cycles *)
  counters : (string * int) list;  (** {!Ksim.Kstat.snapshot} *)
  mutable children : node list;  (** creation order (ascending pid) *)
}

type t = {
  roots : node list;
  nodes : node list;  (** every node, ascending pid *)
  total_cycles : float;  (** machine-wide cycle total *)
}

val build : Ksim.Kernel.t -> t
(** Read-only over the machine; never perturbs a simulated number.
    Without a trace the tree is flat: every pid with kstat counters
    becomes a root. *)

val find : t -> int -> node option
