(* Folded-stack flamegraph export.

   One line per (process-ancestry path, subsystem group) with an
   integral cycle count:

     root:1;fork:3;fault 1280000

   is the format flamegraph.pl and speedscope ingest directly. The
   "stack" axis is the process tree (frame = style:pid), the leaf frame
   is the subsystem group, and the value is the cycles that pid spent in
   that group — so the flamegraph shows both who descends from whom and
   where each descendant's cycles went. Cost parameters are
   integer-valued, so the per-group sums print exactly with %.0f. *)

let frame (n : Span_tree.node) = Printf.sprintf "%s:%d" n.style n.pid

let render (t : Span_tree.t) =
  let buf = Buffer.create 1024 in
  let rec emit path (n : Span_tree.node) =
    let path = if path = "" then frame n else path ^ ";" ^ frame n in
    List.iter
      (fun (group, cycles) ->
        if cycles > 0.0 then
          Buffer.add_string buf
            (Printf.sprintf "%s;%s %.0f\n" path group cycles))
      n.groups;
    List.iter (emit path) n.children
  in
  List.iter (emit "") t.roots;
  Buffer.contents buf
