(** Report rendering of the {!Vmem.Blame} cost-attribution ledger. *)

val table : Vmem.Blame.t -> Metrics.Table.t
(** One row per creation event: style, parent, child (or template tag,
    or "failed"), sync cycles, deferred cycles, deferred COW breaks and
    frame copies. Rows in event (creation) order. *)

val to_json : Vmem.Blame.t -> Metrics.Json.t
(** Alias of {!Vmem.Blame.to_json}: the full ledger, suitable for a
    BENCH data block. *)
