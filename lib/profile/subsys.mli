(** Subsystem grouping of {!Vmem.Cost} categories.

    Maps each fine-grained cost category ("fork:pte", "fault:cow-copy",
    "tlb:shootdown", ...) to one of six subsystem groups. The mapping is
    total and the groups partition the categories, so group sums always
    equal the headline cycle count — the invariant report breakdowns and
    flamegraph leaves rely on. *)

val group_of : string -> string
(** Group of one category (memoized per domain). *)

val group_order : string list
(** Canonical display order:
    pt-copy, fault, frame-copy, tlb, exec, other. *)

val groups_of_breakdown : (string * float) list -> (string * float) list
(** Collapse a per-category breakdown into per-group sums, in
    {!group_order}, omitting groups with no entries. *)
