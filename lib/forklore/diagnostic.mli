(** Lint findings shared by the static checker ({!Rules} over C source)
    and the dynamic checker ([Ksim.Lint] over execution traces), so the
    two layers can be cross-validated finding-for-finding.

    Each diagnostic carries the rule that fired, a position
    ([file:line:col] for source; trace name / event index for runtime
    findings), the paper claim it operationalises and a concrete fix
    hint naming the spawn-based alternative. *)

type severity = Error | Warn | Info

val severity_name : severity -> string
val severity_of_name : string -> severity option
val severity_rank : severity -> int
(** [Error] ranks before [Warn] ranks before [Info]. *)

type t = {
  rule : string;  (** rule id, e.g. ["fork-in-threads"] *)
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  message : string;
  citation : string;  (** paper section the rule operationalises *)
  hint : string;  (** the spawnlib/posix_spawn way out *)
}

val compare : t -> t -> int
(** Order by file, line, col, severity, rule — the report order. *)

val equal : t -> t -> bool
val is_error : t -> bool
val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (shared with
    the {!Sarif} exporter). *)

val to_json : t -> string
(** One finding as a JSON object (single line). *)

val report_to_json : t list -> string
(** Full report: sorted findings plus a severity summary. *)

val report_of_json : string -> (t list, string) result
(** Parse a report produced by {!report_to_json} back into findings;
    used to guarantee the JSON output round-trips. *)
