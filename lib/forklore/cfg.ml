(* Per-function control-flow graph over {!Cparse} statements.

   Nodes carry an ordered list of call events; terminators carry the
   branch structure plus a *guard* — the decoded comparison of a fork
   result against 0/-1 — which is what lets {!Dataflow} split child,
   parent and error paths. Calls to noreturn functions (exec family,
   _exit, abort...) seal the current node, so statements after them
   land in unreachable nodes and are reported by [dead_sites] instead
   of being analysed as live code. *)

type site = { s_id : int; s_call : Cparse.call }

(* Comparison of a fork result against a literal, normalised so the
   subject is on the left: [pid == 0] and [0 == pid] both decode to
   Req0. *)
type rel = Req0 | Rne0 | Rgt0 | Rlt0 | Rge0 | Rle0 | Req_m1 | Rne_m1

type subject =
  | Sub_site of int  (** the fork()/vfork() call tested directly *)
  | Sub_var of string  (** a variable tested; bound by the dataflow *)
  | Sub_other

type guard = {
  g_subject : subject;
  g_rel : rel;
  g_true_only : bool;
      (** decoded from one conjunct of [a && b]: the false edge of the
          whole condition implies nothing about this conjunct *)
}

type arm =
  | A_case of int option  (** [Some v] when the case label is a literal *)
  | A_default

type term =
  | T_jump of int
  | T_branch of { br_guard : guard option; br_true : int; br_false : int }
  | T_switch of { sw_subject : subject; sw_arms : (arm * int) list }
  | T_return of Cparse.pos  (** explicit [return] *)
  | T_exit of Cparse.pos  (** implicit return: falling off the body *)
  | T_dead  (** no successor: after noreturn, or never sealed *)

type node = { mutable n_sites : site list; mutable n_term : term }

type t = {
  cfg_func : Cparse.func;
  nodes : node array;
  entry : int;
  sites : site array;  (** indexed by [s_id] *)
}

(* Functions that do not return to the caller. exit/abort terminate the
   path but are NOT fork-exec "escapes" — that distinction belongs to
   the dataflow; here they all just cut the edge. *)
let default_noreturn =
  [
    "execl"; "execlp"; "execle"; "execv"; "execvp"; "execve"; "execvpe";
    "fexecve"; "_exit"; "_Exit"; "exit"; "abort"; "longjmp"; "siglongjmp";
  ]

let negate_rel = function
  | Req0 -> Rne0
  | Rne0 -> Req0
  | Rgt0 -> Rle0
  | Rle0 -> Rgt0
  | Rlt0 -> Rge0
  | Rge0 -> Rlt0
  | Req_m1 -> Rne_m1
  | Rne_m1 -> Req_m1

(* ------------------------------------------------------------------ *)
(* Guard decoding *)

let punct (t : Lexer.token) =
  match t.Lexer.kind with Lexer.Punct p -> Some p | _ -> None

(* strip balanced outer parens: ((pid)) -> pid *)
let rec strip_parens toks =
  match toks with
  | { Lexer.kind = Lexer.Punct "("; _ } :: _ -> (
    let arr = Array.of_list toks in
    let n = Array.length arr in
    let rec depth_zero i d =
      (* does the opening paren close only at the very end? *)
      if i >= n then false
      else
        match punct arr.(i) with
        | Some "(" -> depth_zero (i + 1) (d + 1)
        | Some ")" -> if d = 1 then i = n - 1 else depth_zero (i + 1) (d - 1)
        | _ -> depth_zero (i + 1) d
    in
    if n >= 2 && depth_zero 0 0 then
      strip_parens (Array.to_list (Array.sub arr 1 (n - 2)))
    else toks)
  | _ -> toks

(* split on the first occurrence of punct [p] at paren depth 0 *)
let split_at_depth0 p toks =
  let rec go acc depth = function
    | [] -> None
    | t :: rest -> (
      match punct t with
      | Some "(" -> go (t :: acc) (depth + 1) rest
      | Some ")" -> go (t :: acc) (depth - 1) rest
      | Some q when q = p && depth = 0 -> Some (List.rev acc, rest)
      | _ -> go (t :: acc) depth rest)
  in
  go [] 0 toks

let contains_depth0 p toks =
  match split_at_depth0 p toks with Some _ -> true | None -> false

(* literal 0 / -1 (after paren stripping) *)
let literal toks =
  match strip_parens toks with
  | [ { Lexer.kind = Lexer.Number "0"; _ } ] -> Some `Zero
  | [ { Lexer.kind = Lexer.Punct "-"; _ }; { Lexer.kind = Lexer.Number "1"; _ } ]
    ->
    Some `M1
  | _ -> None

(* [fork_sites]: assoc (line, col) -> site id for the fork/vfork calls
   of the expression being decoded. *)
let subject_of ~fork_sites toks =
  let rec go toks =
    let toks = strip_parens toks in
    match toks with
    | [ { Lexer.kind = Lexer.Ident v; _ } ] when not (Lexer.is_keyword v) ->
      Sub_var v
    | _ -> (
      (* assignment used as a value: (pid = fork()) — decode the rhs *)
      match split_at_depth0 "=" toks with
      | Some (_, rhs) -> go rhs
      | None -> (
        (* a fork()/vfork() call anywhere in the tokens *)
        let found =
          List.find_opt
            (fun t ->
              match t.Lexer.kind with
              | Lexer.Ident _ ->
                List.mem_assoc (t.Lexer.line, t.Lexer.col) fork_sites
              | _ -> false)
            toks
        in
        match found with
        | Some t -> Sub_site (List.assoc (t.Lexer.line, t.Lexer.col) fork_sites)
        | None -> Sub_other))
  in
  go toks

let rel_of_op ~lit op =
  match (lit, op) with
  | `Zero, "==" -> Some Req0
  | `Zero, "!=" -> Some Rne0
  | `Zero, "<" -> Some Rlt0
  | `Zero, ">" -> Some Rgt0
  | `Zero, "<=" -> Some Rle0
  | `Zero, ">=" -> Some Rge0
  | `M1, "==" -> Some Req_m1
  | `M1, "!=" -> Some Rne_m1
  | `M1, ">" -> Some Rge0 (* pid > -1  ≡  pid >= 0 *)
  | `M1, "<=" -> Some Rlt0 (* pid <= -1 ≡  pid < 0 *)
  | `M1, "<" -> Some Rlt0 (* pid < -1 ⇒ pid < 0 (over-approx.) *)
  | `M1, ">=" -> None (* pid >= -1: vacuous *)
  | _ -> None

let flip_op = function
  | "<" -> ">"
  | ">" -> "<"
  | "<=" -> ">="
  | ">=" -> "<="
  | op -> op (* == and != are symmetric *)

let rel_ops = [ "=="; "!="; "<="; ">="; "<"; ">" ]

let rec decode_guard ~fork_sites toks =
  let toks = strip_parens toks in
  match toks with
  | [] -> None
  | { Lexer.kind = Lexer.Punct "!"; _ } :: rest -> (
    match decode_guard ~fork_sites rest with
    | Some g -> Some { g with g_rel = negate_rel g.g_rel }
    | None -> None)
  | _ ->
    if contains_depth0 "||" toks then None
    else if contains_depth0 "&&" toks then begin
      (* first refinable conjunct; only the true edge is informative *)
      let rec conjuncts toks =
        match split_at_depth0 "&&" toks with
        | Some (l, r) -> l :: conjuncts r
        | None -> [ toks ]
      in
      List.find_map
        (fun c ->
          match decode_guard ~fork_sites c with
          | Some g -> Some { g with g_true_only = true }
          | None -> None)
        (conjuncts toks)
    end
    else begin
      let op =
        List.find_map
          (fun op ->
            match split_at_depth0 op toks with
            | Some (l, r) -> Some (op, l, r)
            | None -> None)
          rel_ops
      in
      match op with
      | Some (op, lhs, rhs) -> (
        let make subj_toks op lit =
          match rel_of_op ~lit op with
          | None -> None
          | Some rel -> (
            match subject_of ~fork_sites subj_toks with
            | Sub_other -> None
            | s -> Some { g_subject = s; g_rel = rel; g_true_only = false })
        in
        match (literal rhs, literal lhs) with
        | Some lit, _ -> make lhs op lit
        | None, Some lit -> make rhs (flip_op op) lit
        | None, None -> None)
      | None -> (
        (* no comparison: truthiness test — if (fork()) / if (pid) *)
        match subject_of ~fork_sites toks with
        | Sub_other -> None
        | s -> Some { g_subject = s; g_rel = Rne0; g_true_only = false })
    end

(* case label value, when it is an integer literal (possibly negated) *)
let case_literal toks =
  match strip_parens toks with
  | [ { Lexer.kind = Lexer.Number num; _ } ] -> int_of_string_opt num
  | [ { Lexer.kind = Lexer.Punct "-"; _ }; { Lexer.kind = Lexer.Number num; _ } ]
    -> (
    match int_of_string_opt num with Some v -> Some (-v) | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Build *)

type builder = {
  mutable b_nodes : node list;  (* reversed *)
  mutable b_count : int;
  mutable b_cur : int;
  mutable b_sites : site list;  (* reversed *)
  mutable b_nsites : int;
  b_labels : (string, int) Hashtbl.t;
  mutable b_breaks : int list;
  mutable b_continues : int list;
  mutable b_switches : ((arm * int) list ref * bool ref) list;
  b_noreturn : string list;
}

let node_of b id = List.nth b.b_nodes (b.b_count - 1 - id)

let fresh b =
  let n = { n_sites = []; n_term = T_dead } in
  b.b_nodes <- n :: b.b_nodes;
  b.b_count <- b.b_count + 1;
  b.b_count - 1

let seal b term = (node_of b b.b_cur).n_term <- term

let label_node b name =
  match Hashtbl.find_opt b.b_labels name with
  | Some id -> id
  | None ->
    let id = fresh b in
    Hashtbl.add b.b_labels name id;
    id

let add_call b (call : Cparse.call) =
  let s = { s_id = b.b_nsites; s_call = call } in
  b.b_sites <- s :: b.b_sites;
  b.b_nsites <- b.b_nsites + 1;
  let n = node_of b b.b_cur in
  n.n_sites <- s :: n.n_sites;
  s.s_id

(* Emit an expression's calls into the current node, in order. A
   noreturn call seals the node: the rest of the statement (and
   whatever follows) lands in a fresh, unreachable node. Returns the
   (line, col) -> site id map for the fork/vfork calls, for guards. *)
let emit_expr b (e : Cparse.expr) =
  let fork_sites = ref [] in
  List.iter
    (fun (call : Cparse.call) ->
      let id = add_call b call in
      if call.Cparse.c_name = "fork" || call.Cparse.c_name = "vfork" then
        fork_sites := ((call.Cparse.c_line, call.Cparse.c_col), id) :: !fork_sites;
      if List.mem call.Cparse.c_name b.b_noreturn then begin
        seal b T_dead;
        b.b_cur <- fresh b
      end)
    e.Cparse.x_calls;
  !fork_sites

let emit_opt b = function None -> [] | Some e -> emit_expr b e

let rec build_stmt b (s : Cparse.stmt) =
  match s with
  | Cparse.S_empty -> ()
  | Cparse.S_block l -> List.iter (build_stmt b) l
  | Cparse.S_expr e -> ignore (emit_expr b e)
  | Cparse.S_if { i_cond; i_then; i_else } ->
    let fork_sites = emit_expr b i_cond in
    let g = decode_guard ~fork_sites i_cond.Cparse.x_toks in
    let tnode = fresh b and fnode = fresh b and join = fresh b in
    seal b (T_branch { br_guard = g; br_true = tnode; br_false = fnode });
    b.b_cur <- tnode;
    build_stmt b i_then;
    seal b (T_jump join);
    b.b_cur <- fnode;
    (match i_else with Some s -> build_stmt b s | None -> ());
    seal b (T_jump join);
    b.b_cur <- join
  | Cparse.S_while { w_cond; w_body } ->
    let head = fresh b in
    seal b (T_jump head);
    b.b_cur <- head;
    let fork_sites = emit_expr b w_cond in
    let g = decode_guard ~fork_sites w_cond.Cparse.x_toks in
    let body = fresh b and join = fresh b in
    seal b (T_branch { br_guard = g; br_true = body; br_false = join });
    b.b_breaks <- join :: b.b_breaks;
    b.b_continues <- head :: b.b_continues;
    b.b_cur <- body;
    build_stmt b w_body;
    seal b (T_jump head);
    b.b_breaks <- List.tl b.b_breaks;
    b.b_continues <- List.tl b.b_continues;
    b.b_cur <- join
  | Cparse.S_do { d_body; d_cond } ->
    let body = fresh b in
    seal b (T_jump body);
    let cond = fresh b and join = fresh b in
    b.b_breaks <- join :: b.b_breaks;
    b.b_continues <- cond :: b.b_continues;
    b.b_cur <- body;
    build_stmt b d_body;
    seal b (T_jump cond);
    b.b_cur <- cond;
    let fork_sites = emit_expr b d_cond in
    let g = decode_guard ~fork_sites d_cond.Cparse.x_toks in
    seal b (T_branch { br_guard = g; br_true = body; br_false = join });
    b.b_breaks <- List.tl b.b_breaks;
    b.b_continues <- List.tl b.b_continues;
    b.b_cur <- join
  | Cparse.S_for { f_init; f_test; f_step; f_body } ->
    ignore (emit_opt b f_init);
    let head = fresh b in
    seal b (T_jump head);
    b.b_cur <- head;
    let body = fresh b and step = fresh b and join = fresh b in
    (match f_test with
    | Some test ->
      let fork_sites = emit_expr b test in
      let g = decode_guard ~fork_sites test.Cparse.x_toks in
      seal b (T_branch { br_guard = g; br_true = body; br_false = join })
    | None -> seal b (T_jump body) (* for(;;): join only via break *));
    b.b_breaks <- join :: b.b_breaks;
    b.b_continues <- step :: b.b_continues;
    b.b_cur <- body;
    build_stmt b f_body;
    seal b (T_jump step);
    b.b_cur <- step;
    ignore (emit_opt b f_step);
    seal b (T_jump head);
    b.b_breaks <- List.tl b.b_breaks;
    b.b_continues <- List.tl b.b_continues;
    b.b_cur <- join
  | Cparse.S_switch { sw_cond; sw_body } ->
    let fork_sites = emit_expr b sw_cond in
    let subject = subject_of ~fork_sites sw_cond.Cparse.x_toks in
    let join = fresh b in
    let arms = ref [] and has_default = ref false in
    let switch_node = b.b_cur in
    seal b T_dead (* patched below once the arms are known *);
    b.b_breaks <- join :: b.b_breaks;
    b.b_switches <- (arms, has_default) :: b.b_switches;
    (* statements before the first case label are unreachable *)
    b.b_cur <- fresh b;
    build_stmt b sw_body;
    seal b (T_jump join) (* fall out of the last arm *);
    b.b_breaks <- List.tl b.b_breaks;
    b.b_switches <- List.tl b.b_switches;
    let final_arms =
      let l = List.rev !arms in
      if !has_default then l else l @ [ (A_default, join) ]
    in
    (node_of b switch_node).n_term <-
      T_switch { sw_subject = subject; sw_arms = final_arms };
    b.b_cur <- join
  | Cparse.S_case { case_value; _ } -> (
    match b.b_switches with
    | [] -> () (* stray case: ignore *)
    | (arms, _) :: _ ->
      let target = fresh b in
      seal b (T_jump target) (* fallthrough from the previous arm *);
      b.b_cur <- target;
      arms := (A_case (case_literal case_value), target) :: !arms)
  | Cparse.S_default _ -> (
    match b.b_switches with
    | [] -> ()
    | (arms, has_default) :: _ ->
      let target = fresh b in
      seal b (T_jump target);
      b.b_cur <- target;
      has_default := true;
      arms := (A_default, target) :: !arms)
  | Cparse.S_label (name, _) ->
    let target = label_node b name in
    seal b (T_jump target);
    b.b_cur <- target
  | Cparse.S_goto (name, _) ->
    let target = if name = "" then None else Some (label_node b name) in
    seal b (match target with Some t -> T_jump t | None -> T_dead);
    b.b_cur <- fresh b
  | Cparse.S_return { r_expr; r_pos } ->
    ignore (emit_opt b r_expr);
    seal b (T_return r_pos);
    b.b_cur <- fresh b
  | Cparse.S_break pos -> (
    match b.b_breaks with
    | target :: _ ->
      seal b (T_jump target);
      b.b_cur <- fresh b
    | [] -> ignore pos (* stray break: no-op *))
  | Cparse.S_continue pos -> (
    match b.b_continues with
    | target :: _ ->
      seal b (T_jump target);
      b.b_cur <- fresh b
    | [] -> ignore pos)

let build ?(noreturn = default_noreturn) (fn : Cparse.func) : t =
  let b =
    {
      b_nodes = [];
      b_count = 0;
      b_cur = 0;
      b_sites = [];
      b_nsites = 0;
      b_labels = Hashtbl.create 8;
      b_breaks = [];
      b_continues = [];
      b_switches = [];
      b_noreturn = noreturn;
    }
  in
  let entry = fresh b in
  b.b_cur <- entry;
  List.iter (build_stmt b) fn.Cparse.fn_body;
  seal b (T_exit fn.Cparse.fn_end);
  let nodes = Array.of_list (List.rev b.b_nodes) in
  (* restore in-node source order of call events *)
  Array.iter (fun n -> n.n_sites <- List.rev n.n_sites) nodes;
  let sites = Array.of_list (List.rev b.b_sites) in
  { cfg_func = fn; nodes; entry; sites }

(* ------------------------------------------------------------------ *)

let successors term =
  match term with
  | T_jump j -> [ j ]
  | T_branch { br_true; br_false; _ } -> [ br_true; br_false ]
  | T_switch { sw_arms; _ } -> List.map snd sw_arms
  | T_return _ | T_exit _ | T_dead -> []

let reachable (g : t) : bool array =
  let seen = Array.make (Array.length g.nodes) false in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter go (successors g.nodes.(id).n_term)
    end
  in
  go g.entry;
  seen

let dead_sites (g : t) : site list =
  let seen = reachable g in
  let out = ref [] in
  Array.iteri
    (fun id n -> if not seen.(id) then out := List.rev_append n.n_sites !out)
    g.nodes;
  List.sort (fun a b -> compare a.s_id b.s_id) !out
