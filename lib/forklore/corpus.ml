type package = {
  name : string;
  source : string;
  truth : (Api.t * int) list;
}

let truth_count p api =
  match List.assoc_opt api p.truth with Some n -> n | None -> 0

type archetype =
  | Shell_out
  | Daemon
  | Spawner
  | Low_level
  | Pure

let archetype_weights =
  [ (Shell_out, 30); (Daemon, 40); (Spawner, 4); (Low_level, 6); (Pure, 20) ]

let pick_weighted rng weights =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  let roll = Prng.Splitmix.int rng ~bound:total in
  let rec go acc = function
    | [] -> invalid_arg "pick_weighted: empty"
    | (x, w) :: rest -> if roll < acc + w then x else go (acc + w) rest
  in
  go 0 weights

(* Which APIs an archetype calls, with min/max call sites each. *)
let profile = function
  | Shell_out -> [ (Api.System, 1, 6); (Api.Popen, 0, 4) ]
  | Daemon -> [ (Api.Fork, 1, 8); (Api.Exec, 1, 5); (Api.System, 0, 2) ]
  | Spawner -> [ (Api.Posix_spawn, 1, 4); (Api.Exec, 0, 1) ]
  | Low_level -> [ (Api.Vfork, 0, 2); (Api.Clone, 1, 3); (Api.Exec, 1, 3) ]
  | Pure -> []

let call_snippet rng api =
  let id =
    let ids = Api.identifiers api in
    List.nth ids (Prng.Splitmix.int rng ~bound:(List.length ids))
  in
  match api with
  | Api.Fork | Api.Vfork -> Printf.sprintf "  pid = %s();\n" id
  | Api.Clone ->
    Printf.sprintf "  pid = %s(child_fn, stack_top, flags, arg);\n" id
  | Api.Posix_spawn ->
    Printf.sprintf "  rc = %s(&pid, path, NULL, NULL, argv, envp);\n" id
  | Api.System -> Printf.sprintf "  rc = %s(command);\n" id
  | Api.Popen -> Printf.sprintf "  fp = %s(command, \"r\");\n" id
  | Api.Exec -> Printf.sprintf "  %s(path, argv, envp);\n" id

(* text that must NOT be counted *)
let distractors =
  [|
    "/* fork() considered harmful -- see HotOS'19 */\n";
    "// TODO: replace fork() with posix_spawn() someday\n";
    "  log(\"calling fork() now\");\n";
    "  my_fork_helper(ctx);\n";
    "  forkful_of_noodles(bowl);\n";
    "  int forked = 0;\n";
    "  char c = 'f';\n";
    "  refork_queue(q); /* system(\"reboot\") in a string: system(\"x\") */\n";
    "#include <unistd.h>\n";
    "  spawn_counter++;\n";
    "  pid_t fork(void); /* local prototype, not a call */\n";
  |]

let filler_functions =
  [|
    (fun i ->
      Printf.sprintf "static int helper_%d(int x) {\n  return x * 2 + 1;\n}\n\n" i);
    (fun i ->
      Printf.sprintf
        "static void log_%d(const char *msg) {\n  write(2, msg, strlen(msg));\n}\n\n"
        i);
    (fun i ->
      Printf.sprintf
        "static int parse_%d(const char *s, int *out) {\n  *out = atoi(s);\n  return *out != 0;\n}\n\n"
        i);
  |]

let generate_package rng index =
  let arch = pick_weighted rng archetype_weights in
  let truth = Hashtbl.create 4 in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "#include <stdio.h>\n#include <unistd.h>\n\n";
  (* some filler + distractor preamble *)
  for k = 0 to 1 + Prng.Splitmix.int rng ~bound:3 do
    let pick = Prng.Splitmix.int rng ~bound:(Array.length filler_functions) in
    Buffer.add_string buf (filler_functions.(pick) ((10 * index) + k))
  done;
  Buffer.add_string buf "int main(int argc, char **argv) {\n";
  Buffer.add_string buf "  int rc = 0; int pid = 0; void *fp = NULL;\n";
  List.iter
    (fun (api, lo, hi) ->
      let calls = lo + Prng.Splitmix.int rng ~bound:(hi - lo + 1) in
      for _ = 1 to calls do
        Buffer.add_string buf
          distractors.(Prng.Splitmix.int rng ~bound:(Array.length distractors));
        Buffer.add_string buf (call_snippet rng api)
      done;
      if calls > 0 then
        Hashtbl.replace truth api
          (calls + Option.value ~default:0 (Hashtbl.find_opt truth api)))
    (profile arch);
  Buffer.add_string buf
    distractors.(Prng.Splitmix.int rng ~bound:(Array.length distractors));
  Buffer.add_string buf "  return rc + pid + (fp != NULL);\n}\n";
  {
    name = Printf.sprintf "pkg-%04d" index;
    source = Buffer.contents buf;
    truth =
      List.filter_map
        (fun api ->
          Option.map (fun n -> (api, n)) (Hashtbl.find_opt truth api))
        Api.all;
  }

let generate ?(packages = 200) ~seed () =
  if packages < 0 then invalid_arg "Corpus.generate: negative count";
  let rng = Prng.Splitmix.create ~seed in
  List.init packages (fun i -> generate_package rng i)

(* ------------------------------------------------------------------ *)
(* Hazard fixtures for forklint: hand-written programs exhibiting the
   paper's fork hazards, each labelled with the exact findings
   (rule id, line, col) the rule engine must produce, in
   Diagnostic.compare order. Columns are 1-based. *)

type hazard = {
  hz_name : string;
  hz_source : string;
  hz_expected : (string * int * int) list;  (* v2 (default rules) truth *)
  hz_v1 : (string * int * int) list;  (* frozen v1 baseline's output *)
}

let src lines = String.concat "\n" lines ^ "\n"

let threaded_noexec =
  {
    hz_name = "threaded_noexec.c";
    hz_source =
      src
        [
          "#include <pthread.h>";
          "#include <stdio.h>";
          "#include <fcntl.h>";
          "";
          "static void *worker(void *arg) {";
          "    return arg;";
          "}";
          "";
          "int main(void) {";
          "    pthread_t th;";
          "    pthread_create(&th, NULL, worker, NULL);";
          "    printf(\"hello from the parent\\n\");";
          "    int fd = open(\"/tmp/scratch\", O_RDWR);";
          "    pid_t pid = fork();";
          "    if (pid == 0) {";
          "        handle_request(fd);";
          "    }";
          "    return 0;";
          "}";
        ];
    hz_expected =
      [
        ("fd-no-cloexec", 13, 14);
        ("fork-in-threads", 14, 17);
        ("fork-no-exec", 14, 17);
        ("stdio-before-fork", 14, 17);
        (* v2-only: the child falls through `if (pid == 0)` to main's
           return — invisible to the token baseline *)
        ("child-path-return", 18, 5);
      ];
    hz_v1 =
      [
        ("fd-no-cloexec", 13, 14);
        ("fork-in-threads", 14, 17);
        ("fork-no-exec", 14, 17);
        ("stdio-before-fork", 14, 17);
      ];
  }

let clean_spawn =
  {
    hz_name = "clean_spawn.c";
    hz_source =
      src
        [
          "#include <spawn.h>";
          "";
          "int run(char *const argv[], char *const envp[]) {";
          "    pid_t pid;";
          "    int rc = posix_spawn(&pid, argv[0], NULL, NULL, argv, envp);";
          "    return rc == 0 ? (int)pid : -1;";
          "}";
        ];
    hz_expected = [];
    hz_v1 = [];
  }

let vfork_bad =
  {
    hz_name = "vfork_bad.c";
    hz_source =
      src
        [
          "#include <unistd.h>";
          "#include <stdio.h>";
          "";
          "int main(int argc, char **argv) {";
          "    pid_t pid = vfork();";
          "    if (pid == 0) {";
          "        printf(\"child %d\\n\", argc);";
          "        execv(argv[1], argv + 1);";
          "        _exit(127);";
          "    }";
          "    return 0;";
          "}";
        ];
    hz_expected = [ ("vfork-misuse", 7, 9) ];
    hz_v1 = [ ("vfork-misuse", 7, 9) ];
  }

let vfork_no_exec =
  {
    hz_name = "vfork_no_exec.c";
    hz_source =
      src
        [
          "#include <unistd.h>";
          "";
          "int main(void) {";
          "    if (vfork() == 0) {";
          "        do_work();";
          "    }";
          "    return 0;";
          "}";
        ];
    hz_expected =
      [
        (* no child path escapes; the do_work call and the return are
           both inside the vfork child window *)
        ("vfork-misuse", 4, 9);
        ("vfork-misuse", 5, 9);
        ("vfork-misuse", 7, 5);
      ];
    hz_v1 = [ ("vfork-misuse", 4, 9) ];
  }

let stdio_fork =
  {
    hz_name = "stdio_fork.c";
    hz_source =
      src
        [
          "#include <stdio.h>";
          "#include <unistd.h>";
          "";
          "int main(void) {";
          "    printf(\"starting worker\\n\");";
          "    pid_t pid = fork();";
          "    if (pid == 0) {";
          "        execlp(\"worker\", \"worker\", (char *)0);";
          "        _exit(127);";
          "    }";
          "    return pid > 0 ? 0 : 1;";
          "}";
        ];
    hz_expected = [ ("stdio-before-fork", 6, 17) ];
    hz_v1 = [ ("stdio-before-fork", 6, 17) ];
  }

let child_malloc =
  {
    hz_name = "child_malloc.c";
    hz_source =
      src
        [
          "#include <stdlib.h>";
          "#include <unistd.h>";
          "";
          "int main(int argc, char **argv) {";
          "    pid_t pid = fork();";
          "    if (pid == 0) {";
          "        char *buf = malloc(4096);";
          "        build_argv(buf, argc);";
          "        execv(argv[1], argv + 1);";
          "        _exit(127);";
          "    }";
          "    return 0;";
          "}";
        ];
    hz_expected = [ ("unsafe-child-work", 7, 21) ];
    hz_v1 = [ ("unsafe-child-work", 7, 21) ];
  }

let cloexec_leak =
  {
    hz_name = "cloexec_leak.c";
    hz_source =
      src
        [
          "#include <fcntl.h>";
          "#include <unistd.h>";
          "";
          "int main(void) {";
          "    int log_fd = open(\"/var/log/app.log\", O_WRONLY | O_APPEND);";
          "    int safe_fd = open(\"/etc/config\", O_RDONLY | O_CLOEXEC);";
          "    if (fork() == 0) {";
          "        execl(\"/bin/worker\", \"worker\", (char *)0);";
          "        _exit(127);";
          "    }";
          "    return log_fd + safe_fd;";
          "}";
        ];
    hz_expected = [ ("fd-no-cloexec", 5, 18) ];
    hz_v1 = [ ("fd-no-cloexec", 5, 18) ];
  }

(* --- v2 precision fixtures: each pins a v1 false-positive class that
   the path-sensitive rules must NOT report, or a hazard only the CFG
   can see. hz_v1 records the baseline's (wrong) output verbatim. *)

(* Parent-path-only work: malloc/printf/free run only when pid > 0.
   v1's token window cannot tell the branches apart and flags all
   three; the dataflow knows the path's role excludes the child. *)
let parent_path_work =
  {
    hz_name = "parent_path_work.c";
    hz_source =
      src
        [
          "#include <stdio.h>";
          "#include <stdlib.h>";
          "#include <unistd.h>";
          "#include <sys/wait.h>";
          "";
          "int main(int argc, char **argv) {";
          "    pid_t pid = fork();";
          "    if (pid > 0) {";
          "        char *line = malloc(256);";
          "        printf(\"parent waiting for %d\\n\", pid);";
          "        free(line);";
          "        waitpid(pid, NULL, 0);";
          "    } else if (pid == 0) {";
          "        execv(argv[1], argv + 1);";
          "        _exit(127);";
          "    }";
          "    return 0;";
          "}";
        ];
    hz_expected = [];
    hz_v1 =
      [
        ("unsafe-child-work", 9, 22);
        ("unsafe-child-work", 10, 9);
        ("unsafe-child-work", 11, 9);
      ];
  }

(* Flush via a helper: the one-level summary knows flush_all reaches
   fflush, so the dirty-stdio fact dies before the fork. v1 only
   recognises a literal fflush call. *)
let helper_flush =
  {
    hz_name = "helper_flush.c";
    hz_source =
      src
        [
          "#include <stdio.h>";
          "#include <unistd.h>";
          "";
          "static void flush_all(void) {";
          "    fflush(NULL);";
          "}";
          "";
          "int main(void) {";
          "    printf(\"starting\\n\");";
          "    flush_all();";
          "    pid_t pid = fork();";
          "    if (pid == 0) {";
          "        execlp(\"worker\", \"worker\", (char *)0);";
          "        _exit(127);";
          "    }";
          "    return pid < 0 ? 1 : 0;";
          "}";
        ];
    hz_expected = [];
    hz_v1 = [ ("stdio-before-fork", 11, 17) ];
  }

(* The stdio write lives in a different function that main never calls
   before forking. v1 scans the whole file in token order and blames
   the fork anyway; per-function CFGs keep the facts apart. *)
let cross_function =
  {
    hz_name = "cross_function.c";
    hz_source =
      src
        [
          "#include <stdio.h>";
          "#include <unistd.h>";
          "";
          "static void logger(const char *msg) {";
          "    printf(\"%s\\n\", msg);";
          "}";
          "";
          "int main(int argc, char **argv) {";
          "    pid_t pid = fork();";
          "    if (pid == 0) {";
          "        execv(argv[1], argv + 1);";
          "        _exit(127);";
          "    }";
          "    logger(\"forked\");";
          "    return 0;";
          "}";
        ];
    hz_expected = [];
    hz_v1 = [ ("stdio-before-fork", 9, 17) ];
  }

(* A mutex held across the fork: only the v2 lock dataflow sees it. *)
let lock_across_fork =
  {
    hz_name = "lock_across_fork.c";
    hz_source =
      src
        [
          "#include <pthread.h>";
          "#include <unistd.h>";
          "";
          "static pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;";
          "";
          "int main(int argc, char **argv) {";
          "    pthread_mutex_lock(&mu);";
          "    pid_t pid = fork();";
          "    if (pid == 0) {";
          "        execv(argv[1], argv + 1);";
          "        _exit(127);";
          "    }";
          "    pthread_mutex_unlock(&mu);";
          "    return 0;";
          "}";
        ];
    hz_expected = [ ("lock-across-fork", 8, 17) ];
    hz_v1 = [];
  }

(* The child execs only when access() succeeds; on the failure path it
   falls through to `return -1` and keeps running the caller's code.
   v1 sees an exec in the region and reports nothing. *)
let child_fallthrough =
  {
    hz_name = "child_fallthrough.c";
    hz_source =
      src
        [
          "#include <unistd.h>";
          "";
          "int spawn_helper(const char *path) {";
          "    pid_t pid = fork();";
          "    if (pid == 0) {";
          "        if (access(path, X_OK) == 0) {";
          "            execl(path, path, (char *)0);";
          "        }";
          "        return -1;";
          "    }";
          "    return (int)pid;";
          "}";
        ];
    hz_expected = [ ("child-path-return", 9, 9) ];
    hz_v1 = [];
  }

let hazards =
  [
    threaded_noexec;
    clean_spawn;
    vfork_bad;
    vfork_no_exec;
    stdio_fork;
    child_malloc;
    cloexec_leak;
    parent_path_work;
    helper_flush;
    cross_function;
    lock_across_fork;
    child_fallthrough;
  ]
