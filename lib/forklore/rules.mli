(** The forklint rule registry.

    Each rule encodes one of the paper's fork hazards, with a severity,
    the paper section it operationalises and a fix hint naming the
    spawnlib equivalent. The default {!all} rules are v2 {e dataflow}
    rules: they consume {!Dataflow} observations computed over
    per-function {!Cfg}s, so a hazard is only reported on a path that
    can actually be the forked child, stdio facts are killed by
    [fflush], and fd facts must reach a fork on some path. The frozen
    {!v1} token-window heuristics (same rule ids) remain available as
    the measured baseline for the corpus precision experiment.
    [Ksim.Lint] reuses the same registry metadata for its dynamic
    (trace-replay) findings, so static and dynamic layers report
    identical rule ids.

    Shipped rules:
    - [fork-in-threads] (Error): fork on a path where threads were
      created.
    - [fork-no-exec] (Warn): no child path reaches exec*/_exit.
    - [stdio-before-fork] (Warn): unflushed stdio reaches a fork on
      some path.
    - [unsafe-child-work] (Warn): a function on the {!Signal_safety}
      deny list (or a local function summarised as reaching one) on a
      child path before exec.
    - [fd-no-cloexec] (Warn): an fd created without CLOEXEC reaches a
      fork/spawn on some path.
    - [vfork-misuse] (Error): vfork child doing anything beyond
      exec/_exit (including return).
    - [lock-across-fork] (Error): a pthread mutex is held at a fork
      site. v2-only.
    - [child-path-return] (Warn): some child path reaches
      return/function-exit without exec*/_exit. v2-only. *)

type call = {
  name : string;
  line : int;
  col : int;
  tok_index : int;
  depth : int;
}

type ctx = {
  file : string;
  toks : Lexer.token array;
  depths : int array;
  calls : call list;
  results : Dataflow.result list;  (** one per parsed function *)
}

type finding = { f_line : int; f_col : int; f_message : string }

type t = {
  id : string;
  severity : Diagnostic.severity;
  summary : string;
  citation : string;
  hint : string;
  check : ctx -> finding list;
}

val all : t list
(** The v2 dataflow registry, in documentation order. *)

val v1 : t list
(** The frozen token-window baseline (six rules, same ids as their v2
    rewrites): what [exp_survey]'s precision table measures against. *)

val find : string -> t option
(** Look a rule up by id in {!all} (also used by [Ksim.Lint]). *)

val build_ctx : file:string -> Lexer.token list -> ctx

val make_diagnostic :
  t -> file:string -> line:int -> col:int -> message:string -> Diagnostic.t
(** Attach registry metadata (severity, citation, hint) to a finding. *)

val check_string : ?rules:t list -> file:string -> string -> Diagnostic.t list
(** Run the registry (default: {!all}) over one file's source; findings
    come back in {!Diagnostic.compare} order. *)

val check_file : ?rules:t list -> string -> (Diagnostic.t list, string) result
(** [Error] carries the I/O failure message. *)
