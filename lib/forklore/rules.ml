(* The forklint rule registry.

   v2: the default rules are dataflow rules — they consume the
   {!Dataflow} observations computed over per-function {!Cfg}s, so a
   hazard is only reported on a path that can actually be the forked
   child (the true edge of [if (pid == 0)]), stdio facts are killed by
   fflush, and fd facts must *reach* a fork on some path. The v1 token
   rules (same ids, whole-file token-window heuristics — the level of
   approximation the paper's own survey works at) are kept as {!v1}
   so the corpus experiment can measure the precision win.

   Both layers share ids and metadata with [Ksim.Lint], the dynamic
   (trace-replay) checker, so static and dynamic findings cross-
   validate. *)

type call = {
  name : string;
  line : int;
  col : int;
  tok_index : int;
  depth : int;  (** brace depth at the call site *)
}

type ctx = {
  file : string;
  toks : Lexer.token array;
  depths : int array;  (** brace depth surrounding each token *)
  calls : call list;  (** in source order *)
  results : Dataflow.result list;  (** one per parsed function *)
}

type finding = { f_line : int; f_col : int; f_message : string }

type t = {
  id : string;
  severity : Diagnostic.severity;
  summary : string;
  citation : string;
  hint : string;
  check : ctx -> finding list;
}

(* ------------------------------------------------------------------ *)
(* Context construction *)

let build_ctx ~file toks =
  let results = Dataflow.analyze_tokens toks in
  let toks = Array.of_list toks in
  let n = Array.length toks in
  let depths = Array.make n 0 in
  let d = ref 0 in
  for i = 0 to n - 1 do
    match toks.(i).Lexer.kind with
    | Lexer.Punct "{" ->
      depths.(i) <- !d;
      incr d
    | Lexer.Punct "}" ->
      d := max 0 (!d - 1);
      depths.(i) <- !d
    | _ -> depths.(i) <- !d
  done;
  let calls = ref [] in
  for i = 0 to n - 2 do
    match (toks.(i).Lexer.kind, toks.(i + 1).Lexer.kind) with
    | Lexer.Ident name, Lexer.Punct "(" when not (Lexer.is_keyword name) ->
      calls :=
        {
          name;
          line = toks.(i).Lexer.line;
          col = toks.(i).Lexer.col;
          tok_index = i;
          depth = depths.(i);
        }
        :: !calls
    | _ -> ()
  done;
  { file; toks; depths; calls = List.rev !calls; results }

(* First token index after [idx] that closes the enclosing function:
   a '}' back at depth 0. Array length when the file ends first. *)
let region_end ctx idx =
  let n = Array.length ctx.toks in
  let rec go i =
    if i >= n then n
    else
      match ctx.toks.(i).Lexer.kind with
      | Lexer.Punct "}" when ctx.depths.(i) = 0 -> i
      | _ -> go (i + 1)
  in
  go (idx + 1)

let calls_between ctx a b =
  List.filter (fun c -> c.tok_index > a && c.tok_index < b) ctx.calls

(* Tokens of a call's argument list: everything between its '(' and the
   matching ')'. *)
let arg_tokens ctx call =
  let n = Array.length ctx.toks in
  let out = ref [] in
  let rec go i depth =
    if i >= n then ()
    else
      match ctx.toks.(i).Lexer.kind with
      | Lexer.Punct "(" ->
        if depth > 0 then out := ctx.toks.(i) :: !out;
        go (i + 1) (depth + 1)
      | Lexer.Punct ")" ->
        if depth > 1 then begin
          out := ctx.toks.(i) :: !out;
          go (i + 1) (depth - 1)
        end
      | _ ->
        if depth > 0 then out := ctx.toks.(i) :: !out;
        go (i + 1) depth
  in
  go (call.tok_index + 1) 0;
  List.rev !out

let has_ident name toks =
  List.exists
    (fun t -> match t.Lexer.kind with Lexer.Ident i -> i = name | _ -> false)
    toks

(* ------------------------------------------------------------------ *)
(* Name sets (the v1 token rules keep their own lists so their
   behaviour is frozen as the measured baseline) *)

let fork_names = Dataflow.fork_names
let vfork_names = Dataflow.vfork_names

let creation_names =
  [ "fork"; "vfork"; "clone"; "clone3"; "posix_spawn"; "posix_spawnp";
    "system"; "popen" ]

let escape_names = Dataflow.escape_names
let stdio_names = Dataflow.stdio_names

(* not async-signal-safe (or stdio-flushing) work that must not run in
   the window between fork and exec — v1's short list; v2 consults the
   full {!Signal_safety} table instead *)
let unsafe_child_names =
  [ "malloc"; "calloc"; "realloc"; "free"; "printf"; "fprintf"; "puts";
    "fopen"; "fclose"; "exit"; "pthread_mutex_lock"; "pthread_mutex_unlock";
    "pthread_create" ]

let mem name names = List.mem name names

let first_call ctx names =
  List.find_opt (fun c -> mem c.name names) ctx.calls

(* first escaping call (exec*/_exit) in (a, b) *)
let first_escape between =
  List.find_opt (fun c -> mem c.name escape_names) between

(* ------------------------------------------------------------------ *)
(* Shared metadata: id, severity, citation and hint are identical in
   the v1 and v2 variants of a rule, so diagnostics stay comparable. *)

let finding c msg = { f_line = c.line; f_col = c.col; f_message = msg }

let meta_fork_in_threads =
  ( "fork-in-threads",
    Diagnostic.Error,
    "fork() in a program that creates threads",
    "\194\1672.1 \"fork doesn't compose\": only the calling thread is \
     replicated; locks held by other threads stay locked forever in the \
     child",
    "create the child with posix_spawn (Spawnlib.Spawn) instead of \
     fork+exec; it does not copy thread or lock state" )

let meta_fork_no_exec =
  ( "fork-no-exec",
    Diagnostic.Warn,
    "fork() whose child branch never reaches exec or _exit",
    "\194\1672/\194\1674 \"fork is no longer simple\": a child that keeps \
     running inherits the full parent state (buffers, fds, locks, secrets)",
    "if the child only runs another program, exec or _exit on the child \
     branch; if it is a worker, spawn a fresh worker image with posix_spawn"
  )

let meta_stdio_before_fork =
  ( "stdio-before-fork",
    Diagnostic.Warn,
    "buffered stdio written before fork without fflush",
    "\194\1672.1: user-space stdio buffers are duplicated by fork and \
     flushed by both processes, emitting output twice",
    "fflush(NULL) immediately before fork, write(2) directly, or use \
     posix_spawn which shares no buffers" )

let meta_unsafe_child_work =
  ( "unsafe-child-work",
    Diagnostic.Warn,
    "non-async-signal-safe work between fork and exec",
    "\194\1672.1: after forking a multithreaded process only \
     async-signal-safe code is safe in the child until exec; malloc or \
     stdio can deadlock on an orphaned lock",
    "express fd redirections and attribute changes as posix_spawn file \
     actions/attributes and delete the in-child setup code" )

let meta_fd_no_cloexec =
  ( "fd-no-cloexec",
    Diagnostic.Warn,
    "fd created without CLOEXEC in a file that forks or spawns",
    "\194\1673 \"fork is insecure by default\": every fd leaks into every \
     child unless explicitly marked close-on-exec",
    "open with O_CLOEXEC (pipe2/SOCK_CLOEXEC for pipes and sockets) and \
     pass the fds a child should receive via posix_spawn file actions" )

let meta_vfork_misuse =
  ( "vfork-misuse",
    Diagnostic.Error,
    "vfork child doing anything beyond exec/_exit",
    "\194\1675/\194\1678: the vfork child borrows the parent's address \
     space and stack; anything but an immediate execve/_exit corrupts the \
     parent",
    "keep the vfork child to execve/_exit only (what \
     spawnlib/spawn_stubs.c does), or use posix_spawn" )

let meta_lock_across_fork =
  ( "lock-across-fork",
    Diagnostic.Error,
    "fork() while holding a pthread mutex",
    "\194\1672.1: fork replicates the mutex in its locked state into the \
     child; with other threads gone, nothing will ever unlock the child's \
     copy",
    "unlock (or scope the critical section to exclude process creation) \
     before forking, or use posix_spawn and keep the lock parent-only" )

let meta_child_path_return =
  ( "child-path-return",
    Diagnostic.Warn,
    "fork child path falls through into parent code",
    "\194\1672/\194\1674: a child that returns from the forking function \
     keeps executing the caller's logic — double side effects, duplicated \
     output, and two processes believing they are the parent",
    "end every child branch with exec*/_exit(127); never let it reach the \
     function's return" )

let make ~check (id, severity, summary, citation, hint) =
  { id; severity; summary; citation; hint; check }

(* ------------------------------------------------------------------ *)
(* v1: the frozen token-window baseline *)

let v1_fork_in_threads =
  make meta_fork_in_threads ~check:(fun ctx ->
      match first_call ctx [ "pthread_create"; "thrd_create" ] with
      | None -> []
      | Some tc ->
        List.filter_map
          (fun c ->
            if mem c.name fork_names && c.tok_index > tc.tok_index then
              Some
                (finding c
                   (Printf.sprintf
                      "%s() after this file starts threads (pthread_create \
                       at line %d); in the child only the forking thread \
                       exists and any mutex another thread held is orphaned"
                      c.name tc.line))
            else None)
          ctx.calls)

let v1_fork_no_exec =
  make meta_fork_no_exec ~check:(fun ctx ->
      List.filter_map
        (fun c ->
          if not (mem c.name fork_names) then None
          else
            let stop = region_end ctx c.tok_index in
            let later = calls_between ctx c.tok_index stop in
            if first_escape later <> None then None
            else
              Some
                (finding c
                   (Printf.sprintf
                      "%s() but no exec*/_exit is reachable in the rest of \
                       the enclosing function: the child keeps running with \
                       the parent's entire inherited state"
                      c.name)))
        ctx.calls)

let v1_stdio_before_fork =
  make meta_stdio_before_fork ~check:(fun ctx ->
      let last_stdio = ref None in
      List.filter_map
        (fun c ->
          if mem c.name stdio_names then begin
            last_stdio := Some c;
            None
          end
          else if c.name = "fflush" then begin
            last_stdio := None;
            None
          end
          else if mem c.name (fork_names @ vfork_names) then
            match !last_stdio with
            | None -> None
            | Some s ->
              Some
                (finding c
                   (Printf.sprintf
                      "%s() with unflushed stdio output (%s at line %d): \
                       the child inherits and may re-flush the same bytes"
                      c.name s.name s.line))
          else None)
        ctx.calls)

let v1_unsafe_child_work =
  make meta_unsafe_child_work ~check:(fun ctx ->
      List.concat_map
        (fun c ->
          if not (mem c.name fork_names) then []
          else
            let stop = region_end ctx c.tok_index in
            let later = calls_between ctx c.tok_index stop in
            match first_escape later with
            | None -> [] (* fork-no-exec's business *)
            | Some e ->
              List.filter_map
                (fun o ->
                  if
                    o.tok_index < e.tok_index && mem o.name unsafe_child_names
                  then
                    Some
                      (finding o
                         (Printf.sprintf
                            "%s() between fork (line %d) and %s (line %d); \
                             it is not async-signal-safe and can deadlock \
                             in the forked child"
                            o.name c.line e.name e.line))
                  else None)
                later)
        ctx.calls)

let v1_fd_no_cloexec =
  make meta_fd_no_cloexec ~check:(fun ctx ->
      if first_call ctx creation_names = None then []
      else
        List.filter_map
          (fun c ->
            match c.name with
            | "open" | "open64" | "openat" ->
              if has_ident "O_CLOEXEC" (arg_tokens ctx c) then None
              else
                Some
                  (finding c
                     (Printf.sprintf
                        "%s() without O_CLOEXEC in a file that creates \
                         processes: the fd is inherited by every child"
                        c.name))
            | "socket" ->
              if has_ident "SOCK_CLOEXEC" (arg_tokens ctx c) then None
              else
                Some
                  (finding c
                     "socket() without SOCK_CLOEXEC in a file that creates \
                      processes: the fd is inherited by every child")
            | "pipe" ->
              Some
                (finding c
                   "pipe() cannot set CLOEXEC atomically; use pipe2(fds, \
                    O_CLOEXEC)")
            | "creat" ->
              Some
                (finding c
                   "creat() cannot take O_CLOEXEC; use open(..., O_CREAT | \
                    O_CLOEXEC, ...)")
            | _ -> None)
          ctx.calls)

let v1_vfork_misuse =
  make meta_vfork_misuse ~check:(fun ctx ->
      List.concat_map
        (fun c ->
          if not (mem c.name vfork_names) then []
          else
            let stop = region_end ctx c.tok_index in
            let later = calls_between ctx c.tok_index stop in
            match first_escape later with
            | None ->
              [
                finding c
                  "vfork() but no execve/_exit is reachable in the \
                   enclosing function; the child shares the parent's \
                   address space and stack";
              ]
            | Some e ->
              let bad_calls =
                List.filter_map
                  (fun o ->
                    if
                      o.tok_index < e.tok_index
                      && not (mem o.name escape_names)
                    then
                      Some
                        (finding o
                           (Printf.sprintf
                              "%s() in the vfork child window (vfork at \
                               line %d, %s at line %d): only execve/_exit \
                               are permitted there"
                              o.name c.line e.name e.line))
                    else None)
                  later
              in
              let bad_return =
                let rec scan i =
                  if i >= e.tok_index then []
                  else
                    match ctx.toks.(i).Lexer.kind with
                    | Lexer.Ident "return" ->
                      [
                        {
                          f_line = ctx.toks.(i).Lexer.line;
                          f_col = ctx.toks.(i).Lexer.col;
                          f_message =
                            Printf.sprintf
                              "return in the vfork child window (vfork at \
                               line %d): returning from the borrowed stack \
                               frame is undefined behaviour"
                              c.line;
                        };
                      ]
                    | _ -> scan (i + 1)
                in
                scan (c.tok_index + 1)
              in
              bad_calls @ bad_return)
        ctx.calls)

let v1 =
  [
    v1_fork_in_threads;
    v1_fork_no_exec;
    v1_stdio_before_fork;
    v1_unsafe_child_work;
    v1_fd_no_cloexec;
    v1_vfork_misuse;
  ]

(* ------------------------------------------------------------------ *)
(* v2: dataflow rules over {!Dataflow.obs} *)

let at (c : Cparse.call) msg =
  { f_line = c.Cparse.c_line; f_col = c.Cparse.c_col; f_message = msg }

let at_pos (p : Cparse.pos) msg =
  { f_line = p.Cparse.p_line; f_col = p.Cparse.p_col; f_message = msg }

(* one finding per source position (an fd can reach several forks; the
   defect is still the one open() call) *)
let dedupe findings =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun f ->
      let k = (f.f_line, f.f_col) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    findings

let obs_findings ctx f =
  dedupe
    (List.concat_map
       (fun (r : Dataflow.result) -> List.filter_map f r.Dataflow.res_obs)
       ctx.results)

let rule_fork_in_threads =
  make meta_fork_in_threads ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_threads_at_fork { o_fork; o_thread } ->
          Some
            (at o_fork
               (Printf.sprintf
                  "%s() on a path where threads exist (%s at line %d); in \
                   the child only the forking thread exists and any mutex \
                   another thread held is orphaned"
                  o_fork.Cparse.c_name o_thread.Cparse.c_name
                  o_thread.Cparse.c_line))
        | _ -> None))

let rule_fork_no_exec =
  make meta_fork_no_exec ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_fork_no_escape c ->
          Some
            (at c
               (Printf.sprintf
                  "%s() but no exec*/_exit is reachable on any child path: \
                   the child keeps running with the parent's entire \
                   inherited state"
                  c.Cparse.c_name))
        | _ -> None))

let rule_stdio_before_fork =
  make meta_stdio_before_fork ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_stdio_at_fork { o_fork; o_stdio } ->
          Some
            (at o_fork
               (Printf.sprintf
                  "%s() with unflushed stdio output on this path (%s at \
                   line %d): the child inherits and may re-flush the same \
                   bytes"
                  o_fork.Cparse.c_name o_stdio.Cparse.c_name
                  o_stdio.Cparse.c_line))
        | _ -> None))

let rule_unsafe_child_work =
  make meta_unsafe_child_work ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_unsafe_child { o_at; o_fork; o_via } ->
          let callee =
            match o_via with
            | None -> Printf.sprintf "%s()" o_at.Cparse.c_name
            | Some u ->
              Printf.sprintf "%s() (which calls %s)" o_at.Cparse.c_name u
          in
          Some
            (at o_at
               (Printf.sprintf
                  "%s on a child path of fork (line %d) before exec; it is \
                   not async-signal-safe (POSIX.1-2017 XSH \194\1672.4.3) \
                   and can deadlock in the forked child"
                  callee o_fork.Cparse.c_line))
        | _ -> None))

let rule_fd_no_cloexec =
  make meta_fd_no_cloexec ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_fd_leak { o_open; o_spawn } ->
          let reach =
            Printf.sprintf "reaches %s() at line %d" o_spawn.Cparse.c_name
              o_spawn.Cparse.c_line
          in
          let msg =
            match o_open.Cparse.c_name with
            | "socket" ->
              Printf.sprintf
                "socket() without SOCK_CLOEXEC %s: the fd is inherited by \
                 the child"
                reach
            | "pipe" ->
              Printf.sprintf
                "pipe() cannot set CLOEXEC atomically and %s; use \
                 pipe2(fds, O_CLOEXEC)"
                reach
            | "creat" ->
              Printf.sprintf
                "creat() cannot take O_CLOEXEC and %s; use open(..., \
                 O_CREAT | O_CLOEXEC, ...)"
                reach
            | name ->
              Printf.sprintf
                "%s() without O_CLOEXEC %s: the fd is inherited by the \
                 child"
                name reach
          in
          Some (at o_open msg)
        | _ -> None))

let rule_vfork_misuse =
  make meta_vfork_misuse ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_vfork_no_escape c ->
          Some
            (at c
               "vfork() but no execve/_exit is reachable on any child \
                path; the child shares the parent's address space and \
                stack")
        | Dataflow.O_vfork_call { o_at; o_vfork } ->
          Some
            (at o_at
               (Printf.sprintf
                  "%s() on a child path of vfork (line %d): only \
                   execve/_exit are permitted there"
                  o_at.Cparse.c_name o_vfork.Cparse.c_line))
        | Dataflow.O_vfork_return { o_pos; o_vfork } ->
          Some
            (at_pos o_pos
               (Printf.sprintf
                  "return reachable from the vfork child (vfork at line \
                   %d): returning from the borrowed stack frame is \
                   undefined behaviour"
                  o_vfork.Cparse.c_line))
        | _ -> None))

let rule_lock_across_fork =
  make meta_lock_across_fork ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_lock_at_fork { o_fork; o_lock } ->
          Some
            (at o_fork
               (Printf.sprintf
                  "%s() while a mutex is held (%s at line %d): the child's \
                   copy of the mutex stays locked forever"
                  o_fork.Cparse.c_name o_lock.Cparse.c_name
                  o_lock.Cparse.c_line))
        | _ -> None))

let rule_child_path_return =
  make meta_child_path_return ~check:(fun ctx ->
      obs_findings ctx (function
        | Dataflow.O_child_return { o_pos; o_fork } ->
          Some
            (at_pos o_pos
               (Printf.sprintf
                  "this return is reachable from the child of fork (line \
                   %d) without exec*/_exit: the child falls through into \
                   the parent's code"
                  o_fork.Cparse.c_line))
        | _ -> None))

let all =
  [
    rule_fork_in_threads;
    rule_fork_no_exec;
    rule_stdio_before_fork;
    rule_unsafe_child_work;
    rule_fd_no_cloexec;
    rule_vfork_misuse;
    rule_lock_across_fork;
    rule_child_path_return;
  ]

let find id = List.find_opt (fun r -> r.id = id) all

(* ------------------------------------------------------------------ *)
(* Engine *)

let make_diagnostic r ~file ~line ~col ~message =
  {
    Diagnostic.rule = r.id;
    severity = r.severity;
    file;
    line;
    col;
    message;
    citation = r.citation;
    hint = r.hint;
  }

let check_string ?(rules = all) ~file src =
  let ctx = build_ctx ~file (Lexer.tokenize src) in
  List.concat_map
    (fun r ->
      List.map
        (fun f ->
          make_diagnostic r ~file ~line:f.f_line ~col:f.f_col
            ~message:f.f_message)
        (r.check ctx))
    rules
  |> List.sort Diagnostic.compare

let check_file ?rules path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok (check_string ?rules ~file:path contents)
  | exception Sys_error msg -> Error msg
