(* SARIF 2.1.0 export for forklint findings.

   Hand-rolled like Diagnostic's JSON emitter (the tree has no json
   dependency). The output is deterministic: rules appear in registry
   order, results in Diagnostic.compare order, and no timestamps or
   absolute paths are embedded, so reports diff cleanly in CI. *)

let version = "2.1.0"

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

(* SARIF has a three-point level scale; forklint's Info maps to "note". *)
let level_of_severity = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warn -> "warning"
  | Diagnostic.Info -> "note"

let esc = Diagnostic.json_escape

let reporting_descriptor (r : Rules.t) =
  Printf.sprintf
    "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"help\":{\"text\":\"%s\"},\"helpUri\":\"%s\",\"defaultConfiguration\":{\"level\":\"%s\"},\"properties\":{\"citation\":\"%s\"}}"
    (esc r.Rules.id) (esc r.Rules.summary)
    (esc (Printf.sprintf "%s (paper: %s)" r.Rules.hint r.Rules.citation))
    (esc "https://www.microsoft.com/en-us/research/publication/a-fork-in-the-road/")
    (level_of_severity r.Rules.severity)
    (esc r.Rules.citation)

let result_of ~rule_index (d : Diagnostic.t) =
  let index_field =
    match rule_index d.rule with
    | Some i -> Printf.sprintf "\"ruleIndex\":%d," i
    | None -> ""
  in
  Printf.sprintf
    "{\"ruleId\":\"%s\",%s\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}],\"properties\":{\"citation\":\"%s\",\"hint\":\"%s\"}}"
    (esc d.rule) index_field
    (level_of_severity d.severity)
    (esc (Printf.sprintf "%s. Fix: %s" d.message d.hint))
    (esc d.file) d.line d.col (esc d.citation) (esc d.hint)

let report ?(rules = Rules.all) ds =
  let ds = List.sort Diagnostic.compare ds in
  let rule_index id =
    let rec go i = function
      | [] -> None
      | (r : Rules.t) :: rest -> if r.Rules.id = id then Some i else go (i + 1) rest
    in
    go 0 rules
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"$schema\": \"%s\",\n" schema_uri);
  Buffer.add_string buf (Printf.sprintf "  \"version\": \"%s\",\n" version);
  Buffer.add_string buf "  \"runs\": [\n    {\n";
  Buffer.add_string buf
    "      \"tool\": {\n        \"driver\": {\n          \"name\": \
     \"forklint\",\n          \"informationUri\": \
     \"https://www.microsoft.com/en-us/research/publication/a-fork-in-the-road/\",\n\
    \          \"version\": \"2.0.0\",\n          \"rules\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n            ";
      Buffer.add_string buf (reporting_descriptor r))
    rules;
  if rules <> [] then Buffer.add_string buf "\n          ";
  Buffer.add_string buf "]\n        }\n      },\n";
  Buffer.add_string buf "      \"results\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n        ";
      Buffer.add_string buf (result_of ~rule_index d))
    ds;
  if ds <> [] then Buffer.add_string buf "\n      ";
  Buffer.add_string buf "]\n    }\n  ]\n}\n";
  Buffer.contents buf
