(** Position-tracking tokenizer for C-like source.

    Splits source into identifiers, numbers, string/char literals and
    punctuation, each stamped with its 1-based [line]/[col] start.
    Comments and whitespace are dropped; string and character literals
    keep their (raw, still-escaped) contents. Backslash-newline splices
    continue the logical line (so multi-line macros emit no phantom
    ['\'] tokens); preprocessor directive lines are consumed whole and
    emit nothing (a [#define fork(x)] is not a call site), and a
    [#if 0 ... #endif] region is skipped entirely (nesting-aware, with
    a depth-1 [#else]/[#elif] branch treated as live). The lexer is
    deliberately tolerant: unterminated literals and block comments
    consume the rest of the input instead of failing, so it can be
    pointed at arbitrary files. {!Scanner} (the call-site survey),
    {!Cparse} (the statement parser) and {!Rules} (the forklint rule
    engine) all run on this token stream. *)

type kind =
  | Ident of string
  | Number of string
  | Str of string  (** contents without the quotes, escapes unprocessed *)
  | Chr of string
  | Punct of string  (** single char, or a common two-char operator *)

type token = { kind : kind; line : int; col : int }

val tokenize : string -> token list

val is_keyword : string -> bool
(** C reserved words; [if]/[while]/[return] etc. must not be mistaken
    for function calls by the rule engine. *)

val is_type_keyword : string -> bool
(** Keywords that can open a declaration ([int], [static], [struct],
    ...): an identifier-['('] pair right after one is a declarator
    (prototype or definition), not a call site. *)

val count_lines : string -> int
(** 1 + number of newlines (an empty string has one line). *)
