(** Per-function control-flow graph with fork-result guards.

    Built from a {!Cparse.func}; every call becomes a {!site} with a
    dense id, and branch terminators carry the decoded comparison of a
    fork result against 0/-1 ({!guard}) so {!Dataflow} can refine
    child/parent/error roles along edges. Calls to noreturn functions
    (exec family, [_exit], [abort], ...) cut the edge: what follows
    them lands in unreachable nodes, reported by {!dead_sites}. *)

type site = { s_id : int; s_call : Cparse.call }

type rel = Req0 | Rne0 | Rgt0 | Rlt0 | Rge0 | Rle0 | Req_m1 | Rne_m1
(** Comparison against a literal, subject normalised to the left:
    [pid == 0] and [0 == pid] both decode to [Req0]; [pid > -1]
    decodes to [Rge0]. *)

type subject =
  | Sub_site of int  (** the fork()/vfork() call tested directly *)
  | Sub_var of string  (** variable tested; resolved by the dataflow *)
  | Sub_other

type guard = {
  g_subject : subject;
  g_rel : rel;
  g_true_only : bool;
      (** decoded from one conjunct of [a && b]: only the true edge of
          the whole condition is informative *)
}

type arm = A_case of int option | A_default

type term =
  | T_jump of int
  | T_branch of { br_guard : guard option; br_true : int; br_false : int }
  | T_switch of { sw_subject : subject; sw_arms : (arm * int) list }
      (** a missing [default:] is materialised as an [A_default] arm to
          the join node, so [sw_arms] is the complete successor set *)
  | T_return of Cparse.pos
  | T_exit of Cparse.pos  (** implicit return: falling off the body *)
  | T_dead

type node = { mutable n_sites : site list; mutable n_term : term }

type t = {
  cfg_func : Cparse.func;
  nodes : node array;
  entry : int;
  sites : site array;  (** indexed by [s_id] *)
}

val default_noreturn : string list

val build : ?noreturn:string list -> Cparse.func -> t

val successors : term -> int list
val reachable : t -> bool array
(** per-node, from [entry] *)

val dead_sites : t -> site list
(** Call sites in unreachable nodes (code after noreturn calls, after
    [goto] to an unknown label, unparseable regions), by site id. *)

val negate_rel : rel -> rel

val decode_guard :
  fork_sites:((int * int) * int) list -> Lexer.token list -> guard option
(** Exposed for tests: decode a condition's tokens given the
    [(line, col) -> site id] map of its fork/vfork calls. *)
