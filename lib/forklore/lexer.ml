type kind =
  | Ident of string
  | Number of string
  | Str of string
  | Chr of string
  | Punct of string

type token = { kind : kind; line : int; col : int }

let count_lines src =
  let n = ref 1 in
  String.iter (fun c -> if c = '\n' then incr n) src;
  !n

(* Reserved words must not look like call sites (`if (...)`) to the rule
   engine, so they are classified here rather than in every rule. *)
let keywords =
  [
    "auto"; "break"; "case"; "char"; "const"; "continue"; "default"; "do";
    "double"; "else"; "enum"; "extern"; "float"; "for"; "goto"; "if";
    "inline"; "int"; "long"; "register"; "restrict"; "return"; "short";
    "signed"; "sizeof"; "static"; "struct"; "switch"; "typedef"; "union";
    "unsigned"; "void"; "volatile"; "while"; "_Alignas"; "_Alignof";
    "_Atomic"; "_Bool"; "_Generic"; "_Noreturn"; "_Static_assert";
    "_Thread_local";
  ]

let is_keyword id = List.mem id keywords

(* Keywords that can open a declaration: a following identifier-`(`
   pair is a declarator (prototype/definition), not a call site. *)
let type_keywords =
  [
    "auto"; "char"; "const"; "double"; "enum"; "extern"; "float"; "inline";
    "int"; "long"; "register"; "restrict"; "short"; "signed"; "static";
    "struct"; "typedef"; "union"; "unsigned"; "void"; "volatile"; "_Atomic";
    "_Bool"; "_Noreturn"; "_Thread_local";
  ]

let is_type_keyword id = List.mem id type_keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Two-character operators kept whole so columns of what follows stay
   honest; longer operators (<<=, ...) split into these plus '='. *)
let two_char_ops =
  [
    "->"; "++"; "--"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||";
    "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "##";
  ]

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  (* beginning-of-line: only whitespace/comments seen since the last
     newline, which is where a '#' starts a preprocessor directive *)
  let bol = ref true in
  let emit ~line ~col kind =
    bol := false;
    toks := { kind; line; col } :: !toks
  in
  let cur () = src.[!i] in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    if cur () = '\n' then begin
      incr line;
      col := 1;
      bol := true
    end
    else incr col;
    incr i
  in
  (* A '\' immediately before the newline splices the next physical
     line onto this logical one (C translation phase 2). Without this,
     multi-line macro definitions leak phantom '\' tokens. *)
  let splice () =
    if
      !i < n
      && cur () = '\\'
      && (peek 1 = Some '\n' || (peek 1 = Some '\r' && peek 2 = Some '\n'))
    then begin
      advance ();
      if !i < n && cur () = '\r' then advance ();
      if !i < n then advance ();
      (* the logical line continues: a '#' next is NOT a directive *)
      bol := false;
      true
    end
    else false
  in
  (* consume a backslash escape inside a literal; tolerates EOF *)
  let skip_escape () =
    advance ();
    if !i < n then advance ()
  in
  (* Rest of the current logical directive line (backslash splices
     continue it); the terminating newline is left for the main loop. *)
  let directive_rest () =
    let buf = Buffer.create 16 in
    let stop = ref false in
    while (not !stop) && !i < n do
      if splice () then Buffer.add_char buf ' '
      else if cur () = '\n' then stop := true
      else begin
        Buffer.add_char buf (cur ());
        advance ()
      end
    done;
    Buffer.contents buf
  in
  (* first identifier of a directive body, and what follows it *)
  let directive_name rest =
    let m = String.length rest in
    let j = ref 0 in
    while !j < m && (rest.[!j] = ' ' || rest.[!j] = '\t') do
      incr j
    done;
    let start = !j in
    while !j < m && is_ident rest.[!j] do
      incr j
    done;
    (String.sub rest start (!j - start), String.sub rest !j (m - !j))
  in
  (* `#if 0` (possibly with a trailing comment) — the conventional
     block-comment-out idiom whose body must not produce tokens *)
  let is_zero_condition arg =
    let arg = String.trim arg in
    arg = "0"
    || String.length arg > 1
       && arg.[0] = '0'
       && (match arg.[1] with ' ' | '\t' | '/' -> true | _ -> false)
  in
  (* Skip a `#if 0` region: consume up to the matching `#endif`
     (tracking `#if`/`#ifdef`/`#ifndef` nesting) or a depth-1
     `#else`/`#elif`, whose branch is live again. *)
  let skip_dead_region () =
    let depth = ref 1 in
    let live = ref false in
    while (not !live) && !i < n do
      if !bol && cur () = '#' then begin
        advance ();
        let name, _ = directive_name (directive_rest ()) in
        match name with
        | "if" | "ifdef" | "ifndef" -> incr depth
        | "endif" ->
          decr depth;
          if !depth = 0 then live := true
        | "else" | "elif" -> if !depth = 1 then live := true
        | _ -> ()
      end
      else begin
        if not (cur () = ' ' || cur () = '\t' || cur () = '\n'
                || cur () = '\r' || cur () = '\012')
        then bol := false;
        advance ()
      end
    done
  in
  while !i < n do
    let c = cur () in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012' then advance ()
    else if splice () then ()
    else if c = '#' && !bol then begin
      (* Preprocessor directive: consumed whole, emitting no tokens
         (so `#define fork(x)` is not a call site and `#include <f.h>`
         has no phantom '<'/'>' punctuation). `#if 0` additionally
         kills its region. *)
      advance ();
      let rest = directive_rest () in
      let name, arg = directive_name rest in
      if name = "if" && is_zero_condition arg then skip_dead_region ()
    end
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && cur () <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if cur () = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done
      (* an unterminated block comment swallows the rest of the file *)
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        match cur () with
        | '\\' ->
          Buffer.add_char buf '\\';
          (match peek 1 with Some e -> Buffer.add_char buf e | None -> ());
          skip_escape ()
        | '"' ->
          advance ();
          closed := true
        | ch ->
          Buffer.add_char buf ch;
          advance ()
      done;
      emit ~line:l ~col:co (Str (Buffer.contents buf))
    end
    else if c = '\'' then begin
      advance ();
      let buf = Buffer.create 4 in
      let closed = ref false in
      while (not !closed) && !i < n do
        match cur () with
        | '\\' ->
          Buffer.add_char buf '\\';
          (match peek 1 with Some e -> Buffer.add_char buf e | None -> ());
          skip_escape ()
        | '\'' ->
          advance ();
          closed := true
        | ch ->
          Buffer.add_char buf ch;
          advance ()
      done;
      emit ~line:l ~col:co (Chr (Buffer.contents buf))
    end
    else if is_ident_start c then begin
      (* a splice mid-identifier glues the halves (phase 2 runs before
         tokenisation): [fo\<newline>rk] is the single identifier fork *)
      let buf = Buffer.create 8 in
      let stop = ref false in
      while (not !stop) && !i < n do
        if is_ident (cur ()) then begin
          Buffer.add_char buf (cur ());
          advance ()
        end
        else if not (splice ()) then stop := true
      done;
      emit ~line:l ~col:co (Ident (Buffer.contents buf))
    end
    else if is_digit c then begin
      (* loose C number: digits, hex/bin letters, suffixes, '.', exponent
         signs are absorbed; good enough to keep them out of idents *)
      let buf = Buffer.create 8 in
      while
        !i < n
        && (is_ident (cur ())
           || cur () = '.'
           || ((cur () = '+' || cur () = '-')
              && Buffer.length buf > 0
              &&
              match Buffer.nth buf (Buffer.length buf - 1) with
              | 'e' | 'E' | 'p' | 'P' -> true
              | _ -> false))
      do
        Buffer.add_char buf (cur ());
        advance ()
      done;
      emit ~line:l ~col:co (Number (Buffer.contents buf))
    end
    else begin
      let two =
        match peek 1 with
        | Some c2 ->
          let s = Printf.sprintf "%c%c" c c2 in
          if List.mem s two_char_ops then Some s else None
        | None -> None
      in
      match two with
      | Some s ->
        advance ();
        advance ();
        emit ~line:l ~col:co (Punct s)
      | None ->
        advance ();
        emit ~line:l ~col:co (Punct (String.make 1 c))
    end
  done;
  List.rev !toks
