(** Synthetic C corpus generator for the usage survey (E7).

    The HotOS'19 discussion rests on a corpus-scale observation: Unix
    code overwhelmingly creates processes with fork (directly or through
    system/popen), and spawn-family calls are rare. We cannot ship the
    Debian source tree, so this module generates a deterministic corpus
    whose {e mix} follows that qualitative shape, each package carrying
    its ground-truth call counts so the scanner can be validated exactly.
    Distractor text (comments, strings, lookalike identifiers,
    declarations) is woven in to keep the scanner honest. *)

type package = {
  name : string;
  source : string;
  truth : (Api.t * int) list;  (** exact call sites embedded, per API *)
}

val truth_count : package -> Api.t -> int

(** Package archetypes and their draw weights, mirroring the observed mix
    (fork-based idioms dominate; spawn is rare). *)
type archetype =
  | Shell_out  (** system/popen callers *)
  | Daemon  (** classic fork + exec servers *)
  | Spawner  (** the rare posix_spawn adopter *)
  | Low_level  (** vfork/clone runtimes *)
  | Pure  (** no process creation at all *)

val archetype_weights : (archetype * int) list

val generate : ?packages:int -> seed:int -> unit -> package list
(** Deterministic in [seed]. Default 200 packages. *)

type hazard = {
  hz_name : string;
  hz_source : string;
  hz_expected : (string * int * int) list;
      (** ground-truth v2 findings as (rule id, line, col), 1-based, in
          {!Diagnostic.compare} order *)
  hz_v1 : (string * int * int) list;
      (** what the frozen v1 token rules report on the same source —
          the baseline for the precision table. Where [hz_v1] has
          entries missing from [hz_expected], those are v1 false
          positives (parent-path-only work, flush-killed stdio,
          cross-function confusion) that the dataflow rules eliminate;
          where [hz_expected] has entries missing from [hz_v1], the
          CFG found hazards the token scan cannot see. *)
}

val hazards : hazard list
(** Hand-written fixtures exhibiting the paper's fork hazards (threaded
    fork without exec, vfork misuse, unflushed stdio, fd leaks, unsafe
    child-side work, locks held across fork, child fallthrough) plus
    clean programs (posix_spawn; parent-path-only work; helper-flushed
    stdio), each labelled with the exact findings
    {!Rules.check_string} must report under the default v2 rules and
    under {!Rules.v1}. *)
