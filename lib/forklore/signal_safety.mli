(** The POSIX.1-2017 async-signal-safe function table.

    After [fork()] in a multithreaded process the child may call only
    the functions on this list until it reaches exec (XSH
    {{:https://pubs.opengroup.org/onlinepubs/9699919799/}\194\1672.4.3}).
    The [unsafe-child-work] dataflow rule consults {!is_safe} for the
    whitelist and {!is_known_unsafe} for the explicit deny list —
    functions on neither list (unknown externs, project-local helpers
    without a summary) are never reported, which keeps precision
    honest on arbitrary C trees. *)

val is_safe : string -> bool
(** Member of the POSIX.1-2017 async-signal-safe table. *)

val is_known_unsafe : string -> bool
(** Common libc/pthread function that is definitely {e not}
    async-signal-safe (allocator, stdio, locking, [exit], ...). *)

val safe_list : string list
(** The full table, for documentation and tests. *)

val unsafe_list : string list

val provenance : string
(** Where the table comes from (standard, issue, technical
    corrigendum) — quoted in DESIGN.md \194\16713. *)
