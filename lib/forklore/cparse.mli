(** Tolerant C statement parser for the fork-hazard analysis.

    Recovers function bodies and the statement kinds that shape
    control flow from the {!Lexer} token stream; inside every
    expression it extracts call sites with argument tokens and the
    assigned-to variable when the result is captured
    ([pid_t pid = fork();]). [parse] never raises: unparseable input
    degrades into opaque expression statements that {!Cfg} then
    reports as dead rather than mis-analysed. *)

type pos = { p_line : int; p_col : int }

type call = {
  c_name : string;
  c_line : int;
  c_col : int;
  c_args : Lexer.token list;  (** tokens between the call's parens *)
  c_assigned_to : string option;
      (** [v] in [v = f(...)] / [T v = f(...)] / [v = (T)f(...)] *)
}

type expr = { x_toks : Lexer.token list; x_calls : call list }

type stmt =
  | S_block of stmt list
  | S_if of { i_cond : expr; i_then : stmt; i_else : stmt option }
  | S_while of { w_cond : expr; w_body : stmt }
  | S_do of { d_body : stmt; d_cond : expr }
  | S_for of {
      f_init : expr option;
      f_test : expr option;
      f_step : expr option;
      f_body : stmt;
    }
  | S_switch of { sw_cond : expr; sw_body : stmt }
  | S_case of { case_value : Lexer.token list; case_pos : pos }
  | S_default of pos
  | S_label of string * pos
  | S_goto of string * pos
  | S_return of { r_expr : expr option; r_pos : pos }
  | S_break of pos
  | S_continue of pos
  | S_expr of expr  (** expression or declaration statement *)
  | S_empty

type func = {
  fn_name : string;
  fn_pos : pos;
  fn_body : stmt list;
  fn_end : pos;  (** the body's closing brace *)
}

val parse : Lexer.token list -> func list
(** Function definitions found at brace depth 0, in source order. *)

val calls_of_slice : Lexer.token array -> int -> int -> call list
(** [calls_of_slice toks lo hi]: call sites in [toks.(lo..hi-1)] in
    source order, with declarator-position identifier-['('] pairs
    ([pid_t fork(void);]) excluded. *)

val calls_of_stmt : stmt -> call list
(** Every call in the statement tree, source order (cond before body). *)

val calls_of_func : func -> call list
