type call = { api : Api.t; id : string; line : int; col : int }

type result = {
  lines : int;
  counts : (Api.t * int) list;
  calls : call list;
}

let count r api =
  match List.assoc_opt api r.counts with Some n -> n | None -> 0

let scan_string src =
  let toks = Array.of_list (Lexer.tokenize src) in
  (* Cparse.calls_of_slice skips identifier-'(' pairs in declarator
     position, so prototypes like [pid_t fork(void);] are not counted
     as call sites. *)
  let calls =
    Cparse.calls_of_slice toks 0 (Array.length toks)
    |> List.filter_map (fun (c : Cparse.call) ->
           match Api.of_identifier c.Cparse.c_name with
           | Some api ->
             Some
               { api; id = c.Cparse.c_name; line = c.Cparse.c_line; col = c.Cparse.c_col }
           | None -> None)
  in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun c ->
      Hashtbl.replace tally c.api
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally c.api)))
    calls;
  {
    lines = Lexer.count_lines src;
    counts =
      List.map
        (fun api ->
          (api, Option.value ~default:0 (Hashtbl.find_opt tally api)))
        Api.all;
    calls;
  }

let scan_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok (scan_string contents)
  | exception Sys_error msg -> Error msg

type dir_report = {
  files_scanned : int;
  total_lines : int;
  total : (Api.t * int) list;
  skipped : (string * string) list;
}

let total_hits r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts

let default_extensions = [ ".c"; ".h"; ".cc"; ".cpp"; ".hh" ]

let walk_files ?(extensions = default_extensions) root =
  let out = ref [] in
  let skipped = ref [] in
  let want path =
    List.exists (fun ext -> Filename.check_suffix path ext) extensions
  in
  let scan_into path =
    match scan_file path with
    | Ok r -> out := (path, r) :: !out
    | Error msg -> skipped := (path, msg) :: !skipped
  in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error msg -> skipped := (dir, msg) :: !skipped
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path
          else if want path then scan_into path)
        entries
  in
  (match Sys.is_directory root with
  | true -> walk root
  | false -> scan_into root
  | exception Sys_error msg -> skipped := (root, msg) :: !skipped);
  (List.rev !out, List.rev !skipped)

let scan_directory_files ?extensions root = fst (walk_files ?extensions root)

let scan_directory ?extensions root =
  let per_file, skipped = walk_files ?extensions root in
  let tally = Hashtbl.create 8 in
  let lines = ref 0 in
  List.iter
    (fun (_, r) ->
      lines := !lines + r.lines;
      List.iter
        (fun (api, n) ->
          Hashtbl.replace tally api
            (n + Option.value ~default:0 (Hashtbl.find_opt tally api)))
        r.counts)
    per_file;
  {
    files_scanned = List.length per_file;
    total_lines = !lines;
    total =
      List.map
        (fun api ->
          (api, Option.value ~default:0 (Hashtbl.find_opt tally api)))
        Api.all;
    skipped;
  }
