(* Path-sensitive fork-fact dataflow over {!Cfg}.

   A forward worklist fixpoint tracks, per program point: the live
   fork/vfork windows with their child/parent/error role possibilities
   (refined along guarded edges: the true edge of [pid == 0] keeps
   only the child role, and an edge whose refinement empties the role
   set is infeasible and propagates nothing), variables bound to fork
   results, unflushed stdio writes, fds created without CLOEXEC,
   pthread mutexes held, and whether threads have been created on the
   path. A second pass replays the transfer function over the
   stabilised states and emits {!obs} values, which {!Rules} turns
   into findings.

   Precision policy, shared with {!Signal_safety}: inside a fork-child
   window only *known-unsafe* callees are reported (explicit deny
   list, or a local function summarised as reaching one). Unknown
   externs are never flagged. Inside a vfork child window every call
   except exec*/_exit is reported — that is vfork's contract. *)

module SMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Name sets *)

let fork_names = [ "fork" ]
let vfork_names = [ "vfork" ]

let exec_names =
  [ "execve"; "execv"; "execvp"; "execvpe"; "execl"; "execlp"; "execle";
    "fexecve" ]

(* calls that legitimately end a forked child branch *)
let escape_names = "_exit" :: "_Exit" :: exec_names

(* process creators that are not fork: fds leak into their children too *)
let spawn_names =
  [ "clone"; "clone3"; "posix_spawn"; "posix_spawnp"; "system"; "popen" ]

let stdio_names =
  [ "printf"; "fprintf"; "vprintf"; "vfprintf"; "fwrite"; "puts"; "fputs";
    "putchar"; "fputc"; "putc" ]

let thread_create_names = [ "pthread_create"; "thrd_create" ]
let lock_names = [ "pthread_mutex_lock"; "mtx_lock" ]
let unlock_names = [ "pthread_mutex_unlock"; "mtx_unlock" ]

let mem name names = List.mem name names

(* ------------------------------------------------------------------ *)
(* One-level interprocedural summaries *)

type summary = {
  sm_forks : bool;
  sm_execs : bool;  (** calls exec*/_exit/_Exit directly *)
  sm_unsafe : string option;  (** first known-unsafe function it calls *)
  sm_threads : bool;
  sm_flushes : bool;  (** calls fflush *)
  sm_stdio : string option;  (** first buffered-stdio write *)
}

let summarize (fn : Cparse.func) : summary =
  let calls = Cparse.calls_of_func fn in
  let has p = List.exists (fun (c : Cparse.call) -> p c.Cparse.c_name) calls in
  let first p =
    List.find_map
      (fun (c : Cparse.call) ->
        if p c.Cparse.c_name then Some c.Cparse.c_name else None)
      calls
  in
  {
    sm_forks = has (fun n -> mem n fork_names || mem n vfork_names);
    sm_execs = has (fun n -> mem n escape_names);
    sm_unsafe = first Signal_safety.is_known_unsafe;
    sm_threads = has (fun n -> mem n thread_create_names);
    sm_flushes = has (fun n -> n = "fflush");
    sm_stdio = first (fun n -> mem n stdio_names);
  }

let summaries_of (fns : Cparse.func list) : summary SMap.t =
  List.fold_left
    (fun m (fn : Cparse.func) -> SMap.add fn.Cparse.fn_name (summarize fn) m)
    SMap.empty fns

(* ------------------------------------------------------------------ *)
(* Abstract state *)

type role = { r_child : bool; r_parent : bool; r_err : bool }

let role_top = { r_child = true; r_parent = true; r_err = true }
let role_empty r = (not r.r_child) && (not r.r_parent) && not r.r_err

let role_inter a b =
  {
    r_child = a.r_child && b.r_child;
    r_parent = a.r_parent && b.r_parent;
    r_err = a.r_err && b.r_err;
  }

let role_union a b =
  {
    r_child = a.r_child || b.r_child;
    r_parent = a.r_parent || b.r_parent;
    r_err = a.r_err || b.r_err;
  }

let role_diff a b =
  {
    r_child = a.r_child && not b.r_child;
    r_parent = a.r_parent && not b.r_parent;
    r_err = a.r_err && not b.r_err;
  }

let role_of_rel : Cfg.rel -> role = function
  | Cfg.Req0 -> { r_child = true; r_parent = false; r_err = false }
  | Cfg.Rne0 -> { r_child = false; r_parent = true; r_err = true }
  | Cfg.Rgt0 -> { r_child = false; r_parent = true; r_err = false }
  | Cfg.Rlt0 -> { r_child = false; r_parent = false; r_err = true }
  | Cfg.Rge0 -> { r_child = true; r_parent = true; r_err = false }
  | Cfg.Rle0 -> { r_child = true; r_parent = false; r_err = true }
  | Cfg.Req_m1 -> { r_child = false; r_parent = false; r_err = true }
  | Cfg.Rne_m1 -> { r_child = true; r_parent = true; r_err = false }

type fork_fact = {
  ff_site : int;  (** site id of the fork/vfork call *)
  ff_vfork : bool;
  ff_role : role;
  ff_escaped : bool;  (** an exec*/_exit already ran on this path *)
}

type state = {
  st_forks : fork_fact list;  (* sorted by ff_site *)
  st_binds : (string * int) list;  (* var -> fork site *)
  st_dirty : int list;  (* stdio site ids; sorted *)
  st_fds : (int * string option) list;  (* open site, variable; sorted *)
  st_locks : (int * string) list;  (* lock site, canonical args; sorted *)
  st_thread : int option;  (* earliest thread-creating site *)
}

let init_state =
  {
    st_forks = [];
    st_binds = [];
    st_dirty = [];
    st_fds = [];
    st_locks = [];
    st_thread = None;
  }

(* join = union of possible behaviours: roles widen, escaped only if
   escaped on every path, binds only where both paths agree *)
let join a b =
  let rec merge_forks xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xr, y :: yr ->
      if x.ff_site < y.ff_site then x :: merge_forks xr ys
      else if y.ff_site < x.ff_site then y :: merge_forks xs yr
      else
        {
          x with
          ff_role = role_union x.ff_role y.ff_role;
          ff_escaped = x.ff_escaped && y.ff_escaped;
        }
        :: merge_forks xr yr
  in
  let rec merge_sorted xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xr, y :: yr ->
      if x < y then x :: merge_sorted xr ys
      else if y < x then y :: merge_sorted xs yr
      else x :: merge_sorted xr yr
  in
  let rec merge_by_key xs ys =
    (* union keyed on [fst]; on a key collision keep [x] *)
    match (xs, ys) with
    | [], l | l, [] -> l
    | ((kx, _) as x) :: xr, ((ky, _) as y) :: yr ->
      if kx < ky then x :: merge_by_key xr ys
      else if ky < kx then y :: merge_by_key xs yr
      else x :: merge_by_key xr yr
  in
  {
    st_forks = merge_forks a.st_forks b.st_forks;
    st_binds =
      List.filter
        (fun (v, s) -> List.assoc_opt v b.st_binds = Some s)
        a.st_binds;
    st_dirty = merge_sorted a.st_dirty b.st_dirty;
    st_fds = merge_by_key a.st_fds b.st_fds;
    st_locks = merge_by_key a.st_locks b.st_locks;
    st_thread =
      (match (a.st_thread, b.st_thread) with
      | Some x, Some y -> Some (min x y)
      | Some x, None | None, Some x -> Some x
      | None, None -> None);
  }

(* ------------------------------------------------------------------ *)
(* Observations *)

type obs =
  | O_unsafe_child of {
      o_at : Cparse.call;
      o_fork : Cparse.call;
      o_via : string option;  (** unsafe callee reached via a summary *)
    }
  | O_vfork_call of { o_at : Cparse.call; o_vfork : Cparse.call }
  | O_vfork_return of { o_pos : Cparse.pos; o_vfork : Cparse.call }
  | O_vfork_no_escape of Cparse.call
  | O_fork_no_escape of Cparse.call
  | O_stdio_at_fork of { o_fork : Cparse.call; o_stdio : Cparse.call }
  | O_threads_at_fork of { o_fork : Cparse.call; o_thread : Cparse.call }
  | O_lock_at_fork of { o_fork : Cparse.call; o_lock : Cparse.call }
  | O_fd_leak of { o_open : Cparse.call; o_spawn : Cparse.call }
  | O_child_return of { o_pos : Cparse.pos; o_fork : Cparse.call }

type result = {
  res_cfg : Cfg.t;
  res_obs : obs list;  (** node order, then event order within a node *)
  res_dead : Cfg.site list;
}

(* ------------------------------------------------------------------ *)
(* Token helpers for argument inspection *)

let token_text (t : Lexer.token) =
  match t.Lexer.kind with
  | Lexer.Ident s | Lexer.Number s -> s
  | Lexer.Str s -> "\"" ^ s ^ "\""
  | Lexer.Chr s -> "'" ^ s ^ "'"
  | Lexer.Punct p -> p

let render_tokens toks = String.concat " " (List.map token_text toks)

let has_ident name toks =
  List.exists
    (fun (t : Lexer.token) ->
      match t.Lexer.kind with Lexer.Ident i -> i = name | _ -> false)
    toks

(* tokens of the first argument (up to the first ',' at depth 0) *)
let first_arg toks =
  let rec go acc depth = function
    | [] -> List.rev acc
    | (t : Lexer.token) :: rest -> (
      match t.Lexer.kind with
      | Lexer.Punct "(" -> go (t :: acc) (depth + 1) rest
      | Lexer.Punct ")" -> go (t :: acc) (depth - 1) rest
      | Lexer.Punct "," when depth = 0 -> List.rev acc
      | _ -> go (t :: acc) depth rest)
  in
  go [] 0 toks

let first_arg_ident toks =
  match first_arg toks with
  | [ { Lexer.kind = Lexer.Ident v; _ } ] when not (Lexer.is_keyword v) ->
    Some v
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Transfer function *)

(* innermost (latest) unescaped, child-capable window of the given kind *)
let active_window ~vfork st =
  List.fold_left
    (fun acc ff ->
      if ff.ff_vfork = vfork && ff.ff_role.r_child && not ff.ff_escaped then
        Some ff
      else acc)
    None st.st_forks

let sorted_insert x l = List.sort_uniq compare (x :: l)

let latest_dirty (cfg : Cfg.t) st =
  match List.rev st.st_dirty with
  | [] -> None
  | sid :: _ -> Some cfg.Cfg.sites.(sid).Cfg.s_call

(* Process one call event against the pre-state. [emit] receives
   observations (a no-op during the fixpoint); [escape_seen] records
   fork sites whose child-capable path reached an escape. *)
let process_call (cfg : Cfg.t) ~summaries ~emit ~escape_seen st
    (site : Cfg.site) =
  let call = site.Cfg.s_call in
  let name = call.Cparse.c_name in
  let args = call.Cparse.c_args in
  let summary = SMap.find_opt name summaries in
  let is_fork = mem name fork_names in
  let is_vfork = mem name vfork_names in
  let is_escape =
    mem name escape_names
    ||
    match summary with
    | Some s -> s.sm_execs && not s.sm_forks
    | None -> false
  in
  let site_call sid = cfg.Cfg.sites.(sid).Cfg.s_call in
  (* --- flag phase (consults the pre-state) --- *)
  if not is_escape then begin
    match active_window ~vfork:true st with
    | Some ff ->
      (* vfork child window: any call except exec*/_exit is misuse *)
      emit (O_vfork_call { o_at = call; o_vfork = site_call ff.ff_site })
    | None -> (
      match active_window ~vfork:false st with
      | Some ff -> (
        let fork_call = site_call ff.ff_site in
        if Signal_safety.is_known_unsafe name then
          emit (O_unsafe_child { o_at = call; o_fork = fork_call; o_via = None })
        else
          match summary with
          | Some { sm_unsafe = Some u; _ } ->
            emit
              (O_unsafe_child { o_at = call; o_fork = fork_call; o_via = Some u })
          | _ -> ())
      | None -> ())
  end;
  (* a creation event: every live un-CLOEXEC'd fd leaks into the child *)
  let creates_process =
    is_fork || is_vfork
    || mem name spawn_names
    || match summary with Some s -> s.sm_forks | None -> false
  in
  if creates_process then
    List.iter
      (fun (sid, _) ->
        emit (O_fd_leak { o_open = site_call sid; o_spawn = call }))
      st.st_fds;
  if is_fork || is_vfork then begin
    (match latest_dirty cfg st with
    | Some stdio -> emit (O_stdio_at_fork { o_fork = call; o_stdio = stdio })
    | None -> ());
    List.iter
      (fun (sid, _) ->
        emit (O_lock_at_fork { o_fork = call; o_lock = site_call sid }))
      st.st_locks;
    match st.st_thread with
    | Some tid when is_fork ->
      emit (O_threads_at_fork { o_fork = call; o_thread = site_call tid })
    | _ -> ()
  end;
  (* --- state update --- *)
  let st =
    if is_escape then begin
      (* every live window on this path has reached exec/_exit *)
      List.iter
        (fun ff ->
          if ff.ff_role.r_child && not ff.ff_escaped then
            escape_seen ff.ff_site)
        st.st_forks;
      {
        st with
        st_forks =
          List.map (fun ff -> { ff with ff_escaped = true }) st.st_forks;
      }
    end
    else st
  in
  let st =
    if is_fork || is_vfork then begin
      let fact =
        {
          ff_site = site.Cfg.s_id;
          ff_vfork = is_vfork;
          ff_role = role_top;
          ff_escaped = false;
        }
      in
      let binds =
        match call.Cparse.c_assigned_to with
        | Some v ->
          List.sort compare
            ((v, site.Cfg.s_id) :: List.remove_assoc v st.st_binds)
        | None -> st.st_binds
      in
      (* re-forking at the same site (a fork in a loop) opens a fresh
         window: replace any stale fact for this site *)
      let forks =
        List.sort
          (fun a b -> compare a.ff_site b.ff_site)
          (fact :: List.filter (fun ff -> ff.ff_site <> site.Cfg.s_id) st.st_forks)
      in
      { st with st_forks = forks; st_binds = binds }
    end
    else
      (* a non-fork result assigned to a tracked variable kills its bind *)
      match call.Cparse.c_assigned_to with
      | Some v when List.mem_assoc v st.st_binds ->
        { st with st_binds = List.remove_assoc v st.st_binds }
      | _ -> st
  in
  let flushes =
    name = "fflush"
    || match summary with Some s -> s.sm_flushes | None -> false
  in
  let st = if flushes then { st with st_dirty = [] } else st in
  let writes_stdio =
    mem name stdio_names
    || match summary with Some s -> s.sm_stdio <> None | None -> false
  in
  let st =
    if writes_stdio then
      { st with st_dirty = sorted_insert site.Cfg.s_id st.st_dirty }
    else st
  in
  let st =
    match name with
    | "open" | "open64" | "openat" ->
      if has_ident "O_CLOEXEC" args then st
      else
        {
          st with
          st_fds =
            (site.Cfg.s_id, call.Cparse.c_assigned_to) :: st.st_fds
            |> List.sort compare;
        }
    | "socket" ->
      if has_ident "SOCK_CLOEXEC" args then st
      else
        {
          st with
          st_fds =
            (site.Cfg.s_id, call.Cparse.c_assigned_to) :: st.st_fds
            |> List.sort compare;
        }
    | "pipe" | "creat" ->
      {
        st with
        st_fds =
          (site.Cfg.s_id, call.Cparse.c_assigned_to) :: st.st_fds
          |> List.sort compare;
      }
    | "close" -> (
      match first_arg_ident args with
      | Some v ->
        { st with st_fds = List.filter (fun (_, w) -> w <> Some v) st.st_fds }
      | None -> st)
    | "fcntl" -> (
      match (first_arg_ident args, has_ident "FD_CLOEXEC" args) with
      | Some v, true ->
        { st with st_fds = List.filter (fun (_, w) -> w <> Some v) st.st_fds }
      | _ -> st)
    | _ -> st
  in
  let st =
    if mem name lock_names then
      {
        st with
        st_locks =
          (site.Cfg.s_id, render_tokens args) :: st.st_locks
          |> List.sort compare;
      }
    else if mem name unlock_names then
      let key = render_tokens args in
      { st with st_locks = List.filter (fun (_, k) -> k <> key) st.st_locks }
    else st
  in
  let creates_threads =
    mem name thread_create_names
    || match summary with Some s -> s.sm_threads | None -> false
  in
  if creates_threads then
    {
      st with
      st_thread =
        (match st.st_thread with
        | Some t -> Some (min t site.Cfg.s_id)
        | None -> Some site.Cfg.s_id);
    }
  else st

let transfer cfg ~summaries ~emit ~escape_seen st (node : Cfg.node) =
  List.fold_left
    (fun st site -> process_call cfg ~summaries ~emit ~escape_seen st site)
    st node.Cfg.n_sites

(* ------------------------------------------------------------------ *)
(* Edge refinement *)

let resolve_subject st = function
  | Cfg.Sub_site sid -> Some sid
  | Cfg.Sub_var v -> List.assoc_opt v st.st_binds
  | Cfg.Sub_other -> None

(* Restrict the role of fork site [sid] to [restrict]; None when the
   refinement empties the role set (the edge is infeasible). *)
let refine st sid restrict =
  let dead = ref false in
  let forks =
    List.map
      (fun ff ->
        if ff.ff_site = sid then begin
          let role = role_inter ff.ff_role restrict in
          if role_empty role then dead := true;
          { ff with ff_role = role }
        end
        else ff)
      st.st_forks
  in
  if !dead then None else Some { st with st_forks = forks }

let apply_guard st (g : Cfg.guard option) ~edge_true =
  match g with
  | None -> Some st
  | Some { Cfg.g_subject; g_rel; g_true_only } -> (
    if (not edge_true) && g_true_only then Some st
    else
      let rel = if edge_true then g_rel else Cfg.negate_rel g_rel in
      match resolve_subject st g_subject with
      | None -> Some st
      | Some sid -> refine st sid (role_of_rel rel))

let arm_role arms arm =
  let role_of_case v =
    if v = 0 then { r_child = true; r_parent = false; r_err = false }
    else if v > 0 then { r_child = false; r_parent = true; r_err = false }
    else { r_child = false; r_parent = false; r_err = true }
  in
  match arm with
  | Cfg.A_case (Some v) -> Some (role_of_case v)
  | Cfg.A_case None -> None
  | Cfg.A_default ->
    (* whatever the literal arms did not cover *)
    let covered =
      List.fold_left
        (fun acc (a, _) ->
          match a with
          | Cfg.A_case (Some v) -> role_union acc (role_of_case v)
          | _ -> acc)
        { r_child = false; r_parent = false; r_err = false }
        arms
    in
    Some (role_diff role_top covered)

(* ------------------------------------------------------------------ *)
(* Fixpoint and emission *)

let analyze ?(summaries = SMap.empty) (cfg : Cfg.t) : result =
  let n = Array.length cfg.Cfg.nodes in
  let input : state option array = Array.make n None in
  input.(cfg.Cfg.entry) <- Some init_state;
  let no_emit _ = () in
  let escaped = Hashtbl.create 8 in
  let escape_seen sid = Hashtbl.replace escaped sid () in
  (* --- fixpoint --- *)
  let queue = Queue.create () in
  Queue.push cfg.Cfg.entry queue;
  let propagate target st =
    let merged =
      match input.(target) with None -> st | Some old -> join old st
    in
    if input.(target) <> Some merged then begin
      input.(target) <- Some merged;
      Queue.push target queue
    end
  in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    match input.(id) with
    | None -> ()
    | Some st -> (
      let node = cfg.Cfg.nodes.(id) in
      let out =
        transfer cfg ~summaries ~emit:no_emit ~escape_seen:ignore st node
      in
      match node.Cfg.n_term with
      | Cfg.T_jump j -> propagate j out
      | Cfg.T_branch { br_guard; br_true; br_false } ->
        (match apply_guard out br_guard ~edge_true:true with
        | Some st' -> propagate br_true st'
        | None -> ());
        (match apply_guard out br_guard ~edge_true:false with
        | Some st' -> propagate br_false st'
        | None -> ())
      | Cfg.T_switch { sw_subject; sw_arms } ->
        let sid = resolve_subject out sw_subject in
        List.iter
          (fun (arm, target) ->
            let st' =
              match (sid, arm_role sw_arms arm) with
              | Some sid, Some restrict -> refine out sid restrict
              | _ -> Some out
            in
            match st' with Some st' -> propagate target st' | None -> ())
          sw_arms
      | Cfg.T_return _ | Cfg.T_exit _ | Cfg.T_dead -> ())
  done;
  (* --- emission pass over the stabilised states --- *)
  let obs = ref [] in
  let emit o = obs := o :: !obs in
  for id = 0 to n - 1 do
    match input.(id) with
    | None -> ()
    | Some st -> (
      let node = cfg.Cfg.nodes.(id) in
      let out = transfer cfg ~summaries ~emit ~escape_seen st node in
      match node.Cfg.n_term with
      | Cfg.T_return pos | Cfg.T_exit pos -> (
        (* a child-capable path leaving the function without escape *)
        match active_window ~vfork:true out with
        | Some ff ->
          emit
            (O_vfork_return
               { o_pos = pos; o_vfork = cfg.Cfg.sites.(ff.ff_site).Cfg.s_call })
        | None -> (
          match active_window ~vfork:false out with
          | Some ff ->
            emit
              (O_child_return
                 { o_pos = pos; o_fork = cfg.Cfg.sites.(ff.ff_site).Cfg.s_call })
          | None -> ()))
      | _ -> ())
  done;
  (* forks whose child path can never reach exec*/_exit *)
  Array.iter
    (fun (site : Cfg.site) ->
      let name = site.Cfg.s_call.Cparse.c_name in
      let is_fork = mem name fork_names and is_vfork = mem name vfork_names in
      if (is_fork || is_vfork) && not (Hashtbl.mem escaped site.Cfg.s_id) then begin
        (* only live sites: a fork in dead code is not a hazard *)
        let live =
          let reach = Cfg.reachable cfg in
          Array.exists Fun.id
            (Array.mapi
               (fun id (node : Cfg.node) ->
                 reach.(id)
                 && List.exists
                      (fun (s : Cfg.site) -> s.Cfg.s_id = site.Cfg.s_id)
                      node.Cfg.n_sites)
               cfg.Cfg.nodes)
        in
        if live then
          emit
            (if is_vfork then O_vfork_no_escape site.Cfg.s_call
             else O_fork_no_escape site.Cfg.s_call)
      end)
    cfg.Cfg.sites;
  (* unsafe-child-work keeps v1's scope — the window *between* fork and
     exec. A fork whose child never escapes is fork-no-exec's business;
     flagging its child work too would double-report one defect. *)
  let escaped_pos =
    Hashtbl.fold
      (fun sid () acc ->
        let c = cfg.Cfg.sites.(sid).Cfg.s_call in
        (c.Cparse.c_line, c.Cparse.c_col) :: acc)
      escaped []
  in
  let res_obs =
    List.filter
      (function
        | O_unsafe_child { o_fork; _ } ->
          List.mem (o_fork.Cparse.c_line, o_fork.Cparse.c_col) escaped_pos
        | _ -> true)
      (List.rev !obs)
  in
  { res_cfg = cfg; res_obs; res_dead = Cfg.dead_sites cfg }

(* ------------------------------------------------------------------ *)

(* Analyze every function of a token stream: parse, summarise all
   functions (one level), then run each CFG with those summaries. *)
let analyze_tokens toks : result list =
  let fns = Cparse.parse toks in
  let summaries = summaries_of fns in
  List.map (fun fn -> analyze ~summaries (Cfg.build fn)) fns
