(* A lightweight, tolerant C statement parser on top of the
   position-tracking lexer. It recovers just enough structure for the
   fork-hazard dataflow: function bodies, the statement kinds that
   shape control flow (blocks, if/else, loops, switch/case, goto and
   labels, return/break/continue) and, inside every expression, the
   call sites with their argument tokens and, when present, the
   variable the result is assigned to.

   Tolerance contract: [parse] never raises. Anything it cannot shape
   (K&R definitions, statement expressions, inline asm) degrades into
   an opaque expression statement or is skipped; the CFG layer then
   reports the skipped parts as dead rather than silently analysing
   wrong structure. *)

type pos = { p_line : int; p_col : int }

let pos_of (t : Lexer.token) = { p_line = t.Lexer.line; p_col = t.Lexer.col }

type call = {
  c_name : string;
  c_line : int;
  c_col : int;
  c_args : Lexer.token list;  (** tokens between the call's parens *)
  c_assigned_to : string option;
      (** [v] in [v = f(...)] / [T v = f(...)] / [v = (T)f(...)] *)
}

type expr = { x_toks : Lexer.token list; x_calls : call list }

type stmt =
  | S_block of stmt list
  | S_if of { i_cond : expr; i_then : stmt; i_else : stmt option }
  | S_while of { w_cond : expr; w_body : stmt }
  | S_do of { d_body : stmt; d_cond : expr }
  | S_for of {
      f_init : expr option;
      f_test : expr option;
      f_step : expr option;
      f_body : stmt;
    }
  | S_switch of { sw_cond : expr; sw_body : stmt }
  | S_case of { case_value : Lexer.token list; case_pos : pos }
  | S_default of pos
  | S_label of string * pos
  | S_goto of string * pos
  | S_return of { r_expr : expr option; r_pos : pos }
  | S_break of pos
  | S_continue of pos
  | S_expr of expr  (** expression or declaration statement *)
  | S_empty

type func = {
  fn_name : string;
  fn_pos : pos;
  fn_body : stmt list;
  fn_end : pos;  (** the body's closing brace *)
}

(* ------------------------------------------------------------------ *)
(* Call extraction from a token slice *)

let is_star t = match t.Lexer.kind with Lexer.Punct "*" -> true | _ -> false

(* Is the identifier at [idx] (followed by '(') in declarator position —
   a prototype, definition or other declaration rather than a call?
   True when, walking back over any '*'s, the previous token is a type
   keyword or another identifier: `pid_t fork(void);`,
   `static int helper(int)`, `char *strdup(const char *s)`. A call is
   preceded by an operator, '(', ',', '=', 'return', ... instead.
   (The one ambiguity inherited from C's grammar: `a = b * f();` looks
   like a pointer declarator and is skipped; multiplication by a call
   result is far rarer than pointer-returning prototypes.) *)
let declarator_position (toks : Lexer.token array) idx =
  let rec back j = if j >= 0 && is_star toks.(j) then back (j - 1) else j in
  let j = back (idx - 1) in
  if j < 0 then false
  else
    match toks.(j).Lexer.kind with
    | Lexer.Ident id -> (not (Lexer.is_keyword id)) || Lexer.is_type_keyword id
    | _ -> false

(* index of the ')' matching the '(' at [open_idx], or [n] *)
let matching_paren (toks : Lexer.token array) open_idx =
  let n = Array.length toks in
  let rec go i depth =
    if i >= n then n
    else
      match toks.(i).Lexer.kind with
      | Lexer.Punct "(" -> go (i + 1) (depth + 1)
      | Lexer.Punct ")" -> if depth = 1 then i else go (i + 1) (depth - 1)
      | _ -> go (i + 1) depth
  in
  go open_idx 0

(* [v] in `v = f(...)`, `T v = f(...)` or `v = (T)f(...)`, looking
   backwards from the call's identifier at [idx]. *)
let assigned_var (toks : Lexer.token array) idx =
  let j = idx - 1 in
  (* skip a cast: `v = (pid_t) f(...)` *)
  let j =
    if j >= 0 && toks.(j).Lexer.kind = Lexer.Punct ")" then begin
      let rec back i depth =
        if i < 0 then -1
        else
          match toks.(i).Lexer.kind with
          | Lexer.Punct ")" -> back (i - 1) (depth + 1)
          | Lexer.Punct "(" -> if depth = 1 then i - 1 else back (i - 1) (depth - 1)
          | _ -> back (i - 1) depth
      in
      back j 0
    end
    else j
  in
  if j >= 1 && toks.(j).Lexer.kind = Lexer.Punct "=" then
    match toks.(j - 1).Lexer.kind with
    | Lexer.Ident v when not (Lexer.is_keyword v) -> Some v
    | _ -> None
  else None

(* All call sites in [toks.(lo..hi-1)], in source order. *)
let calls_of_slice (toks : Lexer.token array) lo hi =
  let out = ref [] in
  let i = ref lo in
  while !i < hi - 1 do
    (match (toks.(!i).Lexer.kind, toks.(!i + 1).Lexer.kind) with
    | Lexer.Ident name, Lexer.Punct "("
      when (not (Lexer.is_keyword name)) && not (declarator_position toks !i)
      ->
      let close = matching_paren toks (!i + 1) in
      let close = min close hi in
      let args = Array.to_list (Array.sub toks (!i + 2) (max 0 (close - !i - 2))) in
      out :=
        {
          c_name = name;
          c_line = toks.(!i).Lexer.line;
          c_col = toks.(!i).Lexer.col;
          c_args = args;
          c_assigned_to = assigned_var toks !i;
        }
        :: !out
    | _ -> ());
    incr i
  done;
  List.rev !out

let expr_of_slice (toks : Lexer.token array) lo hi =
  {
    x_toks = Array.to_list (Array.sub toks lo (max 0 (hi - lo)));
    x_calls = calls_of_slice toks lo hi;
  }

(* ------------------------------------------------------------------ *)
(* Statement parsing *)

type cursor = { toks : Lexer.token array; mutable i : int }

let peek c k =
  if c.i + k < Array.length c.toks then Some c.toks.(c.i + k) else None

let cur c = peek c 0
let advance c = c.i <- c.i + 1
let at_punct c p = match cur c with Some t -> t.Lexer.kind = Lexer.Punct p | None -> false
let at_ident c id = match cur c with Some t -> t.Lexer.kind = Lexer.Ident id | None -> false
let eat_punct c p = if at_punct c p then advance c

(* Advance to just past the ')' matching an expected '(' here; returns
   the (lo, hi) slice of the tokens inside. Missing parens: empty. *)
let parens_slice c =
  if not (at_punct c "(") then (c.i, c.i)
  else begin
    let close = matching_paren c.toks c.i in
    let lo = c.i + 1 in
    c.i <- min (Array.length c.toks) (close + 1);
    (lo, min close (Array.length c.toks))
  end

(* Consume tokens up to (not including) the next ';' or '}' at paren
   and brace depth 0, returning the slice. The ';' is then eaten. *)
let statement_slice c =
  let n = Array.length c.toks in
  let lo = c.i in
  let rec go i pdepth bdepth =
    if i >= n then i
    else
      match c.toks.(i).Lexer.kind with
      | Lexer.Punct "(" -> go (i + 1) (pdepth + 1) bdepth
      | Lexer.Punct ")" -> go (i + 1) (max 0 (pdepth - 1)) bdepth
      | Lexer.Punct "{" -> go (i + 1) pdepth (bdepth + 1)
      | Lexer.Punct "}" when bdepth > 0 -> go (i + 1) pdepth (bdepth - 1)
      | Lexer.Punct "}" -> i (* unclosed statement: let the block end *)
      | Lexer.Punct ";" when pdepth = 0 && bdepth = 0 -> i
      | _ -> go (i + 1) pdepth bdepth
  in
  let hi = go c.i 0 0 in
  c.i <- hi;
  eat_punct c ";";
  (lo, hi)

let rec parse_stmt c : stmt =
  match cur c with
  | None -> S_empty
  | Some t -> (
    match t.Lexer.kind with
    | Lexer.Punct ";" ->
      advance c;
      S_empty
    | Lexer.Punct "{" ->
      advance c;
      let body = parse_stmts c in
      eat_punct c "}";
      S_block body
    | Lexer.Punct "}" -> S_empty (* caller's block end; do not consume *)
    | Lexer.Ident "if" ->
      advance c;
      let lo, hi = parens_slice c in
      let i_cond = expr_of_slice c.toks lo hi in
      let i_then = parse_stmt c in
      let i_else =
        if at_ident c "else" then begin
          advance c;
          Some (parse_stmt c)
        end
        else None
      in
      S_if { i_cond; i_then; i_else }
    | Lexer.Ident "while" ->
      advance c;
      let lo, hi = parens_slice c in
      S_while { w_cond = expr_of_slice c.toks lo hi; w_body = parse_stmt c }
    | Lexer.Ident "do" ->
      advance c;
      let d_body = parse_stmt c in
      if at_ident c "while" then advance c;
      let lo, hi = parens_slice c in
      eat_punct c ";";
      S_do { d_body; d_cond = expr_of_slice c.toks lo hi }
    | Lexer.Ident "for" ->
      advance c;
      let lo, hi = parens_slice c in
      (* split the header on ';' at depth 0 within the slice *)
      let parts =
        let cuts = ref [] in
        let depth = ref 0 in
        for k = lo to hi - 1 do
          match c.toks.(k).Lexer.kind with
          | Lexer.Punct "(" -> incr depth
          | Lexer.Punct ")" -> decr depth
          | Lexer.Punct ";" when !depth = 0 -> cuts := k :: !cuts
          | _ -> ()
        done;
        match List.rev !cuts with
        | [ a; b ] -> Some ((lo, a), (a + 1, b), (b + 1, hi))
        | _ -> None
      in
      let part (plo, phi) =
        if phi <= plo then None else Some (expr_of_slice c.toks plo phi)
      in
      let f_init, f_test, f_step =
        match parts with
        | Some (a, b, d) -> (part a, part b, part d)
        | None ->
          (* malformed header: treat the whole slice as the test *)
          (None, part (lo, hi), None)
      in
      S_for { f_init; f_test; f_step; f_body = parse_stmt c }
    | Lexer.Ident "switch" ->
      advance c;
      let lo, hi = parens_slice c in
      S_switch { sw_cond = expr_of_slice c.toks lo hi; sw_body = parse_stmt c }
    | Lexer.Ident "case" ->
      let case_pos = pos_of t in
      advance c;
      let n = Array.length c.toks in
      let lo = c.i in
      let rec go i depth =
        if i >= n then i
        else
          match c.toks.(i).Lexer.kind with
          | Lexer.Punct "(" -> go (i + 1) (depth + 1)
          | Lexer.Punct ")" -> go (i + 1) (max 0 (depth - 1))
          | Lexer.Punct ":" when depth = 0 -> i
          | Lexer.Punct (";" | "{" | "}") -> i (* malformed; stop *)
          | _ -> go (i + 1) depth
      in
      let hi = go c.i 0 in
      c.i <- hi;
      eat_punct c ":";
      S_case
        {
          case_value = Array.to_list (Array.sub c.toks lo (max 0 (hi - lo)));
          case_pos;
        }
    | Lexer.Ident "default" ->
      advance c;
      eat_punct c ":";
      S_default (pos_of t)
    | Lexer.Ident "goto" ->
      advance c;
      let target =
        match cur c with
        | Some { Lexer.kind = Lexer.Ident l; _ } ->
          advance c;
          l
        | _ -> ""
      in
      eat_punct c ";";
      S_goto (target, pos_of t)
    | Lexer.Ident "return" ->
      advance c;
      let lo, hi = statement_slice c in
      let r_expr = if hi <= lo then None else Some (expr_of_slice c.toks lo hi) in
      S_return { r_expr; r_pos = pos_of t }
    | Lexer.Ident "break" ->
      advance c;
      eat_punct c ";";
      S_break (pos_of t)
    | Lexer.Ident "continue" ->
      advance c;
      eat_punct c ";";
      S_continue (pos_of t)
    | Lexer.Ident l
      when (not (Lexer.is_keyword l))
           && (match peek c 1 with
              | Some { Lexer.kind = Lexer.Punct ":"; _ } -> true
              | _ -> false) ->
      advance c;
      advance c;
      S_label (l, pos_of t)
    | _ ->
      let lo, hi = statement_slice c in
      if hi <= lo then begin
        (* no progress on this token (stray punctuation): skip it *)
        advance c;
        S_empty
      end
      else S_expr (expr_of_slice c.toks lo hi))

and parse_stmts c : stmt list =
  let out = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match cur c with
    | None -> continue_ := false
    | Some { Lexer.kind = Lexer.Punct "}"; _ } -> continue_ := false
    | Some _ ->
      let before = c.i in
      let s = parse_stmt c in
      if c.i = before then begin
        (* safety: never loop without progress *)
        advance c;
        continue_ := false
      end
      else out := s :: !out
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Top level: find function definitions *)

let parse tokens : func list =
  let toks = Array.of_list tokens in
  let n = Array.length toks in
  let funcs = ref [] in
  let i = ref 0 in
  let bdepth = ref 0 in
  while !i < n - 1 do
    (match (toks.(!i).Lexer.kind, toks.(!i + 1).Lexer.kind) with
    | Lexer.Punct "{", _ -> incr bdepth
    | Lexer.Punct "}", _ -> bdepth := max 0 (!bdepth - 1)
    | Lexer.Ident name, Lexer.Punct "("
      when !bdepth = 0 && not (Lexer.is_keyword name) -> (
      let close = matching_paren toks (!i + 1) in
      if close + 1 < n && toks.(close + 1).Lexer.kind = Lexer.Punct "{" then begin
        (* function definition: parse the body *)
        let body_start = close + 2 in
        let c = { toks; i = body_start } in
        let body = parse_stmts c in
        let fn_end =
          if c.i < n then pos_of toks.(c.i)
          else if n > 0 then pos_of toks.(n - 1)
          else { p_line = 1; p_col = 1 }
        in
        eat_punct c "}";
        funcs :=
          {
            fn_name = name;
            fn_pos = pos_of toks.(!i);
            fn_body = body;
            fn_end;
          }
          :: !funcs;
        i := c.i - 1 (* the loop's incr brings us just past the body *)
      end
      else i := close (* prototype or call: skip past its parens *))
    | _ -> ());
    incr i
  done;
  List.rev !funcs

(* ------------------------------------------------------------------ *)
(* Whole-tree call collection (summaries, tests) *)

let rec calls_of_stmt s =
  let of_expr e = e.x_calls in
  let of_opt = function None -> [] | Some e -> e.x_calls in
  match s with
  | S_block l -> List.concat_map calls_of_stmt l
  | S_if { i_cond; i_then; i_else } ->
    of_expr i_cond @ calls_of_stmt i_then
    @ (match i_else with None -> [] | Some s -> calls_of_stmt s)
  | S_while { w_cond; w_body } -> of_expr w_cond @ calls_of_stmt w_body
  | S_do { d_body; d_cond } -> calls_of_stmt d_body @ of_expr d_cond
  | S_for { f_init; f_test; f_step; f_body } ->
    of_opt f_init @ of_opt f_test @ of_opt f_step @ calls_of_stmt f_body
  | S_switch { sw_cond; sw_body } -> of_expr sw_cond @ calls_of_stmt sw_body
  | S_return { r_expr; _ } -> of_opt r_expr
  | S_expr e -> of_expr e
  | S_case _ | S_default _ | S_label _ | S_goto _ | S_break _ | S_continue _
  | S_empty ->
    []

let calls_of_func f = List.concat_map calls_of_stmt f.fn_body
