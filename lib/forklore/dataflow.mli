(** Path-sensitive fork-fact dataflow over {!Cfg}.

    A forward worklist fixpoint tracks live fork/vfork windows with
    child/parent/error role sets (refined along guarded edges, so the
    true edge of [if (pid == 0)] is child-only and an edge whose
    refinement is empty is infeasible), fork-result variable bindings,
    unflushed stdio, un-CLOEXEC'd fds, held mutexes and thread
    creation. A second pass over the stabilised states emits
    {!obs} values that {!Rules} turns into findings.

    Precision policy: inside a fork-child window only callees on the
    {!Signal_safety} deny list — or local functions whose one-level
    {!summary} reaches one — are reported; unknown externs never are.
    Inside a vfork child window every call except exec*/[_exit] is
    reported. *)

module SMap : Map.S with type key = string

(** {2 Name sets} (shared with the v2 rules) *)

val fork_names : string list
val vfork_names : string list
val exec_names : string list

val escape_names : string list
(** exec family plus [_exit]/[_Exit] — the calls that legitimately end
    a forked child branch. [exit] is {e not} here: it runs atexit
    handlers and flushes stdio, so it terminates the path (see
    {!Cfg.default_noreturn}) without discharging the window. *)

val spawn_names : string list
val stdio_names : string list
val thread_create_names : string list
val lock_names : string list
val unlock_names : string list

(** {2 One-level interprocedural summaries} *)

type summary = {
  sm_forks : bool;
  sm_execs : bool;
  sm_unsafe : string option;  (** first known-unsafe function called *)
  sm_threads : bool;
  sm_flushes : bool;
  sm_stdio : string option;  (** first buffered-stdio write *)
}

val summarize : Cparse.func -> summary
val summaries_of : Cparse.func list -> summary SMap.t

(** {2 Roles and state (exposed for tests)} *)

type role = { r_child : bool; r_parent : bool; r_err : bool }

val role_of_rel : Cfg.rel -> role
(** Value semantics of a fork result: 0 = child, >0 = parent,
    <0 = error. [Req0] keeps only the child role, [Rgt0] only the
    parent, [Rne_m1] child-or-parent, ... *)

type fork_fact = {
  ff_site : int;
  ff_vfork : bool;
  ff_role : role;
  ff_escaped : bool;
}

type state = {
  st_forks : fork_fact list;
  st_binds : (string * int) list;
  st_dirty : int list;
  st_fds : (int * string option) list;
  st_locks : (int * string) list;
  st_thread : int option;
}

(** {2 Observations} *)

type obs =
  | O_unsafe_child of {
      o_at : Cparse.call;
      o_fork : Cparse.call;
      o_via : string option;  (** unsafe callee reached via a summary *)
    }
  | O_vfork_call of { o_at : Cparse.call; o_vfork : Cparse.call }
  | O_vfork_return of { o_pos : Cparse.pos; o_vfork : Cparse.call }
  | O_vfork_no_escape of Cparse.call
  | O_fork_no_escape of Cparse.call
      (** no child-capable path from this fork reaches exec*/[_exit] *)
  | O_stdio_at_fork of { o_fork : Cparse.call; o_stdio : Cparse.call }
  | O_threads_at_fork of { o_fork : Cparse.call; o_thread : Cparse.call }
  | O_lock_at_fork of { o_fork : Cparse.call; o_lock : Cparse.call }
  | O_fd_leak of { o_open : Cparse.call; o_spawn : Cparse.call }
  | O_child_return of { o_pos : Cparse.pos; o_fork : Cparse.call }
      (** a child-capable path reaches return/function-exit unescaped *)

type result = {
  res_cfg : Cfg.t;
  res_obs : obs list;  (** node order, then event order within a node *)
  res_dead : Cfg.site list;
}

val analyze : ?summaries:summary SMap.t -> Cfg.t -> result

val analyze_tokens : Lexer.token list -> result list
(** Parse, summarise every function (one level), analyse each CFG. *)
