(** Call-site scanner for C-like source, built on the position-tracking
    {!Lexer}.

    Counts occurrences of each tracked identifier whose next {e token}
    is ['('] — the same heuristic the paper-style "how much code still
    forks" surveys use, but comment/newline tolerant ([fork /*x*/ (…)]
    and [fork\n(…)] count). Identifiers embedded in longer names
    ([my_fork_helper]) never match, and comments, string and character
    literals are ignored. Every counted call site keeps its
    [line]/[col] position. *)

type call = { api : Api.t; id : string; line : int; col : int }
(** One counted call site: the tracked API, the exact identifier
    matched, and its 1-based position. *)

type result = {
  lines : int;
  counts : (Api.t * int) list;  (** every tracked API, zeroes included *)
  calls : call list;  (** in source order *)
}

val count : result -> Api.t -> int

val scan_string : string -> result

val scan_file : string -> (result, string) Result.t
(** Reads the file; [Error] carries a message on I/O failure. *)

type dir_report = {
  files_scanned : int;
  total_lines : int;
  total : (Api.t * int) list;
  skipped : (string * string) list;
      (** unreadable paths and their error messages *)
}

val scan_directory : ?extensions:string list -> string -> dir_report
(** Recursively scan files with the given extensions (default
    [[".c"; ".h"; ".cc"; ".cpp"; ".hh"]]). Unreadable files are
    reported in [skipped], never silently dropped. *)

val walk_files :
  ?extensions:string list ->
  string ->
  (string * result) list * (string * string) list
(** Per-file results (path, scan) in walk order, plus the skipped
    (path, error) pairs. A [root] that does not exist or cannot be read
    appears in the skipped list. *)

val scan_directory_files :
  ?extensions:string list -> string -> (string * result) list
(** [fst (walk_files root)] — per-file results only. *)

val total_hits : result -> int
(** Sum of call sites across every tracked API. *)
