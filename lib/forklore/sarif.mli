(** SARIF 2.1.0 export of forklint findings.

    Static Analysis Results Interchange Format output so forkscan
    reports plug into CI annotation surfaces (e.g. code-scanning
    upload). One run per report: the tool driver carries every
    registered rule (id, short description, default level, fix-hint
    help text), and each finding becomes a [result] with [ruleId],
    [ruleIndex] into that table, a [level] mapped from the forklint
    severity (Error→"error", Warn→"warning", Info→"note"), and a
    [physicalLocation] with 1-based [startLine]/[startColumn]. The fix
    hint rides both in the message text and in a [properties] bag
    alongside the paper citation. Output is deterministic — registry
    order for rules, {!Diagnostic.compare} order for results, no
    timestamps — so SARIF artifacts diff cleanly across CI runs. *)

val version : string
(** ["2.1.0"]. *)

val schema_uri : string

val level_of_severity : Diagnostic.severity -> string

val report : ?rules:Rules.t list -> Diagnostic.t list -> string
(** Render a complete SARIF log (default rule table: {!Rules.all}). *)
