(* The POSIX.1-2017 async-signal-safe function table (XSH §2.4.3,
   "Signal Concepts", IEEE Std 1003.1-2017). After fork() in a
   multithreaded process, the child may only call functions on this
   list until it reaches exec — the same restriction as a signal
   handler, and the core of the paper's §2.1 "fork doesn't compose"
   claim. The list below is the full Issue 7/TC2 table, including the
   str*/mem*/wcs* additions of TC1; implementation-defined extras
   (e.g. glibc's sigabbrev_np) are deliberately excluded so findings
   stay portable. *)

let safe_list =
  [
    "_Exit"; "_exit"; "abort"; "accept"; "access"; "aio_error";
    "aio_return"; "aio_suspend"; "alarm"; "bind"; "cfgetispeed";
    "cfgetospeed"; "cfsetispeed"; "cfsetospeed"; "chdir"; "chmod";
    "chown"; "clock_gettime"; "close"; "connect"; "creat"; "dup";
    "dup2"; "execl"; "execle"; "execv"; "execve"; "faccessat";
    "fchdir"; "fchmod"; "fchmodat"; "fchown"; "fchownat"; "fcntl";
    "fdatasync"; "fexecve"; "ffs"; "fork"; "fstat"; "fstatat";
    "fsync"; "ftruncate"; "futimens"; "getegid"; "geteuid"; "getgid";
    "getgroups"; "getpeername"; "getpgrp"; "getpid"; "getppid";
    "getsockname"; "getsockopt"; "getuid"; "htonl"; "htons"; "kill";
    "link"; "linkat"; "listen"; "longjmp"; "lseek"; "lstat";
    "memccpy"; "memchr"; "memcmp"; "memcpy"; "memmove"; "memset";
    "mkdir"; "mkdirat"; "mkfifo"; "mkfifoat"; "mknod"; "mknodat";
    "ntohl"; "ntohs"; "open"; "openat"; "pause"; "pipe"; "poll";
    "posix_trace_event"; "pselect"; "pthread_kill"; "pthread_self";
    "pthread_sigmask"; "raise"; "read"; "readlink"; "readlinkat";
    "recv"; "recvfrom"; "recvmsg"; "rename"; "renameat"; "rmdir";
    "select"; "sem_post"; "send"; "sendmsg"; "sendto"; "setgid";
    "setpgid"; "setsid"; "setsockopt"; "setuid"; "shutdown";
    "sigaction"; "sigaddset"; "sigdelset"; "sigemptyset";
    "sigfillset"; "sigismember"; "siglongjmp"; "signal"; "sigpause";
    "sigpending"; "sigprocmask"; "sigqueue"; "sigset"; "sigsuspend";
    "sleep"; "sockatmark"; "socket"; "socketpair"; "stat"; "stpcpy";
    "stpncpy"; "strcat"; "strchr"; "strcmp"; "strcpy"; "strcspn";
    "strlen"; "strncat"; "strncmp"; "strncpy"; "strnlen"; "strpbrk";
    "strrchr"; "strspn"; "strstr"; "strtok_r"; "symlink";
    "symlinkat"; "tcdrain"; "tcflow"; "tcflush"; "tcgetattr";
    "tcgetpgrp"; "tcsendbreak"; "tcsetattr"; "tcsetpgrp"; "time";
    "timer_getoverrun"; "timer_gettime"; "timer_settime"; "times";
    "umask"; "uname"; "unlink"; "unlinkat"; "utime"; "utimensat";
    "utimes"; "wait"; "waitpid"; "wcpcpy"; "wcpncpy"; "wcscat";
    "wcschr"; "wcscmp"; "wcscpy"; "wcscspn"; "wcslen"; "wcsncat";
    "wcsncmp"; "wcsncpy"; "wcsnlen"; "wcspbrk"; "wcsrchr"; "wcsspn";
    "wcsstr"; "wcstok"; "wmemchr"; "wmemcmp"; "wmemcpy"; "wmemmove";
    "wmemset"; "write";
  ]

(* Common libc/pthread functions that are definitely NOT
   async-signal-safe (they allocate, take internal locks, or touch
   stdio state). A call site in the fork→exec window is only reported
   when its callee is on this list or summarised as reaching it:
   unknown external functions stay un-flagged, which is what keeps the
   checker's precision honest on real trees. *)
let unsafe_list =
  [
    (* allocator *)
    "malloc"; "calloc"; "realloc"; "free"; "posix_memalign";
    "aligned_alloc"; "strdup"; "strndup"; "asprintf"; "vasprintf";
    (* stdio: buffered state + internal locks *)
    "printf"; "fprintf"; "sprintf"; "snprintf"; "vprintf"; "vfprintf";
    "vsnprintf"; "puts"; "fputs"; "putchar"; "fputc"; "putc";
    "fwrite"; "fread"; "fgets"; "fgetc"; "getchar"; "gets"; "scanf";
    "fscanf"; "sscanf"; "fopen"; "fclose"; "fflush"; "freopen";
    "fseek"; "ftell"; "rewind"; "setvbuf"; "setbuf"; "tmpfile";
    "perror";
    (* process teardown that runs atexit handlers / flushes stdio *)
    "exit"; "atexit"; "on_exit";
    (* pthread: lock state is orphaned in the child *)
    "pthread_mutex_lock"; "pthread_mutex_unlock";
    "pthread_mutex_trylock"; "pthread_cond_wait";
    "pthread_cond_signal"; "pthread_cond_broadcast"; "pthread_create";
    "pthread_join"; "pthread_once"; "pthread_rwlock_rdlock";
    "pthread_rwlock_wrlock"; "pthread_rwlock_unlock";
    (* C11 threads *)
    "mtx_lock"; "mtx_unlock"; "thrd_create"; "thrd_join"; "cnd_wait";
    "cnd_signal";
    (* misc allocating / locking libc *)
    "dlopen"; "dlsym"; "dlclose"; "syslog"; "getenv"; "setenv";
    "putenv"; "unsetenv"; "localtime"; "gmtime"; "ctime"; "asctime";
    "strftime"; "mktime"; "rand"; "srand"; "random"; "srandom";
    "drand48"; "strtok"; "gethostbyname"; "getaddrinfo"; "opendir";
    "readdir"; "closedir"; "strerror"; "system"; "popen"; "pclose";
    "regcomp"; "regexec"; "qsort"; "bsearch";
  ]

let safe_tbl = Hashtbl.create 256
let unsafe_tbl = Hashtbl.create 128

let () =
  List.iter (fun f -> Hashtbl.replace safe_tbl f ()) safe_list;
  List.iter (fun f -> Hashtbl.replace unsafe_tbl f ()) unsafe_list

let is_safe name = Hashtbl.mem safe_tbl name
let is_known_unsafe name = Hashtbl.mem unsafe_tbl name

let provenance =
  "POSIX.1-2017 (IEEE Std 1003.1-2017) XSH \194\1672.4.3 Signal Concepts, \
   async-signal-safe function table, Issue 7 TC2 (includes the TC1 \
   str*/mem*/wcs* additions)"
