(** Bounded retry with exponential backoff.

    The error-reporting half of the paper's spawn argument: because
    posix_spawn (and ksim's spawn) report failure {e synchronously} with
    an errno, a caller can actually distinguish "transient, try again"
    (EAGAIN, EINTR, ENOMEM under pressure) from "permanent, give up"
    (ENOENT) — something fork+exec callers almost never get right. This
    module is the reusable loop: generic over the error type and over
    how to sleep, so the same policy drives {!Spawn.spawn_retrying}
    (real [Unix.sleepf] seconds) and [Forkroad.Procbuilder] retries
    (simulated time via yields). *)

type policy = {
  max_attempts : int;  (** total attempts, including the first; >= 1 *)
  initial_delay : float;  (** delay before the 2nd attempt *)
  backoff : float;  (** delay multiplier per retry; >= 1 *)
  max_delay : float;  (** cap on any single delay *)
}

val default : policy
(** 4 attempts, 1 ms initial delay doubling to a 100 ms cap. *)

val delays : policy -> float list
(** The backoff sequence a fully-retried call sleeps through
    ([max_attempts - 1] delays). @raise Invalid_argument on a bad
    policy (so do the functions below). *)

val with_policy :
  policy ->
  sleep:(float -> unit) ->
  should_retry:('e -> bool) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** [with_policy p ~sleep ~should_retry f] runs [f ~attempt:1], retrying
    (after sleeping) while it returns an error that [should_retry]
    accepts and attempts remain. Returns the first success or the last
    error — the give-up error is always the real one from [f]. *)
