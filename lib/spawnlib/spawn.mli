(** Portable posix_spawn built on fork + exec with the CLOEXEC
    error-pipe protocol.

    This is the library form of the paper's recommendation: applications
    say {e what} the child should look like (file actions + attributes)
    instead of cloning themselves and mutating. Unlike raw fork+exec,
    exec failures in the child are reported {e synchronously} to the
    caller (the child writes the error over a close-on-exec pipe that a
    successful exec silently closes).

    Demand paging note: on a real OS the cold-start behaviour this
    library's simulated counterpart measures in E18 comes for free —
    [execve] maps the image file lazily and the kernel's page cache
    plays the pager. The place a {e user-mode} pager would slot in here
    is between [fork] and [exec]: a [userfaultfd] region (Linux) or
    external pager port (Mach) registered by the child, with a monitor
    process serving first-touch faults — the template-backed zygote
    spawns of {!Ksim.Pager} model exactly that serving loop, including
    the readahead batching an efficient monitor needs. *)

type error =
  | Exec_failed of Unix.error  (** exec or a file action failed in the child *)
  | Fork_failed of Unix.error

val error_message : error -> string

type attr = {
  env : string array option;  (** None = inherit the parent environment *)
  cwd : string option;  (** chdir in the child before actions *)
  new_session : bool;  (** setsid in the child *)
}

val default_attr : attr

val spawn :
  ?actions:File_action.t list ->
  ?attr:attr ->
  prog:string ->
  argv:string list ->
  unit ->
  (Process.t, error) result
(** Create a child running [prog]. On [Error (Exec_failed _)] the child
    has already been reaped — no zombie escapes. *)

val spawn_retrying :
  ?policy:Retry.policy ->
  ?actions:File_action.t list ->
  ?attr:attr ->
  prog:string ->
  argv:string list ->
  unit ->
  (Process.t, error) result
(** {!spawn} under {!Retry.with_policy} (default {!Retry.default}),
    sleeping real seconds between attempts. Retries only transient
    failures — [Fork_failed EAGAIN/ENOMEM/EINTR] and
    [Exec_failed EINTR]; permanent errors (ENOENT, EACCES, ...) and
    exhausted attempts return the last underlying error. *)

val run :
  ?actions:File_action.t list ->
  ?attr:attr ->
  prog:string ->
  argv:string list ->
  unit ->
  (Process.status, error) result
(** [spawn] then wait. *)

val capture :
  ?actions:File_action.t list ->
  ?attr:attr ->
  prog:string ->
  argv:string list ->
  unit ->
  (string * Process.status, error) result
(** [run] with the child's stdout captured into a string. *)

val shell : string -> (Process.status, error) result
(** [run] through ["/bin/sh -c"]. *)

val shell_capture : string -> (string * Process.status, error) result
