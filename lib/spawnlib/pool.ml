(* Prefork worker pool: the real-OS zygote analog. Workers are spawned
   once (paying the creation cost up front), warmed by a caller hook,
   and then serve requests over a line-oriented stdin/stdout protocol —
   so the per-request cost is a pipe round-trip, independent of how big
   the master has grown. Crashed workers are reaped and respawned under
   a {!Retry} policy, which is the part of the idiom fork-based pools
   usually get wrong. *)

type error =
  | Spawn_error of Spawn.error
  | Worker_lost
  | Warmup_failed of string

let error_message = function
  | Spawn_error e -> Spawn.error_message e
  | Worker_lost -> "worker died and its respawn could not serve the request"
  | Warmup_failed what -> "worker warmup failed: " ^ what

type stats = { size : int; spawned : int; respawns : int; served : int }

(* Per-slot serving statistics. A slot keeps its stats across crash
   respawns — operationally a slot is "worker #i of the pool", whatever
   pid currently fills it — which is exactly what a serving dashboard
   wants to watch. *)
type slot_stats = {
  slot : int;
  mutable slot_served : int;
  mutable slot_crashes : int;
  mutable slot_failed : int;
  latency : Metrics.Window.t;
      (** request latency in seconds, failed requests included *)
}

type worker = {
  proc : Process.t;
  to_worker : Unix.file_descr;  (** worker's stdin (write requests here) *)
  from_worker : in_channel;  (** worker's stdout (read replies here) *)
}

type t = {
  prog : string;
  argv : string list;
  attr : Spawn.attr;
  retry : Retry.policy;
  warmup : (send:(string -> unit) -> recv:(unit -> string) -> unit) option;
  workers : worker array;
  wstats : slot_stats array;
  mutable next : int;
  mutable spawned : int;
  mutable respawns : int;
  mutable served : int;
  mutable inflight : int;
  mutable max_inflight : int;
  mutable closed : bool;
}

let fd_int : Unix.file_descr -> int = Obj.magic

let write_line fd line =
  let s = line ^ "\n" in
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let dispose w =
  (try Unix.close w.to_worker with Unix.Unix_error _ -> ());
  (try close_in w.from_worker with Sys_error _ -> ());
  try ignore (Process.wait w.proc) with Unix.Unix_error _ -> ()

let start_worker t =
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let close_all () =
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ req_r; req_w; resp_r; resp_w ]
  in
  let actions =
    [
      File_action.dup2 ~src:(fd_int req_r) ~dst:0;
      File_action.dup2 ~src:(fd_int resp_w) ~dst:1;
    ]
  in
  match
    Spawn.spawn_retrying ~policy:t.retry ~actions ~attr:t.attr ~prog:t.prog
      ~argv:t.argv ()
  with
  | Error e ->
    close_all ();
    Error (Spawn_error e)
  | Ok proc -> (
    Unix.close req_r;
    Unix.close resp_w;
    let w = { proc; to_worker = req_w; from_worker = Unix.in_channel_of_descr resp_r } in
    t.spawned <- t.spawned + 1;
    match t.warmup with
    | None -> Ok w
    | Some hook -> (
      (* a worker that dies mid-warmup (End_of_file on recv, EPIPE on
         send) must not leak the process or let the exception escape
         create/submit: reap it and report a typed error *)
      match
        hook
          ~send:(fun line -> write_line w.to_worker line)
          ~recv:(fun () -> input_line w.from_worker)
      with
      | () -> Ok w
      | exception e ->
        dispose w;
        Error (Warmup_failed (Printexc.to_string e))))

let create ?(attr = Spawn.default_attr) ?(retry = Retry.default) ?warmup
    ?(latency_window = 10.0) ~size ~prog ~argv () =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  (* writing to a crashed worker must surface as EPIPE, not kill us *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let t =
    {
      prog;
      argv;
      attr;
      retry;
      warmup;
      workers = [||];
      wstats =
        Array.init size (fun slot ->
            {
              slot;
              slot_served = 0;
              slot_crashes = 0;
              slot_failed = 0;
              latency =
                Metrics.Window.create ~width:latency_window
                  ~hist_base:1e-6 ();
            });
      next = 0;
      spawned = 0;
      respawns = 0;
      served = 0;
      inflight = 0;
      max_inflight = 0;
      closed = false;
    }
  in
  let rec build acc n =
    if n = 0 then Ok (List.rev acc)
    else
      match start_worker t with
      | Ok w -> build (w :: acc) (n - 1)
      | Error e ->
        List.iter dispose acc;
        Error e
  in
  match build [] size with
  | Error e -> Error e
  | Ok ws -> Ok { t with workers = Array.of_list ws }

let size t = Array.length t.workers
let pids t = Array.to_list (Array.map (fun w -> Process.pid w.proc) t.workers)

let stats t =
  { size = size t; spawned = t.spawned; respawns = t.respawns; served = t.served }

let worker_stats t = Array.to_list t.wstats
let depth t = t.inflight
let max_depth t = t.max_inflight

let transact w line =
  write_line w.to_worker line;
  input_line w.from_worker

(* Round-robin dispatch. A dead worker (EPIPE on the request, EOF or a
   read error on the reply) is reaped, its slot respawned, and the
   request retried once on the replacement; a second death is reported
   rather than looped on. *)
let submit t line =
  if t.closed then invalid_arg "Pool.submit: pool is shut down";
  let i = t.next in
  t.next <- (t.next + 1) mod Array.length t.workers;
  let ws = t.wstats.(i) in
  let t0 = Unix.gettimeofday () in
  t.inflight <- t.inflight + 1;
  if t.inflight > t.max_inflight then t.max_inflight <- t.inflight;
  (* Latency is recorded whether the request succeeded or not: a crash
     plus respawn is exactly the tail a latency window exists to show,
     and dropping it understated p99 precisely when workers were dying. *)
  let record_latency () =
    let now = Unix.gettimeofday () in
    Metrics.Window.add ws.latency ~now (Float.max 0.0 (now -. t0))
  in
  let record_served () =
    t.served <- t.served + 1;
    ws.slot_served <- ws.slot_served + 1;
    record_latency ()
  in
  let record_failed () =
    ws.slot_failed <- ws.slot_failed + 1;
    record_latency ()
  in
  let attempt w =
    match transact w line with
    | reply -> Some reply
    | exception (Unix.Unix_error (Unix.EPIPE, _, _) | End_of_file | Sys_error _)
      ->
      ws.slot_crashes <- ws.slot_crashes + 1;
      None
  in
  Fun.protect
    ~finally:(fun () -> t.inflight <- t.inflight - 1)
    (fun () ->
      match attempt t.workers.(i) with
      | Some reply ->
        record_served ();
        Ok reply
      | None -> (
        dispose t.workers.(i);
        t.respawns <- t.respawns + 1;
        match start_worker t with
        | Error e ->
          record_failed ();
          Error e
        | Ok w -> (
          t.workers.(i) <- w;
          match attempt w with
          | Some reply ->
            record_served ();
            Ok reply
          | None ->
            record_failed ();
            Error Worker_lost)))

(* Select-based concurrent load driver. [submit] is strictly one
   request in flight per call; a serving benchmark needs hundreds. The
   driver keeps up to [concurrency] requests outstanding across the
   pool's workers, multiplexing replies with [Unix.select] and talking
   to the reply pipes with raw [Unix.read] (bypassing the [in_channel]
   buffer, which must be empty when the run starts — i.e. run it before
   any [submit]). A worker that dies mid-run (EOF on its reply pipe) is
   respawned and its in-flight requests are re-queued, so a SIGKILL at
   load is survived rather than reported as a batch of errors. *)
module Load = struct
  type result = {
    sent : int;
    completed : int;
    errors : int;
    retried : int;
    respawns : int;
    max_outstanding : int;
    wall_s : float;
    latencies : float array;
  }

  type slot = {
    idx : int;
    mutable cur : worker;
    mutable dead : bool;
    rbuf : Buffer.t;  (* partial reply line carried between reads *)
    inflight : (int * float) Queue.t;  (* (request id, send time) FIFO *)
  }

  let run ?(concurrency = 256) ?kill_after ~requests ~request t =
    if t.closed then invalid_arg "Pool.Load.run: pool is shut down";
    if concurrency < 1 then invalid_arg "Pool.Load.run: concurrency < 1";
    let nw = Array.length t.workers in
    let slots =
      Array.mapi
        (fun idx w ->
          { idx; cur = w; dead = false; rbuf = Buffer.create 256;
            inflight = Queue.create () })
        t.workers
    in
    let lat = ref [] in
    let sent = ref 0 and completed = ref 0 and errors = ref 0 in
    let retried = ref 0 and respawns = ref 0 and max_out = ref 0 in
    let killed = ref false in
    let resend = Queue.create () in
    let next = ref 0 in
    let outstanding () =
      Array.fold_left (fun a s -> a + Queue.length s.inflight) 0 slots
    in
    let crash s =
      (* replies the dead worker owed us will never come: re-queue them
         on the replacement (the protocol is a pure request/reply echo,
         so a duplicate send is harmless) *)
      let ids =
        List.rev (Queue.fold (fun acc (id, _) -> id :: acc) [] s.inflight)
      in
      Queue.clear s.inflight;
      Buffer.clear s.rbuf;
      dispose s.cur;
      incr respawns;
      t.respawns <- t.respawns + 1;
      match start_worker t with
      | Ok w ->
        s.cur <- w;
        t.workers.(s.idx) <- w;
        List.iter
          (fun id ->
            incr retried;
            Queue.add id resend)
          ids
      | Error _ ->
        s.dead <- true;
        errors := !errors + List.length ids
    in
    let send_one id =
      let rec pick k =
        if k = 0 then None
        else begin
          let s = slots.(!next) in
          next := (!next + 1) mod nw;
          if s.dead then pick (k - 1) else Some s
        end
      in
      match pick nw with
      | None -> incr errors
      | Some s -> (
        Queue.add (id, Unix.gettimeofday ()) s.inflight;
        (* on EPIPE the request stays queued: the read side will see EOF
           on this worker and [crash] will re-queue it *)
        try write_line s.cur.to_worker (request id)
        with Unix.Unix_error (Unix.EPIPE, _, _) | Sys_error _ -> ())
    in
    let complete s =
      match Queue.take_opt s.inflight with
      | None -> ()  (* unsolicited output line; not a reply we asked for *)
      | Some (_, t0) ->
        incr completed;
        lat := (Unix.gettimeofday () -. t0) :: !lat
    in
    let scratch = Bytes.create 65536 in
    let on_readable s =
      match
        Unix.read
          (Unix.descr_of_in_channel s.cur.from_worker)
          scratch 0 (Bytes.length scratch)
      with
      | 0 -> crash s
      | n ->
        Buffer.add_subbytes s.rbuf scratch 0 n;
        let data = Buffer.contents s.rbuf in
        Buffer.clear s.rbuf;
        let len = String.length data in
        let start = ref 0 in
        (try
           while !start < len do
             let nl = String.index_from data !start '\n' in
             complete s;
             start := nl + 1
           done
         with Not_found -> ());
        if !start < len then
          Buffer.add_substring s.rbuf data !start (len - !start)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> crash s
    in
    let t_start = Unix.gettimeofday () in
    let idle_rounds = ref 0 in
    while !completed + !errors < requests do
      (* keep the window full: re-queued work first, then fresh ids *)
      while
        outstanding () < concurrency
        && ((not (Queue.is_empty resend)) || !sent < requests)
        && Array.exists (fun s -> not s.dead) slots
      do
        (match Queue.take_opt resend with
        | Some id -> send_one id
        | None ->
          let id = !sent in
          incr sent;
          send_one id);
        let o = outstanding () in
        if o > !max_out then max_out := o
      done;
      (match kill_after with
      | Some k when (not !killed) && !completed >= k ->
        killed := true;
        let s = slots.(0) in
        if not s.dead then
          (try Unix.kill (Process.pid s.cur.proc) Sys.sigkill
           with Unix.Unix_error _ -> ())
      | _ -> ());
      let waiting =
        Array.to_list slots
        |> List.filter (fun s ->
               (not s.dead) && not (Queue.is_empty s.inflight))
      in
      if waiting = [] then begin
        if not (Array.exists (fun s -> not s.dead) slots) then
          (* every slot dead and respawns failing: fail the remainder *)
          errors := !errors + (requests - !completed - !errors)
      end
      else begin
        let fds =
          List.map (fun s -> Unix.descr_of_in_channel s.cur.from_worker)
            waiting
        in
        match Unix.select fds [] [] 1.0 with
        | [], _, _ ->
          incr idle_rounds;
          if !idle_rounds > 30 then
            failwith "Pool.Load.run: stalled (no worker replied for 30s)"
        | readable, _, _ ->
          idle_rounds := 0;
          List.iter
            (fun s ->
              if
                (not s.dead)
                && List.mem
                     (Unix.descr_of_in_channel s.cur.from_worker)
                     readable
              then on_readable s)
            waiting
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end
    done;
    let wall_s = Unix.gettimeofday () -. t_start in
    t.served <- t.served + !completed;
    let latencies = Array.of_list !lat in
    Array.sort compare latencies;
    {
      sent = !sent;
      completed = !completed;
      errors = !errors;
      retried = !retried;
      respawns = !respawns;
      max_outstanding = !max_out;
      wall_s;
      latencies;
    }
end

(* Read and discard the worker's remaining output until EOF. A worker
   blocked mid-[write] on a reply larger than the pipe buffer can never
   exit, so waiting on it before emptying its stdout pipe would deadlock
   the shutdown; draining unsticks the write and lets the worker see the
   closed stdin and terminate. *)
let drain_replies w =
  let buf = Bytes.create 65536 in
  try
    while input w.from_worker buf 0 (Bytes.length buf) > 0 do
      ()
    done
  with Sys_error _ | End_of_file -> ()

let shutdown t =
  if t.closed then []
  else begin
    t.closed <- true;
    Array.to_list
      (Array.map
         (fun w ->
           (try Unix.close w.to_worker with Unix.Unix_error _ -> ());
           drain_replies w;
           let status = Process.wait w.proc in
           (try close_in w.from_worker with Sys_error _ -> ());
           status)
         t.workers)
  end
