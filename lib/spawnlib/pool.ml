(* Prefork worker pool: the real-OS zygote analog. Workers are spawned
   once (paying the creation cost up front), warmed by a caller hook,
   and then serve requests over a line-oriented stdin/stdout protocol —
   so the per-request cost is a pipe round-trip, independent of how big
   the master has grown. Crashed workers are reaped and respawned under
   a {!Retry} policy, which is the part of the idiom fork-based pools
   usually get wrong. *)

type error =
  | Spawn_error of Spawn.error
  | Worker_lost

let error_message = function
  | Spawn_error e -> Spawn.error_message e
  | Worker_lost -> "worker died and its respawn could not serve the request"

type stats = { size : int; spawned : int; respawns : int; served : int }

(* Per-slot serving statistics. A slot keeps its stats across crash
   respawns — operationally a slot is "worker #i of the pool", whatever
   pid currently fills it — which is exactly what a serving dashboard
   wants to watch. *)
type slot_stats = {
  slot : int;
  mutable slot_served : int;
  mutable slot_crashes : int;
  latency : Metrics.Window.t;  (** request latency in seconds *)
}

type worker = {
  proc : Process.t;
  to_worker : Unix.file_descr;  (** worker's stdin (write requests here) *)
  from_worker : in_channel;  (** worker's stdout (read replies here) *)
}

type t = {
  prog : string;
  argv : string list;
  attr : Spawn.attr;
  retry : Retry.policy;
  warmup : (send:(string -> unit) -> recv:(unit -> string) -> unit) option;
  workers : worker array;
  wstats : slot_stats array;
  mutable next : int;
  mutable spawned : int;
  mutable respawns : int;
  mutable served : int;
  mutable inflight : int;
  mutable max_inflight : int;
  mutable closed : bool;
}

let fd_int : Unix.file_descr -> int = Obj.magic

let write_line fd line =
  let s = line ^ "\n" in
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let dispose w =
  (try Unix.close w.to_worker with Unix.Unix_error _ -> ());
  (try close_in w.from_worker with Sys_error _ -> ());
  try ignore (Process.wait w.proc) with Unix.Unix_error _ -> ()

let start_worker t =
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let close_all () =
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ req_r; req_w; resp_r; resp_w ]
  in
  let actions =
    [
      File_action.dup2 ~src:(fd_int req_r) ~dst:0;
      File_action.dup2 ~src:(fd_int resp_w) ~dst:1;
    ]
  in
  match
    Spawn.spawn_retrying ~policy:t.retry ~actions ~attr:t.attr ~prog:t.prog
      ~argv:t.argv ()
  with
  | Error e ->
    close_all ();
    Error (Spawn_error e)
  | Ok proc ->
    Unix.close req_r;
    Unix.close resp_w;
    let w = { proc; to_worker = req_w; from_worker = Unix.in_channel_of_descr resp_r } in
    t.spawned <- t.spawned + 1;
    (match t.warmup with
    | None -> ()
    | Some hook ->
      hook
        ~send:(fun line -> write_line w.to_worker line)
        ~recv:(fun () -> input_line w.from_worker));
    Ok w

let create ?(attr = Spawn.default_attr) ?(retry = Retry.default) ?warmup
    ?(latency_window = 10.0) ~size ~prog ~argv () =
  if size < 1 then invalid_arg "Pool.create: size < 1";
  (* writing to a crashed worker must surface as EPIPE, not kill us *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let t =
    {
      prog;
      argv;
      attr;
      retry;
      warmup;
      workers = [||];
      wstats =
        Array.init size (fun slot ->
            {
              slot;
              slot_served = 0;
              slot_crashes = 0;
              latency =
                Metrics.Window.create ~width:latency_window
                  ~hist_base:1e-6 ();
            });
      next = 0;
      spawned = 0;
      respawns = 0;
      served = 0;
      inflight = 0;
      max_inflight = 0;
      closed = false;
    }
  in
  let rec build acc n =
    if n = 0 then Ok (List.rev acc)
    else
      match start_worker t with
      | Ok w -> build (w :: acc) (n - 1)
      | Error e ->
        List.iter dispose acc;
        Error e
  in
  match build [] size with
  | Error e -> Error e
  | Ok ws -> Ok { t with workers = Array.of_list ws }

let size t = Array.length t.workers
let pids t = Array.to_list (Array.map (fun w -> Process.pid w.proc) t.workers)

let stats t =
  { size = size t; spawned = t.spawned; respawns = t.respawns; served = t.served }

let worker_stats t = Array.to_list t.wstats
let depth t = t.inflight
let max_depth t = t.max_inflight

let transact w line =
  write_line w.to_worker line;
  input_line w.from_worker

(* Round-robin dispatch. A dead worker (EPIPE on the request, EOF or a
   read error on the reply) is reaped, its slot respawned, and the
   request retried once on the replacement; a second death is reported
   rather than looped on. *)
let submit t line =
  if t.closed then invalid_arg "Pool.submit: pool is shut down";
  let i = t.next in
  t.next <- (t.next + 1) mod Array.length t.workers;
  let ws = t.wstats.(i) in
  let t0 = Unix.gettimeofday () in
  t.inflight <- t.inflight + 1;
  if t.inflight > t.max_inflight then t.max_inflight <- t.inflight;
  let record_served () =
    t.served <- t.served + 1;
    ws.slot_served <- ws.slot_served + 1;
    let now = Unix.gettimeofday () in
    Metrics.Window.add ws.latency ~now (Float.max 0.0 (now -. t0))
  in
  let attempt w =
    match transact w line with
    | reply -> Some reply
    | exception (Unix.Unix_error (Unix.EPIPE, _, _) | End_of_file | Sys_error _)
      ->
      ws.slot_crashes <- ws.slot_crashes + 1;
      None
  in
  Fun.protect
    ~finally:(fun () -> t.inflight <- t.inflight - 1)
    (fun () ->
      match attempt t.workers.(i) with
      | Some reply ->
        record_served ();
        Ok reply
      | None -> (
        dispose t.workers.(i);
        t.respawns <- t.respawns + 1;
        match start_worker t with
        | Error e -> Error e
        | Ok w -> (
          t.workers.(i) <- w;
          match attempt w with
          | Some reply ->
            record_served ();
            Ok reply
          | None -> Error Worker_lost)))

let shutdown t =
  if t.closed then []
  else begin
    t.closed <- true;
    Array.to_list
      (Array.map
         (fun w ->
           (try Unix.close w.to_worker with Unix.Unix_error _ -> ());
           let status = Process.wait w.proc in
           (try close_in w.from_worker with Sys_error _ -> ());
           status)
         t.workers)
  end
