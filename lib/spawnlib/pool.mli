(** Prefork worker pool — the real-OS analog of the simulator's zygote
    templates ({!Ksim.Api.freeze} / {!Ksim.Api.spawn_from_template}).

    A pool spawns [size] worker processes up front via {!Spawn.spawn}
    (so process creation is paid once, while the master is still small),
    optionally runs a warm-up exchange with each, and then serves
    requests over a line-oriented stdin/stdout pipe protocol: one
    request line in, one reply line out.  Workers that crash are reaped
    and respawned under a {!Retry} policy, and the in-flight request is
    retried once on the replacement.

    Creating a pool sets [SIGPIPE] to ignored for the whole process, so
    that writes to a crashed worker surface as [EPIPE] instead of
    killing the master. *)

type error =
  | Spawn_error of Spawn.error  (** a (re)spawn failed after retries *)
  | Worker_lost
      (** the worker died mid-request and its freshly respawned
          replacement died too *)
  | Warmup_failed of string
      (** the warmup hook raised (e.g. [End_of_file] from a worker that
          crashed mid-warmup); the worker has been reaped, not leaked *)

val error_message : error -> string

type stats = {
  size : int;  (** configured pool size *)
  spawned : int;  (** workers started over the pool's lifetime *)
  respawns : int;  (** crash-respawn events *)
  served : int;  (** successful request/reply round-trips *)
}

type slot_stats = {
  slot : int;  (** worker slot index, 0-based *)
  mutable slot_served : int;  (** requests served from this slot *)
  mutable slot_crashes : int;  (** times a request found this slot dead *)
  mutable slot_failed : int;
      (** requests that ended in [Error] on this slot (respawn failed or
          the replacement died too) *)
  latency : Metrics.Window.t;
      (** request latency in seconds over a sliding wall-clock window;
          query with [now = Unix.gettimeofday ()]. Failed requests are
          recorded too — crash + respawn time is exactly the tail the
          window exists to show. Slot stats survive crash respawns — the
          slot is the serving unit, whatever pid currently fills it. *)
}

type t

val create :
  ?attr:Spawn.attr ->
  ?retry:Retry.policy ->
  ?warmup:(send:(string -> unit) -> recv:(unit -> string) -> unit) ->
  ?latency_window:float ->
  size:int ->
  prog:string ->
  argv:string list ->
  unit ->
  (t, error) result
(** [create ~size ~prog ~argv ()] starts [size] workers running [prog]
    with their stdin/stdout wired to per-worker pipes.  [warmup] is
    invoked once per fresh worker (including crash respawns) with
    [send]/[recv] closures speaking the line protocol, before the worker
    serves any pool request.  [retry] governs transient spawn failures
    (see {!Spawn.spawn_retrying}).  If any worker fails to start, the
    already-started ones are torn down and the error is returned.
    [latency_window] is the width in seconds of each slot's sliding
    latency window (default 10).

    @raise Invalid_argument if [size < 1]. *)

val submit : t -> string -> (string, error) result
(** [submit t line] dispatches [line] (newline appended) to the next
    worker round-robin and waits for one reply line.  A dead worker is
    reaped, its slot respawned, and the request retried once.

    @raise Invalid_argument if the pool has been shut down. *)

val size : t -> int
val pids : t -> int list
(** Current worker pids, in slot order. *)

val stats : t -> stats

val worker_stats : t -> slot_stats list
(** Per-slot counters and latency windows, in slot order. *)

val depth : t -> int
(** Requests currently in flight (queue depth as seen by the pool). *)

val max_depth : t -> int
(** High-water mark of {!depth} over the pool's lifetime. *)

val shutdown : t -> Process.status list
(** Close every worker's stdin (EOF tells well-behaved workers to exit),
    drain any remaining reply output to EOF — a worker blocked writing a
    reply larger than the pipe buffer would otherwise never exit and the
    wait would deadlock — then wait for each, returning their exit
    statuses in slot order. Idempotent: subsequent calls return [[]]. *)

(** Concurrent open-loop load driver over a pool: keeps up to
    [concurrency] requests in flight across all workers at once,
    multiplexing replies with [Unix.select]. Run it on a fresh pool
    (before any {!submit}) — it reads the reply pipes directly,
    bypassing the buffered channel [submit] uses. *)
module Load : sig
  type result = {
    sent : int;  (** requests written to a worker (including re-sends) *)
    completed : int;  (** replies received *)
    errors : int;  (** requests abandoned (respawn failed) *)
    retried : int;  (** requests re-queued after their worker died *)
    respawns : int;  (** workers replaced mid-run *)
    max_outstanding : int;  (** high-water mark of in-flight requests *)
    wall_s : float;  (** run duration, seconds *)
    latencies : float array;  (** per-reply latency in seconds, sorted *)
  }

  val run :
    ?concurrency:int ->
    ?kill_after:int ->
    requests:int ->
    request:(int -> string) ->
    t ->
    result
  (** [run ~requests ~request t] drives [requests] request/reply
      round-trips through the pool, keeping up to [concurrency]
      (default 256) outstanding; [request i] is the line sent for
      request [i]. Workers that die mid-run are respawned and their
      in-flight requests re-sent (the protocol must tolerate duplicate
      delivery). [kill_after n] SIGKILLs worker slot 0 once [n] replies
      have arrived — a seeded crash-at-load probe.

      @raise Invalid_argument if the pool is shut down.
      @raise Failure if no worker produces a reply for 30 seconds. *)
end
