type counters = {
  mutable syscalls : int;
  by_kind : (string, int ref) Hashtbl.t;
  mutable forks : int;
  mutable vforks : int;
  mutable spawns : int;
  mutable execs : int;
  mutable faults : int;
  mutable cow_breaks : int;
  mutable cow_reuses : int;
  mutable frames_copied : int;
  mutable frames_zeroed : int;
  mutable pt_pages_copied : int;
  mutable ptes_copied : int;
  mutable tlb_flushes : int;
  mutable tlb_shootdowns : int;
  mutable tlb_invlpgs : int;
  mutable ipis_sent : int;
  mutable ipis_received : int;
  mutable cpu_migrations : int;
  mutable cpu_steals : int;
  mutable stdio_flushed_bytes : int;
  mutable stdio_double_flushed_bytes : int;
  mutable inj_frame_allocs : int;
  mutable inj_commits : int;
  mutable inj_syscalls : int;
  mutable inj_pager_fetches : int;
  mutable major_faults : int;
  mutable minor_faults : int;
  mutable pages_fetched : int;
  mutable readahead_hits : int;
  mutable oom_kills : int;
  mutable tpl_freezes : int;
  mutable tpl_spawns : int;
  mutable tpl_subtrees_shared : int;
  mutable tpl_pages_shared : int;
  mutable sock_connects : int;
  mutable sock_refused : int;
  mutable sock_accepts : int;
  mutable accept_queue_peak : int;
  mutable poll_wakeups : int;
  mutable poll_timeouts : int;
  mutable cycles : float;
  by_cost : (string, cost_entry) Hashtbl.t;
}

and cost_entry = { mutable cost_cycles : float; mutable cost_events : int }

let make_counters () =
  {
    syscalls = 0;
    by_kind = Hashtbl.create 16;
    forks = 0;
    vforks = 0;
    spawns = 0;
    execs = 0;
    faults = 0;
    cow_breaks = 0;
    cow_reuses = 0;
    frames_copied = 0;
    frames_zeroed = 0;
    pt_pages_copied = 0;
    ptes_copied = 0;
    tlb_flushes = 0;
    tlb_shootdowns = 0;
    tlb_invlpgs = 0;
    ipis_sent = 0;
    ipis_received = 0;
    cpu_migrations = 0;
    cpu_steals = 0;
    stdio_flushed_bytes = 0;
    stdio_double_flushed_bytes = 0;
    inj_frame_allocs = 0;
    inj_commits = 0;
    inj_syscalls = 0;
    inj_pager_fetches = 0;
    major_faults = 0;
    minor_faults = 0;
    pages_fetched = 0;
    readahead_hits = 0;
    oom_kills = 0;
    tpl_freezes = 0;
    tpl_spawns = 0;
    tpl_subtrees_shared = 0;
    tpl_pages_shared = 0;
    sock_connects = 0;
    sock_refused = 0;
    sock_accepts = 0;
    accept_queue_peak = 0;
    poll_wakeups = 0;
    poll_timeouts = 0;
    cycles = 0.0;
    by_cost = Hashtbl.create 16;
  }

(* Per-CPU machine-wide dimension, present only on SMP machines: where
   the per-pid tables answer "who paid", these arrays answer "which CPU
   did it happen on" — the axis the E16 scaling story is about. *)
type smp = {
  smp_cpus : int;
  sent : int array;  (** IPIs sent, by source CPU *)
  received : int array;  (** IPIs received, by interrupted CPU *)
  steals : int array;  (** work-steals, by the stealing CPU *)
  migrations : int array;  (** cross-CPU thread migrations, by new CPU *)
  fanout : (int, int ref) Hashtbl.t;
      (** full-AS shootdowns by remote-CPU count k (how many CPUs one
          fork/munmap/mprotect had to interrupt) *)
}

type t = {
  global : counters;
  by_pid : (Types.pid, counters) Hashtbl.t;
  mutable current : Types.pid option;
  mutable smp : smp option;
}

let create () =
  {
    global = make_counters ();
    by_pid = Hashtbl.create 16;
    current = None;
    smp = None;
  }

let enable_smp t ~cpus =
  if cpus < 1 then invalid_arg "Kstat.enable_smp: cpus < 1";
  t.smp <-
    Some
      {
        smp_cpus = cpus;
        sent = Array.make cpus 0;
        received = Array.make cpus 0;
        steals = Array.make cpus 0;
        migrations = Array.make cpus 0;
        fanout = Hashtbl.create 8;
      }

let smp t = t.smp

let global t = t.global
let set_current t pid = t.current <- pid
let current t = t.current
let pid_counters t pid = Hashtbl.find_opt t.by_pid pid

let pids t =
  Hashtbl.fold (fun pid _ acc -> pid :: acc) t.by_pid [] |> List.sort compare

(* Apply [f] to the global counters and, when a current pid is set, to
   that pid's counters too — every update below goes through here so the
   two views can never disagree. *)
let pid_slot t pid =
  match Hashtbl.find_opt t.by_pid pid with
  | Some c -> c
  | None ->
    let c = make_counters () in
    Hashtbl.add t.by_pid pid c;
    c

let update t f =
  f t.global;
  match t.current with
  | None -> ()
  | Some pid -> f (pid_slot t pid)

(* Like [update], but attributing to an explicit pid instead of
   [current] — for completions the scheduler performs on behalf of a
   parked thread (accept/poll wakeups in [retry_parked]), where no
   syscall is being dispatched and [current] is unset or wrong. *)
let update_for t pid f =
  f t.global;
  f (pid_slot t pid)

let on_syscall t kind =
  update t (fun c ->
      c.syscalls <- c.syscalls + 1;
      (match Hashtbl.find_opt c.by_kind kind with
      | Some r -> incr r
      | None -> Hashtbl.add c.by_kind kind (ref 1));
      match kind with
      | "fork" | "fork_eager" -> c.forks <- c.forks + 1
      | "vfork" -> c.vforks <- c.vforks + 1
      | "posix_spawn" -> c.spawns <- c.spawns + 1
      | "execve" -> c.execs <- c.execs + 1
      | _ -> ())

(* The Cost observer: translate cycle-meter categories into typed
   counters. Categories without a counter still contribute cycles. *)
let on_cost t category ~n cycles =
  update t (fun c ->
      c.cycles <- c.cycles +. cycles;
      (match Hashtbl.find_opt c.by_cost category with
      | Some e ->
        e.cost_cycles <- e.cost_cycles +. cycles;
        e.cost_events <- e.cost_events + n
      | None ->
        Hashtbl.add c.by_cost category
          { cost_cycles = cycles; cost_events = n });
      match category with
      | "fault:base" -> c.faults <- c.faults + n
      | "fault:cow-copy" ->
        c.cow_breaks <- c.cow_breaks + n;
        c.minor_faults <- c.minor_faults + n;
        c.frames_copied <- c.frames_copied + n
      | "fault:cow-reuse" ->
        c.cow_breaks <- c.cow_breaks + n;
        c.minor_faults <- c.minor_faults + n;
        c.cow_reuses <- c.cow_reuses + n
      | "fault:zero-fill" ->
        c.minor_faults <- c.minor_faults + n;
        c.frames_zeroed <- c.frames_zeroed + n
      | "pager:request" -> c.major_faults <- c.major_faults + n
      | "pager:fetch-zero" | "pager:fetch-image" | "pager:fetch-template" ->
        c.pages_fetched <- c.pages_fetched + n
      | "pager:readahead-hit" -> c.readahead_hits <- c.readahead_hits + n
      | "fork:pt-node" -> c.pt_pages_copied <- c.pt_pages_copied + n
      | "fork:pte" -> c.ptes_copied <- c.ptes_copied + n
      | "fork:eager-copy" -> c.frames_copied <- c.frames_copied + n
      | "tlb:flush" -> c.tlb_flushes <- c.tlb_flushes + n
      | "tlb:shootdown" -> c.tlb_shootdowns <- c.tlb_shootdowns + n
      | "tlb:invlpg" -> c.tlb_invlpgs <- c.tlb_invlpgs + n
      | _ -> ())

(* IPI observer (tracked-TLB mode): [dsts] are the remote CPUs actually
   interrupted (the sender is never among them), [n] pages per dst
   ([full] = whole-AS flush). Charged cycles arrive separately through
   [on_cost] ("tlb:shootdown"); this hook only moves the counters. *)
let on_ipi t ~src ~dsts ~full ~n =
  let k = List.length dsts in
  if k > 0 && n > 0 then begin
    update t (fun c ->
        c.ipis_sent <- c.ipis_sent + (n * k);
        c.ipis_received <- c.ipis_received + (n * k));
    match t.smp with
    | None -> ()
    | Some s ->
      s.sent.(src) <- s.sent.(src) + (n * k);
      List.iter (fun d -> s.received.(d) <- s.received.(d) + n) dsts;
      if full then begin
        match Hashtbl.find_opt s.fanout k with
        | Some r -> incr r
        | None -> Hashtbl.add s.fanout k (ref 1)
      end
  end

let on_steal t ~cpu =
  update t (fun c -> c.cpu_steals <- c.cpu_steals + 1);
  match t.smp with
  | None -> ()
  | Some s -> s.steals.(cpu) <- s.steals.(cpu) + 1

let on_migration t ~cpu =
  update t (fun c -> c.cpu_migrations <- c.cpu_migrations + 1);
  match t.smp with
  | None -> ()
  | Some s -> s.migrations.(cpu) <- s.migrations.(cpu) + 1

let on_injection t site =
  update t (fun c ->
      match site with
      | Fault.Frame_alloc -> c.inj_frame_allocs <- c.inj_frame_allocs + 1
      | Fault.Commit -> c.inj_commits <- c.inj_commits + 1
      | Fault.Syscall -> c.inj_syscalls <- c.inj_syscalls + 1
      | Fault.Pager_fetch -> c.inj_pager_fetches <- c.inj_pager_fetches + 1)

(* One OOM kill under the [Demand] commit policy: [pid] is the victim,
   attributed explicitly (the kill happens inside the *faulter's*
   syscall, so [current] is the wrong slot for the victim's death). *)
let on_oom_kill t ~pid =
  t.global.oom_kills <- t.global.oom_kills + 1;
  let c = pid_slot t pid in
  c.oom_kills <- c.oom_kills + 1

(* Success-only hooks called from the template syscall handlers (a
   failed freeze/spawn must not move any counter). [pages] is the
   template's resident set — footprint shared without per-page work. *)
let on_template_freeze t =
  update t (fun c -> c.tpl_freezes <- c.tpl_freezes + 1)

let on_template_spawn t ~subtrees ~pages =
  update t (fun c ->
      c.tpl_spawns <- c.tpl_spawns + 1;
      c.tpl_subtrees_shared <- c.tpl_subtrees_shared + subtrees;
      c.tpl_pages_shared <- c.tpl_pages_shared + pages)

(* Socket/poll observability. Accepts are attributed to an explicit pid
   (per-pid [sock_accepts] is the dispatch-imbalance axis E17 reports:
   with per-worker accept, whichever worker wakes first wins the
   connection) because the completion often happens in [retry_parked],
   after the accepting thread had long been parked. *)
let on_connect t ~refused =
  update t (fun c ->
      c.sock_connects <- c.sock_connects + 1;
      if refused then c.sock_refused <- c.sock_refused + 1)

let on_accept t ~pid =
  update_for t pid (fun c -> c.sock_accepts <- c.sock_accepts + 1)

let on_accept_queue t ~depth =
  update t (fun c ->
      if depth > c.accept_queue_peak then c.accept_queue_peak <- depth)

let on_poll_wake t ~pid ~timed_out =
  update_for t pid (fun c ->
      c.poll_wakeups <- c.poll_wakeups + 1;
      if timed_out then c.poll_timeouts <- c.poll_timeouts + 1)

let on_stdio_flush t ~bytes ~inherited =
  update t (fun c ->
      c.stdio_flushed_bytes <- c.stdio_flushed_bytes + bytes;
      c.stdio_double_flushed_bytes <- c.stdio_double_flushed_bytes + inherited)

let kinds c =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.by_kind []
  |> List.sort (fun (ka, na) (kb, nb) ->
         match compare nb na with 0 -> compare ka kb | d -> d)

let snapshot c =
  [
    ("syscalls", c.syscalls);
    ("forks", c.forks);
    ("vforks", c.vforks);
    ("spawns", c.spawns);
    ("execs", c.execs);
    ("faults", c.faults);
    ("cow-breaks", c.cow_breaks);
    ("cow-reuses", c.cow_reuses);
    ("frames-copied", c.frames_copied);
    ("frames-zeroed", c.frames_zeroed);
    ("pt-pages-copied", c.pt_pages_copied);
    ("ptes-copied", c.ptes_copied);
    ("tlb-flushes", c.tlb_flushes);
    ("tlb-shootdowns", c.tlb_shootdowns);
    ("tlb-invlpgs", c.tlb_invlpgs);
    ("stdio-flushed-bytes", c.stdio_flushed_bytes);
    ("stdio-double-flushed-bytes", c.stdio_double_flushed_bytes);
    ("inj-frame-allocs", c.inj_frame_allocs);
    ("inj-commits", c.inj_commits);
    ("inj-syscalls", c.inj_syscalls);
  ]
  (* demand-paging keys appear only once a pager served a fault or the
     OOM killer fired (minor_faults is always maintained but only
     emitted here), so snapshots of eager runs — including every
     historical BENCH json — stay byte-identical *)
  @ (if c.major_faults = 0 && c.oom_kills = 0 then []
     else
       [
         ("major-faults", c.major_faults);
         ("minor-faults", c.minor_faults);
         ("pages-fetched", c.pages_fetched);
         ("readahead-hits", c.readahead_hits);
         ("oom-kills", c.oom_kills);
         ("inj-pager-fetches", c.inj_pager_fetches);
       ])
  (* template keys appear only once the subsystem is used, so snapshots
     (and the BENCH json counters derived from them) of template-free
     runs are bit-identical to pre-template builds *)
  @ (if c.tpl_freezes = 0 then [] else [ ("tpl-freezes", c.tpl_freezes) ])
  @ (if c.tpl_spawns = 0 then []
     else
       [
         ("tpl-spawns", c.tpl_spawns);
         ("tpl-subtrees-shared", c.tpl_subtrees_shared);
         ("tpl-pages-shared", c.tpl_pages_shared);
       ])
  (* SMP keys likewise appear only on machines that sent an IPI or moved
     a thread, keeping single-CPU (and legacy-TLB) snapshots unchanged *)
  @ (if c.ipis_sent = 0 then []
     else
       [ ("ipis-sent", c.ipis_sent); ("ipis-received", c.ipis_received) ])
  @ (if c.cpu_migrations = 0 then []
     else [ ("cpu-migrations", c.cpu_migrations) ])
  @ (if c.cpu_steals = 0 then [] else [ ("cpu-steals", c.cpu_steals) ])
  (* socket/poll keys appear only once the socket family is used, so
     snapshots of socket-free runs stay bit-identical to older builds *)
  @ (if c.sock_connects = 0 && c.sock_accepts = 0 then []
     else
       [
         ("sock-connects", c.sock_connects);
         ("sock-refused", c.sock_refused);
         ("sock-accepts", c.sock_accepts);
         ("accept-queue-peak", c.accept_queue_peak);
       ])
  @
  if c.poll_wakeups = 0 then []
  else [ ("poll-wakeups", c.poll_wakeups); ("poll-timeouts", c.poll_timeouts) ]

let cycles c = c.cycles

(* Per-category cycle spend of one (per-pid or global) counter set,
   descending cycles, name as tie-break — the profiler's input for
   attributing subsystem groups to tree nodes. Kept out of [snapshot]
   and [to_json] so pre-existing BENCH output stays bit-identical. *)
let cost_categories c =
  Hashtbl.fold
    (fun k (e : cost_entry) acc -> (k, (e.cost_cycles, e.cost_events)) :: acc)
    c.by_cost []
  |> List.sort (fun (ka, (ca, _)) (kb, (cb, _)) ->
         match Float.compare cb ca with 0 -> compare ka kb | d -> d)

let to_json c =
  Metrics.Json.obj
    (List.map (fun (k, v) -> (k, Metrics.Json.int v)) (snapshot c)
    @ [
        ("cycles", Metrics.Json.num c.cycles);
        ( "by-kind",
          Metrics.Json.obj
            (List.map (fun (k, n) -> (k, Metrics.Json.int n)) (kinds c)) );
      ])
