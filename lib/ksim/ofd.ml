type backing =
  | Reg_file of Vfs.regular
  | Console of Buffer.t
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Null
  | Socket of Socket.t

type t = {
  backing : backing;
  readable : bool;
  writable : bool;
  append : bool;
  mutable offset : int;
  mutable refs : int;
}

let make backing ~flags =
  (match backing with
  | Pipe_read p -> Pipe.add_reader p
  | Pipe_write p -> Pipe.add_writer p
  (* sockets manage their own pipe-end counts: connect attaches both
     endpoints, Socket.release drops them on final close *)
  | Reg_file _ | Console _ | Null | Socket _ -> ());
  {
    backing;
    readable = flags.Types.read;
    writable = flags.Types.write;
    append = flags.Types.append;
    offset = 0;
    refs = 1;
  }

let backing t = t.backing
let readable t = t.readable
let writable t = t.writable
let offset t = t.offset
let refs t = t.refs

let alive t name = if t.refs <= 0 then invalid_arg (name ^ ": closed description")

let incref t =
  alive t "Ofd.incref";
  t.refs <- t.refs + 1

let close t =
  alive t "Ofd.close";
  t.refs <- t.refs - 1;
  if t.refs = 0 then
    match t.backing with
    | Pipe_read p -> Pipe.drop_reader p
    | Pipe_write p -> Pipe.drop_writer p
    | Socket s -> Socket.release s
    | Reg_file _ | Console _ | Null -> ()

type read_outcome = Data of string | End_of_file | Retry | Fail of Errno.t

type write_outcome =
  | Wrote of int
  | Retry_write
  | Broken_pipe
  | Fail_write of Errno.t

let read t n =
  alive t "Ofd.read";
  if not t.readable then Fail Errno.EBADF
  else if n < 0 then Fail Errno.EINVAL
  else
    match t.backing with
    | Reg_file r ->
      let s = Vfs.Reg.read r ~off:t.offset ~len:n in
      if s = "" && n > 0 then End_of_file
      else begin
        t.offset <- t.offset + String.length s;
        Data s
      end
    | Pipe_read p ->
      if Pipe.available p > 0 then Data (Pipe.read p n)
      else if Pipe.eof p then End_of_file
      else Retry
    | Pipe_write _ -> Fail Errno.EBADF
    | Socket s -> (
      match Socket.state s with
      | Socket.Connected { conn; role } ->
        let p = Socket.read_pipe conn role in
        if Pipe.available p > 0 then Data (Pipe.read p n)
        else if Pipe.eof p then End_of_file
        else Retry
      | Socket.Fresh | Socket.Bound _ | Socket.Listening _ | Socket.Closed
        ->
        (* read on an unconnected socket: EINVAL (we carry no ENOTCONN) *)
        Fail Errno.EINVAL)
    | Console _ | Null -> End_of_file

let write t s =
  alive t "Ofd.write";
  if not t.writable then Fail_write Errno.EBADF
  else
    match t.backing with
    | Reg_file r ->
      let off = if t.append then Vfs.Reg.size r else t.offset in
      let n = Vfs.Reg.write r ~off s in
      t.offset <- off + n;
      Wrote n
    | Console buf ->
      Buffer.add_string buf s;
      Wrote (String.length s)
    | Pipe_write p ->
      if Pipe.broken p then Broken_pipe
      else if Pipe.space p = 0 && String.length s > 0 then Retry_write
      else Wrote (Pipe.write p s)
    | Pipe_read _ -> Fail_write Errno.EBADF
    | Socket sk -> (
      match Socket.state sk with
      | Socket.Connected { conn; role } ->
        let p = Socket.write_pipe conn role in
        if Pipe.broken p then Broken_pipe
        else if Pipe.space p = 0 && String.length s > 0 then Retry_write
        else Wrote (Pipe.write p s)
      | Socket.Fresh | Socket.Bound _ | Socket.Listening _ | Socket.Closed
        ->
        Fail_write Errno.EINVAL)
    | Null -> Wrote (String.length s)

let describe t =
  match t.backing with
  | Reg_file _ -> "file"
  | Console _ -> "console"
  | Pipe_read _ -> "pipe:r"
  | Pipe_write _ -> "pipe:w"
  | Null -> "null"
  | Socket s -> Socket.describe s
