let sys req = Effect.perform (Sysreq.Sys req)
let getpid () = sys Sysreq.Getpid
let getppid () = sys Sysreq.Getppid
let gettid () = sys Sysreq.Gettid

(* The libc side of pthread_atfork: prepare handlers run in reverse
   registration order before the fork; parent and child handlers run in
   registration order after it (the child's before its body). *)
let fork ~child =
  let handlers = sys Sysreq.Atfork_list in
  let run sel order =
    List.iter
      (fun h -> match sel h with Some f -> f () | None -> ())
      (match order with `Fifo -> handlers | `Lifo -> List.rev handlers)
  in
  run (fun h -> h.Types.prepare) `Lifo;
  let wrapped_child () =
    run (fun h -> h.Types.in_child) `Fifo;
    child ()
  in
  let result = sys (Sysreq.Fork wrapped_child) in
  run (fun h -> h.Types.in_parent) `Fifo;
  result

let atfork ?prepare ?in_parent ?in_child () =
  sys (Sysreq.Atfork_register { Types.prepare; in_parent; in_child })
let fork_eager ~child = sys (Sysreq.Fork_eager child)
let vfork ~child = sys (Sysreq.Vfork child)

let spawn ?(file_actions = []) ?(attr = Types.default_attr) ?(argv = []) path =
  sys (Sysreq.Spawn { Types.path; argv; file_actions; attr })

let exec ?(argv = []) path = sys (Sysreq.Exec { path; argv })

let exit code =
  sys (Sysreq.Exit code);
  (* the kernel never resumes an exited thread *)
  assert false

let waitpid target = sys (Sysreq.Waitpid target)

let wait_for pid =
  Result.map (fun (_, status) -> status) (waitpid (Types.Child pid))

let wait_all () =
  let rec go acc =
    match waitpid Types.Any_child with
    | Ok r -> go (r :: acc)
    | Error _ -> List.rev acc
  in
  go []

let kill pid s = sys (Sysreq.Kill (pid, s))
let sigaction s d = sys (Sysreq.Sigaction (s, d))
let sigprocmask op set = sys (Sysreq.Sigprocmask (op, set))
let alarm n = sys (Sysreq.Alarm n)
let handled_signals name = sys (Sysreq.Handled_signals name)
let openf ?(flags = Types.o_rdonly) path = sys (Sysreq.Open (path, flags))
let close fd = sys (Sysreq.Close fd)
let read fd n = sys (Sysreq.Read (fd, n))
let write fd s = sys (Sysreq.Write (fd, s))

let write_all fd s =
  let rec go off =
    if off >= String.length s then Ok ()
    else
      match write fd (String.sub s off (String.length s - off)) with
      | Ok n -> go (off + n)
      | Error _ as e -> e
  in
  go 0

let read_all fd =
  let buf = Buffer.create 256 in
  let rec go () =
    match read fd 4096 with
    | Ok "" -> Ok (Buffer.contents buf)
    | Ok chunk ->
      Buffer.add_string buf chunk;
      go ()
    | Error _ as e -> e
  in
  go ()

let print s = match write_all 1 s with Ok () | Error _ -> ()
let dup fd = sys (Sysreq.Dup fd)
let dup2 ~src ~dst = sys (Sysreq.Dup2 { src; dst })
let set_cloexec fd v = sys (Sysreq.Set_cloexec (fd, v))
let pipe () = sys Sysreq.Pipe
let try_lock fd = sys (Sysreq.Try_lock fd)
let unlock fd = sys (Sysreq.Unlock fd)
let mmap ~len ~perm = sys (Sysreq.Mmap { len; perm })
let munmap ~addr ~len = sys (Sysreq.Munmap { addr; len })
let brk () = sys (Sysreq.Brk None)

let sbrk delta =
  match brk () with
  | Error _ as e -> e
  | Ok old -> (
    if delta = 0 then Ok old
    else
      match sys (Sysreq.Brk (Some (old + delta))) with
      | Ok _ -> Ok old
      | Error _ as e -> e)

let mem_read ~addr ~len = sys (Sysreq.Mem_read { addr; len })
let mem_write ~addr data = sys (Sysreq.Mem_write { addr; data })
let touch ~addr ~len = sys (Sysreq.Touch { addr; len })
let thread_create body = sys (Sysreq.Thread_create body)
let mutex_create () = sys Sysreq.Mutex_create
let mutex_lock id = sys (Sysreq.Mutex_lock id)
let mutex_unlock id = sys (Sysreq.Mutex_unlock id)
let mutex_trylock id = sys (Sysreq.Mutex_trylock id)
let mutex_reinit id = sys (Sysreq.Mutex_reinit id)
let yield () = sys Sysreq.Yield
let chdir path = sys (Sysreq.Chdir path)
let getcwd () = sys Sysreq.Getcwd
let pb_create () = sys Sysreq.Pb_create
let pb_map ~pid ~len ~perm = sys (Sysreq.Pb_map { pid; len; perm })
let pb_write ~pid ~addr data = sys (Sysreq.Pb_write { pid; addr; data })
let pb_copy_fd ~pid ~src ~dst = sys (Sysreq.Pb_copy_fd { pid; src; dst })
let pb_start ~pid ?(argv = []) path = sys (Sysreq.Pb_start { pid; path; argv })
let freeze ?pid () = sys (Sysreq.Template_freeze { pid })
let spawn_from_template tpl ~child = sys (Sysreq.Template_spawn { tpl; body = child })
let template_discard tpl = sys (Sysreq.Template_discard tpl)
let socket () = sys Sysreq.Socket
let bind fd ~port = sys (Sysreq.Bind (fd, port))
let listen fd ~backlog = sys (Sysreq.Listen { fd; backlog })
let accept fd = sys (Sysreq.Accept fd)
let connect fd ~port = sys (Sysreq.Connect (fd, port))
let poll ?(timeout = -1) interests = sys (Sysreq.Poll { interests; timeout })
