type site = Frame_alloc | Commit | Syscall | Pager_fetch

type trigger =
  | Frame_alloc_nth of int
  | Commit_nth of int
  | Syscall_nth of { kind : string; nth : int; errno : Errno.t }
  | Frame_alloc_random of float
  | Commit_random of float
  | Syscall_random of { kind : string option; p : float; errno : Errno.t }
  | Pager_fetch_nth of int
  | Pager_fetch_random of float

type spec = { seed : int; triggers : trigger list }

let no_faults = { seed = 0; triggers = [] }

let injectable = Errno.[ ENOMEM; EAGAIN; EINTR ]

let validate spec =
  let bad fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_errno e =
    if List.mem e injectable then Ok ()
    else bad "Fault: errno %s is not injectable" (Errno.to_string e)
  in
  let check_p p =
    if p >= 0.0 && p <= 1.0 then Ok ()
    else bad "Fault: probability %g outside [0, 1]" p
  in
  let check_nth n =
    if n >= 1 then Ok () else bad "Fault: occurrence number %d < 1" n
  in
  List.fold_left
    (fun acc tr ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match tr with
        | Frame_alloc_nth n | Commit_nth n | Pager_fetch_nth n -> check_nth n
        | Syscall_nth { nth; errno; _ } -> (
          match check_nth nth with Error _ as e -> e | Ok () -> check_errno errno)
        | Frame_alloc_random p | Commit_random p | Pager_fetch_random p ->
          check_p p
        | Syscall_random { p; errno; _ } -> (
          match check_p p with Error _ as e -> e | Ok () -> check_errno errno)))
    (Ok ()) spec.triggers

type t = {
  spec : spec;
  rng : Prng.Splitmix.t;
  mutable alloc_seen : int;
  mutable commit_seen : int;
  mutable syscall_seen : int;  (** fallible dispatches, any kind *)
  per_kind : (string, int) Hashtbl.t;  (** fallible dispatches by kind *)
  mutable pager_seen : int;
  mutable alloc_inj : int;
  mutable commit_inj : int;
  mutable syscall_inj : int;
  mutable pager_inj : int;
  (* random triggers pre-split by site so the single-stream draws at one
     site don't depend on how often the other sites fire *)
  alloc_random : float list;
  commit_random : float list;
  syscall_random : (string option * float * Errno.t) list;
  pager_random : float list;
  alloc_nth : int list;
  commit_nth : int list;
  syscall_nth : (string * int * Errno.t) list;
  pager_nth : int list;
}

let spec t = t.spec

let create spec =
  (match validate spec with Ok () -> () | Error m -> invalid_arg m);
  let alloc_random = ref [] and commit_random = ref [] in
  let syscall_random = ref [] and pager_random = ref [] in
  let alloc_nth = ref [] and commit_nth = ref [] in
  let syscall_nth = ref [] and pager_nth = ref [] in
  List.iter
    (function
      | Frame_alloc_nth n -> alloc_nth := n :: !alloc_nth
      | Commit_nth n -> commit_nth := n :: !commit_nth
      | Syscall_nth { kind; nth; errno } ->
        syscall_nth := (kind, nth, errno) :: !syscall_nth
      | Frame_alloc_random p -> alloc_random := p :: !alloc_random
      | Commit_random p -> commit_random := p :: !commit_random
      | Syscall_random { kind; p; errno } ->
        syscall_random := (kind, p, errno) :: !syscall_random
      | Pager_fetch_nth n -> pager_nth := n :: !pager_nth
      | Pager_fetch_random p -> pager_random := p :: !pager_random)
    spec.triggers;
  {
    spec;
    rng = Prng.Splitmix.create ~seed:spec.seed;
    alloc_seen = 0;
    commit_seen = 0;
    syscall_seen = 0;
    per_kind = Hashtbl.create 8;
    pager_seen = 0;
    alloc_inj = 0;
    commit_inj = 0;
    syscall_inj = 0;
    pager_inj = 0;
    alloc_random = !alloc_random;
    commit_random = !commit_random;
    syscall_random = !syscall_random;
    pager_random = !pager_random;
    alloc_nth = !alloc_nth;
    commit_nth = !commit_nth;
    syscall_nth = !syscall_nth;
    pager_nth = !pager_nth;
  }

(* Each random trigger consumes exactly one draw per occurrence whether
   or not it fires, so a schedule's injection points are a pure function
   of (seed, occurrence histories) — adding a trigger never shifts the
   draws of the ones already there (list order is spec order). *)
let draw t p = p > 0.0 && Prng.Splitmix.float t.rng < p

let on_frame_alloc t =
  t.alloc_seen <- t.alloc_seen + 1;
  let nth_hit = List.mem t.alloc_seen t.alloc_nth in
  let rand_hit =
    List.fold_left (fun hit p -> draw t p || hit) false t.alloc_random
  in
  if nth_hit || rand_hit then begin
    t.alloc_inj <- t.alloc_inj + 1;
    true
  end
  else false

let on_commit t =
  t.commit_seen <- t.commit_seen + 1;
  let nth_hit = List.mem t.commit_seen t.commit_nth in
  let rand_hit =
    List.fold_left (fun hit p -> draw t p || hit) false t.commit_random
  in
  if nth_hit || rand_hit then begin
    t.commit_inj <- t.commit_inj + 1;
    true
  end
  else false

let on_pager_fetch t =
  t.pager_seen <- t.pager_seen + 1;
  let nth_hit = List.mem t.pager_seen t.pager_nth in
  let rand_hit =
    List.fold_left (fun hit p -> draw t p || hit) false t.pager_random
  in
  if nth_hit || rand_hit then begin
    t.pager_inj <- t.pager_inj + 1;
    true
  end
  else false

let on_syscall t ~kind =
  t.syscall_seen <- t.syscall_seen + 1;
  let k = (match Hashtbl.find_opt t.per_kind kind with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace t.per_kind kind k;
  let nth_hit =
    List.fold_left
      (fun acc (kind', nth, errno) ->
        match acc with
        | Some _ -> acc
        | None -> if kind' = kind && nth = k then Some errno else None)
      None t.syscall_nth
  in
  let rand_hit =
    List.fold_left
      (fun acc (kind', p, errno) ->
        let applies = match kind' with None -> true | Some k' -> k' = kind in
        if applies && draw t p then match acc with Some _ -> acc | None -> Some errno
        else acc)
      None t.syscall_random
  in
  match (nth_hit, rand_hit) with
  | None, None -> None
  | (Some _ as e), _ | None, (Some _ as e) ->
    t.syscall_inj <- t.syscall_inj + 1;
    e

let injected t = function
  | Frame_alloc -> t.alloc_inj
  | Commit -> t.commit_inj
  | Syscall -> t.syscall_inj
  | Pager_fetch -> t.pager_inj

let total_injected t =
  t.alloc_inj + t.commit_inj + t.syscall_inj + t.pager_inj

let seen t = function
  | Frame_alloc -> t.alloc_seen
  | Commit -> t.commit_seen
  | Syscall -> t.syscall_seen
  | Pager_fetch -> t.pager_seen
