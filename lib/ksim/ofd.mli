(** Open file descriptions.

    One {!t} is the kernel object an fd points at. It is shared — not
    copied — by [dup], [fork] and [posix_spawn] inheritance, so the file
    offset is shared too: the POSIX rule whose interaction with fork the
    paper lists among the API's special cases. Reference counting tracks
    how many fd-table slots point here; the last close releases pipe
    ends. *)

type backing =
  | Reg_file of Vfs.regular
  | Console of Buffer.t
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t
  | Null
  | Socket of Socket.t

type t

val make : backing -> flags:Types.open_flags -> t
(** Refcount starts at 1. Pipe-end reader/writer counts are incremented
    here and decremented by the final {!close}. [Socket] backings manage
    their own pipe-end counts ({!Socket.connect} attaches them, the
    final close calls {!Socket.release}). *)

val backing : t -> backing
val readable : t -> bool
val writable : t -> bool
val offset : t -> int
val refs : t -> int
val incref : t -> unit

val close : t -> unit
(** Drop one reference; the final drop releases the backing (pipe end
    counts). Further I/O on a fully-closed description raises
    [Invalid_argument]. *)

(** Read/write outcomes: [Retry] means the caller (kernel) should block
    the thread and retry when the backing's state changes. *)
type read_outcome = Data of string | End_of_file | Retry | Fail of Errno.t

type write_outcome =
  | Wrote of int
  | Retry_write
  | Broken_pipe  (** no readers left: EPIPE + SIGPIPE *)
  | Fail_write of Errno.t

val read : t -> int -> read_outcome
val write : t -> string -> write_outcome

val describe : t -> string
(** e.g. ["pipe:r"], ["file"], ["console"] — for traces and stall
    reports. *)
