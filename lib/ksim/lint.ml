(* Dynamic twin of the forklint static rules: replay a kernel trace and
   flag the same hazards as they were actually observed at runtime.
   Findings reuse the Forklore.Rules registry metadata (ids, severity,
   citation, hint) so a static finding and a dynamic finding for the
   same hazard are the same rule, and the two layers can be
   cross-validated fixture-for-fixture.

   Positions: [file] is the trace name, [line] is the 1-based event
   sequence number the finding anchors to, [col] is always 1. *)

type origin = Forked | Vforked | Spawned

type pstate = {
  mutable origin : origin option;  (* None: init or pre-trace process *)
  mutable execed : bool;
  mutable exited : bool;
  mutable vfork_flagged : bool;
  mutable born_seq : int;
  mutable pre_exec : Trace.event list;  (* newest first, Forked only *)
  mutable held : int list;  (* mutex ids locked and not yet unlocked *)
}

let fresh () =
  {
    origin = None;
    execed = false;
    exited = false;
    vfork_flagged = false;
    born_seq = 0;
    pre_exec = [];
    held = [];
  }

(* syscalls that are not async-signal-safe territory for a forked child
   on its way to exec: memory management, locking, thread creation *)
let unsafe_child_syscalls =
  [ "mmap"; "brk"; "mutex_lock"; "mutex_create"; "thread_create" ]

let emit diags rule_id ~file ~line message =
  match Forklore.Rules.find rule_id with
  | None -> invalid_arg (Printf.sprintf "Ksim.Lint: unknown rule %s" rule_id)
  | Some r ->
    diags :=
      Forklore.Rules.make_diagnostic r ~file ~line ~col:1 ~message :: !diags

let check ?(file = "<ksim-trace>") tr =
  let procs : (Types.pid, pstate) Hashtbl.t = Hashtbl.create 16 in
  let state pid =
    match Hashtbl.find_opt procs pid with
    | Some s -> s
    | None ->
      let s = fresh () in
      Hashtbl.add procs pid s;
      s
  in
  let diags = ref [] in
  let line_of (e : Trace.event) = e.Trace.seq + 1 in
  (* Typed span detail is authoritative when present; string args remain
     as a fallback for hand-built traces. *)
  let threads_of (e : Trace.event) =
    match e.Trace.detail with
    | Trace.D_fork { live_threads } -> Some live_threads
    | _ -> Trace.int_arg e "threads"
  in
  let child_of (e : Trace.event) =
    match e.Trace.detail with
    | Trace.D_child { child; _ } -> Some child
    | _ -> Trace.int_arg e "child"
  in
  let inherited_fds_of (e : Trace.event) =
    match e.Trace.detail with
    | Trace.D_exec { inherited_fds } -> Some inherited_fds
    | _ -> Trace.int_arg e "inherited_fds"
  in
  let mutex_of (e : Trace.event) = Trace.int_arg e "mutex" in
  let flag_held_locks (e : Trace.event) s =
    match s.held with
    | [] -> ()
    | held ->
      emit diags "lock-across-fork" ~file ~line:(line_of e)
        (Printf.sprintf
           "pid %d created a process while holding mutex%s %s; the child's \
            cop%s stay%s locked forever"
           e.Trace.pid
           (if List.length held > 1 then "es" else "")
           (String.concat ", " (List.map string_of_int (List.rev held)))
           (if List.length held > 1 then "ies" else "y")
           (if List.length held > 1 then "" else "s"))
  in
  let on_event (e : Trace.event) =
    let s = state e.Trace.pid in
    (match e.Trace.what with
    | "fork" | "fork_eager" | "vfork" when s.held <> [] -> flag_held_locks e s
    | _ -> ());
    (match e.Trace.what with
    | "mutex_lock" -> (
      match mutex_of e with
      | Some id when not (List.mem id s.held) -> s.held <- id :: s.held
      | Some _ | None -> ())
    | "mutex_unlock" -> (
      match mutex_of e with
      | Some id -> s.held <- List.filter (fun h -> h <> id) s.held
      | None -> ())
    | _ -> ());
    (match e.Trace.what with
    | "fork" | "fork_eager" -> (
      match threads_of e with
      | Some n when n > 1 ->
        emit diags "fork-in-threads" ~file ~line:(line_of e)
          (Printf.sprintf
             "pid %d forked with %d live threads; only the forking thread \
              exists in the child and any mutex the others held is orphaned"
             e.Trace.pid n)
      | Some _ | None -> ())
    | "fork_child" | "vfork_child" | "spawn_child" -> (
      match child_of e with
      | None -> ()
      | Some child ->
        let cs = state child in
        cs.origin <-
          Some
            (match e.Trace.what with
            | "fork_child" -> Forked
            | "vfork_child" -> Vforked
            | _ -> Spawned);
        cs.born_seq <- e.Trace.seq)
    | "execve" ->
      (match inherited_fds_of e with
      | Some n when n > 0 ->
        emit diags "fd-no-cloexec" ~file ~line:(line_of e)
          (Printf.sprintf
             "pid %d execed with %d inherited fd(s) beyond stdio not marked \
              close-on-exec"
             e.Trace.pid n)
      | Some _ | None -> ());
      if (not s.execed) && s.origin = Some Forked then
        List.iter
          (fun (pe : Trace.event) ->
            if List.mem pe.Trace.what unsafe_child_syscalls then
              emit diags "unsafe-child-work" ~file ~line:(line_of pe)
                (Printf.sprintf
                   "pid %d ran %s between fork and exec; that window is \
                    async-signal-safe-only in a multithreaded parent"
                   pe.Trace.pid pe.Trace.what))
          (List.rev s.pre_exec);
      s.execed <- true
    | "exit" -> s.exited <- true
    | _ -> ());
    (* a vfork child may only exec or exit; anything else it runs is
       borrowing the parent's address space and stack *)
    (match (s.origin, e.Trace.what) with
    | Some Vforked, ("execve" | "exit") -> ()
    | Some Vforked, ("fork_child" | "vfork_child" | "spawn_child") -> ()
    | Some Vforked, other when (not s.execed) && not s.vfork_flagged ->
      s.vfork_flagged <- true;
      emit diags "vfork-misuse" ~file ~line:(line_of e)
        (Printf.sprintf
           "vforked pid %d ran %s before exec/_exit while borrowing the \
            parent's address space"
           e.Trace.pid other)
    | _ -> ());
    if s.origin = Some Forked && not s.execed then s.pre_exec <- e :: s.pre_exec
  in
  (* span End events repeat the Begin's payload; replay each syscall
     once by skipping them *)
  List.iter
    (fun (e : Trace.event) -> if e.Trace.phase <> Trace.End then on_event e)
    (Trace.events tr);
  (* end of trace: forked children that never reached exec *)
  Hashtbl.iter
    (fun pid s ->
      if s.origin = Some Forked && not s.execed then
        emit diags "fork-no-exec" ~file ~line:(s.born_seq + 1)
          (Printf.sprintf
             "forked pid %d never execed; it ran (or is still running) with \
              the parent's entire inherited state"
             pid))
    procs;
  List.sort Forklore.Diagnostic.compare !diags
