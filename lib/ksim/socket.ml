(* A deliberately small TCP-flavored socket: a connection is a pair of
   bounded pipes, one per direction, and the "network" is the kernel's
   port table. The handshake is synchronous-at-connect: a successful
   connect() enqueues a fully-wired connection on the listener's backlog
   queue, so the client can start writing before the server accepts —
   exactly the buffering a real SYN/accept queue provides. accept()
   merely adopts the server side of an already-established pair. *)

type conn = {
  c2s : Pipe.t;  (* client writes here, server reads *)
  s2c : Pipe.t;  (* server writes here, client reads *)
}

type role = Client | Server

type state =
  | Fresh
  | Bound of int
  | Listening of { port : int; backlog : int; pending : conn Queue.t }
  | Connected of { conn : conn; role : role }
  | Closed

type t = { mutable state : state }

let create () = { state = Fresh }
let state t = t.state

let port t =
  match t.state with
  | Bound p | Listening { port = p; _ } -> Some p
  | Fresh | Connected _ | Closed -> None

let bind t port =
  match t.state with
  | Fresh ->
    t.state <- Bound port;
    Ok ()
  | Bound _ | Listening _ | Connected _ | Closed -> Error Errno.EINVAL

let listen t backlog =
  if backlog < 1 then Error Errno.EINVAL
  else
    match t.state with
    | Bound port ->
      t.state <- Listening { port; backlog; pending = Queue.create () };
      Ok ()
    | Fresh | Listening _ | Connected _ | Closed -> Error Errno.EINVAL

(* Establish a connection against listener [srv], transitioning client
   socket [t] to [Connected]. All four pipe-end counts are attached here
   — both the client's ends and the server side that will sit in the
   accept queue — so neither direction sees a premature EOF between
   connect and accept. Backlog overflow is refused outright
   (ECONNREFUSED), never blocked: deterministic, and it matches a
   listener whose SYN queue is full with syncookies off. *)
let connect t ~srv =
  match (t.state, srv.state) with
  | Fresh, Listening { backlog; pending; _ } ->
    if Queue.length pending >= backlog then Error Errno.ECONNREFUSED
    else begin
      let conn = { c2s = Pipe.create (); s2c = Pipe.create () } in
      Pipe.add_writer conn.c2s;
      Pipe.add_reader conn.c2s;
      Pipe.add_writer conn.s2c;
      Pipe.add_reader conn.s2c;
      Queue.add conn pending;
      t.state <- Connected { conn; role = Client };
      Ok ()
    end
  | Fresh, _ -> Error Errno.ECONNREFUSED
  | (Bound _ | Listening _ | Connected _ | Closed), _ -> Error Errno.EINVAL

let backlog_depth t =
  match t.state with
  | Listening { pending; _ } -> Some (Queue.length pending)
  | Fresh | Bound _ | Connected _ | Closed -> None

(* Take the oldest established connection off the accept queue and wrap
   it in a fresh server-role socket. The server-side pipe-end counts
   were attached at connect time; the accepted socket adopts them. *)
let accept t =
  match t.state with
  | Listening { pending; _ } -> (
    match Queue.take_opt pending with
    | None -> None
    | Some conn -> Some { state = Connected { conn; role = Server } })
  | Fresh | Bound _ | Connected _ | Closed -> None

let read_pipe conn = function Client -> conn.s2c | Server -> conn.c2s
let write_pipe conn = function Client -> conn.c2s | Server -> conn.s2c

(* Drop one endpoint's pipe-end counts: its read end loses a reader (the
   peer's writes start failing EPIPE once no reader remains) and its
   write end loses a writer (the peer reads drain to EOF). *)
let release_endpoint conn role =
  Pipe.drop_reader (read_pipe conn role);
  Pipe.drop_writer (write_pipe conn role)

(* Final close from the OFD layer. A dying listener drains its accept
   queue, releasing the queued server endpoints so their clients observe
   EOF/EPIPE — connections refused by teardown, not leaked. *)
let release t =
  (match t.state with
  | Fresh | Bound _ | Closed -> ()
  | Listening { pending; _ } ->
    Queue.iter (fun conn -> release_endpoint conn Server) pending;
    Queue.clear pending
  | Connected { conn; role } -> release_endpoint conn role);
  t.state <- Closed

let describe t =
  match t.state with
  | Fresh -> "sock"
  | Bound p -> Printf.sprintf "sock:bound(%d)" p
  | Listening { port; _ } -> Printf.sprintf "sock:listen(%d)" port
  | Connected { role = Client; _ } -> "sock:conn:c"
  | Connected { role = Server; _ } -> "sock:conn:s"
  | Closed -> "sock:closed"
