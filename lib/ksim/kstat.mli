(** Typed kernel counters (the "/proc/stat" of ksim).

    One {!t} per kernel instance holds a global {!counters} record plus
    one per pid. The kernel feeds it from two directions:

    - syscall dispatch calls {!on_syscall} with the request name, and
      {!set_current} just before so memory-subsystem work is attributed
      to the calling process;
    - the shared {!Vmem.Cost} meter's observer hook calls {!on_cost}
      with every (category, event count, cycles) charge, which this
      module translates into typed counters (faults, COW breaks, frames
      copied, page-table pages copied, TLB flushes/shootdowns, ...);
    - {!Stdio} flush accounting arrives via {!on_stdio_flush}.

    Counters are cheap plain ints; reading them never perturbs the
    simulation. *)

type counters = {
  mutable syscalls : int;  (** every dispatched request *)
  by_kind : (string, int ref) Hashtbl.t;  (** per {!Sysreq.name} *)
  mutable forks : int;  (** fork + fork_eager *)
  mutable vforks : int;
  mutable spawns : int;
  mutable execs : int;
  mutable faults : int;  (** page faults taken ("fault:base") *)
  mutable cow_breaks : int;  (** COW write faults, copy or in-place *)
  mutable cow_reuses : int;  (** COW breaks resolved without a copy *)
  mutable frames_copied : int;  (** COW-break + eager-fork frame copies *)
  mutable frames_zeroed : int;  (** demand zero-fills *)
  mutable pt_pages_copied : int;  (** page-table pages copied by fork *)
  mutable ptes_copied : int;  (** present PTEs visited by fork *)
  mutable tlb_flushes : int;  (** local full flushes *)
  mutable tlb_shootdowns : int;
      (** remote-flush events (tracked-TLB mode: individual IPIs) *)
  mutable tlb_invlpgs : int;  (** single-page invalidations *)
  mutable ipis_sent : int;  (** tracked-TLB shootdown IPIs sent *)
  mutable ipis_received : int;  (** ... and received (equal in total) *)
  mutable cpu_migrations : int;  (** threads moved to another CPU *)
  mutable cpu_steals : int;  (** scheduler work-steal events *)
  mutable stdio_flushed_bytes : int;  (** bytes written by Stdio.flush *)
  mutable stdio_double_flushed_bytes : int;
      (** flushed bytes that were buffered by a {e different} process —
          the paper's duplicated-output hazard, quantified *)
  mutable inj_frame_allocs : int;  (** injected frame-allocation failures *)
  mutable inj_commits : int;  (** injected commit-charge failures *)
  mutable inj_syscalls : int;  (** injected syscall-reply errnos *)
  mutable inj_pager_fetches : int;  (** injected pager-pull denials *)
  mutable major_faults : int;
      (** first-touch faults served by the pager ("pager:request") *)
  mutable minor_faults : int;
      (** demand-zero fills + COW breaks — faults needing no pager *)
  mutable pages_fetched : int;  (** pages the pager pulled (readahead incl.) *)
  mutable readahead_hits : int;
      (** first accesses landing on a readahead-prefetched page *)
  mutable oom_kills : int;
      (** processes killed by the [Demand]-policy OOM chooser; the
          {e per-pid} value marks the victims *)
  mutable tpl_freezes : int;  (** templates frozen *)
  mutable tpl_spawns : int;  (** zygote spawns *)
  mutable tpl_subtrees_shared : int;
      (** page-table subtrees shared across all zygote spawns — the
          O(shared subtrees) work the flat-latency claim rests on *)
  mutable tpl_pages_shared : int;
      (** template pages inherited without per-page work *)
  mutable sock_connects : int;  (** connect() attempts (incl. refused) *)
  mutable sock_refused : int;  (** connects refused (no listener/backlog) *)
  mutable sock_accepts : int;
      (** connections accepted. The {e per-pid} values are the
          dispatch-imbalance axis: with per-worker accept, whichever
          worker wakes first wins the connection. *)
  mutable accept_queue_peak : int;  (** deepest accept queue observed *)
  mutable poll_wakeups : int;  (** poll() returns, ready or timed out *)
  mutable poll_timeouts : int;  (** poll() returns with nothing ready *)
  mutable cycles : float;  (** simulated cycles attributed here *)
  by_cost : (string, cost_entry) Hashtbl.t;
      (** full per-category (cycles, events) spend — the profiler's
          per-pid analogue of {!Vmem.Cost.by_category_counts} *)
}

and cost_entry = { mutable cost_cycles : float; mutable cost_events : int }

type smp = {
  smp_cpus : int;
  sent : int array;  (** IPIs sent, by source CPU *)
  received : int array;  (** IPIs received, by interrupted CPU *)
  steals : int array;  (** work-steals, by the stealing CPU *)
  migrations : int array;  (** cross-CPU thread migrations, by new CPU *)
  fanout : (int, int ref) Hashtbl.t;
      (** full-AS shootdowns by remote-CPU count k — the histogram of
          how many CPUs each fork/munmap/mprotect had to interrupt *)
}
(** The per-CPU dimension, present only on SMP machines: where the
    per-pid tables answer "who paid", these arrays answer "on which
    CPU". *)

type t

val create : unit -> t
val global : t -> counters

val enable_smp : t -> cpus:int -> unit
(** Allocate the per-CPU dimension. Done once by the SMP kernel at boot;
    single-CPU machines never call it, so their snapshots (and BENCH
    counters) are unchanged. @raise Invalid_argument if [cpus < 1]. *)

val smp : t -> smp option

val set_current : t -> Types.pid option -> unit
(** Attribute subsequent updates to this pid (as well as globally). *)

val current : t -> Types.pid option
val pid_counters : t -> Types.pid -> counters option
(** [None] when the pid never had anything attributed to it. *)

val pids : t -> Types.pid list
(** Sorted pids with per-pid counters. *)

val on_syscall : t -> string -> unit
val on_cost : t -> string -> n:int -> float -> unit
(** Shaped to plug directly into {!Vmem.Cost.set_observer}. *)

val on_injection : t -> Fault.site -> unit
(** Record one injected failure at the given {!Fault.site}. *)

val on_oom_kill : t -> pid:Types.pid -> unit
(** Record one OOM kill of victim [pid] (globally and in the victim's
    per-pid slot — the faulter whose touch triggered it is someone
    else). *)

val on_ipi : t -> src:int -> dsts:int list -> full:bool -> n:int -> unit
(** Record [n] pages' worth of shootdown IPIs from CPU [src] to each
    CPU in [dsts] (the sender is never a destination); [full] marks a
    whole-AS flush and feeds the fanout histogram. The cycles arrive
    separately through {!on_cost}; this only moves counters. *)

val on_steal : t -> cpu:int -> unit
(** CPU [cpu] stole a runnable thread from another CPU's queue. *)

val on_migration : t -> cpu:int -> unit
(** A thread changed home to CPU [cpu]. *)

val on_stdio_flush : t -> bytes:int -> inherited:int -> unit

val on_connect : t -> refused:bool -> unit
(** One connect() attempt by the current pid. *)

val on_accept : t -> pid:Types.pid -> unit
(** One accepted connection, attributed to an explicit [pid] — accept
    completions often happen in the scheduler's parked-thread retry,
    where no syscall is being dispatched. *)

val on_accept_queue : t -> depth:int -> unit
(** Observe an accept-queue depth (after a connect enqueued); keeps the
    peak. *)

val on_poll_wake : t -> pid:Types.pid -> timed_out:bool -> unit
(** One poll() completion for [pid]; [timed_out] when it returned with
    no fd ready. *)

val on_template_freeze : t -> unit
(** One successful freeze (failed freezes move no counter). *)

val on_template_spawn : t -> subtrees:int -> pages:int -> unit
(** One successful zygote spawn sharing [subtrees] page-table subtrees
    covering [pages] resident pages. *)

val kinds : counters -> (string * int) list
(** Syscall counts by kind, most frequent first. *)

val snapshot : counters -> (string * int) list
(** Every integer counter as a (name, value) list with stable names
    ("cow-breaks", "tlb-shootdowns", ...); subtracting two snapshots
    pointwise gives the counter activity between them. *)

val cycles : counters -> float

val cost_categories : counters -> (string * (float * int)) list
(** Per-category (cycles, events) spend of one counter set, descending
    cycles then name. Not part of {!snapshot}/{!to_json}, so existing
    BENCH output is unchanged. *)

val to_json : counters -> Metrics.Json.t
