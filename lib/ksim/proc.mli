(** Process control blocks and threads.

    The PCB enumerates exactly the state fork must reason about — address
    space, fd table, signal state, mutex memory, alarms, file locks —
    which is the paper's "fork infects every subsystem" point made
    concrete: every field below carries a fork-specific rule (copied,
    shared, cleared or dropped), implemented in {!Kernel}. *)

type pending =
  | Pending :
      'a Sysreq.t * ('a, unit) Effect.Deep.continuation
      -> pending

type thread_state = Ready | Running | Blocked of string | Exited

type entry = Start of (unit -> unit) | Resume of (unit -> unit)

type thread = {
  tid : Types.tid;
  owner : Types.pid;
  is_main : bool;  (** its return terminates the whole process *)
  mutable tstate : thread_state;
  mutable entry : entry option;  (** what to run when next scheduled *)
  mutable pending : pending option;  (** set while suspended in a syscall *)
  mutable cpu : int;
      (** simulated CPU this thread last ran on (its affinity home in
          the SMP scheduler); always 0 on a single-CPU machine *)
}

type state = Alive | Zombie of Types.status | Reaped of Types.status

type t = {
  pid : Types.pid;
  mutable parent : Types.pid;
  mutable pstate : state;
  mutable aspace : Vmem.Addr_space.t;
  mutable vfork_active : bool;
      (** true while this process borrows its parent's address space *)
  mutable fdt : Fd_table.t;
  sigdisp : Usignal.disposition array;  (** indexed by signal number *)
  mutable sigmask : Usignal.Set.t;
  mutable sigpending : Usignal.Set.t;
  handler_runs : (string, int) Hashtbl.t;
  mutable cwd : string;
  mutable mutexes : Sync.table;
  mutable threads : thread list;
  mutable children : Types.pid list;
  mutable program : string;
  mutable held_locks : Vfs.regular list;
  mutable atfork : Types.atfork list;  (** registration order *)
  mutable tpl_deps : int list;
      (** template ids whose pages this process's address space may map:
          set at zygote spawn, inherited across fork, released when the
          address space is destroyed. Gates template discard (EBUSY). *)
}

val make_thread :
  tid:Types.tid -> owner:Types.pid -> is_main:bool -> (unit -> unit) -> thread

val make :
  pid:Types.pid ->
  parent:Types.pid ->
  aspace:Vmem.Addr_space.t ->
  fdt:Fd_table.t ->
  cwd:string ->
  program:string ->
  t
(** Fresh PCB: default dispositions, empty mask/pending, fresh mutex
    table, no threads. *)

val disposition : t -> Usignal.t -> Usignal.disposition
val set_disposition : t -> Usignal.t -> Usignal.disposition -> unit
val live_threads : t -> thread list
val find_thread : t -> Types.tid -> thread option
val is_alive : t -> bool
val count_handler_run : t -> string -> unit
val handler_runs : t -> string -> int
val pp_state : Format.formatter -> state -> unit
