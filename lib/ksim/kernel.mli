(** The simulated kernel: machine state, scheduler and syscall engine.

    One {!t} is a machine. Simulated programs are OCaml closures that
    perform {!Sysreq.Sys} effects; the kernel runs them under a
    deterministic cooperative scheduler (threads yield at syscalls).
    Determinism: given the same config (including [seed]) and programs,
    a run is bit-for-bit reproducible.

    Process-creation semantics implemented here (the paper's subject):
    - [Fork]: COW address-space clone, fd table shared-description clone,
      dispositions copied, pending signals cleared, {e only the calling
      thread} replicated, mutex memory copied verbatim (orphaned locks!),
      alarms not inherited, file locks not inherited.
    - [Vfork]: child borrows the parent's address space; parent blocks
      until the child execs or exits; child stores are visible to the
      parent.
    - [Exec]: fresh image (ASLR-randomised when enabled), caught signals
      reset, close-on-exec fds closed, other threads destroyed, alarms
      and file locks preserved.
    - [Spawn] (posix_spawn): fresh process with no address-space copy;
      fd inheritance + file actions + attributes; errors (e.g. ENOENT)
      are reported synchronously to the caller — the error-reporting
      advantage the paper credits spawn with. *)

type config = {
  phys_pages : int;  (** physical memory size, in 4 KiB frames *)
  cost_params : Vmem.Cost.params option;
      (** override the cycle-cost constants (None = {!Vmem.Cost.default});
          used by cost-model ablations such as the THP experiment *)
  cpus : int;  (** parallelism assumed by the TLB shootdown model *)
  commit_policy : Vmem.Frame.policy;
  aslr : bool;  (** randomise image/stack/mmap placement at exec *)
  seed : int;
  sched : [ `Fifo | `Random ];  (** ready-queue discipline *)
  trace_capacity : int option;  (** [Some n] enables syscall tracing *)
  pipe_capacity : int;
  max_fds : int;
  fault : Fault.spec option;
      (** [Some spec] arms deterministic fault injection: frame
          allocations, commit charges and fallible syscall replies fail
          according to the schedule (see {!Fault}). Injections land in
          {!Kstat} and, when tracing, on the span's args. *)
  smp : bool;
      (** [true] turns [cpus] into real simulated CPUs: per-CPU run
          queues with affinity + work stealing, per-address-space CPU
          masks, and tracked TLB shootdowns that IPI only the remote
          CPUs actually caching the space (see {!Vmem.Tlb.ipi}).
          [false] (the default) keeps the legacy single-queue scheduler
          and broadcast shootdown model — bit-identical to every
          historical BENCH number. With [smp], [cpus] must be in
          1..{!Vmem.Cpuset.max_cpus}. *)
  par_jobs : int;
      (** SMP only: OCaml domains used to execute eligible syscall cores
          of one scheduling round concurrently (fork's address-space
          clone, large touches — when the round's pendings touch
          disjoint COW families). The kernel records each core's charges
          against scratch meters and replays them sequentially in CPU
          order, so results are bit-identical at any value; [1] (the
          default) runs everything in the calling domain. Workers come
          from the shared {!Workload.Par} budget. *)
  demand_paging : bool;
      (** Install a simulated user-mode pager ({!Pager}) into every
          address space the kernel creates: exec maps image segments as
          lazy PTEs (O(segments), near-constant-time) and zygote spawns
          share the template by reference, with first touches taken as
          major faults that pull pages through the pager at
          ["pager:*"] cost. [false] (the default) keeps every fault
          path — and every historical BENCH number — bit-identical to
          the eager simulator. *)
  pager_readahead : int;
      (** Pages of same-VMA readahead the pager pulls per major fault
          (the E18 batching knob); [0] fetches exactly the faulting
          page. Must be [>= 0]. *)
}

val default_config : config
(** 1 GiB memory, 4 cpus, [Strict] commit, ASLR on, seed 42, FIFO
    scheduling, no tracing, 64 KiB pipes, 256 fds, no fault injection,
    SMP off (legacy broadcast-TLB accounting), [par_jobs = 1], demand
    paging off. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config
val register : t -> Program.t -> unit
(** Make a program exec-able under its name. Re-registering replaces. *)

val register_all : t -> Program.t list -> unit
val find_program : t -> string -> Program.t option
val cost : t -> Vmem.Cost.t
val frames : t -> Vmem.Frame.t
val vfs : t -> Vfs.t
val tlb : t -> Vmem.Tlb.t
val console : t -> string
(** Everything written to /dev/console so far. *)

val trace : t -> Trace.t option

val kstat : t -> Kstat.t
(** The machine's typed counters; always on (updating them is cheap). *)

val blame : t -> Vmem.Blame.t
(** The cost-attribution ledger; always on. Each creation syscall
    (fork, vfork, spawn, builder, template freeze / zygote spawn) gets a
    ledger event carrying the cycles charged during the syscall (sync)
    and the COW-break cycles its sharing later induced (deferred). *)

val fault : t -> Fault.t option
(** The armed fault injector, for inspecting injection counts. *)

val clock : t -> int

val image_base : int
(** The fixed address exec maps a program's text at (the data segment
    follows immediately; image layout is not ASLR'd). Exposed so
    demand-paging experiments and tests can touch image pages
    directly. *)

val spawn_init : t -> ?argv:string list -> string -> (Types.pid, Errno.t) result
(** Create the initial process from a registered program, fds 0/1/2 on
    the console. Usually pid 1. Does not run it — call {!run}. *)

type stall = { pid : Types.pid; tid : Types.tid; why : string }

type outcome =
  | All_exited
  | Stalled of stall list
      (** threads remain but none can ever run — e.g. the post-fork
          mutex deadlock of experiment E3 *)
  | Tick_limit

val pp_outcome : Format.formatter -> outcome -> unit

val run : ?max_ticks:int -> t -> outcome
(** Schedule until every thread exits, no progress is possible, or
    [max_ticks] (default 10_000_000) slices elapse. Re-entrant: new
    processes may be spawned between runs. *)

val status_of : t -> Types.pid -> Types.status option
(** Exit status of a terminated process (recorded even after reaping). *)

val find_proc : t -> Types.pid -> Proc.t option
val procs : t -> Proc.t list

val find_template : t -> int -> Template.t option
(** Look up a live (not yet discarded) zygote template by id. *)

val templates : t -> Template.t list
(** Live templates, sorted by id — accounting introspection for tests
    (pinned-page bookkeeping) and experiments. *)

val boot :
  ?config:config ->
  programs:Program.t list ->
  ?argv:string list ->
  string ->
  (t * outcome, Errno.t) result
(** Convenience: create, register, spawn init from the named program,
    run to completion. *)
