(** Simulated stream sockets.

    A connection is a pair of bounded {!Pipe} buffers (one per
    direction) and the "network" is the kernel's port table. The
    handshake completes inside [connect]: a successful connect enqueues
    a fully-wired connection on the listener's backlog queue, so the
    client may write before the server accepts — the buffering a real
    SYN/accept queue provides. [accept] adopts the server half of an
    already-established pair.

    Blocking policy lives in the kernel (like {!Pipe}): this module only
    exposes the state the kernel inspects to decide when a thread may
    proceed. *)

type conn = { c2s : Pipe.t; s2c : Pipe.t }
type role = Client | Server

type state =
  | Fresh  (** socket() has run, nothing else *)
  | Bound of int  (** bound to a port *)
  | Listening of { port : int; backlog : int; pending : conn Queue.t }
  | Connected of { conn : conn; role : role }
  | Closed  (** released by the final OFD close *)

type t

val create : unit -> t
val state : t -> state

val port : t -> int option
(** The bound/listening port, if any. *)

val bind : t -> int -> (unit, Errno.t) result
(** [EINVAL] unless the socket is fresh. Port collision (EADDRINUSE) is
    the kernel's to detect — it owns the port table. *)

val listen : t -> int -> (unit, Errno.t) result
(** [listen t backlog]; [EINVAL] unless bound, or if [backlog < 1]. *)

val connect : t -> srv:t -> (unit, Errno.t) result
(** Connect fresh socket [t] to listener [srv]. A full backlog — or
    [srv] not listening (e.g. already closed) — refuses the connection
    with [ECONNREFUSED]; overflow never blocks, which keeps the
    simulation deterministic and matches a full SYN queue with
    syncookies off. On success all four pipe-end counts are attached, so
    neither direction sees premature EOF between connect and accept. *)

val accept : t -> t option
(** Pop the oldest pending connection as a server-role socket; [None] if
    the queue is empty or [t] is not listening (the kernel blocks or
    fails accordingly). *)

val backlog_depth : t -> int option
(** Current accept-queue length of a listener. *)

val read_pipe : conn -> role -> Pipe.t
val write_pipe : conn -> role -> Pipe.t
(** Which pipe this endpoint reads/writes: a client reads [s2c] and
    writes [c2s]; a server the reverse. *)

val release : t -> unit
(** Final-close hook (called by {!Ofd.close} when the last reference
    drops): releases this endpoint's pipe ends — or, for a listener,
    every endpoint still in the accept queue, so queued clients observe
    EOF/EPIPE — and moves the socket to [Closed]. *)

val describe : t -> string
(** e.g. ["sock:listen(80)"], ["sock:conn:c"] — for traces. *)
