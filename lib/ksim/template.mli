(** Zygote templates: the frozen image of a warmed process.

    A template is what {!Api.freeze} produces — the sealed address
    space (every resident frame pinned into {!Vmem.Frame}'s immortal
    refcount class, every PTE already in post-fork read-only/COW form)
    plus the rest of the process image a child inherits: fd table,
    program name, cwd, signal dispositions and mask. Spawning from it
    ({!Api.spawn_from_template}) shares the sealed page table by
    bumping its root — O(shared subtrees), independent of footprint —
    which is the paper's closing argument made concrete: creation cost
    need not scale with the parent once the parent is an immutable
    template.

    [live_deps] counts the processes whose address space may still map
    template pages (the zygote children, their fork descendants, and
    the source process itself); {!Api.template_discard} refuses with
    EBUSY until it reaches zero, at which point {!destroy} un-pins and
    frees every page. *)

type t = {
  id : int;
  aspace : Vmem.Addr_space.t;  (** sealed handle — never run, only cloned *)
  commit_pages : int;  (** commit each child re-charges at spawn *)
  fdt : Fd_table.t;
  program : string;
  cwd : string;
  sigdisp : Usignal.disposition array;
  sigmask : Usignal.Set.t;
  source : Types.pid;  (** the process that was frozen *)
  resident : int;  (** pinned pages, for accounting/tests *)
  mutable spawns : int;
  mutable live_deps : int;
}

val make :
  id:int ->
  aspace:Vmem.Addr_space.t ->
  commit_pages:int ->
  fdt:Fd_table.t ->
  program:string ->
  cwd:string ->
  sigdisp:Usignal.disposition array ->
  sigmask:Usignal.Set.t ->
  source:Types.pid ->
  resident:int ->
  t

val destroy : t -> unit
(** Close the captured fds and tear down the sealed address space
    (un-pinning and freeing every template page). The caller must have
    checked [live_deps = 0]. *)
