(** Dynamic fork-hazard checker: the forklint rules applied to an
    execution trace instead of source text.

    Replays a {!Trace.t} (recorded by a kernel created with
    [trace_capacity = Some n]) and reports the hazards that actually
    happened: a process that forked while multithreaded
    ([fork-in-threads]), a forked child that ran to the end of the
    trace without exec ([fork-no-exec]), a vfork child doing anything
    but exec/_exit ([vfork-misuse]), non-async-signal-safe syscalls in
    the fork→exec window ([unsafe-child-work]), an exec that leaked
    non-cloexec fds ([fd-no-cloexec]), and a fork/vfork issued while
    the process held a mutex it had not unlocked ([lock-across-fork],
    tracked from [mutex_lock]/[mutex_unlock] events).

    Findings share [Forklore.Diagnostic.t] and the rule registry with
    the static checker, so the two layers report identical rule ids and
    can be cross-validated on matching fixtures. [file] defaults to
    ["<ksim-trace>"]; [line] is the 1-based sequence number of the
    anchoring event; [col] is always 1. *)

val check : ?file:string -> Trace.t -> Forklore.Diagnostic.t list
(** Sorted with [Forklore.Diagnostic.compare]. *)
