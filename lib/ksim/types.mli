(** Shared plain types of the kernel simulator. *)

type pid = int
type tid = int
type fd = int

(** Process termination status, as reported by wait. *)
type status = Exited of int | Killed of Usignal.t

val pp_status : Format.formatter -> status -> unit
val status_equal : status -> status -> bool

type open_flags = {
  read : bool;
  write : bool;
  append : bool;
  create : bool;
  trunc : bool;
  cloexec : bool;
}

val o_rdonly : open_flags
val o_wronly : open_flags
(** write-only + create + trunc, the common "open for writing" shape *)

val o_rdwr : open_flags
val o_append : open_flags
(** write + create + append *)

val with_cloexec : open_flags -> open_flags

(** posix_spawn file actions, applied in the child in list order. *)
type file_action =
  | Fa_open of { fd : fd; path : string; flags : open_flags }
  | Fa_dup2 of fd * fd
  | Fa_close of fd

(** posix_spawn attributes. *)
type spawn_attr = {
  reset_signals : bool;
      (** restore every caught/ignored signal to its default *)
  mask : Usignal.Set.t option;  (** initial signal mask for the child *)
}

val default_attr : spawn_attr

type spawn_req = {
  path : string;
  argv : string list;
  file_actions : file_action list;
  attr : spawn_attr;
}

(** pthread_atfork handler triple. Handlers are user-image state: fork
    children inherit the registrations, exec destroys them. *)
type atfork = {
  prepare : (unit -> unit) option;  (** in the parent, before fork *)
  in_parent : (unit -> unit) option;  (** in the parent, after fork *)
  in_child : (unit -> unit) option;  (** in the child, before main *)
}

(** waitpid selector. *)
type wait_target = Any_child | Child of pid

(** sigprocmask operation. *)
type mask_op = Block | Unblock | Set_mask

(** poll() subscription: which readiness events the caller cares about
    on [pi_fd]. *)
type poll_interest = { pi_fd : fd; pi_in : bool; pi_out : bool }

(** poll() result entry. [pr_hup]/[pr_err] are reported regardless of
    the subscription, POLLHUP/POLLERR-style: [pr_hup] when the read side
    is at EOF with no writers left, [pr_err] when the write side has no
    readers left (writes would EPIPE). *)
type poll_revent = {
  pr_fd : fd;
  pr_in : bool;
  pr_out : bool;
  pr_hup : bool;
  pr_err : bool;
}

val pollin : fd -> poll_interest
val pollout : fd -> poll_interest
