(** POSIX-style error codes returned by simulated syscalls. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EBADF
  | ECHILD
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOEXEC
  | EDEADLK
  | E2BIG
  | EBUSY
  | EADDRINUSE
  | ECONNREFUSED

val all : t list
(** Every constructor, in declaration order. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; [None] for unknown names. *)

val message : t -> string
(** Human-readable strerror-style message. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
