(** Bounded ring of kernel events, for tests, debugging, the {!Lint}
    trace checker and the span exporters.

    Syscalls are recorded as typed {e spans}: a [Begin] event at
    dispatch and an [End] event at completion carrying the errno-level
    outcome and the simulated-time duration. Flat [Instant] events
    (child creation, ad-hoc test events) coexist with spans in the same
    ring. *)

type phase =
  | Begin  (** syscall entry *)
  | End  (** syscall completion (carries [span_ns] and [outcome]) *)
  | Instant  (** flat event; the default for {!record} *)

(** Structured detail the kernel attaches to events, consumed by
    {!Lint} without re-parsing the string [args]. *)
type detail =
  | D_none
  | D_fork of { live_threads : int }  (** threads live at fork time *)
  | D_exec of { inherited_fds : int }  (** fds surviving the exec *)
  | D_exit of { open_fds : int }  (** fds still open at exit *)
  | D_open of { path : string; cloexec : bool }
  | D_child of { child : Types.pid; style : string }
      (** a fork/vfork/spawn produced [child]; [style] is
          ["fork"], ["vfork"] or ["spawn"] *)

type outcome = Ok_result | Err of Errno.t

type event = {
  seq : int;  (** monotonically increasing across drops *)
  tick : int;
  pid : Types.pid;
  tid : Types.tid;
  what : string;
  phase : phase;
  args : (string * string) list;
      (** stringly detail, kept for backwards compatibility; the typed
          [detail] field is authoritative when not [D_none] *)
  detail : detail;
  ts_ns : float;  (** simulated time when the event was recorded *)
  span_ns : float;  (** [End] events: simulated duration; else [0.] *)
  outcome : outcome option;  (** [End] events of syscalls *)
  cpu : int option;
      (** the simulated CPU the event happened on; recorded only by SMP
          kernels, so single-CPU traces (and their JSON) are unchanged *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; older events are dropped. *)

val record :
  ?args:(string * string) list ->
  ?phase:phase ->
  ?detail:detail ->
  ?ts_ns:float ->
  ?span_ns:float ->
  ?outcome:outcome ->
  ?cpu:int ->
  t ->
  tick:int ->
  pid:Types.pid ->
  tid:Types.tid ->
  string ->
  unit

val events : t -> event list
(** Oldest first. After overflow, exactly the last [capacity] events. *)

val total : t -> int
(** Events ever recorded, including dropped ones. *)

val clear : t -> unit

val find : t -> pattern:string -> event list
(** Events whose [what] contains [pattern] as a substring. *)

val arg : event -> string -> string option
val int_arg : event -> string -> int option

val phase_string : phase -> string
(** ["B"], ["E"] or ["i"] — the Chrome trace_event phase letters. *)

val event_json : event -> Metrics.Json.t

val to_jsonl : t -> string
(** One compact JSON object per line, oldest first. *)

val to_chrome : ?lanes:[ `Pid | `Cpu ] -> t -> Metrics.Json.t
(** Chrome [trace_event] document ([{"traceEvents": [...]}]), loadable
    in Perfetto or chrome://tracing; timestamps in microseconds of
    simulated time. With [`Pid] lanes (the default) events carry their
    real pid/tid so each process renders as its own track, and ["M"]
    metadata events name the tracks ("pid 3 (fork)", from the
    creation-style instants) and sort them in pid order. With [`Cpu]
    lanes, events render in one synthetic process whose threads are the
    simulated CPUs ("cpu 0", "cpu 1", ...) — the per-CPU timeline of an
    SMP run; events recorded without a cpu land in a "cpu ?" lane. *)
