type pending =
  | Pending :
      'a Sysreq.t * ('a, unit) Effect.Deep.continuation
      -> pending

type thread_state = Ready | Running | Blocked of string | Exited
type entry = Start of (unit -> unit) | Resume of (unit -> unit)

type thread = {
  tid : Types.tid;
  owner : Types.pid;
  is_main : bool;
  mutable tstate : thread_state;
  mutable entry : entry option;
  mutable pending : pending option;
  mutable cpu : int;
      (** simulated CPU this thread last ran on (its affinity home in
          the SMP scheduler); always 0 on a single-CPU machine *)
}

type state = Alive | Zombie of Types.status | Reaped of Types.status

type t = {
  pid : Types.pid;
  mutable parent : Types.pid;
  mutable pstate : state;
  mutable aspace : Vmem.Addr_space.t;
  mutable vfork_active : bool;
  mutable fdt : Fd_table.t;
  sigdisp : Usignal.disposition array;
  mutable sigmask : Usignal.Set.t;
  mutable sigpending : Usignal.Set.t;
  handler_runs : (string, int) Hashtbl.t;
  mutable cwd : string;
  mutable mutexes : Sync.table;
  mutable threads : thread list;
  mutable children : Types.pid list;
  mutable program : string;
  mutable held_locks : Vfs.regular list;
  mutable atfork : Types.atfork list;
  mutable tpl_deps : int list;
      (** template ids whose pages this process's address space may map:
          set at zygote spawn, inherited across fork (the child shares
          the same COW image), released when the address space is
          destroyed. Gates template discard. *)
}

let make_thread ~tid ~owner ~is_main body =
  {
    tid;
    owner;
    is_main;
    tstate = Ready;
    entry = Some (Start body);
    pending = None;
    cpu = 0;
  }

let max_signal_number =
  List.fold_left (fun acc s -> max acc (Usignal.number s)) 0 Usignal.all

let make ~pid ~parent ~aspace ~fdt ~cwd ~program =
  {
    pid;
    parent;
    pstate = Alive;
    aspace;
    vfork_active = false;
    fdt;
    sigdisp = Array.make (max_signal_number + 1) Usignal.Default;
    sigmask = Usignal.Set.empty;
    sigpending = Usignal.Set.empty;
    handler_runs = Hashtbl.create 4;
    cwd;
    mutexes = Sync.create_table ();
    threads = [];
    children = [];
    program;
    held_locks = [];
    atfork = [];
    tpl_deps = [];
  }

let disposition t s = t.sigdisp.(Usignal.number s)
let set_disposition t s d = t.sigdisp.(Usignal.number s) <- d

let live_threads t =
  List.filter (fun th -> th.tstate <> Exited) t.threads

let find_thread t tid = List.find_opt (fun th -> th.tid = tid) t.threads
let is_alive t = t.pstate = Alive

let count_handler_run t name =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.handler_runs name) in
  Hashtbl.replace t.handler_runs name (cur + 1)

let handler_runs t name =
  Option.value ~default:0 (Hashtbl.find_opt t.handler_runs name)

let pp_state ppf = function
  | Alive -> Format.pp_print_string ppf "alive"
  | Zombie st -> Format.fprintf ppf "zombie(%a)" Types.pp_status st
  | Reaped st -> Format.fprintf ppf "reaped(%a)" Types.pp_status st
