(** Syscall wrappers for simulated programs.

    Every function here performs the {!Sysreq.Sys} effect and must be
    called from code running under {!Kernel.run} (from a program body);
    calling them elsewhere raises [Effect.Unhandled]. *)

val getpid : unit -> Types.pid
val getppid : unit -> Types.pid
val gettid : unit -> Types.tid

val fork : child:(unit -> unit) -> (Types.pid, Errno.t) result
(** COW fork; see {!Sysreq} for the closure-based child convention.
    Runs registered {!atfork} handlers with POSIX ordering: prepare in
    reverse registration order before forking (also on failure, like
    glibc), parent/child handlers in registration order after. *)

val atfork :
  ?prepare:(unit -> unit) ->
  ?in_parent:(unit -> unit) ->
  ?in_child:(unit -> unit) ->
  unit ->
  unit
(** pthread_atfork. Registrations are copied to fork children and
    destroyed by exec (they are image state). [fork_eager] and [vfork]
    do not run handlers, matching common libc behaviour. *)

val fork_eager : child:(unit -> unit) -> (Types.pid, Errno.t) result
val vfork : child:(unit -> unit) -> (Types.pid, Errno.t) result

val spawn :
  ?file_actions:Types.file_action list ->
  ?attr:Types.spawn_attr ->
  ?argv:string list ->
  string ->
  (Types.pid, Errno.t) result

val exec : ?argv:string list -> string -> (unit, Errno.t) result
(** Returns only on failure. *)

val exit : int -> 'a
(** Terminates the process; never returns. *)

val waitpid : Types.wait_target -> (Types.pid * Types.status, Errno.t) result
val wait_for : Types.pid -> (Types.status, Errno.t) result
val wait_all : unit -> (Types.pid * Types.status) list
(** Reap children until ECHILD; does not block on a child that never
    exits — it blocks per waitpid, so only use when all children
    terminate. *)

val kill : Types.pid -> Usignal.t -> (unit, Errno.t) result
val sigaction :
  Usignal.t -> Usignal.disposition -> (Usignal.disposition, Errno.t) result
val sigprocmask : Types.mask_op -> Usignal.Set.t -> Usignal.Set.t
val alarm : int -> int
val handled_signals : string -> int

val openf : ?flags:Types.open_flags -> string -> (Types.fd, Errno.t) result
(** Default flags: read-only. *)

val close : Types.fd -> (unit, Errno.t) result
val read : Types.fd -> int -> (string, Errno.t) result
val write : Types.fd -> string -> (int, Errno.t) result

val write_all : Types.fd -> string -> (unit, Errno.t) result
(** Loop until every byte is written. *)

val read_all : Types.fd -> (string, Errno.t) result
(** Read until end-of-file. *)

val print : string -> unit
(** [write_all] to fd 1, ignoring errors (console convenience). *)

val dup : Types.fd -> (Types.fd, Errno.t) result
val dup2 : src:Types.fd -> dst:Types.fd -> (Types.fd, Errno.t) result
val set_cloexec : Types.fd -> bool -> (unit, Errno.t) result
val pipe : unit -> (Types.fd * Types.fd, Errno.t) result
val try_lock : Types.fd -> (unit, Errno.t) result
val unlock : Types.fd -> (unit, Errno.t) result
val mmap : len:int -> perm:Vmem.Perm.t -> (int, Errno.t) result
val munmap : addr:int -> len:int -> (unit, Errno.t) result
val brk : unit -> (int, Errno.t) result
val sbrk : int -> (int, Errno.t) result
(** Grow the heap by n bytes (page-rounded); returns the old break. *)

val mem_read : addr:int -> len:int -> (string, Errno.t) result
val mem_write : addr:int -> string -> (unit, Errno.t) result
val touch : addr:int -> len:int -> (int, Errno.t) result
val thread_create : (unit -> unit) -> (Types.tid, Errno.t) result
val mutex_create : unit -> int
val mutex_lock : int -> (unit, Errno.t) result
val mutex_unlock : int -> (unit, Errno.t) result
val mutex_trylock : int -> (unit, Errno.t) result

val mutex_reinit : int -> (unit, Errno.t) result
(** Force a mutex back to unlocked regardless of owner (atfork child
    handlers use this to recover orphaned locks). *)

val yield : unit -> unit
val chdir : string -> (unit, Errno.t) result
val getcwd : unit -> string

(** Cross-process operations (paper §6; see {!Sysreq}). *)

val pb_create : unit -> (Types.pid, Errno.t) result
val pb_map : pid:Types.pid -> len:int -> perm:Vmem.Perm.t -> (int, Errno.t) result
val pb_write : pid:Types.pid -> addr:int -> string -> (unit, Errno.t) result
val pb_copy_fd : pid:Types.pid -> src:Types.fd -> dst:Types.fd -> (unit, Errno.t) result
val pb_start : pid:Types.pid -> ?argv:string list -> string -> (unit, Errno.t) result

(** Zygote templates (see {!Sysreq} and {!Template}). *)

val freeze : ?pid:Types.pid -> unit -> (int, Errno.t) result
(** Seal a warmed process into an immutable template and return its id.
    [freeze ()] freezes the caller (which keeps running; later writes
    COW away from the template); [freeze ~pid ()] freezes an alive
    child of the caller. *)

val spawn_from_template :
  int -> child:(unit -> unit) -> (Types.pid, Errno.t) result
(** Clone a child from a template in O(shared page-table subtrees) —
    creation cost independent of the template's footprint. The child
    starts at [child] with the template's captured image. *)

val template_discard : int -> (unit, Errno.t) result
(** Drop a template, freeing its pinned pages. EBUSY while any live
    process still maps them. *)

(** Stream sockets and readiness multiplexing (see {!Sysreq} and
    {!Socket}). *)

val socket : unit -> (Types.fd, Errno.t) result
val bind : Types.fd -> port:int -> (unit, Errno.t) result
val listen : Types.fd -> backlog:int -> (unit, Errno.t) result

val accept : Types.fd -> (Types.fd, Errno.t) result
(** Blocks while the accept queue is empty. *)

val connect : Types.fd -> port:int -> (unit, Errno.t) result
(** ECONNREFUSED when no live listener holds the port or its backlog is
    full (overflow refuses rather than blocks). *)

val poll :
  ?timeout:int ->
  Types.poll_interest list ->
  (Types.poll_revent list, Errno.t) result
(** [timeout] in clock ticks: [0] probes without blocking, negative
    (the default) blocks until ready, positive blocks at most that many
    ticks and returns [[]] on timeout. Build interests with
    {!Types.pollin} / {!Types.pollout}. *)
